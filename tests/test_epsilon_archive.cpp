#include "moea/epsilon_archive.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace {

using namespace borg::moea;

Solution evaluated(std::vector<double> objectives, int op = kNoOperator) {
    Solution s;
    s.variables = {0.0};
    s.set_objectives(objectives);
    s.operator_index = op;
    return s;
}

// ---------------------------------------------------------------------------
// Behavioral contract, run against BOTH implementations: the indexed
// ArchiveEngine and the NaiveArchive reference oracle must satisfy every
// property identically.
// ---------------------------------------------------------------------------

template <typename Impl>
class ArchiveBehavior : public ::testing::Test {};

using ArchiveImplementations = ::testing::Types<ArchiveEngine, NaiveArchive>;
TYPED_TEST_SUITE(ArchiveBehavior, ArchiveImplementations);

TYPED_TEST(ArchiveBehavior, FirstSolutionAlwaysEnters) {
    TypeParam archive({0.1, 0.1});
    EXPECT_EQ(archive.add(evaluated({0.5, 0.5})), ArchiveAdd::kAddedNewBox);
    EXPECT_EQ(archive.size(), 1u);
    EXPECT_EQ(archive.epsilon_progress(), 1u);
}

TYPED_TEST(ArchiveBehavior, DominatedBoxRejected) {
    TypeParam archive({0.1, 0.1});
    archive.add(evaluated({0.11, 0.11}));
    EXPECT_EQ(archive.add(evaluated({0.55, 0.55})), ArchiveAdd::kRejected);
    EXPECT_EQ(archive.size(), 1u);
}

TYPED_TEST(ArchiveBehavior, DominatingSolutionEvicts) {
    TypeParam archive({0.1, 0.1});
    archive.add(evaluated({0.55, 0.55}));
    archive.add(evaluated({0.75, 0.35}));
    EXPECT_EQ(archive.add(evaluated({0.11, 0.11})), ArchiveAdd::kAddedNewBox);
    EXPECT_EQ(archive.size(), 1u);
    EXPECT_DOUBLE_EQ(archive[0].objectives[0], 0.11);
}

TYPED_TEST(ArchiveBehavior, NondominatedBoxesCoexist) {
    TypeParam archive({0.1, 0.1});
    archive.add(evaluated({0.15, 0.85}));
    archive.add(evaluated({0.85, 0.15}));
    archive.add(evaluated({0.45, 0.45}));
    EXPECT_EQ(archive.size(), 3u);
    EXPECT_EQ(archive.epsilon_progress(), 3u);
}

TYPED_TEST(ArchiveBehavior, SameBoxKeepsCloserToCorner) {
    TypeParam archive({1.0, 1.0});
    archive.add(evaluated({0.9, 0.9}));
    // Same box [0,1)x[0,1); closer to (0,0) wins.
    EXPECT_EQ(archive.add(evaluated({0.2, 0.2})),
              ArchiveAdd::kReplacedSameBox);
    EXPECT_EQ(archive.size(), 1u);
    EXPECT_DOUBLE_EQ(archive[0].objectives[0], 0.2);
    // A worse same-box candidate is rejected.
    EXPECT_EQ(archive.add(evaluated({0.5, 0.5})), ArchiveAdd::kRejected);
}

TYPED_TEST(ArchiveBehavior, SameBoxReplacementIsNotEpsilonProgress) {
    TypeParam archive({1.0, 1.0});
    archive.add(evaluated({0.9, 0.9}));
    const auto progress_before = archive.epsilon_progress();
    archive.add(evaluated({0.2, 0.2}));
    EXPECT_EQ(archive.epsilon_progress(), progress_before);
    EXPECT_EQ(archive.improvements(), 2u);
}

TYPED_TEST(ArchiveBehavior, SameBoxWinnerMovesToEndOfIterationOrder) {
    // The naive archive drops the incumbent in place and appends the
    // winner; the engine must reproduce that order exactly (iteration
    // order feeds parent selection, so it is behaviorally observable).
    TypeParam archive({1.0, 1.0});
    archive.add(evaluated({0.9, 2.1}));
    archive.add(evaluated({2.1, 0.9}));
    EXPECT_EQ(archive.add(evaluated({0.2, 2.2})),
              ArchiveAdd::kReplacedSameBox);
    ASSERT_EQ(archive.size(), 2u);
    EXPECT_DOUBLE_EQ(archive[0].objectives[0], 2.1);
    EXPECT_DOUBLE_EQ(archive[1].objectives[0], 0.2);
}

TYPED_TEST(ArchiveBehavior, RejectionLeavesArchiveUntouched) {
    TypeParam archive({0.1, 0.1});
    archive.add(evaluated({0.15, 0.85}));
    archive.add(evaluated({0.85, 0.15}));
    const auto size_before = archive.size();
    // Dominated by both members' boxes in one objective pattern.
    archive.add(evaluated({0.86, 0.86}));
    EXPECT_EQ(archive.size(), size_before);
}

TYPED_TEST(ArchiveBehavior, MultiEviction) {
    TypeParam archive({0.1, 0.1});
    archive.add(evaluated({0.55, 0.75}));
    archive.add(evaluated({0.65, 0.65}));
    archive.add(evaluated({0.75, 0.55}));
    EXPECT_EQ(archive.add(evaluated({0.15, 0.15})), ArchiveAdd::kAddedNewBox);
    EXPECT_EQ(archive.size(), 1u);
}

TYPED_TEST(ArchiveBehavior, MembersAlwaysMutuallyBoxNondominated) {
    TypeParam archive({0.05, 0.05, 0.05});
    borg::util::Rng rng(42);
    for (int i = 0; i < 2000; ++i) {
        std::vector<double> f(3);
        for (double& v : f) v = rng.uniform();
        archive.add(evaluated(f));
    }
    const auto& eps = archive.epsilons();
    for (std::size_t i = 0; i < archive.size(); ++i) {
        const auto bi = epsilon_box(archive[i].objectives, eps);
        for (std::size_t j = i + 1; j < archive.size(); ++j) {
            const auto bj = epsilon_box(archive[j].objectives, eps);
            EXPECT_EQ(compare_boxes(bi, bj), Dominance::kNondominated);
        }
    }
}

TYPED_TEST(ArchiveBehavior, OperatorCountsAttributeCorrectly) {
    TypeParam archive({0.1, 0.1});
    archive.add(evaluated({0.15, 0.85}, 0));
    archive.add(evaluated({0.85, 0.15}, 2));
    archive.add(evaluated({0.45, 0.45}, 2));
    archive.add(evaluated({0.25, 0.65}, kNoOperator));
    const auto counts = archive.operator_counts(3);
    EXPECT_EQ(counts[0], 1u);
    EXPECT_EQ(counts[1], 0u);
    EXPECT_EQ(counts[2], 2u);
}

TYPED_TEST(ArchiveBehavior, ClearEmptiesButKeepsCounters) {
    TypeParam archive({0.1, 0.1});
    archive.add(evaluated({0.5, 0.5}));
    archive.clear();
    EXPECT_TRUE(archive.empty());
    EXPECT_EQ(archive.epsilon_progress(), 1u);
}

TYPED_TEST(ArchiveBehavior, SolutionsAndObjectiveVectorsAgree) {
    TypeParam archive({0.1, 0.1});
    archive.add(evaluated({0.15, 0.85}));
    archive.add(evaluated({0.85, 0.15}));
    const auto sols = archive.solutions();
    const auto objs = archive.objective_vectors();
    ASSERT_EQ(sols.size(), objs.size());
    for (std::size_t i = 0; i < sols.size(); ++i)
        EXPECT_EQ(sols[i].objectives, objs[i]);
}

TYPED_TEST(ArchiveBehavior, RejectsInvalidConstruction) {
    EXPECT_THROW(TypeParam({}), std::invalid_argument);
    EXPECT_THROW(TypeParam({0.1, 0.0}), std::invalid_argument);
    EXPECT_THROW(TypeParam({0.1, -0.1}), std::invalid_argument);
}

TYPED_TEST(ArchiveBehavior, RejectsUnevaluatedOrWrongArity) {
    TypeParam archive({0.1, 0.1});
    Solution raw({0.5});
    EXPECT_THROW(archive.add(raw), std::invalid_argument);
    EXPECT_THROW(archive.add(evaluated({0.1, 0.2, 0.3})),
                 std::invalid_argument);
}

TYPED_TEST(ArchiveBehavior, BoundedSizeUnderFrontPressure) {
    // Points jittered around the anti-diagonal front f1 + f2 = 1: with
    // epsilon 0.1 the staircase of mutually nondominated boxes holds at
    // most ~2/0.1 entries, however many points are offered.
    TypeParam archive({0.1, 0.1});
    borg::util::Rng rng(7);
    for (int i = 0; i < 20000; ++i) {
        const double x = rng.uniform();
        const double y = 1.0 - x + rng.uniform(0.0, 0.05);
        archive.add(evaluated({x, y}));
    }
    EXPECT_LE(archive.size(), 21u);
    EXPECT_GE(archive.size(), 5u);
}

TYPED_TEST(ArchiveBehavior, CollapsesWhenIdealCornerBoxReached) {
    // A point inside the origin epsilon-box dominates every other box:
    // the archive rightly collapses to that single solution.
    TypeParam archive({0.1, 0.1});
    borg::util::Rng rng(8);
    for (int i = 0; i < 50; ++i)
        archive.add(evaluated({rng.uniform(0.2, 1.0), rng.uniform(0.2, 1.0)}));
    archive.add(evaluated({0.05, 0.05}));
    EXPECT_EQ(archive.size(), 1u);
}

TYPED_TEST(ArchiveBehavior, AddAllTalliesMatchIndividualAdds) {
    borg::util::Rng rng(11);
    std::vector<Solution> batch;
    for (int i = 0; i < 300; ++i)
        batch.push_back(evaluated({rng.uniform(), rng.uniform()}));

    TypeParam loop({0.1, 0.1});
    ArchiveBatchResult expected;
    for (const Solution& s : batch) {
        switch (loop.add(s)) {
        case ArchiveAdd::kAddedNewBox: ++expected.added_new_box; break;
        case ArchiveAdd::kReplacedSameBox:
            ++expected.replaced_same_box;
            break;
        case ArchiveAdd::kRejected: ++expected.rejected; break;
        }
    }

    TypeParam batched({0.1, 0.1});
    const ArchiveBatchResult result = batched.add_all(batch);
    EXPECT_EQ(result.added_new_box, expected.added_new_box);
    EXPECT_EQ(result.replaced_same_box, expected.replaced_same_box);
    EXPECT_EQ(result.rejected, expected.rejected);
    EXPECT_EQ(result.accepted(),
              expected.added_new_box + expected.replaced_same_box);
    ASSERT_EQ(batched.size(), loop.size());
    for (std::size_t i = 0; i < batched.size(); ++i)
        EXPECT_EQ(batched[i].objectives, loop[i].objectives);
}

TYPED_TEST(ArchiveBehavior, RestoreInstallsExactlyWithoutReplay) {
    // Build an archive whose members include corner-distance near-ties,
    // then restore its snapshot into a fresh instance: membership AND
    // iteration order must round-trip exactly (replaying through add()
    // would re-run contests and could drop tie members order-dependently).
    TypeParam archive({0.1, 0.1});
    borg::util::Rng rng(13);
    for (int i = 0; i < 5000; ++i) {
        const double x = rng.uniform();
        archive.add(evaluated({x, 1.0 - x + rng.uniform(0.0, 0.05)}));
    }
    ASSERT_GE(archive.size(), 5u);

    TypeParam restored({0.1, 0.1});
    restored.restore(archive.solutions(), archive.epsilon_progress(),
                     archive.improvements());
    ASSERT_EQ(restored.size(), archive.size());
    for (std::size_t i = 0; i < archive.size(); ++i) {
        EXPECT_EQ(restored[i].objectives, archive[i].objectives);
        EXPECT_EQ(restored[i].variables, archive[i].variables);
    }
    EXPECT_EQ(restored.epsilon_progress(), archive.epsilon_progress());
    EXPECT_EQ(restored.improvements(), archive.improvements());

    // The restored archive must behave identically going forward.
    for (int i = 0; i < 200; ++i) {
        const Solution s =
            evaluated({rng.uniform(), rng.uniform()});
        EXPECT_EQ(restored.add(s), archive.add(s));
    }
}

TYPED_TEST(ArchiveBehavior, RestoreHandlesInfeasibleAnchor) {
    TypeParam archive({0.1, 0.1});
    Solution anchor = evaluated({0.4, 0.4});
    anchor.constraints = {0.7};
    ASSERT_EQ(archive.add(anchor), ArchiveAdd::kAddedNewBox);

    TypeParam restored({0.1, 0.1});
    restored.restore(archive.solutions(), archive.epsilon_progress(),
                     archive.improvements());
    ASSERT_EQ(restored.size(), 1u);
    EXPECT_FALSE(restored[0].feasible());
    // A less-violating infeasible candidate still contests the anchor...
    Solution better = evaluated({0.9, 0.9});
    better.constraints = {0.2};
    EXPECT_EQ(restored.add(better), ArchiveAdd::kAddedNewBox);
    // ...and the first feasible arrival still evicts it.
    EXPECT_EQ(restored.add(evaluated({0.5, 0.5})), ArchiveAdd::kAddedNewBox);
    ASSERT_EQ(restored.size(), 1u);
    EXPECT_TRUE(restored[0].feasible());
}

// ---------------------------------------------------------------------------
// Randomized engine-vs-naive equivalence: on any candidate stream the two
// implementations must produce identical per-add verdicts, identical
// membership in identical iteration order, and identical counters.
// ---------------------------------------------------------------------------

enum class StreamKind {
    kFeasible,        ///< unconstrained candidates
    kInfeasibleOnly,  ///< every candidate violates (anchor churn)
    kMixed,           ///< ~40% feasible, interleaved
};

std::vector<Solution> make_stream(std::size_t objectives, StreamKind kind,
                                  std::size_t count, std::uint64_t seed) {
    borg::util::Rng rng(seed);
    std::vector<Solution> stream;
    stream.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        Solution s;
        s.variables = {static_cast<double>(i)}; // distinguishes members
        std::vector<double> f(objectives);
        for (double& v : f) v = rng.uniform();
        s.set_objectives(f);
        s.operator_index = static_cast<int>(rng.below(6)) - 1;
        switch (kind) {
        case StreamKind::kFeasible:
            break;
        case StreamKind::kInfeasibleOnly:
            s.constraints = {rng.uniform(0.01, 1.0), rng.uniform(0.01, 1.0)};
            break;
        case StreamKind::kMixed:
            s.constraints = {rng.uniform(-1.5, 1.0), rng.uniform(-1.5, 1.0)};
            break;
        }
        stream.push_back(std::move(s));
    }
    return stream;
}

void expect_equivalent(std::size_t objectives, double epsilon,
                       const std::vector<Solution>& stream) {
    const std::vector<double> eps(objectives, epsilon);
    ArchiveEngine engine(eps);
    NaiveArchive naive(eps);
    for (std::size_t i = 0; i < stream.size(); ++i) {
        const ArchiveAdd a = engine.add(stream[i]);
        const ArchiveAdd b = naive.add(stream[i]);
        ASSERT_EQ(a, b) << "verdict diverged at candidate " << i
                        << " (m=" << objectives << ", eps=" << epsilon
                        << ")";
        ASSERT_EQ(engine.size(), naive.size()) << "size diverged at " << i;
    }
    for (std::size_t i = 0; i < engine.size(); ++i) {
        EXPECT_EQ(engine[i].variables, naive[i].variables)
            << "membership/order diverged at member " << i;
        EXPECT_EQ(engine[i].objectives, naive[i].objectives);
        EXPECT_EQ(engine[i].constraints, naive[i].constraints);
        EXPECT_EQ(engine[i].operator_index, naive[i].operator_index);
    }
    EXPECT_EQ(engine.epsilon_progress(), naive.epsilon_progress());
    EXPECT_EQ(engine.improvements(), naive.improvements());
    EXPECT_EQ(engine.operator_counts(5), naive.operator_counts(5));
}

TEST(ArchiveEquivalence, FeasibleStreamsAcrossObjectiveCounts) {
    for (std::size_t m = 2; m <= 7; ++m) {
        // Small boxes: mostly new-box inserts and dominated rejections.
        expect_equivalent(
            m, 0.05, make_stream(m, StreamKind::kFeasible, 2000, 100 + m));
        // Large boxes: frequent same-box contests and evictions.
        expect_equivalent(
            m, 0.3, make_stream(m, StreamKind::kFeasible, 2000, 200 + m));
    }
}

TEST(ArchiveEquivalence, InfeasibleAnchorStreams) {
    for (std::size_t m = 2; m <= 7; ++m)
        expect_equivalent(
            m, 0.1,
            make_stream(m, StreamKind::kInfeasibleOnly, 1000, 300 + m));
}

TEST(ArchiveEquivalence, MixedFeasibilityStreams) {
    for (std::size_t m = 2; m <= 7; ++m)
        expect_equivalent(
            m, 0.1, make_stream(m, StreamKind::kMixed, 2000, 400 + m));
}

TEST(ArchiveEquivalence, EvictionHeavyShrinkingFront) {
    // Candidates improve over time (objectives shrink), so later adds
    // evict earlier members constantly — the worst case for the engine's
    // index maintenance.
    for (std::size_t m : {2u, 3u, 5u}) {
        borg::util::Rng rng(500 + m);
        std::vector<Solution> stream;
        for (std::size_t i = 0; i < 3000; ++i) {
            const double scale =
                1.0 - 0.8 * static_cast<double>(i) / 3000.0;
            std::vector<double> f(m);
            for (double& v : f) v = scale * rng.uniform();
            Solution s;
            s.variables = {static_cast<double>(i)};
            s.set_objectives(f);
            stream.push_back(std::move(s));
        }
        expect_equivalent(m, 0.04, stream);
    }
}

TEST(ArchiveEquivalence, AntiDiagonalEqualSumBoxes) {
    // Anti-diagonal fronts put many mutually nondominated members at the
    // SAME box-coordinate sum — the tie case in the engine's sum-sorted
    // index.
    borg::util::Rng rng(600);
    std::vector<Solution> stream;
    for (std::size_t i = 0; i < 5000; ++i) {
        const double x = rng.uniform();
        Solution s;
        s.variables = {static_cast<double>(i)};
        s.set_objectives(
            std::vector<double>{x, 1.0 - x + rng.uniform(0.0, 0.02)});
        stream.push_back(std::move(s));
    }
    expect_equivalent(2, 0.05, stream);
}

TEST(ArchiveEquivalence, RestoreThenContinueMatches) {
    // Restore mid-stream on both implementations, then continue: the
    // resumed archives must keep agreeing with each other.
    const std::vector<double> eps(3, 0.07);
    const auto stream =
        make_stream(3, StreamKind::kFeasible, 3000, 700);
    ArchiveEngine engine(eps);
    NaiveArchive naive(eps);
    for (std::size_t i = 0; i < 1500; ++i) {
        engine.add(stream[i]);
        naive.add(stream[i]);
    }
    ArchiveEngine engine2(eps);
    NaiveArchive naive2(eps);
    engine2.restore(engine.solutions(), engine.epsilon_progress(),
                    engine.improvements());
    naive2.restore(naive.solutions(), naive.epsilon_progress(),
                   naive.improvements());
    for (std::size_t i = 1500; i < stream.size(); ++i)
        ASSERT_EQ(engine2.add(stream[i]), naive2.add(stream[i])) << i;
    ASSERT_EQ(engine2.size(), naive2.size());
    for (std::size_t i = 0; i < engine2.size(); ++i)
        EXPECT_EQ(engine2[i].variables, naive2[i].variables);
    EXPECT_EQ(engine2.epsilon_progress(), naive2.epsilon_progress());
    EXPECT_EQ(engine2.improvements(), naive2.improvements());
}

} // namespace
