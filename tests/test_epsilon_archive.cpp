#include "moea/epsilon_archive.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace {

using namespace borg::moea;

Solution evaluated(std::vector<double> objectives, int op = kNoOperator) {
    Solution s;
    s.variables = {0.0};
    s.set_objectives(objectives);
    s.operator_index = op;
    return s;
}

TEST(Archive, FirstSolutionAlwaysEnters) {
    EpsilonBoxArchive archive({0.1, 0.1});
    EXPECT_EQ(archive.add(evaluated({0.5, 0.5})), ArchiveAdd::kAddedNewBox);
    EXPECT_EQ(archive.size(), 1u);
    EXPECT_EQ(archive.epsilon_progress(), 1u);
}

TEST(Archive, DominatedBoxRejected) {
    EpsilonBoxArchive archive({0.1, 0.1});
    archive.add(evaluated({0.11, 0.11}));
    EXPECT_EQ(archive.add(evaluated({0.55, 0.55})), ArchiveAdd::kRejected);
    EXPECT_EQ(archive.size(), 1u);
}

TEST(Archive, DominatingSolutionEvicts) {
    EpsilonBoxArchive archive({0.1, 0.1});
    archive.add(evaluated({0.55, 0.55}));
    archive.add(evaluated({0.75, 0.35}));
    EXPECT_EQ(archive.add(evaluated({0.11, 0.11})), ArchiveAdd::kAddedNewBox);
    EXPECT_EQ(archive.size(), 1u);
    EXPECT_DOUBLE_EQ(archive[0].objectives[0], 0.11);
}

TEST(Archive, NondominatedBoxesCoexist) {
    EpsilonBoxArchive archive({0.1, 0.1});
    archive.add(evaluated({0.15, 0.85}));
    archive.add(evaluated({0.85, 0.15}));
    archive.add(evaluated({0.45, 0.45}));
    EXPECT_EQ(archive.size(), 3u);
    EXPECT_EQ(archive.epsilon_progress(), 3u);
}

TEST(Archive, SameBoxKeepsCloserToCorner) {
    EpsilonBoxArchive archive({1.0, 1.0});
    archive.add(evaluated({0.9, 0.9}));
    // Same box [0,1)x[0,1); closer to (0,0) wins.
    EXPECT_EQ(archive.add(evaluated({0.2, 0.2})),
              ArchiveAdd::kReplacedSameBox);
    EXPECT_EQ(archive.size(), 1u);
    EXPECT_DOUBLE_EQ(archive[0].objectives[0], 0.2);
    // A worse same-box candidate is rejected.
    EXPECT_EQ(archive.add(evaluated({0.5, 0.5})), ArchiveAdd::kRejected);
}

TEST(Archive, SameBoxReplacementIsNotEpsilonProgress) {
    EpsilonBoxArchive archive({1.0, 1.0});
    archive.add(evaluated({0.9, 0.9}));
    const auto progress_before = archive.epsilon_progress();
    archive.add(evaluated({0.2, 0.2}));
    EXPECT_EQ(archive.epsilon_progress(), progress_before);
    EXPECT_EQ(archive.improvements(), 2u);
}

TEST(Archive, RejectionLeavesArchiveUntouched) {
    EpsilonBoxArchive archive({0.1, 0.1});
    archive.add(evaluated({0.15, 0.85}));
    archive.add(evaluated({0.85, 0.15}));
    const auto size_before = archive.size();
    // Dominated by both members' boxes in one objective pattern.
    archive.add(evaluated({0.86, 0.86}));
    EXPECT_EQ(archive.size(), size_before);
}

TEST(Archive, MultiEviction) {
    EpsilonBoxArchive archive({0.1, 0.1});
    archive.add(evaluated({0.55, 0.75}));
    archive.add(evaluated({0.65, 0.65}));
    archive.add(evaluated({0.75, 0.55}));
    EXPECT_EQ(archive.add(evaluated({0.15, 0.15})), ArchiveAdd::kAddedNewBox);
    EXPECT_EQ(archive.size(), 1u);
}

TEST(Archive, MembersAlwaysMutuallyBoxNondominated) {
    EpsilonBoxArchive archive({0.05, 0.05, 0.05});
    borg::util::Rng rng(42);
    for (int i = 0; i < 2000; ++i) {
        std::vector<double> f(3);
        for (double& v : f) v = rng.uniform();
        archive.add(evaluated(f));
    }
    const auto& eps = archive.epsilons();
    for (std::size_t i = 0; i < archive.size(); ++i) {
        const auto bi = epsilon_box(archive[i].objectives, eps);
        for (std::size_t j = i + 1; j < archive.size(); ++j) {
            const auto bj = epsilon_box(archive[j].objectives, eps);
            EXPECT_EQ(compare_boxes(bi, bj), Dominance::kNondominated);
        }
    }
}

TEST(Archive, OperatorCountsAttributeCorrectly) {
    EpsilonBoxArchive archive({0.1, 0.1});
    archive.add(evaluated({0.15, 0.85}, 0));
    archive.add(evaluated({0.85, 0.15}, 2));
    archive.add(evaluated({0.45, 0.45}, 2));
    archive.add(evaluated({0.25, 0.65}, kNoOperator));
    const auto counts = archive.operator_counts(3);
    EXPECT_EQ(counts[0], 1u);
    EXPECT_EQ(counts[1], 0u);
    EXPECT_EQ(counts[2], 2u);
}

TEST(Archive, ClearEmptiesButKeepsCounters) {
    EpsilonBoxArchive archive({0.1, 0.1});
    archive.add(evaluated({0.5, 0.5}));
    archive.clear();
    EXPECT_TRUE(archive.empty());
    EXPECT_EQ(archive.epsilon_progress(), 1u);
}

TEST(Archive, SolutionsAndObjectiveVectorsAgree) {
    EpsilonBoxArchive archive({0.1, 0.1});
    archive.add(evaluated({0.15, 0.85}));
    archive.add(evaluated({0.85, 0.15}));
    const auto sols = archive.solutions();
    const auto objs = archive.objective_vectors();
    ASSERT_EQ(sols.size(), objs.size());
    for (std::size_t i = 0; i < sols.size(); ++i)
        EXPECT_EQ(sols[i].objectives, objs[i]);
}

TEST(Archive, RejectsInvalidConstruction) {
    EXPECT_THROW(EpsilonBoxArchive({}), std::invalid_argument);
    EXPECT_THROW(EpsilonBoxArchive({0.1, 0.0}), std::invalid_argument);
    EXPECT_THROW(EpsilonBoxArchive({0.1, -0.1}), std::invalid_argument);
}

TEST(Archive, RejectsUnevaluatedOrWrongArity) {
    EpsilonBoxArchive archive({0.1, 0.1});
    Solution raw({0.5});
    EXPECT_THROW(archive.add(raw), std::invalid_argument);
    EXPECT_THROW(archive.add(evaluated({0.1, 0.2, 0.3})),
                 std::invalid_argument);
}

TEST(Archive, BoundedSizeUnderFrontPressure) {
    // Points jittered around the anti-diagonal front f1 + f2 = 1: with
    // epsilon 0.1 the staircase of mutually nondominated boxes holds at
    // most ~2/0.1 entries, however many points are offered.
    EpsilonBoxArchive archive({0.1, 0.1});
    borg::util::Rng rng(7);
    for (int i = 0; i < 20000; ++i) {
        const double x = rng.uniform();
        const double y = 1.0 - x + rng.uniform(0.0, 0.05);
        archive.add(evaluated({x, y}));
    }
    EXPECT_LE(archive.size(), 21u);
    EXPECT_GE(archive.size(), 5u);
}

TEST(Archive, CollapsesWhenIdealCornerBoxReached) {
    // A point inside the origin epsilon-box dominates every other box:
    // the archive rightly collapses to that single solution.
    EpsilonBoxArchive archive({0.1, 0.1});
    borg::util::Rng rng(8);
    for (int i = 0; i < 50; ++i)
        archive.add(evaluated({rng.uniform(0.2, 1.0), rng.uniform(0.2, 1.0)}));
    archive.add(evaluated({0.05, 0.05}));
    EXPECT_EQ(archive.size(), 1u);
}

} // namespace
