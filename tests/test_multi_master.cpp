#include "parallel/multi_master.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "metrics/hypervolume.hpp"
#include "models/analytical.hpp"
#include "obs/event_trace.hpp"
#include "parallel/async_executor.hpp"
#include "problems/problem.hpp"
#include "problems/reference_set.hpp"

namespace {

using namespace borg;
using namespace borg::parallel;
using borg::stats::Distribution;
using borg::stats::make_delay;

struct Fixture {
    std::unique_ptr<problems::Problem> problem =
        problems::make_problem("zdt1");
    std::unique_ptr<Distribution> tf = make_delay(0.001, 0.1);
    std::unique_ptr<Distribution> tc = make_delay(0.000006, 0.0);
    std::unique_ptr<Distribution> ta = make_delay(0.000029, 0.2);

    moea::BorgParams params() const {
        return moea::BorgParams::for_problem(*problem, 0.01);
    }
    MultiMasterConfig config(std::uint64_t p, std::uint64_t islands,
                             std::uint64_t migration = 1000,
                             std::uint64_t seed = 1) const {
        MultiMasterConfig cfg;
        cfg.cluster = VirtualClusterConfig{p, tf.get(), tc.get(), ta.get(),
                                           seed};
        cfg.islands = islands;
        cfg.migration_interval = migration;
        return cfg;
    }
};

TEST(MultiMaster, CompletesGlobalBudget) {
    Fixture f;
    MultiMasterExecutor exec(*f.problem, f.params(), f.config(32, 4));
    const auto result = exec.run(8000);
    EXPECT_EQ(result.evaluations, 8000u);
    EXPECT_TRUE(result.completed_target);
    std::uint64_t total = 0;
    for (const auto e : result.island_evaluations) total += e;
    EXPECT_EQ(total, 8000u);
    EXPECT_EQ(result.island_evaluations.size(), 4u);
}

TEST(MultiMaster, TraceAttributesEventsToIslands) {
    Fixture f;
    MultiMasterExecutor exec(*f.problem, f.params(), f.config(32, 4, 500));
    obs::EventTrace trace;
    const auto result = exec.run(8000, {.trace = &trace});

    using obs::EventKind;
    EXPECT_EQ(trace.count(EventKind::result), result.evaluations);
    EXPECT_EQ(trace.count(EventKind::worker_spawn), 28u); // 32 - 4 masters
    EXPECT_EQ(trace.count(EventKind::migration), result.migrations);
    EXPECT_EQ(trace.count(EventKind::run_end), 1u);

    // Every per-island event carries a valid island index, and each
    // island's master_hold sum reproduces the reported busy fraction.
    std::vector<double> hold(4, 0.0);
    for (const obs::Event& e : trace.events()) {
        if (e.kind == EventKind::master_hold) {
            ASSERT_GE(e.actor, 0);
            ASSERT_LT(e.actor, 4);
            hold[static_cast<std::size_t>(e.actor)] += e.value;
        }
    }
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(hold[i] / result.elapsed, result.island_busy_fraction[i],
                    1e-12);
}

TEST(MultiMaster, WorkIsSharedAcrossIslands) {
    Fixture f;
    MultiMasterExecutor exec(*f.problem, f.params(), f.config(32, 4));
    const auto result = exec.run(8000);
    for (const auto e : result.island_evaluations) {
        EXPECT_GT(e, 1000u); // roughly a quarter each
        EXPECT_LT(e, 3000u);
    }
}

TEST(MultiMaster, MigrationsHappenAtInterval) {
    Fixture f;
    MultiMasterExecutor exec(*f.problem, f.params(),
                             f.config(16, 2, /*migration=*/500));
    const auto result = exec.run(6000);
    // ~6000 / 500 migrations expected, island-local counting.
    EXPECT_GE(result.migrations, 8u);
    EXPECT_LE(result.migrations, 16u);
}

TEST(MultiMaster, ZeroIntervalDisablesMigration) {
    Fixture f;
    MultiMasterExecutor exec(*f.problem, f.params(), f.config(16, 2, 0));
    const auto result = exec.run(4000);
    EXPECT_EQ(result.migrations, 0u);
}

TEST(MultiMaster, CombinedArchiveIsEpsilonNondominated) {
    Fixture f;
    MultiMasterExecutor exec(*f.problem, f.params(), f.config(24, 3));
    const auto result = exec.run(9000);
    ASSERT_FALSE(result.combined_archive.empty());
    const std::vector<double> eps{0.01, 0.01};
    for (const auto& a : result.combined_archive) {
        for (const auto& b : result.combined_archive) {
            if (&a == &b) continue;
            EXPECT_NE(moea::compare_boxes(
                          moea::epsilon_box(a.objectives, eps),
                          moea::epsilon_box(b.objectives, eps)),
                      moea::Dominance::kDominates);
        }
    }
}

TEST(MultiMaster, SearchQualityComparableToSingleMaster) {
    Fixture f;
    MultiMasterExecutor multi(*f.problem, f.params(), f.config(32, 4));
    const auto multi_result = multi.run(20000);

    std::vector<std::vector<double>> multi_front;
    for (const auto& s : multi_result.combined_archive)
        multi_front.push_back(s.objectives);
    const auto refset = problems::reference_set_for("zdt1");
    EXPECT_GT(metrics::normalized_hypervolume(multi_front, refset), 0.85);
}

TEST(MultiMaster, BeatsSaturatedSingleMasterOnElapsedTime) {
    // The paper's Section VI scenario: T_F = 0.001 and P = 512 saturates a
    // single master; 8 islands of 64 spread the same offered load over 8
    // masters and finish far sooner.
    Fixture f;
    const std::uint64_t n = 30000;

    moea::BorgMoea single_algo(*f.problem, f.params(), 3);
    VirtualClusterConfig single_cfg{512, f.tf.get(), f.tc.get(), f.ta.get(),
                                    4};
    AsyncMasterSlaveExecutor single(single_algo, *f.problem, single_cfg);
    const auto single_result = single.run(n);

    MultiMasterExecutor multi(*f.problem, f.params(),
                              f.config(512, 8, 1000, 4));
    const auto multi_result = multi.run(n);

    EXPECT_LT(multi_result.elapsed, 0.5 * single_result.elapsed);
}

TEST(MultiMaster, SingleIslandMatchesPlainExecutorTime) {
    // One island is exactly the asynchronous master-slave protocol; same
    // seeds must produce the same virtual elapsed time.
    Fixture f;
    const std::uint64_t n = 5000;

    MultiMasterExecutor multi(*f.problem, f.params(), f.config(16, 1, 0, 9));
    const auto multi_result = multi.run(n);

    moea::BorgMoea algo(*f.problem, f.params(),
                        util::derive_seed(9, 0, 100));
    VirtualClusterConfig cfg{16, f.tf.get(), f.tc.get(), f.ta.get(),
                             util::derive_seed(9, 0, 200)};
    AsyncMasterSlaveExecutor single(algo, *f.problem, cfg);
    const auto single_result = single.run(n);

    EXPECT_DOUBLE_EQ(multi_result.elapsed, single_result.elapsed);
}

TEST(MultiMaster, DeterministicGivenSeed) {
    Fixture f;
    MultiMasterExecutor a(*f.problem, f.params(), f.config(24, 3, 500, 77));
    MultiMasterExecutor b(*f.problem, f.params(), f.config(24, 3, 500, 77));
    const auto ra = a.run(6000);
    const auto rb = b.run(6000);
    EXPECT_DOUBLE_EQ(ra.elapsed, rb.elapsed);
    EXPECT_EQ(ra.migrations, rb.migrations);
    EXPECT_EQ(ra.island_evaluations, rb.island_evaluations);
}

TEST(MultiMaster, RejectsBadConfiguration) {
    Fixture f;
    EXPECT_THROW(
        MultiMasterExecutor(*f.problem, f.params(), f.config(8, 0)),
        std::invalid_argument);
    // 8 processors cannot host 5 islands (needs >= 2 each).
    EXPECT_THROW(
        MultiMasterExecutor(*f.problem, f.params(), f.config(8, 5)),
        std::invalid_argument);
    MultiMasterExecutor exec(*f.problem, f.params(), f.config(8, 2));
    EXPECT_THROW(exec.run(0), std::invalid_argument);
    exec.run(100);
    EXPECT_THROW(exec.run(100), std::logic_error);
}

} // namespace
