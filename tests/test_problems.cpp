#include "problems/problem.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <memory>
#include <numeric>

#include "problems/delayed.hpp"
#include "problems/dtlz.hpp"
#include "problems/uf.hpp"
#include "problems/zdt.hpp"
#include "stats/distribution.hpp"
#include "util/rng.hpp"

namespace {

using namespace borg;
using namespace borg::problems;

std::vector<double> eval(const Problem& p, const std::vector<double>& x) {
    std::vector<double> f(p.num_objectives());
    p.evaluate(x, f);
    return f;
}

// ----------------------------------------------------------------- DTLZ2

TEST(Dtlz2, DimensionsFollowConvention) {
    const Dtlz2 p(5);
    EXPECT_EQ(p.num_variables(), 14u); // M - 1 + k = 4 + 10
    EXPECT_EQ(p.num_objectives(), 5u);
    EXPECT_EQ(p.name(), "DTLZ2_5");
}

TEST(Dtlz2, OptimalPointLiesOnUnitSphere) {
    const Dtlz2 p(3);
    std::vector<double> x(p.num_variables(), 0.5); // g = 0
    const auto f = eval(p, x);
    double norm = 0.0;
    for (const double v : f) norm += v * v;
    EXPECT_NEAR(norm, 1.0, 1e-12);
}

TEST(Dtlz2, CornerPoints) {
    const Dtlz2 p(2);
    std::vector<double> x(p.num_variables(), 0.5);
    x[0] = 0.0; // position variable at 0: f = (1, 0)
    auto f = eval(p, x);
    EXPECT_NEAR(f[0], 1.0, 1e-12);
    EXPECT_NEAR(f[1], 0.0, 1e-12);
    x[0] = 1.0;
    f = eval(p, x);
    EXPECT_NEAR(f[0], 0.0, 1e-12);
    EXPECT_NEAR(f[1], 1.0, 1e-12);
}

TEST(Dtlz2, GShiftsSphereOutward) {
    const Dtlz2 p(3);
    std::vector<double> x(p.num_variables(), 0.5);
    x.back() = 1.0; // distance variable off-optimum: g = 0.25
    const auto f = eval(p, x);
    double norm = 0.0;
    for (const double v : f) norm += v * v;
    EXPECT_NEAR(std::sqrt(norm), 1.25, 1e-12);
}

class DtlzObjectiveCount : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DtlzObjectiveCount, AllFamilyMembersEvaluate) {
    const std::size_t m = GetParam();
    for (const auto& p :
         {std::unique_ptr<Problem>(std::make_unique<Dtlz1>(m)),
          std::unique_ptr<Problem>(std::make_unique<Dtlz2>(m)),
          std::unique_ptr<Problem>(std::make_unique<Dtlz3>(m)),
          std::unique_ptr<Problem>(std::make_unique<Dtlz4>(m))}) {
        util::Rng rng(1);
        std::vector<double> x(p->num_variables());
        for (double& v : x) v = rng.uniform();
        const auto f = eval(*p, x);
        EXPECT_EQ(f.size(), m);
        for (const double v : f) {
            EXPECT_TRUE(std::isfinite(v));
            EXPECT_GE(v, 0.0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Objectives, DtlzObjectiveCount,
                         ::testing::Values(2, 3, 5, 8));

TEST(Dtlz1, OptimalFrontIsLinear) {
    const Dtlz1 p(4);
    util::Rng rng(2);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<double> x(p.num_variables(), 0.5);
        for (std::size_t i = 0; i + 1 < 4u; ++i) x[i] = rng.uniform();
        const auto f = eval(p, x);
        const double sum = std::accumulate(f.begin(), f.end(), 0.0);
        EXPECT_NEAR(sum, 0.5, 1e-9);
    }
}

TEST(Dtlz3, MuchHarderGThanDtlz2) {
    const Dtlz3 p(2);
    std::vector<double> x(p.num_variables(), 0.2);
    const auto f = eval(p, x);
    // Multimodal g is enormous away from 0.5.
    EXPECT_GT(f[0] + f[1], 10.0);
}

TEST(Dtlz4, BiasParameterPreservesFront) {
    const Dtlz4 p(3);
    std::vector<double> x(p.num_variables(), 0.5);
    const auto f = eval(p, x);
    double norm = 0.0;
    for (const double v : f) norm += v * v;
    EXPECT_NEAR(norm, 1.0, 1e-9);
}

// ------------------------------------------------------------------- UF11

TEST(Uf11, PaperConfiguration) {
    const auto p = make_uf11();
    EXPECT_EQ(p->num_variables(), 30u);
    EXPECT_EQ(p->num_objectives(), 5u);
    EXPECT_DOUBLE_EQ(p->lower_bound(0), -0.5);
    EXPECT_DOUBLE_EQ(p->upper_bound(0), 1.5);
}

TEST(Uf11, DeterministicRotation) {
    const auto a = make_uf11();
    const auto b = make_uf11();
    util::Rng rng(3);
    std::vector<double> x(30);
    for (double& v : x) v = rng.uniform(-0.5, 1.5);
    EXPECT_EQ(eval(*a, x), eval(*b, x));
}

TEST(Uf11, CenterMapsToSphere) {
    // x = center: rotation fixes it, g = 0, position variables at 0.5.
    const RotatedDtlz2 p(5, 30, kUf11RotationSeed);
    std::vector<double> x(30, 0.5);
    const auto f = eval(p, x);
    double norm = 0.0;
    for (const double v : f) norm += v * v;
    EXPECT_NEAR(norm, 1.0, 1e-10);
}

TEST(Uf11, ParetoSetRepresentableWithinBounds) {
    // Map DTLZ2-optimal y vectors back to decision space and check bounds.
    const RotatedDtlz2 p(5, 30, kUf11RotationSeed);
    util::Rng rng(4);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<double> y(30, 0.5);
        for (int i = 0; i < 4; ++i) y[i] = rng.uniform();
        const auto x = p.to_decision_space(y);
        EXPECT_TRUE(p.within_bounds(x, 1e-9));
        const auto f = eval(p, x);
        double norm = 0.0;
        for (const double v : f) norm += v * v;
        EXPECT_NEAR(norm, 1.0, 1e-9) << "trial " << trial;
    }
}

TEST(Uf11, NonSeparable) {
    // Perturbing a single decision variable must move the distance metric g
    // through many rotated coordinates: compare against separable DTLZ2
    // where perturbing a position variable keeps the point on the sphere.
    const RotatedDtlz2 p(5, 30, kUf11RotationSeed);
    std::vector<double> x(30, 0.5);
    const auto base = eval(p, x);
    x[0] += 0.3;
    const auto moved = eval(p, x);
    double base_norm = 0.0, moved_norm = 0.0;
    for (const double v : base) base_norm += v * v;
    for (const double v : moved) moved_norm += v * v;
    // The perturbation leaks into g, pushing the point off the unit sphere.
    EXPECT_GT(std::sqrt(moved_norm), std::sqrt(base_norm) + 1e-3);
}

TEST(Uf11, ObjectiveScalesApplied) {
    const std::vector<double> scales{1.0, 2.0, 3.0, 4.0, 5.0};
    const RotatedDtlz2 scaled(5, 30, kUf11RotationSeed, scales);
    const RotatedDtlz2 plain(5, 30, kUf11RotationSeed);
    std::vector<double> x(30, 0.5);
    const auto fs = eval(scaled, x);
    const auto fp = eval(plain, x);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_NEAR(fs[i], scales[i] * fp[i], 1e-12);
}

TEST(Uf11, OutOfBoxRotationPenalized) {
    const RotatedDtlz2 p(5, 30, kUf11RotationSeed);
    // A far corner rotates well outside the unit box, so the penalty term
    // must push objectives above the unpenalized bound (1 + g) <= 1 + n/4.
    std::vector<double> x(30, 1.5);
    const auto f = eval(p, x);
    for (const double v : f) EXPECT_TRUE(std::isfinite(v));
    EXPECT_GT(*std::max_element(f.begin(), f.end()), 1.0);
}

// -------------------------------------------------------------------- ZDT

TEST(Zdt1, FrontShape) {
    const Zdt1 p;
    std::vector<double> x(p.num_variables(), 0.0);
    x[0] = 0.25;
    const auto f = eval(p, x);
    EXPECT_DOUBLE_EQ(f[0], 0.25);
    EXPECT_NEAR(f[1], 1.0 - std::sqrt(0.25), 1e-12);
}

TEST(Zdt2, FrontShape) {
    const Zdt2 p;
    std::vector<double> x(p.num_variables(), 0.0);
    x[0] = 0.5;
    const auto f = eval(p, x);
    EXPECT_NEAR(f[1], 0.75, 1e-12);
}

TEST(Zdt3, DisconnectedFrontDipsNegative) {
    const Zdt3 p;
    std::vector<double> x(p.num_variables(), 0.0);
    x[0] = 0.85;
    const auto f = eval(p, x);
    EXPECT_LT(f[1], 0.0); // the sine term drives f2 below zero
}

TEST(Zdt, GPenalizesDistanceVariables) {
    const Zdt1 p;
    std::vector<double> on(p.num_variables(), 0.0);
    std::vector<double> off(p.num_variables(), 0.5);
    on[0] = off[0] = 0.3;
    EXPECT_LT(eval(p, on)[1], eval(p, off)[1]);
}

// ---------------------------------------------------------------- factory

TEST(Factory, KnownNames) {
    EXPECT_EQ(make_problem("dtlz2_5")->name(), "DTLZ2_5");
    EXPECT_EQ(make_problem("dtlz1_3")->name(), "DTLZ1_3");
    EXPECT_EQ(make_problem("dtlz2")->num_objectives(), 2u);
    EXPECT_EQ(make_problem("uf11")->num_variables(), 30u);
    EXPECT_EQ(make_problem("zdt3")->name(), "ZDT3");
}

TEST(Factory, UnknownNameThrows) {
    EXPECT_THROW(make_problem("nope"), std::invalid_argument);
}

TEST(WithinBounds, DetectsViolations) {
    const auto p = make_problem("dtlz2");
    std::vector<double> x(p->num_variables(), 0.5);
    EXPECT_TRUE(p->within_bounds(x));
    x[0] = 1.5;
    EXPECT_FALSE(p->within_bounds(x));
    x[0] = 0.5;
    x.pop_back();
    EXPECT_FALSE(p->within_bounds(x)); // wrong arity
}

// ---------------------------------------------------------------- delayed

TEST(Delayed, ForwardsEvaluation) {
    auto inner = std::shared_ptr<const Problem>(make_problem("zdt1"));
    const DelayedProblem delayed(inner, stats::make_delay(0.0, 0.0), 1, false);
    std::vector<double> x(inner->num_variables(), 0.0);
    x[0] = 0.5;
    EXPECT_EQ(eval(delayed, x), eval(*inner, x));
    EXPECT_EQ(delayed.num_variables(), inner->num_variables());
    EXPECT_EQ(delayed.name(), "ZDT1+delay");
}

TEST(Delayed, SampleDelayMatchesDistribution) {
    auto inner = std::shared_ptr<const Problem>(make_problem("zdt1"));
    const DelayedProblem delayed(inner, stats::make_delay(0.01, 0.1), 7, false);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += delayed.sample_delay();
    EXPECT_NEAR(sum / n, 0.01, 1e-4);
}

TEST(Delayed, PhysicalSleepRoughlyHonored) {
    auto inner = std::shared_ptr<const Problem>(make_problem("zdt1"));
    const DelayedProblem delayed(inner, stats::make_delay(0.01, 0.0), 7, true);
    std::vector<double> x(inner->num_variables(), 0.5);
    std::vector<double> f(2);
    const auto t0 = std::chrono::steady_clock::now();
    delayed.evaluate(x, f);
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_GE(dt, 0.009);
    EXPECT_LT(dt, 0.05);
}

TEST(PreciseSleep, ShortDelaysAccurate) {
    const auto t0 = std::chrono::steady_clock::now();
    problems::precise_sleep(0.002);
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_GE(dt, 0.0019);
    EXPECT_LT(dt, 0.01);
}

} // namespace
