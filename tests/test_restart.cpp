#include "moea/restart.hpp"

#include <gtest/gtest.h>

namespace {

using namespace borg::moea;
using borg::util::Rng;

Solution evaluated(std::vector<double> objectives) {
    Solution s;
    s.variables = {0.5};
    s.set_objectives(objectives);
    return s;
}

RestartParams small_params() {
    RestartParams p;
    p.window = 10;
    p.gamma = 4.0;
    p.min_population = 4;
    p.max_population = 100;
    return p;
}

TEST(Restart, NoTriggerBeforeWindow) {
    RestartController ctl(small_params());
    EpsilonBoxArchive archive({0.1, 0.1});
    Population pop(4);
    for (int i = 0; i < 9; ++i)
        EXPECT_FALSE(ctl.should_restart(archive, pop));
}

TEST(Restart, StagnationTriggersAtWindow) {
    RestartController ctl(small_params());
    EpsilonBoxArchive archive({0.1, 0.1});
    Population pop(4);
    // No epsilon progress at all during the window.
    bool fired = false;
    for (int i = 0; i < 10; ++i) fired = ctl.should_restart(archive, pop);
    EXPECT_TRUE(fired);
}

TEST(Restart, ProgressSuppressesStagnationTrigger) {
    RestartParams params = small_params();
    params.ratio_tolerance = 100.0; // disable the ratio trigger
    RestartController ctl(params);
    EpsilonBoxArchive archive({0.1, 0.1});
    Population pop(4);
    bool fired = false;
    for (int window = 0; window < 5; ++window) {
        // Fresh epsilon progress inside every window (coordinates sit at
        // box centers so floating-point floor cannot merge boxes).
        archive.add(evaluated({0.85 - 0.1 * window, 0.05 + 0.1 * window}));
        for (int i = 0; i < 10; ++i)
            fired = fired || ctl.should_restart(archive, pop);
    }
    EXPECT_FALSE(fired);
}

TEST(Restart, RatioDriftTriggers) {
    RestartParams params = small_params();
    RestartController ctl(params);
    EpsilonBoxArchive archive({0.1, 0.1});
    // 12 nondominated boxes: desired population = 4 * 12 = 48.
    for (int i = 0; i < 12; ++i)
        archive.add(evaluated({0.05 + 0.08 * i, 0.95 - 0.08 * i}));
    ASSERT_GE(archive.size(), 10u);
    Population pop(4); // far below gamma * archive
    bool fired = false;
    for (int i = 0; i < 10; ++i) fired = ctl.should_restart(archive, pop);
    EXPECT_TRUE(fired);
}

TEST(Restart, PerformRebuildsPopulationFromArchive) {
    RestartController ctl(small_params());
    EpsilonBoxArchive archive({0.1, 0.1});
    for (int i = 0; i < 5; ++i)
        archive.add(evaluated({0.05 + 0.18 * i, 0.95 - 0.18 * i}));
    Population pop(4);
    Rng rng(1);
    for (int i = 0; i < 4; ++i) pop.inject(evaluated({2.0, 2.0}), rng);

    const std::size_t mutants = ctl.perform_restart(archive, pop);
    EXPECT_EQ(ctl.restarts(), 1u);
    EXPECT_EQ(pop.target_size(), 4 * archive.size());
    EXPECT_EQ(pop.size(), archive.size());
    EXPECT_EQ(mutants, pop.target_size() - archive.size());
}

TEST(Restart, PopulationClampedToLimits) {
    RestartParams params = small_params();
    params.max_population = 10;
    RestartController ctl(params);
    EpsilonBoxArchive archive({0.01, 0.01});
    for (int i = 0; i < 40; ++i)
        archive.add(evaluated({0.01 + 0.024 * i, 0.97 - 0.024 * i}));
    Population pop(4);
    ctl.perform_restart(archive, pop);
    EXPECT_EQ(pop.target_size(), 10u);

    // Lower clamp with an empty-ish archive.
    EpsilonBoxArchive tiny({0.5, 0.5});
    tiny.add(evaluated({0.1, 0.1}));
    Population pop2(50);
    ctl.perform_restart(tiny, pop2);
    EXPECT_EQ(pop2.target_size(), params.min_population);
}

TEST(Restart, WindowResetsAfterRestart) {
    RestartController ctl(small_params());
    EpsilonBoxArchive archive({0.1, 0.1});
    archive.add(evaluated({0.5, 0.5}));
    Population pop(4);
    // The first window's check sees the pre-loop epsilon progress; the
    // second window observes stagnation and fires.
    bool fired = false;
    for (int i = 0; i < 20 && !fired; ++i)
        fired = ctl.should_restart(archive, pop);
    ASSERT_TRUE(fired);
    ctl.perform_restart(archive, pop);
    // Immediately after a restart the stagnation window starts afresh.
    for (int i = 0; i < 9; ++i)
        EXPECT_FALSE(ctl.should_restart(archive, pop));
}

TEST(Restart, TournamentSizeTracksPopulation) {
    RestartParams params = small_params();
    params.selection_ratio = 0.02;
    RestartController ctl(params);
    Population small(50);
    EXPECT_EQ(ctl.tournament_size(small), 2u); // ceil(1.0) but min 2
    Population big(1000);
    EXPECT_EQ(ctl.tournament_size(big), 20u);
}

TEST(Restart, RejectsBadParams) {
    RestartParams p = small_params();
    p.window = 0;
    EXPECT_THROW(RestartController{p}, std::invalid_argument);
    p = small_params();
    p.gamma = 0.5;
    EXPECT_THROW(RestartController{p}, std::invalid_argument);
    p = small_params();
    p.max_population = p.min_population - 1;
    EXPECT_THROW(RestartController{p}, std::invalid_argument);
}

} // namespace
