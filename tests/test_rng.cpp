#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace {

using borg::util::derive_seed;
using borg::util::Rng;
using borg::util::splitmix64;

TEST(Rng, DeterministicForSameSeed) {
    Rng a(12345), b(12345);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a() == b()) ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 100000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanAndVariance) {
    Rng rng(99);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        sum += u;
        sum_sq += u * u;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.5, 0.005);
    EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.uniform(-2.5, 7.5);
        ASSERT_GE(x, -2.5);
        ASSERT_LT(x, 7.5);
    }
}

TEST(Rng, BelowIsUnbiased) {
    Rng rng(11);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i) ++counts[rng.below(10)];
    for (const int c : counts)
        EXPECT_NEAR(static_cast<double>(c), n / 10.0, 5.0 * std::sqrt(n / 10.0));
}

TEST(Rng, BelowOneAlwaysZero) {
    Rng rng(4);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BetweenInclusive) {
    Rng rng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.between(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
    Rng rng(21);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum_sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.01);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, GaussianScaled) {
    Rng rng(22);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, FlipProbability) {
    Rng rng(31);
    int heads = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (rng.flip(0.3)) ++heads;
    EXPECT_NEAR(heads / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, FlipZeroAndOne) {
    Rng rng(32);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(rng.flip(0.0));
        EXPECT_TRUE(rng.flip(1.0));
    }
}

TEST(Rng, SampleIndicesDistinct) {
    Rng rng(41);
    for (int trial = 0; trial < 100; ++trial) {
        const auto picks = rng.sample_indices(50, 10);
        ASSERT_EQ(picks.size(), 10u);
        const std::set<std::size_t> unique(picks.begin(), picks.end());
        EXPECT_EQ(unique.size(), 10u);
        for (const auto p : picks) EXPECT_LT(p, 50u);
    }
}

TEST(Rng, SampleIndicesFullRange) {
    Rng rng(42);
    auto picks = rng.sample_indices(8, 8);
    std::sort(picks.begin(), picks.end());
    for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(picks[i], i);
}

TEST(Rng, SampleIndicesEmpty) {
    Rng rng(43);
    EXPECT_TRUE(rng.sample_indices(5, 0).empty());
}

TEST(Rng, SplitProducesIndependentStream) {
    Rng parent(55);
    Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (parent() == child()) ++same;
    EXPECT_LE(same, 1);
}

TEST(Rng, SplitMixAdvancesState) {
    std::uint64_t x = 0;
    const auto a = splitmix64(x);
    const auto b = splitmix64(x);
    EXPECT_NE(a, b);
}

TEST(Rng, DeriveSeedSeparatesStreams) {
    const auto a = derive_seed(100, 0, 0);
    const auto b = derive_seed(100, 1, 0);
    const auto c = derive_seed(100, 0, 1);
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(b, c);
    EXPECT_EQ(a, derive_seed(100, 0, 0));
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
    static_assert(std::uniform_random_bit_generator<Rng>);
    SUCCEED();
}

} // namespace
