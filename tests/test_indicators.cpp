#include "metrics/indicators.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace borg::metrics;

const Front kRef{{0.0, 1.0}, {0.5, 0.5}, {1.0, 0.0}};

TEST(Gd, ZeroWhenOnFront) {
    EXPECT_DOUBLE_EQ(generational_distance(kRef, kRef), 0.0);
}

TEST(Gd, KnownOffset) {
    const Front approx{{0.5 + 0.3, 0.5}};
    EXPECT_NEAR(generational_distance(approx, kRef), 0.3, 1e-12);
}

TEST(Gd, AveragesOverPoints) {
    const Front approx{{0.5, 0.5}, {0.5, 0.9}}; // distances 0 and 0.4
    EXPECT_NEAR(generational_distance(approx, kRef), 0.2, 1e-12);
}

TEST(Igd, PenalizesPoorCoverage) {
    // One perfect point covers one reference point but leaves the others.
    const Front approx{{0.5, 0.5}};
    const double igd = inverted_generational_distance(approx, kRef);
    EXPECT_NEAR(igd, (std::sqrt(0.5) + 0.0 + std::sqrt(0.5)) / 3.0, 1e-12);
}

TEST(Igd, ZeroForFullCoverage) {
    EXPECT_DOUBLE_EQ(inverted_generational_distance(kRef, kRef), 0.0);
}

TEST(Epsilon, ZeroWhenCovering) {
    EXPECT_DOUBLE_EQ(additive_epsilon_indicator(kRef, kRef), 0.0);
}

TEST(Epsilon, UniformShift) {
    Front shifted;
    for (const auto& p : kRef) shifted.push_back({p[0] + 0.1, p[1] + 0.1});
    EXPECT_NEAR(additive_epsilon_indicator(shifted, kRef), 0.1, 1e-12);
}

TEST(Epsilon, NegativeWhenStrictlyBetter) {
    Front better;
    for (const auto& p : kRef) better.push_back({p[0] - 0.05, p[1] - 0.05});
    EXPECT_NEAR(additive_epsilon_indicator(better, kRef), -0.05, 1e-12);
}

TEST(Epsilon, WorstReferencePointGoverns) {
    // Covers two reference points exactly but misses the third by 0.4.
    const Front approx{{0.0, 1.0}, {0.5, 0.5}, {1.0, 0.4}};
    EXPECT_NEAR(additive_epsilon_indicator(approx, kRef), 0.4, 1e-12);
}

TEST(Spacing, UniformSpacingIsZero) {
    const Front evenly{{0.0, 1.0}, {0.25, 0.75}, {0.5, 0.5}, {0.75, 0.25}};
    EXPECT_NEAR(spacing(evenly), 0.0, 1e-12);
}

TEST(Spacing, UnevenSpacingPositive) {
    const Front uneven{{0.0, 1.0}, {0.05, 0.95}, {1.0, 0.0}};
    EXPECT_GT(spacing(uneven), 0.1);
}

TEST(Indicators, EmptyInputsThrow) {
    EXPECT_THROW(generational_distance({}, kRef), std::invalid_argument);
    EXPECT_THROW(inverted_generational_distance(kRef, {}),
                 std::invalid_argument);
    EXPECT_THROW(additive_epsilon_indicator({}, kRef), std::invalid_argument);
    EXPECT_THROW(spacing({{1.0, 1.0}}), std::invalid_argument);
}

} // namespace
