#include "parallel/thread_executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>

#include "metrics/hypervolume.hpp"
#include "parallel/message.hpp"
#include "problems/delayed.hpp"
#include "problems/problem.hpp"
#include "problems/reference_set.hpp"
#include "stats/fitting.hpp"
#include "stats/summary.hpp"

#include <thread>

namespace {

using namespace borg;
using namespace borg::parallel;

TEST(Channel, SendReceiveOrder) {
    Channel<int> ch;
    ch.send(1);
    ch.send(2);
    ch.send(3);
    EXPECT_EQ(ch.receive(), 1);
    EXPECT_EQ(ch.receive(), 2);
    EXPECT_EQ(ch.receive(), 3);
}

TEST(Channel, CloseDrainsThenNullopt) {
    Channel<int> ch;
    ch.send(7);
    ch.close();
    EXPECT_EQ(ch.receive(), 7);
    EXPECT_EQ(ch.receive(), std::nullopt);
}

TEST(Channel, SendAfterCloseDropped) {
    Channel<int> ch;
    ch.close();
    ch.send(1);
    EXPECT_EQ(ch.receive(), std::nullopt);
}

TEST(Channel, CrossThreadDelivery) {
    Channel<int> ch;
    std::thread producer([&] {
        for (int i = 0; i < 100; ++i) ch.send(i);
        ch.close();
    });
    int expected = 0;
    while (auto v = ch.receive()) EXPECT_EQ(*v, expected++);
    EXPECT_EQ(expected, 100);
    producer.join();
}

moea::BorgParams quick_params(const problems::Problem& problem) {
    return moea::BorgParams::for_problem(problem, 0.01);
}

TEST(ThreadExecutor, CompletesExactEvaluationCount) {
    const auto problem = problems::make_problem("zdt1");
    moea::BorgMoea algo(*problem, quick_params(*problem), 1);
    ThreadMasterSlaveExecutor exec(4);
    const auto result = exec.run(algo, *problem, 5000);
    EXPECT_EQ(result.evaluations, 5000u);
    EXPECT_EQ(algo.evaluations(), 5000u);
    EXPECT_EQ(result.ta_samples.size(), 5000u);
    EXPECT_EQ(result.tc_samples.size(), 5000u);
}

TEST(ThreadExecutor, SearchConvergesUnderRealConcurrency) {
    const auto problem = problems::make_problem("zdt1");
    moea::BorgMoea algo(*problem, quick_params(*problem), 2);
    ThreadMasterSlaveExecutor exec(8);
    exec.run(algo, *problem, 20000);
    const auto refset = problems::reference_set_for("zdt1");
    const double hv = metrics::normalized_hypervolume(
        algo.archive().objective_vectors(), refset);
    EXPECT_GT(hv, 0.9);
}

TEST(ThreadExecutor, PhysicalDelayGivesRealSpeedup) {
    // 1 ms controlled delay, 8 workers: wall time must be well below the
    // serial N * T_F and the measured T_F share must dominate.
    auto inner =
        std::shared_ptr<const problems::Problem>(problems::make_problem("zdt1"));
    const problems::DelayedProblem delayed(
        inner, stats::make_delay(0.001, 0.1), 3, true);
    moea::BorgMoea algo(delayed, quick_params(delayed), 3);
    ThreadMasterSlaveExecutor exec(8);
    const auto result = exec.run(algo, delayed, 2000);
    const double serial_estimate = 2000 * 0.001;
    EXPECT_LT(result.elapsed, 0.6 * serial_estimate);
    EXPECT_GT(result.elapsed, serial_estimate / 8.5);
}

TEST(ThreadExecutor, MeasuredSamplesFeedTheFittingPipeline) {
    // End-to-end calibration workflow: run, fit T_A samples, check the
    // fitted distribution reproduces the sample mean.
    const auto problem = problems::make_problem("zdt1");
    moea::BorgMoea algo(*problem, quick_params(*problem), 4);
    ThreadMasterSlaveExecutor exec(4);
    const auto result = exec.run(algo, *problem, 4000);
    for (const double ta : result.ta_samples) EXPECT_GE(ta, 0.0);
    const auto fitted = stats::best_fit(result.ta_samples);
    const auto summary = stats::summarize(result.ta_samples);
    // Real OS timing samples are heavy-tailed (scheduler jitter spikes),
    // so the maximum-likelihood family's mean can sit well off the sample
    // mean; require order-of-magnitude agreement, which is what the
    // queueing model needs from the calibration.
    EXPECT_GT(fitted->mean(), 0.2 * summary.mean);
    EXPECT_LT(fitted->mean(), 5.0 * summary.mean);
}

TEST(ThreadExecutor, SingleWorkerDegeneratesToSerialOrder) {
    const auto problem = problems::make_problem("zdt1");
    moea::BorgMoea threaded(*problem, quick_params(*problem), 5);
    ThreadMasterSlaveExecutor exec(1);
    exec.run(threaded, *problem, 3000);

    // With one worker the evaluation order is serial, so the archive must
    // match a serial run with the same seed exactly.
    moea::BorgMoea serial(*problem, quick_params(*problem), 5);
    moea::run_serial(serial, *problem, 3000);
    ASSERT_EQ(threaded.archive().size(), serial.archive().size());
    for (std::size_t i = 0; i < serial.archive().size(); ++i)
        EXPECT_EQ(threaded.archive()[i].objectives,
                  serial.archive()[i].objectives);
}

/// Forwards to ZDT1 but throws once a configured number of evaluations has
/// been reached — exercised concurrently from the worker threads.
class ThrowingProblem final : public problems::Problem {
public:
    ThrowingProblem(std::unique_ptr<problems::Problem> inner,
                    std::uint64_t throw_after)
        : inner_(std::move(inner)), throw_after_(throw_after) {}

    std::string name() const override { return "throwing_" + inner_->name(); }
    std::size_t num_variables() const override {
        return inner_->num_variables();
    }
    std::size_t num_objectives() const override {
        return inner_->num_objectives();
    }
    double lower_bound(std::size_t i) const override {
        return inner_->lower_bound(i);
    }
    double upper_bound(std::size_t i) const override {
        return inner_->upper_bound(i);
    }
    void evaluate(std::span<const double> variables,
                  std::span<double> objectives) const override {
        if (calls_.fetch_add(1, std::memory_order_relaxed) >= throw_after_)
            throw std::runtime_error("injected evaluation failure");
        inner_->evaluate(variables, objectives);
    }

private:
    std::unique_ptr<problems::Problem> inner_;
    std::uint64_t throw_after_;
    mutable std::atomic<std::uint64_t> calls_{0};
};

TEST(ThreadExecutor, WorkerExceptionRethrownInMaster) {
    // Regression: an exception escaping moea::evaluate on a worker thread
    // used to leave the coroutine-free thread body, calling std::terminate
    // (or, had the thread died quietly, the master would block forever on
    // the result channel). The executor must capture it, join the fleet,
    // and rethrow in the calling thread.
    const ThrowingProblem problem(problems::make_problem("zdt1"), 500);
    moea::BorgMoea algo(problem, quick_params(problem), 11);
    ThreadMasterSlaveExecutor exec(4);
    EXPECT_THROW(exec.run(algo, problem, 5000), std::runtime_error);
    // The fleet was joined and the run aborted short of the target.
    EXPECT_LT(algo.evaluations(), 5000u);
}

TEST(ThreadExecutor, ImmediateWorkerExceptionStillRethrown) {
    // Every evaluation throws: the master never ingests a single result.
    const ThrowingProblem problem(problems::make_problem("zdt1"), 0);
    moea::BorgMoea algo(problem, quick_params(problem), 12);
    ThreadMasterSlaveExecutor exec(2);
    EXPECT_THROW(exec.run(algo, problem, 100), std::runtime_error);
    EXPECT_EQ(algo.evaluations(), 0u);
}

TEST(ThreadExecutor, RejectsBadInput) {
    EXPECT_THROW(ThreadMasterSlaveExecutor(0), std::invalid_argument);
    const auto problem = problems::make_problem("zdt1");
    moea::BorgMoea algo(*problem, quick_params(*problem), 6);
    ThreadMasterSlaveExecutor exec(2);
    EXPECT_THROW(exec.run(algo, *problem, 0), std::invalid_argument);
    exec.run(algo, *problem, 10);
    EXPECT_THROW(exec.run(algo, *problem, 10), std::logic_error);
}

} // namespace
