/// Heterogeneity and failure-injection tests for the virtual cluster:
/// stragglers hurt the synchronous barrier far more than the asynchronous
/// protocol (extending Section VI-B's variable-T_F argument to variable
/// *workers*), and the asynchronous master-slave run survives node loss.

#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "moea/nsga2.hpp"
#include "obs/event_trace.hpp"
#include "parallel/async_executor.hpp"
#include "parallel/multi_master.hpp"
#include "parallel/sync_executor.hpp"
#include "parallel/trace_check.hpp"
#include "problems/problem.hpp"

namespace {

using namespace borg;
using namespace borg::parallel;
using borg::stats::Distribution;
using borg::stats::make_delay;

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Fixture {
    std::unique_ptr<problems::Problem> problem =
        problems::make_problem("zdt1");
    std::unique_ptr<Distribution> tf = make_delay(0.01, 0.0);
    std::unique_ptr<Distribution> tc = make_delay(0.000006, 0.0);
    std::unique_ptr<Distribution> ta = make_delay(0.000029, 0.0);

    moea::BorgParams params() const {
        return moea::BorgParams::for_problem(*problem, 0.01);
    }
    VirtualClusterConfig cluster(std::uint64_t p,
                                 std::uint64_t seed = 1) const {
        return VirtualClusterConfig{p, tf.get(), tc.get(), ta.get(), seed};
    }
};

// ---------------------------------------------------------- heterogeneity

TEST(Heterogeneity, AsyncCapacityWeightedThroughput) {
    // 8 workers, half of them 3x slower. Aggregate speed = 4 + 4/3 = 5.33
    // worker-equivalents, so elapsed ~ homogeneous * 8 / 5.33.
    Fixture f;
    VirtualClusterConfig cfg = f.cluster(9, 2);
    cfg.worker_speed = {1, 1, 1, 1, 3, 3, 3, 3};

    moea::BorgMoea hetero_algo(*f.problem, f.params(), 3);
    const auto hetero =
        AsyncMasterSlaveExecutor(hetero_algo, *f.problem, cfg).run(8000);

    moea::BorgMoea homo_algo(*f.problem, f.params(), 3);
    const auto homo =
        AsyncMasterSlaveExecutor(homo_algo, *f.problem, f.cluster(9, 2))
            .run(8000);

    const double expected_ratio = 8.0 / (4.0 + 4.0 / 3.0);
    EXPECT_NEAR(hetero.elapsed / homo.elapsed, expected_ratio,
                0.15 * expected_ratio);
}

TEST(Heterogeneity, StragglersHurtSyncMoreThanAsync) {
    // One 5x straggler among 16 workers. The synchronous barrier waits for
    // it every generation; the asynchronous pool simply routes most work
    // around it.
    Fixture f;
    std::vector<double> speeds(16, 1.0);
    speeds[0] = 5.0;
    const std::uint64_t n = 6400;

    VirtualClusterConfig async_cfg = f.cluster(17, 5);
    async_cfg.worker_speed = speeds;
    moea::BorgMoea async_algo(*f.problem, f.params(), 6);
    const auto async_straggler =
        AsyncMasterSlaveExecutor(async_algo, *f.problem, async_cfg).run(n);
    moea::BorgMoea async_base_algo(*f.problem, f.params(), 6);
    const auto async_base =
        AsyncMasterSlaveExecutor(async_base_algo, *f.problem,
                                 f.cluster(17, 5))
            .run(n);

    VirtualClusterConfig sync_cfg = f.cluster(17, 5);
    sync_cfg.worker_speed = speeds;
    moea::Nsga2 sync_algo(*f.problem, 17, 7);
    const auto sync_straggler =
        SyncMasterSlaveExecutor(sync_algo, *f.problem, sync_cfg).run(n);
    moea::Nsga2 sync_base_algo(*f.problem, 17, 7);
    const auto sync_base =
        SyncMasterSlaveExecutor(sync_base_algo, *f.problem, f.cluster(17, 5))
            .run(n);

    const double async_penalty = async_straggler.elapsed / async_base.elapsed;
    const double sync_penalty = sync_straggler.elapsed / sync_base.elapsed;
    EXPECT_LT(async_penalty, 1.35); // absorbs the straggler
    EXPECT_GT(sync_penalty, 3.0);   // every generation waits 5x
    EXPECT_GT(sync_penalty, 2.0 * async_penalty);
}

TEST(Heterogeneity, ValidatesSpeedVector) {
    Fixture f;
    VirtualClusterConfig cfg = f.cluster(4);
    cfg.worker_speed = {1.0, 1.0}; // wrong size for 3 workers
    EXPECT_THROW(validate(cfg), std::invalid_argument);
    cfg.worker_speed = {1.0, 0.0, 1.0};
    EXPECT_THROW(validate(cfg), std::invalid_argument);
}

// -------------------------------------------------------- fault injection

TEST(FaultInjection, RunCompletesDespiteFailures) {
    Fixture f;
    VirtualClusterConfig cfg = f.cluster(9, 8);
    // Half the workers die partway through the run.
    cfg.worker_failure_at = {0.5, 0.5, 0.5, 0.5, kInf, kInf, kInf, kInf};
    moea::BorgMoea algo(*f.problem, f.params(), 9);
    const auto result =
        AsyncMasterSlaveExecutor(algo, *f.problem, cfg).run(8000);
    EXPECT_EQ(result.evaluations, 8000u);
    EXPECT_TRUE(result.completed_target);
    EXPECT_EQ(result.failed_workers, 4u);
    EXPECT_EQ(algo.evaluations(), 8000u);
}

TEST(FaultInjection, FailuresSlowTheRunProportionally) {
    Fixture f;
    const std::uint64_t n = 8000;
    moea::BorgMoea base_algo(*f.problem, f.params(), 10);
    const auto base =
        AsyncMasterSlaveExecutor(base_algo, *f.problem, f.cluster(9, 11))
            .run(n);

    VirtualClusterConfig cfg = f.cluster(9, 11);
    cfg.worker_failure_at = {0.0, 0.0, 0.0, 0.0, kInf, kInf, kInf, kInf};
    moea::BorgMoea half_algo(*f.problem, f.params(), 10);
    const auto half =
        AsyncMasterSlaveExecutor(half_algo, *f.problem, cfg).run(n);

    // Immediate loss of half the workers roughly doubles the runtime.
    EXPECT_NEAR(half.elapsed / base.elapsed, 2.0, 0.2);
}

TEST(FaultInjection, TotalFailureReturnsPartialRun) {
    Fixture f;
    VirtualClusterConfig cfg = f.cluster(5, 12);
    cfg.worker_failure_at = {0.05, 0.05, 0.05, 0.05};
    moea::BorgMoea algo(*f.problem, f.params(), 13);
    const auto result =
        AsyncMasterSlaveExecutor(algo, *f.problem, cfg).run(100000);
    EXPECT_LT(result.evaluations, 100000u);
    EXPECT_EQ(result.failed_workers, 4u);
    EXPECT_GT(result.evaluations, 0u); // work done before the failures
    // Regression: total fleet loss used to return silently with the same
    // shape as a successful run; the caller could not tell a starved run
    // from a completed one.
    EXPECT_FALSE(result.completed_target);
    EXPECT_GT(result.elapsed, 0.0); // time the simulation actually drained
}

TEST(FaultInjection, SearchQualityUnaffectedByWhoEvaluates) {
    // Failures change only the schedule; surviving capacity still drives
    // the archive forward.
    Fixture f;
    VirtualClusterConfig cfg = f.cluster(9, 14);
    cfg.worker_failure_at = {1.0, 2.0, kInf, kInf, kInf, kInf, kInf, kInf};
    moea::BorgMoea algo(*f.problem, f.params(), 15);
    AsyncMasterSlaveExecutor(algo, *f.problem, cfg).run(20000);
    EXPECT_GT(algo.archive().size(), 20u);
}

TEST(FaultInjection, ValidatesFailureVector) {
    Fixture f;
    VirtualClusterConfig cfg = f.cluster(4);
    cfg.worker_failure_at = {1.0}; // wrong size
    EXPECT_THROW(validate(cfg), std::invalid_argument);
}

// --------------------------------------- sync executor fault injection
//
// The synchronous protocol has no redispatch path: a worker that dies
// while the barrier waits on its result deserts the generation, so the
// run aborts after the surviving receives (DESIGN.md §10). Only workers
// already dead at plan time can be routed around.

TEST(SyncFaultInjection, PreRunFailuresShrinkTheBarrier) {
    Fixture f;
    VirtualClusterConfig cfg = f.cluster(9, 16);
    cfg.worker_failure_at = {0.0, 0.0, kInf, kInf, kInf, kInf, kInf, kInf};
    moea::Nsga2 algo(*f.problem, 16, 17);
    const auto result =
        SyncMasterSlaveExecutor(algo, *f.problem, cfg).run(1600);
    EXPECT_TRUE(result.completed_target);
    EXPECT_GE(result.evaluations, 1600u);
    EXPECT_EQ(result.failed_workers, 2u);
}

TEST(SyncFaultInjection, MidGenerationFailureStarvesTheRun) {
    Fixture f;
    VirtualClusterConfig cfg = f.cluster(9, 18);
    cfg.worker_failure_at = {kInf, kInf, 0.05, kInf, kInf, kInf, kInf, kInf};
    moea::Nsga2 algo(*f.problem, 16, 19);
    obs::EventTrace trace;
    const auto result = SyncMasterSlaveExecutor(algo, *f.problem, cfg)
                            .run(3200, {.trace = &trace});
    EXPECT_FALSE(result.completed_target);
    EXPECT_EQ(result.failed_workers, 1u);
    EXPECT_GT(result.evaluations, 0u); // generations before the death count
    EXPECT_LT(result.evaluations, 3200u);
    // The aborted run's accounting still matches its own trace.
    for (const auto& issue : cross_validate(trace, result))
        ADD_FAILURE() << issue;
}

TEST(SyncFaultInjection, StragglerSpeedStillCompletes) {
    // Heterogeneous speeds stretch the barrier but never desert it:
    // slow workers are not failures.
    Fixture f;
    VirtualClusterConfig cfg = f.cluster(9, 20);
    cfg.worker_speed = {1.0, 4.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
    moea::Nsga2 algo(*f.problem, 16, 21);
    const auto result =
        SyncMasterSlaveExecutor(algo, *f.problem, cfg).run(800);
    EXPECT_TRUE(result.completed_target);
    EXPECT_EQ(result.failed_workers, 0u);
}

// -------------------------------------- multi-master fault injection

MultiMasterConfig island_config(const Fixture& f, std::uint64_t p,
                                std::uint64_t islands, std::uint64_t seed) {
    MultiMasterConfig cfg;
    cfg.cluster =
        VirtualClusterConfig{p, f.tf.get(), f.tc.get(), f.ta.get(), seed};
    cfg.islands = islands;
    cfg.migration_interval = 200;
    return cfg;
}

TEST(MultiMasterFaultInjection, SurvivingIslandCarriesTheRun) {
    // Island 0 loses all four of its workers early; island 1 keeps
    // claiming from the global budget and the run still completes.
    Fixture f;
    MultiMasterConfig cfg = island_config(f, 10, 2, 22);
    cfg.cluster.worker_failure_at = {0.1, 0.1, 0.1, 0.1,
                                     kInf, kInf, kInf, kInf};
    MultiMasterExecutor exec(*f.problem, f.params(), cfg);
    const auto result = exec.run(4000);
    EXPECT_TRUE(result.completed_target);
    EXPECT_EQ(result.evaluations, 4000u);
    EXPECT_EQ(result.failed_workers, 4u);
    EXPECT_GT(result.island_evaluations[1], result.island_evaluations[0]);
}

TEST(MultiMasterFaultInjection, TotalFleetLossStarvesTheRun) {
    Fixture f;
    MultiMasterConfig cfg = island_config(f, 10, 2, 23);
    cfg.cluster.worker_failure_at = std::vector<double>(8, 0.05);
    MultiMasterExecutor exec(*f.problem, f.params(), cfg);
    obs::EventTrace trace;
    const auto result = exec.run(100000, {.trace = &trace});
    EXPECT_FALSE(result.completed_target);
    EXPECT_EQ(result.failed_workers, 8u);
    EXPECT_GT(result.evaluations, 0u);
    EXPECT_LT(result.evaluations, 100000u);
    for (const auto& issue :
         obs::cross_validate(trace, to_reported(result,
                                                /*check_samples=*/false)))
        ADD_FAILURE() << issue;
}

TEST(MultiMasterFaultInjection, FastIslandAbsorbsMoreOfTheBudget) {
    // Island 1's workers run 3x slower; the shared evaluation budget is
    // claim-based, so the fast island performs roughly 3x the work.
    Fixture f;
    MultiMasterConfig cfg = island_config(f, 10, 2, 24);
    cfg.cluster.worker_speed = {1.0, 1.0, 1.0, 1.0, 3.0, 3.0, 3.0, 3.0};
    MultiMasterExecutor exec(*f.problem, f.params(), cfg);
    const auto result = exec.run(6000);
    EXPECT_TRUE(result.completed_target);
    const double ratio =
        static_cast<double>(result.island_evaluations[0]) /
        static_cast<double>(result.island_evaluations[1]);
    EXPECT_NEAR(ratio, 3.0, 0.5);
}

} // namespace
