/// Compile-level test: the umbrella header exposes the full public API
/// without conflicts, and a miniature end-to-end run works through it.

#include "borg.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EndToEndThroughSingleInclude) {
    const auto problem = borg::problems::make_problem("zdt1");
    auto params = borg::moea::BorgParams::for_problem(*problem, 0.02);
    borg::moea::BorgMoea algorithm(*problem, params, 1);
    borg::moea::run_serial(algorithm, *problem, 2000);
    EXPECT_GT(algorithm.archive().size(), 0u);

    const auto refset = borg::problems::reference_set_for("zdt1");
    const double hv = borg::metrics::normalized_hypervolume(
        algorithm.archive().objective_vectors(), refset);
    EXPECT_GT(hv, 0.3);

    const borg::models::TimingCosts costs{0.01, 0.000006, 0.000029};
    EXPECT_GT(borg::models::processor_upper_bound(costs), 1.0);
}

} // namespace
