#include "des/environment.hpp"
#include "des/resource.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "des/event_queue.hpp"
#include "des/frame_pool.hpp"
#include "obs/event_trace.hpp"
#include "obs/metrics_registry.hpp"
#include "util/rng.hpp"

namespace {

using borg::des::Environment;
using borg::des::Event;
using borg::des::Process;
using borg::des::Resource;

Process single_delay(Environment& env, double dt, std::vector<double>& log) {
    co_await env.delay(dt);
    log.push_back(env.now());
}

TEST(Des, DelayAdvancesClock) {
    Environment env;
    std::vector<double> log;
    env.spawn(single_delay(env, 2.5, log));
    env.run();
    ASSERT_EQ(log.size(), 1u);
    EXPECT_DOUBLE_EQ(log[0], 2.5);
    EXPECT_DOUBLE_EQ(env.now(), 2.5);
}

Process chained_delays(Environment& env, std::vector<double>& log) {
    co_await env.delay(1.0);
    log.push_back(env.now());
    co_await env.delay(0.5);
    log.push_back(env.now());
    co_await env.delay(0.0);
    log.push_back(env.now());
}

TEST(Des, ChainedDelaysAccumulate) {
    Environment env;
    std::vector<double> log;
    env.spawn(chained_delays(env, log));
    env.run();
    ASSERT_EQ(log.size(), 3u);
    EXPECT_DOUBLE_EQ(log[0], 1.0);
    EXPECT_DOUBLE_EQ(log[1], 1.5);
    EXPECT_DOUBLE_EQ(log[2], 1.5);
}

TEST(Des, NegativeDelayClampedToZero) {
    Environment env;
    std::vector<double> log;
    env.spawn(single_delay(env, -1.0, log));
    env.run();
    EXPECT_DOUBLE_EQ(env.now(), 0.0);
}

Process tagged(Environment& env, double dt, int tag, std::vector<int>& order) {
    co_await env.delay(dt);
    order.push_back(tag);
}

TEST(Des, EventsFireInTimeOrder) {
    Environment env;
    std::vector<int> order;
    env.spawn(tagged(env, 3.0, 3, order));
    env.spawn(tagged(env, 1.0, 1, order));
    env.spawn(tagged(env, 2.0, 2, order));
    env.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Des, SimultaneousEventsFifo) {
    Environment env;
    std::vector<int> order;
    for (int tag = 0; tag < 5; ++tag) env.spawn(tagged(env, 1.0, tag, order));
    env.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Des, RunUntilStopsAtDeadline) {
    Environment env;
    std::vector<int> order;
    env.spawn(tagged(env, 1.0, 1, order));
    env.spawn(tagged(env, 5.0, 5, order));
    env.run_until(2.0);
    EXPECT_EQ(order, (std::vector<int>{1}));
    // SimPy run(until=...) semantics: the clock advances to the deadline
    // even though an event remains queued past it. (Regression: the clock
    // used to rest on the last fired event whenever the queue was
    // non-empty, so a subsequent delay() computed from a stale time.)
    EXPECT_DOUBLE_EQ(env.now(), 2.0);
    env.run();
    EXPECT_EQ(order, (std::vector<int>{1, 5}));
    EXPECT_DOUBLE_EQ(env.now(), 5.0);
}

TEST(Des, RunUntilDeadlineClockFeedsSubsequentDelays) {
    // The consequence of the stale-clock bug: a process spawned after
    // run_until(t) must measure its delay from t, not from the last event
    // that happened to fire.
    Environment env;
    std::vector<double> log;
    env.spawn(single_delay(env, 1.0, log));  // fires at 1.0
    env.spawn(single_delay(env, 10.0, log)); // fires at 10.0
    env.run_until(4.0);
    ASSERT_EQ(log.size(), 1u);
    EXPECT_DOUBLE_EQ(env.now(), 4.0);
    env.spawn(single_delay(env, 1.0, log)); // must fire at 5.0, not 2.0
    env.run();
    ASSERT_EQ(log.size(), 3u);
    EXPECT_DOUBLE_EQ(log[1], 5.0);
    EXPECT_DOUBLE_EQ(log[2], 10.0);
}

TEST(Des, RunUntilAdvancesIdleClock) {
    Environment env;
    env.run_until(10.0);
    EXPECT_DOUBLE_EQ(env.now(), 10.0);
}

Process stopper(Environment& env, std::vector<int>& order) {
    co_await env.delay(1.0);
    order.push_back(0);
    env.stop();
}

TEST(Des, StopHaltsRun) {
    Environment env;
    std::vector<int> order;
    env.spawn(stopper(env, order));
    env.spawn(tagged(env, 2.0, 2, order));
    env.run();
    EXPECT_TRUE(env.stopped());
    EXPECT_EQ(order, (std::vector<int>{0}));
}

TEST(Des, FinishedProcessCount) {
    Environment env;
    std::vector<int> order;
    env.spawn(tagged(env, 1.0, 1, order));
    env.spawn(tagged(env, 2.0, 2, order));
    env.run();
    EXPECT_EQ(env.finished_processes(), 2u);
}

Process thrower(Environment& env) {
    co_await env.delay(1.0);
    throw std::runtime_error("boom");
}

TEST(Des, ProcessExceptionPropagates) {
    Environment env;
    env.spawn(thrower(env));
    EXPECT_THROW(env.run(), std::runtime_error);
}

// --------------------------------------------------------------- Resource

Process resource_user(Environment& env, Resource& res, double hold, int tag,
                      std::vector<std::pair<int, double>>& log) {
    co_await res.acquire();
    log.emplace_back(tag, env.now());
    co_await env.delay(hold);
    res.release();
}

TEST(Resource, SerializesCapacityOne) {
    Environment env;
    Resource res(env, 1);
    std::vector<std::pair<int, double>> log;
    for (int tag = 0; tag < 3; ++tag)
        env.spawn(resource_user(env, res, 2.0, tag, log));
    env.run();
    ASSERT_EQ(log.size(), 3u);
    EXPECT_DOUBLE_EQ(log[0].second, 0.0);
    EXPECT_DOUBLE_EQ(log[1].second, 2.0);
    EXPECT_DOUBLE_EQ(log[2].second, 4.0);
}

TEST(Resource, GrantsFifo) {
    Environment env;
    Resource res(env, 1);
    std::vector<std::pair<int, double>> log;
    for (int tag = 0; tag < 6; ++tag)
        env.spawn(resource_user(env, res, 1.0, tag, log));
    env.run();
    for (int i = 0; i < 6; ++i) EXPECT_EQ(log[i].first, i);
}

TEST(Resource, CapacityTwoRunsPairsConcurrently) {
    Environment env;
    Resource res(env, 2);
    std::vector<std::pair<int, double>> log;
    for (int tag = 0; tag < 4; ++tag)
        env.spawn(resource_user(env, res, 3.0, tag, log));
    env.run();
    EXPECT_DOUBLE_EQ(log[0].second, 0.0);
    EXPECT_DOUBLE_EQ(log[1].second, 0.0);
    EXPECT_DOUBLE_EQ(log[2].second, 3.0);
    EXPECT_DOUBLE_EQ(log[3].second, 3.0);
}

TEST(Resource, ContentionStatistics) {
    Environment env;
    Resource res(env, 1);
    std::vector<std::pair<int, double>> log;
    for (int tag = 0; tag < 4; ++tag)
        env.spawn(resource_user(env, res, 1.0, tag, log));
    env.run();
    EXPECT_EQ(res.total_acquires(), 4u);
    EXPECT_EQ(res.contended_acquires(), 3u); // all but the first waited
    EXPECT_EQ(res.in_use(), 0u);
}

TEST(Resource, TraceEventsMirrorContentionCounters) {
    // FIFO direct handoff keeps the counters and the emitted event stream
    // consistent: one acquire_request per acquire (queue depth > 0 exactly
    // when the acquirer had to wait), one acquire_grant per acquisition
    // that actually resumed, and a drained run grants everything.
    Environment env;
    borg::obs::EventTrace trace;
    env.set_trace(&trace);
    Resource res(env, 1);
    std::vector<std::pair<int, double>> log;
    for (int tag = 0; tag < 5; ++tag)
        env.spawn(resource_user(env, res, 1.0, tag, log));
    env.run();

    using borg::obs::EventKind;
    EXPECT_EQ(trace.count(EventKind::acquire_request), res.total_acquires());
    EXPECT_EQ(trace.count(EventKind::acquire_grant), res.total_acquires());
    EXPECT_EQ(trace.count(EventKind::release), 5u);
    EXPECT_EQ(res.in_use(), 0u);

    std::size_t contended_requests = 0;
    std::vector<double> grant_waits;
    for (const borg::obs::Event& e : trace.events()) {
        if (e.kind == EventKind::acquire_request && e.count > 0)
            ++contended_requests;
        if (e.kind == EventKind::acquire_grant) grant_waits.push_back(e.value);
    }
    EXPECT_EQ(contended_requests, res.contended_acquires());
    // FIFO: each successive holder waited one hold-time longer.
    ASSERT_EQ(grant_waits.size(), 5u);
    for (std::size_t i = 0; i < grant_waits.size(); ++i)
        EXPECT_DOUBLE_EQ(grant_waits[i], static_cast<double>(i));
}

TEST(Resource, NoTraceSinkEmitsNothing) {
    Environment env;
    Resource res(env, 1);
    std::vector<std::pair<int, double>> log;
    for (int tag = 0; tag < 3; ++tag)
        env.spawn(resource_user(env, res, 1.0, tag, log));
    env.run();
    EXPECT_EQ(env.trace(), nullptr); // null-sink fast path
    EXPECT_EQ(res.total_acquires(), 3u);
}

TEST(Resource, ReleaseWithoutAcquireThrows) {
    Environment env;
    Resource res(env, 1);
    EXPECT_THROW(res.release(), std::logic_error);
}

TEST(Resource, ZeroCapacityRejected) {
    Environment env;
    EXPECT_THROW(Resource(env, 0), std::invalid_argument);
}

// ------------------------------------------------------------------ Event

Process event_waiter(Environment& env, Event& event, int tag,
                     std::vector<std::pair<int, double>>& log) {
    co_await event.wait();
    log.emplace_back(tag, env.now());
}

Process event_trigger(Environment& env, Event& event, double at) {
    co_await env.delay(at);
    event.trigger();
}

TEST(Event, WakesAllWaitersAtTriggerTime) {
    Environment env;
    Event event(env);
    std::vector<std::pair<int, double>> log;
    env.spawn(event_waiter(env, event, 0, log));
    env.spawn(event_waiter(env, event, 1, log));
    env.spawn(event_trigger(env, event, 4.0));
    env.run();
    ASSERT_EQ(log.size(), 2u);
    EXPECT_DOUBLE_EQ(log[0].second, 4.0);
    EXPECT_DOUBLE_EQ(log[1].second, 4.0);
    EXPECT_EQ(log[0].first, 0);
    EXPECT_EQ(log[1].first, 1);
}

TEST(Event, TriggeredEventCompletesImmediately) {
    Environment env;
    Event event(env);
    event.trigger();
    std::vector<std::pair<int, double>> log;
    env.spawn(event_waiter(env, event, 7, log));
    env.run();
    ASSERT_EQ(log.size(), 1u);
    EXPECT_DOUBLE_EQ(log[0].second, 0.0);
}

TEST(Event, ResetReArms) {
    Environment env;
    Event event(env);
    event.trigger();
    EXPECT_TRUE(event.triggered());
    event.reset();
    EXPECT_FALSE(event.triggered());
}

// ---------------------------------------------------- determinism property

struct MmOneResult {
    double makespan;
    std::uint64_t events;
};

Process mm1_worker(Environment& env, Resource& master, borg::util::Rng& rng,
                   int jobs, double service) {
    for (int j = 0; j < jobs; ++j) {
        co_await env.delay(rng.uniform() * 0.1);
        co_await master.acquire();
        co_await env.delay(service);
        master.release();
    }
}

MmOneResult run_mm1(std::uint64_t seed) {
    Environment env;
    Resource master(env, 1);
    borg::util::Rng rng(seed);
    for (int w = 0; w < 10; ++w)
        env.spawn(mm1_worker(env, master, rng, 20, 0.01));
    env.run();
    return {env.now(), env.event_count()};
}

TEST(Des, QueueingRunIsDeterministic) {
    const auto a = run_mm1(123);
    const auto b = run_mm1(123);
    EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.events, b.events);
    const auto c = run_mm1(456);
    EXPECT_NE(a.makespan, c.makespan);
}

TEST(Des, SaturatedServerMakespanLowerBound) {
    // 10 workers x 20 jobs x 0.01 s service through one server: the server
    // alone needs 2.0 s, so the makespan cannot be below that.
    const auto r = run_mm1(9);
    EXPECT_GE(r.makespan, 2.0);
    EXPECT_LT(r.makespan, 2.2); // and contention keeps it close to the bound
}

// ------------------------------------------- non-finite time validation

TEST(Des, NonFiniteDelayThrows) {
    Environment env;
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    // A NaN admitted into the queue would corrupt its ordering silently
    // (every NaN comparison is false); the engine rejects it loudly
    // instead, at the delay() call site.
    EXPECT_THROW(env.delay(nan), std::invalid_argument);
    EXPECT_THROW(env.delay(inf), std::invalid_argument);
    EXPECT_THROW(env.delay(-inf), std::invalid_argument);
}

Process bad_delay(Environment& env, double dt) { co_await env.delay(dt); }

TEST(Des, NonFiniteDelayInsideProcessPropagates) {
    Environment env;
    env.spawn(bad_delay(env, std::numeric_limits<double>::quiet_NaN()));
    EXPECT_THROW(env.run(), std::invalid_argument);
    EXPECT_EQ(env.live_processes(), 0u); // the faulting frame was reclaimed
}

TEST(Des, ScheduleAtNonFiniteThrows) {
    Environment env;
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_THROW(env.schedule_at(std::noop_coroutine(), nan),
                 std::invalid_argument);
    EXPECT_THROW(env.schedule_at(std::noop_coroutine(), inf),
                 std::invalid_argument);
    EXPECT_THROW(env.schedule_at(std::noop_coroutine(), -1.0),
                 std::logic_error);
}

TEST(Des, RunUntilNonFiniteDeadlineThrows) {
    Environment env;
    EXPECT_THROW(env.run_until(std::numeric_limits<double>::infinity()),
                 std::invalid_argument);
}

// ------------------------------------ contract enforcement + fault exits

Process waits_forever(Environment& /*env*/, Event& event) {
    co_await event.wait();
}

TEST(Event, ResetWithLiveWaitersThrows) {
    Environment env;
    Event event(env);
    env.spawn(waits_forever(env, event));
    env.run(); // waiter is now suspended inside the event's FIFO
    ASSERT_EQ(event.waiter_count(), 1u);
    EXPECT_THROW(event.reset(), std::logic_error);
    event.trigger(); // still usable after the rejected reset
    env.run();
    EXPECT_EQ(event.waiter_count(), 0u);
}

TEST(Des, MetricsPublishedOnExceptionExit) {
    borg::obs::MetricsRegistry metrics;
    Environment env;
    env.set_metrics(&metrics);
    env.spawn(thrower(env));
    std::vector<int> order;
    env.spawn(tagged(env, 5.0, 5, order));
    EXPECT_THROW(env.run(), std::runtime_error);
    // The engine gauges must reflect the truncated run, not be skipped
    // because a process threw.
    ASSERT_NE(metrics.find_gauge("des.events"), nullptr);
    EXPECT_DOUBLE_EQ(metrics.find_gauge("des.events")->value(),
                     static_cast<double>(env.event_count()));
    ASSERT_NE(metrics.find_gauge("des.finished_processes"), nullptr);
    EXPECT_DOUBLE_EQ(metrics.find_gauge("des.finished_processes")->value(),
                     static_cast<double>(env.finished_processes()));
}

TEST(Des, MetricsPublishedOnRunUntilExceptionExit) {
    borg::obs::MetricsRegistry metrics;
    Environment env;
    env.set_metrics(&metrics);
    env.spawn(thrower(env));
    EXPECT_THROW(env.run_until(2.0), std::runtime_error);
    ASSERT_NE(metrics.find_gauge("des.events"), nullptr);
    EXPECT_DOUBLE_EQ(metrics.find_gauge("des.events")->value(),
                     static_cast<double>(env.event_count()));
}

// ------------------------------------------------- teardown-order safety

Process holds_forever(Environment& env, Resource& res) {
    co_await res.acquire();
    co_await env.delay(1e6);
    res.release();
}

TEST(Des, TeardownWithSuspendedResourceWaiters) {
    // Destroying an environment while processes are still suspended inside
    // a Resource's waiter FIFO must reclaim every pooled frame exactly
    // once (pinned under the ASan CI tier), in either declaration order.
    {
        Environment env;
        Resource res(env, 1);
        for (int i = 0; i < 4; ++i) env.spawn(holds_forever(env, res));
        env.run_until(1.0);
        EXPECT_EQ(res.queue_length(), 3u);
        EXPECT_EQ(env.live_processes(), 4u);
    } // env destroyed before res
    {
        auto res_first = std::make_unique<Environment>();
        Environment& env = *res_first;
        Resource res(env, 1);
        for (int i = 0; i < 4; ++i) env.spawn(holds_forever(env, res));
        env.run_until(1.0);
        res_first.reset(); // env destroyed while res still holds waiters
    }
}

TEST(Des, StopThenSecondRunResumes) {
    // stop() latches only until the next run()/run_until() call: a second
    // run resumes the remaining events (and teardown afterwards reclaims
    // nothing twice — the frames completed on the second run).
    Environment env;
    std::vector<int> order;
    env.spawn(stopper(env, order));
    env.spawn(tagged(env, 2.0, 2, order));
    env.run();
    EXPECT_TRUE(env.stopped());
    EXPECT_EQ(order, (std::vector<int>{0}));
    EXPECT_EQ(env.live_processes(), 1u);
    env.run();
    EXPECT_FALSE(env.stopped());
    EXPECT_EQ(order, (std::vector<int>{0, 2}));
    EXPECT_EQ(env.live_processes(), 0u);
}

TEST(Des, StopThenDestroyReclaimsSuspendedFrames) {
    Environment env;
    std::vector<int> order;
    env.spawn(stopper(env, order));
    for (int tag = 0; tag < 8; ++tag)
        env.spawn(tagged(env, 3.0, tag, order));
    env.run();
    EXPECT_EQ(env.live_processes(), 8u); // reaped by ~Environment
}

// ----------------------------------------------------- frame pooling

TEST(Des, FramePoolRecyclesFrames) {
#if BORG_DES_FRAME_POOL_PASSTHROUGH
    GTEST_SKIP() << "frame pool is pass-through under sanitizers";
#else
    // First batch warms the pool (its frames may themselves be reuses of
    // frames earlier tests retired); the invariant under test is that an
    // identical second batch is then fully recycled — zero fresh mallocs.
    {
        Environment env;
        std::vector<int> order;
        for (int tag = 0; tag < 64; ++tag)
            env.spawn(tagged(env, 1.0, tag, order));
        env.run();
    }
    const auto mid = borg::des::frame_pool_stats();
    EXPECT_GE(mid.retained, 64u);
    {
        Environment env;
        std::vector<int> order;
        for (int tag = 0; tag < 64; ++tag)
            env.spawn(tagged(env, 1.0, tag, order));
        env.run();
    }
    const auto after = borg::des::frame_pool_stats();
    // The second batch's frames came out of the pool, not malloc.
    EXPECT_GE(after.reused, mid.reused + 64);
    EXPECT_EQ(after.fresh, mid.fresh);
#endif
}

// ------------------------------------- calendar-vs-heap schedule oracle

using borg::des::QueuePolicy;

struct FiringLog {
    std::vector<std::pair<int, double>> entries;
    std::uint64_t events = 0;
    double makespan = 0.0;
};

Process logging_worker(Environment& env, Resource& master,
                       borg::util::Rng& rng, int tag, int jobs,
                       FiringLog& log) {
    for (int j = 0; j < jobs; ++j) {
        co_await env.delay(rng.uniform() * 0.3);
        log.entries.emplace_back(tag, env.now());
        co_await master.acquire();
        log.entries.emplace_back(tag + 1000, env.now());
        co_await env.delay(0.01);
        master.release();
    }
}

Process spawner(Environment& env, Resource& master, borg::util::Rng& rng,
                int children, FiringLog& log) {
    // Spawning mid-run exercises pushes below the calendar's current
    // drain epoch (the scratch merge path).
    for (int c = 0; c < children; ++c) {
        co_await env.delay(0.5);
        env.spawn(logging_worker(env, master, rng, 100 + c, 3, log));
    }
}

FiringLog run_mixed_workload(QueuePolicy policy, std::uint64_t seed) {
    Environment env(policy);
    Resource master(env, 1);
    borg::util::Rng rng(seed);
    FiringLog log;
    for (int w = 0; w < 12; ++w)
        env.spawn(logging_worker(env, master, rng, w, 8, log));
    env.spawn(spawner(env, master, rng, 4, log));
    env.run();
    log.events = env.event_count();
    log.makespan = env.now();
    return log;
}

TEST(Des, CalendarMatchesHeapScheduleExactly) {
    // Property: the calendar queue is a drop-in replacement for the binary
    // heap — identical resumption order, identical clock readings, for
    // workloads mixing jittered delays, same-time ties (FIFO), resource
    // handoffs, and mid-run spawns.
    for (const std::uint64_t seed : {3u, 17u, 1234u, 987654u}) {
        const FiringLog heap = run_mixed_workload(QueuePolicy::heap, seed);
        const FiringLog cal = run_mixed_workload(QueuePolicy::calendar, seed);
        EXPECT_EQ(heap.events, cal.events) << "seed " << seed;
        EXPECT_DOUBLE_EQ(heap.makespan, cal.makespan) << "seed " << seed;
        ASSERT_EQ(heap.entries.size(), cal.entries.size()) << "seed " << seed;
        for (std::size_t i = 0; i < heap.entries.size(); ++i) {
            EXPECT_EQ(heap.entries[i].first, cal.entries[i].first)
                << "seed " << seed << " entry " << i;
            EXPECT_DOUBLE_EQ(heap.entries[i].second, cal.entries[i].second)
                << "seed " << seed << " entry " << i;
        }
    }
}

TEST(Des, CalendarRunUntilMatchesHeap) {
    for (const std::uint64_t seed : {5u, 42u}) {
        FiringLog logs[2];
        const QueuePolicy policies[2] = {QueuePolicy::heap,
                                         QueuePolicy::calendar};
        double now[2];
        for (int k = 0; k < 2; ++k) {
            Environment env(policies[k]);
            Resource master(env, 1);
            borg::util::Rng rng(seed);
            for (int w = 0; w < 6; ++w)
                env.spawn(
                    logging_worker(env, master, rng, w, 10, logs[k]));
            env.run_until(0.4);
            env.run_until(0.9);
            env.run();
            logs[k].events = env.event_count();
            now[k] = env.now();
        }
        EXPECT_EQ(logs[0].events, logs[1].events);
        EXPECT_DOUBLE_EQ(now[0], now[1]);
        ASSERT_EQ(logs[0].entries.size(), logs[1].entries.size());
        for (std::size_t i = 0; i < logs[0].entries.size(); ++i)
            EXPECT_EQ(logs[0].entries[i], logs[1].entries[i]) << i;
    }
}

TEST(Des, CalendarScalesToManyProcesses) {
    // Resize/re-tune path: 20k tickers push the bucket table through
    // several doublings, then the drain empties it back down.
    Environment env;
    constexpr int kProcs = 20000;
    borg::util::Rng rng(11);
    std::vector<int> order;
    for (int p = 0; p < kProcs; ++p)
        env.spawn(tagged(env, 1.0 + rng.uniform() * 0.2, p, order));
    env.run();
    EXPECT_EQ(order.size(), static_cast<std::size_t>(kProcs));
    EXPECT_EQ(env.event_count(), static_cast<std::uint64_t>(2 * kProcs));
    EXPECT_EQ(env.live_processes(), 0u);
    EXPECT_EQ(env.finished_processes(), static_cast<std::size_t>(kProcs));
}

} // namespace
