#include "des/environment.hpp"
#include "des/resource.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "obs/event_trace.hpp"
#include "util/rng.hpp"

namespace {

using borg::des::Environment;
using borg::des::Event;
using borg::des::Process;
using borg::des::Resource;

Process single_delay(Environment& env, double dt, std::vector<double>& log) {
    co_await env.delay(dt);
    log.push_back(env.now());
}

TEST(Des, DelayAdvancesClock) {
    Environment env;
    std::vector<double> log;
    env.spawn(single_delay(env, 2.5, log));
    env.run();
    ASSERT_EQ(log.size(), 1u);
    EXPECT_DOUBLE_EQ(log[0], 2.5);
    EXPECT_DOUBLE_EQ(env.now(), 2.5);
}

Process chained_delays(Environment& env, std::vector<double>& log) {
    co_await env.delay(1.0);
    log.push_back(env.now());
    co_await env.delay(0.5);
    log.push_back(env.now());
    co_await env.delay(0.0);
    log.push_back(env.now());
}

TEST(Des, ChainedDelaysAccumulate) {
    Environment env;
    std::vector<double> log;
    env.spawn(chained_delays(env, log));
    env.run();
    ASSERT_EQ(log.size(), 3u);
    EXPECT_DOUBLE_EQ(log[0], 1.0);
    EXPECT_DOUBLE_EQ(log[1], 1.5);
    EXPECT_DOUBLE_EQ(log[2], 1.5);
}

TEST(Des, NegativeDelayClampedToZero) {
    Environment env;
    std::vector<double> log;
    env.spawn(single_delay(env, -1.0, log));
    env.run();
    EXPECT_DOUBLE_EQ(env.now(), 0.0);
}

Process tagged(Environment& env, double dt, int tag, std::vector<int>& order) {
    co_await env.delay(dt);
    order.push_back(tag);
}

TEST(Des, EventsFireInTimeOrder) {
    Environment env;
    std::vector<int> order;
    env.spawn(tagged(env, 3.0, 3, order));
    env.spawn(tagged(env, 1.0, 1, order));
    env.spawn(tagged(env, 2.0, 2, order));
    env.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Des, SimultaneousEventsFifo) {
    Environment env;
    std::vector<int> order;
    for (int tag = 0; tag < 5; ++tag) env.spawn(tagged(env, 1.0, tag, order));
    env.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Des, RunUntilStopsAtDeadline) {
    Environment env;
    std::vector<int> order;
    env.spawn(tagged(env, 1.0, 1, order));
    env.spawn(tagged(env, 5.0, 5, order));
    env.run_until(2.0);
    EXPECT_EQ(order, (std::vector<int>{1}));
    EXPECT_DOUBLE_EQ(env.now(), 1.0); // clock rests on the last fired event
    env.run();
    EXPECT_EQ(order, (std::vector<int>{1, 5}));
}

TEST(Des, RunUntilAdvancesIdleClock) {
    Environment env;
    env.run_until(10.0);
    EXPECT_DOUBLE_EQ(env.now(), 10.0);
}

Process stopper(Environment& env, std::vector<int>& order) {
    co_await env.delay(1.0);
    order.push_back(0);
    env.stop();
}

TEST(Des, StopHaltsRun) {
    Environment env;
    std::vector<int> order;
    env.spawn(stopper(env, order));
    env.spawn(tagged(env, 2.0, 2, order));
    env.run();
    EXPECT_TRUE(env.stopped());
    EXPECT_EQ(order, (std::vector<int>{0}));
}

TEST(Des, FinishedProcessCount) {
    Environment env;
    std::vector<int> order;
    env.spawn(tagged(env, 1.0, 1, order));
    env.spawn(tagged(env, 2.0, 2, order));
    env.run();
    EXPECT_EQ(env.finished_processes(), 2u);
}

Process thrower(Environment& env) {
    co_await env.delay(1.0);
    throw std::runtime_error("boom");
}

TEST(Des, ProcessExceptionPropagates) {
    Environment env;
    env.spawn(thrower(env));
    EXPECT_THROW(env.run(), std::runtime_error);
}

// --------------------------------------------------------------- Resource

Process resource_user(Environment& env, Resource& res, double hold, int tag,
                      std::vector<std::pair<int, double>>& log) {
    co_await res.acquire();
    log.emplace_back(tag, env.now());
    co_await env.delay(hold);
    res.release();
}

TEST(Resource, SerializesCapacityOne) {
    Environment env;
    Resource res(env, 1);
    std::vector<std::pair<int, double>> log;
    for (int tag = 0; tag < 3; ++tag)
        env.spawn(resource_user(env, res, 2.0, tag, log));
    env.run();
    ASSERT_EQ(log.size(), 3u);
    EXPECT_DOUBLE_EQ(log[0].second, 0.0);
    EXPECT_DOUBLE_EQ(log[1].second, 2.0);
    EXPECT_DOUBLE_EQ(log[2].second, 4.0);
}

TEST(Resource, GrantsFifo) {
    Environment env;
    Resource res(env, 1);
    std::vector<std::pair<int, double>> log;
    for (int tag = 0; tag < 6; ++tag)
        env.spawn(resource_user(env, res, 1.0, tag, log));
    env.run();
    for (int i = 0; i < 6; ++i) EXPECT_EQ(log[i].first, i);
}

TEST(Resource, CapacityTwoRunsPairsConcurrently) {
    Environment env;
    Resource res(env, 2);
    std::vector<std::pair<int, double>> log;
    for (int tag = 0; tag < 4; ++tag)
        env.spawn(resource_user(env, res, 3.0, tag, log));
    env.run();
    EXPECT_DOUBLE_EQ(log[0].second, 0.0);
    EXPECT_DOUBLE_EQ(log[1].second, 0.0);
    EXPECT_DOUBLE_EQ(log[2].second, 3.0);
    EXPECT_DOUBLE_EQ(log[3].second, 3.0);
}

TEST(Resource, ContentionStatistics) {
    Environment env;
    Resource res(env, 1);
    std::vector<std::pair<int, double>> log;
    for (int tag = 0; tag < 4; ++tag)
        env.spawn(resource_user(env, res, 1.0, tag, log));
    env.run();
    EXPECT_EQ(res.total_acquires(), 4u);
    EXPECT_EQ(res.contended_acquires(), 3u); // all but the first waited
    EXPECT_EQ(res.in_use(), 0u);
}

TEST(Resource, TraceEventsMirrorContentionCounters) {
    // FIFO direct handoff keeps the counters and the emitted event stream
    // consistent: one acquire_request per acquire (queue depth > 0 exactly
    // when the acquirer had to wait), one acquire_grant per acquisition
    // that actually resumed, and a drained run grants everything.
    Environment env;
    borg::obs::EventTrace trace;
    env.set_trace(&trace);
    Resource res(env, 1);
    std::vector<std::pair<int, double>> log;
    for (int tag = 0; tag < 5; ++tag)
        env.spawn(resource_user(env, res, 1.0, tag, log));
    env.run();

    using borg::obs::EventKind;
    EXPECT_EQ(trace.count(EventKind::acquire_request), res.total_acquires());
    EXPECT_EQ(trace.count(EventKind::acquire_grant), res.total_acquires());
    EXPECT_EQ(trace.count(EventKind::release), 5u);
    EXPECT_EQ(res.in_use(), 0u);

    std::size_t contended_requests = 0;
    std::vector<double> grant_waits;
    for (const borg::obs::Event& e : trace.events()) {
        if (e.kind == EventKind::acquire_request && e.count > 0)
            ++contended_requests;
        if (e.kind == EventKind::acquire_grant) grant_waits.push_back(e.value);
    }
    EXPECT_EQ(contended_requests, res.contended_acquires());
    // FIFO: each successive holder waited one hold-time longer.
    ASSERT_EQ(grant_waits.size(), 5u);
    for (std::size_t i = 0; i < grant_waits.size(); ++i)
        EXPECT_DOUBLE_EQ(grant_waits[i], static_cast<double>(i));
}

TEST(Resource, NoTraceSinkEmitsNothing) {
    Environment env;
    Resource res(env, 1);
    std::vector<std::pair<int, double>> log;
    for (int tag = 0; tag < 3; ++tag)
        env.spawn(resource_user(env, res, 1.0, tag, log));
    env.run();
    EXPECT_EQ(env.trace(), nullptr); // null-sink fast path
    EXPECT_EQ(res.total_acquires(), 3u);
}

TEST(Resource, ReleaseWithoutAcquireThrows) {
    Environment env;
    Resource res(env, 1);
    EXPECT_THROW(res.release(), std::logic_error);
}

TEST(Resource, ZeroCapacityRejected) {
    Environment env;
    EXPECT_THROW(Resource(env, 0), std::invalid_argument);
}

// ------------------------------------------------------------------ Event

Process event_waiter(Environment& env, Event& event, int tag,
                     std::vector<std::pair<int, double>>& log) {
    co_await event.wait();
    log.emplace_back(tag, env.now());
}

Process event_trigger(Environment& env, Event& event, double at) {
    co_await env.delay(at);
    event.trigger();
}

TEST(Event, WakesAllWaitersAtTriggerTime) {
    Environment env;
    Event event(env);
    std::vector<std::pair<int, double>> log;
    env.spawn(event_waiter(env, event, 0, log));
    env.spawn(event_waiter(env, event, 1, log));
    env.spawn(event_trigger(env, event, 4.0));
    env.run();
    ASSERT_EQ(log.size(), 2u);
    EXPECT_DOUBLE_EQ(log[0].second, 4.0);
    EXPECT_DOUBLE_EQ(log[1].second, 4.0);
    EXPECT_EQ(log[0].first, 0);
    EXPECT_EQ(log[1].first, 1);
}

TEST(Event, TriggeredEventCompletesImmediately) {
    Environment env;
    Event event(env);
    event.trigger();
    std::vector<std::pair<int, double>> log;
    env.spawn(event_waiter(env, event, 7, log));
    env.run();
    ASSERT_EQ(log.size(), 1u);
    EXPECT_DOUBLE_EQ(log[0].second, 0.0);
}

TEST(Event, ResetReArms) {
    Environment env;
    Event event(env);
    event.trigger();
    EXPECT_TRUE(event.triggered());
    event.reset();
    EXPECT_FALSE(event.triggered());
}

// ---------------------------------------------------- determinism property

struct MmOneResult {
    double makespan;
    std::uint64_t events;
};

Process mm1_worker(Environment& env, Resource& master, borg::util::Rng& rng,
                   int jobs, double service) {
    for (int j = 0; j < jobs; ++j) {
        co_await env.delay(rng.uniform() * 0.1);
        co_await master.acquire();
        co_await env.delay(service);
        master.release();
    }
}

MmOneResult run_mm1(std::uint64_t seed) {
    Environment env;
    Resource master(env, 1);
    borg::util::Rng rng(seed);
    for (int w = 0; w < 10; ++w)
        env.spawn(mm1_worker(env, master, rng, 20, 0.01));
    env.run();
    return {env.now(), env.event_count()};
}

TEST(Des, QueueingRunIsDeterministic) {
    const auto a = run_mm1(123);
    const auto b = run_mm1(123);
    EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.events, b.events);
    const auto c = run_mm1(456);
    EXPECT_NE(a.makespan, c.makespan);
}

TEST(Des, SaturatedServerMakespanLowerBound) {
    // 10 workers x 20 jobs x 0.01 s service through one server: the server
    // alone needs 2.0 s, so the makespan cannot be below that.
    const auto r = run_mm1(9);
    EXPECT_GE(r.makespan, 2.0);
    EXPECT_LT(r.makespan, 2.2); // and contention keeps it close to the bound
}

} // namespace
