#include "moea/solution.hpp"

#include <gtest/gtest.h>

#include "problems/problem.hpp"

namespace {

using namespace borg;
using namespace borg::moea;

TEST(Solution, DefaultIsUnevaluated) {
    const Solution s;
    EXPECT_FALSE(s.evaluated);
    EXPECT_EQ(s.operator_index, kNoOperator);
}

TEST(Solution, SetObjectivesMarksEvaluated) {
    Solution s({0.1, 0.2});
    const std::vector<double> objs{1.0, 2.0};
    s.set_objectives(objs);
    EXPECT_TRUE(s.evaluated);
    EXPECT_EQ(s.objectives, objs);
}

TEST(RandomSolution, RespectsBounds) {
    const auto problem = problems::make_problem("uf11"); // bounds [-0.5, 1.5]
    util::Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        const Solution s = random_solution(*problem, rng);
        EXPECT_EQ(s.variables.size(), problem->num_variables());
        EXPECT_TRUE(problem->within_bounds(s.variables));
        EXPECT_FALSE(s.evaluated);
    }
}

TEST(RandomSolution, CoversTheBox) {
    const auto problem = problems::make_problem("zdt1");
    util::Rng rng(2);
    double lo = 1.0, hi = 0.0;
    for (int i = 0; i < 500; ++i) {
        const Solution s = random_solution(*problem, rng);
        lo = std::min(lo, s.variables[0]);
        hi = std::max(hi, s.variables[0]);
    }
    EXPECT_LT(lo, 0.05);
    EXPECT_GT(hi, 0.95);
}

TEST(Evaluate, FillsObjectives) {
    const auto problem = problems::make_problem("zdt1");
    Solution s(std::vector<double>(problem->num_variables(), 0.0));
    s.variables[0] = 0.25;
    evaluate(*problem, s);
    EXPECT_TRUE(s.evaluated);
    ASSERT_EQ(s.objectives.size(), 2u);
    EXPECT_DOUBLE_EQ(s.objectives[0], 0.25);
}

TEST(ClipToBounds, ClampsOutliers) {
    const auto problem = problems::make_problem("zdt1");
    std::vector<double> vars(problem->num_variables(), 0.5);
    vars[0] = -0.3;
    vars[1] = 1.8;
    clip_to_bounds(*problem, vars);
    EXPECT_DOUBLE_EQ(vars[0], 0.0);
    EXPECT_DOUBLE_EQ(vars[1], 1.0);
    EXPECT_DOUBLE_EQ(vars[2], 0.5);
}

} // namespace
