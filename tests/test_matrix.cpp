#include "util/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using borg::util::gram_schmidt;
using borg::util::Matrix;
using borg::util::Rng;

TEST(Matrix, IdentityMultiply) {
    const Matrix eye = Matrix::identity(4);
    const std::vector<double> x{1.0, -2.0, 3.5, 0.25};
    std::vector<double> y(4);
    eye.multiply(x, y);
    for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(Matrix, MultiplyKnownValues) {
    Matrix a(2, 3);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(0, 2) = 3;
    a(1, 0) = 4;
    a(1, 1) = 5;
    a(1, 2) = 6;
    const std::vector<double> x{1.0, 0.0, -1.0};
    std::vector<double> y(2);
    a.multiply(x, y);
    EXPECT_DOUBLE_EQ(y[0], -2.0);
    EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(Matrix, TransposeMultiplyAgreesWithTransposed) {
    Rng rng(5);
    Matrix a(5, 5);
    for (std::size_t r = 0; r < 5; ++r)
        for (std::size_t c = 0; c < 5; ++c) a(r, c) = rng.gaussian();
    const Matrix at = a.transposed();
    std::vector<double> x(5), y1(5), y2(5);
    for (double& v : x) v = rng.gaussian();
    a.multiply_transpose(x, y1);
    at.multiply(x, y2);
    for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

class RandomRotationTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RandomRotationTest, IsOrthogonal) {
    Rng rng(77);
    const std::size_t n = GetParam();
    const Matrix r = Matrix::random_rotation(n, rng);
    const Matrix product = r.multiply(r.transposed());
    EXPECT_LT(product.max_abs_diff(Matrix::identity(n)), 1e-10);
}

TEST_P(RandomRotationTest, PreservesNorm) {
    Rng rng(78);
    const std::size_t n = GetParam();
    const Matrix r = Matrix::random_rotation(n, rng);
    std::vector<double> x(n), y(n);
    for (double& v : x) v = rng.gaussian();
    r.multiply(x, y);
    double nx = 0.0, ny = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        nx += x[i] * x[i];
        ny += y[i] * y[i];
    }
    EXPECT_NEAR(std::sqrt(nx), std::sqrt(ny), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomRotationTest,
                         ::testing::Values(2, 3, 5, 14, 30));

TEST(RandomRotation, DeterministicGivenSeed) {
    Rng a(123), b(123);
    const Matrix r1 = Matrix::random_rotation(6, a);
    const Matrix r2 = Matrix::random_rotation(6, b);
    EXPECT_EQ(r1.max_abs_diff(r2), 0.0);
}

TEST(GramSchmidt, OrthonormalizesIndependentRows) {
    std::vector<std::vector<double>> v{{1, 1, 0}, {1, 0, 1}, {0, 1, 1}};
    const std::size_t rank = gram_schmidt(v);
    EXPECT_EQ(rank, 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        double norm = 0.0;
        for (const double x : v[i]) norm += x * x;
        EXPECT_NEAR(norm, 1.0, 1e-12);
        for (std::size_t j = i + 1; j < 3; ++j) {
            double dot = 0.0;
            for (std::size_t k = 0; k < 3; ++k) dot += v[i][k] * v[j][k];
            EXPECT_NEAR(dot, 0.0, 1e-12);
        }
    }
}

TEST(GramSchmidt, ZeroesDependentRows) {
    std::vector<std::vector<double>> v{{1, 0}, {2, 0}, {0, 3}};
    const std::size_t rank = gram_schmidt(v);
    EXPECT_EQ(rank, 2u);
    EXPECT_DOUBLE_EQ(v[1][0], 0.0);
    EXPECT_DOUBLE_EQ(v[1][1], 0.0);
}

TEST(GramSchmidt, HandlesZeroVector) {
    std::vector<std::vector<double>> v{{0, 0, 0}, {1, 2, 3}};
    const std::size_t rank = gram_schmidt(v);
    EXPECT_EQ(rank, 1u);
}

} // namespace
