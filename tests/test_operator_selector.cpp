#include "moea/operator_selector.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using namespace borg::moea;
using borg::util::Rng;

Solution evaluated(std::vector<double> objectives, int op) {
    Solution s;
    s.variables = {0.0};
    s.set_objectives(objectives);
    s.operator_index = op;
    return s;
}

TEST(Selector, StartsUniform) {
    OperatorSelector selector(6);
    for (const double p : selector.probabilities())
        EXPECT_DOUBLE_EQ(p, 1.0 / 6.0);
}

TEST(Selector, ProbabilitiesFollowArchiveCredit) {
    EpsilonBoxArchive archive({0.1, 0.1});
    // Operator 1 contributed 3 members, operator 0 contributed 1.
    archive.add(evaluated({0.15, 0.85}, 1));
    archive.add(evaluated({0.35, 0.65}, 1));
    archive.add(evaluated({0.65, 0.35}, 1));
    archive.add(evaluated({0.85, 0.15}, 0));

    OperatorSelector selector(2, 1.0, 1);
    Rng rng(1);
    (void)selector.select(archive, rng); // triggers refresh
    const auto& p = selector.probabilities();
    EXPECT_NEAR(p[0], (1.0 + 1.0) / (4.0 + 2.0), 1e-12);
    EXPECT_NEAR(p[1], (3.0 + 1.0) / (4.0 + 2.0), 1e-12);
}

TEST(Selector, ZetaKeepsUnproductiveOperatorsAlive) {
    EpsilonBoxArchive archive({0.1, 0.1});
    for (int i = 0; i < 9; ++i)
        archive.add(evaluated({0.05 + 0.1 * i, 0.95 - 0.1 * i}, 0));

    OperatorSelector selector(2, 1.0, 1);
    Rng rng(2);
    int picked_unproductive = 0;
    for (int trial = 0; trial < 2000; ++trial)
        if (selector.select(archive, rng) == 1) ++picked_unproductive;
    // p(op 1) = 1 / (9 + 2) ~ 0.091; must be clearly nonzero.
    EXPECT_GT(picked_unproductive, 100);
    EXPECT_LT(picked_unproductive, 350);
}

TEST(Selector, SelectionFrequencyTracksProbabilities) {
    EpsilonBoxArchive archive({0.1, 0.1});
    archive.add(evaluated({0.15, 0.85}, 0));
    archive.add(evaluated({0.45, 0.45}, 0));
    archive.add(evaluated({0.85, 0.15}, 1));

    OperatorSelector selector(2, 1.0, 1);
    Rng rng(3);
    int zero = 0;
    const int trials = 20000;
    for (int trial = 0; trial < trials; ++trial)
        if (selector.select(archive, rng) == 0) ++zero;
    EXPECT_NEAR(zero / static_cast<double>(trials), 3.0 / 5.0, 0.02);
}

TEST(Selector, UpdateFrequencyDefersRefresh) {
    EpsilonBoxArchive archive({0.1, 0.1});
    OperatorSelector selector(2, 1.0, 100);
    Rng rng(4);
    (void)selector.select(archive, rng); // refresh on first call (uniform)
    // Credit arrives after the refresh.
    archive.add(evaluated({0.15, 0.85}, 0));
    archive.add(evaluated({0.45, 0.45}, 0));
    (void)selector.select(archive, rng);
    // Still uniform: the refresh window has not elapsed.
    EXPECT_DOUBLE_EQ(selector.probabilities()[0], 0.5);
    selector.invalidate();
    (void)selector.select(archive, rng);
    EXPECT_GT(selector.probabilities()[0], 0.5);
}

TEST(Selector, RejectsBadConstruction) {
    EXPECT_THROW(OperatorSelector(0), std::invalid_argument);
    EXPECT_THROW(OperatorSelector(3, 0.0), std::invalid_argument);
    EXPECT_THROW(OperatorSelector(3, 1.0, 0), std::invalid_argument);
}

TEST(Selector, ProbabilitiesAlwaysSumToOne) {
    EpsilonBoxArchive archive({0.1, 0.1});
    Rng rng(5);
    OperatorSelector selector(6, 1.0, 1);
    for (int round = 0; round < 50; ++round) {
        std::vector<double> f{rng.uniform(), rng.uniform()};
        archive.add(evaluated(f, static_cast<int>(rng.below(6))));
        (void)selector.select(archive, rng);
        double total = 0.0;
        for (const double p : selector.probabilities()) total += p;
        EXPECT_NEAR(total, 1.0, 1e-12);
    }
}

} // namespace
