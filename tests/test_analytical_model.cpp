#include "models/analytical.hpp"

#include <gtest/gtest.h>

namespace {

using namespace borg::models;

// The paper's DTLZ2 / T_F = 0.01 configuration used in Section VI.
const TimingCosts kPaperCosts{0.01, 0.000006, 0.000029};

TEST(Analytical, SerialTimeEq1) {
    EXPECT_NEAR(serial_time(100000, kPaperCosts), 100000 * 0.010029, 1e-9);
}

TEST(Analytical, ParallelTimeEq2) {
    // N/(P-1) (T_F + 2 T_C + T_A)
    const double expected = 100000.0 / 15.0 * (0.01 + 0.000012 + 0.000029);
    EXPECT_NEAR(async_parallel_time(100000, 16, kPaperCosts), expected, 1e-9);
}

TEST(Analytical, ParallelTimeRequiresTwoProcessors) {
    EXPECT_THROW(async_parallel_time(1000, 1, kPaperCosts),
                 std::invalid_argument);
    EXPECT_NO_THROW(async_parallel_time(1000, 2, kPaperCosts));
}

TEST(Analytical, UpperBoundEq3MatchesPaperExample) {
    // Paper Section VI: "T_A = 0.000029, T_C = 0.000006 and T_F = 0.01.
    // From (3), the processor count upper bound is 244."
    EXPECT_NEAR(processor_upper_bound(kPaperCosts), 243.9, 0.15);
}

TEST(Analytical, LowerBoundEq4AlwaysAboveTwo) {
    EXPECT_GT(processor_lower_bound(kPaperCosts), 2.0);
    // Regardless of the cost values (paper's remark under Eq. 4).
    const TimingCosts extreme{1e-9, 10.0, 1e-9};
    EXPECT_GT(processor_lower_bound(extreme), 2.0);
}

TEST(Analytical, LowerBoundFormula) {
    const TimingCosts c{0.5, 0.25, 0.5};
    EXPECT_NEAR(processor_lower_bound(c), 2.0 + 0.5 / 1.0, 1e-12);
}

TEST(Analytical, SpeedupAndEfficiencyConsistent) {
    for (const std::uint64_t p : {2, 16, 64, 1024}) {
        const double s = async_speedup(p, kPaperCosts);
        const double e = async_efficiency(p, kPaperCosts);
        EXPECT_NEAR(e, s / static_cast<double>(p), 1e-12);
    }
}

TEST(Analytical, SpeedupGrowsLinearlyWithWorkers) {
    const double s16 = async_speedup(16, kPaperCosts);
    const double s32 = async_speedup(32, kPaperCosts);
    EXPECT_NEAR(s32 / s16, 31.0 / 15.0, 1e-9);
}

TEST(Analytical, EfficiencyApproachesCommunicationRatio) {
    // As P -> inf with the model's assumptions, E = (P-1)/P * ratio where
    // ratio = (T_F + T_A) / (T_F + 2 T_C + T_A). At P = 10000 we are there.
    const double ratio = (0.01 + 0.000029) / (0.01 + 0.000012 + 0.000029);
    EXPECT_NEAR(async_efficiency(10000, kPaperCosts), ratio * 9999.0 / 10000.0,
                1e-9);
}

TEST(Analytical, UpperBoundScalesWithTf) {
    TimingCosts c = kPaperCosts;
    const double base = processor_upper_bound(c);
    c.tf *= 10.0;
    EXPECT_NEAR(processor_upper_bound(c), 10.0 * base, 1e-9);
}

TEST(Analytical, RelativeErrorEq5) {
    EXPECT_NEAR(relative_error(10.0, 9.0), 0.1, 1e-12);
    EXPECT_NEAR(relative_error(10.0, 12.5), 0.25, 1e-12);
    EXPECT_THROW(relative_error(0.0, 1.0), std::invalid_argument);
}

TEST(Analytical, DegenerateCostsRejected) {
    const TimingCosts zero{1.0, 0.0, 0.0};
    EXPECT_THROW(processor_upper_bound(zero), std::invalid_argument);
    const TimingCosts zero2{0.0, 1.0, 0.0};
    EXPECT_THROW(processor_lower_bound(zero2), std::invalid_argument);
}

TEST(SaturatingModel, MatchesEq2BelowSaturation) {
    // Well under P_UB = 244 the service bound is slack.
    for (const std::uint64_t p : {4, 16, 64}) {
        EXPECT_DOUBLE_EQ(
            async_parallel_time_saturating(1000, p, kPaperCosts),
            async_parallel_time(1000, p, kPaperCosts));
    }
}

TEST(SaturatingModel, FloorsAtMasterServiceBound) {
    const TimingCosts small_tf{0.001, 0.000006, 0.000029};
    const double bound = 100000 * (2 * 0.000006 + 0.000029);
    for (const std::uint64_t p : {256, 1024, 16384}) {
        EXPECT_DOUBLE_EQ(
            async_parallel_time_saturating(100000, p, small_tf), bound);
    }
}

TEST(SaturatingModel, CrossoverNearUpperBound) {
    const TimingCosts costs{0.001, 0.000006, 0.000029};
    const double p_ub = processor_upper_bound(costs); // ~24.4
    const auto below = static_cast<std::uint64_t>(p_ub * 0.8);
    const auto above = static_cast<std::uint64_t>(p_ub * 1.5);
    EXPECT_GT(async_parallel_time_saturating(1000, below, costs),
              1000 * (2 * costs.tc + costs.ta));
    EXPECT_DOUBLE_EQ(async_parallel_time_saturating(1000, above, costs),
                     1000 * (2 * costs.tc + costs.ta));
}

TEST(SaturatingModel, EfficiencyDecaysAsOneOverP) {
    const TimingCosts costs{0.001, 0.000006, 0.000029};
    const double e256 = async_efficiency_saturating(256, costs);
    const double e512 = async_efficiency_saturating(512, costs);
    EXPECT_NEAR(e256 / e512, 2.0, 1e-9); // both saturated: E ~ 1/P
}

// Table II sanity: predicted analytical times for the paper's rows.
struct PaperRow {
    std::uint64_t p;
    double ta;
    double tf;
    double paper_analytical_time;
};

class TableTwoAnalytical : public ::testing::TestWithParam<PaperRow> {};

TEST_P(TableTwoAnalytical, ReproducesPaperPrediction) {
    const PaperRow row = GetParam();
    const TimingCosts costs{row.tf, 0.000006, row.ta};
    const double predicted = async_parallel_time(100000, row.p, costs);
    // Paper reports one decimal place; allow rounding slack.
    EXPECT_NEAR(predicted, row.paper_analytical_time,
                0.05 * row.paper_analytical_time + 0.06);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, TableTwoAnalytical,
    ::testing::Values(
        // (The paper's sub-second analytical entries for T_F = 0.001 at
        // P >= 512 round to 0.2-0.3 s where Eq. 2 itself gives ~0.1-0.2 s;
        // those rows are excluded as irreproducible from the equation.)
        PaperRow{16, 0.000023, 0.001, 7.1},   // DTLZ2
        PaperRow{64, 0.000027, 0.001, 1.7},   // DTLZ2
        PaperRow{16, 0.000023, 0.01, 67.1},   // DTLZ2
        PaperRow{128, 0.000029, 0.01, 8.0},   // DTLZ2
        PaperRow{16, 0.000023, 0.1, 667.1},   // DTLZ2
        PaperRow{1024, 0.000045, 0.1, 9.8},   // DTLZ2
        PaperRow{16, 0.000055, 0.001, 7.5},   // UF11
        PaperRow{256, 0.000064, 0.01, 4.0},   // UF11
        PaperRow{1024, 0.000078, 0.1, 9.8})); // UF11

} // namespace
