#include "moea/population.hpp"

#include <gtest/gtest.h>

namespace {

using namespace borg::moea;
using borg::util::Rng;

Solution evaluated(std::vector<double> objectives) {
    Solution s;
    s.variables = {0.0};
    s.set_objectives(objectives);
    return s;
}

TEST(Population, FillsToTargetFirst) {
    Population pop(3);
    Rng rng(1);
    EXPECT_TRUE(pop.inject(evaluated({5.0, 5.0}), rng));
    EXPECT_TRUE(pop.inject(evaluated({6.0, 6.0}), rng));
    EXPECT_TRUE(pop.inject(evaluated({7.0, 7.0}), rng));
    EXPECT_EQ(pop.size(), 3u);
}

TEST(Population, DominatingOffspringReplacesDominated) {
    Population pop(2);
    Rng rng(2);
    pop.inject(evaluated({5.0, 5.0}), rng);
    pop.inject(evaluated({1.0, 1.0}), rng);
    EXPECT_TRUE(pop.inject(evaluated({2.0, 2.0}), rng));
    EXPECT_EQ(pop.size(), 2u);
    // {5,5} must be gone: {2,2} dominates it, not {1,1}.
    bool found_55 = false;
    for (std::size_t i = 0; i < pop.size(); ++i)
        if (pop[i].objectives[0] == 5.0) found_55 = true;
    EXPECT_FALSE(found_55);
}

TEST(Population, DominatedOffspringRejected) {
    Population pop(2);
    Rng rng(3);
    pop.inject(evaluated({1.0, 1.0}), rng);
    pop.inject(evaluated({0.5, 2.0}), rng);
    EXPECT_FALSE(pop.inject(evaluated({2.0, 2.0}), rng));
    EXPECT_EQ(pop.size(), 2u);
}

TEST(Population, NondominatedOffspringReplacesRandom) {
    Population pop(2);
    Rng rng(4);
    pop.inject(evaluated({1.0, 3.0}), rng);
    pop.inject(evaluated({3.0, 1.0}), rng);
    EXPECT_TRUE(pop.inject(evaluated({2.0, 2.0}), rng));
    EXPECT_EQ(pop.size(), 2u);
    bool found_new = false;
    for (std::size_t i = 0; i < pop.size(); ++i)
        if (pop[i].objectives[0] == 2.0) found_new = true;
    EXPECT_TRUE(found_new);
}

TEST(Population, RejectsUnevaluated) {
    Population pop(2);
    Rng rng(5);
    Solution raw({0.5});
    EXPECT_THROW(pop.inject(raw, rng), std::invalid_argument);
}

TEST(Population, TargetResizeDoesNotEvict) {
    Population pop(4);
    Rng rng(6);
    for (int i = 0; i < 4; ++i)
        pop.inject(evaluated({double(i), double(4 - i)}), rng);
    pop.set_target_size(2);
    EXPECT_EQ(pop.size(), 4u);
    EXPECT_EQ(pop.target_size(), 2u);
}

TEST(Population, TournamentPrefersDominant) {
    Population pop(10);
    Rng rng(7);
    // One clearly dominant member among dominated ones.
    pop.inject(evaluated({0.0, 0.0}), rng);
    for (int i = 1; i < 10; ++i)
        pop.inject(evaluated({1.0 + i, 1.0 + i}), rng);
    int winner_best = 0;
    for (int trial = 0; trial < 200; ++trial) {
        const Solution& w = pop.tournament_select(10, rng);
        if (w.objectives[0] == 0.0) ++winner_best;
    }
    // With tournament size 10 over a population of 10 (with replacement),
    // the dominant member wins whenever drawn; expect a solid majority.
    EXPECT_GT(winner_best, 120);
}

TEST(Population, TournamentSizeOneIsRandom) {
    Population pop(4);
    Rng rng(8);
    for (int i = 0; i < 4; ++i)
        pop.inject(evaluated({double(i), double(4 - i)}), rng);
    // All members nondominated: selection must span several members.
    std::set<double> seen;
    for (int trial = 0; trial < 100; ++trial)
        seen.insert(pop.tournament_select(1, rng).objectives[0]);
    EXPECT_GE(seen.size(), 3u);
}

TEST(Population, EmptyOperationsThrow) {
    Population pop(2);
    Rng rng(9);
    EXPECT_THROW(pop.random_member(rng), std::logic_error);
    EXPECT_THROW(pop.tournament_select(2, rng), std::logic_error);
}

TEST(Population, ZeroTargetRejected) {
    EXPECT_THROW(Population(0), std::invalid_argument);
    Population pop(1);
    EXPECT_THROW(pop.set_target_size(0), std::invalid_argument);
}

TEST(Population, AppendBypassesReplacement) {
    Population pop(1);
    pop.append(evaluated({1.0, 1.0}));
    pop.append(evaluated({2.0, 2.0}));
    EXPECT_EQ(pop.size(), 2u); // append ignores the target
}

} // namespace
