#ifndef BORG_TESTS_NET_TEST_SUPPORT_HPP
#define BORG_TESTS_NET_TEST_SUPPORT_HPP

/// Process supervisor for the TCP run-manager tests: spawns real
/// borg_worker processes (fork + exec of BORG_WORKER_BIN, injected by
/// CMake), waits for them, and can kill -9 one mid-evaluation — the
/// fault the net tier exists to prove survivable. Also provides the
/// byte-identity helpers shared by the loopback tests.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "moea/borg.hpp"
#include "moea/solution.hpp"
#include "parallel/message.hpp"
#include "parallel/thread_executor.hpp"
#include "problems/problem.hpp"

namespace borg::testnet {

#ifndef BORG_WORKER_BIN
#error "BORG_WORKER_BIN must be defined (path to the borg_worker binary)"
#endif

/// One spawned borg_worker. Reap (wait/kill9) before destruction; the
/// destructor force-kills leaked processes so a failed ASSERT cannot
/// strand children.
class WorkerProc {
public:
    explicit WorkerProc(pid_t pid) : pid_(pid) {}
    WorkerProc(WorkerProc&& other) noexcept : pid_(other.pid_) {
        other.pid_ = -1;
    }
    WorkerProc& operator=(WorkerProc&& other) noexcept {
        if (this != &other) {
            reap_if_running();
            pid_ = other.pid_;
            other.pid_ = -1;
        }
        return *this;
    }
    WorkerProc(const WorkerProc&) = delete;
    WorkerProc& operator=(const WorkerProc&) = delete;
    ~WorkerProc() { reap_if_running(); }

    pid_t pid() const noexcept { return pid_; }

    /// SIGKILL — the un-catchable death the reassignment path must absorb.
    void kill9() {
        if (pid_ < 0) return;
        ::kill(pid_, SIGKILL);
        int status = 0;
        ::waitpid(pid_, &status, 0);
        pid_ = -1;
    }

    /// Blocks until the worker exits; returns its exit code (-1 if it was
    /// killed by a signal).
    int wait_exit() {
        if (pid_ < 0) return -1;
        int status = 0;
        ::waitpid(pid_, &status, 0);
        pid_ = -1;
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }

    /// Waits up to \p timeout_ms for a voluntary exit, then SIGKILLs.
    /// The right cleanup for fleets that may contain deliberately hung
    /// workers (a stalled worker ignores Shutdown forever, by design).
    int wait_exit_or_kill(int timeout_ms) {
        if (pid_ < 0) return -1;
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(timeout_ms);
        int status = 0;
        while (std::chrono::steady_clock::now() < deadline) {
            if (::waitpid(pid_, &status, WNOHANG) == pid_) {
                pid_ = -1;
                return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        kill9();
        return -1;
    }

private:
    void reap_if_running() {
        if (pid_ < 0) return;
        ::kill(pid_, SIGKILL);
        int status = 0;
        ::waitpid(pid_, &status, 0);
        pid_ = -1;
    }

    pid_t pid_ = -1;
};

/// Spawns `borg_worker --connect 127.0.0.1:<port> --problem <problem>
/// <extra...>`. The worker retries the connect with backoff, so spawning
/// before the master polls (or even binds) is safe.
inline WorkerProc spawn_worker(std::uint16_t port,
                               const std::string& problem,
                               std::vector<std::string> extra = {}) {
    std::vector<std::string> args;
    args.emplace_back(BORG_WORKER_BIN);
    args.emplace_back("--connect");
    args.emplace_back("127.0.0.1:" + std::to_string(port));
    args.emplace_back("--problem");
    args.emplace_back(problem);
    for (auto& a : extra) args.push_back(std::move(a));

    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid == 0) {
        ::execv(BORG_WORKER_BIN, argv.data());
        _exit(127); // exec failed
    }
    return WorkerProc(pid);
}

/// Exact (bitwise, via ==) equality of two archives, member by member —
/// the determinism gate: a TCP run's archive must match the thread
/// executor's dispatch-mode archive byte for byte.
inline bool archives_identical(const std::vector<moea::Solution>& a,
                               const std::vector<moea::Solution>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].variables != b[i].variables) return false;
        if (a[i].objectives != b[i].objectives) return false;
        if (a[i].constraints != b[i].constraints) return false;
        if (a[i].operator_index != b[i].operator_index) return false;
    }
    return true;
}

/// The reference archive every transport must reproduce: the thread
/// executor under the window protocol with the same (seed, window,
/// evaluations).
inline std::vector<moea::Solution>
reference_archive(const problems::Problem& problem, double epsilon,
                  std::uint64_t seed, std::size_t window,
                  std::uint64_t evaluations) {
    moea::BorgParams params = moea::BorgParams::for_problem(problem, epsilon);
    moea::BorgMoea algorithm(problem, params, seed);
    parallel::ThreadMasterSlaveExecutor executor(
        window, parallel::IngestOrder::dispatch);
    executor.run(algorithm, problem, evaluations);
    return algorithm.archive().solutions();
}

} // namespace borg::testnet

#endif
