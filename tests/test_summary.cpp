#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using borg::stats::Accumulator;
using borg::stats::quantile;
using borg::stats::summarize;

TEST(Accumulator, EmptyIsZero) {
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, SingleValue) {
    Accumulator acc;
    acc.add(3.5);
    EXPECT_EQ(acc.count(), 1u);
    EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
    EXPECT_DOUBLE_EQ(acc.min(), 3.5);
    EXPECT_DOUBLE_EQ(acc.max(), 3.5);
}

TEST(Accumulator, KnownMeanAndVariance) {
    Accumulator acc;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    // Sample variance of this classic dataset is 32/7.
    EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, StableForTinyValues) {
    // Microsecond-scale timings with a large shared offset.
    Accumulator acc;
    for (int i = 0; i < 1000; ++i) acc.add(1e-6 + (i % 2) * 1e-9);
    EXPECT_NEAR(acc.mean(), 1e-6 + 0.5e-9, 1e-15);
    EXPECT_GT(acc.variance(), 0.0);
}

TEST(Summarize, FullSummary) {
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
    const auto s = summarize(xs);
    EXPECT_EQ(s.count, 5u);
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
    EXPECT_DOUBLE_EQ(s.median, 3.0);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Summarize, EmptyInput) {
    const auto s = summarize(std::vector<double>{});
    EXPECT_EQ(s.count, 0u);
}

TEST(Quantile, MedianEvenCount) {
    EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
}

TEST(Quantile, Extremes) {
    const std::vector<double> xs{5.0, 1.0, 3.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
}

TEST(Quantile, InterpolatesType7) {
    // R: quantile(c(1,2,3,4), 0.25) == 1.75 with the default type 7.
    EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0}, 0.25), 1.75);
}

} // namespace
