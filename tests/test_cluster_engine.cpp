/// Edge-case tests for the ClusterEngine — the single virtual-time
/// master-slave engine behind every executor and the simulation model
/// (DESIGN.md §10). The protocol-level behaviour is covered by the
/// executor suites and the golden traces; this file probes the engine's
/// boundaries: minimal clusters, empty runs, failures that land while a
/// worker holds the master slot, and degenerate island topologies.

#include "parallel/cluster_engine.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "moea/nsga2.hpp"
#include "obs/event_trace.hpp"
#include "obs/trace_check.hpp"
#include "parallel/async_executor.hpp"
#include "parallel/multi_master.hpp"
#include "parallel/sync_executor.hpp"
#include "parallel/trace_check.hpp"
#include "problems/problem.hpp"

namespace {

using namespace borg;
using namespace borg::parallel;
using borg::stats::Distribution;
using borg::stats::make_delay;

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Fixture {
    std::unique_ptr<problems::Problem> problem =
        problems::make_problem("zdt1");
    std::unique_ptr<Distribution> tf = make_delay(0.01, 0.0);
    std::unique_ptr<Distribution> tc = make_delay(0.000006, 0.0);
    std::unique_ptr<Distribution> ta = make_delay(0.000029, 0.0);

    moea::BorgParams params() const {
        return moea::BorgParams::for_problem(*problem, 0.01);
    }
    VirtualClusterConfig cluster(std::uint64_t p,
                                 std::uint64_t seed = 1) const {
        return VirtualClusterConfig{p, tf.get(), tc.get(), ta.get(), seed};
    }
};

// ---------------------------------------------------- minimal clusters

TEST(EngineEdge, AsyncP2SingleWorkerCompletes) {
    // P = 2 is the smallest legal cluster: one master, one worker. The
    // protocol degenerates to strict alternation with zero contention.
    Fixture f;
    moea::BorgMoea algo(*f.problem, f.params(), 2);
    AsyncMasterSlaveExecutor exec(algo, *f.problem, f.cluster(2, 3));
    obs::EventTrace trace;
    const auto result = exec.run(500, {.trace = &trace});
    EXPECT_TRUE(result.completed_target);
    EXPECT_EQ(result.evaluations, 500u);
    EXPECT_DOUBLE_EQ(result.contention_rate, 0.0);
    for (const auto& issue : cross_validate(trace, result))
        ADD_FAILURE() << issue;
}

TEST(EngineEdge, SyncP2SingleWorkerCompletes) {
    Fixture f;
    moea::Nsga2 algo(*f.problem, 8, 4);
    SyncMasterSlaveExecutor exec(algo, *f.problem, f.cluster(2, 5));
    obs::EventTrace trace;
    const auto result = exec.run(160, {.trace = &trace});
    EXPECT_TRUE(result.completed_target);
    EXPECT_GE(result.evaluations, 160u);
    for (const auto& issue : cross_validate(trace, result))
        ADD_FAILURE() << issue;
}

// ------------------------------------------------- zero-evaluation runs

TEST(EngineEdge, ZeroEvaluationRunsThrowEverywhere) {
    Fixture f;
    moea::BorgMoea async_algo(*f.problem, f.params(), 6);
    AsyncMasterSlaveExecutor async_exec(async_algo, *f.problem,
                                        f.cluster(4, 7));
    EXPECT_THROW(async_exec.run(0), std::invalid_argument);

    moea::Nsga2 sync_algo(*f.problem, 8, 8);
    SyncMasterSlaveExecutor sync_exec(sync_algo, *f.problem, f.cluster(4, 9));
    EXPECT_THROW(sync_exec.run(0), std::invalid_argument);

    MultiMasterConfig mm;
    mm.cluster = f.cluster(8, 10);
    mm.islands = 2;
    MultiMasterExecutor mm_exec(*f.problem, f.params(), mm);
    EXPECT_THROW(mm_exec.run(0), std::invalid_argument);
}

// ------------------------------- failure while holding the master slot

TEST(EngineEdge, FailureDuringMasterServiceReleasesTheSlot) {
    // Worker 0's failure time lands inside its first steady-state master
    // service (it is granted the master at ~0.01006 and holds it for
    // T_A + 2 T_C). The engine only retires workers at the loop top, so
    // the in-flight service completes, the slot is released, and the
    // survivor finishes the run — a failure mid-hold must never leak the
    // capacity-1 resource and deadlock the cluster.
    Fixture f;
    VirtualClusterConfig cfg = f.cluster(3, 11);
    cfg.worker_failure_at = {0.010065, kInf};
    moea::BorgMoea algo(*f.problem, f.params(), 12);
    AsyncMasterSlaveExecutor exec(algo, *f.problem, cfg);
    obs::EventTrace trace;
    const auto result = exec.run(400, {.trace = &trace});
    EXPECT_TRUE(result.completed_target);
    EXPECT_EQ(result.evaluations, 400u);
    EXPECT_EQ(result.failed_workers, 1u);
    // Every granted acquisition was requested and the failed worker's
    // final service still counted: the trace stays internally consistent.
    const auto agg = obs::recompute(trace);
    EXPECT_EQ(agg.grants, agg.total_acquires);
    EXPECT_EQ(agg.worker_failures, 1u);
    for (const auto& issue : cross_validate(trace, result))
        ADD_FAILURE() << issue;
}

// ------------------------------------------- degenerate island topology

TEST(EngineEdge, MultiMasterOneWorkerPerIsland) {
    // islands == workers: every island is a P = 2 master-slave pair
    // (processors == 2 * islands), the thinnest topology the validator
    // accepts.
    Fixture f;
    MultiMasterConfig mm;
    mm.cluster = f.cluster(6, 13);
    mm.islands = 3;
    mm.migration_interval = 100;
    MultiMasterExecutor exec(*f.problem, f.params(), mm);
    obs::EventTrace trace;
    const auto result = exec.run(900, {.trace = &trace});
    EXPECT_TRUE(result.completed_target);
    EXPECT_EQ(result.evaluations, 900u);
    std::uint64_t total = 0;
    for (const auto e : result.island_evaluations) total += e;
    EXPECT_EQ(total, 900u);
    EXPECT_EQ(trace.count(obs::EventKind::worker_spawn), 3u);
    for (const auto& issue :
         obs::cross_validate(trace, to_reported(result,
                                                /*check_samples=*/false)))
        ADD_FAILURE() << issue;

    // One more master than workers is rejected outright.
    MultiMasterConfig too_thin;
    too_thin.cluster = f.cluster(5, 14);
    too_thin.islands = 3;
    EXPECT_THROW(MultiMasterExecutor(*f.problem, f.params(), too_thin),
                 std::invalid_argument);
}

} // namespace
