/// Tests for the run-observability layer: trace determinism, JSONL export,
/// metrics instruments, and — the core invariant — that every aggregate an
/// executor reports can be recomputed exactly from its own event trace.
/// Also holds the regression test for the zero-virtual-time completion bug
/// (a run finishing at t = 0 used to be reported as never finishing).

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "moea/nsga2.hpp"
#include "obs/event_trace.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace_check.hpp"
#include "parallel/async_executor.hpp"
#include "parallel/sync_executor.hpp"
#include "parallel/thread_executor.hpp"
#include "parallel/trace_check.hpp"
#include "problems/problem.hpp"

namespace {

using namespace borg;
using namespace borg::parallel;
using borg::obs::EventKind;
using borg::stats::Distribution;
using borg::stats::make_delay;

struct Fixture {
    std::unique_ptr<problems::Problem> problem =
        problems::make_problem("zdt1");
    std::unique_ptr<Distribution> tf = make_delay(0.01, 0.1);
    std::unique_ptr<Distribution> tc = make_delay(0.000006, 0.0);
    std::unique_ptr<Distribution> ta = make_delay(0.000029, 0.2);

    moea::BorgParams params() const {
        return moea::BorgParams::for_problem(*problem, 0.01);
    }
    VirtualClusterConfig cluster(std::uint64_t p,
                                 std::uint64_t seed = 1) const {
        return VirtualClusterConfig{p, tf.get(), tc.get(), ta.get(), seed};
    }
};

// ------------------------------------------------------- sink fundamentals

TEST(EventTrace, RecordsCountsAndExportsJsonl) {
    obs::EventTrace trace;
    trace.record({EventKind::run_start, 0.0, -1, 8.0, 100});
    trace.record({EventKind::tf_sample, 0.25, 3, 0.01, 0});
    trace.record({EventKind::run_end, 1.5, -1, 1.5, 100});

    EXPECT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.count(EventKind::tf_sample), 1u);
    EXPECT_EQ(trace.count(EventKind::worker_failure), 0u);

    const std::string jsonl = trace.to_jsonl();
    std::ostringstream out;
    trace.write_jsonl(out);
    EXPECT_EQ(out.str(), jsonl); // both export paths agree byte-for-byte
    EXPECT_EQ(jsonl.find("\"k\":\"run_start\""), 1u);
    // Three lines, each a JSON object.
    std::size_t lines = 0;
    for (const char c : jsonl)
        if (c == '\n') ++lines;
    EXPECT_EQ(lines, 3u);
}

TEST(Metrics, InstrumentsAccumulateAndExport) {
    obs::MetricsRegistry metrics;
    metrics.counter("test.results").inc(41);
    metrics.counter("test.results").inc();
    metrics.gauge("test.elapsed").set(2.5);
    obs::Histogram& h = metrics.histogram("test.wait");
    for (const double x : {1.0, 2.0, 3.0, 4.0}) h.observe(x);

    EXPECT_EQ(metrics.counter("test.results").value(), 42u);
    EXPECT_DOUBLE_EQ(metrics.gauge("test.elapsed").value(), 2.5);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.5);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 4.0);
    EXPECT_DOUBLE_EQ(h.sum(), 10.0);
    EXPECT_NEAR(h.stddev(), 1.2909944487358056, 1e-12); // sample stddev

    EXPECT_NE(metrics.find_counter("test.results"), nullptr);
    EXPECT_EQ(metrics.find_counter("test.missing"), nullptr);
    EXPECT_EQ(metrics.size(), 3u);

    std::ostringstream out;
    metrics.write_json(out);
    const std::string json = out.str();
    EXPECT_NE(json.find("\"test.results\""), std::string::npos);
    EXPECT_NE(json.find("\"test.wait\""), std::string::npos);
}

// --------------------------------------------- async executor observability

TEST(AsyncTrace, SameSeedRunsEmitByteIdenticalTraces) {
    Fixture f;
    obs::EventTrace trace_a;
    obs::EventTrace trace_b;
    for (obs::EventTrace* trace : {&trace_a, &trace_b}) {
        moea::BorgMoea algo(*f.problem, f.params(), 21);
        AsyncMasterSlaveExecutor exec(algo, *f.problem, f.cluster(9, 22));
        exec.run(4000, {.trace = trace});
    }
    ASSERT_EQ(trace_a.size(), trace_b.size());
    EXPECT_TRUE(trace_a.events() == trace_b.events());
    EXPECT_EQ(trace_a.to_jsonl(), trace_b.to_jsonl());
}

TEST(AsyncTrace, ReportedAggregatesMatchTraceRecomputation) {
    Fixture f;
    obs::EventTrace trace;
    moea::BorgMoea algo(*f.problem, f.params(), 23);
    AsyncMasterSlaveExecutor exec(algo, *f.problem, f.cluster(9, 24));
    const auto reported = exec.run(4000, {.trace = &trace});

    const auto issues = cross_validate(trace, reported);
    for (const auto& issue : issues) ADD_FAILURE() << issue;

    const auto agg = obs::recompute(trace);
    EXPECT_EQ(agg.results, 4000u);
    EXPECT_EQ(agg.worker_spawns, 8u);
    EXPECT_EQ(agg.final_archive_size, algo.archive().size());
    EXPECT_GT(agg.master_busy_fraction, 0.0);
    EXPECT_TRUE(reported.completed_target);
}

TEST(AsyncTrace, MetricsMirrorTheRunResult) {
    Fixture f;
    obs::MetricsRegistry metrics;
    moea::BorgMoea algo(*f.problem, f.params(), 25);
    AsyncMasterSlaveExecutor exec(algo, *f.problem, f.cluster(9, 26));
    const auto result = exec.run(3000, {.metrics = &metrics});

    const auto* results = metrics.find_counter("async.results");
    ASSERT_NE(results, nullptr);
    EXPECT_EQ(results->value(), result.evaluations);
    const auto* elapsed = metrics.find_gauge("async.elapsed_seconds");
    ASSERT_NE(elapsed, nullptr);
    EXPECT_DOUBLE_EQ(elapsed->value(), result.elapsed);
    const auto* tf = metrics.find_histogram("async.tf_seconds");
    ASSERT_NE(tf, nullptr);
    EXPECT_EQ(tf->count(), result.tf_applied.count);
    EXPECT_DOUBLE_EQ(tf->mean(), result.tf_applied.mean);
}

// Regression: a run whose virtual delays are all zero finishes at t = 0.
// The old `finish_time > 0.0` sentinel read that as "never finished" and
// reported elapsed = last-event time with no way to tell the run starved.
TEST(AsyncTrace, ZeroDelayRunCompletesAtVirtualTimeZero) {
    Fixture f;
    const auto zero = make_delay(0.0, 0.0);
    VirtualClusterConfig cfg{5, zero.get(), zero.get(), zero.get(), 27};
    moea::BorgMoea algo(*f.problem, f.params(), 28);
    const auto result =
        AsyncMasterSlaveExecutor(algo, *f.problem, cfg).run(200);
    EXPECT_TRUE(result.completed_target);
    EXPECT_EQ(result.evaluations, 200u);
    EXPECT_DOUBLE_EQ(result.elapsed, 0.0);
}

// ---------------------------------------------- sync executor observability

TEST(SyncTrace, ReportedAggregatesMatchTraceRecomputation) {
    Fixture f;
    obs::EventTrace trace;
    moea::Nsga2 algo(*f.problem, 17, 31);
    SyncMasterSlaveExecutor exec(algo, *f.problem, f.cluster(17, 32));
    const auto reported = exec.run(4000, {.trace = &trace});

    const auto issues = cross_validate(trace, reported);
    for (const auto& issue : issues) ADD_FAILURE() << issue;

    EXPECT_TRUE(reported.completed_target);
    EXPECT_GT(trace.count(EventKind::generation), 0u);
}

TEST(SyncTrace, SameSeedRunsEmitByteIdenticalTraces) {
    Fixture f;
    obs::EventTrace trace_a;
    obs::EventTrace trace_b;
    for (obs::EventTrace* trace : {&trace_a, &trace_b}) {
        moea::Nsga2 algo(*f.problem, 17, 33);
        SyncMasterSlaveExecutor exec(algo, *f.problem, f.cluster(17, 34));
        exec.run(3000, {.trace = trace});
    }
    EXPECT_EQ(trace_a.to_jsonl(), trace_b.to_jsonl());
}

// -------------------------------------------- thread executor observability

TEST(ThreadTrace, TraceCarriesOneResultPerEvaluation) {
    const auto problem = problems::make_problem("zdt1");
    moea::BorgMoea algo(*problem,
                        moea::BorgParams::for_problem(*problem, 0.01), 35);
    ThreadMasterSlaveExecutor exec(4);
    obs::EventTrace trace;
    obs::MetricsRegistry metrics;
    const auto result = exec.run(algo, *problem, 2000, {.trace = &trace, .metrics = &metrics});

    EXPECT_EQ(trace.count(EventKind::result), 2000u);
    EXPECT_EQ(trace.count(EventKind::worker_spawn), 4u);
    EXPECT_EQ(trace.count(EventKind::run_end), 1u);
    const auto agg = obs::recompute(trace);
    EXPECT_EQ(agg.results, result.evaluations);
    EXPECT_TRUE(agg.saw_run_end);
    EXPECT_DOUBLE_EQ(agg.elapsed, result.elapsed);
    const auto* ta = metrics.find_histogram("thread.ta_seconds");
    ASSERT_NE(ta, nullptr);
    EXPECT_EQ(ta->count(), 2000u);
}

} // namespace
