#include "moea/diagnostics.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "problems/problem.hpp"

namespace {

using namespace borg;
using namespace borg::moea;

struct DiagFixture : ::testing::Test {
    DiagFixture()
        : problem(problems::make_problem("zdt1")),
          algo(*problem, BorgParams::for_problem(*problem, 0.01), 9) {}

    void run(std::uint64_t evals, DiagnosticLog& log) {
        run_serial(algo, *problem, evals,
                   [&](std::uint64_t) { log.observe(algo); });
    }

    std::unique_ptr<problems::Problem> problem;
    BorgMoea algo;
};

TEST_F(DiagFixture, SnapshotsAtWindowBoundaries) {
    DiagnosticLog log(500);
    run(5000, log);
    ASSERT_GE(log.snapshots().size(), 10u);
    // Window-boundary snapshots are >= 500 apart unless restart-triggered.
    for (const auto& snap : log.snapshots()) {
        EXPECT_LE(snap.evaluations, 5000u);
        EXPECT_EQ(snap.operator_probabilities.size(), algo.num_operators());
    }
}

TEST_F(DiagFixture, EvaluationCountsMonotone) {
    DiagnosticLog log(300);
    run(4000, log);
    for (std::size_t i = 1; i < log.snapshots().size(); ++i)
        EXPECT_GE(log.snapshots()[i].evaluations,
                  log.snapshots()[i - 1].evaluations);
}

TEST_F(DiagFixture, RestartsForceExtraSnapshots) {
    DiagnosticLog log(1000000); // window larger than the run
    run(20000, log);
    // ZDT1 at this budget restarts several times; each must snapshot.
    EXPECT_EQ(log.snapshots().size(),
              static_cast<std::size_t>(algo.restarts()));
    EXPECT_GE(algo.restarts(), 1u);
}

TEST_F(DiagFixture, AdaptationVisibleInSwing) {
    DiagnosticLog log(500);
    run(10000, log);
    EXPECT_GT(log.max_probability_swing(), 0.01);
}

TEST_F(DiagFixture, PrintFormatsContainOperatorColumns) {
    DiagnosticLog log(1000);
    run(3000, log);
    std::ostringstream table, csv;
    log.print(table);
    log.print_csv(csv);
    EXPECT_NE(table.str().find("p(SBX+PM)"), std::string::npos);
    EXPECT_NE(csv.str().find("p(UM)"), std::string::npos);
    EXPECT_NE(table.str().find("restarts"), std::string::npos);
}

TEST(DiagnosticLog, RejectsZeroWindow) {
    EXPECT_THROW(DiagnosticLog(0), std::invalid_argument);
}

TEST(DiagnosticLog, ObserveReturnsFalseBetweenWindows) {
    const auto problem = problems::make_problem("zdt1");
    BorgMoea algo(*problem, BorgParams::for_problem(*problem, 0.01), 10);
    DiagnosticLog log(1000);
    EXPECT_FALSE(log.observe(algo)); // nothing evaluated yet
}

} // namespace
