#include "models/simulation_model.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "models/sync_model.hpp"

namespace {

using namespace borg::models;
using borg::stats::ConstantDistribution;
using borg::stats::Distribution;
using borg::stats::make_delay;

struct Dists {
    std::unique_ptr<Distribution> tf, tc, ta;
    SimulationConfig config(std::uint64_t n, std::uint64_t p,
                            std::uint64_t seed = 1) const {
        return SimulationConfig{n, p, tf.get(), tc.get(), ta.get(), seed};
    }
};

Dists constant_dists(double tf, double tc, double ta) {
    return {std::make_unique<ConstantDistribution>(tf),
            std::make_unique<ConstantDistribution>(tc),
            std::make_unique<ConstantDistribution>(ta)};
}

TEST(SimAsync, MatchesAnalyticalBelowSaturation) {
    // With constant times and no contention, the DES must agree with Eq. 2
    // to within the startup transient.
    const auto d = constant_dists(0.01, 0.000006, 0.000029);
    const TimingCosts costs{0.01, 0.000006, 0.000029};
    for (const std::uint64_t p : {4, 16, 64}) {
        const auto result = simulate_async(d.config(20000, p));
        const double predicted = async_parallel_time(20000, p, costs);
        EXPECT_NEAR(result.elapsed, predicted, 0.02 * predicted)
            << "P = " << p;
        // With constant times the lockstep pattern produces same-instant
        // arrivals (counted as "contended" by the FIFO), but actual queue
        // waits must be negligible relative to the evaluation time.
        EXPECT_LT(result.mean_queue_wait, 0.02 * 0.01);
    }
}

TEST(SimAsync, SaturatedMasterThroughputBound) {
    // At saturation the master's service time governs: T_P ~ N (2T_C+T_A).
    const auto d = constant_dists(0.001, 0.000006, 0.000029);
    const auto result = simulate_async(d.config(50000, 512));
    const double bound = 50000 * (2 * 0.000006 + 0.000029);
    EXPECT_GE(result.elapsed, 0.99 * bound);
    EXPECT_LE(result.elapsed, 1.10 * bound);
    EXPECT_GT(result.master_busy_fraction, 0.95);
    EXPECT_GT(result.contention_rate, 0.9);
}

TEST(SimAsync, AnalyticalErrorGrowsWithProcessorCount) {
    // The Table II pattern: with T_F = 0.001 the analytical model under-
    // predicts more and more as P grows.
    const auto d = constant_dists(0.001, 0.000006, 0.000029);
    const TimingCosts costs{0.001, 0.000006, 0.000029};
    double previous_error = 0.0;
    for (const std::uint64_t p : {64, 128, 256, 512}) {
        const auto result = simulate_async(d.config(20000, p, 3));
        const double err = relative_error(
            result.elapsed, async_parallel_time(20000, p, costs));
        EXPECT_GT(err, previous_error);
        previous_error = err;
    }
    EXPECT_GT(previous_error, 0.8);
}

TEST(SimAsync, SaturatingModelTracksSimulationEverywhere) {
    // The saturation-aware closed form (max of Eq. 2 and the service
    // bound) stays within a few percent of the DES across the whole sweep,
    // where plain Eq. 2 fails by 90%+ past P_UB.
    const auto d = constant_dists(0.001, 0.000006, 0.000029);
    const TimingCosts costs{0.001, 0.000006, 0.000029};
    for (const std::uint64_t p : {8, 16, 64, 256, 1024}) {
        const auto sim = simulate_async(d.config(20000, p, 17));
        const double refined =
            async_parallel_time_saturating(20000, p, costs);
        EXPECT_NEAR(refined, sim.elapsed, 0.10 * sim.elapsed) << "P = " << p;
    }
}

TEST(SimAsync, EfficiencyPeaksAtModerateP) {
    const auto d = constant_dists(0.01, 0.000006, 0.000029);
    double best_eff = 0.0;
    std::uint64_t best_p = 0;
    for (const std::uint64_t p : {2, 16, 64, 1024}) {
        const auto cfg = d.config(20000, p, 4);
        const double eff = simulated_efficiency(cfg, simulate_async(cfg));
        if (eff > best_eff) {
            best_eff = eff;
            best_p = p;
        }
    }
    EXPECT_TRUE(best_p == 16 || best_p == 64);
    EXPECT_GT(best_eff, 0.9);
}

TEST(SimAsync, DeterministicGivenSeed) {
    auto d = Dists{make_delay(0.001, 0.1), make_delay(0.000006, 0.1),
                   make_delay(0.000029, 0.3)};
    const auto a = simulate_async(d.config(5000, 32, 99));
    const auto b = simulate_async(d.config(5000, 32, 99));
    EXPECT_DOUBLE_EQ(a.elapsed, b.elapsed);
    const auto c = simulate_async(d.config(5000, 32, 100));
    EXPECT_NE(a.elapsed, c.elapsed);
}

TEST(SimAsync, CompletesExactEvaluationCount) {
    const auto d = constant_dists(0.001, 0.000006, 0.000029);
    for (const std::uint64_t n : {1, 7, 100, 3001}) {
        const auto result = simulate_async(d.config(n, 8));
        EXPECT_EQ(result.evaluations, n);
    }
}

TEST(SimAsync, MoreWorkersThanWorkIsSafe) {
    const auto d = constant_dists(0.01, 0.000006, 0.000029);
    const auto result = simulate_async(d.config(10, 128));
    EXPECT_EQ(result.evaluations, 10u);
    EXPECT_GT(result.elapsed, 0.01);
}

TEST(SimAsync, ValidatesConfig) {
    const auto d = constant_dists(0.01, 0.000006, 0.000029);
    EXPECT_THROW(simulate_async(d.config(0, 8)), std::invalid_argument);
    EXPECT_THROW(simulate_async(d.config(10, 1)), std::invalid_argument);
    SimulationConfig missing{10, 8, nullptr, d.tc.get(), d.ta.get(), 1};
    EXPECT_THROW(simulate_async(missing), std::invalid_argument);
}

// ----------------------------------------------------------------- sync

TEST(SimSync, TracksCantuPazModelWithConstantTimes) {
    const auto d = constant_dists(0.01, 0.000006, 0.000029);
    const TimingCosts costs{0.01, 0.000006, 0.000029};
    for (const std::uint64_t p : {8, 32, 128}) {
        const auto result = simulate_sync(d.config(20000, p, 5));
        const double predicted = sync_parallel_time(20000, p, costs);
        // The DES serializes receives the model folds into P T_C; allow a
        // modest band.
        EXPECT_NEAR(result.elapsed, predicted, 0.15 * predicted)
            << "P = " << p;
    }
}

TEST(SimSync, VariableTfHurtsSyncButNotAsync) {
    // Section VI-B's closing observation: per-generation barriers make the
    // synchronous runtime track the *max* of P draws of T_F, while the
    // asynchronous model only tracks the mean.
    const std::uint64_t n = 20000, p = 64;
    auto low = Dists{make_delay(0.01, 0.05), make_delay(0.000006, 0.0),
                     make_delay(0.000029, 0.0)};
    auto high = Dists{make_delay(0.01, 1.0), make_delay(0.000006, 0.0),
                      make_delay(0.000029, 0.0)};

    const double sync_low = simulate_sync(low.config(n, p, 6)).elapsed;
    const double sync_high = simulate_sync(high.config(n, p, 6)).elapsed;
    const double async_low = simulate_async(low.config(n, p, 6)).elapsed;
    const double async_high = simulate_async(high.config(n, p, 6)).elapsed;

    // Normalize by the distributions' true means (zero-truncation raises
    // the high-cv mean): the async runtime tracks the *mean* T_F while the
    // sync runtime tracks the *max* over each generation's P draws.
    const double mean_ratio = high.tf->mean() / low.tf->mean();
    const double async_ratio = async_high / async_low;
    const double sync_ratio = sync_high / sync_low;
    EXPECT_NEAR(async_ratio, mean_ratio, 0.07 * mean_ratio);
    EXPECT_GT(sync_ratio, 1.5 * mean_ratio);
}

TEST(SimSync, CompletesExactEvaluationCount) {
    const auto d = constant_dists(0.001, 0.000006, 0.000029);
    const auto result = simulate_sync(d.config(1000, 16));
    EXPECT_EQ(result.evaluations, 1000u);
}

TEST(SimSync, PartialFinalGeneration) {
    const auto d = constant_dists(0.001, 0.000006, 0.000029);
    // 10 evaluations on 16 processors: a single undersized generation.
    const auto result = simulate_sync(d.config(10, 16));
    EXPECT_EQ(result.evaluations, 10u);
    EXPECT_GT(result.elapsed, 0.001);
}

TEST(SimulatedEfficiency, SaturationProducesLowEfficiency) {
    const auto d = constant_dists(0.001, 0.000006, 0.000029);
    const auto cfg = d.config(20000, 1024, 8);
    const double eff = simulated_efficiency(cfg, simulate_async(cfg));
    EXPECT_LT(eff, 0.1);
}

} // namespace
