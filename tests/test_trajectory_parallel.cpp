/// Thread-tier tests (rerun under TSan by ci.sh): parallel trajectory
/// resolution must produce byte-identical results for any worker count —
/// the sweep drivers rely on this for schedule-invariant stdout.

#include "parallel/trajectory.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>

#include "problems/reference_set.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace borg;
using namespace borg::parallel;

struct ParallelResolveTest : ::testing::Test {
    ParallelResolveTest()
        : refset(problems::zdt1_reference_set(100)), normalizer(refset) {}

    metrics::Front shifted_front(double shift) const {
        metrics::Front out;
        for (const auto& p : refset)
            out.push_back({p[0] + shift, p[1] + shift});
        return out;
    }

    /// Records the same mixed checkpoint sequence (distinct fronts,
    /// duplicates, and interleavings) into a fresh deferred recorder.
    TrajectoryRecorder make_recorder() const {
        TrajectoryRecorder rec(normalizer, 10, /*defer_hypervolume=*/true);
        const double shifts[] = {0.5, 0.3, 0.3, 0.1, 0.3,  0.1,
                                 0.0, 0.0, 0.2, 0.05, 0.0, 0.2};
        std::uint64_t evals = 0;
        for (const double shift : shifts) {
            evals += 10;
            rec.on_result(0.1 * static_cast<double>(evals), evals,
                          [&] { return shifted_front(shift); });
        }
        return rec;
    }

    static void expect_bitwise_equal(const TrajectoryRecorder& a,
                                     const TrajectoryRecorder& b) {
        ASSERT_EQ(a.points().size(), b.points().size());
        for (std::size_t i = 0; i < a.points().size(); ++i) {
            // memcmp, not ==: byte identity is the contract, including
            // signed zeros and every last mantissa bit.
            EXPECT_EQ(std::memcmp(&a.points()[i], &b.points()[i],
                                  sizeof(TrajectoryPoint)),
                      0)
                << "point " << i;
        }
    }

    problems::ReferenceSet refset;
    metrics::HypervolumeNormalizer normalizer;
};

TEST_F(ParallelResolveTest, PoolResolveIsByteIdenticalToSerial) {
    TrajectoryRecorder serial = make_recorder();
    const ResolveStats serial_stats = serial.resolve_pending();

    // jobs=1 and oversubscribed jobs=4 (the host may have a single core;
    // oversubscription exercises arbitrary interleavings regardless).
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
        util::ThreadPool pool(jobs);
        TrajectoryRecorder parallel = make_recorder();
        const ResolveStats stats = parallel.resolve_pending(&pool);
        EXPECT_EQ(stats.resolved, serial_stats.resolved);
        EXPECT_EQ(stats.computed, serial_stats.computed);
        expect_bitwise_equal(serial, parallel);
    }
}

TEST_F(ParallelResolveTest, PoolResolveRepeatsAreStable) {
    // Repeated parallel resolutions across separate batches keep the
    // digest-cache seeding consistent with the serial path.
    util::ThreadPool pool(4);
    TrajectoryRecorder serial(normalizer, 10, /*defer_hypervolume=*/true);
    TrajectoryRecorder parallel(normalizer, 10, /*defer_hypervolume=*/true);
    std::uint64_t evals = 0;
    for (int batch = 0; batch < 3; ++batch) {
        for (const double shift : {0.4, 0.2, 0.2, 0.1}) {
            evals += 10;
            const double time = 0.1 * static_cast<double>(evals);
            serial.on_result(time, evals, [&] { return shifted_front(shift); });
            parallel.on_result(time, evals,
                               [&] { return shifted_front(shift); });
        }
        const ResolveStats a = serial.resolve_pending();
        const ResolveStats b = parallel.resolve_pending(&pool);
        EXPECT_EQ(a.resolved, b.resolved);
        EXPECT_EQ(a.computed, b.computed);
    }
    expect_bitwise_equal(serial, parallel);
}

TEST_F(ParallelResolveTest, PoolTaskExceptionPropagates) {
    // A normalizer rejecting a malformed front must surface the error from
    // resolve_pending, not hang the latch or kill a worker.
    util::ThreadPool pool(2);
    TrajectoryRecorder rec(normalizer, 10, /*defer_hypervolume=*/true);
    rec.on_result(1.0, 10, [&] { return shifted_front(0.1); });
    rec.on_result(2.0, 20, [] {
        return metrics::Front{{0.1, 0.2, 0.3}}; // wrong arity for ZDT1
    });
    rec.on_result(3.0, 30, [&] { return shifted_front(0.0); });
    EXPECT_THROW(rec.resolve_pending(&pool), std::invalid_argument);
    // The pool is still usable afterwards.
    pool.submit([] {});
    pool.wait_idle();
}

} // namespace
