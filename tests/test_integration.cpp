/// Integration tests spanning the full stack: the paper's experiment
/// pipeline in miniature. These are the acceptance checks of DESIGN.md §5 —
/// each test reproduces one qualitative claim of the paper end to end.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "metrics/hypervolume.hpp"
#include "models/analytical.hpp"
#include "models/simulation_model.hpp"
#include "models/sync_model.hpp"
#include "moea/borg.hpp"
#include "parallel/async_executor.hpp"
#include "parallel/trajectory.hpp"
#include "problems/problem.hpp"
#include "problems/reference_set.hpp"
#include "stats/fitting.hpp"

namespace {

using namespace borg;
using borg::stats::Distribution;
using borg::stats::make_delay;

struct Experiment {
    std::unique_ptr<problems::Problem> problem;
    std::unique_ptr<Distribution> tf, tc, ta;

    static Experiment dtlz2(double tf_mean) {
        Experiment e;
        e.problem = problems::make_problem("dtlz2_5");
        e.tf = make_delay(tf_mean, 0.1);
        e.tc = make_delay(0.000006, 0.0);
        e.ta = make_delay(0.000029, 0.3);
        return e;
    }

    moea::BorgParams params() const {
        return moea::BorgParams::for_problem(*problem, 0.15);
    }
    parallel::VirtualClusterConfig cluster(std::uint64_t p,
                                           std::uint64_t seed) const {
        return parallel::VirtualClusterConfig{p, tf.get(), tc.get(), ta.get(),
                                              seed};
    }
};

/// Paper claim (Table II): the analytical model is accurate at large T_F
/// and small P, and severely wrong at small T_F and large P — while the
/// simulation model stays accurate everywhere.
TEST(PaperClaims, AnalyticalModelFailsWhereSimulationHolds) {
    const std::uint64_t n = 20000;
    const models::TimingCosts costs{0.001, 0.000006, 0.000029};
    const auto e = Experiment::dtlz2(0.001);

    // Large-P "experimental" run on the virtual cluster.
    moea::BorgMoea algo(*e.problem, e.params(), 1);
    parallel::AsyncMasterSlaveExecutor exec(algo, *e.problem,
                                            e.cluster(512, 2));
    const auto experimental = exec.run(n);

    const double analytical = models::async_parallel_time(n, 512, costs);
    models::SimulationConfig sim_cfg{n, 512, e.tf.get(), e.tc.get(),
                                     e.ta.get(), 3};
    const double simulated = models::simulate_async(sim_cfg).elapsed;

    const double analytical_error =
        models::relative_error(experimental.elapsed, analytical);
    const double simulation_error =
        models::relative_error(experimental.elapsed, simulated);
    EXPECT_GT(analytical_error, 0.85); // paper: 97-98% at P = 512
    EXPECT_LT(simulation_error, 0.05); // paper: 0-3%
}

/// Paper claim (Section VI): peak efficiency occurs well below the
/// analytical master-saturation bound P_UB.
TEST(PaperClaims, EfficiencyPeaksBelowUpperBound) {
    const models::TimingCosts costs{0.01, 0.000006, 0.000029};
    const double p_ub = models::processor_upper_bound(costs);
    EXPECT_NEAR(p_ub, 244.0, 1.0);

    const auto e = Experiment::dtlz2(0.01);
    double best_eff = 0.0;
    std::uint64_t best_p = 0;
    for (const std::uint64_t p : {16, 32, 64, 128, 256}) {
        models::SimulationConfig cfg{20000, p, e.tf.get(), e.tc.get(),
                                     e.ta.get(), 4};
        const double eff =
            models::simulated_efficiency(cfg, models::simulate_async(cfg));
        if (eff > best_eff) {
            best_eff = eff;
            best_p = p;
        }
    }
    EXPECT_LT(static_cast<double>(best_p), p_ub);
    EXPECT_GT(best_eff, 0.85);
}

/// Paper claim (Table II): elapsed time stops improving past saturation
/// and the efficient frontier moves to higher P as T_F grows.
TEST(PaperClaims, SaturationFloorsElapsedTime) {
    const auto e = Experiment::dtlz2(0.001);
    std::vector<double> elapsed;
    for (const std::uint64_t p : {16, 64, 256}) {
        models::SimulationConfig cfg{20000, p, e.tf.get(), e.tc.get(),
                                     e.ta.get(), 5};
        elapsed.push_back(models::simulate_async(cfg).elapsed);
    }
    EXPECT_GT(elapsed[0], elapsed[1]);             // 16 -> 64 still helps
    EXPECT_NEAR(elapsed[1], elapsed[2], 0.1 * elapsed[1]); // floor reached
}

/// Paper claim (Figures 3/4 mechanics): hypervolume-threshold speedup is
/// roughly flat for an efficient configuration.
TEST(PaperClaims, HypervolumeSpeedupFlatWhenEfficient) {
    const std::uint64_t n = 30000;
    const auto e = Experiment::dtlz2(0.01);
    const auto refset = problems::reference_set_for("dtlz2_5");
    metrics::HypervolumeNormalizer normalizer(refset);

    moea::BorgMoea serial_algo(*e.problem, e.params(), 7);
    parallel::TrajectoryRecorder serial_rec(normalizer, 2000);
    run_serial_virtual(serial_algo, *e.problem, e.cluster(2, 8), n,
                       {.recorder = &serial_rec});

    moea::BorgMoea par_algo(*e.problem, e.params(), 7);
    parallel::TrajectoryRecorder par_rec(normalizer, 2000);
    parallel::AsyncMasterSlaveExecutor exec(par_algo, *e.problem,
                                            e.cluster(32, 8));
    exec.run(n, {.recorder = &par_rec});

    // Evaluate S^h over thresholds both runs attained.
    const double h_max = std::min(serial_rec.final_hypervolume(),
                                  par_rec.final_hypervolume()) *
                         0.95;
    ASSERT_GT(h_max, 0.4);
    std::vector<double> speedups;
    for (double h = 0.3; h <= h_max; h += 0.1) {
        const double ts = serial_rec.time_to_threshold(h);
        const double tp = par_rec.time_to_threshold(h);
        ASSERT_TRUE(std::isfinite(ts));
        ASSERT_TRUE(std::isfinite(tp));
        speedups.push_back(ts / tp);
    }
    ASSERT_GE(speedups.size(), 3u);
    // Efficient configuration: speedup within a reasonable band of P - 1
    // across thresholds (paper: "the speedup lines are flat").
    for (const double s : speedups) {
        EXPECT_GT(s, 8.0);
        EXPECT_LT(s, 80.0);
    }
}

/// Paper claim (Figure 5): the asynchronous model scales to larger P than
/// the synchronous model at equal T_F.
TEST(PaperClaims, AsyncOutscalesSyncAtLargeTf) {
    const models::TimingCosts costs{1.0, 0.000006, 0.000060};
    auto tf = make_delay(costs.tf, 0.1);
    auto tc = make_delay(costs.tc, 0.0);
    auto ta = make_delay(costs.ta, 0.0);
    const std::uint64_t p = 4096;
    // 8 evaluation "waves" amortize the pipeline fill/drain transient.
    models::SimulationConfig cfg{8 * p, p, tf.get(), tc.get(), ta.get(), 9};
    const double async_eff =
        models::simulated_efficiency(cfg, models::simulate_async(cfg));
    const double sync_eff = models::sync_efficiency(p, costs);
    EXPECT_GT(async_eff, 0.9);
    EXPECT_LT(sync_eff, 0.85);
}

/// Paper workflow (Section IV-B / V): measure timings from a real run, fit
/// distributions by log-likelihood, and drive the simulation model with
/// the fitted distributions — predictions must track the measured run.
TEST(PaperWorkflow, MeasureFitSimulateRoundTrip) {
    const std::uint64_t n = 20000;
    const auto e = Experiment::dtlz2(0.01);

    // "Experimental" run with measured T_A (real master-step timings).
    moea::BorgMoea algo(*e.problem, e.params(), 10);
    parallel::VirtualClusterConfig cfg{64, e.tf.get(), e.tc.get(), nullptr,
                                       11};
    parallel::AsyncMasterSlaveExecutor exec(algo, *e.problem, cfg);
    const auto experimental = exec.run(n);

    // Fit a distribution to the measured T_A mean/stddev (the executor
    // summarizes the applied samples).
    const auto fitted_ta =
        make_delay(experimental.ta_applied.mean,
                   experimental.ta_applied.stddev /
                       std::max(experimental.ta_applied.mean, 1e-12));
    models::SimulationConfig sim_cfg{n, 64, e.tf.get(), e.tc.get(),
                                     fitted_ta.get(), 12};
    const double predicted = models::simulate_async(sim_cfg).elapsed;
    EXPECT_NEAR(predicted, experimental.elapsed,
                0.05 * experimental.elapsed);
}

/// Cross-stack determinism: the full experimental pipeline is replayable.
TEST(Reproducibility, FullPipelineIsDeterministic) {
    const auto run_once = [] {
        const auto e = Experiment::dtlz2(0.001);
        moea::BorgMoea algo(*e.problem, e.params(), 21);
        parallel::AsyncMasterSlaveExecutor exec(algo, *e.problem,
                                                e.cluster(32, 22));
        const auto r = exec.run(5000);
        const auto refset = problems::reference_set_for("dtlz2_5");
        return std::pair{r.elapsed,
                         metrics::normalized_hypervolume(
                             algo.archive().objective_vectors(), refset)};
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_DOUBLE_EQ(a.first, b.first);
    EXPECT_DOUBLE_EQ(a.second, b.second);
}

/// UF11 is genuinely harder than DTLZ2 for the same budget — the premise
/// of the paper's two-problem design.
TEST(PaperClaims, Uf11HarderThanDtlz2) {
    const std::uint64_t n = 30000;
    const auto dtlz2 = problems::make_problem("dtlz2_5");
    const auto uf11 = problems::make_problem("uf11");

    moea::BorgMoea a(*dtlz2, moea::BorgParams::for_problem(*dtlz2, 0.15), 30);
    moea::run_serial(a, *dtlz2, n);
    moea::BorgMoea b(*uf11, moea::BorgParams::for_problem(*uf11, 0.15), 30);
    moea::run_serial(b, *uf11, n);

    const double hv_dtlz2 = metrics::normalized_hypervolume(
        a.archive().objective_vectors(),
        problems::reference_set_for("dtlz2_5"));
    const double hv_uf11 = metrics::normalized_hypervolume(
        b.archive().objective_vectors(), problems::reference_set_for("uf11"));
    EXPECT_GT(hv_dtlz2, hv_uf11 + 0.03);
}

} // namespace
