#include "moea/selection.hpp"

#include <gtest/gtest.h>

namespace {

using namespace borg::moea;
using borg::util::Rng;

Solution evaluated(std::vector<double> variables,
                   std::vector<double> objectives) {
    Solution s;
    s.variables = std::move(variables);
    s.set_objectives(objectives);
    return s;
}

struct SelectionFixture : ::testing::Test {
    SelectionFixture() : archive({0.1, 0.1}), population(4), rng(7) {
        archive.add(evaluated({100.0}, {0.15, 0.85}));
        archive.add(evaluated({200.0}, {0.85, 0.15}));
        for (int i = 0; i < 4; ++i)
            population.inject(evaluated({double(i)},
                                        {1.0 + i, 5.0 - i}),
                              rng);
    }
    EpsilonBoxArchive archive;
    Population population;
    Rng rng;
};

TEST_F(SelectionFixture, FirstParentComesFromArchive) {
    for (int trial = 0; trial < 50; ++trial) {
        const auto parents = select_parents(3, archive, population, 2, rng);
        ASSERT_EQ(parents.size(), 3u);
        const double v = parents[0][0];
        EXPECT_TRUE(v == 100.0 || v == 200.0);
    }
}

TEST_F(SelectionFixture, RemainingParentsFromPopulation) {
    for (int trial = 0; trial < 50; ++trial) {
        const auto parents = select_parents(4, archive, population, 2, rng);
        for (std::size_t i = 1; i < parents.size(); ++i)
            EXPECT_LT(parents[i][0], 4.0);
    }
}

TEST_F(SelectionFixture, EmptyArchiveFallsBackToPopulation) {
    EpsilonBoxArchive empty({0.1, 0.1});
    const auto parents = select_parents(2, empty, population, 2, rng);
    for (const auto& p : parents) EXPECT_LT(p[0], 4.0);
}

TEST_F(SelectionFixture, ArityRespected) {
    for (std::size_t arity : {1u, 2u, 4u, 10u}) {
        const auto parents =
            select_parents(arity, archive, population, 2, rng);
        EXPECT_EQ(parents.size(), arity);
    }
}

TEST_F(SelectionFixture, ZeroArityThrows) {
    EXPECT_THROW(select_parents(0, archive, population, 2, rng),
                 std::invalid_argument);
}

TEST(Selection, EmptyPopulationThrows) {
    EpsilonBoxArchive archive({0.1});
    Population population(2);
    Rng rng(1);
    EXPECT_THROW(select_parents(2, archive, population, 2, rng),
                 std::logic_error);
}

} // namespace
