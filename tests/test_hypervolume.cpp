#include "metrics/hypervolume.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "problems/reference_set.hpp"
#include "util/rng.hpp"

namespace {

using namespace borg::metrics;

TEST(Hypervolume, SinglePoint2D) {
    const Front front{{0.5, 0.5}};
    EXPECT_NEAR(hypervolume(front, {1.0, 1.0}), 0.25, 1e-12);
}

TEST(Hypervolume, EmptyFrontIsZero) {
    EXPECT_DOUBLE_EQ(hypervolume({}, {1.0, 1.0}), 0.0);
}

TEST(Hypervolume, PointOutsideReferenceIgnored) {
    const Front front{{1.5, 0.2}, {0.5, 0.5}};
    EXPECT_NEAR(hypervolume(front, {1.0, 1.0}), 0.25, 1e-12);
}

TEST(Hypervolume, PointOnReferenceBoundaryContributesNothing) {
    const Front front{{1.0, 0.0}};
    EXPECT_DOUBLE_EQ(hypervolume(front, {1.0, 1.0}), 0.0);
}

TEST(Hypervolume, TwoPointStaircase2D) {
    const Front front{{0.2, 0.8}, {0.8, 0.2}};
    // 0.8*0.2 box union: (1-0.2)(1-0.8) + (1-0.8)(1-0.2) - overlap
    // = 0.16 + 0.16 - 0.2*0.2 ... compute directly: sweep gives
    // (1-0.2)*(1-0.8) + (1-0.8)*(0.8-0.2) = 0.16 + 0.12 = 0.28.
    EXPECT_NEAR(hypervolume(front, {1.0, 1.0}), 0.28, 1e-12);
}

TEST(Hypervolume, DominatedPointAddsNothing) {
    const Front base{{0.2, 0.2}};
    const Front with_dominated{{0.2, 0.2}, {0.5, 0.5}};
    EXPECT_DOUBLE_EQ(hypervolume(base, {1.0, 1.0}),
                     hypervolume(with_dominated, {1.0, 1.0}));
}

TEST(Hypervolume, DuplicatePointsCollapse) {
    const Front front{{0.3, 0.3}, {0.3, 0.3}, {0.3, 0.3}};
    EXPECT_NEAR(hypervolume(front, {1.0, 1.0}), 0.49, 1e-12);
}

TEST(Hypervolume, SinglePointHigherDimensions) {
    const Front front{{0.5, 0.5, 0.5, 0.5, 0.5}};
    EXPECT_NEAR(hypervolume(front, {1.0, 1.0, 1.0, 1.0, 1.0}),
                std::pow(0.5, 5), 1e-12);
}

TEST(Hypervolume, ThreeDAnalytic) {
    // Two boxes with a known union volume.
    const Front front{{0.0, 0.5, 0.5}, {0.5, 0.0, 0.5}};
    // vol(A) = 1*0.5*0.5 = 0.25 each; intersection (0.5,0.5,0.5)-(1,1,1)
    // from maxima: (0.5,0.5,0.5) -> 0.5*0.5*0.5 = 0.125.
    EXPECT_NEAR(hypervolume(front, {1.0, 1.0, 1.0}), 0.375, 1e-12);
}

TEST(Hypervolume, MismatchedDimensionThrows) {
    EXPECT_THROW(hypervolume({{0.1, 0.2, 0.3}}, {1.0, 1.0}),
                 std::invalid_argument);
    EXPECT_THROW(hypervolume({{0.1}}, {}), std::invalid_argument);
}

TEST(Hypervolume, MonotoneUnderAddingPoints) {
    borg::util::Rng rng(1);
    Front front;
    const std::vector<double> ref{1.0, 1.0, 1.0};
    double previous = 0.0;
    for (int i = 0; i < 30; ++i) {
        front.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
        const double hv = hypervolume(front, ref);
        EXPECT_GE(hv, previous - 1e-12);
        previous = hv;
    }
}

TEST(Hypervolume, ExactMatchesMonteCarlo3D) {
    borg::util::Rng rng(2);
    Front front;
    for (int i = 0; i < 40; ++i)
        front.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
    const std::vector<double> ref{1.0, 1.0, 1.0};
    const double exact = hypervolume(front, ref);
    const double mc = hypervolume_monte_carlo(front, ref, 400000, 3);
    EXPECT_NEAR(mc, exact, 0.02 * std::max(exact, 0.05));
}

TEST(Hypervolume, ExactMatchesMonteCarlo5D) {
    // The paper's 5-objective setting: validate WFG recursion against MC.
    const auto sphere = borg::problems::dtlz2_reference_set(5, 4);
    const std::vector<double> ref(5, 1.1);
    const double exact = hypervolume(sphere, ref);
    const double mc = hypervolume_monte_carlo(sphere, ref, 500000, 4);
    EXPECT_NEAR(mc, exact, 0.03 * exact);
}

TEST(ReferencePoint, MarginAboveNadir) {
    const Front refset{{0.0, 1.0}, {1.0, 0.0}, {0.5, 0.5}};
    const auto ref = reference_point_for(refset, 0.1);
    EXPECT_NEAR(ref[0], 1.1, 1e-12);
    EXPECT_NEAR(ref[1], 1.1, 1e-12);
}

TEST(ReferencePoint, DegenerateRangeUsesAbsoluteMargin) {
    const Front refset{{1.0, 0.0}, {1.0, 1.0}};
    const auto ref = reference_point_for(refset, 0.1);
    EXPECT_NEAR(ref[0], 1.1, 1e-12); // zero range in objective 0
}

TEST(NormalizedHypervolume, ReferenceSetScoresOne) {
    const auto refset = borg::problems::dtlz2_reference_set(3, 12);
    EXPECT_NEAR(normalized_hypervolume(refset, refset), 1.0, 1e-12);
}

TEST(NormalizedHypervolume, SubsetScoresBelowOne) {
    const auto refset = borg::problems::dtlz2_reference_set(3, 12);
    Front half(refset.begin(), refset.begin() + refset.size() / 4);
    const double hv = normalized_hypervolume(half, refset);
    EXPECT_LT(hv, 1.0);
    EXPECT_GT(hv, 0.0);
}

TEST(NormalizedHypervolume, FarFrontScoresNearZero) {
    const auto refset = borg::problems::dtlz2_reference_set(3, 12);
    const Front bad{{1.05, 1.05, 1.05}};
    EXPECT_LT(normalized_hypervolume(bad, refset), 0.01);
}

TEST(Normalizer, CachesReferenceComputation) {
    const auto refset = borg::problems::dtlz2_reference_set(3, 12);
    const HypervolumeNormalizer normalizer(refset);
    EXPECT_GT(normalizer.reference_hypervolume(), 0.0);
    EXPECT_EQ(normalizer.reference_point().size(), 3u);
    EXPECT_NEAR(normalizer.normalized(refset), 1.0, 1e-12);
}

TEST(NondominatedSubset, FiltersDominatedAndDuplicates) {
    const Front front{{0.5, 0.5}, {0.2, 0.8}, {0.6, 0.6}, {0.5, 0.5}};
    const auto nd = nondominated_subset(front);
    EXPECT_EQ(nd.size(), 2u);
}

TEST(NondominatedSubset, KeepsEverythingWhenNondominated) {
    const Front front{{0.1, 0.9}, {0.5, 0.5}, {0.9, 0.1}};
    EXPECT_EQ(nondominated_subset(front).size(), 3u);
}

TEST(MonteCarlo, DeterministicForSeed) {
    const Front front{{0.3, 0.7}, {0.7, 0.3}};
    const std::vector<double> ref{1.0, 1.0};
    EXPECT_DOUBLE_EQ(hypervolume_monte_carlo(front, ref, 10000, 5),
                     hypervolume_monte_carlo(front, ref, 10000, 5));
}

TEST(MonteCarlo, ZeroSamplesThrows) {
    EXPECT_THROW(hypervolume_monte_carlo({{0.5, 0.5}}, {1.0, 1.0}, 0),
                 std::invalid_argument);
}

TEST(ReferencePoint, RaggedReferenceSetThrows) {
    EXPECT_THROW(reference_point_for({{0.0, 1.0}, {1.0}}),
                 std::invalid_argument);
    EXPECT_THROW(reference_point_for({{0.0}, {1.0, 0.0, 0.5}}),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------------
// HypervolumeEngine vs the naive reference implementation
// ---------------------------------------------------------------------------

/// Random front families covering the shapes the sweeps actually see:
/// 0 = uniform cube, 1 = simplex-like surface with jitter, 2 = coarsely
/// rounded coordinates (many duplicates, points on the boundary).
Front random_front(borg::util::Rng& rng, std::size_t m, std::size_t n,
                   int mode) {
    Front front(n, std::vector<double>(m));
    for (auto& row : front) {
        if (mode == 1) {
            double norm = 0.0;
            for (double& x : row) {
                x = -std::log(1.0 - 0.999 * rng.uniform());
                norm += x;
            }
            for (double& x : row)
                x = x / std::max(norm, 1e-12) + 0.05 * rng.uniform();
        } else {
            for (double& x : row) {
                x = rng.uniform();
                if (mode == 2) x = std::round(x * 4.0) / 4.0;
            }
        }
    }
    return front;
}

void expect_engine_matches_naive(const Front& front,
                                 const std::vector<double>& ref,
                                 const char* label) {
    const double fast = hypervolume(front, ref);
    const double slow = hypervolume_naive(front, ref);
    EXPECT_NEAR(fast, slow, 1e-9 * std::max(1.0, std::abs(slow))) << label;
}

TEST(HypervolumeEngine, MatchesNaiveRandomized) {
    // Per-objective size caps keep the naive reference tractable under
    // sanitizers; caps validated to run in seconds at -O0.
    const std::size_t max_n[]{0, 0, 200, 200, 120, 80, 40, 24};
    borg::util::Rng rng(20130807);
    for (std::size_t m = 2; m <= 7; ++m) {
        const std::vector<double> ref(m, 1.1);
        for (int mode = 0; mode < 3; ++mode) {
            for (const std::size_t n :
                 {std::size_t{1}, std::size_t{2}, std::size_t{7},
                  max_n[m] / 2, max_n[m]}) {
                const auto front = random_front(rng, m, n, mode);
                const std::string label = "m=" + std::to_string(m) +
                                          " n=" + std::to_string(n) +
                                          " mode=" + std::to_string(mode);
                expect_engine_matches_naive(front, ref, label.c_str());
            }
        }
    }
}

TEST(HypervolumeEngine, MatchesNaiveOnDegenerateFronts) {
    const std::vector<double> ref{1.0, 1.0, 1.0};
    // All-duplicate front.
    expect_engine_matches_naive(
        {{0.3, 0.4, 0.5}, {0.3, 0.4, 0.5}, {0.3, 0.4, 0.5}}, ref,
        "duplicates");
    // Points on the reference boundary contribute nothing.
    expect_engine_matches_naive({{1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}}, ref,
                                "boundary");
    // Mixed: one interior point among boundary/outside points.
    expect_engine_matches_naive(
        {{1.0, 0.2, 0.2}, {0.5, 0.5, 0.5}, {1.2, 0.1, 0.1}}, ref, "mixed");
}

TEST(HypervolumeEngine, SingleObjective) {
    // m == 1: volume is just ref - min over interior points.
    EXPECT_NEAR(hypervolume({{0.25}, {0.7}, {1.5}}, {1.0}), 0.75, 1e-12);
    EXPECT_DOUBLE_EQ(hypervolume({{1.0}}, {1.0}), 0.0);
}

TEST(HypervolumeEngine, ReusedEngineIsStateless) {
    // One engine across differently-shaped calls must match fresh engines.
    HypervolumeEngine engine({.algo = HvAlgo::kWfg});
    borg::util::Rng rng(7);
    for (const std::size_t m : {std::size_t{5}, std::size_t{2},
                                std::size_t{7}, std::size_t{3}}) {
        const auto front = random_front(rng, m, 30, 0);
        const std::vector<double> ref(m, 1.1);
        EXPECT_DOUBLE_EQ(engine.compute(front, ref),
                         hypervolume(front, ref));
    }
}

TEST(HypervolumeEngine, MonteCarloPolicyMatchesFreeFunction) {
    borg::util::Rng rng(11);
    const auto front = random_front(rng, 5, 30, 0);
    const std::vector<double> ref(5, 1.1);
    HvConfig cfg;
    cfg.algo = HvAlgo::kMonteCarlo;
    cfg.mc_samples = 20000;
    cfg.mc_seed = 99;
    HypervolumeEngine engine(cfg);
    EXPECT_DOUBLE_EQ(engine.compute(front, ref),
                     hypervolume_monte_carlo(front, ref, 20000, 99));
    // MC tracks the exact value within statistical tolerance.
    const double exact = hypervolume(front, ref);
    EXPECT_NEAR(engine.compute(front, ref), exact,
                0.05 * std::max(exact, 0.01));
}

TEST(HypervolumeEngine, AutoPolicyStaysExactWithinBudget) {
    borg::util::Rng rng(13);
    const auto front = random_front(rng, 5, 40, 0);
    const std::vector<double> ref(5, 1.1);
    HypervolumeEngine engine; // default: auto, budget 5e7
    EXPECT_DOUBLE_EQ(engine.compute(front, ref), hypervolume(front, ref));
}

TEST(HypervolumeEngine, AutoPolicyFallsBackToMonteCarlo) {
    borg::util::Rng rng(17);
    const auto front = random_front(rng, 5, 40, 0);
    const std::vector<double> ref(5, 1.1);
    HvConfig cfg;
    cfg.exact_budget = 1.0; // force every 5-objective call over budget
    HypervolumeEngine engine(cfg);
    EXPECT_DOUBLE_EQ(
        engine.compute(front, ref),
        hypervolume_monte_carlo(front, ref, cfg.mc_samples, cfg.mc_seed));
}

TEST(HypervolumeEngine, AutoPolicyNeverSamplesLowDimensions) {
    // m <= 4 is always exact regardless of budget: the sweep base cases
    // are cheap enough that sampling would only add noise.
    borg::util::Rng rng(19);
    const auto front = random_front(rng, 4, 150, 0);
    const std::vector<double> ref(4, 1.1);
    HvConfig cfg;
    cfg.exact_budget = 1.0;
    HypervolumeEngine engine(cfg);
    EXPECT_DOUBLE_EQ(engine.compute(front, ref), hypervolume(front, ref));
}

} // namespace
