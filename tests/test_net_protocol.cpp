/// Wire-codec tests for the TCP run manager (DESIGN.md §14): exact
/// round-trips, randomized round-trips, and the adversarial surface —
/// truncation at every byte boundary, single-byte corruption sweeps, and
/// random garbage. The invariant under attack: malformed bytes always
/// produce a typed ProtocolError (or a successful decode of *some*
/// well-formed message), never UB — this suite runs under ASan/UBSan in CI.

#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <variant>
#include <vector>

namespace {

using namespace borg::net;

// Bitwise double equality (NaN payloads and signed zeros must survive the
// wire exactly — the codec moves bit patterns, not values).
bool same_bits(double a, double b) {
    std::uint64_t ua = 0, ub = 0;
    std::memcpy(&ua, &a, 8);
    std::memcpy(&ub, &b, 8);
    return ua == ub;
}

bool same_bits(const std::vector<double>& a, const std::vector<double>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (!same_bits(a[i], b[i])) return false;
    return true;
}

void expect_equal(const Message& a, const Message& b) {
    ASSERT_EQ(a.index(), b.index());
    if (const auto* x = std::get_if<Hello>(&a)) {
        const auto& y = std::get<Hello>(b);
        EXPECT_EQ(x->connect_attempts, y.connect_attempts);
        EXPECT_EQ(x->pid, y.pid);
        EXPECT_EQ(x->num_variables, y.num_variables);
        EXPECT_EQ(x->num_objectives, y.num_objectives);
        EXPECT_EQ(x->num_constraints, y.num_constraints);
        EXPECT_EQ(x->problem, y.problem);
        EXPECT_EQ(x->worker_name, y.worker_name);
    } else if (const auto* x = std::get_if<HelloAck>(&a)) {
        const auto& y = std::get<HelloAck>(b);
        EXPECT_EQ(x->accepted, y.accepted);
        EXPECT_EQ(x->worker_id, y.worker_id);
        EXPECT_EQ(x->heartbeat_interval_ms, y.heartbeat_interval_ms);
        EXPECT_EQ(x->reason, y.reason);
    } else if (const auto* x = std::get_if<Task>(&a)) {
        const auto& y = std::get<Task>(b);
        EXPECT_EQ(x->seq, y.seq);
        EXPECT_TRUE(same_bits(x->variables, y.variables));
    } else if (const auto* x = std::get_if<Result>(&a)) {
        const auto& y = std::get<Result>(b);
        EXPECT_EQ(x->seq, y.seq);
        EXPECT_EQ(x->worker_id, y.worker_id);
        EXPECT_TRUE(same_bits(x->eval_seconds, y.eval_seconds));
        EXPECT_EQ(x->sent_at_ns, y.sent_at_ns);
        EXPECT_TRUE(same_bits(x->objectives, y.objectives));
        EXPECT_TRUE(same_bits(x->constraints, y.constraints));
    } else if (const auto* x = std::get_if<Heartbeat>(&a)) {
        const auto& y = std::get<Heartbeat>(b);
        EXPECT_EQ(x->worker_id, y.worker_id);
        EXPECT_EQ(x->results_done, y.results_done);
    } else if (const auto* x = std::get_if<Goodbye>(&a)) {
        EXPECT_EQ(x->worker_id, std::get<Goodbye>(b).worker_id);
    }
    // Shutdown carries nothing.
}

std::string random_string(std::mt19937_64& rng, std::size_t max_len) {
    std::uniform_int_distribution<std::size_t> len(0, max_len);
    std::uniform_int_distribution<int> byte(0, 255);
    std::string s(len(rng), '\0');
    for (char& c : s) c = static_cast<char>(byte(rng));
    return s;
}

std::vector<double> random_doubles(std::mt19937_64& rng,
                                   std::size_t max_len) {
    // Adversarial values on purpose: infinities, NaNs, denormals, signed
    // zero — everything IEEE can hold must cross the wire bit-exact.
    static const double specials[] = {
        0.0,
        -0.0,
        1.0,
        -1e308,
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::epsilon(),
    };
    std::uniform_int_distribution<std::size_t> len(0, max_len);
    std::uniform_int_distribution<std::size_t> pick(0, std::size(specials));
    std::uniform_real_distribution<double> real(-1e6, 1e6);
    std::vector<double> v(len(rng));
    for (double& d : v) {
        const std::size_t k = pick(rng);
        d = k < std::size(specials) ? specials[k] : real(rng);
    }
    return v;
}

Message random_message(std::mt19937_64& rng) {
    std::uniform_int_distribution<int> which(0, 6);
    std::uniform_int_distribution<std::uint64_t> u64v;
    std::uniform_int_distribution<std::uint32_t> u32v;
    switch (which(rng)) {
    case 0:
        return Hello{u32v(rng), u64v(rng), u32v(rng), u32v(rng), u32v(rng),
                     random_string(rng, 64), random_string(rng, 64)};
    case 1:
        return HelloAck{(u32v(rng) & 1) == 1, u32v(rng), u32v(rng),
                        random_string(rng, 64)};
    case 2: return Task{u64v(rng), random_doubles(rng, 32)};
    case 3: {
        Result r;
        r.seq = u64v(rng);
        r.worker_id = u32v(rng);
        const std::vector<double> eval = random_doubles(rng, 1);
        r.eval_seconds = eval.empty() ? 0.0 : eval[0];
        r.sent_at_ns = u64v(rng);
        r.objectives = random_doubles(rng, 16);
        r.constraints = random_doubles(rng, 8);
        return r;
    }
    case 4: return Heartbeat{u32v(rng), u64v(rng)};
    case 5: return Goodbye{u32v(rng)};
    default: return Shutdown{};
    }
}

WireError code_of(const std::vector<std::uint8_t>& frame) {
    try {
        (void)decode_frame(frame);
    } catch (const ProtocolError& error) {
        return error.code();
    }
    ADD_FAILURE() << "decode_frame unexpectedly succeeded";
    return WireError::bad_payload;
}

// --------------------------------------------------------------- round-trip

TEST(NetProtocol, RoundTripsEveryMessageType) {
    const Message messages[] = {
        Hello{3, 4242, 11, 2, 1, "zdt1", "worker-a"},
        HelloAck{true, 7, 250, ""},
        HelloAck{false, 0, 0, "problem mismatch"},
        Task{99, {0.25, -1.5, 3.0}},
        Result{99, 7, 0.0125, 123456789, {1.0, 2.0}, {0.0}},
        Heartbeat{7, 42},
        Goodbye{7},
        Shutdown{},
    };
    for (const Message& m : messages) {
        const std::vector<std::uint8_t> frame = encode_frame(m);
        ASSERT_GE(frame.size(), kHeaderBytes);
        expect_equal(m, decode_frame(frame));
    }
}

TEST(NetProtocol, RandomizedRoundTrips) {
    std::mt19937_64 rng(20260809);
    for (int i = 0; i < 500; ++i) {
        const Message m = random_message(rng);
        expect_equal(m, decode_frame(encode_frame(m)));
    }
}

// ------------------------------------------------------------- malformation

TEST(NetProtocol, EveryTruncationIsATypedError) {
    const Message m = Result{5, 2, 0.5, 99, {1.0, 2.0, 3.0}, {0.25}};
    const std::vector<std::uint8_t> frame = encode_frame(m);
    for (std::size_t len = 0; len < frame.size(); ++len) {
        const std::span<const std::uint8_t> prefix(frame.data(), len);
        try {
            (void)decode_frame(prefix);
            FAIL() << "truncation to " << len << " bytes decoded";
        } catch (const ProtocolError& error) {
            EXPECT_EQ(error.code(), WireError::truncated) << "at " << len;
        }
    }
}

TEST(NetProtocol, TrailingBytesRejected) {
    std::vector<std::uint8_t> frame = encode_frame(Heartbeat{1, 2});
    frame.push_back(0xAB);
    EXPECT_EQ(code_of(frame), WireError::trailing_bytes);
}

TEST(NetProtocol, HeaderFieldCorruptionsHaveSpecificCodes) {
    const std::vector<std::uint8_t> good = encode_frame(Goodbye{9});

    auto corrupt = good;
    corrupt[0] ^= 0xFF; // magic
    EXPECT_EQ(code_of(corrupt), WireError::bad_magic);

    corrupt = good;
    corrupt[4] = static_cast<std::uint8_t>(kProtocolVersion + 1); // version
    EXPECT_EQ(code_of(corrupt), WireError::version_skew);

    corrupt = good;
    corrupt[6] = 0; // type below range
    EXPECT_EQ(code_of(corrupt), WireError::bad_type);
    corrupt[6] = 200; // type above range
    EXPECT_EQ(code_of(corrupt), WireError::bad_type);

    corrupt = good;
    corrupt[11] = 0xFF; // length beyond kMaxPayload (0xFF000000 > 1<<24)
    EXPECT_EQ(code_of(corrupt), WireError::oversize);
}

TEST(NetProtocol, PayloadLengthFieldLiesAreTypedErrors) {
    // Understate the payload length: the declared frame ends early, so
    // the remainder reads as trailing bytes of this frame.
    std::vector<std::uint8_t> frame = encode_frame(Heartbeat{1, 2});
    frame[8] = static_cast<std::uint8_t>(frame[8] - 1);
    EXPECT_EQ(code_of(frame), WireError::trailing_bytes);

    // Overstate it: the buffer is shorter than declared.
    frame = encode_frame(Heartbeat{1, 2});
    frame[8] = static_cast<std::uint8_t>(frame[8] + 1);
    EXPECT_EQ(code_of(frame), WireError::truncated);
}

TEST(NetProtocol, OversizeInnerFieldsRejected) {
    // A string length field claiming more than kMaxString inside an
    // otherwise plausible payload must be bad_payload, not an allocation.
    std::vector<std::uint8_t> frame =
        encode_frame(Hello{1, 2, 3, 4, 5, "abc", "d"});
    // The problem-string length field sits 24 bytes into the payload
    // (u32 + u64 + 3 * u32); set it to kMaxString + 1.
    const std::size_t at = kHeaderBytes + 24;
    const std::uint32_t evil = kMaxString + 1;
    for (int i = 0; i < 4; ++i)
        frame[at + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(evil >> (8 * i));
    EXPECT_EQ(code_of(frame), WireError::bad_payload);
}

TEST(NetProtocol, SingleByteCorruptionSweepNeverEscapesTypedErrors) {
    // Flip every byte of every message type (all 256 - 1 alternatives
    // would be slow; one flip per position suffices for coverage). The
    // decode must either succeed (the flip landed in a value byte) or
    // throw ProtocolError — anything else (crash, UB, std::bad_alloc from
    // a huge length) fails the suite.
    std::mt19937_64 rng(7);
    const Message messages[] = {
        Hello{1, 2, 3, 4, 5, "zdt1", "w"},
        HelloAck{true, 1, 250, ""},
        Task{1, {1.0, 2.0}},
        Result{1, 1, 0.5, 10, {1.0}, {}},
        Heartbeat{1, 2},
        Goodbye{1},
        Shutdown{},
    };
    std::uniform_int_distribution<int> bit(0, 7);
    for (const Message& m : messages) {
        const std::vector<std::uint8_t> good = encode_frame(m);
        for (std::size_t i = 0; i < good.size(); ++i) {
            std::vector<std::uint8_t> frame = good;
            frame[i] ^= static_cast<std::uint8_t>(1u << bit(rng));
            try {
                (void)decode_frame(frame);
            } catch (const ProtocolError&) {
                // typed rejection: fine
            }
        }
    }
}

TEST(NetProtocol, RandomGarbageNeverEscapesTypedErrors) {
    std::mt19937_64 rng(99);
    std::uniform_int_distribution<int> byte(0, 255);
    std::uniform_int_distribution<std::size_t> len(0, 256);
    for (int i = 0; i < 2000; ++i) {
        std::vector<std::uint8_t> garbage(len(rng));
        for (auto& b : garbage) b = static_cast<std::uint8_t>(byte(rng));
        try {
            (void)decode_frame(garbage);
        } catch (const ProtocolError&) {
        }
    }
}

// -------------------------------------------------------------- FrameReader

TEST(NetFrameReader, ReassemblesAcrossArbitrarySplits) {
    std::mt19937_64 rng(20260810);
    for (int round = 0; round < 50; ++round) {
        std::vector<Message> sent;
        std::vector<std::uint8_t> stream;
        const int count = 1 + static_cast<int>(rng() % 8);
        for (int i = 0; i < count; ++i) {
            sent.push_back(random_message(rng));
            const auto frame = encode_frame(sent.back());
            stream.insert(stream.end(), frame.begin(), frame.end());
        }

        FrameReader reader;
        std::vector<Message> got;
        std::size_t at = 0;
        std::uniform_int_distribution<std::size_t> chunk(1, 13);
        while (at < stream.size()) {
            const std::size_t n = std::min(chunk(rng), stream.size() - at);
            reader.feed({stream.data() + at, n});
            at += n;
            while (auto m = reader.next()) got.push_back(std::move(*m));
        }
        ASSERT_EQ(got.size(), sent.size());
        for (std::size_t i = 0; i < sent.size(); ++i)
            expect_equal(sent[i], got[i]);
        EXPECT_EQ(reader.pending(), 0u);
    }
}

TEST(NetFrameReader, ByteAtATimeDelivery) {
    const Message m = Task{42, {1.0, -0.0, 3.5}};
    const std::vector<std::uint8_t> frame = encode_frame(m);
    FrameReader reader;
    for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
        reader.feed({frame.data() + i, 1});
        EXPECT_FALSE(reader.next().has_value()) << "completed early at " << i;
    }
    reader.feed({frame.data() + frame.size() - 1, 1});
    const auto got = reader.next();
    ASSERT_TRUE(got.has_value());
    expect_equal(m, *got);
    EXPECT_EQ(reader.pending(), 0u);
}

TEST(NetFrameReader, ShortStreamIsWaitNotError) {
    FrameReader reader;
    const std::vector<std::uint8_t> frame = encode_frame(Heartbeat{1, 5});
    reader.feed({frame.data(), 5}); // less than a header
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_EQ(reader.pending(), 5u); // peer-died-mid-frame diagnostic
}

TEST(NetFrameReader, MalformedStreamThrowsAtFirstCompleteHeader) {
    FrameReader reader;
    std::vector<std::uint8_t> frame = encode_frame(Heartbeat{1, 5});
    frame[1] ^= 0x40; // corrupt magic
    reader.feed(frame);
    EXPECT_THROW((void)reader.next(), ProtocolError);
}

TEST(NetFrameReader, LongLivedStreamCompactsAndSurvives) {
    // Push enough traffic through one reader to cross the compaction
    // threshold several times; every message must still come out intact.
    std::mt19937_64 rng(5);
    FrameReader reader;
    std::size_t delivered = 0;
    for (int i = 0; i < 2000; ++i) {
        const Message m = random_message(rng);
        const auto frame = encode_frame(m);
        reader.feed(frame);
        while (auto got = reader.next()) {
            ++delivered;
            (void)*got;
        }
    }
    EXPECT_EQ(delivered, 2000u);
    EXPECT_EQ(reader.pending(), 0u);
}

} // namespace
