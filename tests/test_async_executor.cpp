#include "parallel/async_executor.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "metrics/hypervolume.hpp"
#include "models/analytical.hpp"
#include "models/simulation_model.hpp"
#include "problems/problem.hpp"
#include "problems/reference_set.hpp"

namespace {

using namespace borg;
using namespace borg::parallel;
using borg::stats::Distribution;
using borg::stats::make_delay;

struct Fixture {
    std::unique_ptr<problems::Problem> problem =
        problems::make_problem("zdt1");
    std::unique_ptr<Distribution> tf = make_delay(0.01, 0.1);
    std::unique_ptr<Distribution> tc = make_delay(0.000006, 0.0);
    std::unique_ptr<Distribution> ta = make_delay(0.000029, 0.3);

    moea::BorgParams params() const {
        return moea::BorgParams::for_problem(*problem, 0.01);
    }
    VirtualClusterConfig cluster(std::uint64_t p,
                                 std::uint64_t seed = 1) const {
        return VirtualClusterConfig{p, tf.get(), tc.get(), ta.get(), seed};
    }
};

TEST(AsyncExecutor, CompletesRequestedEvaluations) {
    Fixture f;
    moea::BorgMoea algo(*f.problem, f.params(), 1);
    AsyncMasterSlaveExecutor exec(algo, *f.problem, f.cluster(8));
    const auto result = exec.run(2000);
    EXPECT_EQ(result.evaluations, 2000u);
    EXPECT_EQ(algo.evaluations(), 2000u);
    EXPECT_GT(result.elapsed, 0.0);
}

TEST(AsyncExecutor, ElapsedMatchesAnalyticalBelowSaturation) {
    Fixture f;
    moea::BorgMoea algo(*f.problem, f.params(), 2);
    AsyncMasterSlaveExecutor exec(algo, *f.problem, f.cluster(16));
    const auto result = exec.run(5000);
    const models::TimingCosts costs{0.01, 0.000006, 0.000029};
    const double predicted = models::async_parallel_time(5000, 16, costs);
    EXPECT_NEAR(result.elapsed, predicted, 0.03 * predicted);
}

TEST(AsyncExecutor, AgreesWithTimingOnlySimulationModel) {
    // The real-algorithm executor and the distribution-only model must
    // produce closely matching elapsed times for the same configuration —
    // the property Table II's "Simulation Model" column relies on.
    Fixture f;
    moea::BorgMoea algo(*f.problem, f.params(), 3);
    AsyncMasterSlaveExecutor exec(algo, *f.problem, f.cluster(64, 7));
    const auto run = exec.run(20000);

    models::SimulationConfig sim_cfg{20000, 64, f.tf.get(), f.tc.get(),
                                     f.ta.get(), 7};
    const auto sim = models::simulate_async(sim_cfg);
    EXPECT_NEAR(run.elapsed, sim.elapsed, 0.02 * sim.elapsed);
}

TEST(AsyncExecutor, SearchProgressesUnderParallelism) {
    Fixture f;
    moea::BorgMoea algo(*f.problem, f.params(), 4);
    AsyncMasterSlaveExecutor exec(algo, *f.problem, f.cluster(32));
    exec.run(20000);
    const auto refset = problems::reference_set_for("zdt1");
    const double hv = metrics::normalized_hypervolume(
        algo.archive().objective_vectors(), refset);
    EXPECT_GT(hv, 0.9);
}

TEST(AsyncExecutor, DeterministicGivenSeeds) {
    Fixture f;
    moea::BorgMoea a(*f.problem, f.params(), 42);
    moea::BorgMoea b(*f.problem, f.params(), 42);
    const auto ra =
        AsyncMasterSlaveExecutor(a, *f.problem, f.cluster(16, 5)).run(3000);
    const auto rb =
        AsyncMasterSlaveExecutor(b, *f.problem, f.cluster(16, 5)).run(3000);
    EXPECT_DOUBLE_EQ(ra.elapsed, rb.elapsed);
    ASSERT_EQ(a.archive().size(), b.archive().size());
    for (std::size_t i = 0; i < a.archive().size(); ++i)
        EXPECT_EQ(a.archive()[i].objectives, b.archive()[i].objectives);
}

TEST(AsyncExecutor, MoreWorkersSaturateMaster) {
    Fixture f;
    std::unique_ptr<Distribution> tiny_tf = make_delay(0.0005, 0.1);
    moea::BorgMoea algo(*f.problem, f.params(), 6);
    VirtualClusterConfig cfg{256, tiny_tf.get(), f.tc.get(), f.ta.get(), 6};
    AsyncMasterSlaveExecutor exec(algo, *f.problem, cfg);
    const auto result = exec.run(10000);
    EXPECT_GT(result.master_busy_fraction, 0.9);
    EXPECT_GT(result.contention_rate, 0.9);
    EXPECT_GT(result.mean_queue_wait, 0.0);
}

TEST(AsyncExecutor, RecordsTrajectory) {
    Fixture f;
    moea::BorgMoea algo(*f.problem, f.params(), 7);
    const auto refset = problems::reference_set_for("zdt1");
    metrics::HypervolumeNormalizer normalizer(refset);
    TrajectoryRecorder recorder(normalizer, 1000);
    AsyncMasterSlaveExecutor exec(algo, *f.problem, f.cluster(16));
    const auto result = exec.run(10000, {.recorder = &recorder});

    ASSERT_GE(recorder.points().size(), 10u);
    double last_time = 0.0;
    for (const auto& point : recorder.points()) {
        EXPECT_GE(point.time, last_time);
        last_time = point.time;
        EXPECT_GE(point.hypervolume, 0.0);
        EXPECT_LE(point.hypervolume, 1.0);
    }
    EXPECT_NEAR(recorder.points().back().time, result.elapsed, 1e-9);
    EXPECT_GT(recorder.final_hypervolume(), 0.5);
}

TEST(AsyncExecutor, MeasuredTaModeProducesPositiveSamples) {
    Fixture f;
    moea::BorgMoea algo(*f.problem, f.params(), 8);
    VirtualClusterConfig cfg{8, f.tf.get(), f.tc.get(), nullptr, 8};
    AsyncMasterSlaveExecutor exec(algo, *f.problem, cfg);
    const auto result = exec.run(2000);
    EXPECT_EQ(result.ta_applied.count, 2000u);
    EXPECT_GT(result.ta_applied.mean, 0.0);
    EXPECT_LT(result.ta_applied.mean, 0.01); // master step is microseconds
}

TEST(AsyncExecutor, TfSummaryMatchesDistribution) {
    Fixture f;
    moea::BorgMoea algo(*f.problem, f.params(), 9);
    AsyncMasterSlaveExecutor exec(algo, *f.problem, f.cluster(16, 11));
    const auto result = exec.run(10000);
    EXPECT_NEAR(result.tf_applied.mean, 0.01, 0.0005);
    EXPECT_NEAR(result.tf_applied.stddev, 0.001, 0.0002);
}

TEST(AsyncExecutor, RejectsReuseAndBadInput) {
    Fixture f;
    moea::BorgMoea algo(*f.problem, f.params(), 10);
    AsyncMasterSlaveExecutor exec(algo, *f.problem, f.cluster(4));
    exec.run(100);
    EXPECT_THROW(exec.run(100), std::logic_error);
    moea::BorgMoea fresh(*f.problem, f.params(), 11);
    AsyncMasterSlaveExecutor exec2(fresh, *f.problem, f.cluster(4));
    EXPECT_THROW(exec2.run(0), std::invalid_argument);
}

TEST(AsyncExecutor, ValidatesClusterConfig) {
    Fixture f;
    moea::BorgMoea algo(*f.problem, f.params(), 12);
    VirtualClusterConfig bad{1, f.tf.get(), f.tc.get(), f.ta.get(), 1};
    EXPECT_THROW(AsyncMasterSlaveExecutor(algo, *f.problem, bad),
                 std::invalid_argument);
    VirtualClusterConfig no_tf{4, nullptr, f.tc.get(), f.ta.get(), 1};
    EXPECT_THROW(AsyncMasterSlaveExecutor(algo, *f.problem, no_tf),
                 std::invalid_argument);
}

// ---------------------------------------------------------------- serial

TEST(SerialVirtual, ElapsedIsSumOfCosts) {
    Fixture f;
    moea::BorgMoea algo(*f.problem, f.params(), 13);
    const auto result =
        run_serial_virtual(algo, *f.problem, f.cluster(2, 3), 5000);
    // T_S = N (T_F + T_A) with sampled values.
    const double expected = 5000 * (0.01 + 0.000029);
    EXPECT_NEAR(result.elapsed, expected, 0.01 * expected);
    EXPECT_EQ(result.evaluations, 5000u);
}

TEST(SerialVirtual, SpeedupAgainstParallelMatchesTheory) {
    Fixture f;
    moea::BorgMoea serial_algo(*f.problem, f.params(), 14);
    const auto ts =
        run_serial_virtual(serial_algo, *f.problem, f.cluster(2, 4), 20000);

    moea::BorgMoea parallel_algo(*f.problem, f.params(), 14);
    AsyncMasterSlaveExecutor exec(parallel_algo, *f.problem, f.cluster(16, 4));
    const auto tp = exec.run(20000);

    const double speedup = ts.elapsed / tp.elapsed;
    EXPECT_NEAR(speedup, 15.0, 0.8); // P - 1 below saturation
}

TEST(SerialVirtual, RecordsTrajectory) {
    Fixture f;
    moea::BorgMoea algo(*f.problem, f.params(), 15);
    const auto refset = problems::reference_set_for("zdt1");
    metrics::HypervolumeNormalizer normalizer(refset);
    TrajectoryRecorder recorder(normalizer, 2000);
    run_serial_virtual(algo, *f.problem, f.cluster(2, 5), 10000,
                       {.recorder = &recorder});
    EXPECT_GE(recorder.points().size(), 5u);
    // Hypervolume should improve over the run on ZDT1.
    EXPECT_GT(recorder.points().back().hypervolume,
              recorder.points().front().hypervolume);
}

} // namespace
