#include "stats/distribution.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "stats/summary.hpp"

namespace {

using namespace borg::stats;
using borg::util::Rng;

/// Checks that sampled mean and variance match the distribution's declared
/// moments to within sampling tolerance.
void check_moments(const Distribution& d, std::uint64_t seed,
                   int n = 200000) {
    Rng rng(seed);
    Accumulator acc;
    for (int i = 0; i < n; ++i) acc.add(d.sample(rng));
    const double tol_mean =
        5.0 * d.stddev() / std::sqrt(static_cast<double>(n)) + 1e-12;
    EXPECT_NEAR(acc.mean(), d.mean(), tol_mean) << d.describe();
    if (d.variance() > 0.0)
        EXPECT_NEAR(acc.variance(), d.variance(), 0.05 * d.variance())
            << d.describe();
}

TEST(Constant, SamplesExactValue) {
    ConstantDistribution d(0.01);
    Rng rng(1);
    for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(d.sample(rng), 0.01);
    EXPECT_DOUBLE_EQ(d.mean(), 0.01);
    EXPECT_DOUBLE_EQ(d.variance(), 0.0);
    EXPECT_DOUBLE_EQ(d.cv(), 0.0);
}

TEST(Constant, LogPdfPointMass) {
    ConstantDistribution d(2.0);
    EXPECT_DOUBLE_EQ(d.log_pdf(2.0), 0.0);
    EXPECT_TRUE(std::isinf(d.log_pdf(2.1)));
}

TEST(Uniform, Moments) { check_moments(UniformDistribution(1.0, 3.0), 10); }

TEST(Uniform, SamplesWithinSupport) {
    UniformDistribution d(-1.0, 1.0);
    Rng rng(2);
    for (int i = 0; i < 10000; ++i) {
        const double x = d.sample(rng);
        ASSERT_GE(x, -1.0);
        ASSERT_LT(x, 1.0);
    }
}

TEST(Uniform, RejectsDegenerate) {
    EXPECT_THROW(UniformDistribution(1.0, 1.0), std::invalid_argument);
}

TEST(Exponential, Moments) { check_moments(ExponentialDistribution(4.0), 11); }

TEST(Exponential, LogPdfMatchesFormula) {
    ExponentialDistribution d(2.0);
    EXPECT_NEAR(d.log_pdf(0.5), std::log(2.0) - 1.0, 1e-12);
    EXPECT_TRUE(std::isinf(d.log_pdf(-0.1)));
}

TEST(Normal, Moments) { check_moments(NormalDistribution(5.0, 2.0), 12); }

TEST(Normal, LogPdfPeakAtMean) {
    NormalDistribution d(1.0, 0.5);
    EXPECT_GT(d.log_pdf(1.0), d.log_pdf(1.4));
    EXPECT_GT(d.log_pdf(1.0), d.log_pdf(0.6));
}

TEST(TruncatedNormal, Moments) {
    check_moments(TruncatedNormalDistribution(0.01, 0.001, 0.0), 13);
}

TEST(TruncatedNormal, NeverBelowBound) {
    // Heavy truncation: half the parent mass is below the bound.
    TruncatedNormalDistribution d(0.0, 1.0, 0.0);
    Rng rng(14);
    for (int i = 0; i < 20000; ++i) ASSERT_GE(d.sample(rng), 0.0);
    // Mean of half-normal is sqrt(2/pi).
    EXPECT_NEAR(d.mean(), std::sqrt(2.0 / M_PI), 1e-9);
}

TEST(TruncatedNormal, MomentsUnderHeavyTruncation) {
    check_moments(TruncatedNormalDistribution(0.0, 1.0, 0.0), 15);
}

TEST(LogNormal, Moments) { check_moments(LogNormalDistribution(-2.0, 0.5), 16); }

TEST(LogNormal, PositiveSupport) {
    LogNormalDistribution d(0.0, 1.0);
    Rng rng(17);
    for (int i = 0; i < 10000; ++i) ASSERT_GT(d.sample(rng), 0.0);
    EXPECT_TRUE(std::isinf(d.log_pdf(0.0)));
}

class GammaMoments : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(GammaMoments, SampleMatchesDeclared) {
    const auto [shape, scale] = GetParam();
    check_moments(GammaDistribution(shape, scale), 18);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GammaMoments,
    ::testing::Values(std::pair{0.5, 1.0}, std::pair{1.0, 2.0},
                      std::pair{3.0, 0.01}, std::pair{20.0, 0.5}));

TEST(Gamma, RejectsBadParameters) {
    EXPECT_THROW(GammaDistribution(0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(GammaDistribution(1.0, -1.0), std::invalid_argument);
}

class WeibullMoments
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(WeibullMoments, SampleMatchesDeclared) {
    const auto [shape, scale] = GetParam();
    check_moments(WeibullDistribution(shape, scale), 19);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WeibullMoments,
    ::testing::Values(std::pair{0.8, 1.0}, std::pair{1.0, 0.01},
                      std::pair{2.5, 3.0}));

TEST(Weibull, ShapeOneIsExponential) {
    WeibullDistribution w(1.0, 2.0);
    ExponentialDistribution e(0.5);
    EXPECT_NEAR(w.mean(), e.mean(), 1e-12);
    EXPECT_NEAR(w.log_pdf(1.0), e.log_pdf(1.0), 1e-12);
}

TEST(MakeDelay, ZeroCvGivesConstant) {
    const auto d = make_delay(0.01, 0.0);
    EXPECT_DOUBLE_EQ(d->mean(), 0.01);
    EXPECT_DOUBLE_EQ(d->variance(), 0.0);
}

TEST(MakeDelay, PaperSettingHasRequestedCv) {
    // The paper's controlled delays use cv = 0.1; truncation at zero is
    // negligible for that regime, so mean and cv must match closely.
    const auto d = make_delay(0.01, 0.1);
    EXPECT_NEAR(d->mean(), 0.01, 1e-6);
    EXPECT_NEAR(d->cv(), 0.1, 1e-3);
}

TEST(MakeDelay, SamplesNeverNegative) {
    const auto d = make_delay(0.001, 0.5);
    Rng rng(20);
    for (int i = 0; i < 50000; ++i) ASSERT_GE(d->sample(rng), 0.0);
}

TEST(Clone, PreservesBehaviour) {
    GammaDistribution original(3.0, 0.25);
    const auto copy = original.clone();
    EXPECT_DOUBLE_EQ(copy->mean(), original.mean());
    EXPECT_DOUBLE_EQ(copy->log_pdf(1.0), original.log_pdf(1.0));
    EXPECT_EQ(copy->describe(), original.describe());
}

TEST(NormalHelpers, CdfKnownValues) {
    EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
    EXPECT_NEAR(normal_pdf(0.0), 0.3989422804, 1e-9);
}

} // namespace
