#include "moea/borg.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "metrics/hypervolume.hpp"
#include "problems/problem.hpp"
#include "problems/reference_set.hpp"

namespace {

using namespace borg;
using namespace borg::moea;

BorgParams quick_params(const problems::Problem& problem,
                        double epsilon = 0.01) {
    BorgParams params = BorgParams::for_problem(problem, epsilon);
    params.restart.window = 500;
    return params;
}

TEST(Borg, InitializationIssuesRandomSolutions) {
    const auto problem = problems::make_problem("zdt1");
    BorgMoea algo(*problem, quick_params(*problem), 1);
    for (int i = 0; i < 100; ++i) {
        const Solution s = algo.next_offspring();
        EXPECT_EQ(s.operator_index, kNoOperator);
        EXPECT_TRUE(problem->within_bounds(s.variables));
        EXPECT_FALSE(s.evaluated);
    }
    EXPECT_EQ(algo.issued(), 100u);
}

TEST(Borg, ReceiveGrowsPopulationAndArchive) {
    const auto problem = problems::make_problem("zdt1");
    BorgMoea algo(*problem, quick_params(*problem), 2);
    for (int i = 0; i < 50; ++i) {
        Solution s = algo.next_offspring();
        evaluate(*problem, s);
        algo.receive(std::move(s));
    }
    EXPECT_EQ(algo.evaluations(), 50u);
    EXPECT_EQ(algo.population().size(), 50u);
    EXPECT_GE(algo.archive().size(), 1u);
}

TEST(Borg, OperatorOffspringAfterInitialization) {
    const auto problem = problems::make_problem("zdt1");
    BorgMoea algo(*problem, quick_params(*problem), 3);
    run_serial(algo, *problem, 150);
    // Beyond the initial population, offspring carry operator credit.
    const Solution s =
        const_cast<BorgMoea&>(algo).next_offspring();
    EXPECT_GE(s.operator_index, 0);
    EXPECT_LT(s.operator_index, static_cast<int>(algo.num_operators()));
}

TEST(Borg, ManyOffspringBeforeAnyResultIsSafe) {
    // Asynchronous start with more workers than the initial population:
    // the master must keep producing work without any results back.
    const auto problem = problems::make_problem("zdt1");
    BorgMoea algo(*problem, quick_params(*problem), 4);
    std::vector<Solution> inflight;
    for (int i = 0; i < 500; ++i) inflight.push_back(algo.next_offspring());
    EXPECT_EQ(algo.issued(), 500u);
    for (Solution& s : inflight) {
        evaluate(*problem, s);
        algo.receive(std::move(s));
    }
    EXPECT_EQ(algo.evaluations(), 500u);
}

TEST(Borg, RejectsUnevaluatedResult) {
    const auto problem = problems::make_problem("zdt1");
    BorgMoea algo(*problem, quick_params(*problem), 5);
    Solution s = algo.next_offspring();
    EXPECT_THROW(algo.receive(std::move(s)), std::invalid_argument);
}

TEST(Borg, OperatorUsageAccumulates) {
    const auto problem = problems::make_problem("zdt1");
    BorgMoea algo(*problem, quick_params(*problem), 6);
    run_serial(algo, *problem, 2000);
    std::uint64_t used = 0;
    for (const auto count : algo.operator_usage()) used += count;
    EXPECT_GT(used, 1500u); // everything after initialization + mutants
    EXPECT_EQ(algo.operator_names().size(), algo.num_operators());
}

TEST(Borg, AdaptationShiftsProbabilities) {
    const auto problem = problems::make_problem("zdt1");
    BorgMoea algo(*problem, quick_params(*problem), 7);
    run_serial(algo, *problem, 5000);
    const auto& probs = algo.operator_probabilities();
    double lo = 1.0, hi = 0.0;
    for (const double p : probs) {
        lo = std::min(lo, p);
        hi = std::max(hi, p);
    }
    // After 5000 evaluations on ZDT1 the ensemble cannot still be uniform.
    EXPECT_GT(hi - lo, 0.02);
    double total = 0.0;
    for (const double p : probs) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Borg, RestartsFireOnHardProblem) {
    const auto problem = problems::make_problem("zdt1");
    BorgParams params = quick_params(*problem);
    params.restart.window = 200;
    BorgMoea algo(*problem, params, 8);
    run_serial(algo, *problem, 20000);
    EXPECT_GE(algo.restarts(), 1u);
}

TEST(Borg, DisableRestartsHonored) {
    const auto problem = problems::make_problem("zdt1");
    BorgParams params = quick_params(*problem);
    params.restart.window = 200;
    params.enable_restarts = false;
    BorgMoea algo(*problem, params, 9);
    run_serial(algo, *problem, 10000);
    EXPECT_EQ(algo.restarts(), 0u);
}

TEST(Borg, ForcedOperatorOnlyUsesThatOperator) {
    const auto problem = problems::make_problem("zdt1");
    BorgParams params = quick_params(*problem);
    params.forced_operator = 0; // SBX+PM
    BorgMoea algo(*problem, params, 10);
    run_serial(algo, *problem, 3000);
    const auto& usage = algo.operator_usage();
    for (std::size_t i = 1; i < usage.size(); ++i) EXPECT_EQ(usage[i], 0u);
    EXPECT_GT(usage[0], 0u);
}

TEST(Borg, DeterministicGivenSeed) {
    const auto problem = problems::make_problem("zdt1");
    BorgMoea a(*problem, quick_params(*problem), 42);
    BorgMoea b(*problem, quick_params(*problem), 42);
    run_serial(a, *problem, 3000);
    run_serial(b, *problem, 3000);
    ASSERT_EQ(a.archive().size(), b.archive().size());
    for (std::size_t i = 0; i < a.archive().size(); ++i)
        EXPECT_EQ(a.archive()[i].objectives, b.archive()[i].objectives);
    EXPECT_EQ(a.restarts(), b.restarts());
}

TEST(Borg, SeedsChangeTheSearchPath) {
    const auto problem = problems::make_problem("zdt1");
    BorgMoea a(*problem, quick_params(*problem), 1);
    BorgMoea b(*problem, quick_params(*problem), 2);
    run_serial(a, *problem, 2000);
    run_serial(b, *problem, 2000);
    bool differs = a.archive().size() != b.archive().size();
    if (!differs)
        for (std::size_t i = 0; i < a.archive().size() && !differs; ++i)
            differs = a.archive()[i].objectives != b.archive()[i].objectives;
    EXPECT_TRUE(differs);
}

TEST(Borg, ConvergesOnZdt1) {
    const auto problem = problems::make_problem("zdt1");
    BorgMoea algo(*problem, quick_params(*problem), 11);
    run_serial(algo, *problem, 20000);
    const auto refset = problems::reference_set_for("zdt1");
    const double hv = metrics::normalized_hypervolume(
        algo.archive().objective_vectors(), refset);
    EXPECT_GT(hv, 0.95);
}

TEST(Borg, ConvergesOnConcaveZdt2) {
    const auto problem = problems::make_problem("zdt2");
    BorgMoea algo(*problem, quick_params(*problem), 12);
    run_serial(algo, *problem, 20000);
    const auto refset = problems::reference_set_for("zdt2");
    const double hv = metrics::normalized_hypervolume(
        algo.archive().objective_vectors(), refset);
    EXPECT_GT(hv, 0.9);
}

TEST(Borg, ArchiveContainsOnlyFeasiblePoints) {
    const auto problem = problems::make_problem("zdt1");
    BorgMoea algo(*problem, quick_params(*problem), 13);
    run_serial(algo, *problem, 5000);
    for (std::size_t i = 0; i < algo.archive().size(); ++i)
        EXPECT_TRUE(problem->within_bounds(algo.archive()[i].variables));
}

TEST(Borg, RejectsBadConfiguration) {
    const auto problem = problems::make_problem("zdt1");
    BorgParams params; // epsilons missing
    EXPECT_THROW(BorgMoea(*problem, params, 1), std::invalid_argument);

    params = BorgParams::for_problem(*problem, 0.01);
    params.initial_population_size = 0;
    EXPECT_THROW(BorgMoea(*problem, params, 1), std::invalid_argument);

    params = BorgParams::for_problem(*problem, 0.01);
    params.forced_operator = 99;
    EXPECT_THROW(BorgMoea(*problem, params, 1), std::invalid_argument);
}

TEST(Borg, RestartMutantsFlowThroughPipeline) {
    const auto problem = problems::make_problem("zdt1");
    BorgParams params = quick_params(*problem);
    params.restart.window = 100;
    BorgMoea algo(*problem, params, 14);
    // Drive until a restart leaves mutants pending, then confirm the next
    // offspring are injection mutants without operator credit.
    std::uint64_t i = 0;
    while (algo.pending_restart_mutants() == 0 && i < 50000) {
        Solution s = algo.next_offspring();
        evaluate(*problem, s);
        algo.receive(std::move(s));
        ++i;
    }
    ASSERT_GT(algo.pending_restart_mutants(), 0u)
        << "no restart fired within 50k evaluations";
    const Solution mutant = algo.next_offspring();
    EXPECT_EQ(mutant.operator_index, kNoOperator);
}

} // namespace
