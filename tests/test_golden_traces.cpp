/// Golden-trace schedule-equivalence suite.
///
/// Each scenario runs a virtual-time executor (or the statistics-only
/// simulation model) under a fixed seed with *configured* T_A — never the
/// measured mode, whose host-clock samples are nondeterministic — and
/// renders two artifacts: the full JSONL event trace and a fixed-format
/// dump of the reported result fields at 17 significant digits. Both are
/// compared byte-for-byte against fixtures under tests/golden/, which were
/// captured from the pre-ClusterEngine executors. Any change to RNG draw
/// order, event emission order, or result arithmetic in the engine or a
/// master policy fails these tests before it can silently shift a paper
/// figure.
///
/// To re-capture fixtures after an *intentional* schedule change, run the
/// suite once with BORG_GOLDEN_CAPTURE=1 in the environment and commit the
/// rewritten files together with the change that justifies them.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "moea/borg.hpp"
#include "moea/nsga2.hpp"
#include "models/simulation_model.hpp"
#include "obs/event_trace.hpp"
#include "parallel/async_executor.hpp"
#include "parallel/multi_master.hpp"
#include "parallel/sync_executor.hpp"
#include "parallel/virtual_cluster.hpp"
#include "problems/problem.hpp"

namespace {

using namespace borg;
using namespace borg::parallel;
using borg::stats::Distribution;
using borg::stats::make_delay;

constexpr double kInf = std::numeric_limits<double>::infinity();

// ------------------------------------------------------------- formatting

std::string num(double x) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", x);
    return buf;
}

void kv(std::string& out, const char* key, double value) {
    out += key;
    out += '=';
    out += num(value);
    out += '\n';
}

void kv(std::string& out, const char* key, std::uint64_t value) {
    out += key;
    out += '=';
    out += std::to_string(value);
    out += '\n';
}

void kv(std::string& out, const char* key, bool value) {
    out += key;
    out += value ? "=true\n" : "=false\n";
}

void dump_summary(std::string& out, const char* name,
                  const stats::Summary& s) {
    std::string prefix = name;
    kv(out, (prefix + ".count").c_str(),
       static_cast<std::uint64_t>(s.count));
    kv(out, (prefix + ".mean").c_str(), s.mean);
    kv(out, (prefix + ".stddev").c_str(), s.stddev);
    kv(out, (prefix + ".min").c_str(), s.min);
    kv(out, (prefix + ".max").c_str(), s.max);
}

std::string dump_result(const VirtualRunResult& r) {
    std::string out;
    kv(out, "elapsed", r.elapsed);
    kv(out, "evaluations", r.evaluations);
    kv(out, "completed_target", r.completed_target);
    kv(out, "failed_workers", static_cast<std::uint64_t>(r.failed_workers));
    kv(out, "master_busy_fraction", r.master_busy_fraction);
    kv(out, "mean_queue_wait", r.mean_queue_wait);
    kv(out, "contention_rate", r.contention_rate);
    dump_summary(out, "ta_applied", r.ta_applied);
    dump_summary(out, "tf_applied", r.tf_applied);
    return out;
}

// ------------------------------------------------------- fixture plumbing

std::string fixture_path(const std::string& name) {
    return std::string(BORG_GOLDEN_DIR) + "/" + name;
}

bool capture_mode() {
    const char* env = std::getenv("BORG_GOLDEN_CAPTURE");
    return env != nullptr && *env != '\0' && std::string(env) != "0";
}

/// Compares \p actual against the named fixture (or rewrites the fixture
/// in capture mode). On mismatch, reports the first differing line with a
/// little context instead of dumping two multi-hundred-KB strings.
void check_golden(const std::string& name, const std::string& actual) {
    const std::string path = fixture_path(name);
    if (capture_mode()) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write fixture " << path;
        out << actual;
        return;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing fixture " << path
        << " (run once with BORG_GOLDEN_CAPTURE=1 to create it)";
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string expected = buf.str();
    if (actual == expected) return;

    std::istringstream a(actual);
    std::istringstream e(expected);
    std::string la;
    std::string le;
    std::size_t line = 0;
    while (true) {
        ++line;
        const bool ga = static_cast<bool>(std::getline(a, la));
        const bool ge = static_cast<bool>(std::getline(e, le));
        if (!ga && !ge) break;
        if (!ga || !ge || la != le) {
            FAIL() << name << ": first divergence at line " << line
                   << "\n  expected: " << (ge ? le : "<eof>")
                   << "\n  actual:   " << (ga ? la : "<eof>");
        }
    }
    FAIL() << name << ": sizes differ (actual " << actual.size()
           << " vs fixture " << expected.size() << " bytes)";
}

// ------------------------------------------------------------- scenarios

struct Streams {
    std::unique_ptr<Distribution> tf = make_delay(0.01, 0.1);
    std::unique_ptr<Distribution> tc = make_delay(0.000006, 0.0);
    std::unique_ptr<Distribution> ta = make_delay(0.000029, 0.2);
};

TEST(GoldenTraces, AsyncP9) {
    const auto problem = problems::make_problem("zdt1");
    Streams s;
    moea::BorgMoea algo(*problem,
                        moea::BorgParams::for_problem(*problem, 0.01), 21);
    VirtualClusterConfig cfg{9, s.tf.get(), s.tc.get(), s.ta.get(), 22};
    AsyncMasterSlaveExecutor exec(algo, *problem, cfg);
    obs::EventTrace trace;
    const auto result = exec.run(600, {.trace = &trace});
    check_golden("async_p9.trace.jsonl", trace.to_jsonl());
    check_golden("async_p9.result.txt", dump_result(result));
}

TEST(GoldenTraces, AsyncHeterogeneousWithFailures) {
    const auto problem = problems::make_problem("zdt1");
    Streams s;
    moea::BorgMoea algo(*problem,
                        moea::BorgParams::for_problem(*problem, 0.01), 41);
    VirtualClusterConfig cfg{6, s.tf.get(), s.tc.get(), s.ta.get(), 42};
    cfg.worker_speed = {1.0, 2.0, 0.5, 1.0, 1.5};
    cfg.worker_failure_at = {kInf, 0.2, kInf, kInf, 0.25};
    AsyncMasterSlaveExecutor exec(algo, *problem, cfg);
    obs::EventTrace trace;
    const auto result = exec.run(500, {.trace = &trace});
    EXPECT_EQ(result.failed_workers, 2u);
    EXPECT_TRUE(result.completed_target);
    check_golden("async_hetero_fail.trace.jsonl", trace.to_jsonl());
    check_golden("async_hetero_fail.result.txt", dump_result(result));
}

TEST(GoldenTraces, SyncP9) {
    const auto problem = problems::make_problem("zdt1");
    Streams s;
    moea::Nsga2 algo(*problem, 20, 31);
    VirtualClusterConfig cfg{9, s.tf.get(), s.tc.get(), s.ta.get(), 32};
    cfg.worker_speed = {1.0, 2.0, 1.0, 0.5, 1.0, 1.0, 1.5, 1.0};
    SyncMasterSlaveExecutor exec(algo, *problem, cfg);
    obs::EventTrace trace;
    const auto result = exec.run(400, {.trace = &trace});
    check_golden("sync_p9.trace.jsonl", trace.to_jsonl());
    check_golden("sync_p9.result.txt", dump_result(result));
}

TEST(GoldenTraces, MultiMasterP12Islands3) {
    const auto problem = problems::make_problem("zdt1");
    Streams s;
    MultiMasterConfig mm;
    mm.cluster = VirtualClusterConfig{12, s.tf.get(), s.tc.get(),
                                      s.ta.get(), 52};
    mm.islands = 3;
    mm.migration_interval = 40;
    MultiMasterExecutor exec(
        *problem, moea::BorgParams::for_problem(*problem, 0.01), mm);
    obs::EventTrace trace;
    const auto result = exec.run(450, {.trace = &trace});

    // Only the pre-engine MultiMasterResult fields: the dump must not
    // change when the struct later grows.
    std::string out;
    kv(out, "elapsed", result.elapsed);
    kv(out, "evaluations", result.evaluations);
    kv(out, "completed_target", result.completed_target);
    kv(out, "migrations", result.migrations);
    for (std::size_t i = 0; i < result.island_evaluations.size(); ++i)
        kv(out, ("island_evaluations." + std::to_string(i)).c_str(),
           result.island_evaluations[i]);
    for (std::size_t i = 0; i < result.island_busy_fraction.size(); ++i)
        kv(out, ("island_busy_fraction." + std::to_string(i)).c_str(),
           result.island_busy_fraction[i]);
    kv(out, "combined_archive_size",
       static_cast<std::uint64_t>(result.combined_archive.size()));

    check_golden("mm_p12_i3.trace.jsonl", trace.to_jsonl());
    check_golden("mm_p12_i3.result.txt", out);
}

TEST(GoldenTraces, SimulationModelCells) {
    Streams s;
    std::string out;
    const auto dump_sim = [&out](const char* name,
                                 const models::SimulationResult& r) {
        std::string prefix = name;
        kv(out, (prefix + ".elapsed").c_str(), r.elapsed);
        kv(out, (prefix + ".evaluations").c_str(), r.evaluations);
        kv(out, (prefix + ".master_busy_fraction").c_str(),
           r.master_busy_fraction);
        kv(out, (prefix + ".mean_queue_wait").c_str(), r.mean_queue_wait);
        kv(out, (prefix + ".contention_rate").c_str(), r.contention_rate);
    };

    models::SimulationConfig cfg;
    cfg.tf = s.tf.get();
    cfg.tc = s.tc.get();
    cfg.ta = s.ta.get();

    cfg.evaluations = 4000;
    cfg.processors = 32;
    cfg.seed = 7;
    dump_sim("async_p32", models::simulate_async(cfg));
    cfg.evaluations = 500;
    cfg.processors = 2;
    cfg.seed = 9;
    dump_sim("async_p2", models::simulate_async(cfg));

    cfg.evaluations = 4000;
    cfg.processors = 32;
    cfg.seed = 11;
    dump_sim("sync_p32", models::simulate_sync(cfg));
    cfg.evaluations = 500;
    cfg.processors = 2;
    cfg.seed = 13;
    dump_sim("sync_p2", models::simulate_sync(cfg));

    check_golden("simulation_model.result.txt", out);
}

// ----------------------------------- heap-vs-calendar schedule equality
//
// The fixtures above were captured from the pre-rebuild binary-heap
// engine, so passing them under the default calendar queue already proves
// old-core/new-core equivalence for the committed seeds. This test states
// the property directly — both pending-event stores must produce
// byte-identical traces and result dumps — across all five master
// policies, without going through files, so it also holds whenever the
// fixtures are legitimately re-captured.

TEST(GoldenTraces, HeapAndCalendarSchedulesAreByteIdentical) {
    using des::QueuePolicy;
    struct Artifacts {
        std::string trace;
        std::string result;
    };

    const auto run_all = [](QueuePolicy queue) {
        std::vector<Artifacts> out;
        const auto problem = problems::make_problem("zdt1");
        Streams s;

        { // AsyncBorgPolicy (homogeneous)
            moea::BorgMoea algo(
                *problem, moea::BorgParams::for_problem(*problem, 0.01), 21);
            VirtualClusterConfig cfg{9, s.tf.get(), s.tc.get(), s.ta.get(),
                                     22};
            cfg.queue = queue;
            AsyncMasterSlaveExecutor exec(algo, *problem, cfg);
            obs::EventTrace trace;
            const auto r = exec.run(300, {.trace = &trace});
            out.push_back({trace.to_jsonl(), dump_result(r)});
        }
        { // AsyncBorgPolicy under heterogeneity + failures
            moea::BorgMoea algo(
                *problem, moea::BorgParams::for_problem(*problem, 0.01), 41);
            VirtualClusterConfig cfg{6, s.tf.get(), s.tc.get(), s.ta.get(),
                                     42};
            cfg.worker_speed = {1.0, 2.0, 0.5, 1.0, 1.5};
            cfg.worker_failure_at = {kInf, 0.2, kInf, kInf, 0.25};
            cfg.queue = queue;
            AsyncMasterSlaveExecutor exec(algo, *problem, cfg);
            obs::EventTrace trace;
            const auto r = exec.run(250, {.trace = &trace});
            out.push_back({trace.to_jsonl(), dump_result(r)});
        }
        { // SyncBorgPolicy
            moea::Nsga2 algo(*problem, 20, 31);
            VirtualClusterConfig cfg{9, s.tf.get(), s.tc.get(), s.ta.get(),
                                     32};
            cfg.queue = queue;
            SyncMasterSlaveExecutor exec(algo, *problem, cfg);
            obs::EventTrace trace;
            const auto r = exec.run(200, {.trace = &trace});
            out.push_back({trace.to_jsonl(), dump_result(r)});
        }
        { // IslandRingPolicy
            MultiMasterConfig mm;
            mm.cluster = VirtualClusterConfig{12, s.tf.get(), s.tc.get(),
                                              s.ta.get(), 52};
            mm.cluster.queue = queue;
            mm.islands = 3;
            mm.migration_interval = 40;
            MultiMasterExecutor exec(
                *problem, moea::BorgParams::for_problem(*problem, 0.01), mm);
            obs::EventTrace trace;
            const auto r = exec.run(240, {.trace = &trace});
            std::string dump;
            kv(dump, "elapsed", r.elapsed);
            kv(dump, "evaluations", r.evaluations);
            kv(dump, "migrations", r.migrations);
            out.push_back({trace.to_jsonl(), dump});
        }
        { // SimAsyncPolicy and SimSyncPolicy
            models::SimulationConfig cfg;
            cfg.tf = s.tf.get();
            cfg.tc = s.tc.get();
            cfg.ta = s.ta.get();
            cfg.evaluations = 2000;
            cfg.processors = 32;
            cfg.seed = 7;
            cfg.queue = queue;
            obs::EventTrace trace;
            const auto ra = models::simulate_async(cfg, {.trace = &trace});
            std::string dump;
            kv(dump, "async.elapsed", ra.elapsed);
            kv(dump, "async.evaluations", ra.evaluations);
            kv(dump, "async.mean_queue_wait", ra.mean_queue_wait);
            const auto rs = models::simulate_sync(cfg);
            kv(dump, "sync.elapsed", rs.elapsed);
            kv(dump, "sync.evaluations", rs.evaluations);
            out.push_back({trace.to_jsonl(), dump});
        }
        return out;
    };

    const auto heap = run_all(QueuePolicy::heap);
    const auto calendar = run_all(QueuePolicy::calendar);
    ASSERT_EQ(heap.size(), calendar.size());
    const char* names[] = {"async", "async_hetero_fail", "sync",
                           "multi_master", "simulation_model"};
    for (std::size_t i = 0; i < heap.size(); ++i) {
        EXPECT_EQ(heap[i].trace, calendar[i].trace) << names[i];
        EXPECT_EQ(heap[i].result, calendar[i].result) << names[i];
    }
}

TEST(GoldenTraces, SerialVirtualBaseline) {
    const auto problem = problems::make_problem("zdt1");
    Streams s;
    moea::BorgMoea algo(*problem,
                        moea::BorgParams::for_problem(*problem, 0.01), 61);
    VirtualClusterConfig cfg{2, s.tf.get(), s.tc.get(), s.ta.get(), 62};
    const auto result =
        run_serial_virtual(algo, *problem, cfg, 300);
    check_golden("serial_virtual.result.txt", dump_result(result));
}

} // namespace
