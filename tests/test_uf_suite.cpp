/// Tests for the two-objective CEC'09 problems (UF1-UF4, UF7) and the
/// DTLZ5-7 extensions: known optimal points land on the closed-form
/// fronts, off-front points are penalized, and Borg makes progress on the
/// coupled landscapes.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "metrics/hypervolume.hpp"
#include "moea/borg.hpp"
#include "problems/dtlz.hpp"
#include "problems/problem.hpp"
#include "problems/reference_set.hpp"
#include "problems/uf.hpp"

namespace {

using namespace borg;
using namespace borg::problems;

std::vector<double> eval(const Problem& p, const std::vector<double>& x) {
    std::vector<double> f(p.num_objectives());
    p.evaluate(x, f);
    return f;
}

/// Constructs the Pareto-optimal decision vector for the sinusoidal UF
/// family at position value x1: x_j = sin(6 pi x1 + j pi / n).
std::vector<double> uf_sin_optimum(const Problem& p, double x1) {
    const std::size_t n = p.num_variables();
    std::vector<double> x(n);
    x[0] = x1;
    for (std::size_t j = 2; j <= n; ++j)
        x[j - 1] = std::sin(6.0 * std::numbers::pi * x1 +
                            static_cast<double>(j) * std::numbers::pi /
                                static_cast<double>(n));
    return x;
}

class UfSqrtFront : public ::testing::TestWithParam<double> {};

TEST_P(UfSqrtFront, Uf1OptimaOnFront) {
    const Uf1 p;
    const double x1 = GetParam();
    const auto f = eval(p, uf_sin_optimum(p, x1));
    EXPECT_NEAR(f[0], x1, 1e-10);
    EXPECT_NEAR(f[1], 1.0 - std::sqrt(x1), 1e-10);
}

TEST_P(UfSqrtFront, Uf4OptimaOnFront) {
    const Uf4 p;
    const double x1 = GetParam();
    const auto f = eval(p, uf_sin_optimum(p, x1));
    EXPECT_NEAR(f[0], x1, 1e-10);
    EXPECT_NEAR(f[1], 1.0 - x1 * x1, 1e-10);
}

TEST_P(UfSqrtFront, Uf7OptimaOnFront) {
    const Uf7 p;
    const double x1 = GetParam();
    const auto f = eval(p, uf_sin_optimum(p, x1));
    const double root = std::pow(x1, 0.2);
    EXPECT_NEAR(f[0], root, 1e-10);
    EXPECT_NEAR(f[1], 1.0 - root, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(PositionSweep, UfSqrtFront,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.77, 1.0));

TEST(Uf2, OptimumLandsOnFront) {
    const Uf2 p;
    const std::size_t n = p.num_variables();
    for (const double x1 : {0.2, 0.6, 0.9}) {
        std::vector<double> x(n);
        x[0] = x1;
        for (std::size_t j = 2; j <= n; ++j) {
            const double jd = static_cast<double>(j);
            const double amp =
                0.3 * x1 * x1 *
                    std::cos(24.0 * std::numbers::pi * x1 +
                             4.0 * jd * std::numbers::pi / n) +
                0.6 * x1;
            const double angle = 6.0 * std::numbers::pi * x1 +
                                 jd * std::numbers::pi / n;
            x[j - 1] = amp * (j % 2 == 1 ? std::cos(angle) : std::sin(angle));
        }
        const auto f = eval(p, x);
        EXPECT_NEAR(f[0], x1, 1e-10);
        EXPECT_NEAR(f[1], 1.0 - std::sqrt(x1), 1e-10);
    }
}

TEST(Uf3, OptimumLandsOnFront) {
    const Uf3 p;
    const std::size_t n = p.num_variables();
    for (const double x1 : {0.1, 0.5, 1.0}) {
        std::vector<double> x(n);
        x[0] = x1;
        for (std::size_t j = 2; j <= n; ++j) x[j - 1] = p.optimal_xj(x1, j);
        const auto f = eval(p, x);
        EXPECT_NEAR(f[0], x1, 1e-9);
        EXPECT_NEAR(f[1], 1.0 - std::sqrt(x1), 1e-9);
    }
}

TEST(UfSuite, OffFrontPointsArePenalized) {
    for (const char* name : {"uf1", "uf2", "uf3", "uf4", "uf7"}) {
        const auto p = make_problem(name);
        std::vector<double> x(p->num_variables(), 0.0);
        x[0] = 0.5;
        // Push every coupled variable to its upper bound: y_j != 0.
        for (std::size_t j = 1; j < x.size(); ++j) x[j] = p->upper_bound(j);
        const auto f = eval(*p, x);
        const auto refset = reference_set_for(name);
        // The point must lie strictly above the front in at least f2.
        double front_f2 = 2.0;
        for (const auto& r : refset)
            if (std::abs(r[0] - f[0]) < 0.01) front_f2 = r[1];
        if (front_f2 < 2.0) EXPECT_GT(f[1], front_f2 + 0.01) << name;
        EXPECT_TRUE(std::isfinite(f[0]) && std::isfinite(f[1])) << name;
    }
}

TEST(UfSuite, BorgMakesProgressOnUf1) {
    const auto p = make_problem("uf1");
    moea::BorgMoea algo(*p, moea::BorgParams::for_problem(*p, 0.01), 3);
    moea::run_serial(algo, *p, 30000);
    const double hv = metrics::normalized_hypervolume(
        algo.archive().objective_vectors(), reference_set_for("uf1"));
    // UF1 is hard; partial convergence demonstrates the coupling is
    // being handled, not solved to optimality.
    EXPECT_GT(hv, 0.5);
}

// ------------------------------------------------------------- DTLZ5/6/7

TEST(Dtlz5, OptimaOnUnitSphere) {
    const Dtlz5 p(3);
    std::vector<double> x(p.num_variables(), 0.5); // g = 0
    const auto f = eval(p, x);
    double norm = 0.0;
    for (const double v : f) norm += v * v;
    EXPECT_NEAR(norm, 1.0, 1e-10);
}

TEST(Dtlz5, FrontIsDegenerateCurve) {
    // With g = 0 the squeeze maps every middle position variable to
    // theta = pi/4, so f1 = f2 regardless of x2.
    const Dtlz5 p(3);
    std::vector<double> a(p.num_variables(), 0.5);
    std::vector<double> b(p.num_variables(), 0.5);
    a[1] = 0.0;
    b[1] = 1.0;
    a[0] = b[0] = 0.3;
    EXPECT_NEAR(eval(p, a)[0], eval(p, b)[0], 1e-10);
    EXPECT_NEAR(eval(p, a)[1], eval(p, b)[1], 1e-10);
}

TEST(Dtlz6, HarderGAwayFromZero) {
    const Dtlz6 p(3);
    std::vector<double> x(p.num_variables(), 0.5);
    const auto f = eval(p, x);
    // g = sum(0.5^0.1) over 10 distance variables ~ 9.3: far from front.
    double norm = 0.0;
    for (const double v : f) norm += v * v;
    EXPECT_GT(std::sqrt(norm), 5.0);

    std::fill(x.begin() + 2, x.end(), 0.0); // optimal distance block
    const auto f0 = eval(p, x);
    norm = 0.0;
    for (const double v : f0) norm += v * v;
    EXPECT_NEAR(norm, 1.0, 1e-10);
}

TEST(Dtlz7, KnownValues) {
    const Dtlz7 p(2);
    std::vector<double> x(p.num_variables(), 0.0); // g = 1
    x[0] = 0.0;
    auto f = eval(p, x);
    EXPECT_DOUBLE_EQ(f[0], 0.0);
    EXPECT_NEAR(f[1], 4.0, 1e-12); // (1+1) * (2 - 0)
    x[0] = 1.0;                    // sin(3 pi) = 0
    f = eval(p, x);
    EXPECT_NEAR(f[1], 2.0 * (2.0 - 0.5), 1e-9);
}

TEST(Dtlz7, ReferenceSetIsDisconnectedAndNondominated) {
    const auto front = dtlz7_reference_set(2000);
    ASSERT_GT(front.size(), 100u);
    // Disconnected: there are gaps in f1 coverage.
    double largest_gap = 0.0;
    for (std::size_t i = 1; i < front.size(); ++i)
        largest_gap = std::max(largest_gap, front[i][0] - front[i - 1][0]);
    EXPECT_GT(largest_gap, 0.05);
}

TEST(Dtlz7, BorgFindsAllFourRegions) {
    const auto p = make_problem("dtlz7");
    moea::BorgMoea algo(*p, moea::BorgParams::for_problem(*p, 0.02), 4);
    moea::run_serial(algo, *p, 30000);
    const double hv = metrics::normalized_hypervolume(
        algo.archive().objective_vectors(), reference_set_for("dtlz7"));
    EXPECT_GT(hv, 0.9);
}

TEST(FactoryExtensions, NewNamesResolve) {
    EXPECT_EQ(make_problem("dtlz5_3")->name(), "DTLZ5_3");
    EXPECT_EQ(make_problem("dtlz6")->num_objectives(), 3u);
    EXPECT_EQ(make_problem("dtlz7")->num_variables(), 21u);
    EXPECT_EQ(make_problem("uf1")->num_variables(), 30u);
    EXPECT_EQ(make_problem("uf4")->lower_bound(5), -2.0);
}

} // namespace
