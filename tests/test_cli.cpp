#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "metrics/hypervolume.hpp"

namespace {

using borg::util::CliArgs;

CliArgs parse(std::initializer_list<const char*> args) {
    std::vector<const char*> argv{"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, SpaceSeparatedValue) {
    const auto args = parse({"--procs", "64"});
    EXPECT_EQ(args.get_int("procs", 0), 64);
}

TEST(Cli, EqualsSeparatedValue) {
    const auto args = parse({"--tf=0.01"});
    EXPECT_DOUBLE_EQ(args.get_double("tf", 0.0), 0.01);
}

TEST(Cli, BooleanSwitch) {
    const auto args = parse({"--verbose"});
    EXPECT_TRUE(args.get_bool("verbose"));
    EXPECT_FALSE(args.get_bool("quiet"));
}

TEST(Cli, BooleanSwitchBeforeFlag) {
    const auto args = parse({"--verbose", "--procs", "8"});
    EXPECT_TRUE(args.get_bool("verbose"));
    EXPECT_EQ(args.get_int("procs", 0), 8);
}

TEST(Cli, FallbacksUsedWhenAbsent) {
    const auto args = parse({});
    EXPECT_EQ(args.get("name", "default"), "default");
    EXPECT_EQ(args.get_int("n", 42), 42);
    EXPECT_DOUBLE_EQ(args.get_double("x", 2.5), 2.5);
}

TEST(Cli, CommaSeparatedDoubles) {
    const auto args = parse({"--tf", "0.001,0.01,0.1"});
    const auto values = args.get_doubles("tf", {});
    ASSERT_EQ(values.size(), 3u);
    EXPECT_DOUBLE_EQ(values[0], 0.001);
    EXPECT_DOUBLE_EQ(values[2], 0.1);
}

TEST(Cli, CommaSeparatedInts) {
    const auto args = parse({"--procs=16,32,64"});
    const auto values = args.get_ints("procs", {});
    ASSERT_EQ(values.size(), 3u);
    EXPECT_EQ(values[1], 32);
}

TEST(Cli, HasDetectsPresence) {
    const auto args = parse({"--x", "1"});
    EXPECT_TRUE(args.has("x"));
    EXPECT_FALSE(args.has("y"));
}

TEST(Cli, RejectsNonFlagToken) {
    EXPECT_THROW(parse({"positional"}), std::invalid_argument);
}

TEST(Cli, CheckKnownAcceptsKnown) {
    const auto args = parse({"--a", "1", "--b=2"});
    EXPECT_NO_THROW(args.check_known({"a", "b", "c"}));
}

TEST(Cli, CheckKnownRejectsUnknown) {
    const auto args = parse({"--oops", "1"});
    EXPECT_THROW(args.check_known({"a", "b"}), std::invalid_argument);
}

TEST(Cli, NegativeNumberAsValue) {
    const auto args = parse({"--offset", "-5"});
    EXPECT_EQ(args.get_int("offset", 0), -5);
}

// Strict numeric parsing: a malformed value must be an error naming the
// flag, never silently truncated to its numeric prefix or to the fallback.

TEST(Cli, IntRejectsTrailingGarbage) {
    const auto args = parse({"--jobs", "4x"});
    EXPECT_THROW(args.get_int("jobs", 0), std::invalid_argument);
}

TEST(Cli, IntRejectsNonNumeric) {
    const auto args = parse({"--procs", "many"});
    EXPECT_THROW(args.get_int("procs", 0), std::invalid_argument);
}

TEST(Cli, IntRejectsEmptyValue) {
    const auto args = parse({"--jobs="});
    EXPECT_THROW(args.get_int("jobs", 0), std::invalid_argument);
}

TEST(Cli, IntRejectsFloatValue) {
    const auto args = parse({"--replicates", "2.5"});
    EXPECT_THROW(args.get_int("replicates", 0), std::invalid_argument);
}

TEST(Cli, IntRejectsOutOfRange) {
    const auto args = parse({"--jobs", "99999999999999999999999"});
    EXPECT_THROW(args.get_int("jobs", 0), std::invalid_argument);
}

TEST(Cli, IntErrorNamesTheFlag) {
    const auto args = parse({"--jobs", "4x"});
    try {
        args.get_int("jobs", 0);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("--jobs"), std::string::npos)
            << e.what();
    }
}

TEST(Cli, UintAcceptsZeroAndPositive) {
    const auto args = parse({"--jobs", "0", "--procs", "64"});
    EXPECT_EQ(args.get_uint("jobs", 1), 0);
    EXPECT_EQ(args.get_uint("procs", 1), 64);
    EXPECT_EQ(args.get_uint("absent", 7), 7);
}

TEST(Cli, UintRejectsNegative) {
    const auto args = parse({"--replicates", "-3"});
    EXPECT_THROW(args.get_uint("replicates", 0), std::invalid_argument);
    try {
        args.get_uint("replicates", 0);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("--replicates"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Cli, DoubleRejectsTrailingGarbage) {
    const auto args = parse({"--tf", "0.01abc"});
    EXPECT_THROW(args.get_double("tf", 0.0), std::invalid_argument);
}

TEST(Cli, DoubleRejectsNonNumeric) {
    const auto args = parse({"--tf", "fast"});
    EXPECT_THROW(args.get_double("tf", 0.0), std::invalid_argument);
}

TEST(Cli, DoubleAcceptsScientificNotation) {
    const auto args = parse({"--tc", "6e-6"});
    EXPECT_DOUBLE_EQ(args.get_double("tc", 0.0), 6e-6);
}

TEST(Cli, IntListRejectsGarbageElement) {
    const auto args = parse({"--procs", "16,abc,64"});
    EXPECT_THROW(args.get_ints("procs", {}), std::invalid_argument);
}

TEST(Cli, IntListRejectsEmptyElement) {
    const auto args = parse({"--procs", "16,,64"});
    EXPECT_THROW(args.get_ints("procs", {}), std::invalid_argument);
}

TEST(Cli, DoubleListRejectsGarbageElement) {
    const auto args = parse({"--tf", "0.01,0.1x"});
    EXPECT_THROW(args.get_doubles("tf", {}), std::invalid_argument);
}

// --hv-algo / --hv-mc-samples parsing shared by the sweep drivers.

TEST(CliHvConfig, Defaults) {
    const auto args = parse({});
    const auto cfg = borg::metrics::hv_config_from_cli(args);
    EXPECT_EQ(cfg.algo, borg::metrics::HvAlgo::kAuto);
    EXPECT_EQ(cfg.mc_samples, 100000u);
}

TEST(CliHvConfig, ParsesAlgoAndSamples) {
    const auto args = parse({"--hv-algo", "mc", "--hv-mc-samples", "5000"});
    const auto cfg = borg::metrics::hv_config_from_cli(args);
    EXPECT_EQ(cfg.algo, borg::metrics::HvAlgo::kMonteCarlo);
    EXPECT_EQ(cfg.mc_samples, 5000u);
}

TEST(CliHvConfig, ParsesEveryPolicyName) {
    using borg::metrics::HvAlgo;
    using borg::metrics::parse_hv_algo;
    EXPECT_EQ(parse_hv_algo("auto"), HvAlgo::kAuto);
    EXPECT_EQ(parse_hv_algo("wfg"), HvAlgo::kWfg);
    EXPECT_EQ(parse_hv_algo("naive"), HvAlgo::kNaive);
    EXPECT_EQ(parse_hv_algo("mc"), HvAlgo::kMonteCarlo);
}

TEST(CliHvConfig, RejectsUnknownAlgo) {
    const auto args = parse({"--hv-algo", "fastest"});
    try {
        borg::metrics::hv_config_from_cli(args);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("--hv-algo"), std::string::npos)
            << e.what();
    }
}

TEST(CliHvConfig, RejectsZeroSamples) {
    const auto args = parse({"--hv-mc-samples", "0"});
    EXPECT_THROW(borg::metrics::hv_config_from_cli(args),
                 std::invalid_argument);
}

TEST(CliHvConfig, RejectsNegativeSamples) {
    const auto args = parse({"--hv-mc-samples", "-100"});
    EXPECT_THROW(borg::metrics::hv_config_from_cli(args),
                 std::invalid_argument);
}

TEST(CliHvConfig, RejectsGarbageSamples) {
    const auto args = parse({"--hv-mc-samples", "10k"});
    EXPECT_THROW(borg::metrics::hv_config_from_cli(args),
                 std::invalid_argument);
}

TEST(CliHvConfig, CacheKeySeparatesPolicies) {
    borg::metrics::HvConfig a, b;
    b.algo = borg::metrics::HvAlgo::kMonteCarlo;
    b.mc_samples = 2000;
    EXPECT_EQ(borg::metrics::normalizer_cache_key("dtlz2_5", a),
              "dtlz2_5|auto|100000");
    EXPECT_NE(borg::metrics::normalizer_cache_key("dtlz2_5", a),
              borg::metrics::normalizer_cache_key("dtlz2_5", b));
}

} // namespace
