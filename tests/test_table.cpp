#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using borg::util::format_fixed;
using borg::util::format_percent;
using borg::util::format_seconds;
using borg::util::Table;

TEST(Table, PrintsHeaderAndRows) {
    Table t({"P", "Time", "Eff"});
    t.add_row({"16", "9.2", "0.69"});
    t.add_row({"1024", "9.4", "0.01"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("P"), std::string::npos);
    EXPECT_NE(out.find("1024"), std::string::npos);
    EXPECT_NE(out.find("0.69"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, PadsShortRows) {
    Table t({"a", "b", "c"});
    t.add_row({"only"});
    std::ostringstream os;
    EXPECT_NO_THROW(t.print(os));
}

TEST(Table, CsvEscapesSpecialCells) {
    Table t({"name", "value"});
    t.add_row({"with,comma", "with\"quote"});
    std::ostringstream os;
    t.print_csv(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, CsvPlainCellsUnquoted) {
    Table t({"x"});
    t.add_row({"plain"});
    std::ostringstream os;
    t.print_csv(os);
    EXPECT_EQ(os.str(), "x\nplain\n");
}

TEST(Format, Fixed) {
    EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
    EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
}

TEST(Format, Percent) {
    EXPECT_EQ(format_percent(0.23), "23%");
    EXPECT_EQ(format_percent(0.986), "99%");
    EXPECT_EQ(format_percent(1.0), "100%");
}

TEST(Format, SecondsScalesPrecision) {
    EXPECT_EQ(format_seconds(667.83), "667.8");
    EXPECT_EQ(format_seconds(0.0123), "0.0123");
    EXPECT_EQ(format_seconds(0.0000061), "0.000006");
}

} // namespace
