#include "models/sync_model.hpp"

#include <gtest/gtest.h>

namespace {

using namespace borg::models;

// Figure 5's fixed overheads: T_C = 6 us, T_A = 60 us (see DESIGN.md note
// on the swapped constants in the paper's prose).
const TimingCosts kFig5{0.01, 0.000006, 0.000060};

TEST(SyncModel, Eq6Formula) {
    // N/P (T_F + P T_C + P T_A)
    const double expected = 1000.0 / 10.0 * (0.01 + 10 * 0.000006 + 10 * 0.00006);
    EXPECT_NEAR(sync_parallel_time(1000, 10, kFig5), expected, 1e-12);
}

TEST(SyncModel, RuntimeMonotoneDecreasing) {
    double previous = sync_parallel_time(10000, 1, kFig5);
    for (const std::uint64_t p : {2, 4, 16, 256, 4096}) {
        const double t = sync_parallel_time(10000, p, kFig5);
        EXPECT_LT(t, previous);
        previous = t;
    }
}

TEST(SyncModel, RuntimeFloorIsCommunication) {
    // T_P^sync -> N (T_C + T_A) as P -> inf.
    const double floor = 10000 * (0.000006 + 0.00006);
    EXPECT_GT(sync_parallel_time(10000, 1 << 20, kFig5), floor);
    EXPECT_NEAR(sync_parallel_time(10000, 1 << 20, kFig5), floor,
                0.01 * floor);
}

TEST(SyncModel, SpeedupSaturates) {
    const double limit = sync_speedup_limit(kFig5);
    EXPECT_NEAR(limit, (0.01 + 0.00006) / (0.000006 + 0.00006), 1e-9);
    EXPECT_LT(sync_speedup(1 << 20, kFig5), limit);
    EXPECT_NEAR(sync_speedup(1 << 20, kFig5), limit, 0.01 * limit);
}

TEST(SyncModel, EfficiencyDecaysWithP) {
    double previous = sync_efficiency(1, kFig5);
    for (const std::uint64_t p : {2, 8, 64, 1024}) {
        const double e = sync_efficiency(p, kFig5);
        EXPECT_LT(e, previous);
        previous = e;
    }
}

TEST(SyncModel, HalfEfficiencyPoint) {
    const double p_half = sync_half_efficiency_processors(kFig5);
    const auto p = static_cast<std::uint64_t>(p_half);
    // Efficiency at the half point must straddle 0.5.
    EXPECT_NEAR(sync_efficiency(p, kFig5), 0.5, 0.02);
}

TEST(SyncModel, SmallTfFavorsSyncOverAsyncSaturated) {
    // Paper Section VI-B: the synchronous model achieves higher efficiency
    // with small T_F — the async master saturates almost immediately
    // (P_UB = T_F / (2 T_C + T_A) < 2) and then pays 2 T_C + T_A per
    // evaluation, where the synchronous pipeline pays only T_C + T_A.
    const TimingCosts costs{0.0001, 0.000006, 0.000060};
    EXPECT_LT(processor_upper_bound(costs), 2.0);
    const std::uint64_t p = 64;
    const double sync_e = sync_efficiency(p, costs);
    const double async_saturated_tp = 1.0 * (2 * costs.tc + costs.ta);
    const double async_e =
        serial_time(1, costs) / (static_cast<double>(p) * async_saturated_tp);
    EXPECT_GT(sync_e, async_e);
}

TEST(SyncModel, LargeTfAsyncScalesFurther) {
    // With T_F = 1 s the async model stays efficient to much larger P than
    // the sync model (the Figure 5 contrast).
    const TimingCosts costs{1.0, 0.000006, 0.000060};
    const std::uint64_t p = 8192;
    EXPECT_GT(async_efficiency(p, costs), 0.95);
    EXPECT_LT(sync_efficiency(p, costs), 0.70);
}

TEST(SyncModel, RejectsZeroProcessors) {
    EXPECT_THROW(sync_parallel_time(100, 0, kFig5), std::invalid_argument);
}

TEST(SyncModel, DegenerateCostsRejected) {
    const TimingCosts zero{1.0, 0.0, 0.0};
    EXPECT_THROW(sync_speedup_limit(zero), std::invalid_argument);
    EXPECT_THROW(sync_half_efficiency_processors(zero), std::invalid_argument);
}

} // namespace
