#include "moea/checkpoint.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "problems/problem.hpp"

namespace {

using namespace borg;
using namespace borg::moea;

BorgParams params_for(const problems::Problem& problem) {
    return BorgParams::for_problem(problem, 0.01);
}

/// The gold property: save at evaluation k, load into a fresh instance,
/// continue both to N — the archives must be bit-identical.
TEST(Checkpoint, ResumedRunIsBitIdentical) {
    const auto problem = problems::make_problem("zdt1");

    BorgMoea uninterrupted(*problem, params_for(*problem), 42);
    run_serial(uninterrupted, *problem, 10000);

    BorgMoea first_half(*problem, params_for(*problem), 42);
    run_serial(first_half, *problem, 4000);
    std::stringstream snapshot;
    save_checkpoint(first_half, snapshot);

    BorgMoea resumed(*problem, params_for(*problem), 999); // wrong seed —
    load_checkpoint(resumed, snapshot); // — overwritten by the checkpoint
    run_serial(resumed, *problem, 10000);

    ASSERT_EQ(resumed.archive().size(), uninterrupted.archive().size());
    for (std::size_t i = 0; i < resumed.archive().size(); ++i) {
        EXPECT_EQ(resumed.archive()[i].objectives,
                  uninterrupted.archive()[i].objectives);
        EXPECT_EQ(resumed.archive()[i].variables,
                  uninterrupted.archive()[i].variables);
    }
    EXPECT_EQ(resumed.restarts(), uninterrupted.restarts());
    EXPECT_EQ(resumed.operator_usage(), uninterrupted.operator_usage());
    EXPECT_EQ(resumed.operator_probabilities(),
              uninterrupted.operator_probabilities());
}

TEST(Checkpoint, CountersSurviveRoundTrip) {
    const auto problem = problems::make_problem("zdt1");
    BorgMoea original(*problem, params_for(*problem), 7);
    run_serial(original, *problem, 3000);

    std::stringstream snapshot;
    save_checkpoint(original, snapshot);
    BorgMoea restored(*problem, params_for(*problem), 8);
    load_checkpoint(restored, snapshot);

    EXPECT_EQ(restored.issued(), original.issued());
    EXPECT_EQ(restored.evaluations(), original.evaluations());
    EXPECT_EQ(restored.pending_restart_mutants(),
              original.pending_restart_mutants());
    EXPECT_EQ(restored.archive().size(), original.archive().size());
    EXPECT_EQ(restored.archive().epsilon_progress(),
              original.archive().epsilon_progress());
    EXPECT_EQ(restored.archive().improvements(),
              original.archive().improvements());
    EXPECT_EQ(restored.population().size(), original.population().size());
    EXPECT_EQ(restored.population().target_size(),
              original.population().target_size());
}

TEST(Checkpoint, ExactDoubleRoundTrip) {
    const auto problem = problems::make_problem("zdt1");
    BorgMoea original(*problem, params_for(*problem), 3);
    run_serial(original, *problem, 500);

    std::stringstream snapshot;
    save_checkpoint(original, snapshot);
    BorgMoea restored(*problem, params_for(*problem), 4);
    load_checkpoint(restored, snapshot);

    for (std::size_t i = 0; i < original.population().size(); ++i)
        EXPECT_EQ(restored.population()[i].variables,
                  original.population()[i].variables);
}

TEST(Checkpoint, WorksMidRestartRefill) {
    // Checkpoint while restart mutants are pending: the pending count and
    // the resulting stream must survive.
    const auto problem = problems::make_problem("zdt1");
    BorgParams params = params_for(*problem);
    params.restart.window = 100;
    BorgMoea algo(*problem, params, 5);
    std::uint64_t i = 0;
    while (algo.pending_restart_mutants() == 0 && i < 50000) {
        Solution s = algo.next_offspring();
        evaluate(*problem, s);
        algo.receive(std::move(s));
        ++i;
    }
    ASSERT_GT(algo.pending_restart_mutants(), 0u);

    std::stringstream snapshot;
    save_checkpoint(algo, snapshot);
    BorgMoea restored(*problem, params, 6);
    load_checkpoint(restored, snapshot);
    EXPECT_EQ(restored.pending_restart_mutants(),
              algo.pending_restart_mutants());
    const Solution a = algo.next_offspring();
    const Solution b = restored.next_offspring();
    EXPECT_EQ(a.variables, b.variables);
    EXPECT_EQ(a.operator_index, b.operator_index);
}

TEST(Checkpoint, ConstrainedSolutionsRoundTrip) {
    const auto problem = problems::make_problem("srn");
    BorgParams params;
    params.epsilons = {1.0, 1.0};
    BorgMoea original(*problem, params, 9);
    run_serial(original, *problem, 2000);

    std::stringstream snapshot;
    save_checkpoint(original, snapshot);
    BorgMoea restored(*problem, params, 10);
    load_checkpoint(restored, snapshot);
    ASSERT_EQ(restored.archive().size(), original.archive().size());
    for (std::size_t i = 0; i < restored.archive().size(); ++i)
        EXPECT_EQ(restored.archive()[i].constraints,
                  original.archive()[i].constraints);
}

TEST(Checkpoint, RejectsGarbage) {
    const auto problem = problems::make_problem("zdt1");
    BorgMoea algo(*problem, params_for(*problem), 11);
    std::stringstream garbage("not a checkpoint at all");
    EXPECT_THROW(load_checkpoint(algo, garbage), CheckpointError);
}

TEST(Checkpoint, RejectsTruncated) {
    const auto problem = problems::make_problem("zdt1");
    BorgMoea original(*problem, params_for(*problem), 12);
    run_serial(original, *problem, 1000);
    std::stringstream snapshot;
    save_checkpoint(original, snapshot);
    const std::string full = snapshot.str();
    std::stringstream truncated(full.substr(0, full.size() / 2));
    BorgMoea restored(*problem, params_for(*problem), 13);
    EXPECT_THROW(load_checkpoint(restored, truncated), CheckpointError);
}

/// save → load → save must be byte-identical: load_checkpoint installs the
/// archive directly (no add() replay), so nothing about the saved state can
/// shift, reorder, or drop on the way through a restore.
TEST(Checkpoint, SaveLoadSaveIsByteIdentical) {
    for (const char* name : {"zdt1", "srn"}) {
        const auto problem = problems::make_problem(name);
        BorgParams params;
        params.epsilons.assign(problem->num_objectives(),
                               name == std::string("srn") ? 1.0 : 0.01);
        BorgMoea original(*problem, params, 21);
        run_serial(original, *problem, 3000);

        std::stringstream first;
        save_checkpoint(original, first);

        BorgMoea restored(*problem, params, 22);
        std::stringstream replay(first.str());
        load_checkpoint(restored, replay);

        std::stringstream second;
        save_checkpoint(restored, second);
        EXPECT_EQ(first.str(), second.str()) << "problem " << name;
    }
}

TEST(Checkpoint, RejectsEpsilonMismatch) {
    // Loading into a BorgMoea configured with different epsilons would
    // silently re-box (and possibly drop) archive members; it must throw.
    const auto problem = problems::make_problem("zdt1");
    BorgMoea original(*problem, params_for(*problem), 16);
    run_serial(original, *problem, 1000);
    std::stringstream snapshot;
    save_checkpoint(original, snapshot);

    BorgMoea coarser(*problem, BorgParams::for_problem(*problem, 0.02), 17);
    EXPECT_THROW(load_checkpoint(coarser, snapshot), CheckpointError);
}

namespace {
/// Same variables/objectives as SRN, but unconstrained: exercises the
/// constraint-arity check that variable/objective validation alone misses.
class UnconstrainedSrnShape final : public problems::Problem {
public:
    std::string name() const override { return "srn-shape"; }
    std::size_t num_variables() const override { return 2; }
    std::size_t num_objectives() const override { return 2; }
    double lower_bound(std::size_t) const override { return -20.0; }
    double upper_bound(std::size_t) const override { return 20.0; }
    void evaluate(std::span<const double> variables,
                  std::span<double> objectives) const override {
        objectives[0] = variables[0];
        objectives[1] = variables[1];
    }
};
} // namespace

TEST(Checkpoint, RejectsConstraintArityMismatch) {
    const auto srn = problems::make_problem("srn");
    BorgParams params;
    params.epsilons = {1.0, 1.0};
    BorgMoea original(*srn, params, 18);
    run_serial(original, *srn, 1000);
    std::stringstream snapshot;
    save_checkpoint(original, snapshot);

    // Same variable and objective arity, no constraints: without the
    // constraint-arity check this load would succeed and every restored
    // solution would carry phantom violations.
    UnconstrainedSrnShape shape;
    BorgMoea other(shape, params, 19);
    EXPECT_THROW(load_checkpoint(other, snapshot), CheckpointError);
}

TEST(Checkpoint, RejectsDifferentProblemDimensions) {
    const auto zdt = problems::make_problem("zdt1");
    BorgMoea original(*zdt, params_for(*zdt), 14);
    run_serial(original, *zdt, 1000);
    std::stringstream snapshot;
    save_checkpoint(original, snapshot);

    const auto dtlz = problems::make_problem("dtlz2_2");
    BorgMoea other(*dtlz, params_for(*dtlz), 15);
    EXPECT_THROW(load_checkpoint(other, snapshot), CheckpointError);
}

} // namespace
