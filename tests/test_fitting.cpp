#include "stats/fitting.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace {

using namespace borg::stats;
using borg::util::Rng;

std::vector<double> draw(const Distribution& d, int n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<double> xs(n);
    for (double& x : xs) x = d.sample(rng);
    return xs;
}

TEST(Digamma, KnownValues) {
    // psi(1) = -gamma (Euler-Mascheroni).
    EXPECT_NEAR(digamma(1.0), -0.5772156649, 1e-9);
    // psi(2) = 1 - gamma.
    EXPECT_NEAR(digamma(2.0), 1.0 - 0.5772156649, 1e-9);
    // psi(0.5) = -gamma - 2 ln 2.
    EXPECT_NEAR(digamma(0.5), -0.5772156649 - 2.0 * std::log(2.0), 1e-9);
    // Recurrence psi(x+1) = psi(x) + 1/x at a non-special point.
    EXPECT_NEAR(digamma(4.7), digamma(3.7) + 1.0 / 3.7, 1e-10);
}

TEST(FitNormal, RecoversParameters) {
    const NormalDistribution truth(3.0, 0.7);
    const auto xs = draw(truth, 50000, 1);
    const Fit fit = fit_normal(xs);
    EXPECT_NEAR(fit.distribution->mean(), 3.0, 0.02);
    EXPECT_NEAR(fit.distribution->stddev(), 0.7, 0.02);
    EXPECT_EQ(fit.family, "normal");
}

TEST(FitLogNormal, RecoversParameters) {
    const LogNormalDistribution truth(-1.0, 0.4);
    const auto xs = draw(truth, 50000, 2);
    const Fit fit = fit_lognormal(xs);
    EXPECT_NEAR(fit.distribution->mean(), truth.mean(), 0.01);
}

TEST(FitLogNormal, RejectsNonPositive) {
    const std::vector<double> xs{1.0, -1.0, 2.0};
    EXPECT_THROW(fit_lognormal(xs), std::invalid_argument);
}

TEST(FitExponential, RecoversRate) {
    const ExponentialDistribution truth(5.0);
    const auto xs = draw(truth, 50000, 3);
    const Fit fit = fit_exponential(xs);
    EXPECT_NEAR(fit.distribution->mean(), 0.2, 0.01);
}

TEST(FitUniform, RecoversSupport) {
    const UniformDistribution truth(2.0, 6.0);
    const auto xs = draw(truth, 20000, 4);
    const Fit fit = fit_uniform(xs);
    EXPECT_NEAR(fit.distribution->mean(), 4.0, 0.05);
    EXPECT_NEAR(fit.distribution->variance(), 16.0 / 12.0, 0.05);
}

class GammaFitRecovery
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(GammaFitRecovery, ShapeAndScale) {
    const auto [shape, scale] = GetParam();
    const GammaDistribution truth(shape, scale);
    const auto xs = draw(truth, 50000, 5);
    const Fit fit = fit_gamma(xs);
    const auto& g = dynamic_cast<const GammaDistribution&>(*fit.distribution);
    EXPECT_NEAR(g.shape(), shape, 0.06 * shape);
    EXPECT_NEAR(g.scale(), scale, 0.06 * scale);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GammaFitRecovery,
    ::testing::Values(std::pair{0.7, 1.0}, std::pair{2.0, 0.001},
                      std::pair{9.0, 3.0}));

class WeibullFitRecovery
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(WeibullFitRecovery, ShapeAndScale) {
    const auto [shape, scale] = GetParam();
    const WeibullDistribution truth(shape, scale);
    const auto xs = draw(truth, 50000, 6);
    const Fit fit = fit_weibull(xs);
    const auto& w =
        dynamic_cast<const WeibullDistribution&>(*fit.distribution);
    EXPECT_NEAR(w.shape(), shape, 0.05 * shape);
    EXPECT_NEAR(w.scale(), scale, 0.05 * scale);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WeibullFitRecovery,
    ::testing::Values(std::pair{0.9, 0.01}, std::pair{1.5, 2.0},
                      std::pair{4.0, 1.0}));

TEST(FitAll, SelectsGeneratingFamilyGamma) {
    const GammaDistribution truth(3.0, 0.5);
    const auto xs = draw(truth, 20000, 7);
    const auto fits = fit_all(xs);
    ASSERT_FALSE(fits.empty());
    // Gamma must rank at or near the top, and must beat exponential and
    // uniform decisively.
    double gamma_ll = 0.0, expo_ll = 0.0;
    bool saw_gamma = false, saw_expo = false;
    for (const Fit& f : fits) {
        if (f.family == "gamma") {
            gamma_ll = f.log_likelihood;
            saw_gamma = true;
        }
        if (f.family == "exponential") {
            expo_ll = f.log_likelihood;
            saw_expo = true;
        }
    }
    ASSERT_TRUE(saw_gamma && saw_expo);
    EXPECT_GT(gamma_ll, expo_ll);
    EXPECT_TRUE(fits.front().family == "gamma" ||
                fits.front().family == "lognormal" ||
                fits.front().family == "weibull" ||
                fits.front().family == "normal");
}

TEST(FitAll, SelectsNormalForGaussianData) {
    const NormalDistribution truth(100.0, 1.0);
    const auto xs = draw(truth, 20000, 8);
    const auto fits = fit_all(xs);
    ASSERT_FALSE(fits.empty());
    // With mean >> sigma, normal / lognormal / gamma are all close; the
    // sorted order must be by log-likelihood.
    for (std::size_t i = 1; i < fits.size(); ++i)
        EXPECT_GE(fits[i - 1].log_likelihood, fits[i].log_likelihood);
}

TEST(FitAll, AicPenalizesParameterCount) {
    const ExponentialDistribution truth(2.0);
    const auto xs = draw(truth, 5000, 9);
    for (const Fit& f : fit_all(xs)) {
        const int params = f.family == "exponential" ? 1 : 2;
        EXPECT_NEAR(f.aic, 2.0 * params - 2.0 * f.log_likelihood, 1e-9);
    }
}

TEST(FitAll, ThrowsOnTinySample) {
    const std::vector<double> xs{1.0};
    EXPECT_THROW(fit_all(xs), std::invalid_argument);
}

TEST(BestFit, ConstantForDegenerateSample) {
    const std::vector<double> xs{0.5, 0.5, 0.5, 0.5};
    const auto d = best_fit(xs);
    EXPECT_DOUBLE_EQ(d->mean(), 0.5);
    EXPECT_DOUBLE_EQ(d->variance(), 0.0);
}

TEST(BestFit, ConstantForEmptySample) {
    const auto d = best_fit(std::vector<double>{});
    EXPECT_DOUBLE_EQ(d->mean(), 0.0);
}

TEST(IncompleteGamma, KnownValues) {
    // P(1, x) = 1 - e^{-x} (exponential CDF).
    EXPECT_NEAR(regularized_gamma_p(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-12);
    // P(0.5, x) = erf(sqrt(x)).
    EXPECT_NEAR(regularized_gamma_p(0.5, 2.0), std::erf(std::sqrt(2.0)),
                1e-10);
    // Median of gamma(3, 1) is ~2.674: P jumps through 0.5 there.
    EXPECT_LT(regularized_gamma_p(3.0, 2.5), 0.5);
    EXPECT_GT(regularized_gamma_p(3.0, 2.9), 0.5);
    EXPECT_DOUBLE_EQ(regularized_gamma_p(3.0, 0.0), 0.0);
}

TEST(CdfHelpers, AgreeWithSampling) {
    // Empirical CDFs of large samples must match the closed forms; this
    // also cross-checks sampler and CDF against each other.
    struct Case {
        std::unique_ptr<Distribution> dist;
        std::function<double(double)> cdf;
    };
    std::vector<Case> cases;
    cases.push_back({std::make_unique<NormalDistribution>(2.0, 0.5),
                     [](double x) { return normal_cdf_value(x, 2.0, 0.5); }});
    cases.push_back(
        {std::make_unique<GammaDistribution>(3.0, 0.2),
         [](double x) { return gamma_cdf_value(x, 3.0, 0.2); }});
    cases.push_back(
        {std::make_unique<WeibullDistribution>(1.7, 2.0),
         [](double x) { return weibull_cdf_value(x, 1.7, 2.0); }});
    cases.push_back(
        {std::make_unique<LogNormalDistribution>(-1.0, 0.3),
         [](double x) { return lognormal_cdf_value(x, -1.0, 0.3); }});
    for (const Case& c : cases) {
        const auto xs = draw(*c.dist, 20000, 77);
        const KsResult ks = ks_test(xs, c.cdf);
        EXPECT_LT(ks.statistic, 0.015) << c.dist->describe();
        EXPECT_GT(ks.p_value, 0.01) << c.dist->describe();
    }
}

TEST(KsTest, RejectsWrongHypothesis) {
    // Exponential data tested against a uniform hypothesis: decisive
    // rejection.
    const ExponentialDistribution truth(1.0);
    const auto xs = draw(truth, 5000, 78);
    const KsResult ks =
        ks_test(xs, [](double x) { return uniform_cdf_value(x, 0.0, 5.0); });
    EXPECT_GT(ks.statistic, 0.2);
    EXPECT_LT(ks.p_value, 1e-6);
}

TEST(KsTest, PerfectFitHasHighPValue) {
    // The fitted best family should pass its own KS test on the data.
    const auto truth = make_delay(0.001, 0.1);
    const auto xs = draw(*truth, 10000, 79);
    const Fit fit = fit_normal(xs);
    const double mu = fit.distribution->mean();
    const double sigma = fit.distribution->stddev();
    const KsResult ks = ks_test(
        xs, [&](double x) { return normal_cdf_value(x, mu, sigma); });
    EXPECT_GT(ks.p_value, 0.001);
}

TEST(KsTestFit, DispatchesOnFamily) {
    const GammaDistribution truth(4.0, 0.5);
    const auto xs = draw(truth, 10000, 80);
    const Fit fit = fit_gamma(xs);
    const KsResult ks = ks_test_fit(fit, xs);
    EXPECT_LT(ks.statistic, 0.02);
    EXPECT_GT(ks.p_value, 0.01);

    const Fit wrong = fit_uniform(xs);
    EXPECT_GT(ks_test_fit(wrong, xs).statistic, 0.1);
}

TEST(KsTest, EmptySampleThrows) {
    EXPECT_THROW(ks_test(std::vector<double>{},
                         [](double) { return 0.5; }),
                 std::invalid_argument);
}

TEST(BestFit, RecoversTimingDistributionEndToEnd) {
    // The paper's workflow: sample timing data, fit, use the winner in the
    // simulation model. Check the winner reproduces mean and cv.
    const auto truth = make_delay(0.001, 0.1);
    const auto xs = draw(*truth, 30000, 10);
    const auto d = best_fit(xs);
    EXPECT_NEAR(d->mean(), 0.001, 2e-5);
    EXPECT_NEAR(d->cv(), 0.1, 0.01);
}

} // namespace
