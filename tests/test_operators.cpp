#include "moea/operators.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "problems/dtlz.hpp"
#include "problems/problem.hpp"

namespace {

using namespace borg;
using namespace borg::moea;

class OperatorFixture : public ::testing::Test {
protected:
    OperatorFixture()
        : problem_(problems::make_problem("dtlz2_3")), rng_(12345) {}

    std::vector<double> random_point() {
        std::vector<double> x(problem_->num_variables());
        for (std::size_t i = 0; i < x.size(); ++i)
            x[i] = rng_.uniform(problem_->lower_bound(i),
                                problem_->upper_bound(i));
        return x;
    }

    /// Generates \p count distinct random parents.
    std::vector<std::vector<double>> make_parents(std::size_t count) {
        std::vector<std::vector<double>> parents;
        for (std::size_t i = 0; i < count; ++i)
            parents.push_back(random_point());
        return parents;
    }

    static ParentView view(const std::vector<std::vector<double>>& parents) {
        ParentView v;
        for (const auto& p : parents) v.emplace_back(p);
        return v;
    }

    void expect_within_bounds(const std::vector<double>& child) {
        ASSERT_EQ(child.size(), problem_->num_variables());
        EXPECT_TRUE(problem_->within_bounds(child));
    }

    std::unique_ptr<problems::Problem> problem_;
    util::Rng rng_;
};

// ----------------------------------------------------------- bounds sweep

TEST_F(OperatorFixture, AllOperatorsRespectBounds) {
    const auto ops = make_borg_operators(*problem_);
    for (const auto& op : ops) {
        for (int trial = 0; trial < 200; ++trial) {
            const auto parents = make_parents(op->arity());
            const auto child = op->apply(view(parents), rng_);
            expect_within_bounds(child);
        }
    }
}

TEST_F(OperatorFixture, EnsembleHasPaperOperators) {
    const auto ops = make_borg_operators(*problem_);
    ASSERT_EQ(ops.size(), 6u);
    EXPECT_EQ(ops[0]->name(), "SBX+PM");
    EXPECT_EQ(ops[1]->name(), "DE+PM");
    EXPECT_EQ(ops[2]->name(), "PCX+PM");
    EXPECT_EQ(ops[3]->name(), "SPX+PM");
    EXPECT_EQ(ops[4]->name(), "UNDX+PM");
    EXPECT_EQ(ops[5]->name(), "UM");
}

TEST_F(OperatorFixture, MultiParentArityIsTen) {
    const auto ops = make_borg_operators(*problem_);
    EXPECT_EQ(ops[0]->arity(), 2u);
    EXPECT_EQ(ops[1]->arity(), 4u);
    EXPECT_EQ(ops[2]->arity(), 10u);
    EXPECT_EQ(ops[3]->arity(), 10u);
    EXPECT_EQ(ops[4]->arity(), 10u);
    EXPECT_EQ(ops[5]->arity(), 1u);
}

// ------------------------------------------------------------------- SBX

TEST_F(OperatorFixture, SbxChildBetweenOrNearParents) {
    const Sbx sbx(*problem_, 15.0, 1.0);
    int inside = 0, total = 0;
    for (int trial = 0; trial < 300; ++trial) {
        const auto parents = make_parents(2);
        const auto child = sbx.apply(view(parents), rng_);
        expect_within_bounds(child);
        for (std::size_t i = 0; i < child.size(); ++i) {
            const double lo = std::min(parents[0][i], parents[1][i]);
            const double hi = std::max(parents[0][i], parents[1][i]);
            ++total;
            // High distribution index concentrates children near parents;
            // most variables stay inside the parent interval.
            if (child[i] >= lo - 1e-9 && child[i] <= hi + 1e-9) ++inside;
        }
    }
    EXPECT_GT(inside, total / 2);
}

TEST_F(OperatorFixture, SbxIdenticalParentsYieldParent) {
    const Sbx sbx(*problem_);
    const auto p = random_point();
    const auto child = sbx.apply(ParentView{p, p}, rng_);
    for (std::size_t i = 0; i < p.size(); ++i)
        EXPECT_DOUBLE_EQ(child[i], p[i]);
}

TEST_F(OperatorFixture, SbxMeanPreserving) {
    // SBX is mean-preserving: E[child_i] equals the parent mean per
    // variable when both symmetric children are kept; our single-child
    // variant picks one of the two at random, preserving the mean too.
    const Sbx sbx(*problem_, 15.0, 1.0);
    const auto parents = make_parents(2);
    double bias = 0.0;
    const int trials = 20000;
    for (int trial = 0; trial < trials; ++trial) {
        const auto child = sbx.apply(view(parents), rng_);
        bias += child[0] - 0.5 * (parents[0][0] + parents[1][0]);
    }
    EXPECT_NEAR(bias / trials, 0.0, 0.01);
}

// -------------------------------------------------------------------- DE

TEST_F(OperatorFixture, DeZeroDifferenceReturnsBase) {
    const DifferentialEvolution de(*problem_, 0.9, 0.5);
    const auto base = random_point();
    const auto donor = random_point();
    // parents[2] == parents[3] makes every step zero: child == base except
    // crossed variables take donor's value + 0.
    const auto same = random_point();
    const auto child =
        de.apply(ParentView{base, donor, same, same}, rng_);
    for (std::size_t i = 0; i < child.size(); ++i)
        EXPECT_TRUE(std::abs(child[i] - base[i]) < 1e-12 ||
                    std::abs(child[i] - donor[i]) < 1e-12);
}

TEST_F(OperatorFixture, DeAlwaysCrossesAtLeastOneVariable) {
    const DifferentialEvolution de(*problem_, 0.0, 0.5); // CR = 0
    int changed_runs = 0;
    for (int trial = 0; trial < 100; ++trial) {
        const auto parents = make_parents(4);
        const auto child = de.apply(view(parents), rng_);
        int changed = 0;
        for (std::size_t i = 0; i < child.size(); ++i)
            if (child[i] != parents[0][i]) ++changed;
        // Exactly the forced index changes (unless clipped back onto the
        // base value, which is measure-zero here).
        if (changed >= 1) ++changed_runs;
        EXPECT_LE(changed, 2);
    }
    EXPECT_GT(changed_runs, 95);
}

TEST_F(OperatorFixture, DeStepSizeScalesPerturbation) {
    const auto base = random_point();
    const auto a = random_point();
    const auto b = random_point();
    const auto c = random_point();
    const DifferentialEvolution small(*problem_, 1.0, 0.1);
    const DifferentialEvolution large(*problem_, 1.0, 0.9);
    util::Rng rng_small(7), rng_large(7); // identical streams
    const auto child_small =
        small.apply(ParentView{base, a, b, c}, rng_small);
    const auto child_large =
        large.apply(ParentView{base, a, b, c}, rng_large);
    for (std::size_t i = 0; i < base.size(); ++i) {
        const double expected_small = a[i] + 0.1 * (b[i] - c[i]);
        const double expected_large = a[i] + 0.9 * (b[i] - c[i]);
        const double clipped_small = std::clamp(expected_small, 0.0, 1.0);
        const double clipped_large = std::clamp(expected_large, 0.0, 1.0);
        EXPECT_NEAR(child_small[i], clipped_small, 1e-12);
        EXPECT_NEAR(child_large[i], clipped_large, 1e-12);
    }
}

// ------------------------------------------------------------------- PCX

TEST_F(OperatorFixture, PcxCentersOnIndexParent) {
    const Pcx pcx(*problem_, 10, 0.1, 0.1);
    const auto parents = make_parents(10);
    double mean_dist_to_index = 0.0, mean_dist_to_other = 0.0;
    const int trials = 500;
    for (int trial = 0; trial < trials; ++trial) {
        const auto child = pcx.apply(view(parents), rng_);
        expect_within_bounds(child);
        double d0 = 0.0, d1 = 0.0;
        for (std::size_t i = 0; i < child.size(); ++i) {
            d0 += (child[i] - parents[0][i]) * (child[i] - parents[0][i]);
            d1 += (child[i] - parents[5][i]) * (child[i] - parents[5][i]);
        }
        mean_dist_to_index += std::sqrt(d0);
        mean_dist_to_other += std::sqrt(d1);
    }
    EXPECT_LT(mean_dist_to_index, mean_dist_to_other);
}

TEST_F(OperatorFixture, PcxDegenerateParentsReturnIndexParent) {
    const Pcx pcx(*problem_);
    const auto p = random_point();
    const ParentView parents{p, p, p, p};
    const auto child = pcx.apply(parents, rng_);
    for (std::size_t i = 0; i < p.size(); ++i)
        EXPECT_DOUBLE_EQ(child[i], p[i]);
}

// ------------------------------------------------------------------- SPX

TEST_F(OperatorFixture, SpxCentroidOfIdenticalParentsFixed) {
    const Spx spx(*problem_, 10, 3.0);
    const auto p = random_point();
    const ParentView parents{p, p, p};
    const auto child = spx.apply(parents, rng_);
    for (std::size_t i = 0; i < p.size(); ++i)
        EXPECT_NEAR(child[i], p[i], 1e-12);
}

TEST_F(OperatorFixture, SpxStaysInExpandedSimplexSpan) {
    // With expansion 1.0 the child lies in the convex hull of the parents.
    const Spx spx(*problem_, 3, 1.0);
    for (int trial = 0; trial < 200; ++trial) {
        const auto parents = make_parents(3);
        const auto child = spx.apply(view(parents), rng_);
        for (std::size_t i = 0; i < child.size(); ++i) {
            double lo = 1e9, hi = -1e9;
            for (const auto& p : parents) {
                lo = std::min(lo, p[i]);
                hi = std::max(hi, p[i]);
            }
            EXPECT_GE(child[i], lo - 1e-9);
            EXPECT_LE(child[i], hi + 1e-9);
        }
    }
}

TEST_F(OperatorFixture, SpxExpansionWidensSpread) {
    const auto parents = make_parents(5);
    const Spx narrow(*problem_, 5, 1.0);
    const Spx wide(*problem_, 5, 3.0);
    double var_narrow = 0.0, var_wide = 0.0;
    std::vector<double> g(problem_->num_variables(), 0.0);
    for (const auto& p : parents)
        for (std::size_t i = 0; i < g.size(); ++i) g[i] += p[i] / 5.0;
    for (int trial = 0; trial < 2000; ++trial) {
        const auto cn = narrow.apply(view(parents), rng_);
        const auto cw = wide.apply(view(parents), rng_);
        for (std::size_t i = 0; i < g.size(); ++i) {
            var_narrow += (cn[i] - g[i]) * (cn[i] - g[i]);
            var_wide += (cw[i] - g[i]) * (cw[i] - g[i]);
        }
    }
    EXPECT_GT(var_wide, var_narrow);
}

// ------------------------------------------------------------------ UNDX

TEST_F(OperatorFixture, UndxCentersOnPrimaryCentroid) {
    const Undx undx(*problem_, 10, 0.5, 0.35);
    const auto parents = make_parents(10);
    std::vector<double> g(problem_->num_variables(), 0.0);
    for (std::size_t p = 0; p < 9; ++p) // primary parents only
        for (std::size_t i = 0; i < g.size(); ++i)
            g[i] += parents[p][i] / 9.0;
    std::vector<double> mean_child(g.size(), 0.0);
    const int trials = 3000;
    for (int trial = 0; trial < trials; ++trial) {
        const auto child = undx.apply(view(parents), rng_);
        expect_within_bounds(child);
        for (std::size_t i = 0; i < g.size(); ++i)
            mean_child[i] += child[i] / trials;
    }
    for (std::size_t i = 0; i < g.size(); ++i) {
        // Clipping skews slightly; centroid must still be close.
        EXPECT_NEAR(mean_child[i], std::clamp(g[i], 0.0, 1.0), 0.05);
    }
}

TEST_F(OperatorFixture, UndxDegenerateParentsReturnCentroid) {
    const Undx undx(*problem_);
    const auto p = random_point();
    const ParentView parents{p, p, p};
    const auto child = undx.apply(parents, rng_);
    for (std::size_t i = 0; i < p.size(); ++i)
        EXPECT_NEAR(child[i], p[i], 1e-12);
}

// -------------------------------------------------------------------- UM

TEST_F(OperatorFixture, UmMutatesRoughlyOneVariable) {
    const UniformMutation um(*problem_); // probability 1/L
    double changed_total = 0.0;
    const int trials = 5000;
    for (int trial = 0; trial < trials; ++trial) {
        const auto p = random_point();
        const auto child = um.apply(ParentView{p}, rng_);
        for (std::size_t i = 0; i < p.size(); ++i)
            if (child[i] != p[i]) changed_total += 1.0;
    }
    EXPECT_NEAR(changed_total / trials, 1.0, 0.1);
}

TEST_F(OperatorFixture, UmProbabilityOneRandomizesEverything) {
    const UniformMutation um(*problem_, 1.0);
    const auto p = random_point();
    const auto child = um.apply(ParentView{p}, rng_);
    int changed = 0;
    for (std::size_t i = 0; i < p.size(); ++i)
        if (child[i] != p[i]) ++changed;
    EXPECT_EQ(changed, static_cast<int>(p.size()));
}

// -------------------------------------------------------------------- PM

TEST_F(OperatorFixture, PmSmallPerturbations) {
    const PolynomialMutation pm(*problem_, 20.0, 1.0);
    double total_shift = 0.0;
    const int trials = 2000;
    for (int trial = 0; trial < trials; ++trial) {
        const auto p = random_point();
        const auto child = pm.apply(ParentView{p}, rng_);
        expect_within_bounds(child);
        for (std::size_t i = 0; i < p.size(); ++i)
            total_shift += std::abs(child[i] - p[i]);
    }
    // Distribution index 20 keeps moves small: average |shift| well under
    // a tenth of the range.
    EXPECT_LT(total_shift / (trials * problem_->num_variables()), 0.1);
}

TEST_F(OperatorFixture, PmDefaultProbabilityIsOneOverL) {
    const PolynomialMutation pm(*problem_);
    double changed_total = 0.0;
    const int trials = 5000;
    for (int trial = 0; trial < trials; ++trial) {
        const auto p = random_point();
        const auto child = pm.apply(ParentView{p}, rng_);
        for (std::size_t i = 0; i < p.size(); ++i)
            if (child[i] != p[i]) changed_total += 1.0;
    }
    EXPECT_NEAR(changed_total / trials, 1.0, 0.1);
}

// -------------------------------------------------------------- composite

TEST_F(OperatorFixture, CompositeAppliesBothStages) {
    CompositeVariation combo(*problem_, std::make_unique<Sbx>(*problem_),
                             std::make_unique<UniformMutation>(*problem_, 1.0));
    EXPECT_EQ(combo.name(), "SBX+UM");
    EXPECT_EQ(combo.arity(), 2u);
    const auto parents = make_parents(2);
    const auto child = combo.apply(view(parents), rng_);
    // UM with probability 1 leaves no variable equal to the SBX output of
    // either parent (almost surely).
    int equal_to_parent = 0;
    for (std::size_t i = 0; i < child.size(); ++i)
        if (child[i] == parents[0][i] || child[i] == parents[1][i])
            ++equal_to_parent;
    EXPECT_LE(equal_to_parent, 1);
}

// --------------------------------------------------------------- validity

TEST_F(OperatorFixture, OperatorsRejectTooFewParents) {
    const Sbx sbx(*problem_);
    const DifferentialEvolution de(*problem_);
    const auto p = random_point();
    EXPECT_THROW(sbx.apply(ParentView{p}, rng_), std::invalid_argument);
    EXPECT_THROW(de.apply(ParentView{p, p}, rng_), std::invalid_argument);
}

TEST_F(OperatorFixture, OperatorsRejectMismatchedParents) {
    const Sbx sbx(*problem_);
    const auto p = random_point();
    const std::vector<double> shorter(p.begin(), p.end() - 1);
    EXPECT_THROW(sbx.apply(ParentView{p, shorter}, rng_),
                 std::invalid_argument);
}

TEST_F(OperatorFixture, BadParametersRejected) {
    EXPECT_THROW(Sbx(*problem_, 0.0), std::invalid_argument);
    EXPECT_THROW(Pcx(*problem_, 1), std::invalid_argument);
    EXPECT_THROW(Spx(*problem_, 3, 0.0), std::invalid_argument);
    EXPECT_THROW(Undx(*problem_, 2), std::invalid_argument);
    EXPECT_THROW(PolynomialMutation(*problem_, -1.0), std::invalid_argument);
}

} // namespace
