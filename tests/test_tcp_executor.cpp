/// Loopback integration tests for the TCP run manager (DESIGN.md §14):
/// the real asynchronous Borg MOEA served over 127.0.0.1 to real
/// borg_worker subprocesses, with the process supervisor injecting the
/// faults the transport must absorb — kill -9 mid-evaluation, a silent
/// stall after handshake, graceful leaves, and late joins.
///
/// The load-bearing assertion everywhere: under the window protocol
/// (IngestOrder::dispatch) the final archive is byte-identical to a
/// thread-executor dispatch run with the same (seed, window, evaluations),
/// no matter what the fleet did. Faults may change *timing*; they must
/// never change *the archive*.
///
/// Every run sets run_timeout_s well under the 30 s ctest cap, so a
/// wedged transport fails as a TcpError with the net stats visible, not
/// as a suite timeout.

#include "parallel/tcp_executor.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <thread>

#include "moea/borg.hpp"
#include "net_test_support.hpp"
#include "obs/event_trace.hpp"
#include "obs/metrics_registry.hpp"
#include "problems/problem.hpp"

namespace {

using namespace borg;
using testnet::archives_identical;
using testnet::reference_archive;
using testnet::spawn_worker;
using testnet::WorkerProc;

constexpr const char* kProblem = "zdt1";
constexpr double kEpsilon = 0.01;
constexpr std::uint64_t kSeed = 20260809;
constexpr std::size_t kWindow = 4;
constexpr std::uint64_t kEvals = 300;

parallel::TcpRunConfig test_config() {
    parallel::TcpRunConfig config;
    config.workers_expected = kWindow;
    config.heartbeat_interval_ms = 50;
    config.heartbeat_timeout_ms = 1000;
    config.run_timeout_s = 20.0;
    return config;
}

struct TcpRun {
    parallel::TcpRunResult result;
    std::vector<moea::Solution> archive;
    obs::EventTrace trace;
    obs::MetricsRegistry metrics;
};

/// Runs the TCP master in-process with the given worker fleet already
/// launched (or launched by \p while_running once the port is known).
template <typename Fleet>
TcpRun run_tcp(const parallel::TcpRunConfig& config, Fleet&& fleet) {
    TcpRun out;
    const auto problem = problems::make_problem(kProblem);
    moea::BorgParams params =
        moea::BorgParams::for_problem(*problem, kEpsilon);
    moea::BorgMoea algorithm(*problem, params, kSeed);
    parallel::TcpMasterSlaveExecutor executor(algorithm, *problem, config);
    auto workers = fleet(executor.port());
    out.result = executor.run(
        kEvals, {.trace = &out.trace, .metrics = &out.metrics});
    out.archive = algorithm.archive().solutions();
    // Bounded reap: a deliberately hung worker ignores Shutdown forever,
    // so waiting unboundedly here would hang the *harness* even though
    // the run itself completed. Healthy workers exit within milliseconds.
    for (auto& w : workers) w.wait_exit_or_kill(2000);
    return out;
}

std::uint64_t counter_value(const obs::MetricsRegistry& metrics,
                            const std::string& name) {
    const obs::Counter* c = metrics.find_counter(name);
    return c != nullptr ? c->value() : 0;
}

// ----------------------------------------------------------- happy path

TEST(TcpExecutor, ByteIdenticalToThreadExecutorAtSameSeedAndWindow) {
    const auto problem = problems::make_problem(kProblem);
    const std::vector<moea::Solution> reference =
        reference_archive(*problem, kEpsilon, kSeed, kWindow, kEvals);

    const TcpRun tcp = run_tcp(test_config(), [&](std::uint16_t port) {
        std::vector<WorkerProc> workers;
        for (int i = 0; i < 4; ++i)
            workers.push_back(spawn_worker(port, kProblem));
        return workers;
    });

    EXPECT_TRUE(tcp.result.run.completed_target);
    EXPECT_EQ(tcp.result.run.evaluations, kEvals);
    EXPECT_EQ(tcp.result.net.connects, 4u);
    EXPECT_EQ(tcp.result.net.results_received, kEvals);
    EXPECT_EQ(tcp.result.run.failed_workers, 0u);
    ASSERT_FALSE(reference.empty());
    EXPECT_TRUE(archives_identical(reference, tcp.archive))
        << "TCP dispatch-mode archive diverged from the thread executor";

    // The engine's uniform event stream is present alongside net.* events.
    EXPECT_EQ(tcp.trace.count(obs::EventKind::run_start), 1u);
    EXPECT_EQ(tcp.trace.count(obs::EventKind::run_end), 1u);
    EXPECT_EQ(tcp.trace.count(obs::EventKind::result), kEvals);
    EXPECT_EQ(tcp.trace.count(obs::EventKind::net_connect), 4u);
    EXPECT_EQ(counter_value(tcp.metrics, "net.results_received"), kEvals);
    EXPECT_EQ(counter_value(tcp.metrics, "net.tasks_sent"), kEvals);
}

TEST(TcpExecutor, LateJoinAndGracefulLeaveConverge) {
    // Two founding workers leave gracefully after 20 evaluations each;
    // two more join late. The run must converge on the same archive.
    const auto problem = problems::make_problem(kProblem);
    const std::vector<moea::Solution> reference =
        reference_archive(*problem, kEpsilon, kSeed, kWindow, kEvals);

    std::thread late_joiner;
    std::vector<WorkerProc> late;
    const TcpRun tcp = run_tcp(test_config(), [&](std::uint16_t port) {
        std::vector<WorkerProc> workers;
        workers.push_back(
            spawn_worker(port, kProblem, {"--leave-after-evals", "20"}));
        workers.push_back(
            spawn_worker(port, kProblem, {"--leave-after-evals", "20"}));
        late_joiner = std::thread([port, &late] {
            std::this_thread::sleep_for(std::chrono::milliseconds(300));
            late.push_back(spawn_worker(port, kProblem));
            late.push_back(spawn_worker(port, kProblem));
        });
        return workers;
    });
    late_joiner.join();
    for (auto& w : late) w.wait_exit();

    EXPECT_TRUE(tcp.result.run.completed_target);
    EXPECT_EQ(tcp.result.net.connects, 4u);
    EXPECT_EQ(tcp.result.net.graceful_leaves, 2u);
    // Goodbyes are not failures: the policy's claim accounting was never
    // disturbed.
    EXPECT_EQ(tcp.result.run.failed_workers, 0u);
    EXPECT_TRUE(archives_identical(reference, tcp.archive))
        << "worker churn changed the dispatch-mode archive";
}

// -------------------------------------------------------- fault injection

TEST(TcpExecutor, Kill9MidEvaluationReassignsAndCompletesIdentically) {
    const auto problem = problems::make_problem(kProblem);
    const std::vector<moea::Solution> reference =
        reference_archive(*problem, kEpsilon, kSeed, kWindow, kEvals);

    std::thread killer;
    const TcpRun tcp = run_tcp(test_config(), [&](std::uint16_t port) {
        std::vector<WorkerProc> workers;
        // The victim's every evaluation blocks 10 s — far beyond the
        // kill point, so SIGKILL provably lands mid-evaluation with a
        // task outstanding.
        workers.push_back(
            spawn_worker(port, kProblem, {"--eval-delay-ms", "10000"}));
        for (int i = 0; i < 3; ++i)
            workers.push_back(spawn_worker(port, kProblem));
        const pid_t victim = workers[0].pid();
        killer = std::thread([victim] {
            std::this_thread::sleep_for(std::chrono::milliseconds(400));
            ::kill(victim, SIGKILL);
        });
        return workers;
    });
    killer.join();

    EXPECT_TRUE(tcp.result.run.completed_target);
    EXPECT_EQ(tcp.result.run.evaluations, kEvals);
    // The death was seen, counted, and the orphaned evaluation re-queued.
    EXPECT_EQ(tcp.result.run.failed_workers, 1u);
    EXPECT_EQ(tcp.result.net.disconnects, 1u);
    EXPECT_GE(tcp.result.net.reassignments, 1u);
    EXPECT_EQ(counter_value(tcp.metrics, "net.reassignments"),
              tcp.result.net.reassignments);
    EXPECT_GE(tcp.trace.count(obs::EventKind::net_reassign), 1u);
    EXPECT_EQ(tcp.trace.count(obs::EventKind::worker_failure), 1u);
    // More Task frames than results: the lost dispatch was re-sent.
    EXPECT_GT(tcp.result.net.tasks_sent, tcp.result.net.results_received);

    EXPECT_TRUE(archives_identical(reference, tcp.archive))
        << "kill -9 + reassignment changed the dispatch-mode archive";
}

TEST(TcpExecutor, Kill9AfterHandshakeBeforeFirstResultReassigns) {
    // The victim completes the handshake (and is handed a task — the
    // window is pre-claimed) but stalls before evaluating anything, then
    // is SIGKILLed. Covers the joined-but-never-produced fault window.
    const auto problem = problems::make_problem(kProblem);
    const std::vector<moea::Solution> reference =
        reference_archive(*problem, kEpsilon, kSeed, kWindow, kEvals);

    std::thread killer;
    const TcpRun tcp = run_tcp(test_config(), [&](std::uint16_t port) {
        std::vector<WorkerProc> workers;
        workers.push_back(
            spawn_worker(port, kProblem, {"--stall-after-handshake"}));
        for (int i = 0; i < 3; ++i)
            workers.push_back(spawn_worker(port, kProblem));
        const pid_t victim = workers[0].pid();
        killer = std::thread([victim] {
            std::this_thread::sleep_for(std::chrono::milliseconds(400));
            ::kill(victim, SIGKILL);
        });
        return workers;
    });
    killer.join();

    EXPECT_TRUE(tcp.result.run.completed_target);
    EXPECT_EQ(tcp.result.run.failed_workers, 1u);
    EXPECT_GE(tcp.result.net.reassignments, 1u);
    EXPECT_TRUE(archives_identical(reference, tcp.archive));
}

TEST(TcpExecutor, HungWorkerIsReapedByHeartbeatTimeout) {
    // No kill at all: the worker simply goes silent after the handshake.
    // Socket EOF never comes, so only the heartbeat timeout can save the
    // run.
    const auto problem = problems::make_problem(kProblem);
    const std::vector<moea::Solution> reference =
        reference_archive(*problem, kEpsilon, kSeed, kWindow, kEvals);

    auto config = test_config();
    config.heartbeat_timeout_ms = 500;
    const TcpRun tcp = run_tcp(config, [&](std::uint16_t port) {
        std::vector<WorkerProc> workers;
        workers.push_back(
            spawn_worker(port, kProblem, {"--stall-after-handshake"}));
        for (int i = 0; i < 3; ++i)
            workers.push_back(spawn_worker(port, kProblem));
        return workers;
    });

    EXPECT_TRUE(tcp.result.run.completed_target);
    EXPECT_GE(tcp.result.net.heartbeat_timeouts, 1u);
    EXPECT_EQ(tcp.result.run.failed_workers, 1u);
    EXPECT_GE(tcp.result.net.reassignments, 1u);
    EXPECT_EQ(counter_value(tcp.metrics, "net.heartbeat_timeouts"),
              tcp.result.net.heartbeat_timeouts);
    EXPECT_TRUE(archives_identical(reference, tcp.archive));
}

// ----------------------------------------------------- handshake policing

TEST(TcpExecutor, MismatchedProblemSignatureIsRejected) {
    // A worker built for the wrong problem must be turned away with a
    // reason (exit code 2) and never dispatched to; the run completes on
    // the correctly-configured fleet.
    // The imposter blocks awaiting its HelloAck until the master starts
    // polling, so its exit code is collected after the run.
    std::optional<WorkerProc> imposter;
    const TcpRun tcp = run_tcp(test_config(), [&](std::uint16_t port) {
        imposter.emplace(spawn_worker(port, "dtlz2_3"));
        std::vector<WorkerProc> workers;
        for (int i = 0; i < 4; ++i)
            workers.push_back(spawn_worker(port, kProblem));
        return workers;
    });

    ASSERT_TRUE(imposter.has_value());
    EXPECT_EQ(imposter->wait_exit(), 2);
    EXPECT_TRUE(tcp.result.run.completed_target);
    EXPECT_EQ(tcp.result.net.handshake_rejects, 1u);
    EXPECT_EQ(tcp.result.net.connects, 4u);
    EXPECT_EQ(counter_value(tcp.metrics, "net.handshake_rejects"), 1u);
}

// -------------------------------------------------------------- guardrails

TEST(TcpExecutor, RunTimeoutSurfacesAsTcpErrorWhenNoWorkersEverJoin) {
    auto config = test_config();
    config.run_timeout_s = 0.3;
    const auto problem = problems::make_problem(kProblem);
    moea::BorgParams params =
        moea::BorgParams::for_problem(*problem, kEpsilon);
    moea::BorgMoea algorithm(*problem, params, kSeed);
    parallel::TcpMasterSlaveExecutor executor(algorithm, *problem, config);
    EXPECT_THROW(executor.run(kEvals), parallel::TcpError);
}

TEST(TcpExecutor, RejectsZeroWorkerWindowAndZeroEvaluations) {
    EXPECT_THROW(
        {
            parallel::TcpRunConfig config;
            config.workers_expected = 0;
            parallel::TcpRunManager manager(config);
        },
        std::invalid_argument);

    const auto problem = problems::make_problem(kProblem);
    moea::BorgParams params =
        moea::BorgParams::for_problem(*problem, kEpsilon);
    moea::BorgMoea algorithm(*problem, params, kSeed);
    parallel::TcpMasterSlaveExecutor executor(algorithm, *problem,
                                              test_config());
    EXPECT_THROW(executor.run(0), std::invalid_argument);
}

} // namespace
