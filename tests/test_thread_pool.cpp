#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace {

using borg::util::ThreadPool;

TEST(ThreadPool, DefaultConcurrencyAtLeastOne) {
    EXPECT_GE(ThreadPool::default_concurrency(), 1u);
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), ThreadPool::default_concurrency());
}

TEST(ThreadPool, ExecutesEveryTask) {
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 1000; ++i)
        pool.submit([&count] { count.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, SingleThreadRunsEverything) {
    ThreadPool pool(1);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i) pool.submit([&count] { ++count; });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturnsImmediately) {
    ThreadPool pool(2);
    pool.wait_idle();
    SUCCEED();
}

TEST(ThreadPool, StealingDrainsUnevenLoad) {
    // All submissions land round-robin, but one long task pins a worker;
    // the rest must finish via stealing well before the long task ends.
    ThreadPool pool(4);
    std::atomic<int> quick{0};
    std::atomic<bool> release{false};
    pool.submit([&release] {
        while (!release.load()) std::this_thread::yield();
    });
    for (int i = 0; i < 200; ++i)
        pool.submit([&quick] { quick.fetch_add(1); });
    while (quick.load() < 200) std::this_thread::yield();
    release.store(true);
    pool.wait_idle();
    EXPECT_EQ(quick.load(), 200);
}

TEST(ThreadPool, TasksMaySubmitMoreTasks) {
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int i = 0; i < 10; ++i) {
        pool.submit([&pool, &count] {
            count.fetch_add(1);
            pool.submit([&count] { count.fetch_add(1); });
        });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, WaitIdleRethrowsFirstTaskException) {
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([] { throw std::runtime_error("boom"); });
    for (int i = 0; i < 50; ++i) pool.submit([&ran] { ran.fetch_add(1); });
    EXPECT_THROW(pool.wait_idle(), std::runtime_error);
    // The rest of the fleet was not poisoned.
    EXPECT_EQ(ran.load(), 50);
    // The failure is consumed: a second wait is clean.
    pool.wait_idle();
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i)
            pool.submit([&count] { count.fetch_add(1); });
    }
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, RejectsEmptyTask) {
    ThreadPool pool(1);
    EXPECT_THROW(pool.submit({}), std::invalid_argument);
}

} // namespace
