#include "moea/nsga2.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "metrics/hypervolume.hpp"
#include "moea/dominance.hpp"
#include "problems/problem.hpp"
#include "problems/reference_set.hpp"

namespace {

using namespace borg;
using namespace borg::moea;

TEST(NondominatedRank, ClassicStaircase) {
    const std::vector<std::vector<double>> objs{
        {1.0, 4.0}, {2.0, 3.0}, {3.0, 2.0}, // front 0
        {2.0, 5.0}, {4.0, 3.0},             // front 1
        {5.0, 5.0},                         // front 2
    };
    const auto ranks = nondominated_rank(objs);
    EXPECT_EQ(ranks[0], 0u);
    EXPECT_EQ(ranks[1], 0u);
    EXPECT_EQ(ranks[2], 0u);
    EXPECT_EQ(ranks[3], 1u);
    EXPECT_EQ(ranks[4], 1u);
    EXPECT_EQ(ranks[5], 2u);
}

TEST(NondominatedRank, AllEqualIsOneFront) {
    const std::vector<std::vector<double>> objs(4, {1.0, 1.0});
    for (const auto r : nondominated_rank(objs)) EXPECT_EQ(r, 0u);
}

TEST(NondominatedRank, ChainIsManyFronts) {
    std::vector<std::vector<double>> objs;
    for (int i = 0; i < 5; ++i) objs.push_back({double(i), double(i)});
    const auto ranks = nondominated_rank(objs);
    for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(ranks[i], i);
}

TEST(CrowdingDistance, ExtremesInfinite) {
    const std::vector<std::vector<double>> objs{
        {0.0, 1.0}, {0.5, 0.5}, {1.0, 0.0}};
    const auto d = crowding_distance(objs);
    EXPECT_TRUE(std::isinf(d[0]));
    EXPECT_TRUE(std::isinf(d[2]));
    EXPECT_TRUE(std::isfinite(d[1]));
    EXPECT_GT(d[1], 0.0);
}

TEST(CrowdingDistance, TwoPointsBothInfinite) {
    const std::vector<std::vector<double>> objs{{0.0, 1.0}, {1.0, 0.0}};
    for (const double d : crowding_distance(objs))
        EXPECT_TRUE(std::isinf(d));
}

TEST(CrowdingDistance, DenserRegionScoresLower) {
    // Middle points: one in a crowded neighborhood, one isolated.
    const std::vector<std::vector<double>> objs{
        {0.0, 1.0}, {0.05, 0.95}, {0.1, 0.9}, {0.6, 0.4}, {1.0, 0.0}};
    const auto d = crowding_distance(objs);
    EXPECT_LT(d[1], d[3]);
}

TEST(Nsga2, FirstGenerationIsRandomPopulation) {
    const auto problem = problems::make_problem("zdt1");
    Nsga2 algo(*problem, 20, 1);
    const auto generation = algo.next_generation();
    EXPECT_EQ(generation.size(), 20u);
    for (const Solution& s : generation) {
        EXPECT_FALSE(s.evaluated);
        EXPECT_TRUE(problem->within_bounds(s.variables));
    }
}

TEST(Nsga2, ReceiveTracksEvaluations) {
    const auto problem = problems::make_problem("zdt1");
    Nsga2 algo(*problem, 16, 2);
    auto generation = algo.next_generation();
    for (Solution& s : generation) evaluate(*problem, s);
    algo.receive_generation(std::move(generation));
    EXPECT_EQ(algo.evaluations(), 16u);
    EXPECT_EQ(algo.population().size(), 16u);
}

TEST(Nsga2, RejectsUnevaluatedGeneration) {
    const auto problem = problems::make_problem("zdt1");
    Nsga2 algo(*problem, 8, 3);
    auto generation = algo.next_generation();
    EXPECT_THROW(algo.receive_generation(std::move(generation)),
                 std::invalid_argument);
}

TEST(Nsga2, ElitismNeverLosesTheBest) {
    const auto problem = problems::make_problem("zdt1");
    Nsga2 algo(*problem, 20, 4);
    double best_f1_sum = std::numeric_limits<double>::infinity();
    run_serial_generational(algo, *problem, 2000,
                            [&](std::uint64_t) {
                                double current = 0.0;
                                for (const auto& f : algo.front())
                                    current += f[0] + f[1];
                                // not strictly monotone per point, but the
                                // front must never be empty
                                EXPECT_FALSE(algo.front().empty());
                                best_f1_sum = std::min(best_f1_sum, current);
                            });
    EXPECT_EQ(algo.evaluations(), 2000u);
}

TEST(Nsga2, ConvergesOnZdt1) {
    const auto problem = problems::make_problem("zdt1");
    Nsga2 algo(*problem, 100, 5);
    run_serial_generational(algo, *problem, 20000);
    const auto refset = problems::reference_set_for("zdt1");
    const double hv = metrics::normalized_hypervolume(algo.front(), refset);
    EXPECT_GT(hv, 0.9);
}

TEST(Nsga2, FrontIsMutuallyNondominated) {
    const auto problem = problems::make_problem("zdt3");
    Nsga2 algo(*problem, 40, 6);
    run_serial_generational(algo, *problem, 4000);
    const auto front = algo.front();
    for (const auto& a : front)
        for (const auto& b : front) {
            if (&a == &b) continue;
            EXPECT_NE(compare_pareto(a, b), Dominance::kDominates);
        }
}

TEST(Nsga2, PopulationSizeStaysFixed) {
    const auto problem = problems::make_problem("zdt2");
    Nsga2 algo(*problem, 30, 7);
    run_serial_generational(algo, *problem, 1500);
    EXPECT_EQ(algo.population().size(), 30u);
}

TEST(Nsga2, RejectsTinyPopulation) {
    const auto problem = problems::make_problem("zdt1");
    EXPECT_THROW(Nsga2(*problem, 1, 1), std::invalid_argument);
}

} // namespace
