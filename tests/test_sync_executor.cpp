#include "parallel/sync_executor.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "metrics/hypervolume.hpp"
#include "models/sync_model.hpp"
#include "problems/problem.hpp"
#include "problems/reference_set.hpp"

namespace {

using namespace borg;
using namespace borg::parallel;
using borg::stats::Distribution;
using borg::stats::make_delay;

struct Fixture {
    std::unique_ptr<problems::Problem> problem =
        problems::make_problem("zdt1");
    std::unique_ptr<Distribution> tf = make_delay(0.01, 0.1);
    std::unique_ptr<Distribution> tc = make_delay(0.000006, 0.0);
    std::unique_ptr<Distribution> ta = make_delay(0.000029, 0.0);

    VirtualClusterConfig cluster(std::uint64_t p,
                                 std::uint64_t seed = 1) const {
        return VirtualClusterConfig{p, tf.get(), tc.get(), ta.get(), seed};
    }
};

TEST(SyncExecutor, RunsWholeGenerations) {
    Fixture f;
    moea::Nsga2 algo(*f.problem, 32, 1);
    SyncMasterSlaveExecutor exec(algo, *f.problem, f.cluster(32));
    const auto result = exec.run(1000);
    // 1000 rounds up to 32 generations of 32.
    EXPECT_EQ(result.evaluations, 1024u);
    EXPECT_EQ(algo.evaluations(), 1024u);
}

TEST(SyncExecutor, ElapsedNearCantuPazPrediction) {
    // Constant T_F: with any variability the generation barrier makes the
    // true elapsed time track max (not mean) of the per-generation draws,
    // which Eq. 6 does not model (that gap is itself tested below).
    Fixture f;
    std::unique_ptr<Distribution> const_tf = make_delay(0.01, 0.0);
    moea::Nsga2 algo(*f.problem, 64, 2);
    VirtualClusterConfig cfg{64, const_tf.get(), f.tc.get(), f.ta.get(), 3};
    SyncMasterSlaveExecutor exec(algo, *f.problem, cfg);
    const auto result = exec.run(6400);
    const models::TimingCosts costs{0.01, 0.000006, 0.000029};
    const double predicted = models::sync_parallel_time(6400, 64, costs);
    EXPECT_NEAR(result.elapsed, predicted, 0.05 * predicted);
}

TEST(SyncExecutor, BarrierMakesItSlowerThanAsyncShape) {
    // With one offspring per node per generation, the sync elapsed time
    // cannot beat N/P * T_F; with variability it is strictly worse.
    Fixture f;
    std::unique_ptr<Distribution> noisy_tf = make_delay(0.01, 0.5);
    moea::Nsga2 algo(*f.problem, 16, 4);
    VirtualClusterConfig cfg{16, noisy_tf.get(), f.tc.get(), f.ta.get(), 4};
    SyncMasterSlaveExecutor exec(algo, *f.problem, cfg);
    const auto result = exec.run(3200);
    EXPECT_GT(result.elapsed, 3200.0 / 16.0 * 0.01);
}

TEST(SyncExecutor, SearchConverges) {
    Fixture f;
    moea::Nsga2 algo(*f.problem, 64, 5);
    SyncMasterSlaveExecutor exec(algo, *f.problem, f.cluster(64));
    exec.run(15000);
    const auto refset = problems::reference_set_for("zdt1");
    const double hv = metrics::normalized_hypervolume(algo.front(), refset);
    EXPECT_GT(hv, 0.85);
}

TEST(SyncExecutor, FewerNodesThanGenerationStillWorks) {
    Fixture f;
    moea::Nsga2 algo(*f.problem, 40, 6);
    // 8 processors share a 40-offspring generation (5 each).
    SyncMasterSlaveExecutor exec(algo, *f.problem, f.cluster(8, 7));
    const auto result = exec.run(400);
    EXPECT_EQ(result.evaluations, 400u);
    // Each generation takes at least 5 sequential T_F on some node.
    EXPECT_GT(result.elapsed, 10 * 5 * 0.008);
}

TEST(SyncExecutor, RecordsGenerationCheckpoints) {
    Fixture f;
    moea::Nsga2 algo(*f.problem, 25, 8);
    const auto refset = problems::reference_set_for("zdt1");
    metrics::HypervolumeNormalizer normalizer(refset);
    TrajectoryRecorder recorder(normalizer, 25);
    SyncMasterSlaveExecutor exec(algo, *f.problem, f.cluster(25, 9));
    exec.run(500, {.recorder = &recorder});
    EXPECT_GE(recorder.points().size(), 10u);
}

TEST(SyncExecutor, DeterministicGivenSeeds) {
    Fixture f;
    moea::Nsga2 a(*f.problem, 16, 10);
    moea::Nsga2 b(*f.problem, 16, 10);
    const auto ra =
        SyncMasterSlaveExecutor(a, *f.problem, f.cluster(16, 11)).run(800);
    const auto rb =
        SyncMasterSlaveExecutor(b, *f.problem, f.cluster(16, 11)).run(800);
    EXPECT_DOUBLE_EQ(ra.elapsed, rb.elapsed);
}

TEST(SyncExecutor, RejectsReuseAndBadInput) {
    Fixture f;
    moea::Nsga2 algo(*f.problem, 8, 12);
    SyncMasterSlaveExecutor exec(algo, *f.problem, f.cluster(8));
    exec.run(8);
    EXPECT_THROW(exec.run(8), std::logic_error);
    moea::Nsga2 fresh(*f.problem, 8, 13);
    SyncMasterSlaveExecutor exec2(fresh, *f.problem, f.cluster(8));
    EXPECT_THROW(exec2.run(0), std::invalid_argument);
}

} // namespace
