#include "problems/reference_set.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace {

using namespace borg::problems;

TEST(SimplexLattice, CountMatchesBinomial) {
    // C(divisions + M - 1, M - 1) points.
    EXPECT_EQ(simplex_lattice(2, 4).size(), 5u);
    EXPECT_EQ(simplex_lattice(3, 4).size(), 15u);
    EXPECT_EQ(simplex_lattice(5, 8).size(), 495u);
}

TEST(SimplexLattice, PointsSumToOne) {
    for (const auto& p : simplex_lattice(4, 6)) {
        const double sum = std::accumulate(p.begin(), p.end(), 0.0);
        EXPECT_NEAR(sum, 1.0, 1e-12);
        for (const double v : p) EXPECT_GE(v, 0.0);
    }
}

TEST(SimplexLattice, ContainsCorners) {
    const auto points = simplex_lattice(3, 5);
    int corners = 0;
    for (const auto& p : points)
        for (const double v : p)
            if (v == 1.0) ++corners;
    EXPECT_EQ(corners, 3);
}

TEST(Dtlz2Reference, PointsOnUnitSphere) {
    for (const auto& p : dtlz2_reference_set(5, 6)) {
        double norm = 0.0;
        for (const double v : p) norm += v * v;
        EXPECT_NEAR(norm, 1.0, 1e-12);
    }
}

TEST(Dtlz1Reference, PointsOnHalfPlane) {
    for (const auto& p : dtlz1_reference_set(3, 10)) {
        const double sum = std::accumulate(p.begin(), p.end(), 0.0);
        EXPECT_NEAR(sum, 0.5, 1e-12);
    }
}

TEST(Uf11Reference, ScalesApplied) {
    const std::vector<double> scales{1.0, 2.0, 1.0, 1.0, 1.0};
    for (const auto& p : uf11_reference_set(4, scales)) {
        double norm = 0.0;
        for (std::size_t i = 0; i < p.size(); ++i) {
            const double unscaled = p[i] / scales[i];
            norm += unscaled * unscaled;
        }
        EXPECT_NEAR(norm, 1.0, 1e-12);
    }
}

TEST(ZdtReferences, MatchClosedForms) {
    for (const auto& p : zdt1_reference_set(100))
        EXPECT_NEAR(p[1], 1.0 - std::sqrt(p[0]), 1e-12);
    for (const auto& p : zdt2_reference_set(100))
        EXPECT_NEAR(p[1], 1.0 - p[0] * p[0], 1e-12);
}

TEST(Zdt3Reference, OnlyNondominatedKept) {
    const auto front = zdt3_reference_set(2000);
    EXPECT_FALSE(front.empty());
    for (const auto& a : front)
        for (const auto& b : front) {
            if (&a == &b) continue;
            const bool dominated = b[0] <= a[0] && b[1] <= a[1] &&
                                   (b[0] < a[0] || b[1] < a[1]);
            EXPECT_FALSE(dominated);
        }
}

TEST(ReferenceSetFor, ResolvesNames) {
    EXPECT_FALSE(reference_set_for("dtlz2_5").empty());
    EXPECT_FALSE(reference_set_for("uf11").empty());
    EXPECT_FALSE(reference_set_for("zdt1").empty());
    EXPECT_EQ(reference_set_for("dtlz2_5")[0].size(), 5u);
    EXPECT_THROW(reference_set_for("mystery"), std::invalid_argument);
}

TEST(ReferenceSetFor, DensityOverride) {
    EXPECT_GT(reference_set_for("dtlz2_3", 30).size(),
              reference_set_for("dtlz2_3", 10).size());
}

} // namespace
