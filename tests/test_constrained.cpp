/// Constraint-handling tests: constraint-domination, the archive's
/// feasibility-seeking phase, and end-to-end constrained optimization on
/// the SRN and welded-beam problems.

#include <gtest/gtest.h>

#include "moea/borg.hpp"
#include "moea/dominance.hpp"
#include "moea/epsilon_archive.hpp"
#include "moea/population.hpp"
#include "problems/engineering.hpp"
#include "problems/problem.hpp"

namespace {

using namespace borg;
using namespace borg::moea;

Solution with_violation(std::vector<double> objectives, double violation) {
    Solution s;
    s.variables = {0.0};
    s.set_objectives(objectives);
    if (violation > 0.0) s.constraints = {violation};
    return s;
}

// ------------------------------------------------------ solution helpers

TEST(ConstrainedSolution, ViolationAccounting) {
    Solution s;
    s.constraints = {0.0, 0.5, 0.25};
    EXPECT_DOUBLE_EQ(s.total_violation(), 0.75);
    EXPECT_FALSE(s.feasible());
    s.constraints = {0.0, 0.0};
    EXPECT_TRUE(s.feasible());
    s.constraints.clear();
    EXPECT_TRUE(s.feasible()); // unconstrained problems are always feasible
}

// ------------------------------------------------- constraint domination

TEST(ConstrainedDominance, FeasibleBeatsInfeasible) {
    const std::vector<double> worse{9.0, 9.0};
    const std::vector<double> better{1.0, 1.0};
    // Even with far worse objectives, feasibility wins.
    EXPECT_EQ(compare_constrained(worse, 0.0, better, 0.1),
              Dominance::kDominates);
    EXPECT_EQ(compare_constrained(better, 0.1, worse, 0.0),
              Dominance::kDominatedBy);
}

TEST(ConstrainedDominance, SmallerViolationWins) {
    const std::vector<double> a{1.0, 1.0};
    const std::vector<double> b{2.0, 2.0};
    EXPECT_EQ(compare_constrained(b, 0.1, a, 0.5), Dominance::kDominates);
}

TEST(ConstrainedDominance, BothFeasibleFallsBackToPareto) {
    const std::vector<double> a{1.0, 1.0};
    const std::vector<double> b{2.0, 2.0};
    EXPECT_EQ(compare_constrained(a, 0.0, b, 0.0), Dominance::kDominates);
    const std::vector<double> c{0.5, 3.0};
    EXPECT_EQ(compare_constrained(a, 0.0, c, 0.0),
              Dominance::kNondominated);
}

TEST(ConstrainedDominance, EqualViolationComparesObjectives) {
    const std::vector<double> a{1.0, 1.0};
    const std::vector<double> b{2.0, 2.0};
    EXPECT_EQ(compare_constrained(a, 0.3, b, 0.3), Dominance::kDominates);
}

// ------------------------------------------------------------ population

TEST(ConstrainedPopulation, FeasibleOffspringEvictsInfeasible) {
    Population pop(2);
    util::Rng rng(1);
    pop.inject(with_violation({1.0, 1.0}, 0.5), rng);
    pop.inject(with_violation({1.0, 1.0}, 0.7), rng);
    EXPECT_TRUE(pop.inject(with_violation({5.0, 5.0}, 0.0), rng));
    int feasible = 0;
    for (std::size_t i = 0; i < pop.size(); ++i)
        if (pop[i].feasible()) ++feasible;
    EXPECT_EQ(feasible, 1);
}

TEST(ConstrainedPopulation, TournamentPrefersFeasible) {
    Population pop(10);
    util::Rng rng(2);
    pop.inject(with_violation({3.0, 3.0}, 0.0), rng);
    for (int i = 1; i < 10; ++i)
        pop.inject(with_violation({1.0, 1.0}, 0.2 + 0.01 * i), rng);
    int feasible_wins = 0;
    for (int trial = 0; trial < 100; ++trial)
        if (pop.tournament_select(10, rng).feasible()) ++feasible_wins;
    EXPECT_GT(feasible_wins, 60);
}

// --------------------------------------------------------------- archive

TEST(ConstrainedArchive, TracksLeastViolatingBeforeFeasibility) {
    EpsilonBoxArchive archive({0.1, 0.1});
    EXPECT_EQ(archive.add(with_violation({0.5, 0.5}, 0.9)),
              ArchiveAdd::kAddedNewBox);
    EXPECT_EQ(archive.add(with_violation({0.2, 0.2}, 1.5)),
              ArchiveAdd::kRejected); // worse violation
    EXPECT_EQ(archive.add(with_violation({0.9, 0.9}, 0.4)),
              ArchiveAdd::kAddedNewBox); // better violation wins
    EXPECT_EQ(archive.size(), 1u);
    EXPECT_DOUBLE_EQ(archive[0].total_violation(), 0.4);
}

TEST(ConstrainedArchive, FirstFeasibleEvictsAnchor) {
    EpsilonBoxArchive archive({0.1, 0.1});
    archive.add(with_violation({0.5, 0.5}, 0.9));
    EXPECT_EQ(archive.add(with_violation({0.85, 0.85}, 0.0)),
              ArchiveAdd::kAddedNewBox);
    EXPECT_EQ(archive.size(), 1u);
    EXPECT_TRUE(archive[0].feasible());
    // Infeasible solutions can never re-enter.
    EXPECT_EQ(archive.add(with_violation({0.1, 0.1}, 0.01)),
              ArchiveAdd::kRejected);
}

TEST(ConstrainedArchive, ViolationImprovementCountsAsProgress) {
    EpsilonBoxArchive archive({0.1, 0.1});
    archive.add(with_violation({0.5, 0.5}, 0.9));
    const auto progress = archive.epsilon_progress();
    archive.add(with_violation({0.5, 0.5}, 0.5));
    EXPECT_GT(archive.epsilon_progress(), progress);
}

// -------------------------------------------------------------- problems

TEST(Srn, KnownFeasiblePoint) {
    const problems::Srn srn;
    std::vector<double> f(2), v(2);
    srn.evaluate(std::vector<double>{0.0, 5.0}, f, v);
    EXPECT_DOUBLE_EQ(f[0], 4.0 + 16.0 + 2.0);
    EXPECT_DOUBLE_EQ(f[1], -16.0);
    EXPECT_DOUBLE_EQ(v[0], 0.0); // 25 <= 225
    EXPECT_DOUBLE_EQ(v[1], 0.0); // 0 - 15 + 10 <= 0
}

TEST(Srn, ConstraintViolationsDetected) {
    const problems::Srn srn;
    std::vector<double> f(2), v(2);
    srn.evaluate(std::vector<double>{15.0, 15.0}, f, v);
    EXPECT_GT(v[0], 0.0);        // 450 > 225: radius constraint violated
    EXPECT_DOUBLE_EQ(v[1], 0.0); // 15 - 45 + 10 = -20 <= 0: satisfied
}

TEST(Srn, SecondConstraintSign) {
    const problems::Srn srn;
    std::vector<double> f(2), v(2);
    // g2: x1 - 3 x2 + 10 <= 0; x = (5, 0) gives 15 > 0: violated.
    srn.evaluate(std::vector<double>{5.0, 0.0}, f, v);
    EXPECT_GT(v[1], 0.0);
    srn.evaluate(std::vector<double>{-15.0, 0.0}, f, v);
    EXPECT_DOUBLE_EQ(v[1], 0.0);
}

TEST(WeldedBeam, ReasonableDesignIsFeasible) {
    const problems::WeldedBeam beam;
    // A sturdy (expensive) design satisfies all constraints.
    std::vector<double> f(2), v(4);
    beam.evaluate(std::vector<double>{2.0, 5.0, 9.0, 4.0}, f, v);
    for (const double violation : v) EXPECT_DOUBLE_EQ(violation, 0.0);
    EXPECT_GT(f[0], 0.0);
    EXPECT_GT(f[1], 0.0);
}

TEST(WeldedBeam, FlimsyDesignViolates) {
    const problems::WeldedBeam beam;
    std::vector<double> f(2), v(4);
    beam.evaluate(std::vector<double>{0.125, 0.1, 0.1, 0.125}, f, v);
    double total = 0.0;
    for (const double violation : v) total += violation;
    EXPECT_GT(total, 0.0);
}

TEST(WeldedBeam, GeometryConstraintHBound) {
    const problems::WeldedBeam beam;
    std::vector<double> f(2), v(4);
    beam.evaluate(std::vector<double>{3.0, 5.0, 9.0, 1.0}, f, v);
    EXPECT_GT(v[2], 0.0); // h = 3 > b = 1
}

// ------------------------------------------------------------ end to end

TEST(ConstrainedBorg, SolvesSrn) {
    const auto problem = problems::make_problem("srn");
    BorgParams params;
    params.epsilons = {1.0, 1.0}; // SRN objectives span hundreds of units
    BorgMoea algo(*problem, params, 5);
    run_serial(algo, *problem, 20000);

    ASSERT_GT(algo.archive().size(), 10u);
    for (std::size_t i = 0; i < algo.archive().size(); ++i) {
        const Solution& s = algo.archive()[i];
        EXPECT_TRUE(s.feasible());
        // Constrained optimum region: f1 roughly in [2, 250].
        EXPECT_LT(s.objectives[0], 300.0);
    }
}

TEST(ConstrainedBorg, FindsFeasibleWeldedBeams) {
    const auto problem = problems::make_problem("welded_beam");
    BorgParams params;
    params.epsilons = {0.05, 0.0005};
    BorgMoea algo(*problem, params, 6);
    run_serial(algo, *problem, 20000);

    ASSERT_GT(algo.archive().size(), 5u);
    double best_cost = 1e300;
    for (std::size_t i = 0; i < algo.archive().size(); ++i) {
        const Solution& s = algo.archive()[i];
        EXPECT_TRUE(s.feasible());
        best_cost = std::min(best_cost, s.objectives[0]);
    }
    // Known near-optimal minimum-cost welded beams cost ~2.4-4; anything
    // below 10 demonstrates genuine constrained convergence.
    EXPECT_LT(best_cost, 10.0);
}

} // namespace
