#include "moea/dominance.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using namespace borg::moea;

TEST(Pareto, StrictDomination) {
    const std::vector<double> a{1.0, 2.0};
    const std::vector<double> b{2.0, 3.0};
    EXPECT_EQ(compare_pareto(a, b), Dominance::kDominates);
    EXPECT_EQ(compare_pareto(b, a), Dominance::kDominatedBy);
    EXPECT_TRUE(dominates(a, b));
    EXPECT_FALSE(dominates(b, a));
}

TEST(Pareto, WeakDominationCounts) {
    const std::vector<double> a{1.0, 2.0};
    const std::vector<double> b{1.0, 3.0};
    EXPECT_EQ(compare_pareto(a, b), Dominance::kDominates);
}

TEST(Pareto, Nondominated) {
    const std::vector<double> a{1.0, 3.0};
    const std::vector<double> b{2.0, 2.0};
    EXPECT_EQ(compare_pareto(a, b), Dominance::kNondominated);
    EXPECT_FALSE(dominates(a, b));
}

TEST(Pareto, Equal) {
    const std::vector<double> a{1.0, 2.0, 3.0};
    EXPECT_EQ(compare_pareto(a, a), Dominance::kEqual);
    EXPECT_FALSE(dominates(a, a));
}

TEST(Pareto, SingleObjective) {
    const std::vector<double> a{1.0};
    const std::vector<double> b{2.0};
    EXPECT_EQ(compare_pareto(a, b), Dominance::kDominates);
}

TEST(EpsilonBox, IndexIsFloorDivision) {
    const std::vector<double> f{0.25, 0.99, -0.1};
    const std::vector<double> eps{0.1, 0.1, 0.1};
    const auto box = epsilon_box(f, eps);
    EXPECT_EQ(box[0], 2);
    EXPECT_EQ(box[1], 9);
    EXPECT_EQ(box[2], -1); // floor handles negatives correctly
}

TEST(EpsilonBox, PerObjectiveEpsilons) {
    const std::vector<double> f{0.25, 0.25};
    const std::vector<double> eps{0.1, 0.25};
    const auto box = epsilon_box(f, eps);
    EXPECT_EQ(box[0], 2);
    EXPECT_EQ(box[1], 1);
}

TEST(EpsilonBox, NearbyPointsShareBox) {
    const std::vector<double> eps{0.1, 0.1};
    const auto b1 = epsilon_box(std::vector<double>{0.51, 0.32}, eps);
    const auto b2 = epsilon_box(std::vector<double>{0.59, 0.39}, eps);
    EXPECT_EQ(b1, b2);
}

TEST(BoxComparison, MirrorsPareto) {
    const std::vector<std::int64_t> a{1, 2};
    const std::vector<std::int64_t> b{2, 3};
    const std::vector<std::int64_t> c{0, 5};
    EXPECT_EQ(compare_boxes(a, b), Dominance::kDominates);
    EXPECT_EQ(compare_boxes(b, a), Dominance::kDominatedBy);
    EXPECT_EQ(compare_boxes(a, c), Dominance::kNondominated);
    EXPECT_EQ(compare_boxes(a, a), Dominance::kEqual);
}

TEST(BoxCorner, DistanceToLowerCorner) {
    const std::vector<double> eps{0.1, 0.1};
    const std::vector<double> f{0.25, 0.31};
    const auto box = epsilon_box(f, eps);
    // Corner is (0.2, 0.3): squared distance 0.05^2 + 0.01^2.
    EXPECT_NEAR(distance_to_box_corner(f, box, eps), 0.0026, 1e-12);
}

TEST(BoxCorner, CornerItselfIsZero) {
    const std::vector<double> eps{0.5};
    const std::vector<double> f{1.0};
    const auto box = epsilon_box(f, eps);
    EXPECT_DOUBLE_EQ(distance_to_box_corner(f, box, eps), 0.0);
}

} // namespace
