#include "parallel/trajectory.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "problems/reference_set.hpp"

namespace {

using namespace borg;
using namespace borg::parallel;

struct Fixture : ::testing::Test {
    Fixture()
        : refset(problems::zdt1_reference_set(200)), normalizer(refset) {}

    /// Front with a tunable quality knob: shift the true front outward.
    metrics::Front shifted_front(double shift) const {
        metrics::Front out;
        for (const auto& p : refset)
            out.push_back({p[0] + shift, p[1] + shift});
        return out;
    }

    problems::ReferenceSet refset;
    metrics::HypervolumeNormalizer normalizer;
};

TEST_F(Fixture, CheckpointsAtInterval) {
    TrajectoryRecorder recorder(normalizer, 100);
    int supplier_calls = 0;
    auto supplier = [&] {
        ++supplier_calls;
        return shifted_front(0.1);
    };
    for (std::uint64_t e = 1; e <= 1000; ++e)
        recorder.on_result(0.001 * static_cast<double>(e), e, supplier);
    EXPECT_EQ(recorder.points().size(), 10u);
    EXPECT_EQ(supplier_calls, 10); // supplier only invoked at checkpoints
}

TEST_F(Fixture, SkipsToLatestWhenResultsArriveInBursts) {
    TrajectoryRecorder recorder(normalizer, 10);
    auto supplier = [&] { return shifted_front(0.1); };
    // One callback jumps far past several checkpoints.
    recorder.on_result(1.0, 55, supplier);
    EXPECT_EQ(recorder.points().size(), 1u);
    recorder.on_result(2.0, 60, supplier);
    EXPECT_EQ(recorder.points().size(), 2u);
}

TEST_F(Fixture, FinalizeAddsTerminalPoint) {
    TrajectoryRecorder recorder(normalizer, 100);
    auto supplier = [&] { return shifted_front(0.05); };
    recorder.on_result(1.0, 100, supplier);
    recorder.finalize(2.5, 142, supplier);
    ASSERT_EQ(recorder.points().size(), 2u);
    EXPECT_DOUBLE_EQ(recorder.points().back().time, 2.5);
    EXPECT_EQ(recorder.points().back().evaluations, 142u);
}

TEST_F(Fixture, FinalizeIsIdempotentAtSameEvaluationCount) {
    TrajectoryRecorder recorder(normalizer, 100);
    auto supplier = [&] { return shifted_front(0.05); };
    recorder.on_result(1.0, 100, supplier);
    recorder.finalize(1.0, 100, supplier);
    EXPECT_EQ(recorder.points().size(), 1u);
}

TEST_F(Fixture, TimeToThresholdFindsFirstCrossing) {
    TrajectoryRecorder recorder(normalizer, 10);
    // Quality improves over time: shift shrinks.
    const double shifts[] = {0.5, 0.2, 0.05, 0.0};
    std::uint64_t evals = 0;
    double time = 0.0;
    for (const double shift : shifts) {
        evals += 10;
        time += 1.0;
        recorder.on_result(time, evals, [&] { return shifted_front(shift); });
    }
    const double hv_at_2 = recorder.points()[1].hypervolume;
    const double hv_at_3 = recorder.points()[2].hypervolume;
    ASSERT_LT(hv_at_2, hv_at_3);
    EXPECT_DOUBLE_EQ(recorder.time_to_threshold(hv_at_2), 2.0);
    EXPECT_DOUBLE_EQ(
        recorder.time_to_threshold(0.5 * (hv_at_2 + hv_at_3)), 3.0);
}

TEST_F(Fixture, UnreachedThresholdIsInfinite) {
    TrajectoryRecorder recorder(normalizer, 10);
    recorder.on_result(1.0, 10, [&] { return shifted_front(0.5); });
    EXPECT_TRUE(std::isinf(recorder.time_to_threshold(0.99)));
}

TEST_F(Fixture, FinalHypervolumeIsBestSeen) {
    TrajectoryRecorder recorder(normalizer, 10);
    recorder.on_result(1.0, 10, [&] { return shifted_front(0.1); });
    recorder.on_result(2.0, 20, [&] { return shifted_front(0.3); });
    const double first = recorder.points()[0].hypervolume;
    EXPECT_DOUBLE_EQ(recorder.final_hypervolume(), first);
}

TEST_F(Fixture, RejectsZeroInterval) {
    EXPECT_THROW(TrajectoryRecorder(normalizer, 0), std::invalid_argument);
}

TEST_F(Fixture, DeferredResolveMatchesImmediate) {
    TrajectoryRecorder immediate(normalizer, 10);
    TrajectoryRecorder deferred(normalizer, 10, /*defer_hypervolume=*/true);
    const double shifts[] = {0.5, 0.2, 0.2, 0.05, 0.0};
    std::uint64_t evals = 0;
    for (const double shift : shifts) {
        evals += 10;
        const double time = 0.1 * static_cast<double>(evals);
        immediate.on_result(time, evals,
                            [&] { return shifted_front(shift); });
        deferred.on_result(time, evals, [&] { return shifted_front(shift); });
    }
    EXPECT_EQ(deferred.pending(), 5u);
    deferred.resolve_pending();
    ASSERT_EQ(deferred.points().size(), immediate.points().size());
    for (std::size_t i = 0; i < deferred.points().size(); ++i)
        EXPECT_DOUBLE_EQ(deferred.points()[i].hypervolume,
                         immediate.points()[i].hypervolume);
}

TEST_F(Fixture, ResolveDeduplicatesIdenticalFronts) {
    TrajectoryRecorder recorder(normalizer, 10, /*defer_hypervolume=*/true);
    for (std::uint64_t e = 10; e <= 50; e += 10)
        recorder.on_result(0.1 * static_cast<double>(e), e,
                           [&] { return shifted_front(0.1); });
    const ResolveStats stats = recorder.resolve_pending();
    EXPECT_EQ(stats.resolved, 5u);
    EXPECT_EQ(stats.computed, 1u); // one distinct front across the batch
    const double expected = normalizer.normalized(shifted_front(0.1));
    for (const TrajectoryPoint& p : recorder.points())
        EXPECT_DOUBLE_EQ(p.hypervolume, expected);
}

TEST_F(Fixture, ResolveComputesEachDistinctFrontOnce) {
    TrajectoryRecorder recorder(normalizer, 10, /*defer_hypervolume=*/true);
    const double shifts[] = {0.3, 0.1, 0.3, 0.1};
    std::uint64_t evals = 0;
    for (const double shift : shifts) {
        evals += 10;
        recorder.on_result(0.1 * static_cast<double>(evals), evals,
                           [&] { return shifted_front(shift); });
    }
    const ResolveStats stats = recorder.resolve_pending();
    EXPECT_EQ(stats.resolved, 4u);
    EXPECT_EQ(stats.computed, 2u);
    EXPECT_DOUBLE_EQ(recorder.points()[0].hypervolume,
                     recorder.points()[2].hypervolume);
    EXPECT_DOUBLE_EQ(recorder.points()[1].hypervolume,
                     recorder.points()[3].hypervolume);
    EXPECT_LT(recorder.points()[0].hypervolume,
              recorder.points()[1].hypervolume);
}

TEST_F(Fixture, ResolveSeedsNextBatchWithLastFront) {
    TrajectoryRecorder recorder(normalizer, 10, /*defer_hypervolume=*/true);
    recorder.on_result(1.0, 10, [&] { return shifted_front(0.1); });
    const ResolveStats first = recorder.resolve_pending();
    EXPECT_EQ(first.computed, 1u);
    // The archive did not change: the next batch reuses the cached value.
    for (std::uint64_t e = 20; e <= 40; e += 10)
        recorder.on_result(0.1 * static_cast<double>(e), e,
                           [&] { return shifted_front(0.1); });
    const ResolveStats second = recorder.resolve_pending();
    EXPECT_EQ(second.resolved, 3u);
    EXPECT_EQ(second.computed, 0u);
    for (const TrajectoryPoint& p : recorder.points())
        EXPECT_DOUBLE_EQ(p.hypervolume,
                         recorder.points()[0].hypervolume);
}

TEST_F(Fixture, ResolveOnEmptyPendingIsNoOp) {
    TrajectoryRecorder recorder(normalizer, 10);
    recorder.on_result(1.0, 10, [&] { return shifted_front(0.1); });
    const ResolveStats stats = recorder.resolve_pending();
    EXPECT_EQ(stats.resolved, 0u);
    EXPECT_EQ(stats.computed, 0u);
}

TEST_F(Fixture, ThresholdReadsThrowWhileUnresolved) {
    TrajectoryRecorder recorder(normalizer, 10, /*defer_hypervolume=*/true);
    recorder.on_result(1.0, 10, [&] { return shifted_front(0.1); });
    EXPECT_THROW((void)recorder.time_to_threshold(0.5), std::logic_error);
    EXPECT_THROW((void)recorder.final_hypervolume(), std::logic_error);
    recorder.resolve_pending();
    EXPECT_NO_THROW((void)recorder.final_hypervolume());
}

TEST(FrontDigest, EqualFrontsShareDigestDistinctOnesDiffer) {
    const metrics::Front a{{0.1, 0.9}, {0.5, 0.5}};
    const metrics::Front b{{0.1, 0.9}, {0.5, 0.5}};
    EXPECT_EQ(front_digest(a), front_digest(b));
    // Any perturbation — value, shape, or row order — changes the digest.
    EXPECT_NE(front_digest(a), front_digest({{0.1, 0.9}, {0.5, 0.5001}}));
    EXPECT_NE(front_digest(a), front_digest({{0.1, 0.9}}));
    EXPECT_NE(front_digest(a), front_digest({{0.5, 0.5}, {0.1, 0.9}}));
    EXPECT_NE(front_digest({}), front_digest({{}}));
}

TEST(TimeToThreshold, FreeFunctionOnRawPoints) {
    const std::vector<TrajectoryPoint> points{
        {1.0, 10, 0.2}, {2.0, 20, 0.6}, {3.0, 30, 0.9}};
    EXPECT_DOUBLE_EQ(time_to_threshold(points, 0.1), 1.0);
    EXPECT_DOUBLE_EQ(time_to_threshold(points, 0.6), 2.0);
    EXPECT_DOUBLE_EQ(time_to_threshold(points, 0.7), 3.0);
    EXPECT_TRUE(std::isinf(time_to_threshold(points, 0.95)));
    EXPECT_TRUE(std::isinf(time_to_threshold({}, 0.1)));
}

} // namespace
