#include "parallel/trajectory.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "problems/reference_set.hpp"

namespace {

using namespace borg;
using namespace borg::parallel;

struct Fixture : ::testing::Test {
    Fixture()
        : refset(problems::zdt1_reference_set(200)), normalizer(refset) {}

    /// Front with a tunable quality knob: shift the true front outward.
    metrics::Front shifted_front(double shift) const {
        metrics::Front out;
        for (const auto& p : refset)
            out.push_back({p[0] + shift, p[1] + shift});
        return out;
    }

    problems::ReferenceSet refset;
    metrics::HypervolumeNormalizer normalizer;
};

TEST_F(Fixture, CheckpointsAtInterval) {
    TrajectoryRecorder recorder(normalizer, 100);
    int supplier_calls = 0;
    auto supplier = [&] {
        ++supplier_calls;
        return shifted_front(0.1);
    };
    for (std::uint64_t e = 1; e <= 1000; ++e)
        recorder.on_result(0.001 * static_cast<double>(e), e, supplier);
    EXPECT_EQ(recorder.points().size(), 10u);
    EXPECT_EQ(supplier_calls, 10); // supplier only invoked at checkpoints
}

TEST_F(Fixture, SkipsToLatestWhenResultsArriveInBursts) {
    TrajectoryRecorder recorder(normalizer, 10);
    auto supplier = [&] { return shifted_front(0.1); };
    // One callback jumps far past several checkpoints.
    recorder.on_result(1.0, 55, supplier);
    EXPECT_EQ(recorder.points().size(), 1u);
    recorder.on_result(2.0, 60, supplier);
    EXPECT_EQ(recorder.points().size(), 2u);
}

TEST_F(Fixture, FinalizeAddsTerminalPoint) {
    TrajectoryRecorder recorder(normalizer, 100);
    auto supplier = [&] { return shifted_front(0.05); };
    recorder.on_result(1.0, 100, supplier);
    recorder.finalize(2.5, 142, supplier);
    ASSERT_EQ(recorder.points().size(), 2u);
    EXPECT_DOUBLE_EQ(recorder.points().back().time, 2.5);
    EXPECT_EQ(recorder.points().back().evaluations, 142u);
}

TEST_F(Fixture, FinalizeIsIdempotentAtSameEvaluationCount) {
    TrajectoryRecorder recorder(normalizer, 100);
    auto supplier = [&] { return shifted_front(0.05); };
    recorder.on_result(1.0, 100, supplier);
    recorder.finalize(1.0, 100, supplier);
    EXPECT_EQ(recorder.points().size(), 1u);
}

TEST_F(Fixture, TimeToThresholdFindsFirstCrossing) {
    TrajectoryRecorder recorder(normalizer, 10);
    // Quality improves over time: shift shrinks.
    const double shifts[] = {0.5, 0.2, 0.05, 0.0};
    std::uint64_t evals = 0;
    double time = 0.0;
    for (const double shift : shifts) {
        evals += 10;
        time += 1.0;
        recorder.on_result(time, evals, [&] { return shifted_front(shift); });
    }
    const double hv_at_2 = recorder.points()[1].hypervolume;
    const double hv_at_3 = recorder.points()[2].hypervolume;
    ASSERT_LT(hv_at_2, hv_at_3);
    EXPECT_DOUBLE_EQ(recorder.time_to_threshold(hv_at_2), 2.0);
    EXPECT_DOUBLE_EQ(
        recorder.time_to_threshold(0.5 * (hv_at_2 + hv_at_3)), 3.0);
}

TEST_F(Fixture, UnreachedThresholdIsInfinite) {
    TrajectoryRecorder recorder(normalizer, 10);
    recorder.on_result(1.0, 10, [&] { return shifted_front(0.5); });
    EXPECT_TRUE(std::isinf(recorder.time_to_threshold(0.99)));
}

TEST_F(Fixture, FinalHypervolumeIsBestSeen) {
    TrajectoryRecorder recorder(normalizer, 10);
    recorder.on_result(1.0, 10, [&] { return shifted_front(0.1); });
    recorder.on_result(2.0, 20, [&] { return shifted_front(0.3); });
    const double first = recorder.points()[0].hypervolume;
    EXPECT_DOUBLE_EQ(recorder.final_hypervolume(), first);
}

TEST_F(Fixture, RejectsZeroInterval) {
    EXPECT_THROW(TrajectoryRecorder(normalizer, 0), std::invalid_argument);
}

TEST(TimeToThreshold, FreeFunctionOnRawPoints) {
    const std::vector<TrajectoryPoint> points{
        {1.0, 10, 0.2}, {2.0, 20, 0.6}, {3.0, 30, 0.9}};
    EXPECT_DOUBLE_EQ(time_to_threshold(points, 0.1), 1.0);
    EXPECT_DOUBLE_EQ(time_to_threshold(points, 0.6), 2.0);
    EXPECT_DOUBLE_EQ(time_to_threshold(points, 0.7), 3.0);
    EXPECT_TRUE(std::isinf(time_to_threshold(points, 0.95)));
    EXPECT_TRUE(std::isinf(time_to_threshold({}, 0.1)));
}

} // namespace
