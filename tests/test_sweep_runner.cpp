#include "bench/sweep_runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "stats/summary.hpp"
#include "util/rng.hpp"

namespace {

using namespace borg;
using bench::SweepOptions;
using bench::SweepReport;
using bench::SweepRunner;

/// The cell workload the determinism tests run: a small deterministic
/// simulation whose randomness derives only from the cell index, mirroring
/// the contract the experiment drivers follow.
std::vector<double> run_grid(std::size_t jobs,
                             const std::vector<std::size_t>& order = {}) {
    constexpr std::size_t kCells = 64;
    std::vector<double> slots(kCells, 0.0);
    SweepRunner runner({.jobs = jobs});
    const SweepReport report = runner.run(kCells, [&](std::size_t i) {
        util::Rng rng(util::derive_seed(
            2013, static_cast<std::uint64_t>(i), 7));
        double acc = 0.0;
        for (int k = 0; k < 100; ++k) acc += rng.uniform();
        slots[i] = acc;
    }, order);
    EXPECT_EQ(report.failures(), 0u);
    return slots;
}

/// Aggregates like the drivers do: serially, in index order, after the
/// sweep. Identical slots must therefore give identical aggregates.
stats::Summary aggregate(const std::vector<double>& slots) {
    return stats::summarize(slots);
}

TEST(SweepRunner, Jobs1VersusJobs4ProduceIdenticalSlots) {
    const auto serial = run_grid(1);
    const auto parallel = run_grid(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "cell " << i;

    const auto a = aggregate(serial);
    const auto b = aggregate(parallel);
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.stddev, b.stddev);
    EXPECT_EQ(a.median, b.median);
}

TEST(SweepRunner, ShuffledSubmissionOrderProducesIdenticalSlots) {
    const auto baseline = run_grid(1);

    std::vector<std::size_t> order(baseline.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    // Deterministic shuffle (Fisher-Yates with the project's RNG).
    util::Rng rng(42);
    for (std::size_t i = order.size(); i-- > 1;)
        std::swap(order[i], order[rng.below(i + 1)]);
    ASSERT_FALSE(std::is_sorted(order.begin(), order.end()));

    const auto shuffled = run_grid(4, order);
    EXPECT_EQ(baseline, shuffled);
}

TEST(SweepRunner, RejectsBadSubmissionOrder) {
    SweepRunner runner({.jobs = 1});
    const auto noop = [](std::size_t) {};
    EXPECT_THROW(runner.run(3, noop, {0, 1}), std::invalid_argument);
    EXPECT_THROW(runner.run(3, noop, {0, 1, 1}), std::invalid_argument);
    EXPECT_THROW(runner.run(3, noop, {0, 1, 3}), std::invalid_argument);
}

TEST(SweepRunner, ThrowingCellIsIsolatedAndReportedPerCell) {
    constexpr std::size_t kCells = 32;
    std::vector<int> ran(kCells, 0);
    SweepRunner runner({.jobs = 4});
    const SweepReport report = runner.run(kCells, [&](std::size_t i) {
        if (i == 5) throw std::runtime_error("cell five exploded");
        if (i == 17) throw std::domain_error("cell seventeen too");
        ran[i] = 1;
    });

    EXPECT_EQ(report.failures(), 2u);
    ASSERT_EQ(report.cells.size(), kCells);
    EXPECT_FALSE(report.cells[5].ok);
    EXPECT_EQ(report.cells[5].error, "cell five exploded");
    EXPECT_FALSE(report.cells[17].ok);
    EXPECT_EQ(report.cells[17].error, "cell seventeen too");

    // Every sibling still ran to completion.
    for (std::size_t i = 0; i < kCells; ++i) {
        if (i == 5 || i == 17) continue;
        EXPECT_TRUE(report.cells[i].ok) << "cell " << i;
        EXPECT_EQ(ran[i], 1) << "cell " << i;
    }

    try {
        report.throw_if_failed();
        FAIL() << "throw_if_failed() did not throw";
    } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("cell 5"), std::string::npos) << what;
        EXPECT_NE(what.find("cell five exploded"), std::string::npos);
        EXPECT_NE(what.find("cell 17"), std::string::npos) << what;
    }
}

TEST(SweepRunner, CleanReportDoesNotThrow) {
    SweepRunner runner({.jobs = 2});
    const SweepReport report = runner.run(8, [](std::size_t) {});
    EXPECT_EQ(report.failures(), 0u);
    EXPECT_NO_THROW(report.throw_if_failed());
}

TEST(SweepRunner, EmitsProgressMetrics) {
    obs::MetricsRegistry metrics;
    std::ostringstream progress;
    SweepRunner runner(
        {.jobs = 2,
         .obs = {.metrics = &metrics},
         .progress = &progress,
         .label = "unit"});
    const SweepReport report = runner.run(10, [&](std::size_t i) {
        if (i == 3) throw std::runtime_error("x");
    });

    const auto* cells = metrics.find_counter("sweep.cells");
    const auto* done = metrics.find_counter("sweep.cells_done");
    const auto* failed = metrics.find_counter("sweep.cells_failed");
    const auto* seconds = metrics.find_histogram("sweep.cell_seconds");
    const auto* elapsed = metrics.find_gauge("sweep.elapsed_seconds");
    ASSERT_NE(cells, nullptr);
    ASSERT_NE(done, nullptr);
    ASSERT_NE(failed, nullptr);
    ASSERT_NE(seconds, nullptr);
    ASSERT_NE(elapsed, nullptr);
    EXPECT_EQ(cells->value(), 10u);
    // cells_done counts every finished cell, ok or not.
    EXPECT_EQ(done->value(), 10u);
    EXPECT_EQ(failed->value(), 1u);
    EXPECT_EQ(seconds->count(), 10u);
    EXPECT_GE(elapsed->value(), 0.0);
    EXPECT_GE(report.elapsed_seconds, 0.0);

    // Progress lines carry the label and go to the progress stream only.
    EXPECT_NE(progress.str().find("unit"), std::string::npos);
}

TEST(SweepRunner, ZeroCellsIsANoOp) {
    obs::MetricsRegistry metrics;
    SweepRunner runner({.jobs = 1, .obs = {.metrics = &metrics}});
    const SweepReport report = runner.run(0, [](std::size_t) {
        FAIL() << "cell function must not run";
    });
    EXPECT_TRUE(report.cells.empty());
    EXPECT_EQ(report.failures(), 0u);
}

TEST(SweepRunner, ParseJobsDefaultsToAutoAndRejectsZero) {
    {
        const char* argv[] = {"prog"};
        const util::CliArgs args(1, argv);
        EXPECT_EQ(bench::parse_jobs(args), 0u);
    }
    {
        const char* argv[] = {"prog", "--jobs", "3"};
        const util::CliArgs args(3, argv);
        EXPECT_EQ(bench::parse_jobs(args), 3u);
    }
    {
        const char* argv[] = {"prog", "--jobs", "0"};
        const util::CliArgs args(3, argv);
        EXPECT_THROW(bench::parse_jobs(args), std::invalid_argument);
    }
}

} // namespace
