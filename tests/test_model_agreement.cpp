/// Statistical agreement tests between the three model layers (DESIGN.md
/// §2) and the mergeable-statistics layer the sweep engine relies on:
///
///  * below master saturation (P < P_UB, Eq. 3) the discrete-event
///    simulation must reproduce the analytical runtime (Eq. 2) to within a
///    small tolerance — the regime where the paper reports both agree;
///  * above saturation the simulation must exceed Eq. 2 (whose known
///    failure mode is underestimating contention) and track the saturating
///    closed form instead;
///  * merged moments (stats::Accumulator / Summary / obs::Histogram) must
///    match single-pass computation to 1e-12 under any partitioning and
///    permutation of the sample — the property that makes sweep results
///    independent of scheduling.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <span>
#include <utility>
#include <vector>

#include "models/analytical.hpp"
#include "models/simulation_model.hpp"
#include "obs/metrics_registry.hpp"
#include "stats/distribution.hpp"
#include "stats/summary.hpp"
#include "util/rng.hpp"

namespace {

using namespace borg;

// The paper's Section VI constants: T_C = 6 us, T_A = 60 us, T_F = 10 ms,
// giving P_UB = T_F / (2 T_C + T_A) ~= 139 (Eq. 3).
constexpr double kTf = 0.01;
constexpr double kTc = 6e-6;
constexpr double kTa = 60e-6;
constexpr std::uint64_t kEvals = 20000;

models::SimulationResult simulate(std::uint64_t processors) {
    const stats::ConstantDistribution tf(kTf);
    const stats::ConstantDistribution tc(kTc);
    const stats::ConstantDistribution ta(kTa);
    const models::SimulationConfig cfg{kEvals, processors, &tf, &tc, &ta,
                                       2013};
    return models::simulate_async(cfg);
}

TEST(ModelAgreement, SimulationMatchesAnalyticalBelowSaturation) {
    const models::TimingCosts costs{kTf, kTc, kTa};
    const double p_ub = models::processor_upper_bound(costs);
    ASSERT_NEAR(p_ub, 138.9, 0.5); // the paper's worked regime

    for (const std::uint64_t p : {8u, 16u, 32u, 64u}) {
        ASSERT_LT(static_cast<double>(p), p_ub);
        const double predicted = models::async_parallel_time(kEvals, p, costs);
        const double simulated = simulate(p).elapsed;
        EXPECT_NEAR(simulated, predicted, 0.02 * predicted)
            << "P = " << p << ": Eq. 2 and the DES disagree by more than 2% "
            << "below saturation";
    }
}

TEST(ModelAgreement, SimulationExceedsAnalyticalAboveSaturation) {
    const models::TimingCosts costs{kTf, kTc, kTa};
    for (const std::uint64_t p : {512u, 1024u}) {
        ASSERT_GT(static_cast<double>(p),
                  models::processor_upper_bound(costs));
        const double analytical = models::async_parallel_time(kEvals, p, costs);
        const double saturating =
            models::async_parallel_time_saturating(kEvals, p, costs);
        const double simulated = simulate(p).elapsed;
        // Eq. 2's documented failure mode: it underestimates once workers
        // queue for the master.
        EXPECT_GT(simulated, analytical) << "P = " << p;
        // The saturating closed form stays accurate on this side.
        EXPECT_NEAR(simulated, saturating, 0.10 * saturating) << "P = " << p;
    }
}

TEST(ModelAgreement, SaturatedMasterHasNoIdleTime) {
    const auto result = simulate(1024);
    EXPECT_GT(result.master_busy_fraction, 0.95);
    EXPECT_GT(result.contention_rate, 0.5);
}

// ---------------------------------------------------------------------------
// Mergeable statistics: partition + permutation invariance to 1e-12.

std::vector<double> sample_values(std::size_t n, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<double> xs(n);
    for (double& x : xs) x = rng.gaussian(3.0, 1.7);
    return xs;
}

/// Splits [0, n) into uneven contiguous chunks (sizes 1, 2, 3, ...).
std::vector<std::pair<std::size_t, std::size_t>> chunks_of(std::size_t n) {
    std::vector<std::pair<std::size_t, std::size_t>> out;
    std::size_t begin = 0, width = 1;
    while (begin < n) {
        const std::size_t end = std::min(n, begin + width);
        out.emplace_back(begin, end);
        begin = end;
        ++width;
    }
    return out;
}

TEST(MergeableStats, AccumulatorMergeMatchesSinglePass) {
    const auto xs = sample_values(1000, 99);
    stats::Accumulator whole;
    for (const double x : xs) whole.add(x);

    const auto chunks = chunks_of(xs.size());
    std::vector<std::size_t> perm(chunks.size());
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    for (int trial = 0; trial < 3; ++trial) {
        std::reverse(perm.begin(), perm.begin() + trial * 7 + 5);
        stats::Accumulator merged;
        for (const std::size_t c : perm) {
            stats::Accumulator part;
            for (std::size_t i = chunks[c].first; i < chunks[c].second; ++i)
                part.add(xs[i]);
            merged.merge(part);
        }
        EXPECT_EQ(merged.count(), whole.count());
        EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12);
        EXPECT_NEAR(merged.variance(), whole.variance(), 1e-12);
        EXPECT_EQ(merged.min(), whole.min());
        EXPECT_EQ(merged.max(), whole.max());
    }
}

TEST(MergeableStats, AccumulatorMergeEmptySides) {
    stats::Accumulator a, b, empty;
    a.add(1.0);
    a.add(2.0);
    a.merge(empty); // no-op
    EXPECT_EQ(a.count(), 2u);
    EXPECT_NEAR(a.mean(), 1.5, 1e-15);
    b.merge(a); // into empty
    EXPECT_EQ(b.count(), 2u);
    EXPECT_NEAR(b.mean(), 1.5, 1e-15);
    EXPECT_EQ(b.min(), 1.0);
    EXPECT_EQ(b.max(), 2.0);
}

TEST(MergeableStats, SummaryMergeMatchesSinglePassMoments) {
    const auto xs = sample_values(500, 7);
    const stats::Summary whole = stats::summarize(xs);

    const auto chunks = chunks_of(xs.size());
    // Two different merge orders must both match the single pass.
    for (const bool reversed : {false, true}) {
        std::vector<std::size_t> perm(chunks.size());
        std::iota(perm.begin(), perm.end(), std::size_t{0});
        if (reversed) std::reverse(perm.begin(), perm.end());

        stats::Summary pooled;
        for (const std::size_t c : perm) {
            const std::span<const double> part(xs.data() + chunks[c].first,
                                               chunks[c].second -
                                                   chunks[c].first);
            pooled.merge(stats::summarize(part));
        }
        EXPECT_EQ(pooled.count, whole.count);
        EXPECT_NEAR(pooled.mean, whole.mean, 1e-12);
        EXPECT_NEAR(pooled.stddev, whole.stddev, 1e-12);
        EXPECT_EQ(pooled.min, whole.min);
        EXPECT_EQ(pooled.max, whole.max);
        // The median is documented as a count-weighted approximation, not
        // the exact pooled median — sanity-bound it only.
        EXPECT_GE(pooled.median, whole.min);
        EXPECT_LE(pooled.median, whole.max);
    }
}

TEST(MergeableStats, FreeMergeFunctionPoolsTwoSummaries) {
    const std::vector<double> a{1.0, 2.0, 3.0};
    const std::vector<double> b{10.0, 20.0};
    const std::vector<double> all{1.0, 2.0, 3.0, 10.0, 20.0};
    const stats::Summary pooled =
        stats::merge(stats::summarize(a), stats::summarize(b));
    const stats::Summary whole = stats::summarize(all);
    EXPECT_EQ(pooled.count, whole.count);
    EXPECT_NEAR(pooled.mean, whole.mean, 1e-12);
    EXPECT_NEAR(pooled.stddev, whole.stddev, 1e-12);
    EXPECT_EQ(pooled.min, 1.0);
    EXPECT_EQ(pooled.max, 20.0);
}

TEST(MergeableStats, HistogramMergeMatchesSinglePass) {
    const auto xs = sample_values(777, 123);
    obs::Histogram whole;
    for (const double x : xs) whole.observe(x);

    obs::Histogram merged;
    for (const auto& [begin, end] : chunks_of(xs.size())) {
        obs::Histogram part;
        for (std::size_t i = begin; i < end; ++i) part.observe(xs[i]);
        merged.merge(part);
    }
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(merged.variance(), whole.variance(), 1e-12);
    EXPECT_EQ(merged.min(), whole.min());
    EXPECT_EQ(merged.max(), whole.max());
}

} // namespace
