#ifndef BORG_PARALLEL_THREAD_EXECUTOR_HPP
#define BORG_PARALLEL_THREAD_EXECUTOR_HPP

/// \file thread_executor.hpp
/// A physical asynchronous master-slave executor using std::thread workers
/// and message channels — the in-process stand-in for the paper's OpenMPI
/// deployment (DESIGN.md §2).
///
/// Protocol (identical to the MPI implementation):
///  * the master seeds every worker with one offspring;
///  * workers loop: receive work, evaluate (a DelayedProblem physically
///    blocks for the sampled T_F), send the result back;
///  * the master blocks on the shared result channel (MPI_ANY_SOURCE),
///    ingests each result, and immediately dispatches fresh work to that
///    worker — no barriers anywhere.
///
/// Besides demonstrating the production path at workstation scale, this
/// executor is the measurement instrument of the model-calibration
/// workflow: it records real T_A samples (master processing time per
/// result) and per-message channel latencies, which stats::fit_all turns
/// into the distributions the simulation model consumes — the paper's
/// "collect timings on Ranger, fit with R" step.

#include <cstdint>
#include <vector>

#include "moea/borg.hpp"
#include "parallel/message.hpp"
#include "parallel/run_context.hpp"
#include "problems/problem.hpp"

namespace borg::parallel {

struct ThreadRunResult {
    double elapsed = 0.0; ///< wall-clock seconds
    std::uint64_t evaluations = 0;
    /// Measured master processing time (receive + generate) per result.
    std::vector<double> ta_samples;
    /// Measured one-way result-channel latencies (send timestamp to
    /// master pickup), the physical analogue of T_C.
    std::vector<double> tc_samples;
};

class ThreadMasterSlaveExecutor {
public:
    /// \p workers physical worker threads (>= 1); total "processors" is
    /// workers + 1 (the calling thread acts as the master). \p ingest
    /// picks the ingestion discipline: `arrival` is the historical
    /// MPI_ANY_SOURCE behaviour; `dispatch` is the schedule-invariant
    /// window protocol whose archive is byte-identical to any other
    /// transport run with the same seed and window — the determinism
    /// contract the TCP run manager is tested against (DESIGN.md §14).
    explicit ThreadMasterSlaveExecutor(
        std::size_t workers, IngestOrder ingest = IngestOrder::arrival);

    /// Runs the algorithm for \p evaluations results. \p problem is
    /// evaluated concurrently from the worker threads and must be
    /// thread-safe.
    ///
    /// If an evaluation throws inside a worker thread, the exception is
    /// captured, every thread is shut down and joined, and the exception
    /// is rethrown here (it previously escaped the thread body and called
    /// std::terminate). ctx.trace, if given, receives the event stream —
    /// emitted from the master thread only, with times in wall-clock
    /// seconds since run start; ctx.metrics receives instruments under the
    /// "thread." prefix; ctx.recorder is not consulted (wall-clock runs
    /// checkpoint through their own measured samples).
    ThreadRunResult run(moea::BorgMoea& algorithm,
                        const problems::Problem& problem,
                        std::uint64_t evaluations,
                        const RunContext& ctx = {});

private:
    std::size_t workers_;
    IngestOrder ingest_;
};

} // namespace borg::parallel

#endif
