#ifndef BORG_PARALLEL_VIRTUAL_CLUSTER_HPP
#define BORG_PARALLEL_VIRTUAL_CLUSTER_HPP

/// \file virtual_cluster.hpp
/// Shared configuration and results for the virtual-time cluster executors.
///
/// SUBSTITUTION (DESIGN.md §2): the paper ran on TACC Ranger over MPI. We
/// replace the physical cluster with executors that run the *real*
/// algorithm while the clock is simulated: worker evaluation, message
/// transfer and master processing advance a discrete-event virtual clock
/// using configured distributions (T_F, T_C) and either a configured or a
/// *measured* master overhead (T_A). Because the asynchronous protocol's
/// behaviour is a pure function of event ordering, the virtual executor
/// reproduces the Ranger runs' elapsed time, efficiency, and algorithm
/// dynamics without 1024 physical cores.

#include <cstdint>
#include <vector>

#include "des/event_queue.hpp"
#include "stats/distribution.hpp"
#include "stats/summary.hpp"

namespace borg::parallel {

struct VirtualClusterConfig {
    VirtualClusterConfig() = default;
    /// Homogeneous, failure-free cluster (the common case; set
    /// worker_speed / worker_failure_at afterwards for the rest).
    VirtualClusterConfig(std::uint64_t processors_,
                         const stats::Distribution* tf_,
                         const stats::Distribution* tc_,
                         const stats::Distribution* ta_,
                         std::uint64_t seed_)
        : processors(processors_), tf(tf_), tc(tc_), ta(ta_), seed(seed_) {}

    /// Total processors P: one master + P-1 workers. P >= 2.
    std::uint64_t processors = 2;
    /// Function evaluation time distribution (required).
    const stats::Distribution* tf = nullptr;
    /// One-way communication time distribution (required).
    const stats::Distribution* tc = nullptr;
    /// Master algorithm-overhead distribution. nullptr means "measure":
    /// the executor times the real master step (receive + generate) on the
    /// host CPU and uses that as the virtual T_A — the mode that mirrors
    /// how the paper collected T_A on Ranger.
    const stats::Distribution* ta = nullptr;
    /// Seed for the executor's own sampling streams.
    std::uint64_t seed = 1;

    /// Optional heterogeneity: per-worker evaluation-speed multipliers
    /// (worker w's sampled T_F is scaled by worker_speed[w]; 1.0 = nominal,
    /// 2.0 = half-speed straggler). Empty means homogeneous. When set, the
    /// size must equal the worker count (processors - 1).
    std::vector<double> worker_speed;

    /// Optional fault injection: virtual time at which worker w permanently
    /// fails. A failing worker returns its unclaimed work to the pool and
    /// retires before starting its next evaluation (modeling the master's
    /// timeout-and-redispatch recovery); remaining workers absorb the load.
    /// Empty means no failures; +infinity entries never fail. When set, the
    /// size must equal the worker count.
    std::vector<double> worker_failure_at;

    /// Pending-event store for the discrete-event engine. The calendar
    /// queue (default) and the pre-rebuild binary heap produce
    /// byte-identical schedules (DESIGN.md §13); the heap is retained as
    /// the oracle for equivalence gates.
    des::QueuePolicy queue = des::QueuePolicy::calendar;
};

struct VirtualRunResult {
    double elapsed = 0.0; ///< virtual seconds until the N-th result landed
    std::uint64_t evaluations = 0; ///< results ingested (< requested if
                                   ///< every worker failed first)
    /// True iff the requested evaluation count was reached. False means the
    /// run starved — e.g. every worker hit its injected failure time before
    /// the target (total fleet loss) — and `elapsed` is then the time the
    /// last event fired, not a completion time. Callers must check this
    /// rather than inferring completion from `elapsed` or `evaluations`.
    bool completed_target = false;
    std::size_t failed_workers = 0;
    double master_busy_fraction = 0.0;
    double mean_queue_wait = 0.0;
    double contention_rate = 0.0;
    /// The T_A values actually applied (sampled or measured), summarized.
    stats::Summary ta_applied;
    /// The T_F values actually applied, summarized.
    stats::Summary tf_applied;
};

/// Throws std::invalid_argument unless the config is usable (ta may be
/// null; tf and tc may not). The single-master form sizes the per-worker
/// arrays against processors - 1; topologies with more than one master
/// pass their actual worker count explicitly.
void validate(const VirtualClusterConfig& config);
void validate(const VirtualClusterConfig& config, std::uint64_t workers);

} // namespace borg::parallel

#endif
