#include "parallel/cluster_engine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "des/resource.hpp"
#include "obs/event_trace.hpp"
#include "obs/metrics_registry.hpp"
#include "util/rng.hpp"

namespace borg::parallel {

struct ClusterEngine::Group {
    std::unique_ptr<des::Resource> master;
    util::Rng rng{1};
    std::uint64_t evaluations = 0;
    double hold = 0.0;
};

void EventMasterPolicy::record_spawn(ClusterEngine& engine,
                                     const WorkerRef& worker) {
    if (auto* trace = engine.trace())
        trace->record({obs::EventKind::worker_spawn, engine.now(),
                       static_cast<std::int64_t>(worker.global), 0.0, 0});
}

ClusterEngine::ClusterEngine(Setup setup, const RunContext& ctx)
    : setup_(std::move(setup)), ctx_(ctx),
      env_(std::make_unique<des::Environment>(setup_.queue)) {
    // In real-time mode every cost is measured, not sampled, so the
    // distributions are optional.
    if (!setup_.tf && !setup_.real_time)
        throw std::invalid_argument("cluster engine: missing T_F distribution");
    if (!setup_.tc && !setup_.real_time)
        throw std::invalid_argument("cluster engine: missing T_C distribution");
    if (setup_.groups.empty())
        throw std::invalid_argument("cluster engine: no master groups");
    env_->set_trace(ctx_.trace);
    env_->set_metrics(ctx_.metrics);
    for (const GroupSpec& spec : setup_.groups) {
        auto group = std::make_unique<Group>();
        group->master = std::make_unique<des::Resource>(*env_, 1);
        group->master->set_trace_id(spec.trace_id);
        group->rng = util::Rng(spec.rng_seed);
        groups_.push_back(std::move(group));
    }
}

ClusterEngine::~ClusterEngine() = default;

double ClusterEngine::now() const noexcept {
    if (setup_.real_time) {
        if (external_policy_ == nullptr) return 0.0; // before external_begin
        return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             real_start_)
            .count();
    }
    return generational_ ? gen_now_ : env_->now();
}

util::Rng& ClusterEngine::group_rng(std::size_t group) noexcept {
    return groups_[group]->rng;
}

des::Resource& ClusterEngine::group_master(std::size_t group) noexcept {
    return *groups_[group]->master;
}

std::uint64_t
ClusterEngine::group_evaluations(std::size_t group) const noexcept {
    return groups_[group]->evaluations;
}

double ClusterEngine::group_hold(std::size_t group) const noexcept {
    return groups_[group]->hold;
}

double ClusterEngine::speed_of(std::size_t global_worker) const noexcept {
    return setup_.worker_speed.empty() ? 1.0
                                       : setup_.worker_speed[global_worker];
}

double
ClusterEngine::failure_time_of(std::size_t global_worker) const noexcept {
    return setup_.worker_failure_at.empty()
               ? std::numeric_limits<double>::infinity()
               : setup_.worker_failure_at[global_worker];
}

double ClusterEngine::sample_tf(const WorkerRef& worker) {
    const double v =
        setup_.tf->sample(groups_[worker.group]->rng) * speed_of(worker.global);
    tf_applied_.add(v);
    if (h_tf_) h_tf_->observe(v);
    if (ctx_.trace && policy_->trace_samples())
        ctx_.trace->record({obs::EventKind::tf_sample, now(),
                            static_cast<std::int64_t>(worker.global), v, 0});
    return v;
}

double ClusterEngine::sample_tc(std::size_t group, std::int64_t actor) {
    // Real-time mode has no T_C distribution: the draw consumes the
    // measured transport latency fed by the external driver (one value per
    // service; subsequent draws in the same service see 0).
    double v;
    if (setup_.tc) {
        v = setup_.tc->sample(groups_[group]->rng);
    } else {
        v = pending_tc_;
        pending_tc_ = 0.0;
    }
    if (ctx_.trace && policy_->trace_samples())
        ctx_.trace->record({obs::EventKind::tc_sample, now(), actor, v, 0});
    return v;
}

double ClusterEngine::sample_ta(std::size_t group, std::int64_t actor,
                                double measured_seconds) {
    const double v = setup_.ta ? setup_.ta->sample(groups_[group]->rng)
                               : measured_seconds;
    ta_applied_.add(v);
    if (h_ta_) h_ta_->observe(v);
    if (ctx_.trace && policy_->trace_samples())
        ctx_.trace->record({obs::EventKind::ta_sample, now(), actor, v, 0});
    return v;
}

void ClusterEngine::add_wait(double wait) {
    queue_wait_.add(wait);
    if (h_wait_) h_wait_->observe(wait);
}

void ClusterEngine::add_hold(std::size_t group, double hold) {
    groups_[group]->hold += hold;
    if (ctx_.trace)
        ctx_.trace->record({obs::EventKind::master_hold, now(),
                            setup_.groups[group].trace_id, hold, 0});
}

double ClusterEngine::gen_sample_tf(double at, std::int64_t actor,
                                    double speed) {
    const double v = setup_.tf->sample(groups_[0]->rng) * speed;
    tf_applied_.add(v);
    if (h_tf_) h_tf_->observe(v);
    if (ctx_.trace && policy_->trace_samples())
        ctx_.trace->record({obs::EventKind::tf_sample, at, actor, v, 0});
    return v;
}

double ClusterEngine::gen_sample_tc(double at, std::int64_t actor) {
    const double v = setup_.tc->sample(groups_[0]->rng);
    if (ctx_.trace && policy_->trace_samples())
        ctx_.trace->record({obs::EventKind::tc_sample, at, actor, v, 0});
    return v;
}

namespace {

void init_check(std::uint64_t evaluations) {
    if (evaluations == 0)
        throw std::invalid_argument("cluster engine: evaluations == 0");
}

} // namespace

void ClusterEngine::emit_run_start() {
    if (ctx_.trace)
        ctx_.trace->record({obs::EventKind::run_start, now(), -1,
                            static_cast<double>(setup_.processors), target_});
}

des::Process ClusterEngine::worker_loop(EventMasterPolicy& policy,
                                        WorkerRef worker) {
    des::Environment& env = *env_;
    Group& group = *groups_[worker.group];
    des::Resource& master = *group.master;
    const double fail_at = failure_time_of(worker.global);
    std::optional<WorkItem> work;

    // Initial assignment: the master sends the first offspring. Only the
    // message cost T_C occupies the master here; generation cost is
    // charged with the first result.
    {
        const double wait_start = env.now();
        co_await master.acquire();
        add_wait(env.now() - wait_start);
        work = policy.dispatch_initial(*this, worker);
        const double hold =
            sample_tc(worker.group, static_cast<std::int64_t>(worker.global));
        add_hold(worker.group, hold);
        co_await env.delay(hold);
        master.release();
    }

    while (work) {
        // Fault injection: a failed worker returns its claim to the pool
        // (the master re-dispatches via a surviving worker's next
        // interaction) and retires. The offspring is lost with the node.
        if (env.now() >= fail_at) {
            policy.on_worker_failure(*this, worker);
            ++failed_workers_;
            if (ctx_.trace)
                ctx_.trace->record({obs::EventKind::worker_failure, env.now(),
                                    static_cast<std::int64_t>(worker.global),
                                    0.0, 1});
            co_return;
        }

        // Evaluate: real objectives (or nothing, for statistics-only
        // policies), then the virtual clock advances by a sampled T_F.
        policy.evaluate(*work);
        co_await env.delay(sample_tf(worker));

        const double wait_start = env.now();
        co_await master.acquire();
        add_wait(env.now() - wait_start);

        EventMasterPolicy::Service service =
            policy.serve(*this, worker, std::move(*work));
        work = std::move(service.next);
        add_hold(worker.group, service.hold);
        co_await env.delay(service.hold);
        master.release();

        ++group.evaluations;
        ++completed_;
        policy.record_result(*this, worker);
        if (completed_ == target_) {
            finished_ = true;
            finish_time_ = env.now();
            env.stop();
        }
        policy.after_result(*this, worker);
    }
}

// ---------------------------------------------------------- external drive

void ClusterEngine::external_begin(EventMasterPolicy& policy,
                                   std::uint64_t evaluations) {
    if (!setup_.real_time)
        throw std::logic_error(
            "cluster engine: external drive requires Setup.real_time");
    if (external_policy_ != nullptr)
        throw std::logic_error("cluster engine: external run already begun");
    init_check(evaluations);
    policy_ = &policy;
    external_policy_ = &policy;
    target_ = evaluations;
    generational_ = false;
    if (ctx_.metrics) {
        const std::string prefix = policy.prefix();
        h_tf_ = &ctx_.metrics->histogram(prefix + ".tf_seconds");
        h_ta_ = &ctx_.metrics->histogram(prefix + ".ta_seconds");
        h_wait_ = &ctx_.metrics->histogram(prefix + ".queue_wait_seconds");
    }
    real_start_ = std::chrono::steady_clock::now();
    emit_run_start();
}

void ClusterEngine::external_spawn(const WorkerRef& worker) {
    external_policy_->record_spawn(*this, worker);
}

std::optional<WorkItem>
ClusterEngine::external_dispatch_initial(const WorkerRef& worker) {
    return external_policy_->dispatch_initial(*this, worker);
}

void ClusterEngine::external_tf(const WorkerRef& worker,
                                double measured_seconds) {
    tf_applied_.add(measured_seconds);
    if (h_tf_) h_tf_->observe(measured_seconds);
    if (ctx_.trace && external_policy_->trace_samples())
        ctx_.trace->record({obs::EventKind::tf_sample, now(),
                            static_cast<std::int64_t>(worker.global),
                            measured_seconds, 0});
}

ClusterEngine::ExternalServe
ClusterEngine::external_result(const WorkerRef& worker, WorkItem work,
                               double measured_tc) {
    pending_tc_ = measured_tc;
    EventMasterPolicy::Service service =
        external_policy_->serve(*this, worker, std::move(work));
    pending_tc_ = 0.0;
    add_hold(worker.group, service.hold);
    ++groups_[worker.group]->evaluations;
    ++completed_;
    external_policy_->record_result(*this, worker);
    if (completed_ == target_) {
        finished_ = true;
        finish_time_ = now();
    }
    external_policy_->after_result(*this, worker);
    return {std::move(service.next), finished_};
}

void ClusterEngine::external_worker_failure(const WorkerRef& worker) {
    ++failed_workers_;
    if (ctx_.trace)
        ctx_.trace->record({obs::EventKind::worker_failure, now(),
                            static_cast<std::int64_t>(worker.global), 0.0,
                            0});
}

VirtualRunResult ClusterEngine::external_finish() {
    if (external_policy_ == nullptr)
        throw std::logic_error("cluster engine: no external run to finish");
    VirtualRunResult result = collect(now());
    if (ctx_.trace)
        ctx_.trace->record({obs::EventKind::run_end, result.elapsed, -1,
                            result.elapsed, completed_});
    publish_metrics(external_policy_->prefix(), result);
    if (ctx_.metrics)
        external_policy_->publish_extra_metrics(*this, *ctx_.metrics);
    external_policy_->finalize(*this, result);
    return result;
}

VirtualRunResult ClusterEngine::run_events(EventMasterPolicy& policy,
                                           std::uint64_t evaluations) {
    if (setup_.real_time)
        throw std::logic_error(
            "cluster engine: real_time setups are externally driven");
    init_check(evaluations);
    policy_ = &policy;
    target_ = evaluations;
    generational_ = false;
    if (ctx_.metrics) {
        const std::string prefix = policy.prefix();
        h_tf_ = &ctx_.metrics->histogram(prefix + ".tf_seconds");
        h_ta_ = &ctx_.metrics->histogram(prefix + ".ta_seconds");
        h_wait_ = &ctx_.metrics->histogram(prefix + ".queue_wait_seconds");
    }
    emit_run_start();

    std::size_t global = 0;
    for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
        for (std::uint64_t w = 0; w < setup_.groups[gi].workers; ++w) {
            const WorkerRef worker{gi, static_cast<std::size_t>(w), global++};
            policy.record_spawn(*this, worker);
            env_->spawn(worker_loop(policy, worker));
        }
    }
    env_->run();

    VirtualRunResult result = collect(env_->now());
    if (ctx_.trace)
        ctx_.trace->record({obs::EventKind::run_end, result.elapsed, -1,
                            result.elapsed, completed_});
    publish_metrics(policy.prefix(), result);
    if (ctx_.metrics) policy.publish_extra_metrics(*this, *ctx_.metrics);
    policy.finalize(*this, result);
    return result;
}

bool ClusterEngine::reap_dead_workers(double now,
                                      std::vector<std::size_t>& alive,
                                      std::vector<char>& dead) {
    bool any = false;
    for (const std::size_t w : alive) {
        const double fail_at = failure_time_of(w);
        if (now >= fail_at && !dead[w]) {
            dead[w] = 1;
            ++failed_workers_;
            if (ctx_.trace)
                ctx_.trace->record({obs::EventKind::worker_failure, fail_at,
                                    static_cast<std::int64_t>(w), 0.0, 1});
            any = true;
        }
    }
    if (any)
        alive.erase(std::remove_if(alive.begin(), alive.end(),
                                   [&](std::size_t w) { return dead[w]; }),
                    alive.end());
    return any;
}

VirtualRunResult
ClusterEngine::run_generational(GenerationalMasterPolicy& policy,
                                std::uint64_t evaluations) {
    if (setup_.real_time)
        throw std::logic_error(
            "cluster engine: real_time setups are externally driven");
    init_check(evaluations);
    if (groups_.size() != 1)
        throw std::logic_error(
            "cluster engine: generational runs use one master group");
    policy_ = &policy;
    target_ = evaluations;
    generational_ = true;
    if (ctx_.metrics) {
        const std::string prefix = policy.prefix();
        h_tf_ = &ctx_.metrics->histogram(prefix + ".tf_seconds");
        h_ta_ = &ctx_.metrics->histogram(prefix + ".ta_seconds");
        h_wait_ = &ctx_.metrics->histogram(prefix + ".queue_wait_seconds");
    }
    emit_run_start();

    obs::TraceSink* trace = ctx_.trace;
    Group& master = *groups_[0];
    const std::int64_t master_actor = setup_.groups[0].trace_id;
    gen_now_ = 0.0;

    // The master is busy for every serialized send/receive T_C and the
    // generation processing T_A; each contribution is mirrored as a
    // `master_hold` trace event so trace_check can re-sum it.
    const auto hold = [&](double t, double amount) {
        master.hold += amount;
        if (trace)
            trace->record(
                {obs::EventKind::master_hold, t, master_actor, amount, 0});
    };

    const std::size_t worker_count =
        static_cast<std::size_t>(setup_.groups[0].workers);
    std::vector<std::size_t> alive;
    alive.reserve(worker_count);
    for (std::size_t w = 0; w < worker_count; ++w) alive.push_back(w);
    std::vector<char> dead(worker_count, 0);

    struct Done {
        double at;
        std::size_t worker;
    };
    std::vector<Done> done;
    done.reserve(worker_count);

    while (completed_ < target_) {
        // Workers whose failure time has passed never receive another
        // assignment (this matters only for failures injected at or
        // before t = 0; a mid-generation death aborts the run below).
        reap_dead_workers(gen_now_, alive, dead);

        const GenerationalMasterPolicy::Plan plan =
            policy.plan(*this, completed_, target_, alive);
        if (plan.batch == 0 || plan.nodes == 0)
            throw std::logic_error("cluster engine: empty generation plan");

        // Serialized sends to the participating workers (nodes 1..).
        double send_clock = gen_now_;
        done.clear();
        for (std::size_t k = 1; k < plan.nodes; ++k) {
            const double tc =
                gen_sample_tc(send_clock, static_cast<std::int64_t>(k));
            send_clock += tc;
            hold(send_clock, tc);
            done.push_back({send_clock + policy.node_eval_time(
                                             *this, send_clock, k),
                            alive[k - 1]});
        }
        // The master evaluates its own share after the sends.
        const double master_done =
            send_clock + policy.node_eval_time(*this, send_clock, 0);

        // A worker that hits its failure time before its result lands
        // deserts the barrier: the generation can never complete, so the
        // run aborts after the surviving receives (a synchronous protocol
        // has no redispatch path — DESIGN.md §10).
        bool lost = false;
        for (const Done& d : done) {
            if (d.at >= failure_time_of(d.worker)) {
                dead[d.worker] = 1;
                ++failed_workers_;
                if (trace)
                    trace->record({obs::EventKind::worker_failure,
                                   failure_time_of(d.worker),
                                   static_cast<std::int64_t>(d.worker), 0.0,
                                   1});
                lost = true;
            }
        }

        // Serialized receives in completion order, gated by the master's
        // own evaluation. Each receive is a (request, grant) pair on the
        // master: a result that lands while the master is still busy has
        // queued (contended), mirroring the DES resource's accounting.
        std::sort(done.begin(), done.end(),
                  [](const Done& a, const Done& b) { return a.at < b.at; });
        double recv_clock = master_done;
        for (const Done& d : done) {
            if (dead[d.worker]) continue;
            ++gen_acquires_;
            const double start = std::max(recv_clock, d.at);
            const bool waited = recv_clock > d.at;
            if (waited) ++gen_contended_;
            const double wait = start - d.at;
            add_wait(wait);
            if (trace) {
                trace->record({obs::EventKind::acquire_request, d.at,
                               master_actor, 0.0, waited ? 1u : 0u});
                trace->record({obs::EventKind::acquire_grant, start,
                               master_actor, wait, waited ? 1u : 0u});
            }
            const double tc = gen_sample_tc(start, -1);
            hold(start + tc, tc);
            recv_clock = start + tc;
        }
        if (lost) {
            gen_now_ = recv_clock;
            break;
        }

        // Whole-generation processing at the master.
        const GenerationalMasterPolicy::Ingest ingest =
            policy.ingest(*this, plan.batch);
        ta_applied_.add(ingest.ta_per_offspring);
        if (h_ta_) h_ta_->observe(ingest.ta_per_offspring);
        hold(recv_clock + ingest.ta_sync, ingest.ta_sync);
        gen_now_ = recv_clock + ingest.ta_sync;
        if (trace)
            trace->record({obs::EventKind::ta_sample, gen_now_, -1,
                           ingest.ta_per_offspring, 0});

        completed_ += plan.batch;
        if (trace)
            trace->record(
                {obs::EventKind::generation, gen_now_, -1, 0.0, completed_});
        policy.record_generation(*this, gen_now_, completed_);
    }

    if (completed_ >= target_) {
        finished_ = true;
        finish_time_ = gen_now_;
    }
    VirtualRunResult result = collect(gen_now_);
    if (trace)
        trace->record({obs::EventKind::run_end, result.elapsed, -1,
                       result.elapsed, completed_});
    publish_metrics(policy.prefix(), result);
    policy.finalize(*this, result);
    return result;
}

VirtualRunResult ClusterEngine::collect(double elapsed_fallback) {
    VirtualRunResult result;
    result.evaluations = completed_;
    result.completed_target = finished_;
    // A starved run never set finish_time; report the time the simulation
    // actually drained instead.
    result.elapsed = finished_ ? finish_time_ : elapsed_fallback;
    result.failed_workers = failed_workers_;

    double hold_total = 0.0;
    for (const auto& group : groups_) hold_total += group->hold;
    result.master_busy_fraction =
        result.elapsed > 0.0 ? hold_total / result.elapsed : 0.0;
    result.mean_queue_wait = queue_wait_.mean();

    std::uint64_t acquires = gen_acquires_;
    std::uint64_t contended = gen_contended_;
    if (!generational_) {
        for (const auto& group : groups_) {
            acquires += group->master->total_acquires();
            contended += group->master->contended_acquires();
        }
    }
    result.contention_rate =
        acquires > 0
            ? static_cast<double>(contended) / static_cast<double>(acquires)
            : 0.0;

    result.ta_applied.count = ta_applied_.count();
    result.ta_applied.mean = ta_applied_.mean();
    result.ta_applied.stddev = ta_applied_.stddev();
    result.ta_applied.min = ta_applied_.min();
    result.ta_applied.max = ta_applied_.max();
    result.tf_applied.count = tf_applied_.count();
    result.tf_applied.mean = tf_applied_.mean();
    result.tf_applied.stddev = tf_applied_.stddev();
    result.tf_applied.min = tf_applied_.min();
    result.tf_applied.max = tf_applied_.max();
    return result;
}

void ClusterEngine::publish_metrics(const char* prefix,
                                    const VirtualRunResult& result) {
    if (!ctx_.metrics) return;
    const std::string p = prefix;
    ctx_.metrics->counter(p + ".results").inc(result.evaluations);
    ctx_.metrics->counter(p + ".failed_workers")
        .inc(static_cast<std::uint64_t>(result.failed_workers));
    if (!result.completed_target)
        ctx_.metrics->counter(p + ".starved_runs").inc();
    ctx_.metrics->gauge(p + ".elapsed_seconds").set(result.elapsed);
    ctx_.metrics->gauge(p + ".master_busy_fraction")
        .set(result.master_busy_fraction);
    ctx_.metrics->gauge(p + ".contention_rate").set(result.contention_rate);
}

} // namespace borg::parallel
