#ifndef BORG_PARALLEL_MESSAGE_HPP
#define BORG_PARALLEL_MESSAGE_HPP

/// \file message.hpp
/// Blocking message channels for the real-thread master-slave executor.
///
/// The paper's implementation moved decision variables and objectives
/// between the master and workers as fixed-size MPI messages. Here the
/// transport is in-process: a mutex/condition-variable channel with the
/// same semantics as a matched MPI_Send/MPI_Recv pair. The master owns one
/// send channel per worker and all workers share one result channel, which
/// is exactly the MPI_ANY_SOURCE receive loop of the original.

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace borg::parallel {

/// Unbounded MPSC/SPSC blocking queue. close() wakes all receivers;
/// receive() returns std::nullopt once the channel is closed and drained.
template <typename T>
class Channel {
public:
    Channel() = default;
    Channel(const Channel&) = delete;
    Channel& operator=(const Channel&) = delete;

    void send(T value) {
        {
            const std::lock_guard lock(mutex_);
            if (closed_) return; // messages to a closed channel are dropped
            queue_.push_back(std::move(value));
        }
        ready_.notify_one();
    }

    /// Blocks until a message arrives or the channel is closed and empty.
    std::optional<T> receive() {
        std::unique_lock lock(mutex_);
        ready_.wait(lock, [&] { return !queue_.empty() || closed_; });
        if (queue_.empty()) return std::nullopt;
        T value = std::move(queue_.front());
        queue_.pop_front();
        return value;
    }

    void close() {
        {
            const std::lock_guard lock(mutex_);
            closed_ = true;
        }
        ready_.notify_all();
    }

private:
    std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<T> queue_;
    bool closed_ = false;
};

} // namespace borg::parallel

#endif
