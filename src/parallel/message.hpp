#ifndef BORG_PARALLEL_MESSAGE_HPP
#define BORG_PARALLEL_MESSAGE_HPP

/// \file message.hpp
/// Transport-shared message payloads and channels for the physical
/// master-slave executors (threads and TCP).
///
/// The paper's implementation moved decision variables and objectives
/// between the master and workers as fixed-size MPI messages. Here the
/// same payloads ride two transports: an in-process mutex/condition-
/// variable channel with the semantics of a matched MPI_Send/MPI_Recv
/// pair (the thread executor; the master owns one send channel per worker
/// and all workers share one result channel — exactly the MPI_ANY_SOURCE
/// receive loop of the original), and the framed TCP protocol of
/// net/wire.hpp (the socket run manager serializes WorkPayload as a Task
/// frame and ResultPayload as a Result frame).

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "moea/solution.hpp"

namespace borg::parallel {

/// How a physical master ingests results (DESIGN.md §14).
///
///  * `arrival` — classic asynchronous semantics: ingest each result the
///    moment it lands (MPI_ANY_SOURCE order). Maximum throughput, but the
///    archive depends on OS/network scheduling races.
///  * `dispatch` — the schedule-invariant window protocol: results are
///    reordered and ingested strictly in task-sequence order, and each
///    ingest funds the next offspring. The archive becomes a pure
///    function of (seed, window, evaluations) — byte-identical across
///    transports, worker counts below the window, mid-run joins/leaves,
///    and even kill -9 reassignment — at the cost of idling a fast worker
///    while an earlier result is still outstanding.
enum class IngestOrder : std::uint8_t { arrival, dispatch };

/// One evaluation travelling master -> worker. `seq` is the dispatch
/// sequence number (the reorder key under IngestOrder::dispatch).
struct WorkPayload {
    std::uint64_t seq = 0;
    moea::Solution solution;
};

/// One evaluated result travelling worker -> master.
struct ResultPayload {
    std::uint64_t seq = 0;
    std::size_t worker = 0;
    moea::Solution solution;
    std::chrono::steady_clock::time_point sent_at{};
};

/// Unbounded MPSC/SPSC blocking queue. close() wakes all receivers;
/// receive() returns std::nullopt once the channel is closed and drained.
template <typename T>
class Channel {
public:
    Channel() = default;
    Channel(const Channel&) = delete;
    Channel& operator=(const Channel&) = delete;

    void send(T value) {
        {
            const std::lock_guard lock(mutex_);
            if (closed_) return; // messages to a closed channel are dropped
            queue_.push_back(std::move(value));
        }
        ready_.notify_one();
    }

    /// Blocks until a message arrives or the channel is closed and empty.
    std::optional<T> receive() {
        std::unique_lock lock(mutex_);
        ready_.wait(lock, [&] { return !queue_.empty() || closed_; });
        if (queue_.empty()) return std::nullopt;
        T value = std::move(queue_.front());
        queue_.pop_front();
        return value;
    }

    void close() {
        {
            const std::lock_guard lock(mutex_);
            closed_ = true;
        }
        ready_.notify_all();
    }

private:
    std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<T> queue_;
    bool closed_ = false;
};

} // namespace borg::parallel

#endif
