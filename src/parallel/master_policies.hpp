#ifndef BORG_PARALLEL_MASTER_POLICIES_HPP
#define BORG_PARALLEL_MASTER_POLICIES_HPP

/// \file master_policies.hpp
/// Reusable master-policy objects shared by every transport.
///
/// AsyncBorgPolicy — the asynchronous Borg protocol (ingest one result,
/// immediately hand back fresh work) — used to be a private class inside
/// async_executor.cpp, which made the protocol inseparable from the
/// virtual-time transport. The TCP run manager (tcp_executor.hpp) drives
/// the *same object* over real sockets through ClusterEngine's external
/// (real-time) mode, so the scheduling semantics of a distributed run are
/// bit-exact with the simulated one by construction, not by parallel
/// maintenance (DESIGN.md §14).

#include <chrono>
#include <cstdint>

#include "moea/borg.hpp"
#include "parallel/cluster_engine.hpp"
#include "problems/problem.hpp"

namespace borg::parallel {

/// The asynchronous Borg protocol as a master policy: every master
/// interaction ingests one result and immediately hands back fresh work
/// while the evaluation budget lasts (DESIGN.md §10).
class AsyncBorgPolicy final : public EventMasterPolicy {
public:
    AsyncBorgPolicy(moea::BorgMoea& algorithm, const problems::Problem& problem)
        : algorithm_(algorithm), problem_(problem) {}

    const char* prefix() const noexcept override { return "async"; }

    std::optional<WorkItem> dispatch_initial(ClusterEngine& engine,
                                             const WorkerRef& worker) override;
    void evaluate(WorkItem& work) override;
    Service serve(ClusterEngine& engine, const WorkerRef& worker,
                  WorkItem work) override;
    void on_worker_failure(ClusterEngine& engine,
                           const WorkerRef& worker) override;
    void record_result(ClusterEngine& engine, const WorkerRef& worker) override;
    void finalize(ClusterEngine& engine,
                  const VirtualRunResult& result) override;

    std::uint64_t issued() const noexcept { return issued_; }

private:
    moea::BorgMoea& algorithm_;
    const problems::Problem& problem_;
    std::uint64_t issued_ = 0;
};

} // namespace borg::parallel

#endif
