#ifndef BORG_PARALLEL_SYNC_EXECUTOR_HPP
#define BORG_PARALLEL_SYNC_EXECUTOR_HPP

/// \file sync_executor.hpp
/// The synchronous (generational) master-slave MOEA on the virtual-time
/// cluster — the Figure 1 protocol.
///
/// Each generation: the master sends one message per participating worker
/// (serialized T_C), every node — master included — evaluates its share of
/// the generation, results return through serialized T_C receives (the
/// master cannot receive while still evaluating its own offspring), and
/// the whole generation is processed at once (T_A^sync: one T_A per
/// offspring, or the measured receive_generation time). The generation
/// barrier is what the asynchronous design removes; running both executors
/// over the same problem quantifies the cost of that barrier, including
/// its sensitivity to highly variable T_F (Section VI-B's final point).

#include <cstdint>

#include "moea/nsga2.hpp"
#include "parallel/run_context.hpp"
#include "parallel/trajectory.hpp"
#include "parallel/virtual_cluster.hpp"

namespace borg::parallel {

class SyncMasterSlaveExecutor {
public:
    /// \p algorithm must be freshly constructed; offspring are assigned to
    /// nodes round-robin (node 0 is the master).
    SyncMasterSlaveExecutor(moea::GenerationalMoea& algorithm,
                            const problems::Problem& problem,
                            VirtualClusterConfig config);

    /// Runs whole generations until at least \p evaluations results have
    /// been ingested (the final generation is not truncated). ctx.trace,
    /// if given, receives the typed event stream (T_F/T_C/T_A samples,
    /// master holds, synthetic acquire request/grant pairs for the
    /// serialized receives, one `generation` event per barrier —
    /// DESIGN.md §8); ctx.metrics receives instruments under the "sync."
    /// prefix; ctx.recorder is called once per generation.
    ///
    /// Fault injection (worker_failure_at) has barrier semantics: a worker
    /// that dies mid-generation deserts the barrier and the run aborts
    /// after the surviving receives with completed_target == false — a
    /// synchronous protocol has no redispatch path. Workers already dead
    /// at planning time are simply excluded from the round-robin.
    VirtualRunResult run(std::uint64_t evaluations,
                         const RunContext& ctx = {});

private:
    moea::GenerationalMoea& algorithm_;
    const problems::Problem& problem_;
    VirtualClusterConfig config_;
};

} // namespace borg::parallel

#endif
