#include "parallel/thread_executor.hpp"

#include <chrono>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>

#include "parallel/message.hpp"

namespace borg::parallel {

namespace {

using SteadyClock = std::chrono::steady_clock;

struct WorkMessage {
    moea::Solution solution;
};

struct ResultMessage {
    std::size_t worker = 0;
    moea::Solution solution;
    SteadyClock::time_point sent_at;
};

} // namespace

ThreadMasterSlaveExecutor::ThreadMasterSlaveExecutor(std::size_t workers)
    : workers_(workers) {
    if (workers == 0)
        throw std::invalid_argument("thread executor: need >= 1 worker");
}

ThreadRunResult ThreadMasterSlaveExecutor::run(
    moea::BorgMoea& algorithm, const problems::Problem& problem,
    std::uint64_t evaluations) {
    if (evaluations == 0)
        throw std::invalid_argument("thread executor: evaluations == 0");
    if (algorithm.evaluations() != 0)
        throw std::logic_error("thread executor: algorithm already used");

    std::vector<std::unique_ptr<Channel<WorkMessage>>> work_channels;
    work_channels.reserve(workers_);
    for (std::size_t w = 0; w < workers_; ++w)
        work_channels.push_back(std::make_unique<Channel<WorkMessage>>());
    Channel<ResultMessage> results;

    std::vector<std::thread> threads;
    threads.reserve(workers_);
    for (std::size_t w = 0; w < workers_; ++w) {
        threads.emplace_back([&, w] {
            Channel<WorkMessage>& inbox = *work_channels[w];
            for (;;) {
                std::optional<WorkMessage> message = inbox.receive();
                if (!message) return; // channel closed: shut down
                moea::evaluate(problem, message->solution);
                results.send(ResultMessage{w, std::move(message->solution),
                                           SteadyClock::now()});
            }
        });
    }

    ThreadRunResult run_result;
    run_result.ta_samples.reserve(evaluations);
    run_result.tc_samples.reserve(evaluations);

    const auto run_start = SteadyClock::now();
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;

    // Seed every worker with initial work.
    for (std::size_t w = 0; w < workers_ && issued < evaluations; ++w) {
        work_channels[w]->send(WorkMessage{algorithm.next_offspring()});
        ++issued;
    }

    while (completed < evaluations) {
        std::optional<ResultMessage> result = results.receive();
        if (!result)
            throw std::logic_error("thread executor: result channel closed");
        run_result.tc_samples.push_back(
            std::chrono::duration<double>(SteadyClock::now() -
                                          result->sent_at)
                .count());

        const auto ta_start = SteadyClock::now();
        algorithm.receive(std::move(result->solution));
        std::optional<moea::Solution> next;
        if (issued < evaluations) {
            next = algorithm.next_offspring();
            ++issued;
        }
        run_result.ta_samples.push_back(
            std::chrono::duration<double>(SteadyClock::now() - ta_start)
                .count());

        if (next)
            work_channels[result->worker]->send(
                WorkMessage{std::move(*next)});
        ++completed;
    }

    for (auto& channel : work_channels) channel->close();
    for (std::thread& t : threads) t.join();

    run_result.elapsed =
        std::chrono::duration<double>(SteadyClock::now() - run_start).count();
    run_result.evaluations = completed;
    return run_result;
}

} // namespace borg::parallel
