#include "parallel/thread_executor.hpp"

#include <chrono>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "obs/event_trace.hpp"
#include "obs/metrics_registry.hpp"

namespace borg::parallel {

namespace {

using SteadyClock = std::chrono::steady_clock;

} // namespace

ThreadMasterSlaveExecutor::ThreadMasterSlaveExecutor(std::size_t workers,
                                                     IngestOrder ingest)
    : workers_(workers), ingest_(ingest) {
    if (workers == 0)
        throw std::invalid_argument("thread executor: need >= 1 worker");
}

ThreadRunResult ThreadMasterSlaveExecutor::run(
    moea::BorgMoea& algorithm, const problems::Problem& problem,
    std::uint64_t evaluations, const RunContext& ctx) {
    obs::TraceSink* trace = ctx.trace;
    obs::MetricsRegistry* metrics = ctx.metrics;
    if (evaluations == 0)
        throw std::invalid_argument("thread executor: evaluations == 0");
    if (algorithm.evaluations() != 0)
        throw std::logic_error("thread executor: algorithm already used");

    std::vector<std::unique_ptr<Channel<WorkPayload>>> work_channels;
    work_channels.reserve(workers_);
    for (std::size_t w = 0; w < workers_; ++w)
        work_channels.push_back(std::make_unique<Channel<WorkPayload>>());
    Channel<ResultPayload> results;

    // A worker whose evaluation throws parks the exception here and closes
    // the result channel so the master wakes up instead of blocking
    // forever; the master rethrows after joining everyone.
    std::mutex failure_mutex;
    std::exception_ptr worker_failure;

    std::vector<std::thread> threads;
    threads.reserve(workers_);
    for (std::size_t w = 0; w < workers_; ++w) {
        threads.emplace_back([&, w] {
            Channel<WorkPayload>& inbox = *work_channels[w];
            for (;;) {
                std::optional<WorkPayload> message = inbox.receive();
                if (!message) return; // channel closed: shut down
                try {
                    moea::evaluate(problem, message->solution);
                } catch (...) {
                    {
                        const std::lock_guard lock(failure_mutex);
                        if (!worker_failure)
                            worker_failure = std::current_exception();
                    }
                    results.close();
                    return;
                }
                results.send(ResultPayload{message->seq, w,
                                           std::move(message->solution),
                                           SteadyClock::now()});
            }
        });
    }

    // Shuts the fleet down exactly once on every exit path (normal
    // completion, worker failure, or an exception in the master's own
    // receive/generate calls) — the threads reference the channels, so
    // they must be joined before the channels go out of scope.
    bool joined = false;
    const auto shutdown = [&] {
        if (joined) return;
        joined = true;
        for (auto& channel : work_channels) channel->close();
        for (std::thread& t : threads) t.join();
    };
    struct Guard {
        const decltype(shutdown)& fn;
        ~Guard() { fn(); }
    } guard{shutdown};

    ThreadRunResult run_result;
    run_result.ta_samples.reserve(evaluations);
    run_result.tc_samples.reserve(evaluations);

    obs::Histogram* h_ta = nullptr;
    obs::Histogram* h_tc = nullptr;
    if (metrics) {
        h_ta = &metrics->histogram("thread.ta_seconds");
        h_tc = &metrics->histogram("thread.tc_seconds");
    }

    const auto run_start = SteadyClock::now();
    const auto since_start = [&] {
        return std::chrono::duration<double>(SteadyClock::now() - run_start)
            .count();
    };
    if (trace) {
        trace->record({obs::EventKind::run_start, 0.0, -1,
                       static_cast<double>(workers_ + 1), evaluations});
        for (std::size_t w = 0; w < workers_; ++w)
            trace->record({obs::EventKind::worker_spawn, 0.0,
                           static_cast<std::int64_t>(w), 0.0, 0});
    }
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;

    // The master step: ingest one evaluated solution, fund the next task
    // if the budget allows. Returns the new task (unassigned).
    const auto ingest = [&](moea::Solution solution, std::size_t actor)
        -> std::optional<WorkPayload> {
        const auto ta_start = SteadyClock::now();
        algorithm.receive(std::move(solution));
        std::optional<WorkPayload> next;
        if (issued < evaluations) {
            next = WorkPayload{issued, algorithm.next_offspring()};
            ++issued;
        }
        const double ta =
            std::chrono::duration<double>(SteadyClock::now() - ta_start)
                .count();
        run_result.ta_samples.push_back(ta);
        if (h_ta) h_ta->observe(ta);
        if (trace)
            trace->record({obs::EventKind::ta_sample, since_start(),
                           static_cast<std::int64_t>(actor), ta, 0});
        ++completed;
        if (trace) {
            trace->record({obs::EventKind::result, since_start(),
                           static_cast<std::int64_t>(actor), 0.0, completed});
            trace->record({obs::EventKind::archive_snapshot, since_start(),
                           -1, 0.0, algorithm.archive().size()});
        }
        return next;
    };

    // Seed every worker with initial work. Under the window protocol this
    // is the deterministic prefix: offspring 0..W-1 generated before any
    // ingest, in worker order.
    for (std::size_t w = 0; w < workers_ && issued < evaluations; ++w) {
        work_channels[w]->send(WorkPayload{issued, algorithm.next_offspring()});
        ++issued;
    }

    // Dispatch-order state: results parked until their turn, workers
    // parked until a task exists for them.
    std::map<std::uint64_t, ResultPayload> reorder;
    std::deque<WorkPayload> pending_tasks;
    std::deque<std::size_t> idle_workers;
    std::uint64_t next_ingest = 0;

    while (completed < evaluations) {
        std::optional<ResultPayload> result = results.receive();
        if (!result) {
            // The result channel only closes when a worker failed; join
            // the fleet and surface the captured exception.
            shutdown();
            {
                const std::lock_guard lock(failure_mutex);
                if (worker_failure) std::rethrow_exception(worker_failure);
            }
            throw std::logic_error("thread executor: result channel closed");
        }
        const double tc =
            std::chrono::duration<double>(SteadyClock::now() -
                                          result->sent_at)
                .count();
        run_result.tc_samples.push_back(tc);
        if (h_tc) h_tc->observe(tc);
        if (trace)
            trace->record({obs::EventKind::tc_sample, since_start(),
                           static_cast<std::int64_t>(result->worker), tc,
                           0});

        if (ingest_ == IngestOrder::arrival) {
            std::optional<WorkPayload> next =
                ingest(std::move(result->solution), result->worker);
            if (next)
                work_channels[result->worker]->send(std::move(*next));
            continue;
        }

        // Window protocol: park the result and the newly idle worker, then
        // drain the reorder buffer strictly in sequence order. Each ingest
        // may fund one task; tasks meet idle workers FIFO.
        const std::size_t freed = result->worker;
        reorder.emplace(result->seq, std::move(*result));
        idle_workers.push_back(freed);
        for (auto hit = reorder.find(next_ingest); hit != reorder.end();
             hit = reorder.find(next_ingest)) {
            ResultPayload ready = std::move(hit->second);
            reorder.erase(hit);
            ++next_ingest;
            std::optional<WorkPayload> next =
                ingest(std::move(ready.solution), ready.worker);
            if (next) pending_tasks.push_back(std::move(*next));
        }
        while (!pending_tasks.empty() && !idle_workers.empty()) {
            const std::size_t w = idle_workers.front();
            idle_workers.pop_front();
            work_channels[w]->send(std::move(pending_tasks.front()));
            pending_tasks.pop_front();
        }
    }

    shutdown();

    run_result.elapsed =
        std::chrono::duration<double>(SteadyClock::now() - run_start).count();
    run_result.evaluations = completed;
    if (trace)
        trace->record({obs::EventKind::run_end, run_result.elapsed, -1,
                       run_result.elapsed, completed});
    if (metrics) {
        metrics->counter("thread.results").inc(completed);
        metrics->gauge("thread.elapsed_seconds").set(run_result.elapsed);
    }
    return run_result;
}

} // namespace borg::parallel
