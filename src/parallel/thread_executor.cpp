#include "parallel/thread_executor.hpp"

#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "obs/event_trace.hpp"
#include "obs/metrics_registry.hpp"
#include "parallel/message.hpp"

namespace borg::parallel {

namespace {

using SteadyClock = std::chrono::steady_clock;

struct WorkMessage {
    moea::Solution solution;
};

struct ResultMessage {
    std::size_t worker = 0;
    moea::Solution solution;
    SteadyClock::time_point sent_at;
};

} // namespace

ThreadMasterSlaveExecutor::ThreadMasterSlaveExecutor(std::size_t workers)
    : workers_(workers) {
    if (workers == 0)
        throw std::invalid_argument("thread executor: need >= 1 worker");
}

ThreadRunResult ThreadMasterSlaveExecutor::run(
    moea::BorgMoea& algorithm, const problems::Problem& problem,
    std::uint64_t evaluations, const RunContext& ctx) {
    obs::TraceSink* trace = ctx.trace;
    obs::MetricsRegistry* metrics = ctx.metrics;
    if (evaluations == 0)
        throw std::invalid_argument("thread executor: evaluations == 0");
    if (algorithm.evaluations() != 0)
        throw std::logic_error("thread executor: algorithm already used");

    std::vector<std::unique_ptr<Channel<WorkMessage>>> work_channels;
    work_channels.reserve(workers_);
    for (std::size_t w = 0; w < workers_; ++w)
        work_channels.push_back(std::make_unique<Channel<WorkMessage>>());
    Channel<ResultMessage> results;

    // A worker whose evaluation throws parks the exception here and closes
    // the result channel so the master wakes up instead of blocking
    // forever; the master rethrows after joining everyone.
    std::mutex failure_mutex;
    std::exception_ptr worker_failure;

    std::vector<std::thread> threads;
    threads.reserve(workers_);
    for (std::size_t w = 0; w < workers_; ++w) {
        threads.emplace_back([&, w] {
            Channel<WorkMessage>& inbox = *work_channels[w];
            for (;;) {
                std::optional<WorkMessage> message = inbox.receive();
                if (!message) return; // channel closed: shut down
                try {
                    moea::evaluate(problem, message->solution);
                } catch (...) {
                    {
                        const std::lock_guard lock(failure_mutex);
                        if (!worker_failure)
                            worker_failure = std::current_exception();
                    }
                    results.close();
                    return;
                }
                results.send(ResultMessage{w, std::move(message->solution),
                                           SteadyClock::now()});
            }
        });
    }

    // Shuts the fleet down exactly once on every exit path (normal
    // completion, worker failure, or an exception in the master's own
    // receive/generate calls) — the threads reference the channels, so
    // they must be joined before the channels go out of scope.
    bool joined = false;
    const auto shutdown = [&] {
        if (joined) return;
        joined = true;
        for (auto& channel : work_channels) channel->close();
        for (std::thread& t : threads) t.join();
    };
    struct Guard {
        const decltype(shutdown)& fn;
        ~Guard() { fn(); }
    } guard{shutdown};

    ThreadRunResult run_result;
    run_result.ta_samples.reserve(evaluations);
    run_result.tc_samples.reserve(evaluations);

    obs::Histogram* h_ta = nullptr;
    obs::Histogram* h_tc = nullptr;
    if (metrics) {
        h_ta = &metrics->histogram("thread.ta_seconds");
        h_tc = &metrics->histogram("thread.tc_seconds");
    }

    const auto run_start = SteadyClock::now();
    const auto since_start = [&] {
        return std::chrono::duration<double>(SteadyClock::now() - run_start)
            .count();
    };
    if (trace) {
        trace->record({obs::EventKind::run_start, 0.0, -1,
                       static_cast<double>(workers_ + 1), evaluations});
        for (std::size_t w = 0; w < workers_; ++w)
            trace->record({obs::EventKind::worker_spawn, 0.0,
                           static_cast<std::int64_t>(w), 0.0, 0});
    }
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;

    // Seed every worker with initial work.
    for (std::size_t w = 0; w < workers_ && issued < evaluations; ++w) {
        work_channels[w]->send(WorkMessage{algorithm.next_offspring()});
        ++issued;
    }

    while (completed < evaluations) {
        std::optional<ResultMessage> result = results.receive();
        if (!result) {
            // The result channel only closes when a worker failed; join
            // the fleet and surface the captured exception.
            shutdown();
            {
                const std::lock_guard lock(failure_mutex);
                if (worker_failure) std::rethrow_exception(worker_failure);
            }
            throw std::logic_error("thread executor: result channel closed");
        }
        const double tc =
            std::chrono::duration<double>(SteadyClock::now() -
                                          result->sent_at)
                .count();
        run_result.tc_samples.push_back(tc);
        if (h_tc) h_tc->observe(tc);
        if (trace)
            trace->record({obs::EventKind::tc_sample, since_start(),
                           static_cast<std::int64_t>(result->worker), tc,
                           0});

        const auto ta_start = SteadyClock::now();
        algorithm.receive(std::move(result->solution));
        std::optional<moea::Solution> next;
        if (issued < evaluations) {
            next = algorithm.next_offspring();
            ++issued;
        }
        const double ta =
            std::chrono::duration<double>(SteadyClock::now() - ta_start)
                .count();
        run_result.ta_samples.push_back(ta);
        if (h_ta) h_ta->observe(ta);
        if (trace)
            trace->record({obs::EventKind::ta_sample, since_start(),
                           static_cast<std::int64_t>(result->worker), ta,
                           0});

        if (next)
            work_channels[result->worker]->send(
                WorkMessage{std::move(*next)});
        ++completed;
        if (trace) {
            trace->record({obs::EventKind::result, since_start(),
                           static_cast<std::int64_t>(result->worker), 0.0,
                           completed});
            trace->record({obs::EventKind::archive_snapshot, since_start(),
                           -1, 0.0, algorithm.archive().size()});
        }
    }

    shutdown();

    run_result.elapsed =
        std::chrono::duration<double>(SteadyClock::now() - run_start).count();
    run_result.evaluations = completed;
    if (trace)
        trace->record({obs::EventKind::run_end, run_result.elapsed, -1,
                       run_result.elapsed, completed});
    if (metrics) {
        metrics->counter("thread.results").inc(completed);
        metrics->gauge("thread.elapsed_seconds").set(run_result.elapsed);
    }
    return run_result;
}

} // namespace borg::parallel
