#include "parallel/master_policies.hpp"

#include "obs/event_trace.hpp"
#include "parallel/trajectory.hpp"

namespace borg::parallel {

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point start) {
    return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

} // namespace

std::optional<WorkItem>
AsyncBorgPolicy::dispatch_initial(ClusterEngine& engine,
                                  const WorkerRef& worker) {
    (void)worker;
    if (issued_ >= engine.target()) return std::nullopt;
    WorkItem work{algorithm_.next_offspring()};
    ++issued_;
    return work;
}

void AsyncBorgPolicy::evaluate(WorkItem& work) {
    moea::evaluate(problem_, *work.solution);
}

EventMasterPolicy::Service AsyncBorgPolicy::serve(ClusterEngine& engine,
                                                  const WorkerRef& worker,
                                                  WorkItem work) {
    const auto start = SteadyClock::now();
    algorithm_.receive(std::move(*work.solution));
    std::optional<WorkItem> next;
    if (issued_ < engine.target()) {
        next = WorkItem{algorithm_.next_offspring()};
        ++issued_;
    }
    const double measured = seconds_since(start);
    const auto actor = static_cast<std::int64_t>(worker.global);
    // Protocol order: the master ingests + generates (T_A), then the
    // result-return and fresh-work messages are priced (T_C twice).
    const double ta = engine.sample_ta(worker.group, actor, measured);
    const double tc1 = engine.sample_tc(worker.group, actor);
    const double tc2 = engine.sample_tc(worker.group, actor);
    return {tc1 + ta + tc2, std::move(next)};
}

void AsyncBorgPolicy::on_worker_failure(ClusterEngine& engine,
                                        const WorkerRef& worker) {
    (void)engine;
    (void)worker;
    --issued_; // the lost offspring's claim returns to the pool
}

void AsyncBorgPolicy::record_result(ClusterEngine& engine,
                                    const WorkerRef& worker) {
    if (auto* trace = engine.trace()) {
        trace->record({obs::EventKind::result, engine.now(),
                       static_cast<std::int64_t>(worker.global), 0.0,
                       engine.completed()});
        trace->record({obs::EventKind::archive_snapshot, engine.now(), -1, 0.0,
                       algorithm_.archive().size()});
    }
    if (auto* recorder = engine.recorder())
        recorder->on_result(engine.now(), engine.completed(), [this] {
            return algorithm_.archive().objective_vectors();
        });
}

void AsyncBorgPolicy::finalize(ClusterEngine& engine,
                               const VirtualRunResult& result) {
    if (auto* recorder = engine.recorder())
        recorder->finalize(result.elapsed, result.evaluations, [this] {
            return algorithm_.archive().objective_vectors();
        });
}

} // namespace borg::parallel
