#include "parallel/trajectory.hpp"

#include <condition_variable>
#include <cstring>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "util/thread_pool.hpp"

namespace borg::parallel {

std::uint64_t front_digest(const metrics::Front& front) noexcept {
    std::uint64_t hash = 1469598103934665603ull; // FNV offset basis
    const auto mix = [&hash](std::uint64_t v) {
        for (int b = 0; b < 8; ++b) {
            hash ^= (v >> (8 * b)) & 0xffu;
            hash *= 1099511628211ull; // FNV prime
        }
    };
    mix(front.size());
    for (const auto& row : front) {
        mix(row.size());
        for (const double x : row) {
            std::uint64_t bits = 0;
            std::memcpy(&bits, &x, sizeof(bits));
            mix(bits);
        }
    }
    return hash;
}

TrajectoryRecorder::TrajectoryRecorder(
    const metrics::HypervolumeNormalizer& normalizer, std::uint64_t interval,
    bool defer_hypervolume)
    : normalizer_(normalizer),
      interval_(interval),
      next_checkpoint_(interval),
      defer_(defer_hypervolume) {
    if (interval == 0)
        throw std::invalid_argument("trajectory: interval must be >= 1");
}

void TrajectoryRecorder::checkpoint(
    double time, std::uint64_t evaluations,
    const std::function<metrics::Front()>& front) {
    TrajectoryPoint point;
    point.time = time;
    point.evaluations = evaluations;
    if (defer_) {
        pending_.emplace_back(points_.size(), front());
    } else {
        metrics::Front f = front();
        if (last_valid_ && f == last_front_) {
            point.hypervolume = last_value_; // archive unchanged
        } else {
            point.hypervolume = normalizer_.normalized(f);
            last_front_ = std::move(f);
            last_value_ = point.hypervolume;
            last_valid_ = true;
        }
    }
    points_.push_back(point);
}

ResolveStats TrajectoryRecorder::resolve_pending(util::ThreadPool* pool) {
    ResolveStats stats;
    stats.resolved = pending_.size();
    if (pending_.empty()) return stats;

    // Deduplicate the batch: one slot per distinct front, candidates
    // matched by digest and confirmed by full comparison. Slot order is
    // first-occurrence order, so it depends only on the recorded fronts.
    struct Unique {
        const metrics::Front* front = nullptr;
        double value = 0.0;
        bool known = false;
    };
    std::vector<Unique> uniques;
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_digest;
    // Seed with the most recently resolved front: a batch whose leading
    // checkpoints still show the previous batch's archive reuses its
    // value without recomputing.
    if (last_valid_) {
        by_digest[front_digest(last_front_)].push_back(0);
        uniques.push_back({&last_front_, last_value_, true});
    }
    constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
    std::vector<std::size_t> slot(pending_.size(), kNone);
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        const metrics::Front& f = pending_[i].second;
        auto& candidates = by_digest[front_digest(f)];
        std::size_t found = kNone;
        for (const std::size_t c : candidates) {
            if (*uniques[c].front == f) {
                found = c;
                break;
            }
        }
        if (found == kNone) {
            found = uniques.size();
            uniques.push_back({&f});
            candidates.push_back(found);
        }
        slot[i] = found;
    }

    std::vector<std::size_t> todo;
    for (std::size_t u = 0; u < uniques.size(); ++u)
        if (!uniques[u].known) todo.push_back(u);
    stats.computed = todo.size();

    if (pool != nullptr && todo.size() > 1) {
        // Fan the distinct fronts out across the pool. Each task writes
        // only its own slot; the single mutex orders the completion count
        // and publishes the values, so the result is byte-identical to
        // the serial loop for any worker count or schedule. The recorder
        // cannot use ThreadPool::wait_idle (the pool may be shared), so
        // completion is counted here.
        std::mutex mutex;
        std::condition_variable done_cv;
        std::size_t remaining = todo.size();
        std::exception_ptr first_error;
        for (const std::size_t u : todo) {
            pool->submit([this, &uniques, u, &mutex, &done_cv, &remaining,
                          &first_error] {
                double value = 0.0;
                std::exception_ptr error;
                try {
                    value = normalizer_.normalized(*uniques[u].front);
                } catch (...) {
                    error = std::current_exception();
                }
                const std::lock_guard lock(mutex);
                uniques[u].value = value;
                if (error && !first_error) first_error = error;
                if (--remaining == 0) done_cv.notify_all();
            });
        }
        std::unique_lock lock(mutex);
        done_cv.wait(lock, [&remaining] { return remaining == 0; });
        if (first_error) std::rethrow_exception(first_error);
    } else {
        for (const std::size_t u : todo)
            uniques[u].value = normalizer_.normalized(*uniques[u].front);
    }

    for (std::size_t i = 0; i < pending_.size(); ++i)
        points_[pending_[i].first].hypervolume = uniques[slot[i]].value;

    last_value_ = uniques[slot.back()].value;
    last_front_ = std::move(pending_.back().second);
    last_valid_ = true;
    pending_.clear();
    return stats;
}

void TrajectoryRecorder::require_resolved(const char* what) const {
    if (!pending_.empty())
        throw std::logic_error(std::string("trajectory: ") + what +
                               " read before resolve_pending()");
}

void TrajectoryRecorder::on_result(
    double time, std::uint64_t evaluations,
    const std::function<metrics::Front()>& front) {
    if (evaluations < next_checkpoint_) return;
    checkpoint(time, evaluations, front);
    while (next_checkpoint_ <= evaluations) next_checkpoint_ += interval_;
}

void TrajectoryRecorder::finalize(
    double time, std::uint64_t evaluations,
    const std::function<metrics::Front()>& front) {
    if (!points_.empty() && points_.back().evaluations == evaluations) return;
    checkpoint(time, evaluations, front);
}

double TrajectoryRecorder::time_to_threshold(double threshold) const {
    require_resolved("time_to_threshold");
    return parallel::time_to_threshold(points_, threshold);
}

double TrajectoryRecorder::final_hypervolume() const {
    require_resolved("final_hypervolume");
    double best = 0.0;
    for (const TrajectoryPoint& p : points_)
        best = std::max(best, p.hypervolume);
    return best;
}

double time_to_threshold(const std::vector<TrajectoryPoint>& points,
                         double threshold) {
    for (const TrajectoryPoint& p : points)
        if (p.hypervolume >= threshold) return p.time;
    return std::numeric_limits<double>::infinity();
}

} // namespace borg::parallel
