#include "parallel/trajectory.hpp"

#include <stdexcept>
#include <string>

namespace borg::parallel {

TrajectoryRecorder::TrajectoryRecorder(
    const metrics::HypervolumeNormalizer& normalizer, std::uint64_t interval,
    bool defer_hypervolume)
    : normalizer_(normalizer),
      interval_(interval),
      next_checkpoint_(interval),
      defer_(defer_hypervolume) {
    if (interval == 0)
        throw std::invalid_argument("trajectory: interval must be >= 1");
}

void TrajectoryRecorder::checkpoint(
    double time, std::uint64_t evaluations,
    const std::function<metrics::Front()>& front) {
    TrajectoryPoint point;
    point.time = time;
    point.evaluations = evaluations;
    if (defer_) {
        pending_.emplace_back(points_.size(), front());
    } else {
        point.hypervolume = normalizer_.normalized(front());
    }
    points_.push_back(point);
}

void TrajectoryRecorder::resolve_pending() {
    for (auto& [index, front] : pending_)
        points_[index].hypervolume = normalizer_.normalized(front);
    pending_.clear();
}

void TrajectoryRecorder::require_resolved(const char* what) const {
    if (!pending_.empty())
        throw std::logic_error(std::string("trajectory: ") + what +
                               " read before resolve_pending()");
}

void TrajectoryRecorder::on_result(
    double time, std::uint64_t evaluations,
    const std::function<metrics::Front()>& front) {
    if (evaluations < next_checkpoint_) return;
    checkpoint(time, evaluations, front);
    while (next_checkpoint_ <= evaluations) next_checkpoint_ += interval_;
}

void TrajectoryRecorder::finalize(
    double time, std::uint64_t evaluations,
    const std::function<metrics::Front()>& front) {
    if (!points_.empty() && points_.back().evaluations == evaluations) return;
    checkpoint(time, evaluations, front);
}

double TrajectoryRecorder::time_to_threshold(double threshold) const {
    require_resolved("time_to_threshold");
    return parallel::time_to_threshold(points_, threshold);
}

double TrajectoryRecorder::final_hypervolume() const {
    require_resolved("final_hypervolume");
    double best = 0.0;
    for (const TrajectoryPoint& p : points_)
        best = std::max(best, p.hypervolume);
    return best;
}

double time_to_threshold(const std::vector<TrajectoryPoint>& points,
                         double threshold) {
    for (const TrajectoryPoint& p : points)
        if (p.hypervolume >= threshold) return p.time;
    return std::numeric_limits<double>::infinity();
}

} // namespace borg::parallel
