#include "parallel/trajectory.hpp"

#include <stdexcept>

namespace borg::parallel {

TrajectoryRecorder::TrajectoryRecorder(
    const metrics::HypervolumeNormalizer& normalizer, std::uint64_t interval)
    : normalizer_(normalizer),
      interval_(interval),
      next_checkpoint_(interval) {
    if (interval == 0)
        throw std::invalid_argument("trajectory: interval must be >= 1");
}

void TrajectoryRecorder::checkpoint(
    double time, std::uint64_t evaluations,
    const std::function<metrics::Front()>& front) {
    TrajectoryPoint point;
    point.time = time;
    point.evaluations = evaluations;
    point.hypervolume = normalizer_.normalized(front());
    points_.push_back(point);
}

void TrajectoryRecorder::on_result(
    double time, std::uint64_t evaluations,
    const std::function<metrics::Front()>& front) {
    if (evaluations < next_checkpoint_) return;
    checkpoint(time, evaluations, front);
    while (next_checkpoint_ <= evaluations) next_checkpoint_ += interval_;
}

void TrajectoryRecorder::finalize(
    double time, std::uint64_t evaluations,
    const std::function<metrics::Front()>& front) {
    if (!points_.empty() && points_.back().evaluations == evaluations) return;
    checkpoint(time, evaluations, front);
}

double TrajectoryRecorder::time_to_threshold(double threshold) const {
    return parallel::time_to_threshold(points_, threshold);
}

double TrajectoryRecorder::final_hypervolume() const {
    double best = 0.0;
    for (const TrajectoryPoint& p : points_)
        best = std::max(best, p.hypervolume);
    return best;
}

double time_to_threshold(const std::vector<TrajectoryPoint>& points,
                         double threshold) {
    for (const TrajectoryPoint& p : points)
        if (p.hypervolume >= threshold) return p.time;
    return std::numeric_limits<double>::infinity();
}

} // namespace borg::parallel
