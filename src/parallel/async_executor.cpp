#include "parallel/async_executor.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "obs/event_trace.hpp"
#include "parallel/cluster_engine.hpp"
#include "stats/summary.hpp"
#include "util/rng.hpp"

namespace borg::parallel {

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point start) {
    return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

/// The asynchronous Borg protocol as a master policy: every master
/// interaction ingests one result and immediately hands back fresh work
/// while the evaluation budget lasts (DESIGN.md §10).
class AsyncBorgPolicy final : public EventMasterPolicy {
public:
    AsyncBorgPolicy(moea::BorgMoea& algorithm, const problems::Problem& problem)
        : algorithm_(algorithm), problem_(problem) {}

    const char* prefix() const noexcept override { return "async"; }

    std::optional<WorkItem>
    dispatch_initial(ClusterEngine& engine, const WorkerRef& worker) override {
        (void)worker;
        if (issued_ >= engine.target()) return std::nullopt;
        WorkItem work{algorithm_.next_offspring()};
        ++issued_;
        return work;
    }

    void evaluate(WorkItem& work) override {
        moea::evaluate(problem_, *work.solution);
    }

    Service serve(ClusterEngine& engine, const WorkerRef& worker,
                  WorkItem work) override {
        const auto start = SteadyClock::now();
        algorithm_.receive(std::move(*work.solution));
        std::optional<WorkItem> next;
        if (issued_ < engine.target()) {
            next = WorkItem{algorithm_.next_offspring()};
            ++issued_;
        }
        const double measured = seconds_since(start);
        const auto actor = static_cast<std::int64_t>(worker.global);
        // Protocol order: the master ingests + generates (T_A), then the
        // result-return and fresh-work messages are priced (T_C twice).
        const double ta = engine.sample_ta(worker.group, actor, measured);
        const double tc1 = engine.sample_tc(worker.group, actor);
        const double tc2 = engine.sample_tc(worker.group, actor);
        return {tc1 + ta + tc2, std::move(next)};
    }

    void on_worker_failure(ClusterEngine& engine,
                           const WorkerRef& worker) override {
        (void)engine;
        (void)worker;
        --issued_; // the lost offspring's claim returns to the pool
    }

    void record_result(ClusterEngine& engine,
                       const WorkerRef& worker) override {
        if (auto* trace = engine.trace()) {
            trace->record({obs::EventKind::result, engine.now(),
                           static_cast<std::int64_t>(worker.global), 0.0,
                           engine.completed()});
            trace->record({obs::EventKind::archive_snapshot, engine.now(), -1,
                           0.0, algorithm_.archive().size()});
        }
        if (auto* recorder = engine.recorder())
            recorder->on_result(engine.now(), engine.completed(), [this] {
                return algorithm_.archive().objective_vectors();
            });
    }

    void finalize(ClusterEngine& engine,
                  const VirtualRunResult& result) override {
        if (auto* recorder = engine.recorder())
            recorder->finalize(result.elapsed, result.evaluations, [this] {
                return algorithm_.archive().objective_vectors();
            });
    }

private:
    moea::BorgMoea& algorithm_;
    const problems::Problem& problem_;
    std::uint64_t issued_ = 0;
};

} // namespace

AsyncMasterSlaveExecutor::AsyncMasterSlaveExecutor(
    moea::BorgMoea& algorithm, const problems::Problem& problem,
    VirtualClusterConfig config)
    : algorithm_(algorithm), problem_(problem), config_(config) {
    validate(config_);
}

VirtualRunResult AsyncMasterSlaveExecutor::run(std::uint64_t evaluations,
                                               const RunContext& ctx) {
    if (evaluations == 0)
        throw std::invalid_argument("async executor: evaluations == 0");
    if (algorithm_.evaluations() != 0)
        throw std::logic_error("async executor: algorithm already used");

    ClusterEngine::Setup setup;
    setup.tf = config_.tf;
    setup.tc = config_.tc;
    setup.ta = config_.ta;
    setup.processors = config_.processors;
    setup.worker_speed = config_.worker_speed;
    setup.worker_failure_at = config_.worker_failure_at;
    setup.queue = config_.queue;
    setup.groups = {{config_.processors - 1, config_.seed, 0}};

    ClusterEngine engine(std::move(setup), ctx);
    AsyncBorgPolicy policy(algorithm_, problem_);
    return engine.run_events(policy, evaluations);
}

VirtualRunResult run_serial_virtual(moea::BorgMoea& algorithm,
                                    const problems::Problem& problem,
                                    const VirtualClusterConfig& config,
                                    std::uint64_t evaluations,
                                    const RunContext& ctx) {
    if (!config.tf)
        throw std::invalid_argument("serial virtual: missing T_F distribution");
    if (evaluations == 0)
        throw std::invalid_argument("serial virtual: evaluations == 0");

    TrajectoryRecorder* recorder = ctx.recorder;
    util::Rng rng(config.seed);
    stats::Accumulator ta_acc, tf_acc;
    double now = 0.0;

    for (std::uint64_t i = 0; i < evaluations; ++i) {
        const auto t0 = SteadyClock::now();
        moea::Solution offspring = algorithm.next_offspring();
        const auto t1 = SteadyClock::now();
        moea::evaluate(problem, offspring);
        const auto t2 = SteadyClock::now();
        algorithm.receive(std::move(offspring));
        const auto t3 = SteadyClock::now();
        // Measured T_A covers generate + receive, excluding the real
        // evaluation in the middle (that time belongs to T_F).
        const double generate_and_receive =
            std::chrono::duration<double>((t1 - t0) + (t3 - t2)).count();
        const double ta = config.ta ? config.ta->sample(rng)
                                    : generate_and_receive;
        const double tf = config.tf->sample(rng);
        ta_acc.add(ta);
        tf_acc.add(tf);
        now += tf + ta;
        if (recorder)
            recorder->on_result(now, i + 1, [&] {
                return algorithm.archive().objective_vectors();
            });
    }

    VirtualRunResult result;
    result.evaluations = evaluations;
    result.completed_target = true;
    result.elapsed = now;
    result.master_busy_fraction = 1.0;
    result.ta_applied.count = ta_acc.count();
    result.ta_applied.mean = ta_acc.mean();
    result.ta_applied.stddev = ta_acc.stddev();
    result.ta_applied.min = ta_acc.min();
    result.ta_applied.max = ta_acc.max();
    result.tf_applied.count = tf_acc.count();
    result.tf_applied.mean = tf_acc.mean();
    result.tf_applied.stddev = tf_acc.stddev();
    result.tf_applied.min = tf_acc.min();
    result.tf_applied.max = tf_acc.max();
    if (recorder)
        recorder->finalize(now, evaluations, [&] {
            return algorithm.archive().objective_vectors();
        });
    return result;
}

} // namespace borg::parallel
