#include "parallel/async_executor.hpp"

#include <chrono>
#include <limits>
#include <optional>
#include <stdexcept>

#include "des/environment.hpp"
#include "des/resource.hpp"
#include "obs/event_trace.hpp"
#include "obs/metrics_registry.hpp"
#include "stats/summary.hpp"
#include "util/rng.hpp"

namespace borg::parallel {

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point start) {
    return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

/// Shared per-run state for the worker coroutines.
struct ExecState {
    moea::BorgMoea* algorithm = nullptr;
    const problems::Problem* problem = nullptr;
    const VirtualClusterConfig* config = nullptr;
    des::Environment* env = nullptr;
    TrajectoryRecorder* recorder = nullptr;
    obs::TraceSink* trace = nullptr;
    obs::Histogram* h_tf = nullptr;
    obs::Histogram* h_ta = nullptr;
    obs::Histogram* h_wait = nullptr;
    util::Rng rng{1};

    std::uint64_t target = 0;
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    std::size_t failed_workers = 0;
    bool finished = false; ///< target reached (explicit; finish time alone
                           ///< cannot distinguish "done at t=0" from "never
                           ///< done" under zero-delay distributions)
    double finish_time = 0.0;
    double master_hold = 0.0;
    stats::Accumulator queue_wait;
    stats::Accumulator ta_applied;
    stats::Accumulator tf_applied;

    double sample_tf(std::size_t worker) {
        const double speed = config->worker_speed.empty()
                                 ? 1.0
                                 : config->worker_speed[worker];
        const double v = config->tf->sample(rng) * speed;
        tf_applied.add(v);
        if (h_tf) h_tf->observe(v);
        if (trace)
            trace->record({obs::EventKind::tf_sample, env->now(),
                           static_cast<std::int64_t>(worker), v, 0});
        return v;
    }
    double sample_tc(std::size_t worker) {
        const double v = config->tc->sample(rng);
        if (trace)
            trace->record({obs::EventKind::tc_sample, env->now(),
                           static_cast<std::int64_t>(worker), v, 0});
        return v;
    }

    double failure_time(std::size_t worker) const {
        return config->worker_failure_at.empty()
                   ? std::numeric_limits<double>::infinity()
                   : config->worker_failure_at[worker];
    }

    void add_wait(std::size_t worker, double wait) {
        (void)worker;
        queue_wait.add(wait);
        if (h_wait) h_wait->observe(wait);
    }

    void add_hold(double hold) {
        master_hold += hold;
        if (trace)
            trace->record(
                {obs::EventKind::master_hold, env->now(), 0, hold, 0});
    }

    /// The real master step: ingest the result and (if work remains)
    /// produce the next offspring. Returns the applied T_A — sampled from
    /// the configured distribution, or the measured CPU time of the step.
    double master_step(std::size_t worker, moea::Solution result,
                       std::optional<moea::Solution>& next_work) {
        const auto start = SteadyClock::now();
        algorithm->receive(std::move(result));
        if (issued < target) {
            next_work = algorithm->next_offspring();
            ++issued;
        }
        const double measured = seconds_since(start);
        const double ta = config->ta ? config->ta->sample(rng) : measured;
        ta_applied.add(ta);
        if (h_ta) h_ta->observe(ta);
        if (trace)
            trace->record({obs::EventKind::ta_sample, env->now(),
                           static_cast<std::int64_t>(worker), ta, 0});
        return ta;
    }

    void record(std::size_t worker) {
        if (trace) {
            trace->record({obs::EventKind::result, env->now(),
                           static_cast<std::int64_t>(worker), 0.0,
                           completed});
            trace->record({obs::EventKind::archive_snapshot, env->now(), -1,
                           0.0, algorithm->archive().size()});
        }
        if (!recorder) return;
        recorder->on_result(env->now(), completed, [this] {
            return algorithm->archive().objective_vectors();
        });
    }
};

des::Process async_worker(ExecState& state, des::Resource& master,
                          std::size_t index) {
    des::Environment& env = *state.env;
    const double fail_at = state.failure_time(index);
    std::optional<moea::Solution> work;

    // Initial assignment: the master sends the first offspring. Matching
    // the simulation model, only the message cost T_C occupies the master
    // here; generation cost is charged with the first result.
    {
        const double wait_start = env.now();
        co_await master.acquire();
        state.add_wait(index, env.now() - wait_start);
        if (state.issued < state.target) {
            work = state.algorithm->next_offspring();
            ++state.issued;
        }
        const double hold = state.sample_tc(index);
        state.add_hold(hold);
        co_await env.delay(hold);
        master.release();
    }

    while (work) {
        // Fault injection: a failed worker returns its claim to the pool
        // (the master re-dispatches via a surviving worker's next
        // interaction) and retires. The generated offspring is lost with
        // the node.
        if (env.now() >= fail_at) {
            --state.issued;
            ++state.failed_workers;
            if (state.trace)
                state.trace->record({obs::EventKind::worker_failure,
                                     env.now(),
                                     static_cast<std::int64_t>(index), 0.0,
                                     1});
            co_return;
        }

        // The worker evaluates the offspring: the objectives are computed
        // for real, and the virtual clock advances by a sampled T_F
        // (scaled by this worker's speed factor).
        moea::evaluate(*state.problem, *work);
        co_await env.delay(state.sample_tf(index));

        const double wait_start = env.now();
        co_await master.acquire();
        state.add_wait(index, env.now() - wait_start);

        std::optional<moea::Solution> next_work;
        const double ta = state.master_step(index, std::move(*work), next_work);
        work = std::move(next_work);

        const double hold =
            state.sample_tc(index) + ta + state.sample_tc(index);
        state.add_hold(hold);
        co_await env.delay(hold);
        master.release();

        ++state.completed;
        state.record(index);
        if (state.completed == state.target) {
            state.finished = true;
            state.finish_time = env.now();
            env.stop();
        }
    }
}

VirtualRunResult collect(const ExecState& state, const des::Resource& master,
                         double fallback_now) {
    VirtualRunResult result;
    result.evaluations = state.completed;
    result.completed_target = state.finished;
    // A starved run (total fleet loss) never set finish_time; report the
    // time the simulation actually drained instead.
    result.elapsed = state.finished ? state.finish_time : fallback_now;
    result.failed_workers = state.failed_workers;
    result.master_busy_fraction =
        result.elapsed > 0.0 ? state.master_hold / result.elapsed : 0.0;
    result.mean_queue_wait = state.queue_wait.mean();
    result.contention_rate =
        master.total_acquires() > 0
            ? static_cast<double>(master.contended_acquires()) /
                  static_cast<double>(master.total_acquires())
            : 0.0;
    result.ta_applied.count = state.ta_applied.count();
    result.ta_applied.mean = state.ta_applied.mean();
    result.ta_applied.stddev = state.ta_applied.stddev();
    result.ta_applied.min = state.ta_applied.min();
    result.ta_applied.max = state.ta_applied.max();
    result.tf_applied.count = state.tf_applied.count();
    result.tf_applied.mean = state.tf_applied.mean();
    result.tf_applied.stddev = state.tf_applied.stddev();
    result.tf_applied.min = state.tf_applied.min();
    result.tf_applied.max = state.tf_applied.max();
    return result;
}

void publish_metrics(obs::MetricsRegistry* metrics,
                     const VirtualRunResult& result) {
    if (!metrics) return;
    metrics->counter("async.results").inc(result.evaluations);
    metrics->counter("async.failed_workers")
        .inc(static_cast<std::uint64_t>(result.failed_workers));
    if (!result.completed_target) metrics->counter("async.starved_runs").inc();
    metrics->gauge("async.elapsed_seconds").set(result.elapsed);
    metrics->gauge("async.master_busy_fraction")
        .set(result.master_busy_fraction);
    metrics->gauge("async.contention_rate").set(result.contention_rate);
}

} // namespace

AsyncMasterSlaveExecutor::AsyncMasterSlaveExecutor(
    moea::BorgMoea& algorithm, const problems::Problem& problem,
    VirtualClusterConfig config)
    : algorithm_(algorithm), problem_(problem), config_(config) {
    validate(config_);
}

VirtualRunResult AsyncMasterSlaveExecutor::run(std::uint64_t evaluations,
                                               TrajectoryRecorder* recorder,
                                               obs::TraceSink* trace,
                                               obs::MetricsRegistry* metrics) {
    if (evaluations == 0)
        throw std::invalid_argument("async executor: evaluations == 0");
    if (algorithm_.evaluations() != 0)
        throw std::logic_error("async executor: algorithm already used");

    des::Environment env;
    env.set_trace(trace);
    env.set_metrics(metrics);
    des::Resource master(env, 1);
    ExecState state;
    state.algorithm = &algorithm_;
    state.problem = &problem_;
    state.config = &config_;
    state.env = &env;
    state.recorder = recorder;
    state.trace = trace;
    if (metrics) {
        state.h_tf = &metrics->histogram("async.tf_seconds");
        state.h_ta = &metrics->histogram("async.ta_seconds");
        state.h_wait = &metrics->histogram("async.queue_wait_seconds");
    }
    state.rng = util::Rng(config_.seed);
    state.target = evaluations;

    const std::uint64_t workers = config_.processors - 1;
    if (trace)
        trace->record({obs::EventKind::run_start, env.now(), -1,
                       static_cast<double>(config_.processors), evaluations});
    for (std::uint64_t w = 0; w < workers; ++w) {
        if (trace)
            trace->record({obs::EventKind::worker_spawn, env.now(),
                           static_cast<std::int64_t>(w), 0.0, 0});
        env.spawn(async_worker(state, master, static_cast<std::size_t>(w)));
    }
    env.run();

    VirtualRunResult result = collect(state, master, env.now());
    if (trace)
        trace->record({obs::EventKind::run_end, result.elapsed, -1,
                       result.elapsed, state.completed});
    publish_metrics(metrics, result);
    if (recorder)
        recorder->finalize(result.elapsed, state.completed, [&] {
            return algorithm_.archive().objective_vectors();
        });
    return result;
}

VirtualRunResult run_serial_virtual(moea::BorgMoea& algorithm,
                                    const problems::Problem& problem,
                                    const VirtualClusterConfig& config,
                                    std::uint64_t evaluations,
                                    TrajectoryRecorder* recorder) {
    if (!config.tf)
        throw std::invalid_argument("serial virtual: missing T_F distribution");
    if (evaluations == 0)
        throw std::invalid_argument("serial virtual: evaluations == 0");

    util::Rng rng(config.seed);
    stats::Accumulator ta_acc, tf_acc;
    double now = 0.0;

    for (std::uint64_t i = 0; i < evaluations; ++i) {
        const auto t0 = SteadyClock::now();
        moea::Solution offspring = algorithm.next_offspring();
        const auto t1 = SteadyClock::now();
        moea::evaluate(problem, offspring);
        const auto t2 = SteadyClock::now();
        algorithm.receive(std::move(offspring));
        const auto t3 = SteadyClock::now();
        // Measured T_A covers generate + receive, excluding the real
        // evaluation in the middle (that time belongs to T_F).
        const double generate_and_receive =
            std::chrono::duration<double>((t1 - t0) + (t3 - t2)).count();
        const double ta = config.ta ? config.ta->sample(rng)
                                    : generate_and_receive;
        const double tf = config.tf->sample(rng);
        ta_acc.add(ta);
        tf_acc.add(tf);
        now += tf + ta;
        if (recorder)
            recorder->on_result(now, i + 1, [&] {
                return algorithm.archive().objective_vectors();
            });
    }

    VirtualRunResult result;
    result.evaluations = evaluations;
    result.completed_target = true;
    result.elapsed = now;
    result.master_busy_fraction = 1.0;
    result.ta_applied.count = ta_acc.count();
    result.ta_applied.mean = ta_acc.mean();
    result.ta_applied.stddev = ta_acc.stddev();
    result.ta_applied.min = ta_acc.min();
    result.ta_applied.max = ta_acc.max();
    result.tf_applied.count = tf_acc.count();
    result.tf_applied.mean = tf_acc.mean();
    result.tf_applied.stddev = tf_acc.stddev();
    result.tf_applied.min = tf_acc.min();
    result.tf_applied.max = tf_acc.max();
    if (recorder)
        recorder->finalize(now, evaluations, [&] {
            return algorithm.archive().objective_vectors();
        });
    return result;
}

} // namespace borg::parallel
