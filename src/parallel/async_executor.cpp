#include "parallel/async_executor.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "parallel/cluster_engine.hpp"
#include "parallel/master_policies.hpp"
#include "stats/summary.hpp"
#include "util/rng.hpp"

namespace borg::parallel {

namespace {

using SteadyClock = std::chrono::steady_clock;

} // namespace

AsyncMasterSlaveExecutor::AsyncMasterSlaveExecutor(
    moea::BorgMoea& algorithm, const problems::Problem& problem,
    VirtualClusterConfig config)
    : algorithm_(algorithm), problem_(problem), config_(config) {
    validate(config_);
}

VirtualRunResult AsyncMasterSlaveExecutor::run(std::uint64_t evaluations,
                                               const RunContext& ctx) {
    if (evaluations == 0)
        throw std::invalid_argument("async executor: evaluations == 0");
    if (algorithm_.evaluations() != 0)
        throw std::logic_error("async executor: algorithm already used");

    ClusterEngine::Setup setup;
    setup.tf = config_.tf;
    setup.tc = config_.tc;
    setup.ta = config_.ta;
    setup.processors = config_.processors;
    setup.worker_speed = config_.worker_speed;
    setup.worker_failure_at = config_.worker_failure_at;
    setup.queue = config_.queue;
    setup.groups = {{config_.processors - 1, config_.seed, 0}};

    ClusterEngine engine(std::move(setup), ctx);
    AsyncBorgPolicy policy(algorithm_, problem_);
    return engine.run_events(policy, evaluations);
}

VirtualRunResult run_serial_virtual(moea::BorgMoea& algorithm,
                                    const problems::Problem& problem,
                                    const VirtualClusterConfig& config,
                                    std::uint64_t evaluations,
                                    const RunContext& ctx) {
    if (!config.tf)
        throw std::invalid_argument("serial virtual: missing T_F distribution");
    if (evaluations == 0)
        throw std::invalid_argument("serial virtual: evaluations == 0");

    TrajectoryRecorder* recorder = ctx.recorder;
    util::Rng rng(config.seed);
    stats::Accumulator ta_acc, tf_acc;
    double now = 0.0;

    for (std::uint64_t i = 0; i < evaluations; ++i) {
        const auto t0 = SteadyClock::now();
        moea::Solution offspring = algorithm.next_offspring();
        const auto t1 = SteadyClock::now();
        moea::evaluate(problem, offspring);
        const auto t2 = SteadyClock::now();
        algorithm.receive(std::move(offspring));
        const auto t3 = SteadyClock::now();
        // Measured T_A covers generate + receive, excluding the real
        // evaluation in the middle (that time belongs to T_F).
        const double generate_and_receive =
            std::chrono::duration<double>((t1 - t0) + (t3 - t2)).count();
        const double ta = config.ta ? config.ta->sample(rng)
                                    : generate_and_receive;
        const double tf = config.tf->sample(rng);
        ta_acc.add(ta);
        tf_acc.add(tf);
        now += tf + ta;
        if (recorder)
            recorder->on_result(now, i + 1, [&] {
                return algorithm.archive().objective_vectors();
            });
    }

    VirtualRunResult result;
    result.evaluations = evaluations;
    result.completed_target = true;
    result.elapsed = now;
    result.master_busy_fraction = 1.0;
    result.ta_applied.count = ta_acc.count();
    result.ta_applied.mean = ta_acc.mean();
    result.ta_applied.stddev = ta_acc.stddev();
    result.ta_applied.min = ta_acc.min();
    result.ta_applied.max = ta_acc.max();
    result.tf_applied.count = tf_acc.count();
    result.tf_applied.mean = tf_acc.mean();
    result.tf_applied.stddev = tf_acc.stddev();
    result.tf_applied.min = tf_acc.min();
    result.tf_applied.max = tf_acc.max();
    if (recorder)
        recorder->finalize(now, evaluations, [&] {
            return algorithm.archive().objective_vectors();
        });
    return result;
}

} // namespace borg::parallel
