#include "parallel/virtual_cluster.hpp"

#include <stdexcept>

namespace borg::parallel {

void validate(const VirtualClusterConfig& config) {
    validate(config, config.processors >= 1 ? config.processors - 1 : 0);
}

void validate(const VirtualClusterConfig& config, std::uint64_t workers) {
    if (config.processors < 2)
        throw std::invalid_argument(
            "virtual cluster: need P >= 2 (1 master + 1 worker)");
    if (!config.tf)
        throw std::invalid_argument("virtual cluster: missing T_F distribution");
    if (!config.tc)
        throw std::invalid_argument("virtual cluster: missing T_C distribution");
    if (!config.worker_speed.empty() &&
        config.worker_speed.size() != workers)
        throw std::invalid_argument(
            "virtual cluster: worker_speed size must equal worker count");
    for (const double speed : config.worker_speed)
        if (!(speed > 0.0))
            throw std::invalid_argument(
                "virtual cluster: worker speeds must be positive");
    if (!config.worker_failure_at.empty() &&
        config.worker_failure_at.size() != workers)
        throw std::invalid_argument(
            "virtual cluster: worker_failure_at size must equal worker count");
}

} // namespace borg::parallel
