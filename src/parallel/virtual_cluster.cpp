#include "parallel/virtual_cluster.hpp"

#include <stdexcept>

namespace borg::parallel {

void validate(const VirtualClusterConfig& config) {
    if (config.processors < 2)
        throw std::invalid_argument(
            "virtual cluster: need P >= 2 (1 master + 1 worker)");
    if (!config.tf)
        throw std::invalid_argument("virtual cluster: missing T_F distribution");
    if (!config.tc)
        throw std::invalid_argument("virtual cluster: missing T_C distribution");
    const std::size_t workers =
        static_cast<std::size_t>(config.processors - 1);
    if (!config.worker_speed.empty() &&
        config.worker_speed.size() != workers)
        throw std::invalid_argument(
            "virtual cluster: worker_speed size must equal worker count");
    for (const double speed : config.worker_speed)
        if (!(speed > 0.0))
            throw std::invalid_argument(
                "virtual cluster: worker speeds must be positive");
    if (!config.worker_failure_at.empty() &&
        config.worker_failure_at.size() != workers)
        throw std::invalid_argument(
            "virtual cluster: worker_failure_at size must equal worker count");
}

} // namespace borg::parallel
