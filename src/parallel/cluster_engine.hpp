#ifndef BORG_PARALLEL_CLUSTER_ENGINE_HPP
#define BORG_PARALLEL_CLUSTER_ENGINE_HPP

/// \file cluster_engine.hpp
/// The one virtual-time master-slave engine behind every executor and the
/// paper's simulation model.
///
/// The paper compares a single scheduling protocol across incarnations —
/// analytical model, discrete-event simulation, real-algorithm runs
/// (Sections III–V). Before this engine existed the codebase implemented
/// that protocol five times over; model-vs-experiment agreement rested on
/// five hand-synchronized copies of the same worker loop. Now there is one
/// engine owning everything protocol-generic:
///
///   * worker lifecycle — spawn, evaluate, fail (worker_failure_at),
///     retire — for any number of master groups (islands);
///   * the T_F/T_C/T_A sampling streams, with per-worker `worker_speed`
///     scaling and sample mirroring into trace + histograms;
///   * the master as a capacity-1 FIFO `des::Resource` per group, with
///     queue-wait, contention, and busy-fraction accounting (the
///     generational driver reproduces the same accounting arithmetic
///     without a resource, since a barrier never interleaves);
///   * all obs emission: typed trace events and metric instruments under
///     the policy's prefix.
///
/// What a protocol *means* is supplied by a MasterPolicy: what to dispatch
/// to a free worker, how the master ingests a result, what the service
/// hold costs, and — for barrier protocols — how a generation is planned
/// and processed. The four executors and the simulation model are thin
/// policies over this engine, so the simulation model provably shares
/// scheduling code with the real-algorithm executors (DESIGN.md §10).
///
/// Determinism contract: policies draw every virtual-time cost through the
/// engine's sample_* helpers, in the exact order the protocol charges
/// them. The engine never draws from a policy's stream behind its back —
/// bookkeeping (wait/hold accumulators, counters) consumes no randomness —
/// so fixed seeds reproduce byte-identical event traces
/// (tests/test_golden_traces.cpp holds the fixtures).

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "des/environment.hpp"
#include "moea/solution.hpp"
#include "parallel/run_context.hpp"
#include "parallel/virtual_cluster.hpp"
#include "stats/distribution.hpp"
#include "stats/summary.hpp"

namespace borg::des {
class Resource;
} // namespace borg::des

namespace borg::obs {
class Histogram;
} // namespace borg::obs

namespace borg::util {
class Rng;
}

namespace borg::parallel {

class ClusterEngine;

/// Identity of one virtual worker. `global` indexes the engine-wide
/// worker_speed / worker_failure_at arrays (workers are numbered in spawn
/// order across groups); `group`/`local` locate it inside its island.
struct WorkerRef {
    std::size_t group = 0;
    std::size_t local = 0;
    std::size_t global = 0;
};

/// One master group: a master resource plus its sampling stream. Single
/// -master protocols use exactly one; the multi-master executor one per
/// island.
struct GroupSpec {
    std::uint64_t workers = 0;
    std::uint64_t rng_seed = 1;
    /// Stamped into this group's resource trace events (`actor` field).
    std::int64_t trace_id = 0;
};

/// What a worker carries between master interactions. Real-algorithm
/// policies put the offspring here; the statistics-only simulation policy
/// leaves it empty — the work item then only marks "has work".
struct WorkItem {
    std::optional<moea::Solution> solution;
};

/// Protocol identity shared by both driver shapes.
class MasterPolicy {
public:
    virtual ~MasterPolicy() = default;

    /// Metric-name prefix, e.g. "async" -> "async.results".
    virtual const char* prefix() const noexcept = 0;

    /// Whether T_F/T_C/T_A draws are mirrored into the trace as
    /// tf_sample/tc_sample/ta_sample events. The multi-master executor
    /// turns this off (its traces identify work through per-island
    /// result/hold events instead, as they always have).
    virtual bool trace_samples() const noexcept { return true; }
};

/// Policy for event-driven (asynchronous) protocols: each worker loops
/// evaluate -> queue for its master -> be serviced, with no barrier. The
/// engine drives the des::Environment; hooks run inside worker coroutines.
class EventMasterPolicy : public MasterPolicy {
public:
    /// Outcome of one master service (the engine charges `hold` to the
    /// group's master and then releases it).
    struct Service {
        double hold = 0.0;
        std::optional<WorkItem> next; ///< nullopt retires the worker
    };

    /// Called under the initial master hold: claim/produce the first work
    /// item, or nullopt when the run needs no more workers. Must not
    /// sample the engine streams (the engine charges the initial T_C).
    virtual std::optional<WorkItem>
    dispatch_initial(ClusterEngine& engine, const WorkerRef& worker) = 0;

    /// Computes the real objectives (a no-op for statistics-only
    /// policies). Runs before the T_F delay is charged.
    virtual void evaluate(WorkItem& work) = 0;

    /// The master service, called when the worker is granted the master:
    /// ingest `work`, decide the next dispatch, and price the hold by
    /// drawing T_A/T_C through the engine in protocol order.
    virtual Service serve(ClusterEngine& engine, const WorkerRef& worker,
                          WorkItem work) = 0;

    /// A worker hit its failure time while holding unfinished work; return
    /// the claim to the pool. The engine counts the failure and emits the
    /// worker_failure event.
    virtual void on_worker_failure(ClusterEngine& engine,
                                   const WorkerRef& worker) = 0;

    /// Emit the policy's per-result events / recorder checkpoint. Runs
    /// after the service hold is released and the completion counter has
    /// been advanced, before the engine's target check.
    virtual void record_result(ClusterEngine& engine,
                               const WorkerRef& worker) = 0;

    /// Runs after record_result and the target check; the island policy
    /// launches ring migrations from here.
    virtual void after_result(ClusterEngine& engine, const WorkerRef& worker) {
        (void)engine;
        (void)worker;
    }

    /// Emits the worker_spawn trace event for one worker. The default is
    /// the single-master shape {actor = global index}; the multi-master
    /// policy stamps {actor = island, count = local} instead.
    virtual void record_spawn(ClusterEngine& engine, const WorkerRef& worker);

    /// Policy-specific instruments beyond the engine's uniform set
    /// (e.g. mm.migrations).
    virtual void publish_extra_metrics(ClusterEngine& engine,
                                       obs::MetricsRegistry& metrics) {
        (void)engine;
        (void)metrics;
    }

    /// Runs last (after run_end and metrics publication) with the final
    /// result — the recorder-finalize hook.
    virtual void finalize(ClusterEngine& engine,
                          const VirtualRunResult& result) {
        (void)engine;
        (void)result;
    }
};

/// Policy for barrier (generational) protocols: the run is a sequence of
/// generations — plan/evaluate, serialized sends, serialized receives
/// gated on the master's own evaluation, whole-generation ingest. The
/// engine drives the clock arithmetic and all shared accounting; it needs
/// no des::Environment because a barrier never interleaves services.
class GenerationalMasterPolicy : public MasterPolicy {
public:
    struct Plan {
        std::size_t batch = 0; ///< offspring evaluated this generation
        std::size_t nodes = 0; ///< participating nodes incl. master (>= 1)
    };

    struct Ingest {
        double ta_sync = 0.0;      ///< whole-generation processing time
        double ta_per_offspring = 0.0; ///< ta_sync / batch (the reported T_A)
    };

    /// Produce and price the next generation. `alive_workers` holds the
    /// global indices of workers that have not failed; node k >= 1 of the
    /// plan is alive_workers[k - 1], node 0 the master. Policies that
    /// draw T_F up front (the real sync executor) do so here through
    /// gen_sample_tf; lazy policies (the simulation model) defer to
    /// node_eval_time.
    virtual Plan plan(ClusterEngine& engine, std::uint64_t completed,
                      std::uint64_t target,
                      const std::vector<std::size_t>& alive_workers) = 0;

    /// Summed evaluation time of node \p node this generation, queried
    /// during the send sweep (workers, in node order, then the master).
    virtual double node_eval_time(ClusterEngine& engine, double at,
                                  std::size_t node) = 0;

    /// Whole-generation master processing: ingest the results and price
    /// T_A^sync (one draw per offspring, or the measured ingest time).
    virtual Ingest ingest(ClusterEngine& engine, std::size_t batch) = 0;

    /// Recorder checkpoint after a generation is ingested.
    virtual void record_generation(ClusterEngine& engine, double now,
                                   std::uint64_t completed) {
        (void)engine;
        (void)now;
        (void)completed;
    }

    /// See EventMasterPolicy::finalize.
    virtual void finalize(ClusterEngine& engine,
                          const VirtualRunResult& result) {
        (void)engine;
        (void)result;
    }
};

/// One run of the engine. Construct, call exactly one of run_events /
/// run_generational, read the result (and any per-group statistics the
/// wrapping executor's result type needs).
class ClusterEngine {
public:
    struct Setup {
        /// Required sampling streams; ta == nullptr means "measure the
        /// real master step" (policies pass the measured seconds into
        /// sample_ta).
        const stats::Distribution* tf = nullptr;
        const stats::Distribution* tc = nullptr;
        const stats::Distribution* ta = nullptr;
        /// Total processors (masters + workers) — run_start payload only.
        std::uint64_t processors = 0;
        /// Per-worker multipliers/failure times indexed by global worker
        /// index; empty means homogeneous / failure-free.
        std::vector<double> worker_speed;
        std::vector<double> worker_failure_at;
        std::vector<GroupSpec> groups;
        /// Pending-event store for the DES (event-driven runs only). Both
        /// stores produce byte-identical schedules; `heap` is the
        /// pre-rebuild oracle kept for equivalence gates (DESIGN.md §13).
        des::QueuePolicy queue = des::QueuePolicy::calendar;
        /// Real-time (external-drive) mode: a transport such as the TCP
        /// run manager owns the event loop and feeds the engine through
        /// the external_* hooks; now() is wall-clock seconds since
        /// external_begin, T_A is measured, and T_C is fed from measured
        /// transport latency (tf/tc/ta distributions may all be null).
        /// run_events/run_generational are unavailable in this mode
        /// (DESIGN.md §14).
        bool real_time = false;
    };

    ClusterEngine(Setup setup, const RunContext& ctx);
    ~ClusterEngine();

    ClusterEngine(const ClusterEngine&) = delete;
    ClusterEngine& operator=(const ClusterEngine&) = delete;

    VirtualRunResult run_events(EventMasterPolicy& policy,
                                std::uint64_t evaluations);
    VirtualRunResult run_generational(GenerationalMasterPolicy& policy,
                                      std::uint64_t evaluations);

    // ------------------------------------------- external (real-time) drive
    // A real transport (the TCP run manager) owns the sockets and the
    // event loop; the engine keeps owning what it always owned — policy
    // invocation order, trace/metrics emission, completion accounting —
    // so an EventMasterPolicy written for the virtual cluster runs
    // unchanged over real hardware. All external_* calls require
    // Setup.real_time and run on the driving thread.

    /// Starts an externally driven run: installs the policy, arms the
    /// wall clock, emits run_start.
    void external_begin(EventMasterPolicy& policy, std::uint64_t evaluations);
    /// A real worker joined (after handshake): emits worker_spawn.
    void external_spawn(const WorkerRef& worker);
    /// Claims one initial work item from the policy (window seeding).
    std::optional<WorkItem> external_dispatch_initial(const WorkerRef& worker);
    /// Feeds one measured evaluation time into the T_F accounting.
    void external_tf(const WorkerRef& worker, double measured_seconds);

    struct ExternalServe {
        std::optional<WorkItem> next; ///< fresh work, if the budget allows
        bool finished = false;        ///< target reached with this result
    };
    /// One master service: runs policy.serve (which measures its own T_A),
    /// charges the hold, advances completion, and fires record_result /
    /// after_result exactly as the virtual driver would. \p measured_tc is
    /// the observed result-return latency, consumed by the policy's first
    /// sample_tc draw.
    ExternalServe external_result(const WorkerRef& worker, WorkItem work,
                                  double measured_tc);
    /// A real worker died (socket EOF or heartbeat timeout). Emits
    /// worker_failure and counts it. The policy is *not* told: unlike the
    /// virtual cluster, a real transport retains the dispatched solution
    /// and reassigns it, so no claim is lost.
    void external_worker_failure(const WorkerRef& worker);
    /// Ends the run: collects the result, emits run_end, publishes
    /// metrics, and runs the policy's finalize hook.
    VirtualRunResult external_finish();

    // ----------------------------------------------------- policy services

    /// The DES environment (event-driven runs only; policies spawn side
    /// processes such as migrations on it).
    des::Environment& env() noexcept { return *env_; }
    /// Current virtual time — env().now() on the event path, the
    /// generational driver's clock otherwise.
    double now() const noexcept;

    std::uint64_t target() const noexcept { return target_; }
    std::uint64_t completed() const noexcept { return completed_; }
    bool measured_ta() const noexcept { return setup_.ta == nullptr; }

    obs::TraceSink* trace() noexcept { return ctx_.trace; }
    TrajectoryRecorder* recorder() noexcept { return ctx_.recorder; }

    util::Rng& group_rng(std::size_t group) noexcept;
    des::Resource& group_master(std::size_t group) noexcept;
    std::size_t group_count() const noexcept { return groups_.size(); }
    std::uint64_t group_evaluations(std::size_t group) const noexcept;
    double group_hold(std::size_t group) const noexcept;

    double speed_of(std::size_t global_worker) const noexcept;
    double failure_time_of(std::size_t global_worker) const noexcept;

    /// Draws a speed-scaled T_F for \p worker from its group stream,
    /// feeding the tf accumulator/histogram and (if trace_samples) a
    /// tf_sample event at the current time with actor = global index.
    double sample_tf(const WorkerRef& worker);
    /// Draws a T_C from \p group's stream (tc_sample at current time).
    double sample_tc(std::size_t group, std::int64_t actor);
    /// Applied T_A: drawn from the configured distribution, or
    /// \p measured_seconds under measured mode. Feeds the ta
    /// accumulator/histogram (ta_sample at current time).
    double sample_ta(std::size_t group, std::int64_t actor,
                     double measured_seconds);

    /// Queue-wait accounting shared by worker acquires and policy side
    /// processes (migrations) — keeps the engine's reported mean equal to
    /// what obs::recompute derives from the grant events.
    void add_wait(double wait);
    /// Charges master hold time to \p group and emits the master_hold
    /// event (at the current time, before the delay is taken).
    void add_hold(std::size_t group, double hold);

    // ------------------------------- generational-driver sampling helpers
    // (explicit event times: the barrier driver time-stamps samples at
    // protocol positions, not at a DES clock)

    double gen_sample_tf(double at, std::int64_t actor, double speed);
    double gen_sample_tc(double at, std::int64_t actor);

private:
    struct Group;

    des::Process worker_loop(EventMasterPolicy& policy, WorkerRef worker);
    void emit_run_start();
    VirtualRunResult collect(double elapsed_fallback);
    void publish_metrics(const char* prefix, const VirtualRunResult& result);
    /// Marks workers whose failure time has passed as dead (emitting
    /// worker_failure); returns true if any worker died now.
    bool reap_dead_workers(double now, std::vector<std::size_t>& alive,
                           std::vector<char>& dead);

    Setup setup_;
    RunContext ctx_;
    std::unique_ptr<des::Environment> env_;
    std::vector<std::unique_ptr<Group>> groups_;
    MasterPolicy* policy_ = nullptr; ///< set for the duration of a run
    /// External-drive state (real-time mode only).
    EventMasterPolicy* external_policy_ = nullptr;
    std::chrono::steady_clock::time_point real_start_{};
    double pending_tc_ = 0.0; ///< next measured T_C, consumed by sample_tc

    std::uint64_t target_ = 0;
    std::uint64_t completed_ = 0;
    std::size_t failed_workers_ = 0;
    bool finished_ = false; ///< explicit: a t=0 finish is a valid finish
    double finish_time_ = 0.0;
    double gen_now_ = 0.0; ///< generational driver clock
    bool generational_ = false;
    /// Generational-path acquire accounting (the event path reads the
    /// group resources instead).
    std::uint64_t gen_acquires_ = 0;
    std::uint64_t gen_contended_ = 0;

    stats::Accumulator queue_wait_;
    stats::Accumulator ta_applied_;
    stats::Accumulator tf_applied_;
    obs::Histogram* h_tf_ = nullptr;
    obs::Histogram* h_ta_ = nullptr;
    obs::Histogram* h_wait_ = nullptr;
};

} // namespace borg::parallel

#endif
