#include "parallel/multi_master.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "des/resource.hpp"
#include "obs/event_trace.hpp"
#include "obs/metrics_registry.hpp"
#include "parallel/cluster_engine.hpp"
#include "util/rng.hpp"

namespace borg::parallel {

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point start) {
    return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

/// The hierarchical topology as a master policy: one engine group per
/// island, each running the asynchronous Borg protocol against its own
/// algorithm instance, with ring migrations launched after results
/// (DESIGN.md §10). The evaluation budget is global — faster islands
/// claim more of it.
class IslandRingPolicy final : public EventMasterPolicy {
public:
    IslandRingPolicy(const problems::Problem& problem,
                     const moea::BorgParams& params,
                     const MultiMasterConfig& config)
        : config_(config) {
        islands_.reserve(config.islands);
        for (std::size_t i = 0; i < config.islands; ++i) {
            Island island;
            island.algorithm = std::make_unique<moea::BorgMoea>(
                problem, params,
                util::derive_seed(config.cluster.seed, i, 100));
            islands_.push_back(std::move(island));
        }
    }

    const char* prefix() const noexcept override { return "mm"; }

    /// Multi-master traces identify work through per-island result/hold
    /// events; the per-draw sample mirror stays off, as it always has.
    bool trace_samples() const noexcept override { return false; }

    std::optional<WorkItem>
    dispatch_initial(ClusterEngine& engine, const WorkerRef& worker) override {
        if (!claim(engine)) return std::nullopt;
        return WorkItem{islands_[worker.group].algorithm->next_offspring()};
    }

    void evaluate(WorkItem& work) override {
        const moea::BorgMoea& any = *islands_.front().algorithm;
        moea::evaluate(any.problem(), *work.solution);
    }

    Service serve(ClusterEngine& engine, const WorkerRef& worker,
                  WorkItem work) override {
        Island& island = islands_[worker.group];
        const auto start = SteadyClock::now();
        island.algorithm->receive(std::move(*work.solution));
        std::optional<WorkItem> next;
        if (claim(engine)) next = WorkItem{island.algorithm->next_offspring()};
        const double measured = seconds_since(start);
        const auto actor = static_cast<std::int64_t>(worker.group);
        // Protocol order: result message, ingest + generate, fresh-work
        // message — all charged to this island's master.
        const double tc1 = engine.sample_tc(worker.group, actor);
        const double ta = engine.sample_ta(worker.group, actor, measured);
        const double tc2 = engine.sample_tc(worker.group, actor);
        return {tc1 + ta + tc2, std::move(next)};
    }

    void on_worker_failure(ClusterEngine& engine,
                           const WorkerRef& worker) override {
        (void)engine;
        (void)worker;
        --dispatched_; // the lost offspring's claim returns to the pool
    }

    void record_result(ClusterEngine& engine,
                       const WorkerRef& worker) override {
        ++islands_[worker.group].since_migration;
        if (auto* trace = engine.trace())
            trace->record({obs::EventKind::result, engine.now(),
                           static_cast<std::int64_t>(worker.group), 0.0,
                           engine.completed()});
    }

    void after_result(ClusterEngine& engine,
                      const WorkerRef& worker) override {
        Island& island = islands_[worker.group];
        const std::uint64_t interval = config_.migration_interval;
        if (interval > 0 && island.since_migration >= interval &&
            islands_.size() > 1) {
            island.since_migration = 0;
            const std::size_t to = (worker.group + 1) % islands_.size();
            engine.env().spawn(migrate(engine, worker.group, to));
        }
    }

    /// Multi-master worker_spawn shape: actor = island, count = local slot.
    void record_spawn(ClusterEngine& engine,
                      const WorkerRef& worker) override {
        if (auto* trace = engine.trace())
            trace->record({obs::EventKind::worker_spawn, engine.now(),
                           static_cast<std::int64_t>(worker.group), 0.0,
                           worker.local});
    }

    void publish_extra_metrics(ClusterEngine& engine,
                               obs::MetricsRegistry& metrics) override {
        (void)engine;
        metrics.counter("mm.migrations").inc(migrations_);
    }

    std::uint64_t migrations() const noexcept { return migrations_; }

    const moea::EpsilonBoxArchive& island_archive(std::size_t i) const {
        return islands_[i].algorithm->archive();
    }

private:
    struct Island {
        std::unique_ptr<moea::BorgMoea> algorithm;
        std::uint64_t since_migration = 0;
    };

    bool claim(ClusterEngine& engine) {
        if (dispatched_ >= engine.target()) return false;
        ++dispatched_;
        return true;
    }

    /// Delivers one migrant into the target island through its master,
    /// charged T_C (message) + T_A (ingestion) of master hold time.
    des::Process migrate(ClusterEngine& engine, std::size_t from,
                         std::size_t to) {
        des::Environment& env = engine.env();
        const auto& archive = islands_[from].algorithm->archive();
        if (archive.empty()) co_return;
        moea::Solution migrant =
            archive[static_cast<std::size_t>(
                engine.group_rng(from).below(archive.size()))];

        const double wait_start = env.now();
        co_await engine.group_master(to).acquire();
        engine.add_wait(env.now() - wait_start);
        const auto start = SteadyClock::now();
        islands_[to].algorithm->receive(std::move(migrant));
        const double measured = seconds_since(start);
        const auto actor = static_cast<std::int64_t>(to);
        const double tc = engine.sample_tc(to, actor);
        const double ta = engine.sample_ta(to, actor, measured);
        const double hold = tc + ta;
        engine.add_hold(to, hold);
        co_await env.delay(hold);
        engine.group_master(to).release();
        ++migrations_;
        if (auto* trace = engine.trace())
            trace->record({obs::EventKind::migration, env.now(), actor, 0.0,
                           migrations_});
    }

    const MultiMasterConfig& config_;
    std::vector<Island> islands_;
    std::uint64_t dispatched_ = 0;
    std::uint64_t migrations_ = 0;
};

} // namespace

MultiMasterExecutor::MultiMasterExecutor(const problems::Problem& problem,
                                         moea::BorgParams params,
                                         MultiMasterConfig config)
    : problem_(problem), params_(std::move(params)), config_(config) {
    if (config_.islands == 0)
        throw std::invalid_argument("multi-master: need >= 1 island");
    if (config_.cluster.processors < 2 * config_.islands)
        throw std::invalid_argument(
            "multi-master: need >= 2 processors per island");
    validate(config_.cluster, config_.cluster.processors - config_.islands);
}

MultiMasterResult MultiMasterExecutor::run(std::uint64_t evaluations,
                                           const RunContext& ctx) {
    if (evaluations == 0)
        throw std::invalid_argument("multi-master: evaluations == 0");
    if (used_) throw std::logic_error("multi-master: executor already used");
    used_ = true;

    // Split processors: each island gets a master; workers are distributed
    // as evenly as possible.
    const std::uint64_t islands = config_.islands;
    const std::uint64_t total_workers = config_.cluster.processors - islands;

    ClusterEngine::Setup setup;
    setup.tf = config_.cluster.tf;
    setup.tc = config_.cluster.tc;
    setup.ta = config_.cluster.ta;
    setup.processors = config_.cluster.processors;
    setup.worker_speed = config_.cluster.worker_speed;
    setup.worker_failure_at = config_.cluster.worker_failure_at;
    setup.queue = config_.cluster.queue;
    for (std::size_t i = 0; i < islands; ++i) {
        const std::uint64_t workers =
            total_workers / islands + (i < total_workers % islands ? 1 : 0);
        setup.groups.push_back(
            {workers, util::derive_seed(config_.cluster.seed, i, 200),
             static_cast<std::int64_t>(i)});
    }

    ClusterEngine engine(std::move(setup), ctx);
    IslandRingPolicy policy(problem_, params_, config_);
    MultiMasterResult result;
    static_cast<VirtualRunResult&>(result) =
        engine.run_events(policy, evaluations);

    result.migrations = policy.migrations();
    moea::EpsilonBoxArchive combined(params_.epsilons);
    for (std::size_t i = 0; i < islands; ++i) {
        result.island_evaluations.push_back(engine.group_evaluations(i));
        result.island_busy_fraction.push_back(
            result.elapsed > 0.0 ? engine.group_hold(i) / result.elapsed
                                 : 0.0);
        combined.add_all(policy.island_archive(i).solutions());
    }
    result.combined_archive = combined.solutions();
    return result;
}

} // namespace borg::parallel
