#include "parallel/multi_master.hpp"

#include <chrono>
#include <optional>
#include <stdexcept>

#include "des/environment.hpp"
#include "des/resource.hpp"
#include "obs/event_trace.hpp"
#include "obs/metrics_registry.hpp"
#include "util/rng.hpp"

namespace borg::parallel {

namespace {

using SteadyClock = std::chrono::steady_clock;

struct Island;

/// Run-global state shared by all islands.
struct Global {
    const MultiMasterConfig* config = nullptr;
    des::Environment* env = nullptr;
    std::uint64_t target = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t completed = 0;
    std::uint64_t migrations = 0;
    bool finished = false; ///< explicit: a t=0 finish is a valid finish
    double finish_time = 0.0;
    std::vector<std::unique_ptr<Island>> islands;

    bool claim() {
        if (dispatched >= target) return false;
        ++dispatched;
        return true;
    }

    void complete() {
        if (++completed == target) {
            finished = true;
            finish_time = env->now();
            env->stop();
        }
    }
};

struct Island {
    std::size_t index = 0;
    std::unique_ptr<moea::BorgMoea> algorithm;
    std::unique_ptr<des::Resource> master;
    util::Rng rng{1};
    std::uint64_t evaluations = 0;
    std::uint64_t since_migration = 0;
    double master_hold = 0.0;

    double tf(const Global& g) { return g.config->cluster.tf->sample(rng); }
    double tc(const Global& g) { return g.config->cluster.tc->sample(rng); }

    /// Applied T_A: sampled, or measured from the real master step the
    /// caller just timed.
    double ta(const Global& g, double measured) {
        return g.config->cluster.ta ? g.config->cluster.ta->sample(rng)
                                    : measured;
    }
};

/// Records a master-busy contribution for one island (mirrored into the
/// trace so per-island busy fractions are recomputable).
void add_hold(Global& global, Island& island, double hold) {
    island.master_hold += hold;
    if (auto* t = global.env->trace())
        t->record({obs::EventKind::master_hold, global.env->now(),
                   static_cast<std::int64_t>(island.index), hold, 0});
}

/// Delivers one migrant into the target island through its master.
des::Process migrate(Global& global, Island& from, Island& to) {
    des::Environment& env = *global.env;
    const auto& archive = from.algorithm->archive();
    if (archive.empty()) co_return;
    moea::Solution migrant =
        archive[static_cast<std::size_t>(from.rng.below(archive.size()))];

    co_await to.master->acquire();
    const auto start = SteadyClock::now();
    to.algorithm->receive(std::move(migrant));
    const double measured =
        std::chrono::duration<double>(SteadyClock::now() - start).count();
    const double hold = to.tc(global) + to.ta(global, measured);
    add_hold(global, to, hold);
    co_await env.delay(hold);
    to.master->release();
    ++global.migrations;
    if (auto* t = env.trace())
        t->record({obs::EventKind::migration, env.now(),
                   static_cast<std::int64_t>(to.index), 0.0,
                   global.migrations});
}

des::Process island_worker(Global& global, Island& island) {
    des::Environment& env = *global.env;
    std::optional<moea::Solution> work;

    // Initial assignment from this island's master.
    {
        co_await island.master->acquire();
        if (global.claim()) work = island.algorithm->next_offspring();
        const double hold = island.tc(global);
        add_hold(global, island, hold);
        co_await env.delay(hold);
        island.master->release();
    }

    const problems::Problem& problem = island.algorithm->problem();
    while (work) {
        moea::evaluate(problem, *work);
        co_await env.delay(island.tf(global));

        co_await island.master->acquire();
        const auto start = SteadyClock::now();
        island.algorithm->receive(std::move(*work));
        work.reset();
        if (global.claim()) work = island.algorithm->next_offspring();
        const double measured =
            std::chrono::duration<double>(SteadyClock::now() - start)
                .count();
        const double hold = island.tc(global) +
                            island.ta(global, measured) + island.tc(global);
        add_hold(global, island, hold);
        co_await env.delay(hold);
        island.master->release();

        ++island.evaluations;
        ++island.since_migration;
        global.complete();
        if (auto* t = env.trace())
            t->record({obs::EventKind::result, env.now(),
                       static_cast<std::int64_t>(island.index), 0.0,
                       global.completed});

        const std::uint64_t interval = global.config->migration_interval;
        if (interval > 0 && island.since_migration >= interval &&
            global.islands.size() > 1) {
            island.since_migration = 0;
            Island& neighbour =
                *global.islands[(island.index + 1) % global.islands.size()];
            env.spawn(migrate(global, island, neighbour));
        }
    }
}

} // namespace

MultiMasterExecutor::MultiMasterExecutor(const problems::Problem& problem,
                                         moea::BorgParams params,
                                         MultiMasterConfig config)
    : problem_(problem), params_(std::move(params)), config_(config) {
    validate(config_.cluster);
    if (config_.islands == 0)
        throw std::invalid_argument("multi-master: need >= 1 island");
    if (config_.cluster.processors < 2 * config_.islands)
        throw std::invalid_argument(
            "multi-master: need >= 2 processors per island");
}

MultiMasterResult MultiMasterExecutor::run(std::uint64_t evaluations,
                                           obs::TraceSink* trace,
                                           obs::MetricsRegistry* metrics) {
    if (evaluations == 0)
        throw std::invalid_argument("multi-master: evaluations == 0");
    if (used_) throw std::logic_error("multi-master: executor already used");
    used_ = true;

    des::Environment env;
    env.set_trace(trace);
    env.set_metrics(metrics);
    Global global;
    global.config = &config_;
    global.env = &env;
    global.target = evaluations;

    // Split processors: each island gets a master; workers are distributed
    // as evenly as possible.
    const std::uint64_t islands = config_.islands;
    const std::uint64_t total_workers = config_.cluster.processors - islands;
    if (trace)
        trace->record({obs::EventKind::run_start, env.now(), -1,
                       static_cast<double>(config_.cluster.processors),
                       evaluations});
    for (std::size_t i = 0; i < islands; ++i) {
        auto island = std::make_unique<Island>();
        island->index = i;
        island->algorithm = std::make_unique<moea::BorgMoea>(
            problem_, params_,
            util::derive_seed(config_.cluster.seed, i, 100));
        island->master = std::make_unique<des::Resource>(env, 1);
        island->master->set_trace_id(static_cast<std::int64_t>(i));
        island->rng =
            util::Rng(util::derive_seed(config_.cluster.seed, i, 200));
        global.islands.push_back(std::move(island));
    }
    for (std::size_t i = 0; i < islands; ++i) {
        const std::uint64_t workers =
            total_workers / islands + (i < total_workers % islands ? 1 : 0);
        for (std::uint64_t w = 0; w < workers; ++w) {
            if (trace)
                trace->record({obs::EventKind::worker_spawn, env.now(),
                               static_cast<std::int64_t>(i), 0.0, w});
            env.spawn(island_worker(global, *global.islands[i]));
        }
    }
    env.run();

    MultiMasterResult result;
    result.evaluations = global.completed;
    result.completed_target = global.finished;
    result.elapsed = global.finished ? global.finish_time : env.now();
    result.migrations = global.migrations;

    moea::EpsilonBoxArchive combined(params_.epsilons);
    for (const auto& island : global.islands) {
        result.island_evaluations.push_back(island->evaluations);
        result.island_busy_fraction.push_back(
            result.elapsed > 0.0 ? island->master_hold / result.elapsed
                                 : 0.0);
        for (const moea::Solution& s : island->algorithm->archive().solutions())
            combined.add(s);
    }
    result.combined_archive = combined.solutions();
    if (trace)
        trace->record({obs::EventKind::run_end, result.elapsed, -1,
                       result.elapsed, global.completed});
    if (metrics) {
        metrics->counter("mm.results").inc(global.completed);
        metrics->counter("mm.migrations").inc(global.migrations);
        metrics->gauge("mm.elapsed_seconds").set(result.elapsed);
    }
    return result;
}

} // namespace borg::parallel
