#include "parallel/multi_master.hpp"

#include <chrono>
#include <optional>
#include <stdexcept>

#include "des/environment.hpp"
#include "des/resource.hpp"
#include "util/rng.hpp"

namespace borg::parallel {

namespace {

using SteadyClock = std::chrono::steady_clock;

struct Island;

/// Run-global state shared by all islands.
struct Global {
    const MultiMasterConfig* config = nullptr;
    des::Environment* env = nullptr;
    std::uint64_t target = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t completed = 0;
    std::uint64_t migrations = 0;
    double finish_time = 0.0;
    std::vector<std::unique_ptr<Island>> islands;

    bool claim() {
        if (dispatched >= target) return false;
        ++dispatched;
        return true;
    }

    void complete() {
        if (++completed == target) {
            finish_time = env->now();
            env->stop();
        }
    }
};

struct Island {
    std::size_t index = 0;
    std::unique_ptr<moea::BorgMoea> algorithm;
    std::unique_ptr<des::Resource> master;
    util::Rng rng{1};
    std::uint64_t evaluations = 0;
    std::uint64_t since_migration = 0;
    double master_hold = 0.0;

    double tf(const Global& g) { return g.config->cluster.tf->sample(rng); }
    double tc(const Global& g) { return g.config->cluster.tc->sample(rng); }

    /// Applied T_A: sampled, or measured from the real master step the
    /// caller just timed.
    double ta(const Global& g, double measured) {
        return g.config->cluster.ta ? g.config->cluster.ta->sample(rng)
                                    : measured;
    }
};

/// Delivers one migrant into the target island through its master.
des::Process migrate(Global& global, Island& from, Island& to) {
    des::Environment& env = *global.env;
    const auto& archive = from.algorithm->archive();
    if (archive.empty()) co_return;
    moea::Solution migrant =
        archive[static_cast<std::size_t>(from.rng.below(archive.size()))];

    co_await to.master->acquire();
    const auto start = SteadyClock::now();
    to.algorithm->receive(std::move(migrant));
    const double measured =
        std::chrono::duration<double>(SteadyClock::now() - start).count();
    const double hold = to.tc(global) + to.ta(global, measured);
    to.master_hold += hold;
    co_await env.delay(hold);
    to.master->release();
    ++global.migrations;
}

des::Process island_worker(Global& global, Island& island) {
    des::Environment& env = *global.env;
    std::optional<moea::Solution> work;

    // Initial assignment from this island's master.
    {
        co_await island.master->acquire();
        if (global.claim()) work = island.algorithm->next_offspring();
        const double hold = island.tc(global);
        island.master_hold += hold;
        co_await env.delay(hold);
        island.master->release();
    }

    const problems::Problem& problem = island.algorithm->problem();
    while (work) {
        moea::evaluate(problem, *work);
        co_await env.delay(island.tf(global));

        co_await island.master->acquire();
        const auto start = SteadyClock::now();
        island.algorithm->receive(std::move(*work));
        work.reset();
        if (global.claim()) work = island.algorithm->next_offspring();
        const double measured =
            std::chrono::duration<double>(SteadyClock::now() - start)
                .count();
        const double hold = island.tc(global) +
                            island.ta(global, measured) + island.tc(global);
        island.master_hold += hold;
        co_await env.delay(hold);
        island.master->release();

        ++island.evaluations;
        ++island.since_migration;
        global.complete();

        const std::uint64_t interval = global.config->migration_interval;
        if (interval > 0 && island.since_migration >= interval &&
            global.islands.size() > 1) {
            island.since_migration = 0;
            Island& neighbour =
                *global.islands[(island.index + 1) % global.islands.size()];
            env.spawn(migrate(global, island, neighbour));
        }
    }
}

} // namespace

MultiMasterExecutor::MultiMasterExecutor(const problems::Problem& problem,
                                         moea::BorgParams params,
                                         MultiMasterConfig config)
    : problem_(problem), params_(std::move(params)), config_(config) {
    validate(config_.cluster);
    if (config_.islands == 0)
        throw std::invalid_argument("multi-master: need >= 1 island");
    if (config_.cluster.processors < 2 * config_.islands)
        throw std::invalid_argument(
            "multi-master: need >= 2 processors per island");
}

MultiMasterResult MultiMasterExecutor::run(std::uint64_t evaluations) {
    if (evaluations == 0)
        throw std::invalid_argument("multi-master: evaluations == 0");
    if (used_) throw std::logic_error("multi-master: executor already used");
    used_ = true;

    des::Environment env;
    Global global;
    global.config = &config_;
    global.env = &env;
    global.target = evaluations;

    // Split processors: each island gets a master; workers are distributed
    // as evenly as possible.
    const std::uint64_t islands = config_.islands;
    const std::uint64_t total_workers = config_.cluster.processors - islands;
    for (std::size_t i = 0; i < islands; ++i) {
        auto island = std::make_unique<Island>();
        island->index = i;
        island->algorithm = std::make_unique<moea::BorgMoea>(
            problem_, params_,
            util::derive_seed(config_.cluster.seed, i, 100));
        island->master = std::make_unique<des::Resource>(env, 1);
        island->rng =
            util::Rng(util::derive_seed(config_.cluster.seed, i, 200));
        global.islands.push_back(std::move(island));
    }
    for (std::size_t i = 0; i < islands; ++i) {
        const std::uint64_t workers =
            total_workers / islands + (i < total_workers % islands ? 1 : 0);
        for (std::uint64_t w = 0; w < workers; ++w)
            env.spawn(island_worker(global, *global.islands[i]));
    }
    env.run();

    MultiMasterResult result;
    result.evaluations = global.completed;
    result.elapsed =
        global.finish_time > 0.0 ? global.finish_time : env.now();
    result.migrations = global.migrations;

    moea::EpsilonBoxArchive combined(params_.epsilons);
    for (const auto& island : global.islands) {
        result.island_evaluations.push_back(island->evaluations);
        result.island_busy_fraction.push_back(
            result.elapsed > 0.0 ? island->master_hold / result.elapsed
                                 : 0.0);
        for (const moea::Solution& s : island->algorithm->archive().solutions())
            combined.add(s);
    }
    result.combined_archive = combined.solutions();
    return result;
}

} // namespace borg::parallel
