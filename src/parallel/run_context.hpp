#ifndef BORG_PARALLEL_RUN_CONTEXT_HPP
#define BORG_PARALLEL_RUN_CONTEXT_HPP

/// \file run_context.hpp
/// The observability bundle every executor run accepts: trajectory
/// checkpointing, the typed event trace, and the metrics registry. One
/// struct replaces the trailing `(recorder, trace, metrics)` pointer
/// parameters that each executor signature used to grow independently —
/// call sites name only what they attach:
///
///     exec.run(n, {.trace = &trace, .metrics = &metrics});
///
/// Every sink is optional; a null sink costs one pointer test on the hot
/// path. The referenced objects must outlive the run.

namespace borg::obs {
class TraceSink;
class MetricsRegistry;
} // namespace borg::obs

namespace borg::parallel {

class TrajectoryRecorder;

struct RunContext {
    /// Receives a callback after every ingested result (event-driven
    /// protocols) or generation (barrier protocols). Not every executor
    /// supports checkpointing; those that do say so on their run().
    TrajectoryRecorder* recorder = nullptr;
    /// Receives the full typed event stream (DESIGN.md §8).
    obs::TraceSink* trace = nullptr;
    /// Receives counters/gauges/histograms under the executor's prefix.
    obs::MetricsRegistry* metrics = nullptr;
};

} // namespace borg::parallel

#endif
