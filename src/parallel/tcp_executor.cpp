#include "parallel/tcp_executor.hpp"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <deque>
#include <map>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "obs/event_trace.hpp"
#include "obs/metrics_registry.hpp"
#include "parallel/master_policies.hpp"

namespace borg::parallel {

namespace {

using SteadyClock = std::chrono::steady_clock;

std::uint64_t steady_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            SteadyClock::now().time_since_epoch())
            .count());
}

} // namespace

struct TcpRunManager::Impl {
    // One connected socket in some lifecycle state. `handshaking` sockets
    // have no worker identity yet; `closing` ones carry a handshake
    // rejection that still needs to drain before the close.
    struct Conn {
        net::Socket socket;
        net::FrameReader reader;
        std::vector<std::uint8_t> outbox;
        std::size_t outbox_off = 0;
        enum class State { handshaking, active, closing } state =
            State::handshaking;
        std::uint32_t worker_id = 0; ///< valid once active
        std::optional<std::uint64_t> task;
        SteadyClock::time_point last_heard;
        bool dead = false;
    };

    // The master-side record of one dispatched evaluation. The full
    // Solution (operator tag included) never leaves this slot; the wire
    // only moves variables out and objectives back, so the ingested
    // solution is bit-exact with what the policy generated no matter how
    // many times the task was reassigned.
    struct TaskSlot {
        moea::Solution retained;
        bool done = false;
        std::uint32_t dispatch_count = 0;
    };

    // A completed evaluation parked until its sequence turn (dispatch
    // mode) or ingested immediately (arrival mode).
    struct ReadyResult {
        std::uint32_t worker_id = 0;
        double eval_seconds = 0.0;
        double measured_tc = 0.0;
    };

    TcpRunConfig config;
    net::Listener listener;
    bool ran = false;

    // Per-run state (valid during run()).
    ClusterEngine* engine = nullptr;
    const problems::Problem* problem = nullptr;
    obs::TraceSink* trace = nullptr;
    TcpRunStats stats;
    std::vector<std::unique_ptr<Conn>> conns;
    std::vector<TaskSlot> tasks;
    std::deque<std::uint64_t> pending; ///< task seqs awaiting a worker
    std::deque<std::uint32_t> idle;    ///< worker ids awaiting a task
    std::map<std::uint64_t, ReadyResult> ready; ///< reorder buffer
    std::uint64_t next_ingest = 0;
    std::uint32_t next_worker_id = 0;
    bool finished = false;

    explicit Impl(const TcpRunConfig& cfg)
        : config(cfg), listener(cfg.host, cfg.port) {}

    static WorkerRef ref_of(std::uint32_t worker_id) {
        const auto id = static_cast<std::size_t>(worker_id);
        return WorkerRef{0, id, id};
    }

    Conn* find_active(std::uint32_t worker_id) {
        for (auto& conn : conns)
            if (!conn->dead && conn->state == Conn::State::active &&
                conn->worker_id == worker_id)
                return conn.get();
        return nullptr;
    }

    void queue_frame(Conn& conn, const net::Message& message) {
        const std::vector<std::uint8_t> frame = net::encode_frame(message);
        conn.outbox.insert(conn.outbox.end(), frame.begin(), frame.end());
    }

    /// Drains as much outbox as the socket accepts right now. A hard send
    /// failure is a peer loss; a fully drained `closing` conn is closed.
    void flush(Conn& conn) {
        while (!conn.dead && conn.outbox_off < conn.outbox.size()) {
            const auto chunk = std::span<const std::uint8_t>(
                conn.outbox.data() + conn.outbox_off,
                conn.outbox.size() - conn.outbox_off);
            const net::Socket::IoResult io = conn.socket.send_some(chunk);
            if (io.closed) {
                conn_lost(conn, /*graceful=*/false);
                return;
            }
            if (io.bytes == 0) return; // would block; POLLOUT resumes us
            conn.outbox_off += io.bytes;
            stats.bytes_sent += io.bytes;
        }
        if (conn.outbox_off == conn.outbox.size()) {
            conn.outbox.clear();
            conn.outbox_off = 0;
            if (conn.state == Conn::State::closing) close_quietly(conn);
        }
    }

    /// Closes a socket that never completed (or failed) its handshake —
    /// no worker existed, so nothing to reassign or count.
    void close_quietly(Conn& conn) {
        conn.socket.close();
        conn.dead = true;
    }

    /// A peer left: by Goodbye frame (graceful), or by EOF / reset /
    /// heartbeat timeout (a failure). Outstanding work is reassigned
    /// either way; only failures count as worker_failure — the transport
    /// retains the dispatched solution, so unlike the virtual cluster the
    /// policy is never told (no claim is lost).
    void conn_lost(Conn& conn, bool graceful) {
        if (conn.dead) return;
        if (conn.state != Conn::State::active) {
            close_quietly(conn);
            return;
        }
        ++stats.disconnects;
        if (graceful) ++stats.graceful_leaves;
        if (trace)
            trace->record({obs::EventKind::net_disconnect, engine->now(),
                           static_cast<std::int64_t>(conn.worker_id), 0.0,
                           graceful ? 1u : 0u});
        if (!graceful) engine->external_worker_failure(ref_of(conn.worker_id));
        if (conn.task) reassign(*conn.task, conn.worker_id);
        conn.socket.close();
        conn.dead = true;
    }

    /// Returns a lost task to the front of the queue (front: the lowest
    /// outstanding seq gates the reorder buffer, so re-running it first
    /// minimizes parked results).
    void reassign(std::uint64_t seq, std::uint32_t worker_id) {
        TaskSlot& slot = tasks[seq];
        if (slot.done) return;
        pending.push_front(seq);
        ++stats.reassignments;
        if (trace)
            trace->record({obs::EventKind::net_reassign, engine->now(),
                           static_cast<std::int64_t>(worker_id),
                           static_cast<double>(seq), slot.dispatch_count});
    }

    /// Matches queued tasks to idle workers, FIFO on both sides.
    void dispatch_pending() {
        while (!pending.empty() && !idle.empty()) {
            const std::uint32_t worker_id = idle.front();
            idle.pop_front();
            Conn* conn = find_active(worker_id);
            if (conn == nullptr || conn->task) continue; // stale idle entry
            const std::uint64_t seq = pending.front();
            pending.pop_front();
            TaskSlot& slot = tasks[seq];
            ++slot.dispatch_count;
            ++stats.tasks_sent;
            conn->task = seq;
            queue_frame(*conn, net::Task{seq, slot.retained.variables});
            flush(*conn);
        }
    }

    /// One master service: measured T_F and T_C feed the engine, the
    /// policy ingests the retained (patched) solution and may fund the
    /// next task.
    void ingest(std::uint64_t seq, const ReadyResult& meta) {
        const WorkerRef worker = ref_of(meta.worker_id);
        engine->external_tf(worker, meta.eval_seconds);
        WorkItem work;
        work.solution = std::move(tasks[seq].retained);
        const ClusterEngine::ExternalServe serve =
            engine->external_result(worker, std::move(work), meta.measured_tc);
        if (serve.next) {
            if (!serve.next->solution)
                throw TcpError("tcp manager: policy produced an empty work "
                               "item (statistics-only policies cannot run "
                               "over a real transport)");
            const std::uint64_t next_seq = tasks.size();
            tasks.push_back(TaskSlot{std::move(*serve.next->solution)});
            pending.push_back(next_seq);
        }
        if (serve.finished) finished = true;
    }

    void handle_hello(Conn& conn, net::Hello&& hello) {
        if (conn.state != Conn::State::handshaking) {
            conn_lost(conn, /*graceful=*/false);
            return;
        }
        std::string reason;
        if (hello.problem != problem->name())
            reason = "problem mismatch: master runs '" + problem->name() +
                     "', worker built '" + hello.problem + "'";
        else if (hello.num_variables != problem->num_variables() ||
                 hello.num_objectives != problem->num_objectives() ||
                 hello.num_constraints != problem->num_constraints())
            reason = "problem dimensions differ from the master's";
        if (!reason.empty()) {
            ++stats.handshake_rejects;
            queue_frame(conn, net::HelloAck{false, 0, 0, reason});
            conn.state = Conn::State::closing;
            flush(conn);
            return;
        }
        const std::uint32_t id = next_worker_id++;
        conn.state = Conn::State::active;
        conn.worker_id = id;
        ++stats.connects;
        if (hello.connect_attempts > 1)
            stats.connect_retries += hello.connect_attempts - 1;
        engine->external_spawn(ref_of(id));
        if (trace)
            trace->record({obs::EventKind::net_connect, engine->now(),
                           static_cast<std::int64_t>(id),
                           static_cast<double>(hello.connect_attempts), 0});
        queue_frame(conn,
                    net::HelloAck{true, id, config.heartbeat_interval_ms, ""});
        idle.push_back(id);
        flush(conn);
    }

    void handle_result(Conn& conn, net::Result&& result) {
        if (conn.state != Conn::State::active || !conn.task ||
            *conn.task != result.seq || result.seq >= tasks.size()) {
            conn_lost(conn, /*graceful=*/false);
            return;
        }
        TaskSlot& slot = tasks[result.seq];
        conn.task.reset();
        idle.push_back(conn.worker_id);
        if (slot.done) {
            // Another incarnation of this task already landed (it was
            // reassigned and both copies finished); drop the duplicate.
            ++stats.stale_results;
            return;
        }
        if (result.objectives.size() != problem->num_objectives() ||
            result.constraints.size() != problem->num_constraints()) {
            conn_lost(conn, /*graceful=*/false);
            return;
        }
        slot.retained.set_objectives(result.objectives);
        slot.retained.constraints = std::move(result.constraints);
        slot.done = true;
        ++stats.results_received;

        const std::uint64_t now_ns = steady_ns();
        ReadyResult meta;
        meta.worker_id = conn.worker_id;
        meta.eval_seconds = result.eval_seconds;
        meta.measured_tc = now_ns > result.sent_at_ns
                               ? static_cast<double>(now_ns -
                                                     result.sent_at_ns) *
                                     1e-9
                               : 0.0;

        if (config.ingest == IngestOrder::arrival) {
            ingest(result.seq, meta);
            return;
        }
        // Window protocol: park until this result's sequence turn, then
        // drain everything that became consecutive.
        ready.emplace(result.seq, meta);
        for (auto hit = ready.find(next_ingest);
             hit != ready.end() && !finished; hit = ready.find(next_ingest)) {
            const ReadyResult turn = hit->second;
            ready.erase(hit);
            const std::uint64_t seq = next_ingest++;
            ingest(seq, turn);
        }
    }

    void handle_message(Conn& conn, net::Message&& message) {
        if (auto* hello = std::get_if<net::Hello>(&message)) {
            handle_hello(conn, std::move(*hello));
        } else if (auto* result = std::get_if<net::Result>(&message)) {
            handle_result(conn, std::move(*result));
        } else if (std::get_if<net::Heartbeat>(&message) != nullptr) {
            // Liveness only; last_heard was already refreshed by the read.
        } else if (std::get_if<net::Goodbye>(&message) != nullptr) {
            conn_lost(conn, /*graceful=*/true);
        } else {
            // HelloAck / Task / Shutdown are master->worker only.
            conn_lost(conn, /*graceful=*/false);
        }
    }

    void read_from(Conn& conn) {
        std::uint8_t buffer[4096];
        bool closed = false;
        for (;;) {
            const net::Socket::IoResult io = conn.socket.recv_some(buffer);
            if (io.bytes > 0) {
                stats.bytes_received += io.bytes;
                conn.last_heard = SteadyClock::now();
                conn.reader.feed({buffer, io.bytes});
            }
            if (io.closed) {
                closed = true;
                break;
            }
            if (io.bytes == 0) break; // drained
        }
        try {
            std::optional<net::Message> message;
            while (!conn.dead && !finished &&
                   (message = conn.reader.next())) {
                handle_message(conn, std::move(*message));
            }
        } catch (const net::ProtocolError&) {
            // Malformed bytes: the stream is unrecoverable. Treated as a
            // peer loss — work is reassigned, the run continues.
            conn_lost(conn, /*graceful=*/false);
        }
        if (closed) conn_lost(conn, /*graceful=*/false);
    }

    void accept_all() {
        while (std::optional<net::Socket> socket = listener.accept_ready()) {
            auto conn = std::make_unique<Conn>();
            conn->socket = std::move(*socket);
            conn->socket.set_nonblocking(true);
            conn->socket.set_nodelay(true);
            conn->last_heard = SteadyClock::now();
            conns.push_back(std::move(conn));
        }
    }

    void reap_heartbeats() {
        const auto now = SteadyClock::now();
        const auto limit =
            std::chrono::milliseconds(config.heartbeat_timeout_ms);
        for (auto& conn : conns) {
            if (conn->dead || now - conn->last_heard <= limit) continue;
            if (conn->state == Conn::State::active) {
                ++stats.heartbeat_timeouts;
                conn_lost(*conn, /*graceful=*/false);
            } else {
                close_quietly(*conn); // silent half-open handshake
            }
        }
    }

    /// Best-effort: tell live workers the run is over, give their
    /// outboxes a moment to drain, then close everything.
    void broadcast_shutdown() {
        for (auto& conn : conns) {
            if (conn->dead || conn->state != Conn::State::active) continue;
            queue_frame(*conn, net::Shutdown{});
            flush(*conn);
        }
        const auto deadline =
            SteadyClock::now() + std::chrono::milliseconds(200);
        for (;;) {
            bool outstanding = false;
            for (auto& conn : conns) {
                if (conn->dead) continue;
                if (conn->outbox_off < conn->outbox.size()) flush(*conn);
                outstanding |= !conn->dead &&
                               conn->outbox_off < conn->outbox.size();
            }
            if (!outstanding || SteadyClock::now() >= deadline) break;
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        for (auto& conn : conns)
            if (!conn->dead) close_quietly(*conn);
    }

    void publish_metrics(obs::MetricsRegistry& metrics) const {
        metrics.counter("net.connects").inc(stats.connects);
        metrics.counter("net.disconnects").inc(stats.disconnects);
        metrics.counter("net.graceful_leaves").inc(stats.graceful_leaves);
        metrics.counter("net.handshake_rejects").inc(stats.handshake_rejects);
        metrics.counter("net.reassignments").inc(stats.reassignments);
        metrics.counter("net.heartbeat_timeouts")
            .inc(stats.heartbeat_timeouts);
        metrics.counter("net.stale_results").inc(stats.stale_results);
        metrics.counter("net.connect_retries").inc(stats.connect_retries);
        metrics.counter("net.tasks_sent").inc(stats.tasks_sent);
        metrics.counter("net.results_received").inc(stats.results_received);
        metrics.counter("net.bytes_sent").inc(stats.bytes_sent);
        metrics.counter("net.bytes_received").inc(stats.bytes_received);
    }

    TcpRunResult run(EventMasterPolicy& policy,
                     const problems::Problem& run_problem,
                     std::uint64_t evaluations, const RunContext& ctx) {
        if (ran) throw std::logic_error("tcp manager: run() already served");
        ran = true;
        if (evaluations == 0)
            throw std::invalid_argument("tcp manager: evaluations == 0");

        problem = &run_problem;
        trace = ctx.trace;

        ClusterEngine::Setup setup;
        setup.real_time = true;
        setup.processors = config.workers_expected + 1;
        setup.groups = {{config.workers_expected, 1, 0}};
        ClusterEngine run_engine(std::move(setup), ctx);
        engine = &run_engine;
        engine->external_begin(policy, evaluations);

        // Claim the whole window up front: W tasks generated before any
        // ingest, exactly like the thread executor's seeding loop — this
        // is what makes the dispatch-order archive a pure function of
        // (seed, W, N) rather than of connection timing.
        for (std::size_t w = 0; w < config.workers_expected; ++w) {
            std::optional<WorkItem> work = engine->external_dispatch_initial(
                WorkerRef{0, w, w});
            if (!work) break;
            if (!work->solution)
                throw TcpError("tcp manager: policy produced an empty "
                               "initial work item");
            pending.push_back(tasks.size());
            tasks.push_back(TaskSlot{std::move(*work->solution)});
        }

        const auto run_start = SteadyClock::now();
        std::vector<pollfd> fds;
        std::vector<Conn*> polled;
        while (!finished) {
            if (config.run_timeout_s > 0.0 &&
                std::chrono::duration<double>(SteadyClock::now() - run_start)
                        .count() > config.run_timeout_s)
                throw TcpError("tcp manager: run timeout exceeded");

            fds.clear();
            polled.clear();
            fds.push_back({listener.fd(), POLLIN, 0});
            for (auto& conn : conns) {
                if (conn->dead) continue;
                short events = POLLIN;
                if (conn->outbox_off < conn->outbox.size()) events |= POLLOUT;
                fds.push_back({conn->socket.fd(), events, 0});
                polled.push_back(conn.get());
            }
            const int rc = ::poll(fds.data(),
                                  static_cast<nfds_t>(fds.size()), 20);
            if (rc < 0 && errno != EINTR)
                throw TcpError("tcp manager: poll failed");

            if ((fds[0].revents & POLLIN) != 0) accept_all();
            for (std::size_t i = 0; i < polled.size() && !finished; ++i) {
                Conn& conn = *polled[i];
                const short got = fds[i + 1].revents;
                if (conn.dead || got == 0) continue;
                if ((got & POLLOUT) != 0) flush(conn);
                if (!conn.dead &&
                    (got & (POLLIN | POLLHUP | POLLERR)) != 0)
                    read_from(conn);
            }
            if (finished) break;
            reap_heartbeats();
            dispatch_pending();
            std::erase_if(conns,
                          [](const std::unique_ptr<Conn>& c) {
                              return c->dead;
                          });
        }

        listener.close();
        broadcast_shutdown();

        TcpRunResult result;
        result.run = engine->external_finish();
        result.net = stats;
        if (ctx.metrics) publish_metrics(*ctx.metrics);
        engine = nullptr;
        problem = nullptr;
        return result;
    }
};

TcpRunManager::TcpRunManager(const TcpRunConfig& config) {
    if (config.workers_expected == 0)
        throw std::invalid_argument("tcp manager: workers_expected == 0");
    try {
        impl_ = std::make_unique<Impl>(config);
    } catch (const net::SocketError& error) {
        throw TcpError(std::string("tcp manager: cannot listen on ") +
                       config.host + ": " + error.what());
    }
}

TcpRunManager::~TcpRunManager() = default;

std::uint16_t TcpRunManager::port() const noexcept {
    return impl_->listener.port();
}

TcpRunResult TcpRunManager::run(EventMasterPolicy& policy,
                                const problems::Problem& problem,
                                std::uint64_t evaluations,
                                const RunContext& ctx) {
    return impl_->run(policy, problem, evaluations, ctx);
}

TcpMasterSlaveExecutor::TcpMasterSlaveExecutor(
    moea::BorgMoea& algorithm, const problems::Problem& problem,
    const TcpRunConfig& config)
    : algorithm_(algorithm), problem_(problem), manager_(config) {}

TcpRunResult TcpMasterSlaveExecutor::run(std::uint64_t evaluations,
                                         const RunContext& ctx) {
    if (algorithm_.evaluations() != 0)
        throw std::logic_error("tcp executor: algorithm already used");
    AsyncBorgPolicy policy(algorithm_, problem_);
    return manager_.run(policy, problem_, evaluations, ctx);
}

} // namespace borg::parallel
