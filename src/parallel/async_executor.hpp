#ifndef BORG_PARALLEL_ASYNC_EXECUTOR_HPP
#define BORG_PARALLEL_ASYNC_EXECUTOR_HPP

/// \file async_executor.hpp
/// The asynchronous, master-slave Borg MOEA on a virtual-time cluster.
///
/// This executor runs the *real* algorithm — real operators, real archive,
/// real restarts — under the exact event protocol of the paper's MPI
/// implementation:
///
///   * whenever a worker becomes free, the master generates a new
///     offspring for it (BorgMoea::next_offspring);
///   * whenever a worker's result returns, the master ingests it
///     immediately (BorgMoea::receive) and hands the worker fresh work;
///   * workers never wait on each other; they only queue (FIFO) for the
///     master.
///
/// Time is virtual: evaluation occupies the worker for a sampled T_F,
/// messages cost sampled T_C, and the master is held for T_C + T_A + T_C
/// per result, with T_A either sampled from a configured distribution or
/// *measured* from the real master-step CPU time. The returned elapsed
/// time is therefore the paper's T_P, and the recorded archive dynamics
/// are the algorithm's true dynamics under that processor count.

#include <cstdint>

#include "moea/borg.hpp"
#include "parallel/run_context.hpp"
#include "parallel/trajectory.hpp"
#include "parallel/virtual_cluster.hpp"

namespace borg::parallel {

class AsyncMasterSlaveExecutor {
public:
    /// \p algorithm must be freshly constructed (no prior evaluations);
    /// \p problem is the evaluation function the simulated workers apply.
    /// Both must outlive the executor.
    AsyncMasterSlaveExecutor(moea::BorgMoea& algorithm,
                             const problems::Problem& problem,
                             VirtualClusterConfig config);

    /// Runs until \p evaluations results have been ingested. \p ctx
    /// attaches the optional observability sinks: ctx.recorder receives a
    /// callback after every ingested result; ctx.trace the full typed
    /// event stream (worker spawns and failures, master acquire/release
    /// with queue depth, per-evaluation T_F/T_C/T_A samples, archive
    /// snapshots — DESIGN.md §8); ctx.metrics counters/gauges/histograms
    /// under the "async." prefix. Null sinks cost nothing on the hot path.
    VirtualRunResult run(std::uint64_t evaluations,
                         const RunContext& ctx = {});

private:
    moea::BorgMoea& algorithm_;
    const problems::Problem& problem_;
    VirtualClusterConfig config_;
};

/// The serial baseline on the same virtual clock: one processor executes
/// generate → evaluate → receive with t advancing by T_F + T_A per
/// evaluation (no communication), yielding the paper's T_S and the serial
/// hypervolume trajectory T_S^h. T_A is sampled or measured exactly as in
/// the parallel executor.
/// Only ctx.recorder is consulted (a serial run has no cluster events).
VirtualRunResult run_serial_virtual(moea::BorgMoea& algorithm,
                                    const problems::Problem& problem,
                                    const VirtualClusterConfig& config,
                                    std::uint64_t evaluations,
                                    const RunContext& ctx = {});

} // namespace borg::parallel

#endif
