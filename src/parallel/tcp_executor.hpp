#ifndef BORG_PARALLEL_TCP_EXECUTOR_HPP
#define BORG_PARALLEL_TCP_EXECUTOR_HPP

/// \file tcp_executor.hpp
/// The real-transport run manager: the asynchronous master-slave protocol
/// over TCP sockets (DESIGN.md §14).
///
/// The master binds a listening socket; `borg_worker` processes connect,
/// self-describe (handshake), evaluate tasks, and heartbeat. The manager
/// owns only the transport — sockets, frames, worker liveness, task
/// retention and reassignment. Scheduling semantics come from the same
/// EventMasterPolicy objects the virtual-time executors use, driven
/// through ClusterEngine's external (real-time) mode, so an AsyncBorgPolicy
/// runs byte-for-byte the same algorithm over real hardware as it does in
/// simulation.
///
/// Determinism: under IngestOrder::dispatch (the default) results are
/// ingested strictly in task-sequence order through a reorder buffer, and
/// the master retains every dispatched Solution (the wire round-trip only
/// carries variables out and objectives back). The final archive is then a
/// pure function of (seed, window = workers_expected, evaluations) —
/// byte-identical to ThreadMasterSlaveExecutor in dispatch mode with the
/// same window, and invariant under worker churn, late joins, kill -9, and
/// reassignment (tests/test_tcp_executor.cpp holds the gates).
///
/// Fault model: a dead socket (kill -9 → EOF/reset) reassigns the worker's
/// outstanding task immediately; a hung worker is reaped by heartbeat
/// timeout (the backstop — workers evaluate single-threaded, so the
/// timeout must exceed the worst-case single evaluation). A Goodbye frame
/// is a graceful leave: the worker departs without being counted as a
/// failure, and any outstanding task is reassigned. Workers may join at
/// any point during the run.

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "moea/borg.hpp"
#include "parallel/cluster_engine.hpp"
#include "parallel/message.hpp"
#include "parallel/run_context.hpp"
#include "parallel/virtual_cluster.hpp"
#include "problems/problem.hpp"

namespace borg::parallel {

/// Transport-level failure that prevents the run from completing (cannot
/// bind, run timeout with no live workers, ...). Peer-level failures never
/// throw — they are reassignment events.
class TcpError : public std::runtime_error {
public:
    explicit TcpError(const std::string& what) : std::runtime_error(what) {}
};

struct TcpRunConfig {
    std::string host = "127.0.0.1";
    /// 0 binds an ephemeral port; TcpRunManager::port() reports it.
    std::uint16_t port = 0;
    /// The window W of the dispatch protocol: W tasks are claimed from the
    /// policy up front and the pipeline is kept W deep. Also the processor
    /// count reported to the engine (workers_expected + 1). Live workers
    /// may be fewer (stragglers, deaths) or more (late joins) at any time.
    std::size_t workers_expected = 4;
    /// dispatch = schedule-invariant window protocol (deterministic
    /// archive); arrival = ingest in arrival order (classic MPI_ANY_SOURCE
    /// semantics, nondeterministic under real concurrency).
    IngestOrder ingest = IngestOrder::dispatch;
    /// Cadence the master asks workers to heartbeat at (sent in HelloAck).
    std::uint32_t heartbeat_interval_ms = 250;
    /// Silence longer than this marks a worker dead and reassigns its
    /// task. Must exceed the worst-case single evaluation time.
    std::uint32_t heartbeat_timeout_ms = 2000;
    /// Abort the run (TcpError) after this many wall-clock seconds.
    /// 0 disables — but tests should always set it (harness safety net).
    double run_timeout_s = 0.0;
};

/// Transport counters for one run, also published as net.* metrics.
struct TcpRunStats {
    std::uint64_t connects = 0;          ///< handshakes accepted
    std::uint64_t disconnects = 0;       ///< sockets that left (any reason)
    std::uint64_t graceful_leaves = 0;   ///< Goodbye-frame departures
    std::uint64_t handshake_rejects = 0; ///< signature/version mismatches
    std::uint64_t reassignments = 0;     ///< tasks re-queued after a loss
    std::uint64_t heartbeat_timeouts = 0;
    std::uint64_t stale_results = 0;     ///< results for already-done tasks
    std::uint64_t connect_retries = 0;   ///< summed worker connect backoffs
    std::uint64_t tasks_sent = 0;        ///< Task frames (incl. redispatch)
    std::uint64_t results_received = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
};

struct TcpRunResult {
    VirtualRunResult run; ///< elapsed here is wall-clock seconds
    TcpRunStats net;
};

/// The master side. Construction binds + listens (so workers can already
/// connect while the caller finishes setup); run() serves one run to
/// completion and is not reusable.
class TcpRunManager {
public:
    explicit TcpRunManager(const TcpRunConfig& config);
    ~TcpRunManager();
    TcpRunManager(const TcpRunManager&) = delete;
    TcpRunManager& operator=(const TcpRunManager&) = delete;

    /// The actually-bound port (resolves port 0).
    std::uint16_t port() const noexcept;

    /// Serves \p evaluations results through \p policy over the socket
    /// fleet. \p problem supplies the handshake signature workers are
    /// validated against (the master never evaluates). ctx.trace receives
    /// the full event stream plus net_connect / net_disconnect /
    /// net_reassign; ctx.metrics the engine's "async.*" instruments and
    /// the transport's "net.*" counters; ctx.recorder per-result
    /// checkpoints, exactly as in the virtual executors.
    TcpRunResult run(EventMasterPolicy& policy,
                     const problems::Problem& problem,
                     std::uint64_t evaluations, const RunContext& ctx = {});

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// Convenience wrapper mirroring AsyncMasterSlaveExecutor: the real Borg
/// algorithm over TCP. Binds on construction; port() tells the harness
/// where to point the workers.
class TcpMasterSlaveExecutor {
public:
    TcpMasterSlaveExecutor(moea::BorgMoea& algorithm,
                           const problems::Problem& problem,
                           const TcpRunConfig& config);

    std::uint16_t port() const noexcept { return manager_.port(); }

    TcpRunResult run(std::uint64_t evaluations, const RunContext& ctx = {});

private:
    moea::BorgMoea& algorithm_;
    const problems::Problem& problem_;
    TcpRunManager manager_;
};

} // namespace borg::parallel

#endif
