#ifndef BORG_PARALLEL_TRACE_CHECK_HPP
#define BORG_PARALLEL_TRACE_CHECK_HPP

/// \file trace_check.hpp
/// Adapts executor results to the obs-layer trace cross-validator.
///
/// The recompute-and-compare logic lives entirely in obs/trace_check.hpp
/// (one layer, one copy of the arithmetic); this header only projects a
/// VirtualRunResult onto obs::ReportedRun. Every quantity the paper's
/// model consumes — master busy fraction (saturation, Eq. 3 inputs), mean
/// queue wait, contention rate, applied T_F/T_A summaries, elapsed T_P —
/// must agree between the executor's accounting and the trace within
/// \p tol. The `trace_check` bench driver and the event-trace tests run
/// this after real runs, so any future drift in engine or policy
/// bookkeeping fails loudly instead of skewing results.

#include <string>
#include <vector>

#include "obs/trace_check.hpp"
#include "parallel/virtual_cluster.hpp"

namespace borg::parallel {

/// \p check_samples: false for protocols that do not mirror T_F/T_A draws
/// into the trace (the multi-master executor).
inline obs::ReportedRun to_reported(const VirtualRunResult& result,
                                    bool check_samples = true) {
    obs::ReportedRun reported;
    reported.evaluations = result.evaluations;
    reported.failed_workers =
        static_cast<std::uint64_t>(result.failed_workers);
    reported.completed_target = result.completed_target;
    reported.elapsed = result.elapsed;
    reported.master_busy_fraction = result.master_busy_fraction;
    reported.mean_queue_wait = result.mean_queue_wait;
    reported.contention_rate = result.contention_rate;
    reported.check_samples = check_samples;
    reported.tf_count = result.tf_applied.count;
    reported.tf_mean = result.tf_applied.mean;
    reported.ta_count = result.ta_applied.count;
    reported.ta_mean = result.ta_applied.mean;
    return reported;
}

/// Returns one human-readable message per discrepancy; empty means the
/// trace and the reported result are consistent. \p tol is the absolute
/// tolerance for floating-point comparisons (counts must match exactly).
inline std::vector<std::string>
cross_validate(const obs::EventTrace& trace, const VirtualRunResult& reported,
               double tol = 1e-9) {
    return obs::cross_validate(trace, to_reported(reported), tol);
}

} // namespace borg::parallel

#endif
