#ifndef BORG_PARALLEL_TRACE_CHECK_HPP
#define BORG_PARALLEL_TRACE_CHECK_HPP

/// \file trace_check.hpp
/// Cross-validates an executor's reported VirtualRunResult against the
/// aggregates recomputed from its own event trace (obs::recompute).
///
/// Every quantity the paper's model consumes — master busy fraction
/// (saturation, Eq. 3 inputs), mean queue wait (the contention the
/// analytical model misses), contention rate, applied T_F/T_A summaries,
/// elapsed T_P — must agree between the two accountings within \p tol.
/// The `trace_check` bench driver and the event-trace tests run this after
/// real runs, so any future drift in executor bookkeeping (like the
/// fault-path and elapsed-time bugs this layer was built to catch) fails
/// loudly instead of skewing results.

#include <string>
#include <vector>

#include "obs/event_trace.hpp"
#include "parallel/virtual_cluster.hpp"

namespace borg::parallel {

/// Returns one human-readable message per discrepancy; empty means the
/// trace and the reported result are consistent. \p tol is the absolute
/// tolerance for floating-point comparisons (counts must match exactly).
std::vector<std::string> cross_validate(const obs::EventTrace& trace,
                                        const VirtualRunResult& reported,
                                        double tol = 1e-9);

} // namespace borg::parallel

#endif
