#ifndef BORG_PARALLEL_TRAJECTORY_HPP
#define BORG_PARALLEL_TRAJECTORY_HPP

/// \file trajectory.hpp
/// Records (time, evaluations, normalized hypervolume) checkpoints during a
/// run. The paper's Figures 3 and 4 need, for every configuration, the
/// first time each hypervolume threshold h was attained — for both the
/// serial baseline (T_S^h) and the parallel runs (T_P^h), giving the
/// hypervolume-based speedup S_P^h = T_S^h / T_P^h.

#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "metrics/hypervolume.hpp"

namespace borg::parallel {

struct TrajectoryPoint {
    double time = 0.0; ///< virtual (or wall) seconds since run start
    std::uint64_t evaluations = 0;
    double hypervolume = 0.0; ///< normalized, 1 is ideal
};

class TrajectoryRecorder {
public:
    /// Computes a hypervolume checkpoint every \p interval evaluations
    /// (and on finalize). The normalizer must outlive the recorder.
    ///
    /// With \p defer_hypervolume set, checkpoints only snapshot the front
    /// (cheap copy) and the exact WFG hypervolume — the dominant cost of a
    /// checkpointed run — is computed later by resolve_pending(), lifting
    /// it off the simulation path. Deferred or not, the recorded values
    /// are identical: the same fronts meet the same normalizer.
    TrajectoryRecorder(const metrics::HypervolumeNormalizer& normalizer,
                       std::uint64_t interval,
                       bool defer_hypervolume = false);

    /// Called by executors after every ingested result. \p front is only
    /// invoked at checkpoints, so suppliers may be arbitrarily expensive.
    void on_result(double time, std::uint64_t evaluations,
                   const std::function<metrics::Front()>& front);

    /// Forces a final checkpoint at the run's end state.
    void finalize(double time, std::uint64_t evaluations,
                  const std::function<metrics::Front()>& front);

    const std::vector<TrajectoryPoint>& points() const noexcept {
        return points_;
    }

    /// Deferred checkpoints whose hypervolume has not been computed yet.
    std::size_t pending() const noexcept { return pending_.size(); }

    /// Computes the hypervolume of every deferred checkpoint. Required
    /// before reading thresholds or points when defer_hypervolume was
    /// set; a no-op otherwise.
    void resolve_pending();

    /// First recorded time at which hypervolume reached \p threshold;
    /// +infinity when the run never got there. Throws std::logic_error
    /// while deferred checkpoints are unresolved.
    double time_to_threshold(double threshold) const;

    /// Best hypervolume seen across the whole run. Throws
    /// std::logic_error while deferred checkpoints are unresolved.
    double final_hypervolume() const;

private:
    void checkpoint(double time, std::uint64_t evaluations,
                    const std::function<metrics::Front()>& front);
    void require_resolved(const char* what) const;

    const metrics::HypervolumeNormalizer& normalizer_;
    std::uint64_t interval_;
    std::uint64_t next_checkpoint_;
    bool defer_;
    std::vector<TrajectoryPoint> points_;
    /// (index into points_, snapshotted front) awaiting resolve_pending().
    std::vector<std::pair<std::size_t, metrics::Front>> pending_;
};

/// Interpolation-free threshold lookup over an arbitrary trajectory:
/// first point with hypervolume >= threshold (+inf if none). Exposed for
/// post-hoc analysis of saved trajectories.
double time_to_threshold(const std::vector<TrajectoryPoint>& points,
                         double threshold);

} // namespace borg::parallel

#endif
