#ifndef BORG_PARALLEL_TRAJECTORY_HPP
#define BORG_PARALLEL_TRAJECTORY_HPP

/// \file trajectory.hpp
/// Records (time, evaluations, normalized hypervolume) checkpoints during a
/// run. The paper's Figures 3 and 4 need, for every configuration, the
/// first time each hypervolume threshold h was attained — for both the
/// serial baseline (T_S^h) and the parallel runs (T_P^h), giving the
/// hypervolume-based speedup S_P^h = T_S^h / T_P^h.

#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "metrics/hypervolume.hpp"

namespace borg::util {
class ThreadPool;
} // namespace borg::util

namespace borg::parallel {

struct TrajectoryPoint {
    double time = 0.0; ///< virtual (or wall) seconds since run start
    std::uint64_t evaluations = 0;
    double hypervolume = 0.0; ///< normalized, 1 is ideal
};

/// What a resolve_pending() call actually did: how many deferred
/// checkpoints were filled in, and how many distinct hypervolume
/// computations that took (the digest cache collapses checkpoints that
/// captured an unchanged archive front — common late in a run, where the
/// archive is static for thousands of evaluations).
struct ResolveStats {
    std::size_t resolved = 0;
    std::size_t computed = 0;
};

class TrajectoryRecorder {
public:
    /// Computes a hypervolume checkpoint every \p interval evaluations
    /// (and on finalize). The normalizer must outlive the recorder.
    ///
    /// With \p defer_hypervolume set, checkpoints only snapshot the front
    /// (cheap copy) and the exact WFG hypervolume — the dominant cost of a
    /// checkpointed run — is computed later by resolve_pending(), lifting
    /// it off the simulation path. Deferred or not, the recorded values
    /// are identical: the same fronts meet the same normalizer.
    TrajectoryRecorder(const metrics::HypervolumeNormalizer& normalizer,
                       std::uint64_t interval,
                       bool defer_hypervolume = false);

    /// Called by executors after every ingested result. \p front is only
    /// invoked at checkpoints, so suppliers may be arbitrarily expensive.
    void on_result(double time, std::uint64_t evaluations,
                   const std::function<metrics::Front()>& front);

    /// Forces a final checkpoint at the run's end state.
    void finalize(double time, std::uint64_t evaluations,
                  const std::function<metrics::Front()>& front);

    const std::vector<TrajectoryPoint>& points() const noexcept {
        return points_;
    }

    /// Deferred checkpoints whose hypervolume has not been computed yet.
    std::size_t pending() const noexcept { return pending_.size(); }

    /// Computes the hypervolume of every deferred checkpoint. Required
    /// before reading thresholds or points when defer_hypervolume was
    /// set; a no-op otherwise.
    ///
    /// Duplicate fronts (identical byte-for-byte snapshots, detected by
    /// digest then confirmed by comparison) are computed once. With a
    /// \p pool, the distinct fronts fan out across its workers and every
    /// result is written into a slot addressed by its deduplication
    /// index, so the resolved values are byte-identical to the serial
    /// path for any worker count or scheduling order. Must not be called
    /// from a task running on \p pool itself (the wait would deadlock a
    /// fully busy pool); sweep cells resolve serially on their own
    /// worker instead.
    ResolveStats resolve_pending(util::ThreadPool* pool = nullptr);

    /// First recorded time at which hypervolume reached \p threshold;
    /// +infinity when the run never got there. Throws std::logic_error
    /// while deferred checkpoints are unresolved.
    double time_to_threshold(double threshold) const;

    /// Best hypervolume seen across the whole run. Throws
    /// std::logic_error while deferred checkpoints are unresolved.
    double final_hypervolume() const;

private:
    void checkpoint(double time, std::uint64_t evaluations,
                    const std::function<metrics::Front()>& front);
    void require_resolved(const char* what) const;

    const metrics::HypervolumeNormalizer& normalizer_;
    std::uint64_t interval_;
    std::uint64_t next_checkpoint_;
    bool defer_;
    std::vector<TrajectoryPoint> points_;
    /// (index into points_, snapshotted front) awaiting resolve_pending().
    std::vector<std::pair<std::size_t, metrics::Front>> pending_;
    /// Most recently evaluated front and its value — consecutive
    /// checkpoints of an unchanged archive skip the recomputation on both
    /// the immediate and the deferred path.
    metrics::Front last_front_;
    double last_value_ = 0.0;
    bool last_valid_ = false;
};

/// 64-bit digest of a front snapshot: FNV-1a over its shape and raw
/// coordinate bit patterns (row order matters — "unchanged archive" means
/// an identical snapshot). Equal fronts share a digest; the recorder
/// confirms candidate hits with a full comparison, so collisions cost
/// time, never correctness.
std::uint64_t front_digest(const metrics::Front& front) noexcept;

/// Interpolation-free threshold lookup over an arbitrary trajectory:
/// first point with hypervolume >= threshold (+inf if none). Exposed for
/// post-hoc analysis of saved trajectories.
double time_to_threshold(const std::vector<TrajectoryPoint>& points,
                         double threshold);

} // namespace borg::parallel

#endif
