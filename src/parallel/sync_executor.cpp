#include "parallel/sync_executor.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <vector>

#include "obs/event_trace.hpp"
#include "obs/metrics_registry.hpp"
#include "util/rng.hpp"

namespace borg::parallel {

SyncMasterSlaveExecutor::SyncMasterSlaveExecutor(
    moea::GenerationalMoea& algorithm, const problems::Problem& problem,
    VirtualClusterConfig config)
    : algorithm_(algorithm), problem_(problem), config_(config) {
    validate(config_);
}

VirtualRunResult SyncMasterSlaveExecutor::run(std::uint64_t evaluations,
                                              TrajectoryRecorder* recorder,
                                              obs::TraceSink* trace,
                                              obs::MetricsRegistry* metrics) {
    if (evaluations == 0)
        throw std::invalid_argument("sync executor: evaluations == 0");
    if (algorithm_.evaluations() != 0)
        throw std::logic_error("sync executor: algorithm already used");

    using SteadyClock = std::chrono::steady_clock;
    util::Rng rng(config_.seed);
    const std::uint64_t p = config_.processors;

    obs::Histogram* h_tf = nullptr;
    obs::Histogram* h_ta = nullptr;
    obs::Histogram* h_wait = nullptr;
    if (metrics) {
        h_tf = &metrics->histogram("sync.tf_seconds");
        h_ta = &metrics->histogram("sync.ta_seconds");
        h_wait = &metrics->histogram("sync.queue_wait_seconds");
    }
    if (trace)
        trace->record({obs::EventKind::run_start, 0.0, -1,
                       static_cast<double>(p), evaluations});

    double now = 0.0;
    double master_busy = 0.0;
    stats::Accumulator queue_wait, ta_acc, tf_acc;
    std::uint64_t completed = 0;
    std::uint64_t contended = 0;
    std::uint64_t acquires = 0;

    // The master is busy for every serialized send/receive T_C and the
    // generation processing T_A; each contribution is mirrored as a
    // `master_hold` trace event so trace_check can re-sum it.
    const auto hold = [&](double t, double amount) {
        master_busy += amount;
        if (trace)
            trace->record({obs::EventKind::master_hold, t, 0, amount, 0});
    };

    while (completed < evaluations) {
        std::vector<moea::Solution> generation = algorithm_.next_generation();
        const std::size_t batch = generation.size();
        if (batch == 0)
            throw std::logic_error("sync executor: empty generation");

        // Round-robin assignment; node 0 is the master.
        const std::uint64_t nodes =
            std::min<std::uint64_t>(p, static_cast<std::uint64_t>(batch));
        std::vector<double> node_eval(nodes, 0.0); // summed T_F per node
        for (std::size_t i = 0; i < batch; ++i) {
            moea::evaluate(problem_, generation[i]);
            const std::size_t node = i % nodes;
            // Node 0 is the master (nominal speed); workers may be
            // heterogeneous (worker w = node w - 1).
            const double speed =
                (node == 0 || config_.worker_speed.empty())
                    ? 1.0
                    : config_.worker_speed[node - 1];
            const double tf = config_.tf->sample(rng) * speed;
            tf_acc.add(tf);
            if (h_tf) h_tf->observe(tf);
            if (trace)
                trace->record({obs::EventKind::tf_sample, now,
                               static_cast<std::int64_t>(node), tf, 0});
            node_eval[node] += tf;
        }

        // Serialized sends to the participating workers (nodes 1..).
        double send_clock = now;
        std::vector<double> done_times;
        done_times.reserve(nodes > 0 ? nodes - 1 : 0);
        for (std::uint64_t w = 1; w < nodes; ++w) {
            const double tc = config_.tc->sample(rng);
            if (trace)
                trace->record({obs::EventKind::tc_sample, send_clock,
                               static_cast<std::int64_t>(w), tc, 0});
            send_clock += tc;
            hold(send_clock, tc);
            done_times.push_back(send_clock + node_eval[w]);
        }
        // The master evaluates its own share after the sends.
        const double master_done = send_clock + node_eval[0];

        // Serialized receives in completion order, gated by the master's
        // own evaluation. Each receive is a (request, grant) pair on the
        // master: a result that lands while the master is still busy has
        // queued (contended), mirroring the DES resource's accounting.
        std::sort(done_times.begin(), done_times.end());
        double recv_clock = master_done;
        for (const double done : done_times) {
            ++acquires;
            const double start = std::max(recv_clock, done);
            const bool waited = recv_clock > done;
            if (waited) ++contended;
            const double wait = start - done;
            queue_wait.add(wait);
            if (h_wait) h_wait->observe(wait);
            if (trace) {
                trace->record({obs::EventKind::acquire_request, done, 0,
                               0.0, waited ? 1u : 0u});
                trace->record({obs::EventKind::acquire_grant, start, 0,
                               wait, waited ? 1u : 0u});
            }
            const double tc = config_.tc->sample(rng);
            if (trace)
                trace->record(
                    {obs::EventKind::tc_sample, start, -1, tc, 0});
            hold(start + tc, tc);
            recv_clock = start + tc;
        }

        // Whole-generation processing: measured, or one T_A per offspring.
        const auto t0 = SteadyClock::now();
        algorithm_.receive_generation(std::move(generation));
        const double measured =
            std::chrono::duration<double>(SteadyClock::now() - t0).count();
        double ta_sync = 0.0;
        if (config_.ta) {
            for (std::size_t i = 0; i < batch; ++i)
                ta_sync += config_.ta->sample(rng);
        } else {
            ta_sync = measured;
        }
        const double ta_per_offspring =
            ta_sync / static_cast<double>(batch);
        ta_acc.add(ta_per_offspring);
        if (h_ta) h_ta->observe(ta_per_offspring);
        hold(recv_clock + ta_sync, ta_sync);
        now = recv_clock + ta_sync;
        if (trace)
            trace->record({obs::EventKind::ta_sample, now, -1,
                           ta_per_offspring, 0});

        completed += batch;
        if (trace)
            trace->record(
                {obs::EventKind::generation, now, -1, 0.0, completed});
        if (recorder)
            recorder->on_result(now, completed,
                                [&] { return algorithm_.front(); });
    }

    VirtualRunResult result;
    result.evaluations = completed;
    result.completed_target = completed >= evaluations;
    result.elapsed = now;
    result.master_busy_fraction = now > 0.0 ? master_busy / now : 0.0;
    result.mean_queue_wait = queue_wait.mean();
    result.contention_rate =
        acquires > 0
            ? static_cast<double>(contended) / static_cast<double>(acquires)
            : 0.0;
    result.ta_applied.count = ta_acc.count();
    result.ta_applied.mean = ta_acc.mean();
    result.ta_applied.stddev = ta_acc.stddev();
    result.ta_applied.min = ta_acc.min();
    result.ta_applied.max = ta_acc.max();
    result.tf_applied.count = tf_acc.count();
    result.tf_applied.mean = tf_acc.mean();
    result.tf_applied.stddev = tf_acc.stddev();
    result.tf_applied.min = tf_acc.min();
    result.tf_applied.max = tf_acc.max();
    if (trace)
        trace->record({obs::EventKind::run_end, result.elapsed, -1,
                       result.elapsed, completed});
    if (metrics) {
        metrics->counter("sync.results").inc(completed);
        metrics->gauge("sync.elapsed_seconds").set(result.elapsed);
        metrics->gauge("sync.master_busy_fraction")
            .set(result.master_busy_fraction);
        metrics->gauge("sync.contention_rate").set(result.contention_rate);
    }
    if (recorder)
        recorder->finalize(now, completed, [&] { return algorithm_.front(); });
    return result;
}

} // namespace borg::parallel
