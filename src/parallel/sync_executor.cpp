#include "parallel/sync_executor.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>
#include <vector>

#include "parallel/cluster_engine.hpp"
#include "util/rng.hpp"

namespace borg::parallel {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// The Figure 1 generational protocol as a barrier policy: one
/// next_generation() per plan, offspring assigned round-robin across the
/// master and the surviving workers, whole-generation ingest through
/// receive_generation (DESIGN.md §10).
class SyncBorgPolicy final : public GenerationalMasterPolicy {
public:
    SyncBorgPolicy(moea::GenerationalMoea& algorithm,
                   const problems::Problem& problem,
                   const VirtualClusterConfig& config)
        : algorithm_(algorithm), problem_(problem), config_(config) {}

    const char* prefix() const noexcept override { return "sync"; }

    Plan plan(ClusterEngine& engine, std::uint64_t completed,
              std::uint64_t target,
              const std::vector<std::size_t>& alive_workers) override {
        (void)completed;
        (void)target;
        generation_ = algorithm_.next_generation();
        const std::size_t batch = generation_.size();
        if (batch == 0)
            throw std::logic_error("sync executor: empty generation");

        // Round-robin assignment; node 0 is the master (nominal speed),
        // node k >= 1 is the k-th surviving worker.
        const std::size_t nodes = std::min(alive_workers.size() + 1, batch);
        node_eval_.assign(nodes, 0.0);
        for (std::size_t i = 0; i < batch; ++i) {
            moea::evaluate(problem_, generation_[i]);
            const std::size_t node = i % nodes;
            const double speed =
                node == 0 ? 1.0 : engine.speed_of(alive_workers[node - 1]);
            node_eval_[node] += engine.gen_sample_tf(
                engine.now(), static_cast<std::int64_t>(node), speed);
        }
        return {batch, nodes};
    }

    double node_eval_time(ClusterEngine& engine, double at,
                          std::size_t node) override {
        (void)engine;
        (void)at;
        return node_eval_[node];
    }

    Ingest ingest(ClusterEngine& engine, std::size_t batch) override {
        // Whole-generation processing: measured, or one T_A per offspring.
        const auto t0 = SteadyClock::now();
        algorithm_.receive_generation(std::move(generation_));
        const double measured =
            std::chrono::duration<double>(SteadyClock::now() - t0).count();
        double ta_sync = 0.0;
        if (config_.ta) {
            for (std::size_t i = 0; i < batch; ++i)
                ta_sync += config_.ta->sample(engine.group_rng(0));
        } else {
            ta_sync = measured;
        }
        return {ta_sync, ta_sync / static_cast<double>(batch)};
    }

    void record_generation(ClusterEngine& engine, double now,
                           std::uint64_t completed) override {
        if (auto* recorder = engine.recorder())
            recorder->on_result(now, completed,
                                [this] { return algorithm_.front(); });
    }

    void finalize(ClusterEngine& engine,
                  const VirtualRunResult& result) override {
        if (auto* recorder = engine.recorder())
            recorder->finalize(result.elapsed, result.evaluations,
                               [this] { return algorithm_.front(); });
    }

private:
    moea::GenerationalMoea& algorithm_;
    const problems::Problem& problem_;
    const VirtualClusterConfig& config_;
    std::vector<moea::Solution> generation_;
    std::vector<double> node_eval_; ///< summed T_F per node, this generation
};

} // namespace

SyncMasterSlaveExecutor::SyncMasterSlaveExecutor(
    moea::GenerationalMoea& algorithm, const problems::Problem& problem,
    VirtualClusterConfig config)
    : algorithm_(algorithm), problem_(problem), config_(config) {
    validate(config_);
}

VirtualRunResult SyncMasterSlaveExecutor::run(std::uint64_t evaluations,
                                              const RunContext& ctx) {
    if (evaluations == 0)
        throw std::invalid_argument("sync executor: evaluations == 0");
    if (algorithm_.evaluations() != 0)
        throw std::logic_error("sync executor: algorithm already used");

    ClusterEngine::Setup setup;
    setup.tf = config_.tf;
    setup.tc = config_.tc;
    setup.ta = config_.ta;
    setup.processors = config_.processors;
    setup.worker_speed = config_.worker_speed;
    setup.worker_failure_at = config_.worker_failure_at;
    setup.queue = config_.queue;
    setup.groups = {{config_.processors - 1, config_.seed, 0}};

    ClusterEngine engine(std::move(setup), ctx);
    SyncBorgPolicy policy(algorithm_, problem_, config_);
    return engine.run_generational(policy, evaluations);
}

} // namespace borg::parallel
