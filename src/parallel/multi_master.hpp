#ifndef BORG_PARALLEL_MULTI_MASTER_HPP
#define BORG_PARALLEL_MULTI_MASTER_HPP

/// \file multi_master.hpp
/// Hierarchical (multi-master) topology — the paper's proposed remedy for
/// master saturation.
///
/// Section VI observes that when T_F is small relative to 2 T_C + T_A, a
/// single master saturates long before the available processor count, and
/// suggests running "several smaller, concurrently-running master-slave
/// instances ... each on a distinct subset of the available processors",
/// sized with the simulation model. The conclusion names an adaptive
/// island topology as future work. This executor implements that design
/// point on the virtual-time cluster:
///
///  * P processors are split into `islands` independent asynchronous
///    master-slave Borg instances (each 1 master + subset workers);
///  * every `migration_interval` results (per island), the island sends a
///    copy of a random ε-archive member to its ring neighbour; migrants
///    enter through the neighbour master's normal receive() path and are
///    charged T_C (message) + T_A (ingestion) of master hold time — the
///    honest cost of the hierarchy;
///  * the final result merges all island archives into one global
///    ε-dominance archive.
///
/// With one island this degenerates exactly to AsyncMasterSlaveExecutor's
/// protocol, which the tests use as a consistency anchor.

#include <cstdint>
#include <memory>
#include <vector>

#include "moea/borg.hpp"
#include "moea/epsilon_archive.hpp"
#include "parallel/run_context.hpp"
#include "parallel/virtual_cluster.hpp"

namespace borg::parallel {

struct MultiMasterConfig {
    VirtualClusterConfig cluster; ///< total P; islands share tf/tc/ta
    std::uint64_t islands = 2;    ///< number of master-slave instances
    /// Results ingested per island between outgoing migrations; 0 disables
    /// migration entirely (fully independent islands).
    std::uint64_t migration_interval = 1000;
};

/// The base carries the engine's uniform accounting (elapsed, evaluations,
/// completed_target, failed workers, aggregate busy fraction across all
/// island masters, queue wait, contention, applied T_F/T_A summaries);
/// the extension is per-island and topology-specific.
struct MultiMasterResult : VirtualRunResult {
    std::uint64_t migrations = 0; ///< migrant solutions exchanged
    std::vector<std::uint64_t> island_evaluations;
    std::vector<double> island_busy_fraction;
    /// Merged ε-Pareto approximation across all islands.
    std::vector<moea::Solution> combined_archive;
};

class MultiMasterExecutor {
public:
    /// \p problem must outlive the executor. Requires
    /// cluster.processors >= 2 * islands (every island needs a master and
    /// at least one worker).
    MultiMasterExecutor(const problems::Problem& problem,
                        moea::BorgParams params, MultiMasterConfig config);

    /// Runs until \p evaluations results have been ingested in total
    /// (divided dynamically across islands — faster islands do more).
    /// ctx.trace, if given, receives the typed event stream with each
    /// island's master resource identified by its island index in the
    /// `actor` field, plus `migration` events (DESIGN.md §8); ctx.metrics
    /// receives instruments under the "mm." prefix.
    ///
    /// worker_speed / worker_failure_at are indexed by global worker slot
    /// (cluster.processors - islands entries, island-major in spawn
    /// order). Failed workers retire exactly as in the asynchronous
    /// executor; an island whose workers all fail goes quiet while the
    /// others keep claiming the global budget.
    MultiMasterResult run(std::uint64_t evaluations,
                          const RunContext& ctx = {});

private:
    const problems::Problem& problem_;
    moea::BorgParams params_;
    MultiMasterConfig config_;
    bool used_ = false;
};

} // namespace borg::parallel

#endif
