#include "models/sync_model.hpp"

#include <stdexcept>

namespace borg::models {

double sync_parallel_time(std::uint64_t evaluations, std::uint64_t processors,
                          const TimingCosts& costs) {
    if (processors < 1)
        throw std::invalid_argument("sync model: need at least 1 processor");
    const auto n = static_cast<double>(evaluations);
    const auto p = static_cast<double>(processors);
    const double ta_sync = p * costs.ta;
    return n / p * (costs.tf + p * costs.tc + ta_sync);
}

double sync_speedup(std::uint64_t processors, const TimingCosts& costs) {
    return serial_time(1, costs) / sync_parallel_time(1, processors, costs);
}

double sync_efficiency(std::uint64_t processors, const TimingCosts& costs) {
    return sync_speedup(processors, costs) / static_cast<double>(processors);
}

double sync_speedup_limit(const TimingCosts& costs) {
    const double denom = costs.tc + costs.ta;
    if (denom <= 0.0)
        throw std::invalid_argument("sync model: T_C + T_A must be > 0");
    return (costs.tf + costs.ta) / denom;
}

double sync_half_efficiency_processors(const TimingCosts& costs) {
    const double denom = costs.tc + costs.ta;
    if (denom <= 0.0)
        throw std::invalid_argument("sync model: T_C + T_A must be > 0");
    return (costs.tf + 2.0 * costs.ta) / denom;
}

} // namespace borg::models
