#include "models/analytical.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace borg::models {

double serial_time(std::uint64_t evaluations, const TimingCosts& costs) {
    return static_cast<double>(evaluations) * (costs.tf + costs.ta);
}

double async_parallel_time(std::uint64_t evaluations,
                           std::uint64_t processors,
                           const TimingCosts& costs) {
    if (processors < 2)
        throw std::invalid_argument(
            "async model: need at least 2 processors (1 master + 1 worker)");
    return static_cast<double>(evaluations) /
           static_cast<double>(processors - 1) *
           (costs.tf + 2.0 * costs.tc + costs.ta);
}

double async_speedup(std::uint64_t processors, const TimingCosts& costs) {
    // N cancels in T_S / T_P.
    return serial_time(1, costs) / async_parallel_time(1, processors, costs);
}

double async_efficiency(std::uint64_t processors, const TimingCosts& costs) {
    return async_speedup(processors, costs) / static_cast<double>(processors);
}

double async_parallel_time_saturating(std::uint64_t evaluations,
                                      std::uint64_t processors,
                                      const TimingCosts& costs) {
    const double contention_free =
        async_parallel_time(evaluations, processors, costs);
    const double service_bound = static_cast<double>(evaluations) *
                                 (2.0 * costs.tc + costs.ta);
    return std::max(contention_free, service_bound);
}

double async_efficiency_saturating(std::uint64_t processors,
                                   const TimingCosts& costs) {
    return serial_time(1, costs) /
           (static_cast<double>(processors) *
            async_parallel_time_saturating(1, processors, costs));
}

double processor_upper_bound(const TimingCosts& costs) {
    const double denom = 2.0 * costs.tc + costs.ta;
    if (denom <= 0.0)
        throw std::invalid_argument("async model: 2 T_C + T_A must be > 0");
    return costs.tf / denom;
}

double processor_lower_bound(const TimingCosts& costs) {
    const double denom = costs.tf + costs.ta;
    if (denom <= 0.0)
        throw std::invalid_argument("async model: T_F + T_A must be > 0");
    return 2.0 + 2.0 * costs.tc / denom;
}

double relative_error(double actual, double predicted) {
    if (actual == 0.0)
        throw std::invalid_argument("relative_error: actual time is zero");
    return std::abs(actual - predicted) / std::abs(actual);
}

} // namespace borg::models
