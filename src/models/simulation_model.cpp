#include "models/simulation_model.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "des/environment.hpp"
#include "des/resource.hpp"
#include "stats/summary.hpp"
#include "util/rng.hpp"

namespace borg::models {

namespace {

void validate(const SimulationConfig& config) {
    if (config.evaluations == 0)
        throw std::invalid_argument("simulation: evaluations == 0");
    if (config.processors < 2)
        throw std::invalid_argument("simulation: need P >= 2");
    if (!config.tf || !config.tc || !config.ta)
        throw std::invalid_argument("simulation: missing distribution");
}

/// Shared mutable state of one asynchronous simulation run.
struct AsyncState {
    const SimulationConfig* config = nullptr;
    des::Environment* env = nullptr;
    util::Rng rng{1};
    std::uint64_t dispatched = 0;
    std::uint64_t completed = 0;
    bool finished = false; ///< explicit: a finish at t=0 is a valid finish
    double finish_time = 0.0;
    double master_hold_time = 0.0;
    stats::Accumulator queue_wait;

    bool claim() {
        if (dispatched >= config->evaluations) return false;
        ++dispatched;
        return true;
    }

    void complete() {
        if (++completed == config->evaluations) {
            finished = true;
            finish_time = env->now();
            env->stop();
        }
    }

    double tf() { return config->tf->sample(rng); }
    double tc() { return config->tc->sample(rng); }
    double ta() { return config->ta->sample(rng); }
};

/// One simulated worker: the paper's SimPy process.
des::Process async_worker(AsyncState& state, des::Resource& master) {
    des::Environment& env = *state.env;

    // Initial work assignment travels through the master like any other
    // message (the master sends the initial offspring one at a time).
    {
        const double wait_start = env.now();
        co_await master.acquire();
        state.queue_wait.add(env.now() - wait_start);
        const double hold = state.tc();
        state.master_hold_time += hold;
        co_await env.delay(hold);
        master.release();
    }

    while (state.claim()) {
        co_await env.delay(state.tf()); // evaluate the offspring

        const double wait_start = env.now();
        co_await master.acquire();
        state.queue_wait.add(env.now() - wait_start);
        // Return the result (T_C), master ingests it and generates the next
        // offspring (T_A), master sends the new offspring back (T_C).
        const double hold = state.tc() + state.ta() + state.tc();
        state.master_hold_time += hold;
        co_await env.delay(hold);
        master.release();

        state.complete();
    }
}

} // namespace

SimulationResult simulate_async(const SimulationConfig& config) {
    validate(config);

    des::Environment env;
    des::Resource master(env, 1);
    AsyncState state;
    state.config = &config;
    state.env = &env;
    state.rng = util::Rng(config.seed);

    const std::uint64_t workers = config.processors - 1;
    for (std::uint64_t w = 0; w < workers; ++w)
        env.spawn(async_worker(state, master));
    env.run();

    SimulationResult result;
    result.evaluations = state.completed;
    result.elapsed = state.finished ? state.finish_time : env.now();
    result.master_busy_fraction =
        result.elapsed > 0.0 ? state.master_hold_time / result.elapsed : 0.0;
    result.mean_queue_wait = state.queue_wait.mean();
    result.contention_rate =
        master.total_acquires() > 0
            ? static_cast<double>(master.contended_acquires()) /
                  static_cast<double>(master.total_acquires())
            : 0.0;
    return result;
}

SimulationResult simulate_sync(const SimulationConfig& config) {
    validate(config);
    util::Rng rng(config.seed);

    const std::uint64_t p = config.processors;
    std::uint64_t remaining = config.evaluations;
    double now = 0.0;
    double master_busy = 0.0;
    stats::Accumulator queue_wait;
    std::uint64_t contended = 0;
    std::uint64_t acquires = 0;

    std::vector<double> eval_done;
    eval_done.reserve(p);

    while (remaining > 0) {
        // This generation evaluates min(P, remaining) offspring; one of
        // them on the master itself (Figure 1).
        const std::uint64_t batch =
            remaining < p ? remaining : p;
        remaining -= batch;
        const std::uint64_t worker_jobs = batch > 0 ? batch - 1 : 0;

        // Serialized sends to the workers.
        eval_done.clear();
        double send_clock = now;
        for (std::uint64_t w = 0; w < worker_jobs; ++w) {
            const double tc = config.tc->sample(rng);
            send_clock += tc;
            master_busy += tc;
            eval_done.push_back(send_clock + config.tf->sample(rng));
        }
        // The master evaluates its own offspring after the sends.
        const double master_eval_done = send_clock + config.tf->sample(rng);

        // Serialized receives, in completion order; each holds the master
        // for T_C. The master cannot receive before its own evaluation is
        // finished.
        std::sort(eval_done.begin(), eval_done.end());
        double recv_clock = master_eval_done;
        for (const double done : eval_done) {
            ++acquires;
            const double start = recv_clock > done ? recv_clock : done;
            if (recv_clock > done) ++contended;
            queue_wait.add(start - done);
            const double tc = config.tc->sample(rng);
            master_busy += tc;
            recv_clock = start + tc;
        }

        // Generation processing: the master handles all offspring at once
        // (T_A^sync = sum of one T_A draw per offspring).
        double ta_sync = 0.0;
        for (std::uint64_t i = 0; i < batch; ++i)
            ta_sync += config.ta->sample(rng);
        master_busy += ta_sync;
        now = recv_clock + ta_sync;
    }

    SimulationResult result;
    result.evaluations = config.evaluations;
    result.elapsed = now;
    result.master_busy_fraction = now > 0.0 ? master_busy / now : 0.0;
    result.mean_queue_wait = queue_wait.mean();
    result.contention_rate =
        acquires > 0 ? static_cast<double>(contended) /
                           static_cast<double>(acquires)
                     : 0.0;
    return result;
}

double simulated_efficiency(const SimulationConfig& config,
                            const SimulationResult& result) {
    const TimingCosts costs{config.tf->mean(), config.tc->mean(),
                            config.ta->mean()};
    const double ts = serial_time(config.evaluations, costs);
    return ts / (static_cast<double>(config.processors) * result.elapsed);
}

} // namespace borg::models
