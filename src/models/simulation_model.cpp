#include "models/simulation_model.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "obs/event_trace.hpp"
#include "parallel/cluster_engine.hpp"
#include "util/rng.hpp"

namespace borg::models {

namespace {

using parallel::ClusterEngine;
using parallel::EventMasterPolicy;
using parallel::GenerationalMasterPolicy;
using parallel::WorkItem;
using parallel::WorkerRef;

void validate(const SimulationConfig& config) {
    if (config.evaluations == 0)
        throw std::invalid_argument("simulation: evaluations == 0");
    if (config.processors < 2)
        throw std::invalid_argument("simulation: need P >= 2");
    if (!config.tf || !config.tc || !config.ta)
        throw std::invalid_argument("simulation: missing distribution");
}

ClusterEngine::Setup engine_setup(const SimulationConfig& config) {
    ClusterEngine::Setup setup;
    setup.tf = config.tf;
    setup.tc = config.tc;
    setup.ta = config.ta;
    setup.processors = config.processors;
    setup.groups = {{config.processors - 1, config.seed, 0}};
    setup.queue = config.queue;
    return setup;
}

SimulationResult to_simulation_result(const parallel::VirtualRunResult& r) {
    SimulationResult result;
    result.elapsed = r.elapsed;
    result.evaluations = r.evaluations;
    result.master_busy_fraction = r.master_busy_fraction;
    result.mean_queue_wait = r.mean_queue_wait;
    result.contention_rate = r.contention_rate;
    return result;
}

/// The paper's SimPy fragment as a master policy: nothing real is
/// computed — work items are empty claims on the evaluation budget, and
/// every cost is a pure distribution draw. Running it through the same
/// ClusterEngine as the real-algorithm executors is what makes the
/// model-vs-experiment comparison share scheduling code (DESIGN.md §10).
class SimAsyncPolicy final : public EventMasterPolicy {
public:
    const char* prefix() const noexcept override { return "sim_async"; }

    std::optional<WorkItem>
    dispatch_initial(ClusterEngine& engine, const WorkerRef& worker) override {
        (void)worker;
        if (!claim(engine)) return std::nullopt;
        return WorkItem{};
    }

    void evaluate(WorkItem& work) override { (void)work; }

    Service serve(ClusterEngine& engine, const WorkerRef& worker,
                  WorkItem work) override {
        (void)work;
        const auto actor = static_cast<std::int64_t>(worker.global);
        // Return the result (T_C), master ingests it and generates the
        // next offspring (T_A), master sends the new offspring back (T_C).
        const double tc1 = engine.sample_tc(worker.group, actor);
        const double ta = engine.sample_ta(worker.group, actor, 0.0);
        const double tc2 = engine.sample_tc(worker.group, actor);
        std::optional<WorkItem> next;
        if (claim(engine)) next = WorkItem{};
        return {tc1 + ta + tc2, std::move(next)};
    }

    void on_worker_failure(ClusterEngine& engine,
                           const WorkerRef& worker) override {
        (void)engine;
        (void)worker;
        --dispatched_;
    }

    void record_result(ClusterEngine& engine,
                       const WorkerRef& worker) override {
        if (auto* trace = engine.trace())
            trace->record({obs::EventKind::result, engine.now(),
                           static_cast<std::int64_t>(worker.global), 0.0,
                           engine.completed()});
    }

private:
    bool claim(ClusterEngine& engine) {
        if (dispatched_ >= engine.target()) return false;
        ++dispatched_;
        return true;
    }

    std::uint64_t dispatched_ = 0;
};

/// The synchronous protocol of Figure 1, statistics-only: per generation
/// min(P, remaining) offspring, one on the master itself, T_F drawn
/// lazily during the send sweep (preserving the historical tc/tf draw
/// interleaving), T_A^sync = one draw per offspring.
class SimSyncPolicy final : public GenerationalMasterPolicy {
public:
    explicit SimSyncPolicy(const SimulationConfig& config)
        : config_(config) {}

    const char* prefix() const noexcept override { return "sim_sync"; }

    Plan plan(ClusterEngine& engine, std::uint64_t completed,
              std::uint64_t target,
              const std::vector<std::size_t>& alive_workers) override {
        (void)engine;
        const std::uint64_t remaining = target - completed;
        const std::size_t batch = static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining, alive_workers.size() + 1));
        return {batch, batch};
    }

    double node_eval_time(ClusterEngine& engine, double at,
                          std::size_t node) override {
        return engine.gen_sample_tf(at, static_cast<std::int64_t>(node), 1.0);
    }

    Ingest ingest(ClusterEngine& engine, std::size_t batch) override {
        double ta_sync = 0.0;
        for (std::size_t i = 0; i < batch; ++i)
            ta_sync += config_.ta->sample(engine.group_rng(0));
        return {ta_sync, ta_sync / static_cast<double>(batch)};
    }

private:
    const SimulationConfig& config_;
};

} // namespace

SimulationResult simulate_async(const SimulationConfig& config,
                                const parallel::RunContext& ctx) {
    validate(config);
    ClusterEngine engine(engine_setup(config), ctx);
    SimAsyncPolicy policy;
    return to_simulation_result(
        engine.run_events(policy, config.evaluations));
}

SimulationResult simulate_sync(const SimulationConfig& config,
                               const parallel::RunContext& ctx) {
    validate(config);
    ClusterEngine engine(engine_setup(config), ctx);
    SimSyncPolicy policy(config);
    return to_simulation_result(
        engine.run_generational(policy, config.evaluations));
}

double simulated_efficiency(const SimulationConfig& config,
                            const SimulationResult& result) {
    const TimingCosts costs{config.tf->mean(), config.tc->mean(),
                            config.ta->mean()};
    const double ts = serial_time(config.evaluations, costs);
    return ts / (static_cast<double>(config.processors) * result.elapsed);
}

} // namespace borg::models
