#ifndef BORG_MODELS_ANALYTICAL_HPP
#define BORG_MODELS_ANALYTICAL_HPP

/// \file analytical.hpp
/// The paper's closed-form scalability model for the asynchronous,
/// master-slave MOEA (Section III and IV-A).
///
/// Assuming constant per-step costs — function evaluation T_F,
/// point-to-point communication T_C, and master-side algorithm overhead
/// T_A — every step proceeds in lockstep and the master is always free when
/// a worker finishes, giving:
///
///   T_S  = N (T_F + T_A)                         (Eq. 1, serial)
///   T_P  = N / (P - 1) (T_F + 2 T_C + T_A)       (Eq. 2, parallel)
///   P_UB = T_F / (2 T_C + T_A)                   (Eq. 3, master saturation)
///   P_LB > 2 + 2 T_C / (T_F + T_A)               (Eq. 4, beats serial)
///
/// The model's known failure mode — underestimating T_P once workers
/// contend for the master (small T_F / large P) — is exactly what the
/// simulation model corrects, and what Table II quantifies.

#include <cstdint>

namespace borg::models {

/// Mean per-step costs, in seconds.
struct TimingCosts {
    double tf = 0.0; ///< function evaluation time T_F
    double tc = 0.0; ///< one-way communication time T_C
    double ta = 0.0; ///< master algorithm overhead T_A
};

/// T_S: serial runtime for N evaluations (Eq. 1).
double serial_time(std::uint64_t evaluations, const TimingCosts& costs);

/// T_P: asynchronous master-slave runtime with P processors, i.e. one
/// master plus P - 1 workers (Eq. 2). Requires P >= 2.
double async_parallel_time(std::uint64_t evaluations, std::uint64_t processors,
                           const TimingCosts& costs);

/// S_P = T_S / T_P.
double async_speedup(std::uint64_t processors, const TimingCosts& costs);

/// E_P = T_S / (P T_P).
double async_efficiency(std::uint64_t processors, const TimingCosts& costs);

/// P_UB: processor count saturating the master (Eq. 3). Beyond this, the
/// master has no idle time left and extra workers only queue.
double processor_upper_bound(const TimingCosts& costs);

/// Saturation-aware refinement of Eq. 2 (not in the paper, but implied by
/// its Table II diagnosis): the master serves one result per 2 T_C + T_A,
/// so the runtime can never drop below N (2 T_C + T_A) no matter how many
/// workers queue. Returns max(Eq. 2, master service bound) — accurate on
/// both sides of P_UB, though still blind to the soft transition around
/// it that the simulation model captures.
double async_parallel_time_saturating(std::uint64_t evaluations,
                                      std::uint64_t processors,
                                      const TimingCosts& costs);

/// Efficiency implied by the saturating model.
double async_efficiency_saturating(std::uint64_t processors,
                                   const TimingCosts& costs);

/// P_LB: minimum processors for the parallel version to beat serial
/// (Eq. 4, strict bound). Always > 2; the paper notes at least 3
/// processors are required regardless of the cost values.
double processor_lower_bound(const TimingCosts& costs);

/// Relative prediction error |actual - predicted| / |actual| (Eq. 5).
double relative_error(double actual, double predicted);

} // namespace borg::models

#endif
