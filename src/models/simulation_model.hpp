#ifndef BORG_MODELS_SIMULATION_MODEL_HPP
#define BORG_MODELS_SIMULATION_MODEL_HPP

/// \file simulation_model.hpp
/// The paper's simulation model (Section IV-B), rebuilt on the C++
/// discrete-event engine instead of SimPy.
///
/// T_F, T_C and T_A are random variables; the master node is a FIFO
/// resource of capacity one. Each simulated worker repeats the cycle from
/// the paper's SimPy fragment:
///
///     request master; hold T_C + T_A + T_C; release master; evaluate T_F
///
/// (the combined hold covers returning the result, the master ingesting it
/// and generating the next offspring, and sending that offspring back).
/// When many workers finish evaluations close together they queue for the
/// master — the resource contention the analytical model cannot express,
/// and the reason the simulation model tracks Table II so much better at
/// small T_F / large P.
///
/// Unlike the full virtual-time executor (parallel/async_executor.hpp),
/// nothing real is computed here: the model "holds resources" only, so a
/// 16,384-processor sweep point costs micro-, not milliseconds of work per
/// simulated evaluation. Both protocols run as statistics-only master
/// policies on the same parallel::ClusterEngine that drives the
/// real-algorithm executors, so model and experiment provably share their
/// scheduling code (DESIGN.md §10).

#include <cstdint>
#include <memory>

#include "des/event_queue.hpp"
#include "models/analytical.hpp"
#include "parallel/run_context.hpp"
#include "stats/distribution.hpp"

namespace borg::models {

/// Inputs to one simulated run.
struct SimulationConfig {
    std::uint64_t evaluations = 0; ///< N
    std::uint64_t processors = 2;  ///< P (1 master + P-1 workers)
    const stats::Distribution* tf = nullptr;
    const stats::Distribution* tc = nullptr;
    const stats::Distribution* ta = nullptr;
    std::uint64_t seed = 1;
    /// DES pending-event store (async protocol only; the sync protocol is
    /// generational and never touches the event queue). Calendar and heap
    /// produce byte-identical schedules — `heap` is the pre-rebuild oracle
    /// bench/micro_des gates the calendar engine against.
    des::QueuePolicy queue = des::QueuePolicy::calendar;
};

/// Outputs of one simulated run.
struct SimulationResult {
    double elapsed = 0.0; ///< simulated T_P: time the N-th result lands
    std::uint64_t evaluations = 0;
    double master_busy_fraction = 0.0; ///< hold time / elapsed
    double mean_queue_wait = 0.0;      ///< mean wait to acquire the master
    double contention_rate = 0.0; ///< fraction of acquisitions that queued
};

/// Simulates the asynchronous master-slave protocol. \p ctx optionally
/// attaches the engine's event trace ("sim" events share the executor
/// schema) and metrics under the "sim_async." prefix; ctx.recorder is
/// ignored (there is no archive to checkpoint).
SimulationResult simulate_async(const SimulationConfig& config,
                                const parallel::RunContext& ctx = {});

/// Simulates the synchronous (generational) master-slave protocol of
/// Figure 1: per generation the master sends P-1 messages serially,
/// every node (master included) evaluates one offspring, results are
/// received serially, then the master processes the whole generation
/// (sum of P sampled T_A values). Used to study how T_F variability hurts
/// the synchronous model (Section VI-B's closing observation). \p ctx as
/// for simulate_async, under the "sim_sync." prefix.
SimulationResult simulate_sync(const SimulationConfig& config,
                               const parallel::RunContext& ctx = {});

/// Efficiency implied by a simulated run: E_P = T_S / (P T_P) with
/// T_S = N (mean T_F + mean T_A) from the configured distributions.
double simulated_efficiency(const SimulationConfig& config,
                            const SimulationResult& result);

} // namespace borg::models

#endif
