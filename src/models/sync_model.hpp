#ifndef BORG_MODELS_SYNC_MODEL_HPP
#define BORG_MODELS_SYNC_MODEL_HPP

/// \file sync_model.hpp
/// Cantú-Paz's analytical model for the synchronous (generational)
/// master-slave MOEA, as used in the paper's Section VI-B comparison.
///
///   T_P^sync = N / P (T_F + P T_C + T_A^sync),  T_A^sync ≈ P T_A   (Eq. 6)
///
/// Each of the N/P generations sends P messages through the master
/// (serialized, P T_C), evaluates the generation in parallel (T_F — each
/// node, master included, evaluates exactly one offspring), and processes
/// all P offspring at once (P T_A). Substituting T_A^sync = P T_A gives
/// T_P^sync = N T_F / P + N (T_C + T_A): runtime decreases monotonically in
/// P but the per-generation communication floor N (T_C + T_A) caps the
/// speedup at (T_F + T_A) / (T_C + T_A), so efficiency decays as
/// E^sync = (T_F + T_A) / (T_F + P (T_C + T_A)).

#include <cstdint>

#include "models/analytical.hpp"

namespace borg::models {

/// T_P^sync for N evaluations on P processors (Eq. 6). Requires P >= 1;
/// P is simultaneously the processor count and the generation size.
double sync_parallel_time(std::uint64_t evaluations, std::uint64_t processors,
                          const TimingCosts& costs);

/// S_P^sync = T_S / T_P^sync, with T_S = N (T_F + T_A).
double sync_speedup(std::uint64_t processors, const TimingCosts& costs);

/// E_P^sync = S_P^sync / P.
double sync_efficiency(std::uint64_t processors, const TimingCosts& costs);

/// The asymptotic speedup limit (T_F + T_A) / (T_C + T_A): adding
/// processors beyond a few multiples of the half-efficiency point buys
/// almost nothing.
double sync_speedup_limit(const TimingCosts& costs);

/// The processor count at which Eq. 6 predicts efficiency has fallen to
/// one half: P = (T_F + 2 T_A) / (T_C + T_A). A useful scale marker when
/// reading the Figure 5 heatmaps.
double sync_half_efficiency_processors(const TimingCosts& costs);

} // namespace borg::models

#endif
