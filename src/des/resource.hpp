#ifndef BORG_DES_RESOURCE_HPP
#define BORG_DES_RESOURCE_HPP

/// \file resource.hpp
/// Synchronization primitives for the discrete-event engine: a FIFO-granting
/// counted Resource (SimPy's Resource — models the master node the workers
/// queue for) and a one-shot broadcast Event (used by the synchronous
/// executor's generation barrier).

#include <coroutine>
#include <cstddef>
#include <cstdint>

#include "des/environment.hpp"
#include "des/ring_queue.hpp"

namespace borg::des {

/// A resource with a fixed number of slots, granted strictly first-come
/// first-served. In the paper's simulation model the master node is a
/// Resource of capacity 1: workers "request" it, "hold" it for
/// T_C + T_A + T_C, then "release" it.
///
/// Observability: when the owning Environment has a trace sink attached,
/// every acquisition emits an `acquire_request` (queue depth at request; 0
/// means the slot was free) followed by an `acquire_grant` (wait duration,
/// and whether the requester had to queue), and every release emits a
/// `release` with the waiter count before handoff. The grant is emitted
/// when the acquiring coroutine *resumes*, not when the slot is handed
/// over: a waiter granted a slot just as the run stops never resumes, and
/// executors never observe its wait either, so emitting at resumption
/// keeps the trace's wait samples exactly equal (count and order) to the
/// executor's own accounting. With no sink attached the emission sites
/// reduce to one pointer test.
class Resource {
public:
    /// \p env must outlive the resource; \p capacity >= 1.
    Resource(Environment& env, std::size_t capacity = 1);

    Resource(const Resource&) = delete;
    Resource& operator=(const Resource&) = delete;

    /// Awaitable acquisition. Completes immediately when a slot is free,
    /// otherwise suspends in FIFO order until release() hands over a slot.
    auto acquire() noexcept;

    /// Releases one slot; hands it directly to the longest-waiting process
    /// if any (resumed via the event queue at the current virtual time).
    /// It is a logic error to release more slots than were acquired.
    void release();

    std::size_t capacity() const noexcept { return capacity_; }
    std::size_t in_use() const noexcept { return in_use_; }
    std::size_t queue_length() const noexcept { return waiters_.size(); }

    /// Cumulative count of acquisitions that had to wait (contention
    /// statistic surfaced by the simulation model).
    std::size_t contended_acquires() const noexcept { return contended_; }
    std::size_t total_acquires() const noexcept { return acquires_; }

    /// Identifier stamped into this resource's trace events (`actor`
    /// field); defaults to 0. The multi-master executor numbers each
    /// island's master so one trace can hold several resources.
    void set_trace_id(std::int64_t id) noexcept { trace_id_ = id; }
    std::int64_t trace_id() const noexcept { return trace_id_; }

private:
    friend struct ResourceAwaiter;

    bool try_acquire_immediate() noexcept;
    void enqueue(std::coroutine_handle<> handle);
    void record_queued_grant(double enqueued_at) const;

    Environment& env_;
    std::size_t capacity_;
    std::int64_t trace_id_ = 0;
    std::size_t in_use_ = 0;
    std::size_t acquires_ = 0;
    std::size_t contended_ = 0;
    /// FIFO of suspended acquirers; the ring keeps the steady-state
    /// request/grant cycle allocation-free (DESIGN.md §13).
    RingQueue<std::coroutine_handle<>> waiters_;
};

struct ResourceAwaiter {
    Resource& resource;
    double enqueued_at = 0.0;
    bool queued = false;

    bool await_ready() noexcept { return resource.try_acquire_immediate(); }
    void await_suspend(std::coroutine_handle<> handle) {
        queued = true;
        enqueued_at = resource.env_.now();
        resource.enqueue(handle);
    }
    void await_resume() const {
        // Null-sink fast path stays inline: one branch, no call.
        if (queued && resource.env_.trace() != nullptr)
            resource.record_queued_grant(enqueued_at);
    }
};

inline auto Resource::acquire() noexcept { return ResourceAwaiter{*this}; }

/// One-shot broadcast event: processes co_await wait(); trigger() resumes
/// every waiter (in wait order) at the current virtual time. After
/// triggering, wait() completes immediately. reset() re-arms the event
/// (generation barriers re-use one event per generation).
class Event {
public:
    explicit Event(Environment& env) : env_(env) {}

    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;

    auto wait() noexcept;

    void trigger();

    /// Re-arms a triggered event. It is a logic error to reset an event
    /// that still has waiters.
    void reset();

    bool triggered() const noexcept { return triggered_; }
    std::size_t waiter_count() const noexcept { return waiters_.size(); }

private:
    friend struct EventAwaiter;

    Environment& env_;
    bool triggered_ = false;
    RingQueue<std::coroutine_handle<>> waiters_;
};

struct EventAwaiter {
    Event& event;

    bool await_ready() const noexcept { return event.triggered_; }
    void await_suspend(std::coroutine_handle<> handle) {
        event.waiters_.push_back(handle);
    }
    void await_resume() const noexcept {}
};

inline auto Event::wait() noexcept { return EventAwaiter{*this}; }

} // namespace borg::des

#endif
