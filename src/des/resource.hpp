#ifndef BORG_DES_RESOURCE_HPP
#define BORG_DES_RESOURCE_HPP

/// \file resource.hpp
/// Synchronization primitives for the discrete-event engine: a FIFO-granting
/// counted Resource (SimPy's Resource — models the master node the workers
/// queue for) and a one-shot broadcast Event (used by the synchronous
/// executor's generation barrier).

#include <coroutine>
#include <cstddef>
#include <deque>

#include "des/environment.hpp"

namespace borg::des {

/// A resource with a fixed number of slots, granted strictly first-come
/// first-served. In the paper's simulation model the master node is a
/// Resource of capacity 1: workers "request" it, "hold" it for
/// T_C + T_A + T_C, then "release" it.
class Resource {
public:
    /// \p env must outlive the resource; \p capacity >= 1.
    Resource(Environment& env, std::size_t capacity = 1);

    Resource(const Resource&) = delete;
    Resource& operator=(const Resource&) = delete;

    /// Awaitable acquisition. Completes immediately when a slot is free,
    /// otherwise suspends in FIFO order until release() hands over a slot.
    auto acquire() noexcept;

    /// Releases one slot; hands it directly to the longest-waiting process
    /// if any (resumed via the event queue at the current virtual time).
    /// It is a logic error to release more slots than were acquired.
    void release();

    std::size_t capacity() const noexcept { return capacity_; }
    std::size_t in_use() const noexcept { return in_use_; }
    std::size_t queue_length() const noexcept { return waiters_.size(); }

    /// Cumulative count of acquisitions that had to wait (contention
    /// statistic surfaced by the simulation model).
    std::size_t contended_acquires() const noexcept { return contended_; }
    std::size_t total_acquires() const noexcept { return acquires_; }

private:
    friend struct ResourceAwaiter;

    bool try_acquire_immediate() noexcept;
    void enqueue(std::coroutine_handle<> handle);

    Environment& env_;
    std::size_t capacity_;
    std::size_t in_use_ = 0;
    std::size_t acquires_ = 0;
    std::size_t contended_ = 0;
    std::deque<std::coroutine_handle<>> waiters_;
};

struct ResourceAwaiter {
    Resource& resource;

    bool await_ready() const noexcept {
        return resource.try_acquire_immediate();
    }
    void await_suspend(std::coroutine_handle<> handle) const {
        resource.enqueue(handle);
    }
    void await_resume() const noexcept {}
};

inline auto Resource::acquire() noexcept { return ResourceAwaiter{*this}; }

/// One-shot broadcast event: processes co_await wait(); trigger() resumes
/// every waiter (in wait order) at the current virtual time. After
/// triggering, wait() completes immediately. reset() re-arms the event
/// (generation barriers re-use one event per generation).
class Event {
public:
    explicit Event(Environment& env) : env_(env) {}

    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;

    auto wait() noexcept;

    void trigger();

    /// Re-arms a triggered event. It is a logic error to reset an event
    /// that still has waiters.
    void reset();

    bool triggered() const noexcept { return triggered_; }
    std::size_t waiter_count() const noexcept { return waiters_.size(); }

private:
    friend struct EventAwaiter;

    Environment& env_;
    bool triggered_ = false;
    std::deque<std::coroutine_handle<>> waiters_;
};

struct EventAwaiter {
    Event& event;

    bool await_ready() const noexcept { return event.triggered_; }
    void await_suspend(std::coroutine_handle<> handle) {
        event.waiters_.push_back(handle);
    }
    void await_resume() const noexcept {}
};

inline auto Event::wait() noexcept { return EventAwaiter{*this}; }

} // namespace borg::des

#endif
