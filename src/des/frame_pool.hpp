#ifndef BORG_DES_FRAME_POOL_HPP
#define BORG_DES_FRAME_POOL_HPP

/// \file frame_pool.hpp
/// Size-class pooling for des::Process coroutine frames (DESIGN.md §13).
///
/// Spawning 10^5+ worker processes used to issue one global-allocator
/// round trip per frame — the dominant setup cost of a large Figure-5
/// cell, and a steady drip at runtime once frames started being reclaimed
/// eagerly at completion. Process::promise_type routes its operator
/// new/delete here instead: frames are rounded up to 64-byte size classes
/// and recycled through per-class freelists, so in steady state a
/// finishing worker's frame is handed straight to the next spawn without
/// touching malloc.
///
/// The pool is thread-local (a des::Environment is single-threaded by
/// construction; the sweep runner gives each replicate its own thread, so
/// per-thread pools need no locks). Blocks are plain ::operator new
/// allocations, which keeps the rare cross-thread free — an Environment
/// destroyed on a different thread than it spawned on — safe: the block
/// simply retires into the destroying thread's pool. Every retained block
/// is released when the thread exits.
///
/// Under AddressSanitizer the pool degrades to a pass-through so frame
/// lifetime bugs (double destroy, use-after-destroy) stay visible to the
/// sanitizer tier instead of being masked by recycling.

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define BORG_DES_FRAME_POOL_PASSTHROUGH 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define BORG_DES_FRAME_POOL_PASSTHROUGH 1
#endif
#endif
#ifndef BORG_DES_FRAME_POOL_PASSTHROUGH
#define BORG_DES_FRAME_POOL_PASSTHROUGH 0
#endif

namespace borg::des {

/// Allocation counters for the calling thread's pool (test/diagnostic
/// hook; see frame_pool_stats()).
struct FramePoolStats {
    std::uint64_t reused = 0;   ///< frames served from a freelist
    std::uint64_t fresh = 0;    ///< frames that hit ::operator new
    std::uint64_t retained = 0; ///< blocks currently parked in freelists
};

namespace detail {

class FramePool {
public:
    static constexpr std::size_t kGranularity = 64;
    static constexpr std::size_t kClasses = 64; ///< pools up to 4 KiB frames

    FramePool() = default;
    FramePool(const FramePool&) = delete;
    FramePool& operator=(const FramePool&) = delete;

    ~FramePool() {
        for (auto& list : free_)
            for (void* block : list) ::operator delete(block);
    }

    void* allocate(std::size_t bytes) {
        const std::size_t cls = size_class(bytes);
        if (cls < kClasses && !free_[cls].empty()) {
            void* block = free_[cls].back();
            free_[cls].pop_back();
            ++stats_.reused;
            --stats_.retained;
            return block;
        }
        ++stats_.fresh;
        return ::operator new(cls < kClasses ? cls * kGranularity : bytes);
    }

    void deallocate(void* block, std::size_t bytes) noexcept {
        const std::size_t cls = size_class(bytes);
        if (cls < kClasses) {
            try {
                free_[cls].push_back(block);
                ++stats_.retained;
                return;
            } catch (...) {
                // Freelist growth failed; fall through to a plain free.
            }
        }
        ::operator delete(block);
    }

    const FramePoolStats& stats() const noexcept { return stats_; }

    static FramePool& local() {
        thread_local FramePool pool;
        return pool;
    }

private:
    static std::size_t size_class(std::size_t bytes) noexcept {
        return (bytes + kGranularity - 1) / kGranularity;
    }

    std::vector<void*> free_[kClasses];
    FramePoolStats stats_;
};

inline void* frame_allocate(std::size_t bytes) {
#if BORG_DES_FRAME_POOL_PASSTHROUGH
    return ::operator new(bytes);
#else
    return FramePool::local().allocate(bytes);
#endif
}

inline void frame_deallocate(void* block, std::size_t bytes) noexcept {
#if BORG_DES_FRAME_POOL_PASSTHROUGH
    (void)bytes;
    ::operator delete(block);
#else
    FramePool::local().deallocate(block, bytes);
#endif
}

} // namespace detail

/// Counters of the calling thread's frame pool. Under sanitizer builds the
/// pool is bypassed and the counters stay zero.
inline FramePoolStats frame_pool_stats() noexcept {
#if BORG_DES_FRAME_POOL_PASSTHROUGH
    return {};
#else
    return detail::FramePool::local().stats();
#endif
}

} // namespace borg::des

#endif
