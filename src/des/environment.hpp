#ifndef BORG_DES_ENVIRONMENT_HPP
#define BORG_DES_ENVIRONMENT_HPP

/// \file environment.hpp
/// A deterministic discrete-event simulation (DES) engine with SimPy
/// semantics, built on C++20 coroutines.
///
/// The paper's simulation model was written in SimPy 2.3: simulated
/// "processes" hold resources for sampled amounts of time instead of doing
/// real work, and the engine advances a virtual clock from event to event.
/// This module is the C++ substitute. A simulation process is a coroutine
/// returning des::Process; it suspends on awaitables created by the
/// environment (delays) or by synchronization primitives (resources, events,
/// declared in resource.hpp).
///
/// Example — the paper's master-interaction fragment:
/// \code
///   des::Process worker(des::Environment& env, des::Resource& master, ...) {
///       while (more_work()) {
///           co_await master.acquire();                 // yield request
///           co_await env.delay(tc() + ta() + tc());    // yield hold
///           master.release();                          // yield release
///           co_await env.delay(tf());                  // evaluate
///       }
///   }
/// \endcode
///
/// Determinism: events scheduled for the same virtual time fire in FIFO
/// scheduling order, and resources grant strictly FIFO, so a run is a pure
/// function of its inputs (including RNG seeds).
///
/// Scale (DESIGN.md §13): pending events live in a calendar queue over a
/// flat struct-of-arrays arena (O(1) amortized dispatch; the pre-rebuild
/// binary heap remains available as QueuePolicy::heap, the behavioral
/// oracle both engines are gated against). Coroutine frames come from a
/// thread-local size-class pool (frame_pool.hpp) and are reclaimed eagerly
/// the moment a process finishes, so a 10^6-worker saturation run neither
/// hammers the global allocator nor accretes dead frames.

#include <cmath>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <stdexcept>
#include <vector>

#include "des/event_queue.hpp"
#include "des/frame_pool.hpp"

namespace borg::obs {
class TraceSink;
class MetricsRegistry;
} // namespace borg::obs

namespace borg::des {

class Environment;

/// Owning handle for a simulation process coroutine. Movable, not copyable.
/// The coroutine starts suspended; Environment::spawn takes ownership of
/// the frame (the handle becomes invalid) and schedules its first step at
/// the current virtual time. Once spawned, the frame is destroyed — and
/// its pooled memory recycled — the moment the process runs to completion;
/// frames still suspended when the environment dies are destroyed by the
/// environment's destructor.
class Process {
public:
    struct promise_type {
        Process get_return_object() noexcept;
        std::suspend_always initial_suspend() noexcept { return {}; }

        /// Reports completion — and any escaped exception — to the
        /// environment, then lets the coroutine finish without suspending
        /// so the frame frees itself back to the pool in O(1).
        auto final_suspend() noexcept;

        void return_void() noexcept {}
        void unhandled_exception() noexcept {
            exception = std::current_exception();
        }

        /// Frames are pooled by size class (frame_pool.hpp): steady-state
        /// spawn/finish cycles recycle frames without touching malloc.
        static void* operator new(std::size_t bytes) {
            return detail::frame_allocate(bytes);
        }
        static void operator delete(void* block, std::size_t bytes) noexcept {
            detail::frame_deallocate(block, bytes);
        }

        Environment* env = nullptr;
        std::uint32_t slot = 0;
        std::exception_ptr exception;
    };

    Process() noexcept = default;
    Process(Process&& other) noexcept;
    Process& operator=(Process&& other) noexcept;
    Process(const Process&) = delete;
    Process& operator=(const Process&) = delete;
    ~Process();

    bool valid() const noexcept { return handle_ != nullptr; }

private:
    friend class Environment;
    explicit Process(std::coroutine_handle<promise_type> handle) noexcept
        : handle_(handle) {}

    std::coroutine_handle<promise_type> handle_;
};

/// The simulation environment: virtual clock plus a time-ordered event
/// queue of suspended coroutine resumptions.
class Environment {
public:
    /// \p queue selects the pending-event store: the calendar queue
    /// (default — O(1) amortized dispatch) or the original binary heap
    /// kept as the schedule-equivalence oracle. Both produce byte-identical
    /// schedules; see event_queue.hpp.
    explicit Environment(QueuePolicy queue = QueuePolicy::calendar) noexcept
        : queue_kind_(queue) {}
    Environment(const Environment&) = delete;
    Environment& operator=(const Environment&) = delete;
    ~Environment();

    QueuePolicy queue_policy() const noexcept { return queue_kind_; }

    /// Current virtual time in seconds.
    double now() const noexcept { return now_; }

    /// Registers a process and schedules its first step at now().
    /// The environment takes ownership of the coroutine frame.
    void spawn(Process process);

    /// Awaitable that suspends the calling process for \p dt virtual
    /// seconds. Negative delays clamp to zero; non-finite delays (NaN,
    /// +/-inf) throw std::invalid_argument — silently admitting a NaN
    /// would corrupt the queue's ordering, since every NaN comparison is
    /// false.
    auto delay(double dt);

    /// Runs until the event queue is empty or stop() was called (a prior
    /// stop is cleared on entry, so calling run() again resumes the
    /// remaining events). Rethrows the first exception that escaped any
    /// process; engine metrics are published on every exit path,
    /// exceptional or not.
    void run();

    /// Runs until now() would exceed \p t (events at exactly t still
    /// fire). On every non-stopped exit the clock is advanced to \p t —
    /// SimPy run(until=...) semantics — whether or not later events remain
    /// queued, so a subsequent delay() never computes from a stale clock.
    void run_until(double t);

    /// Requests the run loop to halt after the current event completes.
    /// Callable from inside a process (e.g. when N evaluations finished).
    void stop() noexcept { stopped_ = true; }

    bool stopped() const noexcept { return stopped_; }

    /// Count of processes that have run to completion.
    std::size_t finished_processes() const noexcept { return finished_; }

    /// Count of spawned processes whose frames are still live (suspended
    /// or running). Teardown destroys exactly these.
    std::size_t live_processes() const noexcept {
        return live_.size() - free_slots_.size();
    }

    /// Pending (not yet dispatched) events.
    std::size_t pending_events() const noexcept {
        return queue_kind_ == QueuePolicy::heap ? heap_.size()
                                                : calendar_.size();
    }

    /// Total events dispatched so far (diagnostic / test hook).
    std::uint64_t event_count() const noexcept { return events_fired_; }

    /// Attaches a trace sink (nullable). The environment itself emits
    /// nothing; primitives built on it (Resource) and executors read this
    /// pointer and record typed events when it is non-null. Emission sites
    /// pay one branch when no sink is attached.
    void set_trace(obs::TraceSink* sink) noexcept { trace_ = sink; }
    obs::TraceSink* trace() const noexcept { return trace_; }

    /// Attaches a metrics registry (nullable). run()/run_until() publish
    /// the engine gauges ("des.events", "des.finished_processes") on exit
    /// — including the exception exit path — so the gauges stay truthful
    /// after a process fault; executors reuse the same registry for their
    /// own instruments.
    void set_metrics(obs::MetricsRegistry* metrics) noexcept {
        metrics_ = metrics;
    }
    obs::MetricsRegistry* metrics() const noexcept { return metrics_; }

    /// Schedules \p handle to resume at absolute virtual time \p t >=
    /// now(). Throws std::invalid_argument for non-finite \p t and
    /// std::logic_error for times in the past. Public so synchronization
    /// primitives (Resource, Event) can reschedule their waiters; not
    /// intended for direct use by simulation code.
    void schedule_at(std::coroutine_handle<> handle, double t) {
        if (!std::isfinite(t))
            throw std::invalid_argument(
                "schedule_at: non-finite event time");
        if (t < now_)
            throw std::logic_error("schedule_at: cannot schedule in the past");
        if (queue_kind_ == QueuePolicy::heap)
            heap_.push(t, next_seq_++, handle);
        else
            calendar_.push(t, next_seq_++, handle);
    }

    /// Called by Process::promise_type at final suspend, just before the
    /// frame destroys itself. Internal.
    void on_process_finished(Process::promise_type& promise) noexcept;

private:
    bool pop_next(double max_time, EventRecord& out) {
        return queue_kind_ == QueuePolicy::heap
                   ? heap_.pop_if(max_time, out)
                   : calendar_.pop_if(max_time, out);
    }

    void dispatch(const EventRecord& item);

    void publish_engine_metrics() const noexcept;

    /// Publishes the engine gauges on every exit from run()/run_until(),
    /// including unwinds caused by a throwing process.
    struct MetricsOnExit {
        const Environment& env;
        ~MetricsOnExit() { env.publish_engine_metrics(); }
    };

    QueuePolicy queue_kind_;
    double now_ = 0.0;
    bool stopped_ = false;
    obs::TraceSink* trace_ = nullptr;
    obs::MetricsRegistry* metrics_ = nullptr;
    std::uint64_t next_seq_ = 0;
    std::uint64_t events_fired_ = 0;
    std::size_t finished_ = 0;
    std::exception_ptr first_exception_;
    HeapQueue heap_;
    CalendarQueue calendar_;

    /// Slot-indexed registry of live frames (null = free slot, chained
    /// through free_slots_). Finishing processes clear their own slot in
    /// O(1); the destructor reaps whatever is left.
    std::vector<std::coroutine_handle<Process::promise_type>> live_;
    std::vector<std::uint32_t> free_slots_;
};

inline auto Process::promise_type::final_suspend() noexcept {
    struct FinalAwaiter {
        promise_type& promise;
        /// Never suspends: report, then fall through so the frame is
        /// destroyed (and its memory pooled) right here.
        bool await_ready() const noexcept {
            if (promise.env) promise.env->on_process_finished(promise);
            return true;
        }
        void await_suspend(std::coroutine_handle<>) const noexcept {}
        void await_resume() const noexcept {}
    };
    return FinalAwaiter{*this};
}

namespace detail {
/// Awaiter for Environment::delay.
struct TimeoutAwaiter {
    Environment& env;
    double dt;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> handle) const {
        env.schedule_at(handle, env.now() + dt);
    }
    void await_resume() const noexcept {}
};
} // namespace detail

inline auto Environment::delay(double dt) {
    if (!std::isfinite(dt))
        throw std::invalid_argument("delay: non-finite duration");
    return detail::TimeoutAwaiter{*this, dt < 0.0 ? 0.0 : dt};
}

} // namespace borg::des

#endif
