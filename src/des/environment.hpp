#ifndef BORG_DES_ENVIRONMENT_HPP
#define BORG_DES_ENVIRONMENT_HPP

/// \file environment.hpp
/// A deterministic discrete-event simulation (DES) engine with SimPy
/// semantics, built on C++20 coroutines.
///
/// The paper's simulation model was written in SimPy 2.3: simulated
/// "processes" hold resources for sampled amounts of time instead of doing
/// real work, and the engine advances a virtual clock from event to event.
/// This module is the C++ substitute. A simulation process is a coroutine
/// returning des::Process; it suspends on awaitables created by the
/// environment (delays) or by synchronization primitives (resources, events,
/// declared in resource.hpp).
///
/// Example — the paper's master-interaction fragment:
/// \code
///   des::Process worker(des::Environment& env, des::Resource& master, ...) {
///       while (more_work()) {
///           co_await master.acquire();                 // yield request
///           co_await env.delay(tc() + ta() + tc());    // yield hold
///           master.release();                          // yield release
///           co_await env.delay(tf());                  // evaluate
///       }
///   }
/// \endcode
///
/// Determinism: events scheduled for the same virtual time fire in FIFO
/// scheduling order, and resources grant strictly FIFO, so a run is a pure
/// function of its inputs (including RNG seeds).

#include <coroutine>
#include <cstdint>
#include <exception>
#include <queue>
#include <vector>

namespace borg::obs {
class TraceSink;
class MetricsRegistry;
} // namespace borg::obs

namespace borg::des {

class Environment;

/// Owning handle for a simulation process coroutine. Movable, not copyable.
/// The coroutine starts suspended; Environment::spawn schedules its first
/// step at the current virtual time.
class Process {
public:
    struct promise_type {
        Process get_return_object() noexcept;
        std::suspend_always initial_suspend() noexcept { return {}; }

        /// Stays suspended at the end (the Process object owns and destroys
        /// the frame) but first reports completion — and any escaped
        /// exception — to the environment in O(1).
        auto final_suspend() noexcept;

        void return_void() noexcept {}
        void unhandled_exception() noexcept {
            exception = std::current_exception();
        }

        Environment* env = nullptr;
        std::exception_ptr exception;
    };

    Process() noexcept = default;
    Process(Process&& other) noexcept;
    Process& operator=(Process&& other) noexcept;
    Process(const Process&) = delete;
    Process& operator=(const Process&) = delete;
    ~Process();

    bool valid() const noexcept { return handle_ != nullptr; }
    bool done() const noexcept { return handle_ && handle_.done(); }

private:
    friend class Environment;
    explicit Process(std::coroutine_handle<promise_type> handle) noexcept
        : handle_(handle) {}

    std::coroutine_handle<promise_type> handle_;
};

/// The simulation environment: virtual clock plus a time-ordered event queue
/// of suspended coroutine resumptions.
class Environment {
public:
    Environment() = default;
    Environment(const Environment&) = delete;
    Environment& operator=(const Environment&) = delete;

    /// Current virtual time in seconds.
    double now() const noexcept { return now_; }

    /// Registers a process and schedules its first step at now().
    /// The environment takes ownership of the coroutine frame.
    void spawn(Process process);

    /// Awaitable that suspends the calling process for \p dt >= 0 virtual
    /// seconds.
    auto delay(double dt) noexcept;

    /// Runs until the event queue is empty or stop() was called.
    /// Rethrows the first exception that escaped any process.
    void run();

    /// Runs until now() would exceed \p t (events at exactly t still fire).
    /// If the queue drains early the clock is advanced to \p t.
    void run_until(double t);

    /// Requests the run loop to halt after the current event completes.
    /// Callable from inside a process (e.g. when N evaluations finished).
    void stop() noexcept { stopped_ = true; }

    bool stopped() const noexcept { return stopped_; }

    /// Count of processes that have run to completion.
    std::size_t finished_processes() const noexcept { return finished_; }

    /// Total events dispatched so far (diagnostic / test hook).
    std::uint64_t event_count() const noexcept { return events_fired_; }

    /// Attaches a trace sink (nullable). The environment itself emits
    /// nothing; primitives built on it (Resource) and executors read this
    /// pointer and record typed events when it is non-null. Emission sites
    /// pay one branch when no sink is attached.
    void set_trace(obs::TraceSink* sink) noexcept { trace_ = sink; }
    obs::TraceSink* trace() const noexcept { return trace_; }

    /// Attaches a metrics registry (nullable). run() publishes the engine
    /// gauges ("des.events", "des.finished_processes") on exit; executors
    /// reuse the same registry for their own instruments.
    void set_metrics(obs::MetricsRegistry* metrics) noexcept {
        metrics_ = metrics;
    }
    obs::MetricsRegistry* metrics() const noexcept { return metrics_; }

    /// Schedules \p handle to resume at absolute virtual time \p t >= now().
    /// Public so synchronization primitives (Resource, Event) can reschedule
    /// their waiters; not intended for direct use by simulation code.
    void schedule_at(std::coroutine_handle<> handle, double t);

    /// Called by Process::promise_type at final suspend. Internal.
    void on_process_finished(std::exception_ptr exception) noexcept;

private:
    struct Scheduled {
        double time;
        std::uint64_t seq;
        std::coroutine_handle<> handle;
        bool operator>(const Scheduled& other) const noexcept {
            if (time != other.time) return time > other.time;
            return seq > other.seq;
        }
    };

    void dispatch(const Scheduled& item);

    void publish_engine_metrics() const;

    double now_ = 0.0;
    bool stopped_ = false;
    obs::TraceSink* trace_ = nullptr;
    obs::MetricsRegistry* metrics_ = nullptr;
    std::uint64_t next_seq_ = 0;
    std::uint64_t events_fired_ = 0;
    std::size_t finished_ = 0;
    std::exception_ptr first_exception_;
    std::priority_queue<Scheduled, std::vector<Scheduled>, std::greater<>>
        queue_;
    std::vector<Process> processes_;
};

inline auto Process::promise_type::final_suspend() noexcept {
    struct FinalAwaiter {
        promise_type& promise;
        bool await_ready() const noexcept { return false; }
        void await_suspend(std::coroutine_handle<>) const noexcept {
            if (promise.env)
                promise.env->on_process_finished(promise.exception);
        }
        void await_resume() const noexcept {}
    };
    return FinalAwaiter{*this};
}

namespace detail {
/// Awaiter for Environment::delay.
struct TimeoutAwaiter {
    Environment& env;
    double dt;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> handle) const {
        env.schedule_at(handle, env.now() + dt);
    }
    void await_resume() const noexcept {}
};
} // namespace detail

inline auto Environment::delay(double dt) noexcept {
    return detail::TimeoutAwaiter{*this, dt < 0.0 ? 0.0 : dt};
}

} // namespace borg::des

#endif
