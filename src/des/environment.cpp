#include "des/environment.hpp"

#include <stdexcept>
#include <utility>

#include "obs/metrics_registry.hpp"

namespace borg::des {

Process Process::promise_type::get_return_object() noexcept {
    return Process{std::coroutine_handle<promise_type>::from_promise(*this)};
}

Process::Process(Process&& other) noexcept
    : handle_(std::exchange(other.handle_, nullptr)) {}

Process& Process::operator=(Process&& other) noexcept {
    if (this != &other) {
        if (handle_) handle_.destroy();
        handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
}

Process::~Process() {
    if (handle_) handle_.destroy();
}

void Environment::spawn(Process process) {
    if (!process.valid())
        throw std::invalid_argument("spawn: invalid process handle");
    process.handle_.promise().env = this;
    schedule_at(process.handle_, now_);
    processes_.push_back(std::move(process));
}

void Environment::schedule_at(std::coroutine_handle<> handle, double t) {
    if (t < now_)
        throw std::logic_error("schedule_at: cannot schedule in the past");
    queue_.push(Scheduled{t, next_seq_++, handle});
}

void Environment::on_process_finished(std::exception_ptr exception) noexcept {
    ++finished_;
    if (exception && !first_exception_) first_exception_ = exception;
}

void Environment::dispatch(const Scheduled& item) {
    now_ = item.time;
    ++events_fired_;
    item.handle.resume();
    if (first_exception_)
        std::rethrow_exception(std::exchange(first_exception_, nullptr));
}

void Environment::run() {
    while (!queue_.empty() && !stopped_) {
        const Scheduled item = queue_.top();
        queue_.pop();
        dispatch(item);
    }
    publish_engine_metrics();
}

void Environment::run_until(double t) {
    while (!queue_.empty() && !stopped_ && queue_.top().time <= t) {
        const Scheduled item = queue_.top();
        queue_.pop();
        dispatch(item);
    }
    if (!stopped_ && now_ < t && queue_.empty()) now_ = t;
    publish_engine_metrics();
}

void Environment::publish_engine_metrics() const {
    if (!metrics_) return;
    metrics_->gauge("des.events").set(static_cast<double>(events_fired_));
    metrics_->gauge("des.finished_processes")
        .set(static_cast<double>(finished_));
}

} // namespace borg::des
