#include "des/environment.hpp"

#include <limits>
#include <utility>

#include "obs/metrics_registry.hpp"

namespace borg::des {

Process Process::promise_type::get_return_object() noexcept {
    return Process{std::coroutine_handle<promise_type>::from_promise(*this)};
}

Process::Process(Process&& other) noexcept
    : handle_(std::exchange(other.handle_, nullptr)) {}

Process& Process::operator=(Process&& other) noexcept {
    if (this != &other) {
        if (handle_) handle_.destroy();
        handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
}

Process::~Process() {
    if (handle_) handle_.destroy();
}

Environment::~Environment() {
    // Reap frames still suspended (in the queue, or parked in a Resource /
    // Event waiter list) when the environment dies. Destroying a frame
    // runs the destructors of its suspended locals but never resumes it,
    // so teardown order between the environment and the primitives holding
    // its waiters does not matter.
    for (const auto handle : live_)
        if (handle) handle.destroy();
}

void Environment::spawn(Process process) {
    if (!process.valid())
        throw std::invalid_argument("spawn: invalid process handle");
    const auto handle = std::exchange(process.handle_, nullptr);
    auto& promise = handle.promise();
    promise.env = this;
    if (!free_slots_.empty()) {
        promise.slot = free_slots_.back();
        free_slots_.pop_back();
        live_[promise.slot] = handle;
    } else {
        promise.slot = static_cast<std::uint32_t>(live_.size());
        live_.push_back(handle);
        // Sized so that on_process_finished's push_back below can never
        // allocate (and therefore never throw): one freed slot per live
        // slot, reserved while we are allowed to fail.
        free_slots_.reserve(live_.capacity());
    }
    schedule_at(handle, now_);
}

void Environment::on_process_finished(Process::promise_type& promise) noexcept {
    ++finished_;
    if (promise.exception && !first_exception_)
        first_exception_ = promise.exception;
    live_[promise.slot] = nullptr;
    free_slots_.push_back(promise.slot);
}

void Environment::dispatch(const EventRecord& item) {
    now_ = item.time;
    ++events_fired_;
    item.handle.resume();
    if (first_exception_)
        std::rethrow_exception(std::exchange(first_exception_, nullptr));
}

void Environment::run() {
    stopped_ = false;
    const MetricsOnExit metrics_guard{*this};
    EventRecord item;
    // The queue kind is fixed for the environment's lifetime, but the
    // compiler cannot prove resume() leaves it alone, so hoist the branch
    // out of the hot loop by hand — one tight loop per engine.
    constexpr double kInf = std::numeric_limits<double>::infinity();
    if (queue_kind_ == QueuePolicy::heap) {
        while (!stopped_ && heap_.pop_if(kInf, item)) dispatch(item);
    } else {
        while (!stopped_) {
            const auto popped = calendar_.pop_ready(kInf);
            if (!popped.handle) break;
            now_ = popped.time;
            ++events_fired_;
            popped.handle.resume();
            if (first_exception_)
                std::rethrow_exception(
                    std::exchange(first_exception_, nullptr));
        }
    }
}

void Environment::run_until(double t) {
    if (!std::isfinite(t))
        throw std::invalid_argument("run_until: non-finite deadline");
    stopped_ = false;
    const MetricsOnExit metrics_guard{*this};
    EventRecord item;
    if (queue_kind_ == QueuePolicy::heap) {
        while (!stopped_ && heap_.pop_if(t, item)) dispatch(item);
    } else {
        while (!stopped_) {
            const auto popped = calendar_.pop_ready(t);
            if (!popped.handle) break;
            now_ = popped.time;
            ++events_fired_;
            popped.handle.resume();
            if (first_exception_)
                std::rethrow_exception(
                    std::exchange(first_exception_, nullptr));
        }
    }
    // SimPy run(until=...) semantics: a non-stopped exit leaves the clock
    // at the deadline even when later events remain queued, so subsequent
    // delay()s compute from t rather than the last fired event.
    if (!stopped_ && now_ < t) now_ = t;
}

void Environment::publish_engine_metrics() const noexcept {
    if (!metrics_) return;
    metrics_->gauge("des.events").set(static_cast<double>(events_fired_));
    metrics_->gauge("des.finished_processes")
        .set(static_cast<double>(finished_));
}

} // namespace borg::des
