#include "des/resource.hpp"

#include <stdexcept>

#include "obs/event_trace.hpp"

namespace borg::des {

Resource::Resource(Environment& env, std::size_t capacity)
    : env_(env), capacity_(capacity) {
    if (capacity == 0)
        throw std::invalid_argument("Resource: capacity must be >= 1");
}

bool Resource::try_acquire_immediate() noexcept {
    if (in_use_ < capacity_ && waiters_.empty()) {
        ++in_use_;
        ++acquires_;
        if (auto* t = env_.trace()) {
            t->record({obs::EventKind::acquire_request, env_.now(),
                       trace_id_, 0.0, 0});
            t->record({obs::EventKind::acquire_grant, env_.now(), trace_id_,
                       0.0, 0});
        }
        return true;
    }
    return false;
}

void Resource::enqueue(std::coroutine_handle<> handle) {
    ++acquires_;
    ++contended_;
    waiters_.push_back(handle);
    if (auto* t = env_.trace())
        t->record({obs::EventKind::acquire_request, env_.now(), trace_id_,
                   0.0, waiters_.size()});
}

void Resource::record_queued_grant(double enqueued_at) const {
    if (auto* t = env_.trace())
        t->record({obs::EventKind::acquire_grant, env_.now(), trace_id_,
                   env_.now() - enqueued_at, 1});
}

void Resource::release() {
    if (in_use_ == 0)
        throw std::logic_error("Resource::release without matching acquire");
    if (auto* t = env_.trace())
        t->record({obs::EventKind::release, env_.now(), trace_id_, 0.0,
                   waiters_.size()});
    if (!waiters_.empty()) {
        // Hand the slot directly to the longest waiter; in_use_ stays the
        // same because ownership transfers without ever becoming free. The
        // grant event is emitted by the waiter itself when it resumes.
        const std::coroutine_handle<> next = waiters_.front();
        waiters_.pop_front();
        env_.schedule_at(next, env_.now());
    } else {
        --in_use_;
    }
}

void Event::trigger() {
    triggered_ = true;
    while (!waiters_.empty()) {
        env_.schedule_at(waiters_.front(), env_.now());
        waiters_.pop_front();
    }
}

void Event::reset() {
    if (!waiters_.empty())
        throw std::logic_error("Event::reset with pending waiters");
    triggered_ = false;
}

} // namespace borg::des
