#ifndef BORG_DES_EVENT_QUEUE_HPP
#define BORG_DES_EVENT_QUEUE_HPP

/// \file event_queue.hpp
/// The two pending-event stores behind des::Environment (DESIGN.md §13).
///
/// Both expose the same total order — ascending (time, seq), seq being the
/// scheduling sequence number that makes same-time events FIFO — so the
/// environment's schedule is a pure function of its inputs regardless of
/// which store backs it:
///
///   * HeapQueue      — the original std::priority_queue binary heap, kept
///                      verbatim as the behavioral oracle. O(log n) per
///                      operation with a full-depth sift on every pop.
///   * CalendarQueue  — a calendar queue (Brown 1988) over a flat slot
///                      arena. O(1) amortized push/pop:
///                      events hash into width-sized time buckets (chained
///                      through the arena, no per-event allocation); a
///                      refill detaches a batch of consecutive epochs into
///                      a scratch window drained through a cursor. Epochs
///                      are disjoint time ranges detached in ascending
///                      order, so only each epoch's few events need
///                      sorting — the window is ordered by construction.
///
/// The calendar variant never allocates in steady state: arena slots are
/// freelist-recycled, bucket chains are index-linked, and the drain scratch
/// reuses its capacity. Bucket count and width self-tune as the population
/// grows/shrinks (resize samples the live inter-event gaps), so the same
/// structure serves a P = 64 ticker set and a P = 10^6 saturation study.
///
/// Neither store owns the coroutine handles it holds; the environment's
/// live-process registry does.

#include <algorithm>
#include <cmath>
#include <coroutine>
#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

namespace borg::des {

/// Which pending-event store an Environment uses. `calendar` is the
/// default; `heap` is the pre-rebuild binary heap kept as the oracle for
/// schedule-equivalence gates (bench/micro_des, golden traces).
enum class QueuePolicy { calendar, heap };

/// One scheduled resumption, as popped from either store.
struct EventRecord {
    double time = 0.0;
    std::uint64_t seq = 0;
    std::coroutine_handle<> handle;
};

/// The original binary-heap store, verbatim from the pre-calendar engine.
class HeapQueue {
public:
    void push(double time, std::uint64_t seq,
              std::coroutine_handle<> handle) {
        queue_.push(Scheduled{time, seq, handle});
    }

    /// Pops the earliest event into \p out if its time is <= max_time.
    bool pop_if(double max_time, EventRecord& out) {
        if (queue_.empty()) return false;
        const Scheduled& top = queue_.top();
        if (top.time > max_time) return false;
        out = {top.time, top.seq, top.handle};
        queue_.pop();
        return true;
    }

    bool empty() const noexcept { return queue_.empty(); }
    std::size_t size() const noexcept { return queue_.size(); }

private:
    struct Scheduled {
        double time;
        std::uint64_t seq;
        std::coroutine_handle<> handle;
        bool operator>(const Scheduled& other) const noexcept {
            if (time != other.time) return time > other.time;
            return seq > other.seq;
        }
    };

    std::priority_queue<Scheduled, std::vector<Scheduled>, std::greater<>>
        queue_;
};

/// Calendar queue over a flat arena. See the file comment for the design;
/// the correctness invariants are:
///
///   I1. Bucket chains only ever hold events of epochs > cur_epoch_ while
///       the scratch is live, and >= cur_epoch_ otherwise (epoch =
///       floor(time / width)): with a live scratch, pushes at or before
///       the current epoch go into the overflow min-heap; without one
///       (fresh queue, or just after a resize), a push below cur_epoch_
///       pulls cur_epoch_ back down to it so the next refill starts no
///       later than the earliest chained event.
///   I2. The scratch is sorted ascending by (time, seq) and drained
///       through a cursor; the overflow heap also orders ascending.
///       Every overflow event has epoch <= cur_epoch_ and every chained
///       event epoch > cur_epoch_ (while the scratch is live), so
///       min(scratch[cursor], overflow.top()) is the globally earliest
///       pending event.
///
/// Together these make pop order exactly ascending (time, seq) — the heap
/// order — without the per-pop log-depth sift: the overflow heap is tiny
/// (same-time wakeups such as resource handoffs), so its log cost never
/// sees the full population.
class CalendarQueue {
public:
    CalendarQueue() { bucket_.assign(nbuckets_, kNil); }

    void push(double time, std::uint64_t seq,
              std::coroutine_handle<> handle) {
        const std::uint64_t epoch = epoch_of(time);
        if (scratch_live_ && epoch <= cur_epoch_) {
            // The event lands at or before the epoch being drained: into
            // the overflow min-heap (an ordered insert into the scratch
            // would memmove O(drain window) per push — quadratic whenever
            // a mistuned width piles a whole generation into one epoch).
            overflow_.push_back({time, seq, handle});
            std::push_heap(overflow_.begin(), overflow_.end(), descending);
        } else {
            const std::uint32_t slot = alloc_slot();
            Slot& s = slot_[slot];
            s.time = time;
            s.seq = seq;
            s.handle = handle;
            const std::size_t b =
                static_cast<std::size_t>(epoch & bucket_mask_);
            s.next = bucket_[b];
            bucket_[b] = slot;
            // Only reachable with scratch_live_ == false (a live scratch
            // absorbs every epoch <= cur_epoch_ above). After a resize,
            // cur_epoch_ rests on the min *pending* epoch, but new events
            // may still land between now() and that minimum — the next
            // refill must start no later than them, or later epochs would
            // drain first (I1).
            if (epoch < cur_epoch_) cur_epoch_ = epoch;
        }
        ++size_;
        if (size_ > 2 * nbuckets_ && nbuckets_ < kMaxBuckets) resize();
    }

    /// What Environment's dispatch loop needs from a pop, and nothing
    /// more: 16 bytes, so the SysV ABI returns it in XMM0/RAX instead of
    /// bouncing a full EventRecord through the stack once per event. A
    /// null handle means nothing was due.
    struct Popped {
        double time;
        std::coroutine_handle<> handle;
    };

    Popped pop_ready(double max_time) {
        // Hot path: overflow empty, scratch non-exhausted — one branch
        // each, then a cursor bump. Mirrors pop_if minus the seq
        // plumbing.
        if (!overflow_.empty()) [[unlikely]] {
            EventRecord out;
            if (!pop_with_overflow(max_time, out)) return {0.0, nullptr};
            return {out.time, out.handle};
        }
        if (scratch_pos_ == scratch_.size() && !refill())
            return {0.0, nullptr};
        const ScratchEntry& top = scratch_[scratch_pos_];
        if (top.time > max_time) return {0.0, nullptr};
        const Popped popped{top.time, top.handle};
        ++scratch_pos_;
        --size_;
        prefetch_resume_ahead();
        return popped;
    }

    bool pop_if(double max_time, EventRecord& out) {
        // Hot path: overflow empty, scratch non-exhausted — one branch
        // each, then a cursor bump.
        if (!overflow_.empty()) [[unlikely]]
            return pop_with_overflow(max_time, out);
        if (scratch_pos_ == scratch_.size() && !refill()) return false;
        const ScratchEntry& top = scratch_[scratch_pos_];
        if (top.time > max_time) return false;
        out = {top.time, top.seq, top.handle};
        ++scratch_pos_;
        --size_;
        prefetch_resume_ahead();
        return true;
    }

    bool empty() const noexcept { return size_ == 0; }
    std::size_t size() const noexcept { return size_; }

private:
    /// Resume-ahead: the sorted window knows which coroutine frames run
    /// next, so warm the frame a few dispatches early. A frame sits
    /// untouched for a whole event population between wakeups — cold on
    /// every resume — and this is a structural edge over a binary heap,
    /// which cannot see its drain order ahead of time. Frames are pooled
    /// at 192 bytes for the common process shape: three lines.
    void prefetch_resume_ahead() const noexcept {
#if defined(__GNUC__) || defined(__clang__)
        const std::size_t ahead = scratch_pos_ + 5;
        if (ahead < scratch_.size()) {
            const void* frame = scratch_[ahead].handle.address();
            __builtin_prefetch(frame);
            __builtin_prefetch(static_cast<const char*>(frame) + 64);
            __builtin_prefetch(static_cast<const char*>(frame) + 128);
        }
#endif
    }

    static constexpr std::uint32_t kNil = 0xffffffffu;
    static constexpr std::size_t kMinBuckets = 8;
    static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;
    /// Epochs are capped so time / width never overflows the integer
    /// range; the cap only coarsens far-future bucketing (the mapping
    /// stays monotone, which is all correctness needs).
    static constexpr double kMaxEpoch = 9.0e18;

    struct ScratchEntry {
        double time;
        std::uint64_t seq;
        std::coroutine_handle<> handle;
    };

    /// Descending (time, seq): the overflow heap's comparator (std heap
    /// functions with a "greater" order make front() the minimum).
    static bool descending(const ScratchEntry& a,
                           const ScratchEntry& b) noexcept {
        if (a.time != b.time) return a.time > b.time;
        return a.seq > b.seq;
    }

    /// Ascending (time, seq): the scratch window's drain order.
    static bool ascending(const ScratchEntry& a,
                          const ScratchEntry& b) noexcept {
        if (a.time != b.time) return a.time < b.time;
        return a.seq < b.seq;
    }

    /// Cold path of pop_if: the overflow heap holds at least one event
    /// (same-time wakeups pushed while the scratch drained), so the
    /// earliest pending event is min(scratch[cursor], overflow.front()).
    bool pop_with_overflow(double max_time, EventRecord& out) {
        const bool from_overflow =
            scratch_pos_ == scratch_.size() ||
            descending(scratch_[scratch_pos_], overflow_.front());
        const ScratchEntry& top =
            from_overflow ? overflow_.front() : scratch_[scratch_pos_];
        if (top.time > max_time) return false;
        out = {top.time, top.seq, top.handle};
        if (from_overflow) {
            std::pop_heap(overflow_.begin(), overflow_.end(), descending);
            overflow_.pop_back();
        } else {
            ++scratch_pos_;
        }
        --size_;
        return true;
    }

    std::uint64_t epoch_of(double time) const noexcept {
        const double e = time * inv_width_;
        return e >= kMaxEpoch ? static_cast<std::uint64_t>(kMaxEpoch)
                              : static_cast<std::uint64_t>(e);
    }

    std::uint32_t alloc_slot() {
        if (free_head_ != kNil) {
            const std::uint32_t slot = free_head_;
            free_head_ = slot_[slot].next;
            return slot;
        }
        const auto slot = static_cast<std::uint32_t>(slot_.size());
        slot_.push_back({});
        return slot;
    }

    void free_slot(std::uint32_t slot) noexcept {
        slot_[slot].next = free_head_;
        free_head_ = slot;
    }

    /// Detaches every event of epoch \p epoch from its bucket chain into
    /// the scratch (unsorted). Returns how many were collected.
    ///
    /// Membership test: refill only probes epochs within one bucket lap of
    /// cur_epoch_, and chains hold epochs > cur_epoch_ (I1), so everything
    /// in this bucket has epoch_of >= \p epoch — membership reduces to
    /// epoch_of <= \p epoch, i.e. time * inv_width < epoch + 1. That is
    /// one multiply + compare per slot instead of multiply + truncate +
    /// integer compare, taken whenever epoch + 1 is exactly representable
    /// as a double (always, outside the far-future kMaxEpoch cap).
    std::size_t detach_epoch(std::uint64_t epoch) {
        const std::size_t b = static_cast<std::size_t>(epoch & bucket_mask_);
        std::uint32_t slot = bucket_[b];
#if defined(__GNUC__) || defined(__clang__)
        // Refill walks consecutive epochs, so the chain two epochs ahead is
        // needed roughly two detach+sort latencies from now — enough lead
        // to hide its first slot's cold miss. The bucket table itself is
        // contiguous and stays warm across the walk.
        const std::uint32_t h2 =
            bucket_[static_cast<std::size_t>((epoch + 2) & bucket_mask_)];
        if (h2 != kNil) __builtin_prefetch(&slot_[h2]);
        const std::uint32_t h3 =
            bucket_[static_cast<std::size_t>((epoch + 3) & bucket_mask_)];
        if (h3 != kNil) __builtin_prefetch(&slot_[h3]);
#endif
        std::uint32_t* link = &bucket_[b];
        std::size_t collected = 0;
        const bool exact = epoch < (std::uint64_t{1} << 52);
        const double upper = static_cast<double>(epoch + 1);
        while (slot != kNil) {
            Slot& s = slot_[slot];
            const std::uint32_t next = s.next;
#if defined(__GNUC__) || defined(__clang__)
            if (next != kNil) __builtin_prefetch(&slot_[next]);
#endif
            const bool member = exact ? s.time * inv_width_ < upper
                                      : epoch_of(s.time) == epoch;
            if (member) {
                scratch_.push_back({s.time, s.seq, s.handle});
                *link = next;
                free_slot(slot);
                ++collected;
            } else {
                link = &s.next;
            }
            slot = next;
        }
        // Order the appended range. Chains are LIFO push order, but one
        // epoch rarely holds more than a couple of events, so this stays
        // in the one-or-two-element regime; across epochs no sort is
        // needed (disjoint time ranges, detached ascending).
        if (collected > 1)
            std::sort(scratch_.end() - static_cast<std::ptrdiff_t>(collected),
                      scratch_.end(), ascending);
        return collected;
    }

    /// Advances cur_epoch_ until an epoch with pending events is found,
    /// then detaches a batch of consecutive epochs into the scratch
    /// window. After one full lap over the buckets, jumps straight to the
    /// epoch of the earliest pending event instead of stepping through
    /// empty years. An epoch holding far more than the O(1) target means
    /// the width is mistuned for the current population (e.g. every
    /// inter-event gap was zero when it was last set) — one resize per
    /// refill re-tunes it from the live spread.
    bool refill() {
        if (size_ == 0) {
            scratch_live_ = false;
            return false;
        }
        // Every prior entry has been drained (pop_if only lands here with
        // the cursor at the end): recycle the window's capacity.
        scratch_.clear();
        scratch_pos_ = 0;
        // Shrink here rather than per pop: pop_if reaches refill whenever
        // its windows run dry, which is exactly when a shrunken population
        // is worth re-bucketing.
        if (size_ < nbuckets_ / 4 && nbuckets_ > kMinBuckets) resize();
        constexpr std::size_t kOccupancyLimit = 96;
        // Once an occupied epoch is found, keep detaching a few more so
        // one walk + one small sort serves several pops. Tuned against
        // the jittered-ticker profile in bench/micro_des: batches of ~5
        // amortize the per-refill setup without letting the sort grow
        // past the few-element regime where it is effectively free.
        constexpr std::size_t kBatchTarget = 64;
        constexpr std::size_t kBatchMaxSteps = 128;
        bool retuned = false;
        while (true) {
            std::size_t stepped = 0;
            std::uint64_t epoch =
                scratch_live_ ? cur_epoch_ + 1 : cur_epoch_;
            std::size_t collected;
            while (true) {
                if (stepped++ > nbuckets_) {
                    epoch = epoch_of(min_pending_time());
                    stepped = 0;
                }
                collected = detach_epoch(epoch);
                if (collected > 0) break;
                ++epoch;
            }
            std::size_t epoch_peak = collected;
            for (std::size_t extra = 0;
                 collected < kBatchTarget && extra < kBatchMaxSteps &&
                 collected < size_;
                 ++extra) {
                const std::size_t got = detach_epoch(++epoch);
                collected += got;
                if (got > epoch_peak) epoch_peak = got;
            }
            // Mistuning check is per epoch, not per batch: a healthy batch
            // legitimately totals kBatchTarget events across many epochs;
            // only a single epoch swallowing a population-scale pile means
            // the width no longer spreads the events out.
            if (!retuned && epoch_peak > kOccupancyLimit &&
                size_ > 2 * kOccupancyLimit) {
                retuned = true;
                resize(); // reclaims the detached scratch, re-tunes width
                continue;
            }
            cur_epoch_ = epoch;
            scratch_live_ = true;
#if defined(__GNUC__) || defined(__clang__)
            // The resume-ahead prefetch in pop_if() only has lead time once
            // the cursor is a few entries deep; the first dispatches of a
            // fresh window would otherwise always resume cold frames. Warm
            // them here, while the sort results above are still in flight.
            const std::size_t warm =
                std::min(scratch_pos_ + 3, scratch_.size());
            for (std::size_t i = scratch_pos_; i < warm; ++i) {
                const void* frame = scratch_[i].handle.address();
                __builtin_prefetch(frame);
                __builtin_prefetch(static_cast<const char*>(frame) + 64);
                __builtin_prefetch(static_cast<const char*>(frame) + 128);
            }
#endif
            return true;
        }
    }

    double min_pending_time() const noexcept {
        double best = std::numeric_limits<double>::infinity();
        std::uint64_t best_seq = 0;
        bool found = false;
        for (const std::uint32_t head : bucket_) {
            for (std::uint32_t s = head; s != kNil; s = slot_[s].next) {
                if (!found || slot_[s].time < best ||
                    (slot_[s].time == best && slot_[s].seq < best_seq)) {
                    best = slot_[s].time;
                    best_seq = slot_[s].seq;
                    found = true;
                }
            }
        }
        return best;
    }

    /// Rebuilds the bucket table for the current population: bucket count
    /// tracks size (power of two for mask indexing) and the width is
    /// re-tuned from a sample of live inter-event gaps so that a bucket
    /// holds O(1) events of its epoch.
    void resize() {
        // Gather every pending event (chains + scratch) as scratch entries.
        std::vector<ScratchEntry> all;
        all.reserve(size_);
        for (std::uint32_t& head : bucket_) {
            for (std::uint32_t s = head; s != kNil;) {
                const std::uint32_t next = slot_[s].next;
                all.push_back({slot_[s].time, slot_[s].seq, slot_[s].handle});
                s = next;
            }
            head = kNil;
        }
        all.insert(all.end(),
                   scratch_.begin() +
                       static_cast<std::ptrdiff_t>(scratch_pos_),
                   scratch_.end());
        scratch_.clear();
        scratch_pos_ = 0;
        all.insert(all.end(), overflow_.begin(), overflow_.end());
        overflow_.clear();
        scratch_live_ = false;

        std::size_t want = kMinBuckets;
        while (want < size_ && want < kMaxBuckets) want <<= 1;
        nbuckets_ = want;
        bucket_mask_ = static_cast<std::uint64_t>(nbuckets_ - 1);
        bucket_.assign(nbuckets_, kNil);
        retune_width(all);

        // Reset the arena and re-chain everything under the new geometry.
        slot_.clear();
        free_head_ = kNil;
        double min_time = std::numeric_limits<double>::infinity();
        for (const ScratchEntry& e : all)
            min_time = std::min(min_time, e.time);
        cur_epoch_ = all.empty() ? 0 : epoch_of(min_time);
        for (const ScratchEntry& e : all) {
            const std::uint32_t slot = alloc_slot();
            Slot& s = slot_[slot];
            s.time = e.time;
            s.seq = e.seq;
            s.handle = e.handle;
            const std::size_t b =
                static_cast<std::size_t>(epoch_of(e.time) & bucket_mask_);
            s.next = bucket_[b];
            bucket_[b] = slot;
        }
    }

    /// Width = 1.5x the population's mean inter-event gap, so a drained
    /// epoch holds ~1-2 events and the batched refill tops up to ~5 with
    /// a few cheap probes (measured optimum on the jittered-ticker
    /// profile: wider epochs push the per-refill sort out of the
    /// few-element regime, narrower ones stop amortizing the refill
    /// setup). The mean gap is the occupied time span divided by
    /// (population - 1); the span is read off a strided sample (its
    /// extremes track the population's). An all-equal population has zero
    /// span and keeps the old width (any width works when everything
    /// shares one epoch).
    void retune_width(const std::vector<ScratchEntry>& all) {
        if (all.size() < 2) return;
        constexpr std::size_t kSample = 64;
        const std::size_t stride =
            std::max<std::size_t>(1, all.size() / kSample);
        double lo = all[0].time;
        double hi = all[0].time;
        for (std::size_t i = stride; i < all.size(); i += stride) {
            lo = std::min(lo, all[i].time);
            hi = std::max(hi, all[i].time);
        }
        const double width =
            1.5 * (hi - lo) / static_cast<double>(all.size() - 1);
        if (width > 0.0 && std::isfinite(width)) {
            width_ = width;
            inv_width_ = 1.0 / width;
        }
    }

    // Flat slot arena, chained through Slot::next (which doubles as the
    // freelist link for dead slots). One packed, 32-byte-aligned record
    // per event: a drained slot was pushed a whole event population ago,
    // so its lines are cold — parallel per-field columns were measured to
    // cost up to three cold misses per drained event where this layout
    // pays exactly one (DESIGN.md §13).
    struct alignas(32) Slot {
        double time;
        std::uint64_t seq;
        std::coroutine_handle<> handle;
        std::uint32_t next;
    };
    std::vector<Slot> slot_;
    std::uint32_t free_head_ = kNil;

    std::vector<std::uint32_t> bucket_;
    std::size_t nbuckets_ = kMinBuckets;
    std::uint64_t bucket_mask_ = kMinBuckets - 1;
    double width_ = 1.0;
    double inv_width_ = 1.0;

    /// Ascending drain window, consumed through scratch_pos_; see I1/I2.
    /// scratch_live_ marks cur_epoch_ as "this epoch has been detached":
    /// only then do pushes at or before it land in the overflow heap, and
    /// refill resumes from the next epoch.
    std::vector<ScratchEntry> scratch_;
    std::size_t scratch_pos_ = 0;
    /// Min-heap (earliest at front()) of events pushed at or before
    /// cur_epoch_ while the scratch is live — typically same-time wakeups
    /// (resource handoffs), so it stays a handful of entries deep.
    std::vector<ScratchEntry> overflow_;
    std::uint64_t cur_epoch_ = 0;
    bool scratch_live_ = false;

    std::size_t size_ = 0;
};

} // namespace borg::des

#endif
