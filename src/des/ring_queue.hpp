#ifndef BORG_DES_RING_QUEUE_HPP
#define BORG_DES_RING_QUEUE_HPP

/// \file ring_queue.hpp
/// Power-of-two ring buffer used for Resource/Event waiter FIFOs.
///
/// std::deque releases and re-acquires its block storage as elements cycle
/// through, so a steady-state acquire/release loop still pays a periodic
/// allocator round trip. The ring reuses one buffer forever: pushes and
/// pops are a masked index bump, and the buffer only grows (doubling) when
/// the population of simultaneous waiters exceeds anything seen before.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace borg::des {

template <typename T>
class RingQueue {
public:
    bool empty() const noexcept { return head_ == tail_; }
    std::size_t size() const noexcept { return tail_ - head_; }

    void push_back(const T& value) {
        if (size() == buf_.size()) grow();
        buf_[tail_ & mask_] = value;
        ++tail_;
    }

    T& front() noexcept { return buf_[head_ & mask_]; }
    const T& front() const noexcept { return buf_[head_ & mask_]; }

    void pop_front() noexcept { ++head_; }

private:
    void grow() {
        const std::size_t old_cap = buf_.size();
        const std::size_t new_cap = old_cap == 0 ? 8 : old_cap * 2;
        std::vector<T> next(new_cap);
        const std::size_t count = size();
        for (std::size_t i = 0; i < count; ++i)
            next[i] = buf_[(head_ + i) & mask_];
        buf_ = std::move(next);
        mask_ = new_cap - 1;
        head_ = 0;
        tail_ = count;
    }

    std::vector<T> buf_;
    std::size_t mask_ = 0;
    std::uint64_t head_ = 0;
    std::uint64_t tail_ = 0;
};

} // namespace borg::des

#endif
