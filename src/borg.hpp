#ifndef BORG_BORG_HPP
#define BORG_BORG_HPP

/// \file borg.hpp
/// Umbrella header: the library's entire public API in one include.
/// Fine-grained headers remain available for faster builds; this is the
/// convenience entry point used by downstream consumers and quick
/// experiments.
///
///   #include "borg.hpp"
///   auto problem = borg::problems::make_problem("dtlz2_5");
///   borg::moea::BorgMoea algorithm(*problem, params, seed);

// Utilities
#include "util/cli.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

// Statistics: distributions, fitting, goodness of fit, summaries
#include "stats/distribution.hpp"
#include "stats/fitting.hpp"
#include "stats/summary.hpp"

// Discrete-event simulation engine
#include "des/environment.hpp"
#include "des/resource.hpp"

// Test problems and reference sets
#include "problems/delayed.hpp"
#include "problems/dtlz.hpp"
#include "problems/engineering.hpp"
#include "problems/problem.hpp"
#include "problems/reference_set.hpp"
#include "problems/uf.hpp"
#include "problems/zdt.hpp"

// The Borg MOEA and supporting machinery
#include "moea/borg.hpp"
#include "moea/checkpoint.hpp"
#include "moea/diagnostics.hpp"
#include "moea/dominance.hpp"
#include "moea/epsilon_archive.hpp"
#include "moea/nsga2.hpp"
#include "moea/operators.hpp"
#include "moea/population.hpp"

// Quality indicators
#include "metrics/hypervolume.hpp"
#include "metrics/indicators.hpp"

// Parallel executors
#include "parallel/async_executor.hpp"
#include "parallel/message.hpp"
#include "parallel/multi_master.hpp"
#include "parallel/sync_executor.hpp"
#include "parallel/thread_executor.hpp"
#include "parallel/trajectory.hpp"
#include "parallel/virtual_cluster.hpp"

// Scalability models
#include "models/analytical.hpp"
#include "models/simulation_model.hpp"
#include "models/sync_model.hpp"

#endif
