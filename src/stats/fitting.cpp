#include "stats/fitting.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/summary.hpp"

namespace borg::stats {

namespace {

double total_log_likelihood(const Distribution& d, std::span<const double> xs) {
    double total = 0.0;
    for (const double x : xs) total += d.log_pdf(x);
    return total;
}

Fit finish(std::unique_ptr<Distribution> d, std::string family,
           std::span<const double> xs, int parameter_count) {
    Fit fit;
    fit.log_likelihood = total_log_likelihood(*d, xs);
    fit.aic = 2.0 * parameter_count - 2.0 * fit.log_likelihood;
    fit.distribution = std::move(d);
    fit.family = std::move(family);
    return fit;
}

void require_positive(std::span<const double> xs, const char* family) {
    for (const double x : xs)
        if (x <= 0.0)
            throw std::invalid_argument(std::string(family) +
                                        ": sample contains non-positive values");
}

void require_size(std::span<const double> xs, std::size_t n,
                  const char* family) {
    if (xs.size() < n)
        throw std::invalid_argument(std::string(family) + ": sample too small");
}

} // namespace

double digamma(double x) {
    assert(x > 0.0);
    double result = 0.0;
    // Recurrence psi(x) = psi(x+1) - 1/x until the asymptotic region.
    while (x < 10.0) {
        result -= 1.0 / x;
        x += 1.0;
    }
    // Asymptotic expansion through the 1/x^8 term (~1e-14 at x >= 10).
    const double inv = 1.0 / x;
    const double inv2 = inv * inv;
    result += std::log(x) - 0.5 * inv -
              inv2 * (1.0 / 12.0 -
                      inv2 * (1.0 / 120.0 -
                              inv2 * (1.0 / 252.0 - inv2 / 240.0)));
    return result;
}

Fit fit_normal(std::span<const double> xs) {
    require_size(xs, 2, "normal");
    const Summary s = summarize(xs);
    // MLE uses the biased variance.
    double var = 0.0;
    for (const double x : xs) var += (x - s.mean) * (x - s.mean);
    var /= static_cast<double>(xs.size());
    if (var <= 0.0) throw std::invalid_argument("normal: zero variance");
    return finish(std::make_unique<NormalDistribution>(s.mean, std::sqrt(var)),
                  "normal", xs, 2);
}

Fit fit_lognormal(std::span<const double> xs) {
    require_size(xs, 2, "lognormal");
    require_positive(xs, "lognormal");
    double mu = 0.0;
    for (const double x : xs) mu += std::log(x);
    mu /= static_cast<double>(xs.size());
    double var = 0.0;
    for (const double x : xs) {
        const double d = std::log(x) - mu;
        var += d * d;
    }
    var /= static_cast<double>(xs.size());
    if (var <= 0.0) throw std::invalid_argument("lognormal: zero variance");
    return finish(std::make_unique<LogNormalDistribution>(mu, std::sqrt(var)),
                  "lognormal", xs, 2);
}

Fit fit_exponential(std::span<const double> xs) {
    require_size(xs, 1, "exponential");
    require_positive(xs, "exponential");
    const Summary s = summarize(xs);
    return finish(std::make_unique<ExponentialDistribution>(1.0 / s.mean),
                  "exponential", xs, 1);
}

Fit fit_uniform(std::span<const double> xs) {
    require_size(xs, 2, "uniform");
    const auto [lo_it, hi_it] = std::minmax_element(xs.begin(), xs.end());
    if (*lo_it >= *hi_it) throw std::invalid_argument("uniform: degenerate");
    // Widen infinitesimally so the observed extremes have finite density.
    const double pad = (*hi_it - *lo_it) * 1e-12;
    return finish(
        std::make_unique<UniformDistribution>(*lo_it - pad, *hi_it + pad),
        "uniform", xs, 2);
}

Fit fit_gamma(std::span<const double> xs) {
    require_size(xs, 2, "gamma");
    require_positive(xs, "gamma");
    const Summary sm = summarize(xs);
    double mean_log = 0.0;
    for (const double x : xs) mean_log += std::log(x);
    mean_log /= static_cast<double>(xs.size());

    // Newton iteration on f(k) = log(k) - psi(k) - s, with
    // s = log(mean) - mean(log x) >= 0 (Jensen). Standard starting point.
    const double s = std::log(sm.mean) - mean_log;
    if (s <= 0.0) throw std::invalid_argument("gamma: zero dispersion");
    double k = (3.0 - s + std::sqrt((s - 3.0) * (s - 3.0) + 24.0 * s)) /
               (12.0 * s);
    for (int iter = 0; iter < 100; ++iter) {
        const double f = std::log(k) - digamma(k) - s;
        // f'(k) = 1/k - psi'(k); approximate psi' by finite difference of psi
        // (adequate here; f is smooth and monotone).
        const double h = std::max(1e-8, k * 1e-6);
        const double fp = 1.0 / k - (digamma(k + h) - digamma(k)) / h;
        const double step = f / fp;
        double next = k - step;
        if (next <= 0.0) next = k / 2.0;
        if (std::abs(next - k) < 1e-12 * std::max(1.0, k)) {
            k = next;
            break;
        }
        k = next;
    }
    const double theta = sm.mean / k;
    return finish(std::make_unique<GammaDistribution>(k, theta), "gamma", xs,
                  2);
}

Fit fit_weibull(std::span<const double> xs) {
    require_size(xs, 2, "weibull");
    require_positive(xs, "weibull");
    const auto n = static_cast<double>(xs.size());
    double mean_log = 0.0;
    for (const double x : xs) mean_log += std::log(x);
    mean_log /= n;

    // Fixed-point/Newton on the profile likelihood shape equation:
    //   g(k) = sum(x^k log x)/sum(x^k) - 1/k - mean(log x) = 0.
    double k = 1.0;
    for (int iter = 0; iter < 200; ++iter) {
        double sum_xk = 0.0, sum_xk_log = 0.0, sum_xk_log2 = 0.0;
        for (const double x : xs) {
            const double lx = std::log(x);
            const double xk = std::pow(x, k);
            sum_xk += xk;
            sum_xk_log += xk * lx;
            sum_xk_log2 += xk * lx * lx;
        }
        const double ratio = sum_xk_log / sum_xk;
        const double g = ratio - 1.0 / k - mean_log;
        const double gp =
            (sum_xk_log2 * sum_xk - sum_xk_log * sum_xk_log) /
                (sum_xk * sum_xk) +
            1.0 / (k * k);
        double next = k - g / gp;
        if (next <= 0.0) next = k / 2.0;
        if (std::abs(next - k) < 1e-12 * std::max(1.0, k)) {
            k = next;
            break;
        }
        k = next;
    }
    double sum_xk = 0.0;
    for (const double x : xs) sum_xk += std::pow(x, k);
    const double lambda = std::pow(sum_xk / n, 1.0 / k);
    if (!(k > 0.0) || !(lambda > 0.0) || !std::isfinite(k) ||
        !std::isfinite(lambda))
        throw std::invalid_argument("weibull: iteration diverged");
    return finish(std::make_unique<WeibullDistribution>(k, lambda), "weibull",
                  xs, 2);
}

KsResult ks_test(std::span<const double> xs,
                 const std::function<double(double)>& cdf) {
    if (xs.empty()) throw std::invalid_argument("ks_test: empty sample");
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());

    const auto n = static_cast<double>(sorted.size());
    double d = 0.0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        const double f = cdf(sorted[i]);
        const double above = (static_cast<double>(i) + 1.0) / n - f;
        const double below = f - static_cast<double>(i) / n;
        d = std::max({d, above, below});
    }

    // Asymptotic Kolmogorov survival function at sqrt(n) D.
    const double x = std::sqrt(n) * d;
    double q = 0.0;
    for (int k = 1; k <= 100; ++k) {
        const double term =
            2.0 * (k % 2 == 1 ? 1.0 : -1.0) *
            std::exp(-2.0 * static_cast<double>(k) * static_cast<double>(k) *
                     x * x);
        q += term;
        if (std::abs(term) < 1e-12) break;
    }
    return KsResult{d, std::clamp(q, 0.0, 1.0)};
}

double normal_cdf_value(double x, double mu, double sigma) {
    return normal_cdf((x - mu) / sigma);
}

double lognormal_cdf_value(double x, double mu, double sigma) {
    if (x <= 0.0) return 0.0;
    return normal_cdf((std::log(x) - mu) / sigma);
}

double exponential_cdf_value(double x, double rate) {
    return x <= 0.0 ? 0.0 : 1.0 - std::exp(-rate * x);
}

double uniform_cdf_value(double x, double lo, double hi) {
    if (x <= lo) return 0.0;
    if (x >= hi) return 1.0;
    return (x - lo) / (hi - lo);
}

double weibull_cdf_value(double x, double shape, double scale) {
    return x <= 0.0 ? 0.0 : 1.0 - std::exp(-std::pow(x / scale, shape));
}

double regularized_gamma_p(double a, double x) {
    if (x <= 0.0) return 0.0;
    if (a <= 0.0) throw std::invalid_argument("regularized_gamma_p: a <= 0");
    const double log_prefactor = a * std::log(x) - x - std::lgamma(a);
    if (x < a + 1.0) {
        // Series expansion: P(a,x) = e^... sum x^k / (a)_{k+1}.
        double term = 1.0 / a;
        double sum = term;
        for (int k = 1; k < 1000; ++k) {
            term *= x / (a + static_cast<double>(k));
            sum += term;
            if (term < sum * 1e-15) break;
        }
        return std::clamp(std::exp(log_prefactor) * sum, 0.0, 1.0);
    }
    // Continued fraction (Lentz) for Q(a,x); P = 1 - Q.
    double b = x + 1.0 - a;
    double c = 1e300;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i < 1000; ++i) {
        const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
        b += 2.0;
        d = an * d + b;
        if (std::abs(d) < 1e-300) d = 1e-300;
        c = b + an / c;
        if (std::abs(c) < 1e-300) c = 1e-300;
        d = 1.0 / d;
        const double delta = d * c;
        h *= delta;
        if (std::abs(delta - 1.0) < 1e-15) break;
    }
    return std::clamp(1.0 - std::exp(log_prefactor) * h, 0.0, 1.0);
}

double gamma_cdf_value(double x, double shape, double scale) {
    return x <= 0.0 ? 0.0 : regularized_gamma_p(shape, x / scale);
}

KsResult ks_test_fit(const Fit& fit, std::span<const double> xs) {
    const Distribution& d = *fit.distribution;
    std::function<double(double)> cdf;
    if (const auto* normal = dynamic_cast<const NormalDistribution*>(&d)) {
        cdf = [=](double x) {
            return normal_cdf_value(x, normal->mu(), normal->sigma());
        };
    } else if (const auto* lognormal =
                   dynamic_cast<const LogNormalDistribution*>(&d)) {
        cdf = [=](double x) {
            return lognormal_cdf_value(x, lognormal->mu(),
                                       lognormal->sigma());
        };
    } else if (const auto* expo =
                   dynamic_cast<const ExponentialDistribution*>(&d)) {
        cdf = [=](double x) {
            return exponential_cdf_value(x, expo->rate());
        };
    } else if (const auto* uniform =
                   dynamic_cast<const UniformDistribution*>(&d)) {
        cdf = [=](double x) {
            return uniform_cdf_value(x, uniform->lo(), uniform->hi());
        };
    } else if (const auto* gamma =
                   dynamic_cast<const GammaDistribution*>(&d)) {
        cdf = [=](double x) {
            return gamma_cdf_value(x, gamma->shape(), gamma->scale());
        };
    } else if (const auto* weibull =
                   dynamic_cast<const WeibullDistribution*>(&d)) {
        cdf = [=](double x) {
            return weibull_cdf_value(x, weibull->shape(), weibull->scale());
        };
    } else {
        throw std::invalid_argument("ks_test_fit: no CDF for family '" +
                                    fit.family + "'");
    }
    return ks_test(xs, cdf);
}

std::vector<Fit> fit_all(std::span<const double> xs) {
    if (xs.size() < 2)
        throw std::invalid_argument("fit_all: need at least 2 samples");
    std::vector<Fit> fits;
    using Fitter = Fit (*)(std::span<const double>);
    constexpr Fitter fitters[] = {fit_normal,  fit_lognormal, fit_exponential,
                                  fit_uniform, fit_gamma,     fit_weibull};
    for (const Fitter fitter : fitters) {
        try {
            Fit fit = fitter(xs);
            if (std::isfinite(fit.log_likelihood)) fits.push_back(std::move(fit));
        } catch (const std::invalid_argument&) {
            // Family not applicable to this sample; skip it.
        }
    }
    std::sort(fits.begin(), fits.end(), [](const Fit& a, const Fit& b) {
        return a.log_likelihood > b.log_likelihood;
    });
    return fits;
}

std::unique_ptr<Distribution> best_fit(std::span<const double> xs) {
    if (!xs.empty()) {
        const Summary s = summarize(xs);
        if (s.stddev == 0.0 || xs.size() < 2)
            return std::make_unique<ConstantDistribution>(s.mean);
        auto fits = fit_all(xs);
        if (!fits.empty()) return std::move(fits.front().distribution);
        return std::make_unique<ConstantDistribution>(s.mean);
    }
    return std::make_unique<ConstantDistribution>(0.0);
}

} // namespace borg::stats
