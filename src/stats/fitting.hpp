#ifndef BORG_STATS_FITTING_HPP
#define BORG_STATS_FITTING_HPP

/// \file fitting.hpp
/// Maximum-likelihood distribution fitting and log-likelihood model selection.
///
/// The paper fits sampled T_C / T_A / T_F timings to candidate distributions
/// with the R Project and selects the family with the best log-likelihood
/// (Section IV-B). This module reproduces that workflow: closed-form MLE for
/// normal / lognormal / exponential / uniform, Newton iteration for the gamma
/// and Weibull shape parameters, and selection by log-likelihood (AIC is also
/// reported to penalize parameter count).

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "stats/distribution.hpp"

namespace borg::stats {

/// One fitted candidate.
struct Fit {
    std::unique_ptr<Distribution> distribution;
    std::string family;       ///< "normal", "gamma", ...
    double log_likelihood = 0; ///< total over the sample
    double aic = 0;            ///< 2p - 2 log L
};

/// Closed-form MLE fits. Each throws std::invalid_argument when the sample
/// is unusable for the family (e.g. non-positive values for lognormal).
Fit fit_normal(std::span<const double> xs);
Fit fit_lognormal(std::span<const double> xs);
Fit fit_exponential(std::span<const double> xs);
Fit fit_uniform(std::span<const double> xs);

/// Newton-iteration MLE fits (positive samples required).
Fit fit_gamma(std::span<const double> xs);
Fit fit_weibull(std::span<const double> xs);

/// Fits every applicable family to the sample and returns the fits sorted by
/// descending log-likelihood (families that fail to fit are skipped). The
/// first element is the paper's "best fit". Requires at least 2 samples.
std::vector<Fit> fit_all(std::span<const double> xs);

/// Convenience: best fit by log-likelihood; falls back to a constant
/// distribution at the sample mean when no family is applicable (e.g. a
/// zero-variance sample).
std::unique_ptr<Distribution> best_fit(std::span<const double> xs);

/// Digamma function psi(x) for x > 0 (recurrence + asymptotic series);
/// needed by the gamma MLE. Accurate to ~1e-12 for x >= 10.
double digamma(double x);

/// One-sample Kolmogorov-Smirnov goodness-of-fit test: supremum distance
/// between the sample's empirical CDF and the distribution's CDF
/// (estimated numerically from the log-density via sampling-free
/// trapezoidal integration would be fragile, so the CDF is supplied).
struct KsResult {
    double statistic = 0.0; ///< D_n = sup |F_empirical - F|
    double p_value = 0.0;   ///< asymptotic Kolmogorov distribution
};

/// \p cdf evaluates the hypothesized distribution's CDF. The asymptotic
/// p-value (valid for n >= ~35) uses the Kolmogorov series
/// Q(x) = 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 x^2) at x = sqrt(n) D_n.
KsResult ks_test(std::span<const double> xs,
                 const std::function<double(double)>& cdf);

/// Convenience: KS test of a Fit against the sample it was (or wasn't)
/// fitted to, dispatching on the fitted family. Throws for families with
/// no closed-form CDF here (constant, truncated normal).
KsResult ks_test_fit(const Fit& fit, std::span<const double> xs);

/// CDF helpers for the fitted families (exact closed forms; gamma uses the
/// regularized lower incomplete gamma via series/continued fraction).
double normal_cdf_value(double x, double mu, double sigma);
double lognormal_cdf_value(double x, double mu, double sigma);
double exponential_cdf_value(double x, double rate);
double uniform_cdf_value(double x, double lo, double hi);
double weibull_cdf_value(double x, double shape, double scale);
double gamma_cdf_value(double x, double shape, double scale);

/// Regularized lower incomplete gamma P(a, x), needed by gamma_cdf_value;
/// exposed for testing.
double regularized_gamma_p(double a, double x);

} // namespace borg::stats

#endif
