#include "stats/summary.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace borg::stats {

void Accumulator::add(double x) noexcept {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * nb / (na + nb);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
}

double Accumulator::variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

Summary summarize(std::span<const double> xs) {
    Summary s;
    if (xs.empty()) return s;
    Accumulator acc;
    for (const double x : xs) acc.add(x);
    s.count = acc.count();
    s.mean = acc.mean();
    s.stddev = acc.stddev();
    s.min = acc.min();
    s.max = acc.max();
    s.median = quantile(std::vector<double>(xs.begin(), xs.end()), 0.5);
    return s;
}

Summary& Summary::merge(const Summary& other) noexcept {
    if (other.count == 0) return *this;
    if (count == 0) {
        *this = other;
        return *this;
    }
    const double na = static_cast<double>(count);
    const double nb = static_cast<double>(other.count);
    const double n = na + nb;
    // Recover the centered second moments from the unbiased stddevs, Chan-
    // combine, then convert back. Exact for any partitioning.
    const double m2a = stddev * stddev * (na - 1.0);
    const double m2b = other.stddev * other.stddev * (nb - 1.0);
    const double delta = other.mean - mean;
    const double m2 = m2a + m2b + delta * delta * na * nb / n;
    median = (median * na + other.median * nb) / n;
    mean += delta * nb / n;
    stddev = n > 1.0 ? std::sqrt(m2 / (n - 1.0)) : 0.0;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
    count += other.count;
    return *this;
}

Summary merge(Summary a, const Summary& b) noexcept { return a.merge(b); }

double quantile(std::vector<double> xs, double q) {
    assert(!xs.empty() && q >= 0.0 && q <= 1.0);
    std::sort(xs.begin(), xs.end());
    const double h = q * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(h));
    const auto hi = static_cast<std::size_t>(std::ceil(h));
    const double frac = h - std::floor(h);
    return xs[lo] + frac * (xs[hi] - xs[lo]);
}

} // namespace borg::stats
