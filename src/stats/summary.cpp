#include "stats/summary.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace borg::stats {

void Accumulator::add(double x) noexcept {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

Summary summarize(std::span<const double> xs) {
    Summary s;
    if (xs.empty()) return s;
    Accumulator acc;
    for (const double x : xs) acc.add(x);
    s.count = acc.count();
    s.mean = acc.mean();
    s.stddev = acc.stddev();
    s.min = acc.min();
    s.max = acc.max();
    s.median = quantile(std::vector<double>(xs.begin(), xs.end()), 0.5);
    return s;
}

double quantile(std::vector<double> xs, double q) {
    assert(!xs.empty() && q >= 0.0 && q <= 1.0);
    std::sort(xs.begin(), xs.end());
    const double h = q * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(h));
    const auto hi = static_cast<std::size_t>(std::ceil(h));
    const double frac = h - std::floor(h);
    return xs[lo] + frac * (xs[hi] - xs[lo]);
}

} // namespace borg::stats
