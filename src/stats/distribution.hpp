#ifndef BORG_STATS_DISTRIBUTION_HPP
#define BORG_STATS_DISTRIBUTION_HPP

/// \file distribution.hpp
/// Probability distributions for the timing quantities T_F, T_C, T_A.
///
/// The paper's simulation model samples the function-evaluation time,
/// communication time, and algorithm overhead from fitted probability
/// distributions rather than treating them as constants. This hierarchy
/// provides the distributions the paper's workflow fits (via R): constant,
/// uniform, exponential, normal, truncated normal, lognormal, gamma, and
/// Weibull. Each distribution can sample variates, evaluate its log-density
/// (for maximum-likelihood model selection), and report its moments.

#include <memory>
#include <string>

#include "util/rng.hpp"

namespace borg::stats {

/// Abstract interface for a univariate distribution over the reals.
class Distribution {
public:
    virtual ~Distribution() = default;

    /// Draws one variate using \p rng.
    virtual double sample(util::Rng& rng) const = 0;

    /// Natural log of the density at \p x (-inf where the density is zero).
    virtual double log_pdf(double x) const = 0;

    virtual double mean() const = 0;
    virtual double variance() const = 0;

    /// Short human-readable name, e.g. "gamma(k=3.1, theta=0.2)".
    virtual std::string describe() const = 0;

    /// Polymorphic copy (distributions are immutable values).
    virtual std::unique_ptr<Distribution> clone() const = 0;

    double stddev() const;

    /// Coefficient of variation: stddev / mean (0 when the mean is 0).
    double cv() const;
};

/// Degenerate point mass at a value; the analytical model's assumption.
class ConstantDistribution final : public Distribution {
public:
    explicit ConstantDistribution(double value);
    double sample(util::Rng&) const override { return value_; }
    double log_pdf(double x) const override;
    double mean() const override { return value_; }
    double variance() const override { return 0.0; }
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

private:
    double value_;
};

/// Uniform on [lo, hi].
class UniformDistribution final : public Distribution {
public:
    UniformDistribution(double lo, double hi);
    double sample(util::Rng& rng) const override;
    double log_pdf(double x) const override;
    double mean() const override { return 0.5 * (lo_ + hi_); }
    double variance() const override;
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

    double lo() const noexcept { return lo_; }
    double hi() const noexcept { return hi_; }

private:
    double lo_, hi_;
};

/// Exponential with rate lambda (mean 1/lambda).
class ExponentialDistribution final : public Distribution {
public:
    explicit ExponentialDistribution(double rate);
    double sample(util::Rng& rng) const override;
    double log_pdf(double x) const override;
    double mean() const override { return 1.0 / rate_; }
    double variance() const override { return 1.0 / (rate_ * rate_); }
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

    double rate() const noexcept { return rate_; }

private:
    double rate_;
};

/// Normal(mu, sigma).
class NormalDistribution final : public Distribution {
public:
    NormalDistribution(double mu, double sigma);
    double sample(util::Rng& rng) const override;
    double log_pdf(double x) const override;
    double mean() const override { return mu_; }
    double variance() const override { return sigma_ * sigma_; }
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

    double mu() const noexcept { return mu_; }
    double sigma() const noexcept { return sigma_; }

private:
    double mu_, sigma_;
};

/// Normal(mu, sigma) truncated to [lo, inf). Timing quantities are positive;
/// the paper's controlled delays are normal with cv = 0.1 which places the
/// mass safely above zero, but truncation makes the simulator robust for any
/// cv without producing negative holds. Sampling is by rejection (cheap for
/// the regimes used here); the log-density includes the renormalization term.
class TruncatedNormalDistribution final : public Distribution {
public:
    TruncatedNormalDistribution(double mu, double sigma, double lo = 0.0);
    double sample(util::Rng& rng) const override;
    double log_pdf(double x) const override;
    double mean() const override;
    double variance() const override;
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

private:
    double mu_, sigma_, lo_;
    double alpha_;         // (lo - mu) / sigma
    double z_;             // survival mass P[X >= lo] of the parent normal
    double lambda_;        // hazard phi(alpha)/Z used by the moment formulas
};

/// Lognormal: log X ~ Normal(mu, sigma).
class LogNormalDistribution final : public Distribution {
public:
    LogNormalDistribution(double mu, double sigma);
    double sample(util::Rng& rng) const override;
    double log_pdf(double x) const override;
    double mean() const override;
    double variance() const override;
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

    double mu() const noexcept { return mu_; }
    double sigma() const noexcept { return sigma_; }

private:
    double mu_, sigma_;
};

/// Gamma with shape k and scale theta (mean k*theta).
class GammaDistribution final : public Distribution {
public:
    GammaDistribution(double shape, double scale);
    double sample(util::Rng& rng) const override;
    double log_pdf(double x) const override;
    double mean() const override { return shape_ * scale_; }
    double variance() const override { return shape_ * scale_ * scale_; }
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

    double shape() const noexcept { return shape_; }
    double scale() const noexcept { return scale_; }

private:
    double shape_, scale_;
};

/// Weibull with shape k and scale lambda.
class WeibullDistribution final : public Distribution {
public:
    WeibullDistribution(double shape, double scale);
    double sample(util::Rng& rng) const override;
    double log_pdf(double x) const override;
    double mean() const override;
    double variance() const override;
    std::string describe() const override;
    std::unique_ptr<Distribution> clone() const override;

    double shape() const noexcept { return shape_; }
    double scale() const noexcept { return scale_; }

private:
    double shape_, scale_;
};

/// Convenience: the paper's controlled delay — a positive "normal-ish"
/// distribution specified by mean and coefficient of variation (cv = 0.1 in
/// the experiments). Returns a constant when cv == 0.
std::unique_ptr<Distribution> make_delay(double mean, double cv);

/// Standard normal pdf / cdf helpers shared by the distribution classes and
/// the fitting code.
double normal_pdf(double x);
double normal_cdf(double x);

} // namespace borg::stats

#endif
