#include "stats/distribution.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "util/table.hpp"

namespace borg::stats {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kLogSqrt2Pi = 0.9189385332046727; // log(sqrt(2*pi))
} // namespace

double normal_pdf(double x) {
    return std::exp(-0.5 * x * x) / std::sqrt(2.0 * std::numbers::pi);
}

double normal_cdf(double x) {
    return 0.5 * std::erfc(-x / std::numbers::sqrt2);
}

double Distribution::stddev() const { return std::sqrt(variance()); }

double Distribution::cv() const {
    const double m = mean();
    return m == 0.0 ? 0.0 : stddev() / m;
}

// ---------------------------------------------------------------- constant

ConstantDistribution::ConstantDistribution(double value) : value_(value) {}

double ConstantDistribution::log_pdf(double x) const {
    return x == value_ ? 0.0 : kNegInf;
}

std::string ConstantDistribution::describe() const {
    return "constant(" + util::format_fixed(value_, 6) + ")";
}

std::unique_ptr<Distribution> ConstantDistribution::clone() const {
    return std::make_unique<ConstantDistribution>(*this);
}

// ----------------------------------------------------------------- uniform

UniformDistribution::UniformDistribution(double lo, double hi)
    : lo_(lo), hi_(hi) {
    if (!(lo < hi)) throw std::invalid_argument("uniform: requires lo < hi");
}

double UniformDistribution::sample(util::Rng& rng) const {
    return rng.uniform(lo_, hi_);
}

double UniformDistribution::log_pdf(double x) const {
    if (x < lo_ || x > hi_) return kNegInf;
    return -std::log(hi_ - lo_);
}

double UniformDistribution::variance() const {
    const double w = hi_ - lo_;
    return w * w / 12.0;
}

std::string UniformDistribution::describe() const {
    return "uniform(" + util::format_fixed(lo_, 6) + ", " +
           util::format_fixed(hi_, 6) + ")";
}

std::unique_ptr<Distribution> UniformDistribution::clone() const {
    return std::make_unique<UniformDistribution>(*this);
}

// ------------------------------------------------------------- exponential

ExponentialDistribution::ExponentialDistribution(double rate) : rate_(rate) {
    if (!(rate > 0.0)) throw std::invalid_argument("exponential: rate <= 0");
}

double ExponentialDistribution::sample(util::Rng& rng) const {
    // Inverse CDF; 1 - uniform() is in (0, 1] so the log is finite.
    return -std::log(1.0 - rng.uniform()) / rate_;
}

double ExponentialDistribution::log_pdf(double x) const {
    if (x < 0.0) return kNegInf;
    return std::log(rate_) - rate_ * x;
}

std::string ExponentialDistribution::describe() const {
    return "exponential(rate=" + util::format_fixed(rate_, 6) + ")";
}

std::unique_ptr<Distribution> ExponentialDistribution::clone() const {
    return std::make_unique<ExponentialDistribution>(*this);
}

// ------------------------------------------------------------------ normal

NormalDistribution::NormalDistribution(double mu, double sigma)
    : mu_(mu), sigma_(sigma) {
    if (!(sigma > 0.0)) throw std::invalid_argument("normal: sigma <= 0");
}

double NormalDistribution::sample(util::Rng& rng) const {
    return rng.gaussian(mu_, sigma_);
}

double NormalDistribution::log_pdf(double x) const {
    const double z = (x - mu_) / sigma_;
    return -0.5 * z * z - std::log(sigma_) - kLogSqrt2Pi;
}

std::string NormalDistribution::describe() const {
    return "normal(mu=" + util::format_fixed(mu_, 6) +
           ", sigma=" + util::format_fixed(sigma_, 6) + ")";
}

std::unique_ptr<Distribution> NormalDistribution::clone() const {
    return std::make_unique<NormalDistribution>(*this);
}

// -------------------------------------------------------- truncated normal

TruncatedNormalDistribution::TruncatedNormalDistribution(double mu,
                                                         double sigma,
                                                         double lo)
    : mu_(mu), sigma_(sigma), lo_(lo) {
    if (!(sigma > 0.0))
        throw std::invalid_argument("truncated normal: sigma <= 0");
    alpha_ = (lo_ - mu_) / sigma_;
    z_ = 1.0 - normal_cdf(alpha_);
    if (z_ <= 0.0)
        throw std::invalid_argument("truncated normal: no mass above lo");
    lambda_ = normal_pdf(alpha_) / z_;
}

double TruncatedNormalDistribution::sample(util::Rng& rng) const {
    // Rejection against the parent normal. For the regimes used here the
    // acceptance probability z_ is close to 1 (cv <= ~0.3), so this is cheap.
    for (;;) {
        const double x = rng.gaussian(mu_, sigma_);
        if (x >= lo_) return x;
    }
}

double TruncatedNormalDistribution::log_pdf(double x) const {
    if (x < lo_) return kNegInf;
    const double z = (x - mu_) / sigma_;
    return -0.5 * z * z - std::log(sigma_) - kLogSqrt2Pi - std::log(z_);
}

double TruncatedNormalDistribution::mean() const {
    return mu_ + sigma_ * lambda_;
}

double TruncatedNormalDistribution::variance() const {
    const double delta = lambda_ * (lambda_ - alpha_);
    return sigma_ * sigma_ * (1.0 - delta);
}

std::string TruncatedNormalDistribution::describe() const {
    return "truncnormal(mu=" + util::format_fixed(mu_, 6) +
           ", sigma=" + util::format_fixed(sigma_, 6) +
           ", lo=" + util::format_fixed(lo_, 6) + ")";
}

std::unique_ptr<Distribution> TruncatedNormalDistribution::clone() const {
    return std::make_unique<TruncatedNormalDistribution>(*this);
}

// --------------------------------------------------------------- lognormal

LogNormalDistribution::LogNormalDistribution(double mu, double sigma)
    : mu_(mu), sigma_(sigma) {
    if (!(sigma > 0.0)) throw std::invalid_argument("lognormal: sigma <= 0");
}

double LogNormalDistribution::sample(util::Rng& rng) const {
    return std::exp(rng.gaussian(mu_, sigma_));
}

double LogNormalDistribution::log_pdf(double x) const {
    if (x <= 0.0) return kNegInf;
    const double z = (std::log(x) - mu_) / sigma_;
    return -0.5 * z * z - std::log(x * sigma_) - kLogSqrt2Pi;
}

double LogNormalDistribution::mean() const {
    return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double LogNormalDistribution::variance() const {
    const double s2 = sigma_ * sigma_;
    return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

std::string LogNormalDistribution::describe() const {
    return "lognormal(mu=" + util::format_fixed(mu_, 6) +
           ", sigma=" + util::format_fixed(sigma_, 6) + ")";
}

std::unique_ptr<Distribution> LogNormalDistribution::clone() const {
    return std::make_unique<LogNormalDistribution>(*this);
}

// ------------------------------------------------------------------- gamma

GammaDistribution::GammaDistribution(double shape, double scale)
    : shape_(shape), scale_(scale) {
    if (!(shape > 0.0) || !(scale > 0.0))
        throw std::invalid_argument("gamma: shape/scale <= 0");
}

double GammaDistribution::sample(util::Rng& rng) const {
    // Marsaglia & Tsang squeeze method; the shape < 1 case boosts to
    // shape + 1 and applies the standard power-of-uniform correction.
    double k = shape_;
    double boost = 1.0;
    if (k < 1.0) {
        boost = std::pow(rng.uniform(), 1.0 / k);
        k += 1.0;
    }
    const double d = k - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        double x, v;
        do {
            x = rng.gaussian();
            v = 1.0 + c * x;
        } while (v <= 0.0);
        v = v * v * v;
        const double u = rng.uniform();
        if (u < 1.0 - 0.0331 * x * x * x * x)
            return boost * d * v * scale_;
        if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
            return boost * d * v * scale_;
    }
}

double GammaDistribution::log_pdf(double x) const {
    if (x <= 0.0) return kNegInf;
    return (shape_ - 1.0) * std::log(x) - x / scale_ -
           std::lgamma(shape_) - shape_ * std::log(scale_);
}

std::string GammaDistribution::describe() const {
    return "gamma(k=" + util::format_fixed(shape_, 4) +
           ", theta=" + util::format_fixed(scale_, 6) + ")";
}

std::unique_ptr<Distribution> GammaDistribution::clone() const {
    return std::make_unique<GammaDistribution>(*this);
}

// ----------------------------------------------------------------- weibull

WeibullDistribution::WeibullDistribution(double shape, double scale)
    : shape_(shape), scale_(scale) {
    if (!(shape > 0.0) || !(scale > 0.0))
        throw std::invalid_argument("weibull: shape/scale <= 0");
}

double WeibullDistribution::sample(util::Rng& rng) const {
    const double u = 1.0 - rng.uniform(); // in (0, 1]
    return scale_ * std::pow(-std::log(u), 1.0 / shape_);
}

double WeibullDistribution::log_pdf(double x) const {
    if (x <= 0.0) return kNegInf;
    const double z = x / scale_;
    return std::log(shape_ / scale_) + (shape_ - 1.0) * std::log(z) -
           std::pow(z, shape_);
}

double WeibullDistribution::mean() const {
    return scale_ * std::exp(std::lgamma(1.0 + 1.0 / shape_));
}

double WeibullDistribution::variance() const {
    const double g1 = std::exp(std::lgamma(1.0 + 1.0 / shape_));
    const double g2 = std::exp(std::lgamma(1.0 + 2.0 / shape_));
    return scale_ * scale_ * (g2 - g1 * g1);
}

std::string WeibullDistribution::describe() const {
    return "weibull(k=" + util::format_fixed(shape_, 4) +
           ", lambda=" + util::format_fixed(scale_, 6) + ")";
}

std::unique_ptr<Distribution> WeibullDistribution::clone() const {
    return std::make_unique<WeibullDistribution>(*this);
}

// ------------------------------------------------------------------ helper

std::unique_ptr<Distribution> make_delay(double mean, double cv) {
    if (!(mean >= 0.0)) throw std::invalid_argument("delay mean < 0");
    if (cv <= 0.0 || mean == 0.0)
        return std::make_unique<ConstantDistribution>(mean);
    return std::make_unique<TruncatedNormalDistribution>(mean, cv * mean, 0.0);
}

} // namespace borg::stats
