#ifndef BORG_STATS_SUMMARY_HPP
#define BORG_STATS_SUMMARY_HPP

/// \file summary.hpp
/// Descriptive statistics over timing samples and replicate results.

#include <cstddef>
#include <span>
#include <vector>

namespace borg::stats {

/// Streaming mean/variance accumulator (Welford). Numerically stable for
/// the microsecond-scale timing samples collected by the executors.
class Accumulator {
public:
    void add(double x) noexcept;

    /// Absorbs another accumulator's samples using Chan et al.'s parallel
    /// mean/M2 combination. Exact up to floating-point rounding and — key
    /// for the replicate-parallel sweep engine — independent of how the
    /// samples were partitioned, so per-thread partials combine without
    /// ordering effects.
    void merge(const Accumulator& other) noexcept;

    std::size_t count() const noexcept { return n_; }
    double mean() const noexcept { return n_ ? mean_ : 0.0; }
    /// Unbiased sample variance; 0 with fewer than two samples.
    double variance() const noexcept;
    double stddev() const noexcept;
    double min() const noexcept { return min_; }
    double max() const noexcept { return max_; }
    double sum() const noexcept { return mean_ * static_cast<double>(n_); }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Batch summary of a sample.
struct Summary {
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    double median = 0.0;

    /// Combines this summary with \p other as if the two underlying
    /// samples were pooled. count/mean/stddev/min/max are exact (Chan
    /// merge on the recovered second moments). The pooled median is not
    /// recoverable from two summaries; it is set to the count-weighted
    /// mean of the inputs' medians, an approximation callers that need
    /// exact medians must avoid by merging raw samples instead.
    Summary& merge(const Summary& other) noexcept;
};

/// Pooled summary of two disjoint samples; see Summary::merge.
Summary merge(Summary a, const Summary& b) noexcept;

/// Computes a full summary (copies and partially sorts for the median).
Summary summarize(std::span<const double> xs);

/// Linear-interpolation quantile (type-7, matching R's default). q in [0,1].
double quantile(std::vector<double> xs, double q);

} // namespace borg::stats

#endif
