#include "bench/sweep_runner.hpp"

#include <chrono>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "util/thread_pool.hpp"

namespace borg::bench {

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point start) {
    return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

} // namespace

std::size_t SweepReport::failures() const noexcept {
    std::size_t n = 0;
    for (const CellOutcome& cell : cells)
        if (!cell.ok) ++n;
    return n;
}

void SweepReport::throw_if_failed() const {
    if (failures() == 0) return;
    std::string message = "sweep: " + std::to_string(failures()) + " of " +
                          std::to_string(cells.size()) + " cells failed:";
    for (std::size_t i = 0; i < cells.size(); ++i)
        if (!cells[i].ok)
            message += "\n  cell " + std::to_string(i) + ": " + cells[i].error;
    throw std::runtime_error(message);
}

SweepRunner::SweepRunner(SweepOptions options)
    : options_(std::move(options)),
      jobs_(options_.jobs == 0 ? util::ThreadPool::default_concurrency()
                               : options_.jobs) {}

SweepReport SweepRunner::run(std::size_t cells,
                             const std::function<void(std::size_t)>& fn,
                             const std::vector<std::size_t>& order) {
    if (!fn) throw std::invalid_argument("sweep: empty cell function");
    if (!order.empty()) {
        if (order.size() != cells)
            throw std::invalid_argument(
                "sweep: submission order must be a permutation of the cells");
        std::vector<bool> seen(cells, false);
        for (const std::size_t index : order) {
            if (index >= cells || seen[index])
                throw std::invalid_argument(
                    "sweep: submission order must be a permutation of the "
                    "cells");
            seen[index] = true;
        }
    }

    SweepReport report;
    report.cells.resize(cells);
    report.jobs = jobs_;
    if (cells == 0) return report;

    const auto start = SteadyClock::now();
    // Throttle progress lines to ~20 over the sweep so a 1000-cell grid
    // does not flood the stream.
    const std::size_t stride = cells < 20 ? 1 : cells / 20;

    // Guards the done/failed counts, the metrics registry, and the
    // progress stream. Cell results themselves need no lock: each cell
    // writes only to its own pre-sized slot.
    std::mutex progress_mutex;
    std::size_t done = 0;
    std::size_t failed = 0;

    if (options_.obs.metrics)
        options_.obs.metrics->counter("sweep.cells").inc(cells);

    const auto on_cell_finished = [&](const CellOutcome& outcome) {
        const std::lock_guard lock(progress_mutex);
        ++done;
        if (!outcome.ok) ++failed;
        const double elapsed = seconds_since(start);
        const double eta =
            elapsed / static_cast<double>(done) *
            static_cast<double>(cells - done);
        if (options_.obs.metrics) {
            obs::MetricsRegistry& m = *options_.obs.metrics;
            m.counter("sweep.cells_done").inc();
            if (!outcome.ok) m.counter("sweep.cells_failed").inc();
            m.histogram("sweep.cell_seconds").observe(outcome.seconds);
            m.gauge("sweep.elapsed_seconds").set(elapsed);
            m.gauge("sweep.eta_seconds").set(eta);
        }
        if (options_.progress && (done == cells || done % stride == 0)) {
            *options_.progress << "[" << options_.label << "] " << done << "/"
                               << cells << " cells";
            if (failed > 0) *options_.progress << " (" << failed << " failed)";
            *options_.progress << ", elapsed "
                               << static_cast<long>(elapsed * 10.0) / 10.0
                               << "s, eta "
                               << static_cast<long>(eta * 10.0) / 10.0 << "s"
                               << std::endl;
        }
    };

    const auto run_cell = [&](std::size_t index) {
        CellOutcome& outcome = report.cells[index];
        const auto cell_start = SteadyClock::now();
        try {
            fn(index);
        } catch (const std::exception& e) {
            outcome.ok = false;
            outcome.error = e.what();
        } catch (...) {
            outcome.ok = false;
            outcome.error = "unknown exception";
        }
        outcome.seconds = seconds_since(cell_start);
        on_cell_finished(outcome);
    };

    util::ThreadPool pool(jobs_);
    for (std::size_t i = 0; i < cells; ++i) {
        const std::size_t index = order.empty() ? i : order[i];
        pool.submit([&run_cell, index] { run_cell(index); });
    }
    pool.wait_idle();

    report.elapsed_seconds = seconds_since(start);
    return report;
}

std::size_t parse_jobs(const util::CliArgs& args) {
    if (!args.has("jobs")) return 0;
    const std::int64_t jobs = args.get_uint("jobs", 0);
    if (jobs == 0)
        throw std::invalid_argument("--jobs: must be a positive integer");
    return static_cast<std::size_t>(jobs);
}

} // namespace borg::bench
