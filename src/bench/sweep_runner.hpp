#ifndef BORG_BENCH_SWEEP_RUNNER_HPP
#define BORG_BENCH_SWEEP_RUNNER_HPP

/// \file sweep_runner.hpp
/// Replicate-parallel experiment sweeps with schedule-invariant results.
///
/// The paper's headline tables aggregate 50 replicates per (problem, T_F,
/// P) configuration; every replicate is an independent virtual-time DES
/// run, so the full grid is embarrassingly parallel across host threads.
/// The SweepRunner fans each cell of a flattened experiment grid out on a
/// work-stealing util::ThreadPool and guarantees that the *results* are
/// bit-identical regardless of thread count or scheduling order:
///
///  * each cell derives its seeds from the cell's grid coordinates via
///    util::derive_seed — never from "which thread ran it" or "how many
///    cells ran before it";
///  * each cell writes its output into a caller-owned slot addressed by
///    cell index — never appends to a shared container in completion
///    order;
///  * aggregation (stats::Accumulator / Summary merging) happens after the
///    sweep, serially, in index order.
///
/// Progress (per-cell timing, elapsed, ETA) is reported through an
/// obs::MetricsRegistry under the "sweep." prefix and, optionally, as
/// throttled lines on a progress stream. Drivers point that stream at
/// std::cerr so stdout (the CSV/table payload) stays byte-identical for
/// any --jobs value. See DESIGN.md §9.

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "parallel/run_context.hpp"
#include "util/cli.hpp"

namespace borg::bench {

struct SweepOptions {
    /// Host threads to run cells on; 0 means one per hardware thread.
    std::size_t jobs = 0;
    /// Observability sinks for the sweep itself. Only obs.metrics is
    /// consulted (instruments: sweep.cells counter, sweep.cells_done,
    /// sweep.cells_failed, sweep.cell_seconds histogram,
    /// sweep.elapsed_seconds and sweep.eta_seconds gauges); the registry
    /// is only touched under the runner's internal lock, so callers must
    /// not update it concurrently while a sweep is running. obs.trace and
    /// obs.recorder are per-run concerns — cells pass their own
    /// RunContext to the executors they drive.
    parallel::RunContext obs = {};
    /// Optional throttled progress lines ("[label] 12/40 cells ...").
    /// Point this at std::cerr, never at the results stream.
    std::ostream* progress = nullptr;
    std::string label = "sweep";
};

/// Per-cell completion record. A throwing cell is reported here and never
/// poisons its siblings — every other cell still runs.
struct CellOutcome {
    bool ok = true;
    std::string error;      ///< what() of the captured exception
    double seconds = 0.0;   ///< wall-clock time the cell took
};

struct SweepReport {
    std::vector<CellOutcome> cells; ///< indexed by cell, not finish order
    double elapsed_seconds = 0.0;
    std::size_t jobs = 1;

    std::size_t failures() const noexcept;
    /// Throws std::runtime_error naming every failed cell (index + error).
    void throw_if_failed() const;
};

class SweepRunner {
public:
    explicit SweepRunner(SweepOptions options = {});

    std::size_t jobs() const noexcept { return jobs_; }

    /// Runs fn(i) once for every i in [0, cells). \p fn must write its
    /// result only into caller-owned state addressed by i (pre-sized
    /// slots), and must derive any randomness from i — that is the whole
    /// schedule-invariance contract. \p order, when non-empty, must be a
    /// permutation of [0, cells) and fixes the submission order (exposed
    /// so tests can prove order-independence); results never depend on it.
    SweepReport run(std::size_t cells,
                    const std::function<void(std::size_t)>& fn,
                    const std::vector<std::size_t>& order = {});

private:
    SweepOptions options_;
    std::size_t jobs_;
};

/// Parses --jobs for the experiment drivers: absent means "one per
/// hardware thread" (returned as 0 for SweepOptions); an explicit value
/// must be a positive integer.
std::size_t parse_jobs(const util::CliArgs& args);

} // namespace borg::bench

#endif
