#ifndef BORG_PROBLEMS_REFERENCE_SET_HPP
#define BORG_PROBLEMS_REFERENCE_SET_HPP

/// \file reference_set.hpp
/// Generators for the known Pareto fronts ("reference sets") of the test
/// problems. The paper's hypervolume-based speedup analysis normalizes each
/// run's hypervolume against the reference set's hypervolume, so "1 is
/// ideal" (Section VI-A).

#include <cstddef>
#include <string>
#include <vector>

namespace borg::problems {

/// A reference set is a list of objective vectors on the true Pareto front.
using ReferenceSet = std::vector<std::vector<double>>;

/// Das-Dennis simplex-lattice weight vectors: all nonnegative M-vectors
/// summing to 1 with components that are multiples of 1/divisions.
/// C(divisions + M - 1, M - 1) points.
ReferenceSet simplex_lattice(std::size_t num_objectives,
                             std::size_t divisions);

/// DTLZ2 / DTLZ3 / DTLZ4 front: the simplex lattice radially projected onto
/// the unit sphere (sum f_i^2 = 1, f >= 0).
ReferenceSet dtlz2_reference_set(std::size_t num_objectives,
                                 std::size_t divisions);

/// DTLZ1 front: the simplex lattice scaled by 0.5 (sum f_i = 0.5).
ReferenceSet dtlz1_reference_set(std::size_t num_objectives,
                                 std::size_t divisions);

/// UF11 front: the DTLZ2 sphere with each objective multiplied by its scale
/// factor (the identity scaling in this reproduction, see uf.hpp).
ReferenceSet uf11_reference_set(std::size_t divisions,
                                const std::vector<double>& scales);

/// ZDT fronts sampled at \p points equally spaced f1 values.
ReferenceSet zdt1_reference_set(std::size_t points);
ReferenceSet zdt2_reference_set(std::size_t points);
/// ZDT3's front keeps only the nondominated part of the disconnected curve.
ReferenceSet zdt3_reference_set(std::size_t points);

/// CEC'09 two-objective fronts: UF1/UF2/UF3 share f2 = 1 - sqrt(f1);
/// UF4 has f2 = 1 - f1^2; UF7 is the line f2 = 1 - f1.
ReferenceSet uf_sqrt_reference_set(std::size_t points);
ReferenceSet uf4_reference_set(std::size_t points);
ReferenceSet uf7_reference_set(std::size_t points);

/// DTLZ7's disconnected front (2-objective): samples the curve at optimal
/// g = 1 and filters to the nondominated subset.
ReferenceSet dtlz7_reference_set(std::size_t points);

/// Reference set for a problem created by make_problem(name); \p density
/// controls lattice divisions / sample counts. Throws for problems with no
/// known front.
ReferenceSet reference_set_for(const std::string& name,
                               std::size_t density = 0);

} // namespace borg::problems

#endif
