#include "problems/uf.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace borg::problems {

namespace {
constexpr double kHalfPi = std::numbers::pi / 2.0;
constexpr double kPenaltyWeight = 10.0;
} // namespace

RotatedDtlz2::RotatedDtlz2(std::size_t num_objectives,
                           std::size_t num_variables,
                           std::uint64_t rotation_seed,
                           std::vector<double> scales)
    : num_objectives_(num_objectives),
      num_variables_(num_variables),
      scales_(std::move(scales)) {
    if (num_objectives < 2)
        throw std::invalid_argument("RotatedDtlz2: need >= 2 objectives");
    if (num_variables < num_objectives)
        throw std::invalid_argument("RotatedDtlz2: need n >= M variables");
    if (scales_.empty()) scales_.assign(num_objectives_, 1.0);
    if (scales_.size() != num_objectives_)
        throw std::invalid_argument("RotatedDtlz2: scales size != M");
    util::Rng rng(rotation_seed);
    rotation_ = util::Matrix::random_rotation(num_variables_, rng);
}

std::string RotatedDtlz2::name() const {
    return "UF11_R2-DTLZ2_" + std::to_string(num_objectives_);
}

void RotatedDtlz2::evaluate(std::span<const double> x,
                            std::span<double> f) const {
    assert(x.size() == num_variables_ && f.size() >= num_objectives_);
    const std::size_t n = num_variables_;
    const std::size_t m = num_objectives_;

    // y = c + R (x - c), rotation about the unit-box center.
    std::vector<double> centered(n), y(n);
    for (std::size_t i = 0; i < n; ++i) centered[i] = x[i] - 0.5;
    rotation_.multiply(centered, y);

    // Clamp into the DTLZ2 domain, accumulating the boundary violation.
    double violation = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        y[i] += 0.5;
        if (y[i] < 0.0) {
            violation += y[i] * y[i];
            y[i] = 0.0;
        } else if (y[i] > 1.0) {
            violation += (y[i] - 1.0) * (y[i] - 1.0);
            y[i] = 1.0;
        }
    }
    const double penalty = kPenaltyWeight * violation;

    double g = 0.0;
    for (std::size_t i = m - 1; i < n; ++i) {
        const double d = y[i] - 0.5;
        g += d * d;
    }
    for (std::size_t i = 0; i < m; ++i) {
        double value = 1.0 + g;
        for (std::size_t j = 0; j < m - 1 - i; ++j)
            value *= std::cos(y[j] * kHalfPi);
        if (i > 0) value *= std::sin(y[m - 1 - i] * kHalfPi);
        f[i] = scales_[i] * (value + penalty);
    }
}

std::vector<double> RotatedDtlz2::to_decision_space(
    std::span<const double> y) const {
    assert(y.size() == num_variables_);
    std::vector<double> centered(num_variables_), x(num_variables_);
    for (std::size_t i = 0; i < num_variables_; ++i)
        centered[i] = y[i] - 0.5;
    rotation_.multiply_transpose(centered, x);
    for (std::size_t i = 0; i < num_variables_; ++i) x[i] += 0.5;
    return x;
}

std::unique_ptr<Problem> make_uf11() {
    return std::make_unique<RotatedDtlz2>(5, 30, kUf11RotationSeed);
}

// ------------------------------------------------------------ UF1-4, UF7

namespace {

void require_uf_size(std::size_t n) {
    if (n < 3)
        throw std::invalid_argument("UF problems need >= 3 variables");
}

} // namespace

Uf1::Uf1(std::size_t num_variables) : n_(num_variables) {
    require_uf_size(n_);
}

void Uf1::evaluate(std::span<const double> x, std::span<double> f) const {
    assert(x.size() == n_ && f.size() >= 2);
    const auto n = static_cast<double>(n_);
    double sum1 = 0.0, sum2 = 0.0;
    std::size_t count1 = 0, count2 = 0;
    for (std::size_t j = 2; j <= n_; ++j) {
        const double y =
            x[j - 1] - std::sin(6.0 * std::numbers::pi * x[0] +
                                static_cast<double>(j) * std::numbers::pi / n);
        if (j % 2 == 1) {
            sum1 += y * y;
            ++count1;
        } else {
            sum2 += y * y;
            ++count2;
        }
    }
    f[0] = x[0] + 2.0 * sum1 / static_cast<double>(count1);
    f[1] = 1.0 - std::sqrt(x[0]) + 2.0 * sum2 / static_cast<double>(count2);
}

Uf2::Uf2(std::size_t num_variables) : n_(num_variables) {
    require_uf_size(n_);
}

void Uf2::evaluate(std::span<const double> x, std::span<double> f) const {
    assert(x.size() == n_ && f.size() >= 2);
    const auto n = static_cast<double>(n_);
    double sum1 = 0.0, sum2 = 0.0;
    std::size_t count1 = 0, count2 = 0;
    for (std::size_t j = 2; j <= n_; ++j) {
        const double jd = static_cast<double>(j);
        const double angle = 6.0 * std::numbers::pi * x[0] +
                             jd * std::numbers::pi / n;
        double y;
        if (j % 2 == 1) {
            y = x[j - 1] -
                (0.3 * x[0] * x[0] *
                     std::cos(24.0 * std::numbers::pi * x[0] +
                              4.0 * jd * std::numbers::pi / n) +
                 0.6 * x[0]) *
                    std::cos(angle);
            sum1 += y * y;
            ++count1;
        } else {
            y = x[j - 1] -
                (0.3 * x[0] * x[0] *
                     std::cos(24.0 * std::numbers::pi * x[0] +
                              4.0 * jd * std::numbers::pi / n) +
                 0.6 * x[0]) *
                    std::sin(angle);
            sum2 += y * y;
            ++count2;
        }
    }
    f[0] = x[0] + 2.0 * sum1 / static_cast<double>(count1);
    f[1] = 1.0 - std::sqrt(x[0]) + 2.0 * sum2 / static_cast<double>(count2);
}

Uf3::Uf3(std::size_t num_variables) : n_(num_variables) {
    require_uf_size(n_);
}

double Uf3::optimal_xj(double x1, std::size_t j) const {
    const auto n = static_cast<double>(n_);
    const double exponent =
        0.5 * (1.0 + 3.0 * (static_cast<double>(j) - 2.0) / (n - 2.0));
    return std::pow(x1, exponent);
}

void Uf3::evaluate(std::span<const double> x, std::span<double> f) const {
    assert(x.size() == n_ && f.size() >= 2);
    double sum1 = 0.0, sum2 = 0.0, prod1 = 1.0, prod2 = 1.0;
    std::size_t count1 = 0, count2 = 0;
    for (std::size_t j = 2; j <= n_; ++j) {
        const double y = x[j - 1] - optimal_xj(x[0], j);
        const double c = std::cos(20.0 * y * std::numbers::pi /
                                  std::sqrt(static_cast<double>(j)));
        if (j % 2 == 1) {
            sum1 += y * y;
            prod1 *= c;
            ++count1;
        } else {
            sum2 += y * y;
            prod2 *= c;
            ++count2;
        }
    }
    f[0] = x[0] + 2.0 / static_cast<double>(count1) *
                      (4.0 * sum1 - 2.0 * prod1 + 2.0);
    f[1] = 1.0 - std::sqrt(x[0]) +
           2.0 / static_cast<double>(count2) *
               (4.0 * sum2 - 2.0 * prod2 + 2.0);
}

Uf4::Uf4(std::size_t num_variables) : n_(num_variables) {
    require_uf_size(n_);
}

void Uf4::evaluate(std::span<const double> x, std::span<double> f) const {
    assert(x.size() == n_ && f.size() >= 2);
    const auto n = static_cast<double>(n_);
    const auto h = [](double t) {
        return std::abs(t) / (1.0 + std::exp(2.0 * std::abs(t)));
    };
    double sum1 = 0.0, sum2 = 0.0;
    std::size_t count1 = 0, count2 = 0;
    for (std::size_t j = 2; j <= n_; ++j) {
        const double y =
            x[j - 1] - std::sin(6.0 * std::numbers::pi * x[0] +
                                static_cast<double>(j) * std::numbers::pi / n);
        if (j % 2 == 1) {
            sum1 += h(y);
            ++count1;
        } else {
            sum2 += h(y);
            ++count2;
        }
    }
    f[0] = x[0] + 2.0 * sum1 / static_cast<double>(count1);
    f[1] = 1.0 - x[0] * x[0] + 2.0 * sum2 / static_cast<double>(count2);
}

Uf7::Uf7(std::size_t num_variables) : n_(num_variables) {
    require_uf_size(n_);
}

void Uf7::evaluate(std::span<const double> x, std::span<double> f) const {
    assert(x.size() == n_ && f.size() >= 2);
    const auto n = static_cast<double>(n_);
    double sum1 = 0.0, sum2 = 0.0;
    std::size_t count1 = 0, count2 = 0;
    for (std::size_t j = 2; j <= n_; ++j) {
        const double y =
            x[j - 1] - std::sin(6.0 * std::numbers::pi * x[0] +
                                static_cast<double>(j) * std::numbers::pi / n);
        if (j % 2 == 1) {
            sum1 += y * y;
            ++count1;
        } else {
            sum2 += y * y;
            ++count2;
        }
    }
    const double root = std::pow(x[0], 0.2);
    f[0] = root + 2.0 * sum1 / static_cast<double>(count1);
    f[1] = 1.0 - root + 2.0 * sum2 / static_cast<double>(count2);
}

} // namespace borg::problems
