#include "problems/problem.hpp"

#include <stdexcept>

#include "problems/dtlz.hpp"
#include "problems/engineering.hpp"
#include "problems/uf.hpp"
#include "problems/zdt.hpp"

namespace borg::problems {

bool Problem::within_bounds(std::span<const double> variables,
                            double tolerance) const {
    if (variables.size() != num_variables()) return false;
    for (std::size_t i = 0; i < variables.size(); ++i) {
        if (variables[i] < lower_bound(i) - tolerance ||
            variables[i] > upper_bound(i) + tolerance)
            return false;
    }
    return true;
}

std::unique_ptr<Problem> make_problem(const std::string& name) {
    auto starts_with = [&](const char* prefix) {
        return name.rfind(prefix, 0) == 0;
    };
    auto objectives_from_suffix = [&](std::size_t fallback) -> std::size_t {
        const auto underscore = name.rfind('_');
        if (underscore == std::string::npos) return fallback;
        return static_cast<std::size_t>(
            std::stoul(name.substr(underscore + 1)));
    };

    if (starts_with("dtlz1"))
        return std::make_unique<Dtlz1>(objectives_from_suffix(2));
    if (starts_with("dtlz2"))
        return std::make_unique<Dtlz2>(objectives_from_suffix(2));
    if (starts_with("dtlz3"))
        return std::make_unique<Dtlz3>(objectives_from_suffix(2));
    if (starts_with("dtlz4"))
        return std::make_unique<Dtlz4>(objectives_from_suffix(2));
    if (starts_with("dtlz5"))
        return std::make_unique<Dtlz5>(objectives_from_suffix(3));
    if (starts_with("dtlz6"))
        return std::make_unique<Dtlz6>(objectives_from_suffix(3));
    if (starts_with("dtlz7"))
        return std::make_unique<Dtlz7>(objectives_from_suffix(2));
    if (name == "uf1") return std::make_unique<Uf1>();
    if (name == "uf2") return std::make_unique<Uf2>();
    if (name == "uf3") return std::make_unique<Uf3>();
    if (name == "uf4") return std::make_unique<Uf4>();
    if (name == "uf7") return std::make_unique<Uf7>();
    if (name == "uf11") return make_uf11();
    if (name == "zdt1") return std::make_unique<Zdt1>();
    if (name == "zdt2") return std::make_unique<Zdt2>();
    if (name == "zdt3") return std::make_unique<Zdt3>();
    if (name == "srn") return std::make_unique<Srn>();
    if (name == "welded_beam") return std::make_unique<WeldedBeam>();
    throw std::invalid_argument("unknown problem '" + name + "'");
}

} // namespace borg::problems
