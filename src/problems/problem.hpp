#ifndef BORG_PROBLEMS_PROBLEM_HPP
#define BORG_PROBLEMS_PROBLEM_HPP

/// \file problem.hpp
/// The optimization problem interface.
///
/// All problems are box-constrained, real-valued, multiobjective
/// *minimization* problems (matching the DTLZ / CEC'09 conventions used in
/// the paper). Implementations must be thread-safe for concurrent evaluate()
/// calls: the real-thread master-slave executor evaluates offspring from
/// many worker threads at once, exactly as the MPI workers did on Ranger.

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace borg::problems {

/// Abstract multiobjective minimization problem over a box domain.
class Problem {
public:
    virtual ~Problem() = default;

    /// Short identifier, e.g. "DTLZ2_5".
    virtual std::string name() const = 0;

    virtual std::size_t num_variables() const = 0;
    virtual std::size_t num_objectives() const = 0;

    /// Lower bound of variable \p i.
    virtual double lower_bound(std::size_t i) const = 0;
    /// Upper bound of variable \p i.
    virtual double upper_bound(std::size_t i) const = 0;

    /// Number of inequality constraints (0 for the unconstrained test
    /// suites). Constraints are reported as violation magnitudes: 0 means
    /// satisfied, larger is worse.
    virtual std::size_t num_constraints() const { return 0; }

    /// Evaluates the objectives for \p variables (size num_variables());
    /// writes num_objectives() values into \p objectives. Must be
    /// const-thread-safe.
    virtual void evaluate(std::span<const double> variables,
                          std::span<double> objectives) const = 0;

    /// Constrained evaluation: additionally writes num_constraints()
    /// violation magnitudes into \p violations. The default forwards to
    /// evaluate() (no constraints). Override together with
    /// num_constraints() for constrained problems.
    virtual void evaluate(std::span<const double> variables,
                          std::span<double> objectives,
                          std::span<double> violations) const {
        (void)violations;
        evaluate(variables, objectives);
    }

    /// True if every variable lies within its bounds (with tolerance).
    bool within_bounds(std::span<const double> variables,
                       double tolerance = 1e-12) const;
};

/// Creates a problem by name. Recognized names (case-sensitive):
///   "dtlz1".."dtlz7" — suffix "_M" selects M objectives, e.g. "dtlz2_5"
///       (defaults: M = 2, except DTLZ5/6 default to 3);
///   "uf1", "uf2", "uf3", "uf4", "uf7" — two-objective CEC'09 problems;
///   "uf11" — the 5-objective rotated DTLZ2 variant used in the paper;
///   "zdt1", "zdt2", "zdt3";
///   "srn", "welded_beam" — constrained engineering problems.
/// Throws std::invalid_argument for unknown names.
std::unique_ptr<Problem> make_problem(const std::string& name);

} // namespace borg::problems

#endif
