#ifndef BORG_PROBLEMS_UF_HPP
#define BORG_PROBLEMS_UF_HPP

/// \file uf.hpp
/// The paper's "hard" validation problem: CEC 2009 UF11, i.e. R2-DTLZ2 — a
/// 5-objective DTLZ2 whose decision variables are rotated (and scaled) to
/// introduce dependencies between all variables, defeating coordinate-wise
/// search.
///
/// SUBSTITUTION (documented in DESIGN.md): the official CEC'09 rotation
/// matrix is distributed as a data file with the competition toolkit, not
/// printed in any paper, and is unavailable offline. We therefore use a
/// deterministic Haar-random orthogonal rotation generated from a fixed seed
/// (see util::Matrix::random_rotation). Any fixed orthogonal rotation
/// produces the same qualitative problem class — a non-separable, scaled
/// DTLZ2 — which is exactly the property the scalability study depends on.
///
/// Construction of RotatedDtlz2 with n variables, M objectives:
///   y = c + R (x - c),  c = (0.5, ..., 0.5)   (rotation about box center)
/// Components of y falling outside [0, 1] are clamped for the DTLZ2
/// evaluation and their squared violation is added to every objective as a
/// penalty. Decision bounds are extended to [-0.5, 1.5] so the entire
/// Pareto set (||y* - c|| <= 1 over position variables) remains
/// representable; the Pareto front is exactly the DTLZ2 unit sphere scaled
/// by the per-objective scale factors.

#include <memory>
#include <vector>

#include "problems/problem.hpp"
#include "util/matrix.hpp"

namespace borg::problems {

class RotatedDtlz2 final : public Problem {
public:
    /// \p rotation_seed fixes the orthogonal matrix; \p scales (size M,
    /// defaults to all ones) multiply the objectives ("rotated and scaled").
    RotatedDtlz2(std::size_t num_objectives, std::size_t num_variables,
                 std::uint64_t rotation_seed,
                 std::vector<double> scales = {});

    std::string name() const override;
    std::size_t num_variables() const override { return num_variables_; }
    std::size_t num_objectives() const override { return num_objectives_; }
    double lower_bound(std::size_t) const override { return -0.5; }
    double upper_bound(std::size_t) const override { return 1.5; }

    void evaluate(std::span<const double> variables,
                  std::span<double> objectives) const override;

    const util::Matrix& rotation() const noexcept { return rotation_; }
    const std::vector<double>& scales() const noexcept { return scales_; }

    /// Maps a point y in DTLZ2 space back to decision space:
    /// x = c + R^T (y - c). Used by tests to verify the Pareto set is
    /// representable within the bounds.
    std::vector<double> to_decision_space(std::span<const double> y) const;

private:
    std::size_t num_objectives_;
    std::size_t num_variables_;
    util::Matrix rotation_;
    std::vector<double> scales_;
};

/// UF11 as used in the paper: 5 objectives, 30 decision variables, fixed
/// rotation seed, unit objective scales.
std::unique_ptr<Problem> make_uf11();

/// The two-objective unconstrained CEC 2009 problems UF1-UF4 and UF7
/// (Zhang et al., CES-487). These are the siblings of the paper's UF11 in
/// the same competition suite: each couples every decision variable to the
/// position variable x1 through sinusoidal "shape functions", so — like
/// UF11 — they defeat coordinate-wise search. UF5/UF6 (discrete fronts)
/// are omitted.
///
/// Shared conventions: n decision variables (default 30); J1/J2 partition
/// indices {2..n} into odd/even (1-based); the Pareto front is attained at
/// y_j = 0 for every coupled variable.
class Uf1 final : public Problem {
public:
    explicit Uf1(std::size_t num_variables = 30);
    std::string name() const override { return "UF1"; }
    std::size_t num_variables() const override { return n_; }
    std::size_t num_objectives() const override { return 2; }
    double lower_bound(std::size_t i) const override {
        return i == 0 ? 0.0 : -1.0;
    }
    double upper_bound(std::size_t) const override { return 1.0; }
    void evaluate(std::span<const double> variables,
                  std::span<double> objectives) const override;

private:
    std::size_t n_;
};

class Uf2 final : public Problem {
public:
    explicit Uf2(std::size_t num_variables = 30);
    std::string name() const override { return "UF2"; }
    std::size_t num_variables() const override { return n_; }
    std::size_t num_objectives() const override { return 2; }
    double lower_bound(std::size_t i) const override {
        return i == 0 ? 0.0 : -1.0;
    }
    double upper_bound(std::size_t) const override { return 1.0; }
    void evaluate(std::span<const double> variables,
                  std::span<double> objectives) const override;

private:
    std::size_t n_;
};

class Uf3 final : public Problem {
public:
    explicit Uf3(std::size_t num_variables = 30);
    std::string name() const override { return "UF3"; }
    std::size_t num_variables() const override { return n_; }
    std::size_t num_objectives() const override { return 2; }
    double lower_bound(std::size_t) const override { return 0.0; }
    double upper_bound(std::size_t) const override { return 1.0; }
    void evaluate(std::span<const double> variables,
                  std::span<double> objectives) const override;

    /// The coupled-variable target: x_j on the front follows a power curve
    /// of x1. Exposed for tests and reference-solution construction.
    double optimal_xj(double x1, std::size_t j) const;

private:
    std::size_t n_;
};

class Uf4 final : public Problem {
public:
    explicit Uf4(std::size_t num_variables = 30);
    std::string name() const override { return "UF4"; }
    std::size_t num_variables() const override { return n_; }
    std::size_t num_objectives() const override { return 2; }
    double lower_bound(std::size_t i) const override {
        return i == 0 ? 0.0 : -2.0;
    }
    double upper_bound(std::size_t i) const override {
        return i == 0 ? 1.0 : 2.0;
    }
    void evaluate(std::span<const double> variables,
                  std::span<double> objectives) const override;

private:
    std::size_t n_;
};

class Uf7 final : public Problem {
public:
    explicit Uf7(std::size_t num_variables = 30);
    std::string name() const override { return "UF7"; }
    std::size_t num_variables() const override { return n_; }
    std::size_t num_objectives() const override { return 2; }
    double lower_bound(std::size_t i) const override {
        return i == 0 ? 0.0 : -1.0;
    }
    double upper_bound(std::size_t) const override { return 1.0; }
    void evaluate(std::span<const double> variables,
                  std::span<double> objectives) const override;

private:
    std::size_t n_;
};

/// The fixed rotation seed used by make_uf11 (exposed so reference-set code
/// and tests construct the identical instance).
inline constexpr std::uint64_t kUf11RotationSeed = 0xCEC2009u;

} // namespace borg::problems

#endif
