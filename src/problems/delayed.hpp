#ifndef BORG_PROBLEMS_DELAYED_HPP
#define BORG_PROBLEMS_DELAYED_HPP

/// \file delayed.hpp
/// Controlled-delay problem wrapper.
///
/// The paper's experiments wrap DTLZ2 and UF11 (whose native evaluation time
/// is < 1 microsecond) with controlled delays of 0.001 / 0.01 / 0.1 seconds
/// (coefficient of variation 0.1) so that T_F can be swept relative to T_C
/// and T_A. This wrapper serves two roles:
///
///  * In the *real-thread* executor it physically blocks the calling worker
///    thread for the sampled duration (wall-clock sleep), reproducing an
///    expensive black-box evaluation.
///  * In the *virtual-time* executor the sleep is skipped; the executor
///    calls sample_delay() itself and advances the simulated clock instead.
///
/// Sampling is thread-safe: each evaluating thread gets its own RNG stream
/// derived deterministically from the wrapper seed and a per-thread index.

#include <atomic>
#include <memory>

#include "problems/problem.hpp"
#include "stats/distribution.hpp"

namespace borg::problems {

class DelayedProblem final : public Problem {
public:
    /// Wraps \p inner. \p delay describes T_F; \p seed fixes the sampling
    /// streams. When \p physically_sleep is false, evaluate() computes the
    /// objectives but does not block (virtual-time mode).
    DelayedProblem(std::shared_ptr<const Problem> inner,
                   std::unique_ptr<stats::Distribution> delay,
                   std::uint64_t seed, bool physically_sleep = true);

    std::string name() const override;
    std::size_t num_variables() const override;
    std::size_t num_objectives() const override;
    double lower_bound(std::size_t i) const override;
    double upper_bound(std::size_t i) const override;

    void evaluate(std::span<const double> variables,
                  std::span<double> objectives) const override;

    /// Draws one T_F value from the delay distribution (thread-safe).
    double sample_delay() const;

    const stats::Distribution& delay_distribution() const { return *delay_; }
    const Problem& inner() const { return *inner_; }

private:
    util::Rng& thread_rng() const;

    std::shared_ptr<const Problem> inner_;
    std::unique_ptr<stats::Distribution> delay_;
    std::uint64_t seed_;
    bool physically_sleep_;
    mutable std::atomic<std::uint64_t> next_stream_{0};
};

/// Busy-wait / sleep hybrid: sleeps for the bulk of \p seconds and spins for
/// the tail so short controlled delays (1 ms) are honored with reasonable
/// accuracy despite OS timer granularity.
void precise_sleep(double seconds);

} // namespace borg::problems

#endif
