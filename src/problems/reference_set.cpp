#include "problems/reference_set.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>

namespace borg::problems {

namespace {

void lattice_recurse(std::size_t remaining_axes, std::size_t remaining_units,
                     std::size_t divisions, std::vector<double>& current,
                     ReferenceSet& out) {
    if (remaining_axes == 1) {
        current.push_back(static_cast<double>(remaining_units) /
                          static_cast<double>(divisions));
        out.push_back(current);
        current.pop_back();
        return;
    }
    for (std::size_t units = 0; units <= remaining_units; ++units) {
        current.push_back(static_cast<double>(units) /
                          static_cast<double>(divisions));
        lattice_recurse(remaining_axes - 1, remaining_units - units, divisions,
                        current, out);
        current.pop_back();
    }
}

} // namespace

ReferenceSet simplex_lattice(std::size_t num_objectives,
                             std::size_t divisions) {
    if (num_objectives < 2 || divisions < 1)
        throw std::invalid_argument("simplex_lattice: M >= 2, divisions >= 1");
    ReferenceSet out;
    std::vector<double> current;
    lattice_recurse(num_objectives, divisions, divisions, current, out);
    return out;
}

ReferenceSet dtlz2_reference_set(std::size_t num_objectives,
                                 std::size_t divisions) {
    ReferenceSet lattice = simplex_lattice(num_objectives, divisions);
    for (auto& point : lattice) {
        double norm = 0.0;
        for (const double f : point) norm += f * f;
        norm = std::sqrt(norm);
        if (norm == 0.0) continue; // cannot happen: weights sum to 1
        for (double& f : point) f /= norm;
    }
    return lattice;
}

ReferenceSet dtlz1_reference_set(std::size_t num_objectives,
                                 std::size_t divisions) {
    ReferenceSet lattice = simplex_lattice(num_objectives, divisions);
    for (auto& point : lattice)
        for (double& f : point) f *= 0.5;
    return lattice;
}

ReferenceSet uf11_reference_set(std::size_t divisions,
                                const std::vector<double>& scales) {
    ReferenceSet sphere = dtlz2_reference_set(scales.size(), divisions);
    for (auto& point : sphere)
        for (std::size_t i = 0; i < point.size(); ++i) point[i] *= scales[i];
    return sphere;
}

ReferenceSet zdt1_reference_set(std::size_t points) {
    ReferenceSet out;
    out.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        const double f1 =
            static_cast<double>(i) / static_cast<double>(points - 1);
        out.push_back({f1, 1.0 - std::sqrt(f1)});
    }
    return out;
}

ReferenceSet zdt2_reference_set(std::size_t points) {
    ReferenceSet out;
    out.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        const double f1 =
            static_cast<double>(i) / static_cast<double>(points - 1);
        out.push_back({f1, 1.0 - f1 * f1});
    }
    return out;
}

ReferenceSet zdt3_reference_set(std::size_t points) {
    // Sample the full curve, then filter to the nondominated subset.
    ReferenceSet curve;
    curve.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        const double f1 =
            static_cast<double>(i) / static_cast<double>(points - 1);
        curve.push_back({f1, 1.0 - std::sqrt(f1) -
                                 f1 * std::sin(10.0 * std::numbers::pi * f1)});
    }
    ReferenceSet front;
    for (const auto& candidate : curve) {
        bool dominated = false;
        for (const auto& other : curve) {
            if (other[0] <= candidate[0] && other[1] <= candidate[1] &&
                (other[0] < candidate[0] || other[1] < candidate[1])) {
                dominated = true;
                break;
            }
        }
        if (!dominated) front.push_back(candidate);
    }
    return front;
}

ReferenceSet uf_sqrt_reference_set(std::size_t points) {
    return zdt1_reference_set(points); // identical closed form
}

ReferenceSet uf4_reference_set(std::size_t points) {
    return zdt2_reference_set(points); // identical closed form
}

ReferenceSet uf7_reference_set(std::size_t points) {
    ReferenceSet out;
    out.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        const double f1 =
            static_cast<double>(i) / static_cast<double>(points - 1);
        out.push_back({f1, 1.0 - f1});
    }
    return out;
}

ReferenceSet dtlz7_reference_set(std::size_t points) {
    // At the optimum g = 1: f2 = (1 + g) (2 - f1/(1+g) (1 + sin(3 pi f1))).
    ReferenceSet curve;
    curve.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        const double f1 =
            static_cast<double>(i) / static_cast<double>(points - 1);
        const double h =
            2.0 - f1 / 2.0 * (1.0 + std::sin(3.0 * std::numbers::pi * f1));
        curve.push_back({f1, 2.0 * h});
    }
    ReferenceSet front;
    for (const auto& candidate : curve) {
        bool dominated = false;
        for (const auto& other : curve) {
            if (other[0] <= candidate[0] && other[1] <= candidate[1] &&
                (other[0] < candidate[0] || other[1] < candidate[1])) {
                dominated = true;
                break;
            }
        }
        if (!dominated) front.push_back(candidate);
    }
    return front;
}

ReferenceSet reference_set_for(const std::string& name, std::size_t density) {
    auto starts_with = [&](const char* prefix) {
        return name.rfind(prefix, 0) == 0;
    };
    auto objectives_from_suffix = [&](std::size_t fallback) -> std::size_t {
        const auto underscore = name.rfind('_');
        if (underscore == std::string::npos) return fallback;
        return static_cast<std::size_t>(std::stoul(name.substr(underscore + 1)));
    };

    if (starts_with("dtlz1")) {
        const std::size_t m = objectives_from_suffix(2);
        return dtlz1_reference_set(m, density ? density : (m <= 3 ? 50 : 8));
    }
    if (starts_with("dtlz7")) {
        if (objectives_from_suffix(2) != 2)
            throw std::invalid_argument(
                "dtlz7 reference set: only the 2-objective front is "
                "generated");
        return dtlz7_reference_set(density ? density : 2000);
    }
    if (starts_with("dtlz")) {
        // DTLZ2/3/4 share the unit sphere; DTLZ5/6's 2-objective front
        // also coincides with it (the theta squeeze only affects the
        // middle position variables).
        const std::size_t m = objectives_from_suffix(2);
        return dtlz2_reference_set(m, density ? density : (m <= 3 ? 50 : 8));
    }
    if (starts_with("uf11"))
        return uf11_reference_set(density ? density : 8,
                                  std::vector<double>(5, 1.0));
    if (name == "uf1" || name == "uf2" || name == "uf3")
        return uf_sqrt_reference_set(density ? density : 500);
    if (name == "uf4") return uf4_reference_set(density ? density : 500);
    if (name == "uf7") return uf7_reference_set(density ? density : 500);
    if (name == "zdt1") return zdt1_reference_set(density ? density : 500);
    if (name == "zdt2") return zdt2_reference_set(density ? density : 500);
    if (name == "zdt3") return zdt3_reference_set(density ? density : 2000);
    throw std::invalid_argument("no known reference set for '" + name + "'");
}

} // namespace borg::problems
