#ifndef BORG_PROBLEMS_ZDT_HPP
#define BORG_PROBLEMS_ZDT_HPP

/// \file zdt.hpp
/// The two-objective ZDT suite (Zitzler, Deb, Thiele 2000). Not part of the
/// paper's experiments; used throughout the test suite because the fronts
/// have simple closed forms and two-objective hypervolume is cheap and easy
/// to verify by hand.

#include "problems/problem.hpp"

namespace borg::problems {

/// Shared shape: n variables in [0, 1], f1 = x0, f2 = g * h(f1, g).
class Zdt : public Problem {
public:
    explicit Zdt(std::size_t num_variables);

    std::size_t num_variables() const override { return num_variables_; }
    std::size_t num_objectives() const override { return 2; }
    double lower_bound(std::size_t) const override { return 0.0; }
    double upper_bound(std::size_t) const override { return 1.0; }

protected:
    double g(std::span<const double> x) const;
    std::size_t num_variables_;
};

/// ZDT1: convex front f2 = 1 - sqrt(f1).
class Zdt1 final : public Zdt {
public:
    explicit Zdt1(std::size_t num_variables = 30);
    std::string name() const override { return "ZDT1"; }
    void evaluate(std::span<const double> variables,
                  std::span<double> objectives) const override;
};

/// ZDT2: concave front f2 = 1 - f1^2.
class Zdt2 final : public Zdt {
public:
    explicit Zdt2(std::size_t num_variables = 30);
    std::string name() const override { return "ZDT2"; }
    void evaluate(std::span<const double> variables,
                  std::span<double> objectives) const override;
};

/// ZDT3: disconnected front f2 = 1 - sqrt(f1) - f1 sin(10 pi f1).
class Zdt3 final : public Zdt {
public:
    explicit Zdt3(std::size_t num_variables = 30);
    std::string name() const override { return "ZDT3"; }
    void evaluate(std::span<const double> variables,
                  std::span<double> objectives) const override;
};

} // namespace borg::problems

#endif
