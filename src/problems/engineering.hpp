#ifndef BORG_PROBLEMS_ENGINEERING_HPP
#define BORG_PROBLEMS_ENGINEERING_HPP

/// \file engineering.hpp
/// Constrained engineering design problems.
///
/// The Borg MOEA's flagship applications are constrained, real-world
/// design problems — the paper cites general-aviation aircraft design
/// under 9 economic/performance constraints as the case where Borg found
/// feasible designs while other MOEAs struggled. These two classic
/// constrained problems exercise the same machinery (constraint-domination
/// selection, feasibility-seeking archive) at test scale.

#include "problems/problem.hpp"

namespace borg::problems {

/// SRN (Srinivas & Deb 1994): 2 variables in [-20, 20], 2 objectives,
/// 2 constraints. The constrained Pareto set is x1 in [-2.5, 2.5] along
/// the g2 boundary region — a standard correctness check for constrained
/// MOEAs.
///   f1 = (x1 - 2)^2 + (x2 - 1)^2 + 2
///   f2 = 9 x1 - (x2 - 1)^2
///   g1: x1^2 + x2^2 <= 225
///   g2: x1 - 3 x2 + 10 <= 0
class Srn final : public Problem {
public:
    std::string name() const override { return "SRN"; }
    std::size_t num_variables() const override { return 2; }
    std::size_t num_objectives() const override { return 2; }
    std::size_t num_constraints() const override { return 2; }
    double lower_bound(std::size_t) const override { return -20.0; }
    double upper_bound(std::size_t) const override { return 20.0; }

    void evaluate(std::span<const double> variables,
                  std::span<double> objectives) const override;
    void evaluate(std::span<const double> variables,
                  std::span<double> objectives,
                  std::span<double> violations) const override;
};

/// Welded beam design (Deb's bi-objective formulation): minimize
/// fabrication cost and end deflection subject to shear stress, bending
/// stress, geometry, and buckling constraints.
/// Variables: weld thickness h, weld length l, beam height t, beam
/// thickness b. Violations are normalized by each constraint's limit so
/// the total violation is scale-free.
class WeldedBeam final : public Problem {
public:
    std::string name() const override { return "welded-beam"; }
    std::size_t num_variables() const override { return 4; }
    std::size_t num_objectives() const override { return 2; }
    std::size_t num_constraints() const override { return 4; }
    double lower_bound(std::size_t i) const override;
    double upper_bound(std::size_t i) const override;

    void evaluate(std::span<const double> variables,
                  std::span<double> objectives) const override;
    void evaluate(std::span<const double> variables,
                  std::span<double> objectives,
                  std::span<double> violations) const override;
};

} // namespace borg::problems

#endif
