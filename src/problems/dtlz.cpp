#include "problems/dtlz.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>

namespace borg::problems {

namespace {
constexpr double kHalfPi = std::numbers::pi / 2.0;

/// DTLZ1/DTLZ3's multimodal distance function over the last k variables.
double g_multimodal(std::span<const double> xs, std::size_t start) {
    double g = 0.0;
    for (std::size_t i = start; i < xs.size(); ++i) {
        const double d = xs[i] - 0.5;
        g += d * d - std::cos(20.0 * std::numbers::pi * d);
    }
    const auto k = static_cast<double>(xs.size() - start);
    return 100.0 * (k + g);
}

/// DTLZ2/DTLZ4's unimodal distance function.
double g_sphere(std::span<const double> xs, std::size_t start) {
    double g = 0.0;
    for (std::size_t i = start; i < xs.size(); ++i) {
        const double d = xs[i] - 0.5;
        g += d * d;
    }
    return g;
}

} // namespace

Dtlz::Dtlz(std::size_t num_objectives, std::size_t k)
    : num_objectives_(num_objectives),
      k_(k),
      num_variables_(num_objectives - 1 + k) {
    if (num_objectives < 2)
        throw std::invalid_argument("DTLZ: need at least 2 objectives");
    if (k < 1) throw std::invalid_argument("DTLZ: need k >= 1");
}

// ------------------------------------------------------------------- DTLZ1

Dtlz1::Dtlz1(std::size_t num_objectives, std::size_t k)
    : Dtlz(num_objectives, k) {}

std::string Dtlz1::name() const {
    return "DTLZ1_" + std::to_string(num_objectives_);
}

void Dtlz1::evaluate(std::span<const double> x,
                     std::span<double> f) const {
    assert(x.size() == num_variables_ && f.size() >= num_objectives_);
    const std::size_t m = num_objectives_;
    const double g = g_multimodal(x, m - 1);
    for (std::size_t i = 0; i < m; ++i) {
        double value = 0.5 * (1.0 + g);
        for (std::size_t j = 0; j < m - 1 - i; ++j) value *= x[j];
        if (i > 0) value *= 1.0 - x[m - 1 - i];
        f[i] = value;
    }
}

// ------------------------------------------------------------------- DTLZ2

Dtlz2::Dtlz2(std::size_t num_objectives, std::size_t k)
    : Dtlz(num_objectives, k) {}

std::string Dtlz2::name() const {
    return "DTLZ2_" + std::to_string(num_objectives_);
}

void Dtlz2::evaluate(std::span<const double> x,
                     std::span<double> f) const {
    assert(x.size() == num_variables_ && f.size() >= num_objectives_);
    const std::size_t m = num_objectives_;
    const double g = g_sphere(x, m - 1);
    for (std::size_t i = 0; i < m; ++i) {
        double value = 1.0 + g;
        for (std::size_t j = 0; j < m - 1 - i; ++j)
            value *= std::cos(x[j] * kHalfPi);
        if (i > 0) value *= std::sin(x[m - 1 - i] * kHalfPi);
        f[i] = value;
    }
}

// ------------------------------------------------------------------- DTLZ3

Dtlz3::Dtlz3(std::size_t num_objectives, std::size_t k)
    : Dtlz(num_objectives, k) {}

std::string Dtlz3::name() const {
    return "DTLZ3_" + std::to_string(num_objectives_);
}

void Dtlz3::evaluate(std::span<const double> x,
                     std::span<double> f) const {
    assert(x.size() == num_variables_ && f.size() >= num_objectives_);
    const std::size_t m = num_objectives_;
    const double g = g_multimodal(x, m - 1);
    for (std::size_t i = 0; i < m; ++i) {
        double value = 1.0 + g;
        for (std::size_t j = 0; j < m - 1 - i; ++j)
            value *= std::cos(x[j] * kHalfPi);
        if (i > 0) value *= std::sin(x[m - 1 - i] * kHalfPi);
        f[i] = value;
    }
}

// ------------------------------------------------------------------- DTLZ4

Dtlz4::Dtlz4(std::size_t num_objectives, std::size_t k, double alpha)
    : Dtlz(num_objectives, k), alpha_(alpha) {
    if (alpha <= 0.0) throw std::invalid_argument("DTLZ4: alpha <= 0");
}

std::string Dtlz4::name() const {
    return "DTLZ4_" + std::to_string(num_objectives_);
}

void Dtlz4::evaluate(std::span<const double> x,
                     std::span<double> f) const {
    assert(x.size() == num_variables_ && f.size() >= num_objectives_);
    const std::size_t m = num_objectives_;
    const double g = g_sphere(x, m - 1);
    for (std::size_t i = 0; i < m; ++i) {
        double value = 1.0 + g;
        for (std::size_t j = 0; j < m - 1 - i; ++j)
            value *= std::cos(std::pow(x[j], alpha_) * kHalfPi);
        if (i > 0) value *= std::sin(std::pow(x[m - 1 - i], alpha_) * kHalfPi);
        f[i] = value;
    }
}

// ------------------------------------------------------------------- DTLZ5

Dtlz5::Dtlz5(std::size_t num_objectives, std::size_t k)
    : Dtlz(num_objectives, k) {}

std::string Dtlz5::name() const {
    return "DTLZ5_" + std::to_string(num_objectives_);
}

namespace {

/// Shared DTLZ5/DTLZ6 evaluation given a precomputed g value: position
/// variables beyond the first are squeezed by theta_i =
/// pi/(4(1+g)) (1 + 2 g x_i).
void evaluate_theta(std::span<const double> x, std::span<double> f,
                    std::size_t m, double g) {
    std::vector<double> theta(m - 1);
    theta[0] = x[0] * kHalfPi;
    const double squeeze = std::numbers::pi / (4.0 * (1.0 + g));
    for (std::size_t i = 1; i < m - 1; ++i)
        theta[i] = squeeze * (1.0 + 2.0 * g * x[i]);
    for (std::size_t i = 0; i < m; ++i) {
        double value = 1.0 + g;
        for (std::size_t j = 0; j < m - 1 - i; ++j)
            value *= std::cos(theta[j]);
        if (i > 0) value *= std::sin(theta[m - 1 - i]);
        f[i] = value;
    }
}

} // namespace

void Dtlz5::evaluate(std::span<const double> x,
                     std::span<double> f) const {
    assert(x.size() == num_variables_ && f.size() >= num_objectives_);
    evaluate_theta(x, f, num_objectives_, g_sphere(x, num_objectives_ - 1));
}

// ------------------------------------------------------------------- DTLZ6

Dtlz6::Dtlz6(std::size_t num_objectives, std::size_t k)
    : Dtlz(num_objectives, k) {}

std::string Dtlz6::name() const {
    return "DTLZ6_" + std::to_string(num_objectives_);
}

void Dtlz6::evaluate(std::span<const double> x,
                     std::span<double> f) const {
    assert(x.size() == num_variables_ && f.size() >= num_objectives_);
    double g = 0.0;
    for (std::size_t i = num_objectives_ - 1; i < x.size(); ++i)
        g += std::pow(x[i], 0.1);
    evaluate_theta(x, f, num_objectives_, g);
}

// ------------------------------------------------------------------- DTLZ7

Dtlz7::Dtlz7(std::size_t num_objectives, std::size_t k)
    : Dtlz(num_objectives, k) {}

std::string Dtlz7::name() const {
    return "DTLZ7_" + std::to_string(num_objectives_);
}

void Dtlz7::evaluate(std::span<const double> x,
                     std::span<double> f) const {
    assert(x.size() == num_variables_ && f.size() >= num_objectives_);
    const std::size_t m = num_objectives_;
    double g = 0.0;
    for (std::size_t i = m - 1; i < x.size(); ++i) g += x[i];
    g = 1.0 + 9.0 * g / static_cast<double>(k_);

    for (std::size_t i = 0; i + 1 < m; ++i) f[i] = x[i];
    double h = static_cast<double>(m);
    for (std::size_t i = 0; i + 1 < m; ++i)
        h -= f[i] / (1.0 + g) *
             (1.0 + std::sin(3.0 * std::numbers::pi * f[i]));
    f[m - 1] = (1.0 + g) * h;
}

} // namespace borg::problems
