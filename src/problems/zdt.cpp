#include "problems/zdt.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace borg::problems {

Zdt::Zdt(std::size_t num_variables) : num_variables_(num_variables) {
    if (num_variables < 2)
        throw std::invalid_argument("ZDT: need at least 2 variables");
}

double Zdt::g(std::span<const double> x) const {
    double sum = 0.0;
    for (std::size_t i = 1; i < x.size(); ++i) sum += x[i];
    return 1.0 + 9.0 * sum / static_cast<double>(x.size() - 1);
}

Zdt1::Zdt1(std::size_t num_variables) : Zdt(num_variables) {}

void Zdt1::evaluate(std::span<const double> x, std::span<double> f) const {
    assert(x.size() == num_variables_ && f.size() >= 2);
    const double gv = g(x);
    f[0] = x[0];
    f[1] = gv * (1.0 - std::sqrt(x[0] / gv));
}

Zdt2::Zdt2(std::size_t num_variables) : Zdt(num_variables) {}

void Zdt2::evaluate(std::span<const double> x, std::span<double> f) const {
    assert(x.size() == num_variables_ && f.size() >= 2);
    const double gv = g(x);
    const double ratio = x[0] / gv;
    f[0] = x[0];
    f[1] = gv * (1.0 - ratio * ratio);
}

Zdt3::Zdt3(std::size_t num_variables) : Zdt(num_variables) {}

void Zdt3::evaluate(std::span<const double> x, std::span<double> f) const {
    assert(x.size() == num_variables_ && f.size() >= 2);
    const double gv = g(x);
    f[0] = x[0];
    f[1] = gv * (1.0 - std::sqrt(x[0] / gv) -
                 (x[0] / gv) * std::sin(10.0 * std::numbers::pi * x[0]));
}

} // namespace borg::problems
