#include "problems/delayed.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

namespace borg::problems {

DelayedProblem::DelayedProblem(std::shared_ptr<const Problem> inner,
                               std::unique_ptr<stats::Distribution> delay,
                               std::uint64_t seed, bool physically_sleep)
    : inner_(std::move(inner)),
      delay_(std::move(delay)),
      seed_(seed),
      physically_sleep_(physically_sleep) {
    if (!inner_) throw std::invalid_argument("DelayedProblem: null inner");
    if (!delay_) throw std::invalid_argument("DelayedProblem: null delay");
}

std::string DelayedProblem::name() const {
    return inner_->name() + "+delay";
}

std::size_t DelayedProblem::num_variables() const {
    return inner_->num_variables();
}

std::size_t DelayedProblem::num_objectives() const {
    return inner_->num_objectives();
}

double DelayedProblem::lower_bound(std::size_t i) const {
    return inner_->lower_bound(i);
}

double DelayedProblem::upper_bound(std::size_t i) const {
    return inner_->upper_bound(i);
}

util::Rng& DelayedProblem::thread_rng() const {
    // One RNG stream per evaluating thread, seeded deterministically from
    // the wrapper seed and a monotonically assigned thread index. The
    // thread_local cache is keyed by wrapper identity via a raw pointer so
    // distinct wrappers on the same thread do not share streams.
    struct Slot {
        const DelayedProblem* owner = nullptr;
        util::Rng rng{0};
    };
    thread_local Slot slot;
    if (slot.owner != this) {
        slot.owner = this;
        const std::uint64_t stream =
            next_stream_.fetch_add(1, std::memory_order_relaxed);
        slot.rng = util::Rng(util::derive_seed(seed_, stream));
    }
    return slot.rng;
}

double DelayedProblem::sample_delay() const {
    return delay_->sample(thread_rng());
}

void DelayedProblem::evaluate(std::span<const double> variables,
                              std::span<double> objectives) const {
    inner_->evaluate(variables, objectives);
    if (physically_sleep_) precise_sleep(sample_delay());
}

void precise_sleep(double seconds) {
    using clock = std::chrono::steady_clock;
    if (seconds <= 0.0) return;
    const auto deadline =
        clock::now() + std::chrono::duration_cast<clock::duration>(
                           std::chrono::duration<double>(seconds));
    // Sleep for all but the last ~200 us, then spin to the deadline.
    const auto spin_margin = std::chrono::microseconds(200);
    if (deadline - clock::now() > spin_margin)
        std::this_thread::sleep_until(deadline - spin_margin);
    while (clock::now() < deadline) std::this_thread::yield();
}

} // namespace borg::problems
