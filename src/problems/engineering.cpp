#include "problems/engineering.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace borg::problems {

// --------------------------------------------------------------------- SRN

void Srn::evaluate(std::span<const double> x, std::span<double> f) const {
    assert(x.size() == 2 && f.size() >= 2);
    f[0] = (x[0] - 2.0) * (x[0] - 2.0) + (x[1] - 1.0) * (x[1] - 1.0) + 2.0;
    f[1] = 9.0 * x[0] - (x[1] - 1.0) * (x[1] - 1.0);
}

void Srn::evaluate(std::span<const double> x, std::span<double> f,
                   std::span<double> v) const {
    evaluate(x, f);
    assert(v.size() >= 2);
    v[0] = std::max(0.0, (x[0] * x[0] + x[1] * x[1] - 225.0) / 225.0);
    v[1] = std::max(0.0, (x[0] - 3.0 * x[1] + 10.0) / 10.0);
}

// ------------------------------------------------------------- welded beam

namespace {
constexpr double kLoad = 6000.0;        // applied load P (lb)
constexpr double kBeamLength = 14.0;    // cantilever length L (in)
constexpr double kMaxShear = 13600.0;   // tau_max (psi)
constexpr double kMaxBending = 30000.0; // sigma_max (psi)
} // namespace

double WeldedBeam::lower_bound(std::size_t i) const {
    // h, l, t, b
    constexpr double lo[4] = {0.125, 0.1, 0.1, 0.125};
    return lo[i];
}

double WeldedBeam::upper_bound(std::size_t i) const {
    constexpr double hi[4] = {5.0, 10.0, 10.0, 5.0};
    return hi[i];
}

void WeldedBeam::evaluate(std::span<const double> x,
                          std::span<double> f) const {
    assert(x.size() == 4 && f.size() >= 2);
    const double h = x[0], l = x[1], t = x[2], b = x[3];
    f[0] = 1.10471 * h * h * l + 0.04811 * t * b * (kBeamLength + l);
    f[1] = 2.1952 / (t * t * t * b); // end deflection
}

void WeldedBeam::evaluate(std::span<const double> x, std::span<double> f,
                          std::span<double> v) const {
    evaluate(x, f);
    assert(v.size() >= 4);
    const double h = x[0], l = x[1], t = x[2], b = x[3];

    // Weld shear stress: primary (direct) and secondary (torsional) parts.
    const double tau_prime = kLoad / (std::numbers::sqrt2 * h * l);
    const double r =
        std::sqrt(l * l / 4.0 + (h + t) * (h + t) / 4.0);
    const double moment = kLoad * (kBeamLength + l / 2.0);
    const double polar =
        2.0 * (h * l * std::numbers::sqrt2 *
               (l * l / 12.0 + (h + t) * (h + t) / 4.0));
    const double tau_double_prime = moment * r / polar;
    const double tau = std::sqrt(
        tau_prime * tau_prime +
        tau_prime * tau_double_prime * l / r +
        tau_double_prime * tau_double_prime);

    const double sigma = 6.0 * kLoad * kBeamLength / (b * t * t);
    const double buckling =
        64746.022 * (1.0 - 0.0282346 * t) * t * b * b * b;

    v[0] = std::max(0.0, (tau - kMaxShear) / kMaxShear);
    v[1] = std::max(0.0, (sigma - kMaxBending) / kMaxBending);
    v[2] = std::max(0.0, (h - b) / 5.0); // weld cannot exceed beam thickness
    v[3] = std::max(0.0, (kLoad - buckling) / kLoad);
}

} // namespace borg::problems
