#ifndef BORG_PROBLEMS_DTLZ_HPP
#define BORG_PROBLEMS_DTLZ_HPP

/// \file dtlz.hpp
/// The DTLZ scalable test suite (Deb, Thiele, Laumanns, Zitzler 2002).
///
/// The paper's "simple" validation problem is the 5-objective DTLZ2: all
/// decision variables are separable and the Pareto front is the unit sphere
/// restricted to the positive orthant. DTLZ1/3/4 are provided for the wider
/// test and example suite (multimodal g, biased density variants).

#include <cstddef>

#include "problems/problem.hpp"

namespace borg::problems {

/// Common machinery for the DTLZ family: n = (M - 1) + k variables in
/// [0, 1], where the first M - 1 are "position" variables and the last k
/// are "distance" variables feeding the g function.
class Dtlz : public Problem {
public:
    Dtlz(std::size_t num_objectives, std::size_t k);

    std::size_t num_variables() const override { return num_variables_; }
    std::size_t num_objectives() const override { return num_objectives_; }
    double lower_bound(std::size_t) const override { return 0.0; }
    double upper_bound(std::size_t) const override { return 1.0; }

protected:
    std::size_t num_objectives_;
    std::size_t k_;
    std::size_t num_variables_;
};

/// DTLZ1: linear Pareto front sum(f) = 0.5, highly multimodal g (11^k - 1
/// local fronts). Default k = 5.
class Dtlz1 final : public Dtlz {
public:
    explicit Dtlz1(std::size_t num_objectives = 2, std::size_t k = 5);
    std::string name() const override;
    void evaluate(std::span<const double> variables,
                  std::span<double> objectives) const override;
};

/// DTLZ2: spherical Pareto front sum(f^2) = 1, unimodal g. Default k = 10.
/// This is the paper's easy problem (5 objectives in the experiments).
class Dtlz2 final : public Dtlz {
public:
    explicit Dtlz2(std::size_t num_objectives = 2, std::size_t k = 10);
    std::string name() const override;
    void evaluate(std::span<const double> variables,
                  std::span<double> objectives) const override;
};

/// DTLZ3: DTLZ2's sphere with DTLZ1's multimodal g. Default k = 10.
class Dtlz3 final : public Dtlz {
public:
    explicit Dtlz3(std::size_t num_objectives = 2, std::size_t k = 10);
    std::string name() const override;
    void evaluate(std::span<const double> variables,
                  std::span<double> objectives) const override;
};

/// DTLZ4: DTLZ2 with position variables raised to alpha = 100, biasing
/// solution density toward the f_M axis. Default k = 10.
class Dtlz4 final : public Dtlz {
public:
    explicit Dtlz4(std::size_t num_objectives = 2, std::size_t k = 10,
                   double alpha = 100.0);
    std::string name() const override;
    void evaluate(std::span<const double> variables,
                  std::span<double> objectives) const override;

private:
    double alpha_;
};

/// DTLZ5: DTLZ2 with the position variables 2..M-1 collapsed toward a
/// degenerate curve (theta mapping); tests an algorithm's behaviour on
/// lower-dimensional embedded fronts. Default k = 10.
class Dtlz5 final : public Dtlz {
public:
    explicit Dtlz5(std::size_t num_objectives = 3, std::size_t k = 10);
    std::string name() const override;
    void evaluate(std::span<const double> variables,
                  std::span<double> objectives) const override;
};

/// DTLZ6: DTLZ5 with the harder g = sum x^0.1 distance function, which
/// biases random sampling far from the front. Default k = 10.
class Dtlz6 final : public Dtlz {
public:
    explicit Dtlz6(std::size_t num_objectives = 3, std::size_t k = 10);
    std::string name() const override;
    void evaluate(std::span<const double> variables,
                  std::span<double> objectives) const override;
};

/// DTLZ7: disconnected front with 2^(M-1) Pareto-optimal regions.
/// Default k = 20 (the suite's convention for DTLZ7).
class Dtlz7 final : public Dtlz {
public:
    explicit Dtlz7(std::size_t num_objectives = 2, std::size_t k = 20);
    std::string name() const override;
    void evaluate(std::span<const double> variables,
                  std::span<double> objectives) const override;
};

} // namespace borg::problems

#endif
