#ifndef BORG_MOEA_OPERATORS_HPP
#define BORG_MOEA_OPERATORS_HPP

/// \file operators.hpp
/// The Borg MOEA's ensemble of real-valued variation operators.
///
/// Borg does not commit to a single recombination operator: it carries an
/// ensemble — simulated binary crossover (SBX), differential evolution
/// (DE/rand/1/bin), parent-centric crossover (PCX), simplex crossover
/// (SPX), unimodal normal distribution crossover (UNDX), and uniform
/// mutation (UM) — and adapts each operator's selection probability by its
/// record of contributing solutions to the ε-dominance archive. As in the
/// original algorithm, each recombination operator is followed by
/// polynomial mutation (PM) with probability 1/L per variable; UM stands
/// alone.
///
/// Conventions shared by all operators:
///  * parents are decision-variable vectors only (objectives play no role);
///  * parents[0] is the "index" parent — Borg draws it from the archive, so
///    parent-centric operators (PCX) center their search on it;
///  * exactly one offspring is returned per application (the steady-state
///    algorithm needs one offspring per master interaction);
///  * offspring are clipped to the problem's bounds before return.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "problems/problem.hpp"
#include "util/rng.hpp"

namespace borg::moea {

using ParentView = std::vector<std::span<const double>>;

/// Abstract variation operator.
class Variation {
public:
    explicit Variation(const problems::Problem& problem) : problem_(problem) {}
    virtual ~Variation() = default;

    virtual std::string name() const = 0;

    /// Number of parents this operator wants. Callers may supply fewer when
    /// the population is small (minimum 1 for mutations, 2 for crossovers);
    /// implementations degrade gracefully.
    virtual std::size_t arity() const = 0;

    /// Produces one offspring decision vector from the given parents.
    virtual std::vector<double> apply(const ParentView& parents,
                                      util::Rng& rng) const = 0;

protected:
    void clip(std::vector<double>& variables) const;
    const problems::Problem& problem_;
};

/// Simulated binary crossover (Deb & Agrawal 1994). Two parents; each
/// variable crosses with probability \p swap_probability using the
/// polynomial spread distribution with index \p distribution_index.
class Sbx final : public Variation {
public:
    explicit Sbx(const problems::Problem& problem,
                 double distribution_index = 15.0,
                 double swap_probability = 0.5);
    std::string name() const override { return "SBX"; }
    std::size_t arity() const override { return 2; }
    std::vector<double> apply(const ParentView& parents,
                              util::Rng& rng) const override;

private:
    double distribution_index_;
    double swap_probability_;
};

/// Differential evolution, DE/rand/1/bin (Storn & Price 1997). Four
/// parents: offspring starts from parents[0]; variables cross with the
/// donor parents[1] + F (parents[2] - parents[3]) with probability CR (at
/// least one variable always crosses).
class DifferentialEvolution final : public Variation {
public:
    explicit DifferentialEvolution(const problems::Problem& problem,
                                   double crossover_rate = 0.1,
                                   double step_size = 0.5);
    std::string name() const override { return "DE"; }
    std::size_t arity() const override { return 4; }
    std::vector<double> apply(const ParentView& parents,
                              util::Rng& rng) const override;

private:
    double crossover_rate_;
    double step_size_;
};

/// Parent-centric crossover (Deb, Joshi, Anand 2002). Multi-parent;
/// offspring is distributed around the index parent along the direction to
/// the parent centroid (zeta) and the orthogonal parent subspace (eta).
class Pcx final : public Variation {
public:
    explicit Pcx(const problems::Problem& problem, std::size_t num_parents = 10,
                 double eta = 0.1, double zeta = 0.1);
    std::string name() const override { return "PCX"; }
    std::size_t arity() const override { return num_parents_; }
    std::vector<double> apply(const ParentView& parents,
                              util::Rng& rng) const override;

private:
    std::size_t num_parents_;
    double eta_;
    double zeta_;
};

/// Simplex crossover (Tsutsui, Yamamura, Higuchi 1999). Multi-parent;
/// offspring is sampled uniformly from the parent simplex expanded by
/// \p expansion about its centroid.
class Spx final : public Variation {
public:
    explicit Spx(const problems::Problem& problem, std::size_t num_parents = 10,
                 double expansion = 3.0);
    std::string name() const override { return "SPX"; }
    std::size_t arity() const override { return num_parents_; }
    std::vector<double> apply(const ParentView& parents,
                              util::Rng& rng) const override;

private:
    std::size_t num_parents_;
    double expansion_;
};

/// Unimodal normal distribution crossover (Kita, Ono, Kobayashi 1999),
/// multi-parent extension. The first m = arity - 1 parents span the primary
/// search subspace (spread zeta); the last parent sets the scale of the
/// orthogonal-complement component (spread eta / sqrt(m)).
class Undx final : public Variation {
public:
    explicit Undx(const problems::Problem& problem, std::size_t num_parents = 10,
                  double zeta = 0.5, double eta = 0.35);
    std::string name() const override { return "UNDX"; }
    std::size_t arity() const override { return num_parents_; }
    std::vector<double> apply(const ParentView& parents,
                              util::Rng& rng) const override;

private:
    std::size_t num_parents_;
    double zeta_;
    double eta_;
};

/// Uniform mutation: each variable is redrawn uniformly from its bounds
/// with probability \p probability (Borg uses 1/L; pass 0 for that default).
class UniformMutation final : public Variation {
public:
    explicit UniformMutation(const problems::Problem& problem,
                             double probability = 0.0);
    std::string name() const override { return "UM"; }
    std::size_t arity() const override { return 1; }
    std::vector<double> apply(const ParentView& parents,
                              util::Rng& rng) const override;

    double probability() const noexcept { return probability_; }

private:
    double probability_;
};

/// Polynomial mutation (Deb). Applied after each recombination operator,
/// probability 1/L per variable by default (pass 0).
class PolynomialMutation final : public Variation {
public:
    explicit PolynomialMutation(const problems::Problem& problem,
                                double distribution_index = 20.0,
                                double probability = 0.0);
    std::string name() const override { return "PM"; }
    std::size_t arity() const override { return 1; }
    std::vector<double> apply(const ParentView& parents,
                              util::Rng& rng) const override;

private:
    double distribution_index_;
    double probability_;
};

/// Recombination followed by mutation of the result (e.g. SBX+PM). The
/// reported name is "<first>+<second>"; arity is the first stage's.
class CompositeVariation final : public Variation {
public:
    CompositeVariation(const problems::Problem& problem,
                       std::unique_ptr<Variation> first,
                       std::unique_ptr<Variation> second);
    std::string name() const override;
    std::size_t arity() const override { return first_->arity(); }
    std::vector<double> apply(const ParentView& parents,
                              util::Rng& rng) const override;

private:
    std::unique_ptr<Variation> first_;
    std::unique_ptr<Variation> second_;
};

/// Builds Borg's standard operator ensemble for \p problem:
/// SBX+PM, DE+PM, PCX+PM, SPX+PM, UNDX+PM, UM.
std::vector<std::unique_ptr<Variation>> make_borg_operators(
    const problems::Problem& problem);

} // namespace borg::moea

#endif
