#ifndef BORG_MOEA_DIAGNOSTICS_HPP
#define BORG_MOEA_DIAGNOSTICS_HPP

/// \file diagnostics.hpp
/// Runtime diagnostics for the Borg MOEA's auto-adaptive machinery.
///
/// The paper's Section VI ties parallel efficiency to the algorithm's
/// *dynamics*: "the effectiveness of the asynchronous Borg MOEA's
/// auto-adaptive search is strongly shaped by parallel scalability and
/// problem difficulty", and the companion diagnostics papers (Hadka & Reed
/// 2012) study exactly these time series. This observer snapshots the
/// adaptive state — operator selection probabilities, archive size,
/// ε-progress, population target, restart count — every fixed number of
/// evaluations, producing the series those analyses need.
///
/// Pull-based: call observe() after each receive (cheap — it only copies
/// state at window boundaries), from any run loop or executor callback.

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "moea/borg.hpp"

namespace borg::moea {

struct DiagnosticSnapshot {
    std::uint64_t evaluations = 0;
    std::size_t archive_size = 0;
    std::uint64_t epsilon_progress = 0;
    std::size_t population_target = 0;
    std::uint64_t restarts = 0;
    std::vector<double> operator_probabilities;
};

class DiagnosticLog {
public:
    /// Snapshots every \p window evaluations (and whenever restarts fire
    /// between windows, so short-lived adaptation states are not missed).
    explicit DiagnosticLog(std::uint64_t window = 1000);

    /// Records a snapshot if the algorithm crossed a window boundary (or
    /// restarted) since the last call. Returns true when one was taken.
    bool observe(const BorgMoea& algorithm);

    const std::vector<DiagnosticSnapshot>& snapshots() const noexcept {
        return snapshots_;
    }

    /// Column-aligned table: evaluations, archive, restarts, and one
    /// probability column per operator (names from the algorithm at first
    /// observe()).
    void print(std::ostream& os) const;
    void print_csv(std::ostream& os) const;

    /// Largest single-window swing in any operator's probability — a
    /// scalar "how strongly did adaptation act" summary used in tests.
    double max_probability_swing() const;

private:
    std::uint64_t window_;
    std::uint64_t next_checkpoint_;
    std::uint64_t last_restarts_ = 0;
    std::vector<std::string> operator_names_;
    std::vector<DiagnosticSnapshot> snapshots_;
};

} // namespace borg::moea

#endif
