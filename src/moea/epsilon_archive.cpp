#include "moea/epsilon_archive.hpp"

#include <algorithm>
#include <stdexcept>

namespace borg::moea {

EpsilonBoxArchive::EpsilonBoxArchive(std::vector<double> epsilons)
    : epsilons_(std::move(epsilons)) {
    if (epsilons_.empty())
        throw std::invalid_argument("archive: empty epsilon vector");
    for (const double e : epsilons_)
        if (!(e > 0.0))
            throw std::invalid_argument("archive: epsilons must be positive");
}

ArchiveAdd EpsilonBoxArchive::add(const Solution& solution) {
    if (!solution.evaluated || solution.objectives.size() != epsilons_.size())
        throw std::invalid_argument("archive: unevaluated or wrong-arity solution");

    // Constraint handling: the archive stores the feasible ε-front. While
    // no feasible solution has ever been seen, it instead carries the
    // single least-violating solution so search has an anchor; the first
    // feasible arrival evicts it.
    if (!solution.feasible()) {
        const bool infeasible_phase =
            !entries_.empty() && !entries_[0].solution.feasible();
        if (!entries_.empty() && !infeasible_phase)
            return ArchiveAdd::kRejected; // feasible members always win
        if (!entries_.empty() &&
            solution.total_violation() >=
                entries_[0].solution.total_violation())
            return ArchiveAdd::kRejected;
        entries_.clear();
        entries_.push_back(
            Entry{solution, epsilon_box(solution.objectives, epsilons_)});
        ++improvements_;
        ++progress_; // violation improved: counts as search progress
        return ArchiveAdd::kAddedNewBox;
    }
    if (!entries_.empty() && !entries_[0].solution.feasible()) {
        // First feasible solution: the infeasible anchor is obsolete.
        entries_.clear();
    }

    const auto box = epsilon_box(solution.objectives, epsilons_);

    // Single pass: detect rejection, same-box contests, and evictions.
    bool same_box_win = false;
    std::size_t write = 0;
    for (std::size_t read = 0; read < entries_.size(); ++read) {
        Entry& entry = entries_[read];
        const Dominance rel = compare_boxes(box, entry.box);
        if (rel == Dominance::kDominatedBy) {
            // An existing member ε-dominates the candidate: reject. No
            // eviction can have happened before a dominator is found
            // (dominance of boxes is a partial order: if the candidate's box
            // dominated an earlier member's box, no member's box can
            // dominate the candidate's), so the archive is untouched.
            return ArchiveAdd::kRejected;
        }
        if (rel == Dominance::kEqual) {
            // Same box: the solution nearer the box corner wins.
            const double d_new = distance_to_box_corner(solution.objectives,
                                                        box, epsilons_);
            const double d_old = distance_to_box_corner(
                entry.solution.objectives, entry.box, epsilons_);
            if (d_new < d_old) {
                same_box_win = true;
                continue; // drop the incumbent
            }
            return ArchiveAdd::kRejected;
        }
        if (rel == Dominance::kDominates) continue; // evict dominated member
        if (write != read) entries_[write] = std::move(entries_[read]);
        ++write;
    }
    entries_.resize(write);
    entries_.push_back(Entry{solution, box});

    ++improvements_;
    if (!same_box_win) {
        ++progress_;
        return ArchiveAdd::kAddedNewBox;
    }
    return ArchiveAdd::kReplacedSameBox;
}

std::vector<Solution> EpsilonBoxArchive::solutions() const {
    std::vector<Solution> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.push_back(e.solution);
    return out;
}

std::vector<std::vector<double>> EpsilonBoxArchive::objective_vectors() const {
    std::vector<std::vector<double>> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.push_back(e.solution.objectives);
    return out;
}

std::vector<std::size_t> EpsilonBoxArchive::operator_counts(
    std::size_t num_operators) const {
    std::vector<std::size_t> counts(num_operators, 0);
    for (const Entry& e : entries_) {
        const int op = e.solution.operator_index;
        if (op >= 0 && static_cast<std::size_t>(op) < num_operators)
            ++counts[static_cast<std::size_t>(op)];
    }
    return counts;
}

void EpsilonBoxArchive::clear() noexcept { entries_.clear(); }

void EpsilonBoxArchive::restore(const std::vector<Solution>& solutions,
                                std::uint64_t progress,
                                std::uint64_t improvements) {
    entries_.clear();
    for (const Solution& s : solutions) add(s);
    progress_ = progress;
    improvements_ = improvements;
}

} // namespace borg::moea
