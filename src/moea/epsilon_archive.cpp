#include "moea/epsilon_archive.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace borg::moea {

namespace {

void validate_epsilons(const std::vector<double>& epsilons) {
    if (epsilons.empty())
        throw std::invalid_argument("archive: empty epsilon vector");
    for (const double e : epsilons)
        if (!(e > 0.0))
            throw std::invalid_argument("archive: epsilons must be positive");
}

void validate_candidate(const Solution& solution,
                        const std::vector<double>& epsilons) {
    if (!solution.evaluated || solution.objectives.size() != epsilons.size())
        throw std::invalid_argument(
            "archive: unevaluated or wrong-arity solution");
}

} // namespace

// ---------------------------------------------------------------------------
// ArchiveEngine
// ---------------------------------------------------------------------------

ArchiveEngine::ArchiveEngine(std::vector<double> epsilons)
    : epsilons_(std::move(epsilons)) {
    validate_epsilons(epsilons_);
    const std::size_t m = epsilons_.size();
    axis_min_.assign(m, 0);
    axis_max_.assign(m, 0);
    scratch_box_.assign(m, 0);
}

std::uint32_t ArchiveEngine::allocate_slot() {
    if (!free_slots_.empty()) {
        const std::uint32_t slot = free_slots_.back();
        free_slots_.pop_back();
        return slot;
    }
    slot_solutions_.emplace_back();
    box_arena_.resize(box_arena_.size() + epsilons_.size(), 0);
    slot_sum_.push_back(0);
    slot_hash_.push_back(0);
    slot_evicted_.push_back(0);
    return static_cast<std::uint32_t>(slot_solutions_.size() - 1);
}

void ArchiveEngine::release_slot(std::uint32_t slot) {
    // The arena row and index entries stay allocated for reuse; only the
    // payload is dropped so evicted solutions do not linger.
    slot_solutions_[slot] = Solution{};
    free_slots_.push_back(slot);
}

void ArchiveEngine::erase_from_map(std::uint32_t slot) {
    auto [lo, hi] = box_map_.equal_range(slot_hash_[slot]);
    for (auto it = lo; it != hi; ++it) {
        if (it->second == slot) {
            box_map_.erase(it);
            return;
        }
    }
}

void ArchiveEngine::refresh_axis_bounds() {
    const std::size_t m = epsilons_.size();
    if (order_.empty()) {
        axis_min_.assign(m, 0);
        axis_max_.assign(m, 0);
        return;
    }
    axis_min_.assign(m, std::numeric_limits<std::int64_t>::max());
    axis_max_.assign(m, std::numeric_limits<std::int64_t>::min());
    for (const std::uint32_t slot : order_) {
        const auto box = box_of(slot);
        for (std::size_t i = 0; i < m; ++i) {
            axis_min_[i] = std::min(axis_min_[i], box[i]);
            axis_max_[i] = std::max(axis_max_[i], box[i]);
        }
    }
}

bool ArchiveEngine::below_axis_min() const {
    for (std::size_t i = 0; i < scratch_box_.size(); ++i)
        if (scratch_box_[i] < axis_min_[i]) return true;
    return false;
}

bool ArchiveEngine::above_axis_max() const {
    for (std::size_t i = 0; i < scratch_box_.size(); ++i)
        if (scratch_box_[i] > axis_max_[i]) return true;
    return false;
}

void ArchiveEngine::reset_structures() noexcept {
    slot_solutions_.clear();
    box_arena_.clear();
    slot_sum_.clear();
    slot_hash_.clear();
    slot_evicted_.clear();
    free_slots_.clear();
    order_.clear();
    by_sum_.clear();
    box_map_.clear();
}

void ArchiveEngine::install(const Solution& solution) {
    // Precondition: scratch_box_ holds the candidate's ε-box.
    const std::uint32_t slot = allocate_slot();
    slot_solutions_[slot] = solution;
    std::copy(scratch_box_.begin(), scratch_box_.end(),
              box_arena_.begin() +
                  static_cast<std::ptrdiff_t>(slot * epsilons_.size()));
    std::int64_t sum = 0;
    for (const std::int64_t c : scratch_box_) sum += c;
    slot_sum_[slot] = sum;
    slot_hash_[slot] = box_key_hash(scratch_box_);

    const auto pos = std::lower_bound(
        by_sum_.begin(), by_sum_.end(), sum,
        [&](std::uint32_t s, std::int64_t v) { return slot_sum_[s] < v; });
    by_sum_.insert(pos, slot);
    box_map_.emplace(slot_hash_[slot], slot);

    if (order_.empty()) {
        axis_min_.assign(scratch_box_.begin(), scratch_box_.end());
        axis_max_.assign(scratch_box_.begin(), scratch_box_.end());
    } else {
        for (std::size_t i = 0; i < scratch_box_.size(); ++i) {
            axis_min_[i] = std::min(axis_min_[i], scratch_box_[i]);
            axis_max_[i] = std::max(axis_max_[i], scratch_box_[i]);
        }
    }
    order_.push_back(slot);
}

ArchiveAdd ArchiveEngine::add(const Solution& solution) {
    validate_candidate(solution, epsilons_);

    // Constraint handling: the archive stores the feasible ε-front. While
    // no feasible solution has ever been seen, it instead carries the
    // single least-violating solution so search has an anchor; the first
    // feasible arrival evicts it.
    if (!solution.feasible()) {
        const bool infeasible_phase =
            !order_.empty() && !slot_solutions_[order_[0]].feasible();
        if (!order_.empty() && !infeasible_phase)
            return ArchiveAdd::kRejected; // feasible members always win
        if (!order_.empty() &&
            solution.total_violation() >=
                slot_solutions_[order_[0]].total_violation())
            return ArchiveAdd::kRejected;
        reset_structures();
        epsilon_box_into(solution.objectives, epsilons_, scratch_box_);
        install(solution);
        ++improvements_;
        ++progress_; // violation improved: counts as search progress
        return ArchiveAdd::kAddedNewBox;
    }
    if (!order_.empty() && !slot_solutions_[order_[0]].feasible()) {
        // First feasible solution: the infeasible anchor is obsolete.
        reset_structures();
    }

    epsilon_box_into(solution.objectives, epsilons_, scratch_box_);
    const std::uint64_t hash = box_key_hash(scratch_box_);

    // Same-box contest in O(1) via the exact hash index. Members are
    // mutually box-nondominated, so an occupied same box means no other
    // member can reject or be evicted: the contest alone decides.
    auto [lo, hi] = box_map_.equal_range(hash);
    for (auto it = lo; it != hi; ++it) {
        const std::uint32_t slot = it->second;
        const auto incumbent_box = box_of(slot);
        if (!std::equal(incumbent_box.begin(), incumbent_box.end(),
                        scratch_box_.begin()))
            continue; // different box with a colliding hash
        const double d_new =
            distance_to_box_corner(solution.objectives, scratch_box_,
                                   epsilons_);
        const double d_old = distance_to_box_corner(
            slot_solutions_[slot].objectives, incumbent_box, epsilons_);
        if (!(d_new < d_old)) return ArchiveAdd::kRejected;
        // The winner inherits the incumbent's slot — box, sum, hash, and
        // both indexes stay valid — but moves to the back of the
        // iteration order, matching the naive drop-and-append.
        slot_solutions_[slot] = solution;
        order_.erase(std::find(order_.begin(), order_.end(), slot));
        order_.push_back(slot);
        ++improvements_;
        return ArchiveAdd::kReplacedSameBox;
    }

    std::int64_t cand_sum = 0;
    for (const std::int64_t c : scratch_box_) cand_sum += c;

    // Rejection: a dominating box is <= on every axis and differs, so its
    // coordinate sum is strictly smaller. Scanning ascending by sum tests
    // the strongest members (nearest the ideal corner) first, which is
    // where a dominator of a typical dominated candidate lives. If the
    // candidate is below the occupied range on any single axis, nothing
    // can dominate it and the scan is skipped outright.
    if (!below_axis_min()) {
        for (const std::uint32_t slot : by_sum_) {
            if (slot_sum_[slot] >= cand_sum) break;
            if (compare_boxes(box_of(slot), scratch_box_) ==
                Dominance::kDominates)
                return ArchiveAdd::kRejected;
        }
    }

    // Eviction: anything the candidate dominates has a strictly larger
    // sum — scan the tail of the sum order, skipped entirely when the
    // candidate exceeds the occupied range on any single axis.
    scratch_evicted_.clear();
    if (!above_axis_max()) {
        for (std::size_t k = by_sum_.size(); k-- > 0;) {
            const std::uint32_t slot = by_sum_[k];
            if (slot_sum_[slot] <= cand_sum) break;
            if (compare_boxes(scratch_box_, box_of(slot)) ==
                Dominance::kDominates)
                scratch_evicted_.push_back(slot);
        }
    }

    if (!scratch_evicted_.empty()) {
        for (const std::uint32_t slot : scratch_evicted_)
            slot_evicted_[slot] = 1;
        std::erase_if(by_sum_, [&](std::uint32_t s) {
            return slot_evicted_[s] != 0;
        });
        std::erase_if(order_, [&](std::uint32_t s) {
            return slot_evicted_[s] != 0;
        });
        for (const std::uint32_t slot : scratch_evicted_) {
            erase_from_map(slot);
            slot_evicted_[slot] = 0;
            release_slot(slot);
        }
        refresh_axis_bounds();
    }

    install(solution);
    ++improvements_;
    ++progress_;
    return ArchiveAdd::kAddedNewBox;
}

ArchiveBatchResult ArchiveEngine::add_all(std::span<const Solution> batch) {
    ArchiveBatchResult result;
    for (const Solution& s : batch) {
        switch (add(s)) {
        case ArchiveAdd::kAddedNewBox: ++result.added_new_box; break;
        case ArchiveAdd::kReplacedSameBox: ++result.replaced_same_box; break;
        case ArchiveAdd::kRejected: ++result.rejected; break;
        }
    }
    return result;
}

std::vector<Solution> ArchiveEngine::solutions() const {
    std::vector<Solution> out;
    out.reserve(order_.size());
    for (const std::uint32_t slot : order_)
        out.push_back(slot_solutions_[slot]);
    return out;
}

std::vector<std::vector<double>> ArchiveEngine::objective_vectors() const {
    std::vector<std::vector<double>> out;
    out.reserve(order_.size());
    for (const std::uint32_t slot : order_)
        out.push_back(slot_solutions_[slot].objectives);
    return out;
}

std::vector<std::size_t> ArchiveEngine::operator_counts(
    std::size_t num_operators) const {
    std::vector<std::size_t> counts(num_operators, 0);
    for (const std::uint32_t slot : order_) {
        const int op = slot_solutions_[slot].operator_index;
        if (op >= 0 && static_cast<std::size_t>(op) < num_operators)
            ++counts[static_cast<std::size_t>(op)];
    }
    return counts;
}

void ArchiveEngine::clear() noexcept { reset_structures(); }

void ArchiveEngine::restore(const std::vector<Solution>& solutions,
                            std::uint64_t progress,
                            std::uint64_t improvements) {
    reset_structures();
    for (const Solution& s : solutions) {
        validate_candidate(s, epsilons_);
        epsilon_box_into(s.objectives, epsilons_, scratch_box_);
        install(s);
    }
    progress_ = progress;
    improvements_ = improvements;
}

// ---------------------------------------------------------------------------
// NaiveArchive — the frozen reference implementation.
// ---------------------------------------------------------------------------

NaiveArchive::NaiveArchive(std::vector<double> epsilons)
    : epsilons_(std::move(epsilons)) {
    validate_epsilons(epsilons_);
}

ArchiveAdd NaiveArchive::add(const Solution& solution) {
    validate_candidate(solution, epsilons_);

    if (!solution.feasible()) {
        const bool infeasible_phase =
            !entries_.empty() && !entries_[0].solution.feasible();
        if (!entries_.empty() && !infeasible_phase)
            return ArchiveAdd::kRejected; // feasible members always win
        if (!entries_.empty() &&
            solution.total_violation() >=
                entries_[0].solution.total_violation())
            return ArchiveAdd::kRejected;
        entries_.clear();
        entries_.push_back(
            Entry{solution, epsilon_box(solution.objectives, epsilons_)});
        ++improvements_;
        ++progress_; // violation improved: counts as search progress
        return ArchiveAdd::kAddedNewBox;
    }
    if (!entries_.empty() && !entries_[0].solution.feasible()) {
        // First feasible solution: the infeasible anchor is obsolete.
        entries_.clear();
    }

    const auto box = epsilon_box(solution.objectives, epsilons_);

    // Single pass: detect rejection, same-box contests, and evictions.
    bool same_box_win = false;
    std::size_t write = 0;
    for (std::size_t read = 0; read < entries_.size(); ++read) {
        Entry& entry = entries_[read];
        const Dominance rel = compare_boxes(box, entry.box);
        if (rel == Dominance::kDominatedBy) {
            // An existing member ε-dominates the candidate: reject. No
            // eviction can have happened before a dominator is found
            // (dominance of boxes is a partial order: if the candidate's box
            // dominated an earlier member's box, no member's box can
            // dominate the candidate's), so the archive is untouched.
            return ArchiveAdd::kRejected;
        }
        if (rel == Dominance::kEqual) {
            // Same box: the solution nearer the box corner wins.
            const double d_new = distance_to_box_corner(solution.objectives,
                                                        box, epsilons_);
            const double d_old = distance_to_box_corner(
                entry.solution.objectives, entry.box, epsilons_);
            if (d_new < d_old) {
                same_box_win = true;
                continue; // drop the incumbent
            }
            return ArchiveAdd::kRejected;
        }
        if (rel == Dominance::kDominates) continue; // evict dominated member
        if (write != read) entries_[write] = std::move(entries_[read]);
        ++write;
    }
    entries_.resize(write);
    entries_.push_back(Entry{solution, box});

    ++improvements_;
    if (!same_box_win) {
        ++progress_;
        return ArchiveAdd::kAddedNewBox;
    }
    return ArchiveAdd::kReplacedSameBox;
}

ArchiveBatchResult NaiveArchive::add_all(std::span<const Solution> batch) {
    ArchiveBatchResult result;
    for (const Solution& s : batch) {
        switch (add(s)) {
        case ArchiveAdd::kAddedNewBox: ++result.added_new_box; break;
        case ArchiveAdd::kReplacedSameBox: ++result.replaced_same_box; break;
        case ArchiveAdd::kRejected: ++result.rejected; break;
        }
    }
    return result;
}

std::vector<Solution> NaiveArchive::solutions() const {
    std::vector<Solution> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.push_back(e.solution);
    return out;
}

std::vector<std::vector<double>> NaiveArchive::objective_vectors() const {
    std::vector<std::vector<double>> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.push_back(e.solution.objectives);
    return out;
}

std::vector<std::size_t> NaiveArchive::operator_counts(
    std::size_t num_operators) const {
    std::vector<std::size_t> counts(num_operators, 0);
    for (const Entry& e : entries_) {
        const int op = e.solution.operator_index;
        if (op >= 0 && static_cast<std::size_t>(op) < num_operators)
            ++counts[static_cast<std::size_t>(op)];
    }
    return counts;
}

void NaiveArchive::clear() noexcept { entries_.clear(); }

void NaiveArchive::restore(const std::vector<Solution>& solutions,
                           std::uint64_t progress,
                           std::uint64_t improvements) {
    entries_.clear();
    for (const Solution& s : solutions) {
        validate_candidate(s, epsilons_);
        entries_.push_back(
            Entry{s, epsilon_box(s.objectives, epsilons_)});
    }
    progress_ = progress;
    improvements_ = improvements;
}

} // namespace borg::moea
