#ifndef BORG_MOEA_RESTART_HPP
#define BORG_MOEA_RESTART_HPP

/// \file restart.hpp
/// Borg's preconvergence detection and randomized restarts.
///
/// Borg watches the ε-dominance archive: if no ε-progress (no newly
/// occupied ε-box) is made over a window of evaluations, search has
/// stagnated on a local front and a restart is triggered. Restarts also
/// fire when the population-to-archive size ratio drifts far from the
/// injection ratio γ, keeping selection pressure matched to the current
/// front size.
///
/// A restart: empties the population; re-injects every archive member; then
/// fills the population to γ·|archive| with archive members mutated by
/// uniform mutation (probability 1/L). In this implementation the mutants
/// flow through the algorithm's normal generate→evaluate→receive pipeline
/// (RestartController reports how many to stage), which is exactly how the
/// asynchronous master-slave version distributes them to workers. The
/// tournament size is re-derived as a fixed fraction τ of the new
/// population size, preserving selection pressure across re-sizing.

#include <cstddef>
#include <cstdint>

#include "moea/epsilon_archive.hpp"
#include "moea/population.hpp"

namespace borg::moea {

struct RestartParams {
    /// Evaluations between stagnation checks.
    std::size_t window = 1000;
    /// Population-to-archive injection ratio γ.
    double gamma = 4.0;
    /// Allowed relative drift of |population| / (γ |archive|) before a
    /// ratio-triggered restart (paper lineage uses 25%).
    double ratio_tolerance = 0.25;
    /// Tournament size as a fraction τ of the population size.
    double selection_ratio = 0.02;
    /// Floor/ceiling for the adapted population size.
    std::size_t min_population = 100;
    std::size_t max_population = 10000;
};

class RestartController {
public:
    explicit RestartController(RestartParams params);

    /// Called once per completed evaluation. Returns true when a restart
    /// should fire (the caller then invokes perform_restart).
    bool should_restart(const EpsilonBoxArchive& archive,
                        const Population& population);

    /// Executes the restart: clears the population, re-targets it to
    /// γ·|archive| (clamped), re-injects the archive members, and resets
    /// the stagnation window. Returns the number of mutated archive
    /// members the caller must stage through its evaluation pipeline to
    /// fill the population back to target.
    std::size_t perform_restart(const EpsilonBoxArchive& archive,
                                Population& population);

    /// Tournament size implied by the current population target.
    std::size_t tournament_size(const Population& population) const;

    std::uint64_t restarts() const noexcept { return restarts_; }
    const RestartParams& params() const noexcept { return params_; }

    /// Checkpoint support.
    std::size_t evaluations_since_check() const noexcept {
        return evaluations_since_check_;
    }
    std::uint64_t progress_at_last_check() const noexcept {
        return progress_at_last_check_;
    }
    void restore(std::size_t evaluations_since_check,
                 std::uint64_t progress_at_last_check,
                 std::uint64_t restarts) noexcept {
        evaluations_since_check_ = evaluations_since_check;
        progress_at_last_check_ = progress_at_last_check;
        restarts_ = restarts;
    }

private:
    std::size_t desired_population(const EpsilonBoxArchive& archive) const;

    RestartParams params_;
    std::size_t evaluations_since_check_ = 0;
    std::uint64_t progress_at_last_check_ = 0;
    std::uint64_t restarts_ = 0;
};

} // namespace borg::moea

#endif
