#ifndef BORG_MOEA_CHECKPOINT_HPP
#define BORG_MOEA_CHECKPOINT_HPP

/// \file checkpoint.hpp
/// Save/restore of the complete Borg MOEA state.
///
/// The paper's experiments burn up to 62,976 cores for hours; on real
/// clusters such runs must survive job-time limits, so the production
/// Borg implementation checkpoints. This module serializes everything the
/// algorithm's behaviour depends on — the RNG stream, the population, the
/// ε-archive with its progress counters, operator probabilities and the
/// refresh countdown, restart-window state, and the issue/receive
/// counters — to a line-oriented text format. Doubles round-trip exactly
/// (17 significant digits); a restored run continues bit-identically to
/// an uninterrupted one (pinned by tests).
///
/// The algorithm's *configuration* (problem, BorgParams, operator
/// ensemble) is not serialized: construct the BorgMoea with the same
/// configuration, then load. Incompatible configurations fail loudly:
/// load_checkpoint validates variable/objective/constraint arity against
/// the configured problem and the saved ε vector against the configured
/// BorgParams — a mismatched ε grid would otherwise silently re-box (and
/// possibly drop) the saved archive.

#include <iosfwd>
#include <stdexcept>

#include "moea/borg.hpp"

namespace borg::moea {

/// Thrown by load_checkpoint on malformed or incompatible input.
class CheckpointError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Writes \p algorithm's full state to \p os.
void save_checkpoint(const BorgMoea& algorithm, std::ostream& os);

/// Restores state saved by save_checkpoint into \p algorithm, which must
/// be configured identically (same problem dimensions and operator
/// count). Throws CheckpointError on mismatch or parse failure.
void load_checkpoint(BorgMoea& algorithm, std::istream& is);

} // namespace borg::moea

#endif
