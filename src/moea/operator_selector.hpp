#ifndef BORG_MOEA_OPERATOR_SELECTOR_HPP
#define BORG_MOEA_OPERATOR_SELECTOR_HPP

/// \file operator_selector.hpp
/// Borg's auto-adaptive multi-operator selection.
///
/// Each operator i is chosen with probability
///     p_i = (c_i + zeta) / (sum_j c_j + K zeta)
/// where c_i is the number of current ε-archive members produced by operator
/// i and zeta = 1 guarantees every operator retains a nonzero chance of
/// being selected (so a currently unproductive operator can recover if the
/// search landscape shifts, e.g. after a restart). Probabilities are
/// recomputed every \p update_frequency offspring.

#include <cstddef>
#include <vector>

#include "moea/epsilon_archive.hpp"
#include "util/rng.hpp"

namespace borg::moea {

class OperatorSelector {
public:
    /// \p num_operators K >= 1; \p zeta > 0; \p update_frequency >= 1.
    OperatorSelector(std::size_t num_operators, double zeta = 1.0,
                     std::size_t update_frequency = 100);

    /// Picks an operator index by roulette over the current probabilities,
    /// refreshing them from \p archive every update_frequency calls.
    std::size_t select(const EpsilonBoxArchive& archive, util::Rng& rng);

    /// Forces a refresh on the next select() (called after restarts).
    void invalidate() noexcept { countdown_ = 0; }

    const std::vector<double>& probabilities() const noexcept {
        return probabilities_;
    }
    std::size_t num_operators() const noexcept { return probabilities_.size(); }

    /// Checkpoint support: calls until the next refresh, and wholesale
    /// restore of probabilities + countdown.
    std::size_t countdown() const noexcept { return countdown_; }
    void restore(std::vector<double> probabilities, std::size_t countdown);

private:
    void refresh(const EpsilonBoxArchive& archive);

    double zeta_;
    std::size_t update_frequency_;
    std::size_t countdown_ = 0;
    std::vector<double> probabilities_;
};

} // namespace borg::moea

#endif
