#include "moea/restart.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace borg::moea {

RestartController::RestartController(RestartParams params)
    : params_(params) {
    if (params_.window == 0)
        throw std::invalid_argument("restart: window must be >= 1");
    if (params_.gamma < 1.0)
        throw std::invalid_argument("restart: gamma must be >= 1");
    if (params_.min_population == 0 ||
        params_.max_population < params_.min_population)
        throw std::invalid_argument("restart: bad population limits");
}

std::size_t RestartController::desired_population(
    const EpsilonBoxArchive& archive) const {
    const double ideal =
        params_.gamma * static_cast<double>(std::max<std::size_t>(
                            archive.size(), std::size_t{1}));
    return std::clamp(static_cast<std::size_t>(std::llround(ideal)),
                      params_.min_population, params_.max_population);
}

bool RestartController::should_restart(const EpsilonBoxArchive& archive,
                                       const Population& population) {
    if (++evaluations_since_check_ < params_.window) return false;
    evaluations_since_check_ = 0;

    // Stagnation: no new ε-box occupied during the whole window.
    const std::uint64_t progress = archive.epsilon_progress();
    const bool stagnated = progress == progress_at_last_check_;
    progress_at_last_check_ = progress;
    if (stagnated) return true;

    // Ratio drift: population target far from γ times the archive size.
    const auto desired = static_cast<double>(desired_population(archive));
    const auto actual = static_cast<double>(population.target_size());
    return std::abs(actual - desired) > params_.ratio_tolerance * desired;
}

std::size_t RestartController::perform_restart(
    const EpsilonBoxArchive& archive, Population& population) {
    ++restarts_;
    const std::size_t new_size = desired_population(archive);

    population.clear();
    population.set_target_size(new_size);
    for (std::size_t i = 0; i < archive.size(); ++i) {
        if (population.size() >= new_size) break;
        population.append(archive[i]);
    }

    evaluations_since_check_ = 0;
    progress_at_last_check_ = archive.epsilon_progress();
    return new_size - population.size();
}

std::size_t RestartController::tournament_size(
    const Population& population) const {
    const double raw =
        params_.selection_ratio * static_cast<double>(population.target_size());
    return std::max<std::size_t>(2, static_cast<std::size_t>(std::ceil(raw)));
}

} // namespace borg::moea
