#ifndef BORG_MOEA_SELECTION_HPP
#define BORG_MOEA_SELECTION_HPP

/// \file selection.hpp
/// Borg's parent selection: for a k-parent operator, one parent is drawn
/// uniformly at random from the ε-dominance archive (anchoring search on the
/// current Pareto approximation) and the remaining k - 1 come from the
/// population by dominance tournaments.

#include <vector>

#include "moea/epsilon_archive.hpp"
#include "moea/operators.hpp"
#include "moea/population.hpp"

namespace borg::moea {

/// Selects parents for an operator of the given arity. The archive parent
/// is placed first (parents[0]) so parent-centric operators center on it;
/// when the archive is empty all parents come from the population.
/// Returns views into the archive/population — do not mutate either while
/// the views are live.
ParentView select_parents(std::size_t arity,
                          const EpsilonBoxArchive& archive,
                          const Population& population,
                          std::size_t tournament_size, util::Rng& rng);

} // namespace borg::moea

#endif
