#ifndef BORG_MOEA_EPSILON_ARCHIVE_HPP
#define BORG_MOEA_EPSILON_ARCHIVE_HPP

/// \file epsilon_archive.hpp
/// The ε-dominance archive (Laumanns et al. 2002) with the ε-progress
/// bookkeeping the Borg MOEA uses to detect search stagnation.
///
/// Objective space is partitioned into boxes of size ε_i per objective. The
/// archive keeps at most one solution per nondominated box: a candidate is
/// rejected if its box is Pareto-dominated by a member's box; it evicts any
/// members whose boxes it dominates; within the same box the solution
/// closer to the box's lower corner wins. This guarantees both convergence
/// and diversity with a bounded archive.
///
/// ε-progress: an insertion that occupies a *previously unoccupied* box.
/// Borg monitors the ε-progress count over a window of evaluations; no new
/// boxes means search has stagnated and a restart is triggered.
///
/// Constrained problems: only feasible solutions populate the ε-front.
/// Until the first feasible solution is found the archive holds exactly
/// one entry — the least-violating solution seen so far — and each
/// violation improvement counts as ε-progress, so restarts behave
/// sensibly during the feasibility-seeking phase.
///
/// Two implementations share this contract (DESIGN.md §12):
///
///   * ArchiveEngine — the production archive. Every insertion is resolved
///     through three indexes instead of a full scan: an exact FNV-1a hash
///     over the ε-box coordinates answers same-box contests in O(1); a
///     box-coordinate-sum-sorted index bounds and orders the dominance
///     scans (only members with a smaller sum can reject the candidate,
///     only members with a larger sum can be evicted by it, and scanning
///     the small-sum members first finds dominators early); per-objective
///     min/max bounds skip either scan entirely when the candidate is
///     outside the occupied range on any single axis. Box computation uses
///     reusable scratch, so the steady-state add path allocates nothing.
///   * NaiveArchive — the original O(n·m)-scan-per-add implementation,
///     kept verbatim as the reference oracle. Randomized equivalence tests
///     and bench/micro_archive pin the engine against it: identical
///     verdicts, membership, iteration order, and counters on any stream.
///
/// Both maintain the same iteration order (insertion order, stable under
/// eviction, same-box winners re-appended at the end), so the engine is a
/// drop-in replacement whose runs are bit-identical to the naive archive's.

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "moea/dominance.hpp"
#include "moea/solution.hpp"

namespace borg::moea {

/// Outcome of an attempted archive insertion.
enum class ArchiveAdd : std::uint8_t {
    kRejected,        ///< candidate was ε-dominated (or lost its box tie)
    kAddedNewBox,     ///< inserted into a box not previously occupied
    kReplacedSameBox, ///< won the within-box tiebreak against the incumbent
};

/// Tally of a batched add_all() commit, one count per ArchiveAdd outcome.
struct ArchiveBatchResult {
    std::size_t added_new_box = 0;
    std::size_t replaced_same_box = 0;
    std::size_t rejected = 0;

    std::size_t accepted() const noexcept {
        return added_new_box + replaced_same_box;
    }
};

/// The indexed ε-box archive. See the file comment for the index design;
/// the public surface is the historical EpsilonBoxArchive API plus
/// add_all() for generational (whole-batch) commits.
class ArchiveEngine {
public:
    /// \p epsilons must have one positive entry per objective.
    explicit ArchiveEngine(std::vector<double> epsilons);

    /// Attempts to insert \p solution (must be evaluated). The archive
    /// stores its own copy.
    ArchiveAdd add(const Solution& solution);

    /// Batched commit: offers every solution in order (identical to
    /// calling add() in a loop) and tallies the outcomes. This is the
    /// entry point for generational ingests and archive merges, where the
    /// caller cares about the batch outcome, not per-candidate verdicts.
    ArchiveBatchResult add_all(std::span<const Solution> batch);

    std::size_t size() const noexcept { return order_.size(); }
    bool empty() const noexcept { return order_.empty(); }

    const Solution& operator[](std::size_t i) const {
        return slot_solutions_[order_[i]];
    }

    /// All archived solutions (ε-Pareto set approximation).
    std::vector<Solution> solutions() const;

    /// All archived objective vectors, e.g. for metric computation.
    std::vector<std::vector<double>> objective_vectors() const;

    const std::vector<double>& epsilons() const noexcept { return epsilons_; }

    /// Monotone counter of ε-progress events (new boxes occupied) since
    /// construction. Restart logic diffs this across a window.
    std::uint64_t epsilon_progress() const noexcept { return progress_; }

    /// Monotone counter of accepted insertions (new box or same-box win).
    std::uint64_t improvements() const noexcept { return improvements_; }

    /// Number of archive members attributed to each operator index; used by
    /// the adaptive operator selector. \p num_operators sizes the result;
    /// members with kNoOperator are counted in no bucket.
    std::vector<std::size_t> operator_counts(std::size_t num_operators) const;

    void clear() noexcept;

    /// Checkpoint restore: installs \p solutions directly, preserving
    /// order — they are already mutually ε-nondominated, so replaying them
    /// through add() would only re-run (and, on corner-distance ties,
    /// misresolve) contests that were settled when they entered the
    /// archive. Overwrites the progress counters with the saved values.
    void restore(const std::vector<Solution>& solutions,
                 std::uint64_t progress, std::uint64_t improvements);

private:
    std::uint32_t allocate_slot();
    void release_slot(std::uint32_t slot);
    /// Installs an already-boxed candidate as a fresh member (no contests).
    void install(const Solution& solution);
    void erase_from_map(std::uint32_t slot);
    void refresh_axis_bounds();
    /// True iff no member can Pareto-dominate scratch_box_ (single-axis
    /// lower-bound test).
    bool below_axis_min() const;
    /// True iff scratch_box_ can Pareto-dominate no member (single-axis
    /// upper-bound test).
    bool above_axis_max() const;
    void reset_structures() noexcept;

    /// Box row of a slot inside the flat arena.
    std::span<const std::int64_t> box_of(std::uint32_t slot) const {
        return {box_arena_.data() +
                    static_cast<std::size_t>(slot) * epsilons_.size(),
                epsilons_.size()};
    }

    std::vector<double> epsilons_;

    // Member storage is struct-of-arrays over stable slot ids: slots never
    // move while a member lives, so the hash and sum indexes can address
    // them by id, and the dominance scans touch only the dense sum array
    // and the flat box arena — never the (heavy) Solution objects.
    std::vector<Solution> slot_solutions_;
    std::vector<std::int64_t> box_arena_;   ///< slot * m .. +m: ε-box coords
    std::vector<std::int64_t> slot_sum_;    ///< Σ box coords (dominance bound)
    std::vector<std::uint64_t> slot_hash_;  ///< box_key_hash of the box row
    std::vector<std::uint8_t> slot_evicted_; ///< transient compaction marks
    std::vector<std::uint32_t> free_slots_;

    /// Iteration order: order_[i] is the slot of the i-th member.
    std::vector<std::uint32_t> order_;
    /// Slots sorted ascending by slot_sum_; ties in arbitrary order.
    std::vector<std::uint32_t> by_sum_;
    /// Exact box index: FNV key → slot. A multimap because distinct boxes
    /// may share a hash; hits are confirmed by coordinate comparison.
    std::unordered_multimap<std::uint64_t, std::uint32_t> box_map_;
    /// Per-objective min/max box coordinate over current members.
    std::vector<std::int64_t> axis_min_;
    std::vector<std::int64_t> axis_max_;

    // Reusable scratch: the steady-state add path allocates nothing.
    std::vector<std::int64_t> scratch_box_;
    std::vector<std::uint32_t> scratch_evicted_; ///< slots marked this add

    std::uint64_t progress_ = 0;
    std::uint64_t improvements_ = 0;
};

/// The production archive type used throughout the algorithm.
using EpsilonBoxArchive = ArchiveEngine;

/// The original linear-scan archive, kept as the reference oracle the
/// engine is pinned against (same role as HvAlgo::naive for the
/// hypervolume engine). O(n·m) per add; allocates a box per insertion.
/// Do not "optimize" this class — its value is being obviously correct.
class NaiveArchive {
public:
    explicit NaiveArchive(std::vector<double> epsilons);

    ArchiveAdd add(const Solution& solution);
    ArchiveBatchResult add_all(std::span<const Solution> batch);

    std::size_t size() const noexcept { return entries_.size(); }
    bool empty() const noexcept { return entries_.empty(); }

    const Solution& operator[](std::size_t i) const {
        return entries_[i].solution;
    }

    std::vector<Solution> solutions() const;
    std::vector<std::vector<double>> objective_vectors() const;

    const std::vector<double>& epsilons() const noexcept { return epsilons_; }
    std::uint64_t epsilon_progress() const noexcept { return progress_; }
    std::uint64_t improvements() const noexcept { return improvements_; }

    std::vector<std::size_t> operator_counts(std::size_t num_operators) const;

    void clear() noexcept;

    void restore(const std::vector<Solution>& solutions,
                 std::uint64_t progress, std::uint64_t improvements);

private:
    struct Entry {
        Solution solution;
        std::vector<std::int64_t> box;
    };

    std::vector<double> epsilons_;
    std::vector<Entry> entries_;
    std::uint64_t progress_ = 0;
    std::uint64_t improvements_ = 0;
};

} // namespace borg::moea

#endif
