#ifndef BORG_MOEA_EPSILON_ARCHIVE_HPP
#define BORG_MOEA_EPSILON_ARCHIVE_HPP

/// \file epsilon_archive.hpp
/// The ε-dominance archive (Laumanns et al. 2002) with the ε-progress
/// bookkeeping the Borg MOEA uses to detect search stagnation.
///
/// Objective space is partitioned into boxes of size ε_i per objective. The
/// archive keeps at most one solution per nondominated box: a candidate is
/// rejected if its box is Pareto-dominated by a member's box; it evicts any
/// members whose boxes it dominates; within the same box the solution
/// closer to the box's lower corner wins. This guarantees both convergence
/// and diversity with a bounded archive.
///
/// ε-progress: an insertion that occupies a *previously unoccupied* box.
/// Borg monitors the ε-progress count over a window of evaluations; no new
/// boxes means search has stagnated and a restart is triggered.
///
/// Constrained problems: only feasible solutions populate the ε-front.
/// Until the first feasible solution is found the archive holds exactly
/// one entry — the least-violating solution seen so far — and each
/// violation improvement counts as ε-progress, so restarts behave
/// sensibly during the feasibility-seeking phase.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "moea/dominance.hpp"
#include "moea/solution.hpp"

namespace borg::moea {

/// Outcome of an attempted archive insertion.
enum class ArchiveAdd : std::uint8_t {
    kRejected,        ///< candidate was ε-dominated (or lost its box tie)
    kAddedNewBox,     ///< inserted into a box not previously occupied
    kReplacedSameBox, ///< won the within-box tiebreak against the incumbent
};

class EpsilonBoxArchive {
public:
    /// \p epsilons must have one positive entry per objective.
    explicit EpsilonBoxArchive(std::vector<double> epsilons);

    /// Attempts to insert \p solution (must be evaluated). The archive
    /// stores its own copy.
    ArchiveAdd add(const Solution& solution);

    std::size_t size() const noexcept { return entries_.size(); }
    bool empty() const noexcept { return entries_.empty(); }

    const Solution& operator[](std::size_t i) const {
        return entries_[i].solution;
    }

    /// All archived solutions (ε-Pareto set approximation).
    std::vector<Solution> solutions() const;

    /// All archived objective vectors, e.g. for metric computation.
    std::vector<std::vector<double>> objective_vectors() const;

    const std::vector<double>& epsilons() const noexcept { return epsilons_; }

    /// Monotone counter of ε-progress events (new boxes occupied) since
    /// construction. Restart logic diffs this across a window.
    std::uint64_t epsilon_progress() const noexcept { return progress_; }

    /// Monotone counter of accepted insertions (new box or same-box win).
    std::uint64_t improvements() const noexcept { return improvements_; }

    /// Number of archive members attributed to each operator index; used by
    /// the adaptive operator selector. \p num_operators sizes the result;
    /// members with kNoOperator are counted in no bucket.
    std::vector<std::size_t> operator_counts(std::size_t num_operators) const;

    void clear() noexcept;

    /// Checkpoint restore: re-inserts \p solutions (recomputing boxes) and
    /// overwrites the progress counters with the saved values.
    void restore(const std::vector<Solution>& solutions,
                 std::uint64_t progress, std::uint64_t improvements);

private:
    struct Entry {
        Solution solution;
        std::vector<std::int64_t> box;
    };

    std::vector<double> epsilons_;
    std::vector<Entry> entries_;
    std::uint64_t progress_ = 0;
    std::uint64_t improvements_ = 0;
};

} // namespace borg::moea

#endif
