#ifndef BORG_MOEA_NSGA2_HPP
#define BORG_MOEA_NSGA2_HPP

/// \file nsga2.hpp
/// A generational, synchronous baseline MOEA (NSGA-II: Deb et al. 2002).
///
/// The paper's Section VI-B contrasts the asynchronous Borg MOEA with the
/// classic synchronous master-slave model analyzed by Cantú-Paz, in which a
/// full generation of offspring must be evaluated before the algorithm can
/// proceed. This class supplies that algorithm family: it exposes the
/// generational protocol (produce a whole generation, receive a whole
/// generation) that the synchronous executor maps onto simulated workers.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "moea/operators.hpp"
#include "moea/solution.hpp"
#include "problems/problem.hpp"
#include "util/rng.hpp"

namespace borg::moea {

/// Protocol for generational algorithms driven by the synchronous executor.
class GenerationalMoea {
public:
    virtual ~GenerationalMoea() = default;

    /// Produces one full generation of unevaluated offspring (the first
    /// call returns the random initial population).
    virtual std::vector<Solution> next_generation() = 0;

    /// Ingests the evaluated generation (same order as produced).
    virtual void receive_generation(std::vector<Solution> generation) = 0;

    /// Current nondominated front (objective vectors).
    virtual std::vector<std::vector<double>> front() const = 0;

    virtual std::uint64_t evaluations() const = 0;
};

/// NSGA-II with SBX + polynomial mutation, binary tournament on
/// (rank, crowding distance), and elitist (mu + lambda) truncation.
class Nsga2 final : public GenerationalMoea {
public:
    Nsga2(const problems::Problem& problem, std::size_t population_size,
          std::uint64_t seed);

    std::vector<Solution> next_generation() override;
    void receive_generation(std::vector<Solution> generation) override;
    std::vector<std::vector<double>> front() const override;
    std::uint64_t evaluations() const override { return evaluations_; }

    std::size_t population_size() const noexcept { return population_size_; }
    const std::vector<Solution>& population() const noexcept {
        return population_;
    }

private:
    struct Ranked {
        Solution solution;
        std::size_t rank = 0;
        double crowding = 0.0;
    };

    /// Fast nondominated sort + crowding; truncates \p pool to the
    /// population size.
    void environmental_selection(std::vector<Solution> pool);
    const Solution& tournament(const std::vector<Ranked>& ranked);

    const problems::Problem& problem_;
    std::size_t population_size_;
    util::Rng rng_;
    Sbx sbx_;
    PolynomialMutation pm_;

    std::vector<Solution> population_; // kept in ranked order
    std::vector<Ranked> ranked_;
    bool initialized_ = false;
    std::uint64_t evaluations_ = 0;
};

/// Computes fronts by fast nondominated sorting; returns, per solution
/// index, its front rank (0 = nondominated). Exposed for tests and for the
/// metrics module.
std::vector<std::size_t> nondominated_rank(
    const std::vector<std::vector<double>>& objectives);

/// Crowding distances within one front (infinite at the extremes).
std::vector<double> crowding_distance(
    const std::vector<std::vector<double>>& objectives);

/// Runs a generational algorithm in serial for at most \p max_evaluations.
void run_serial_generational(
    GenerationalMoea& algorithm, const problems::Problem& problem,
    std::uint64_t max_evaluations,
    const std::function<void(std::uint64_t)>& on_generation = {});

} // namespace borg::moea

#endif
