#include "moea/solution.hpp"

#include <algorithm>

namespace borg::moea {

Solution random_solution(const problems::Problem& problem, util::Rng& rng) {
    Solution s;
    s.variables.resize(problem.num_variables());
    for (std::size_t i = 0; i < s.variables.size(); ++i)
        s.variables[i] =
            rng.uniform(problem.lower_bound(i), problem.upper_bound(i));
    return s;
}

void evaluate(const problems::Problem& problem, Solution& solution) {
    solution.objectives.resize(problem.num_objectives());
    solution.constraints.resize(problem.num_constraints());
    problem.evaluate(solution.variables, solution.objectives,
                     solution.constraints);
    solution.evaluated = true;
}

void clip_to_bounds(const problems::Problem& problem,
                    std::vector<double>& variables) {
    for (std::size_t i = 0; i < variables.size(); ++i)
        variables[i] = std::clamp(variables[i], problem.lower_bound(i),
                                  problem.upper_bound(i));
}

} // namespace borg::moea
