#include "moea/population.hpp"

#include <stdexcept>

namespace borg::moea {

Population::Population(std::size_t target_size) : target_size_(target_size) {
    if (target_size == 0)
        throw std::invalid_argument("population: target size must be >= 1");
    members_.reserve(target_size);
}

void Population::set_target_size(std::size_t target) {
    if (target == 0)
        throw std::invalid_argument("population: target size must be >= 1");
    target_size_ = target;
}

bool Population::inject(const Solution& offspring, util::Rng& rng) {
    if (!offspring.evaluated)
        throw std::invalid_argument("population: offspring not evaluated");

    if (members_.size() < target_size_) {
        members_.push_back(offspring);
        return true;
    }

    // One pass: collect members the offspring dominates and check whether
    // any member dominates the offspring. Replacement of a dominated
    // member takes precedence over rejection (both can hold at once when
    // the population carries mutually dominated members), keeping the rule
    // order-independent.
    std::vector<std::size_t> dominated;
    bool offspring_dominated = false;
    const double violation = offspring.total_violation();
    for (std::size_t i = 0; i < members_.size(); ++i) {
        switch (compare_constrained(offspring.objectives, violation,
                                    members_[i].objectives,
                                    members_[i].total_violation())) {
        case Dominance::kDominates:
            dominated.push_back(i);
            break;
        case Dominance::kDominatedBy:
            offspring_dominated = true;
            break;
        default:
            break;
        }
    }
    if (dominated.empty() && offspring_dominated) return false;
    if (!dominated.empty()) {
        const std::size_t victim =
            dominated[static_cast<std::size_t>(rng.below(dominated.size()))];
        members_[victim] = offspring;
        return true;
    }
    const auto victim = static_cast<std::size_t>(rng.below(members_.size()));
    members_[victim] = offspring;
    return true;
}

void Population::append(Solution solution) {
    members_.push_back(std::move(solution));
}

void Population::restore(std::vector<Solution> members, std::size_t target) {
    set_target_size(target);
    members_ = std::move(members);
}

const Solution& Population::random_member(util::Rng& rng) const {
    if (members_.empty())
        throw std::logic_error("population: random_member on empty population");
    return members_[static_cast<std::size_t>(rng.below(members_.size()))];
}

const Solution& Population::tournament_select(std::size_t tournament_size,
                                              util::Rng& rng) const {
    if (members_.empty())
        throw std::logic_error("population: tournament on empty population");
    if (tournament_size == 0) tournament_size = 1;

    const Solution* best =
        &members_[static_cast<std::size_t>(rng.below(members_.size()))];
    for (std::size_t round = 1; round < tournament_size; ++round) {
        const Solution& challenger =
            members_[static_cast<std::size_t>(rng.below(members_.size()))];
        if (compare_constrained(challenger.objectives,
                                challenger.total_violation(),
                                best->objectives,
                                best->total_violation()) ==
            Dominance::kDominates)
            best = &challenger;
    }
    return *best;
}

} // namespace borg::moea
