#include "moea/diagnostics.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

#include "util/table.hpp"

namespace borg::moea {

DiagnosticLog::DiagnosticLog(std::uint64_t window)
    : window_(window), next_checkpoint_(window) {
    if (window == 0)
        throw std::invalid_argument("diagnostics: window must be >= 1");
}

bool DiagnosticLog::observe(const BorgMoea& algorithm) {
    const std::uint64_t evals = algorithm.evaluations();
    const bool restarted = algorithm.restarts() != last_restarts_;
    if (evals < next_checkpoint_ && !restarted) return false;

    if (operator_names_.empty())
        operator_names_ = algorithm.operator_names();
    last_restarts_ = algorithm.restarts();
    while (next_checkpoint_ <= evals) next_checkpoint_ += window_;

    DiagnosticSnapshot snap;
    snap.evaluations = evals;
    snap.archive_size = algorithm.archive().size();
    snap.epsilon_progress = algorithm.archive().epsilon_progress();
    snap.population_target = algorithm.population().target_size();
    snap.restarts = algorithm.restarts();
    snap.operator_probabilities = algorithm.operator_probabilities();
    snapshots_.push_back(std::move(snap));
    return true;
}

namespace {

util::Table build_table(const std::vector<std::string>& names,
                        const std::vector<DiagnosticSnapshot>& snapshots) {
    std::vector<std::string> headers{"evals", "archive", "progress",
                                     "popsize", "restarts"};
    for (const auto& name : names) headers.push_back("p(" + name + ")");
    util::Table table(std::move(headers));
    for (const auto& snap : snapshots) {
        std::vector<std::string> row{
            std::to_string(snap.evaluations),
            std::to_string(snap.archive_size),
            std::to_string(snap.epsilon_progress),
            std::to_string(snap.population_target),
            std::to_string(snap.restarts)};
        for (const double p : snap.operator_probabilities)
            row.push_back(util::format_fixed(p, 3));
        table.add_row(std::move(row));
    }
    return table;
}

} // namespace

void DiagnosticLog::print(std::ostream& os) const {
    build_table(operator_names_, snapshots_).print(os);
}

void DiagnosticLog::print_csv(std::ostream& os) const {
    build_table(operator_names_, snapshots_).print_csv(os);
}

double DiagnosticLog::max_probability_swing() const {
    double swing = 0.0;
    for (std::size_t i = 1; i < snapshots_.size(); ++i) {
        const auto& prev = snapshots_[i - 1].operator_probabilities;
        const auto& cur = snapshots_[i].operator_probabilities;
        for (std::size_t k = 0; k < std::min(prev.size(), cur.size()); ++k)
            swing = std::max(swing, std::abs(cur[k] - prev[k]));
    }
    return swing;
}

} // namespace borg::moea
