#ifndef BORG_MOEA_POPULATION_HPP
#define BORG_MOEA_POPULATION_HPP

/// \file population.hpp
/// Borg's steady-state population with the ε-MOEA replacement rule.
///
/// The population has a target size that the restart machinery adapts at
/// runtime (γ times the archive size). A newly evaluated offspring is
/// injected one at a time:
///  * while the population is below target size it is simply appended;
///  * if it dominates one or more members, it replaces one of them at
///    random (this takes precedence even when some other member dominates
///    the offspring, keeping the rule independent of scan order);
///  * else, if it is dominated by any member, it is discarded;
///  * otherwise (mutually nondominated) it replaces a random member.
/// This keeps the population size constant without generational sorting —
/// the property that makes the algorithm natural to run asynchronously.

#include <cstddef>
#include <vector>

#include "moea/dominance.hpp"
#include "moea/solution.hpp"
#include "util/rng.hpp"

namespace borg::moea {

class Population {
public:
    explicit Population(std::size_t target_size);

    std::size_t size() const noexcept { return members_.size(); }
    bool empty() const noexcept { return members_.empty(); }

    std::size_t target_size() const noexcept { return target_size_; }
    /// Changes the target size; a shrink does not evict members (the
    /// steady-state replacement naturally converges back to target).
    void set_target_size(std::size_t target);

    const Solution& operator[](std::size_t i) const { return members_[i]; }

    /// Steady-state injection per the rule above. Returns true if the
    /// offspring entered the population.
    bool inject(const Solution& offspring, util::Rng& rng);

    /// Unconditional append (used for restart injection, which rebuilds the
    /// population from the archive).
    void append(Solution solution);

    void clear() noexcept { members_.clear(); }

    /// Uniform random member. Population must be non-empty.
    const Solution& random_member(util::Rng& rng) const;

    /// Tournament of \p tournament_size uniformly drawn members (with
    /// replacement), decided by Pareto dominance; among mutually
    /// nondominated contestants the earliest drawn wins (which, with random
    /// draws, is an unbiased choice). Population must be non-empty.
    const Solution& tournament_select(std::size_t tournament_size,
                                      util::Rng& rng) const;

    const std::vector<Solution>& members() const noexcept { return members_; }

    /// Checkpoint restore: replaces contents and target wholesale.
    void restore(std::vector<Solution> members, std::size_t target);

private:
    std::size_t target_size_;
    std::vector<Solution> members_;
};

} // namespace borg::moea

#endif
