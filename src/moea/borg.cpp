#include "moea/borg.hpp"

#include <stdexcept>

#include "moea/selection.hpp"

namespace borg::moea {

BorgParams BorgParams::for_problem(const problems::Problem& problem,
                                   double epsilon) {
    BorgParams params;
    params.epsilons.assign(problem.num_objectives(), epsilon);
    return params;
}

BorgMoea::BorgMoea(const problems::Problem& problem, BorgParams params,
                   std::uint64_t seed)
    : problem_(problem),
      params_(std::move(params)),
      rng_(seed),
      operators_(make_borg_operators(problem)),
      restart_mutation_(problem),
      archive_(params_.epsilons),
      population_(params_.initial_population_size),
      selector_(operators_.size(), params_.selector_zeta,
                params_.selector_update_frequency),
      controller_(params_.restart),
      operator_usage_(operators_.size(), 0) {
    if (params_.epsilons.size() != problem.num_objectives())
        throw std::invalid_argument("borg: epsilons size != num objectives");
    if (params_.initial_population_size == 0)
        throw std::invalid_argument("borg: initial population size == 0");
    if (params_.forced_operator >=
        static_cast<int>(operators_.size()))
        throw std::invalid_argument("borg: forced operator out of range");
}

std::vector<std::string> BorgMoea::operator_names() const {
    std::vector<std::string> names;
    names.reserve(operators_.size());
    for (const auto& op : operators_) names.push_back(op->name());
    return names;
}

std::size_t BorgMoea::pick_operator() {
    if (params_.forced_operator >= 0)
        return static_cast<std::size_t>(params_.forced_operator);
    if (!params_.enable_adaptation)
        return static_cast<std::size_t>(rng_.below(operators_.size()));
    return selector_.select(archive_, rng_);
}

Solution BorgMoea::make_restart_mutant() {
    --pending_restart_mutants_;
    const auto idx = static_cast<std::size_t>(rng_.below(archive_.size()));
    const Solution& seed = archive_[idx];
    Solution mutant;
    mutant.variables = restart_mutation_.apply(
        ParentView{std::span<const double>(seed.variables)}, rng_);
    // Restart mutants are injection, not operator search: they carry no
    // operator credit so they cannot skew the auto-adaptation.
    mutant.operator_index = kNoOperator;
    ++issued_;
    return mutant;
}

Solution BorgMoea::next_offspring() {
    // Initialization phase, and the fallback before any result has ever
    // come back (an asynchronous master with many workers can be asked for
    // far more offspring than the initial population before the first
    // result returns).
    if (issued_ < params_.initial_population_size || population_.empty()) {
        ++issued_;
        return random_solution(problem_, rng_);
    }

    if (pending_restart_mutants_ > 0 && !archive_.empty())
        return make_restart_mutant();

    const std::size_t op = pick_operator();
    Variation& variation = *operators_[op];

    // Parents are drawn with replacement, so operators receive their full
    // arity even while the population is still tiny (early asynchronous
    // starts); duplicated parents degenerate gracefully inside each
    // operator.
    const ParentView parents =
        select_parents(variation.arity(), archive_, population_,
                       controller_.tournament_size(population_), rng_);

    Solution offspring;
    offspring.variables = variation.apply(parents, rng_);
    offspring.operator_index = static_cast<int>(op);
    ++operator_usage_[op];
    ++issued_;
    return offspring;
}

void BorgMoea::receive(Solution solution) {
    if (!solution.evaluated)
        throw std::invalid_argument("borg: received unevaluated solution");
    ++received_;

    population_.inject(solution, rng_);
    archive_.add(solution);

    if (params_.enable_restarts &&
        controller_.should_restart(archive_, population_)) {
        pending_restart_mutants_ +=
            controller_.perform_restart(archive_, population_);
        selector_.invalidate();
    }
}

void run_serial(BorgMoea& algorithm, const problems::Problem& problem,
                std::uint64_t max_evaluations,
                const std::function<void(std::uint64_t)>& on_evaluation) {
    while (algorithm.evaluations() < max_evaluations) {
        Solution offspring = algorithm.next_offspring();
        evaluate(problem, offspring);
        algorithm.receive(std::move(offspring));
        if (on_evaluation) on_evaluation(algorithm.evaluations());
    }
}

} // namespace borg::moea
