#ifndef BORG_MOEA_DOMINANCE_HPP
#define BORG_MOEA_DOMINANCE_HPP

/// \file dominance.hpp
/// Pareto and ε-box dominance comparisons (minimization convention).

#include <cstdint>
#include <span>
#include <vector>

namespace borg::moea {

enum class Dominance : std::uint8_t {
    kDominates,    ///< a dominates b
    kDominatedBy,  ///< b dominates a
    kNondominated, ///< neither dominates
    kEqual,        ///< identical objective vectors
};

/// Pareto comparison of two objective vectors of equal length.
Dominance compare_pareto(std::span<const double> a, std::span<const double> b);

/// Constraint-domination (Deb 2000), Borg's rule for constrained problems:
/// a feasible solution dominates an infeasible one; two infeasible
/// solutions compare by total violation (smaller dominates); two feasible
/// solutions compare by Pareto dominance. Violations are the solutions'
/// total_violation() sums (0 = feasible).
Dominance compare_constrained(std::span<const double> a_objectives,
                              double a_violation,
                              std::span<const double> b_objectives,
                              double b_violation);

/// True iff \p a Pareto-dominates \p b.
bool dominates(std::span<const double> a, std::span<const double> b);

/// The ε-box index of an objective vector: floor(f_i / ε_i) per objective
/// (Laumanns et al. 2002). Two solutions in the same box are "ε-equal"; box
/// indices are compared by Pareto dominance to get ε-dominance.
std::vector<std::int64_t> epsilon_box(std::span<const double> objectives,
                                      std::span<const double> epsilons);

/// Allocation-free epsilon_box: writes the box indices into \p out, which
/// must already have objectives.size() elements. The archive engine's hot
/// path calls this with a reusable scratch buffer.
void epsilon_box_into(std::span<const double> objectives,
                      std::span<const double> epsilons,
                      std::span<std::int64_t> out);

/// FNV-1a over the raw bytes of a box-index vector: the exact hash key the
/// archive engine indexes ε-boxes by. Equal boxes always hash equally;
/// distinct boxes may collide, so lookups must confirm with a coordinate
/// comparison.
std::uint64_t box_key_hash(std::span<const std::int64_t> box);

/// Pareto comparison of two box-index vectors.
Dominance compare_boxes(std::span<const std::int64_t> a,
                        std::span<const std::int64_t> b);

/// Squared Euclidean distance from \p objectives to the lower corner of its
/// ε-box; the within-box tiebreaker (the solution nearer the corner wins).
double distance_to_box_corner(std::span<const double> objectives,
                              std::span<const std::int64_t> box,
                              std::span<const double> epsilons);

} // namespace borg::moea

#endif
