#include "moea/checkpoint.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace borg::moea {

namespace {

// v2: the archive record carries the ε vector so a checkpoint can never be
// silently re-boxed by a differently-configured loader.
constexpr const char* kMagic = "borg-checkpoint-v2";

void write_double(std::ostream& os, double value) {
    // max_digits10 decimal digits round-trip IEEE doubles exactly.
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.*g",
                  std::numeric_limits<double>::max_digits10, value);
    os << buf;
}

void write_solution(std::ostream& os, const Solution& s) {
    os << "solution " << s.variables.size() << ' ' << s.objectives.size()
       << ' ' << s.constraints.size() << ' ' << s.operator_index << ' '
       << (s.evaluated ? 1 : 0);
    for (const double v : s.variables) {
        os << ' ';
        write_double(os, v);
    }
    for (const double v : s.objectives) {
        os << ' ';
        write_double(os, v);
    }
    for (const double v : s.constraints) {
        os << ' ';
        write_double(os, v);
    }
    os << '\n';
}

[[noreturn]] void fail(const std::string& what) {
    throw CheckpointError("checkpoint: " + what);
}

template <typename T>
T read_value(std::istream& is, const char* what) {
    T value;
    if (!(is >> value)) fail(std::string("failed reading ") + what);
    return value;
}

void expect_token(std::istream& is, const std::string& expected) {
    std::string token;
    if (!(is >> token) || token != expected)
        fail("expected token '" + expected + "', got '" + token + "'");
}

Solution read_solution(std::istream& is) {
    expect_token(is, "solution");
    const auto nvars = read_value<std::size_t>(is, "variable count");
    const auto nobjs = read_value<std::size_t>(is, "objective count");
    const auto ncons = read_value<std::size_t>(is, "constraint count");
    Solution s;
    s.operator_index = read_value<int>(is, "operator index");
    s.evaluated = read_value<int>(is, "evaluated flag") != 0;
    s.variables.resize(nvars);
    s.objectives.resize(nobjs);
    s.constraints.resize(ncons);
    for (double& v : s.variables) v = read_value<double>(is, "variable");
    for (double& v : s.objectives) v = read_value<double>(is, "objective");
    for (double& v : s.constraints) v = read_value<double>(is, "constraint");
    return s;
}

} // namespace

void save_checkpoint(const BorgMoea& algorithm, std::ostream& os) {
    os << kMagic << '\n';
    os << "counters " << algorithm.issued_ << ' ' << algorithm.received_
       << ' ' << algorithm.pending_restart_mutants_ << '\n';

    os << "usage " << algorithm.operator_usage_.size();
    for (const auto u : algorithm.operator_usage_) os << ' ' << u;
    os << '\n';

    const util::Rng::State rng = algorithm.rng_.state();
    os << "rng " << rng.words[0] << ' ' << rng.words[1] << ' '
       << rng.words[2] << ' ' << rng.words[3] << ' ';
    write_double(os, rng.spare);
    os << ' ' << (rng.has_spare ? 1 : 0) << '\n';

    const auto& probabilities = algorithm.selector_.probabilities();
    os << "selector " << probabilities.size() << ' '
       << algorithm.selector_.countdown();
    for (const double p : probabilities) {
        os << ' ';
        write_double(os, p);
    }
    os << '\n';

    os << "controller " << algorithm.controller_.evaluations_since_check()
       << ' ' << algorithm.controller_.progress_at_last_check() << ' '
       << algorithm.controller_.restarts() << '\n';

    os << "population " << algorithm.population_.target_size() << ' '
       << algorithm.population_.size() << '\n';
    for (const Solution& s : algorithm.population_.members())
        write_solution(os, s);

    const auto& epsilons = algorithm.archive_.epsilons();
    os << "archive " << algorithm.archive_.size() << ' '
       << algorithm.archive_.epsilon_progress() << ' '
       << algorithm.archive_.improvements() << ' ' << epsilons.size();
    for (const double e : epsilons) {
        os << ' ';
        write_double(os, e);
    }
    os << '\n';
    for (std::size_t i = 0; i < algorithm.archive_.size(); ++i)
        write_solution(os, algorithm.archive_[i]);
}

void load_checkpoint(BorgMoea& algorithm, std::istream& is) {
    expect_token(is, kMagic);

    expect_token(is, "counters");
    const auto issued = read_value<std::uint64_t>(is, "issued");
    const auto received = read_value<std::uint64_t>(is, "received");
    const auto pending = read_value<std::size_t>(is, "pending mutants");

    expect_token(is, "usage");
    const auto usage_count = read_value<std::size_t>(is, "usage count");
    if (usage_count != algorithm.operator_usage_.size())
        fail("operator count mismatch (different ensemble?)");
    std::vector<std::uint64_t> usage(usage_count);
    for (auto& u : usage) u = read_value<std::uint64_t>(is, "usage");

    expect_token(is, "rng");
    util::Rng::State rng;
    for (auto& word : rng.words)
        word = read_value<std::uint64_t>(is, "rng word");
    rng.spare = read_value<double>(is, "rng spare");
    rng.has_spare = read_value<int>(is, "rng spare flag") != 0;

    expect_token(is, "selector");
    const auto prob_count = read_value<std::size_t>(is, "probability count");
    if (prob_count != algorithm.selector_.num_operators())
        fail("selector size mismatch");
    const auto countdown = read_value<std::size_t>(is, "countdown");
    std::vector<double> probabilities(prob_count);
    for (double& p : probabilities)
        p = read_value<double>(is, "probability");

    expect_token(is, "controller");
    const auto since = read_value<std::size_t>(is, "window position");
    const auto last_progress =
        read_value<std::uint64_t>(is, "progress marker");
    const auto restarts = read_value<std::uint64_t>(is, "restart count");

    expect_token(is, "population");
    const auto pop_target = read_value<std::size_t>(is, "population target");
    const auto pop_count = read_value<std::size_t>(is, "population size");
    std::vector<Solution> members;
    members.reserve(pop_count);
    for (std::size_t i = 0; i < pop_count; ++i)
        members.push_back(read_solution(is));

    expect_token(is, "archive");
    const auto archive_count = read_value<std::size_t>(is, "archive size");
    const auto progress = read_value<std::uint64_t>(is, "epsilon progress");
    const auto improvements = read_value<std::uint64_t>(is, "improvements");
    const auto epsilon_count = read_value<std::size_t>(is, "epsilon count");
    std::vector<double> epsilons(epsilon_count);
    for (double& e : epsilons) e = read_value<double>(is, "epsilon");
    std::vector<Solution> archived;
    archived.reserve(archive_count);
    for (std::size_t i = 0; i < archive_count; ++i)
        archived.push_back(read_solution(is));

    // ε mismatch would silently re-box (and possibly drop) the saved
    // archive under the loader's grid — refuse instead. Exact comparison
    // is correct: doubles round-trip exactly through write_double.
    if (epsilons != algorithm.archive_.epsilons())
        fail("archive epsilon mismatch (different BorgParams?)");

    // Validate dimensions against the configured problem before mutating.
    const std::size_t nvars = algorithm.problem_.num_variables();
    const std::size_t nobjs = algorithm.problem_.num_objectives();
    const std::size_t ncons = algorithm.problem_.num_constraints();
    for (const Solution& s : members)
        if (s.variables.size() != nvars || s.objectives.size() != nobjs ||
            s.constraints.size() != ncons)
            fail("population solution arity mismatch (different problem?)");
    for (const Solution& s : archived)
        if (s.variables.size() != nvars || s.objectives.size() != nobjs ||
            s.constraints.size() != ncons)
            fail("archive solution arity mismatch (different problem?)");

    // Everything parsed; commit.
    algorithm.issued_ = issued;
    algorithm.received_ = received;
    algorithm.pending_restart_mutants_ = pending;
    algorithm.operator_usage_ = std::move(usage);
    algorithm.rng_.set_state(rng);
    algorithm.selector_.restore(std::move(probabilities), countdown);
    algorithm.controller_.restore(since, last_progress, restarts);
    algorithm.population_.restore(std::move(members), pop_target);
    algorithm.archive_.restore(archived, progress, improvements);
}

} // namespace borg::moea
