#include "moea/dominance.hpp"

#include <cassert>
#include <cmath>

namespace borg::moea {

Dominance compare_pareto(std::span<const double> a,
                         std::span<const double> b) {
    assert(a.size() == b.size());
    bool a_better = false;
    bool b_better = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] < b[i]) a_better = true;
        else if (b[i] < a[i]) b_better = true;
        if (a_better && b_better) return Dominance::kNondominated;
    }
    if (a_better) return Dominance::kDominates;
    if (b_better) return Dominance::kDominatedBy;
    return Dominance::kEqual;
}

Dominance compare_constrained(std::span<const double> a_objectives,
                              double a_violation,
                              std::span<const double> b_objectives,
                              double b_violation) {
    if (a_violation > 0.0 || b_violation > 0.0) {
        if (a_violation < b_violation) return Dominance::kDominates;
        if (b_violation < a_violation) return Dominance::kDominatedBy;
        // Equal nonzero violations: fall through to objective comparison
        // so equally-infeasible solutions still exert selection pressure.
    }
    return compare_pareto(a_objectives, b_objectives);
}

bool dominates(std::span<const double> a, std::span<const double> b) {
    return compare_pareto(a, b) == Dominance::kDominates;
}

std::vector<std::int64_t> epsilon_box(std::span<const double> objectives,
                                      std::span<const double> epsilons) {
    std::vector<std::int64_t> box(objectives.size());
    epsilon_box_into(objectives, epsilons, box);
    return box;
}

void epsilon_box_into(std::span<const double> objectives,
                      std::span<const double> epsilons,
                      std::span<std::int64_t> out) {
    assert(objectives.size() == epsilons.size());
    assert(out.size() == objectives.size());
    for (std::size_t i = 0; i < objectives.size(); ++i)
        out[i] = static_cast<std::int64_t>(
            std::floor(objectives[i] / epsilons[i]));
}

std::uint64_t box_key_hash(std::span<const std::int64_t> box) {
    std::uint64_t hash = 0xcbf29ce484222325ull; // FNV offset basis
    for (const std::int64_t coord : box) {
        auto word = static_cast<std::uint64_t>(coord);
        for (int byte = 0; byte < 8; ++byte) {
            hash ^= (word >> (8 * byte)) & 0xffull;
            hash *= 0x100000001b3ull; // FNV prime
        }
    }
    return hash;
}

Dominance compare_boxes(std::span<const std::int64_t> a,
                        std::span<const std::int64_t> b) {
    assert(a.size() == b.size());
    bool a_better = false;
    bool b_better = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] < b[i]) a_better = true;
        else if (b[i] < a[i]) b_better = true;
        if (a_better && b_better) return Dominance::kNondominated;
    }
    if (a_better) return Dominance::kDominates;
    if (b_better) return Dominance::kDominatedBy;
    return Dominance::kEqual;
}

double distance_to_box_corner(std::span<const double> objectives,
                              std::span<const std::int64_t> box,
                              std::span<const double> epsilons) {
    assert(objectives.size() == box.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < objectives.size(); ++i) {
        const double corner = static_cast<double>(box[i]) * epsilons[i];
        const double d = objectives[i] - corner;
        sum += d * d;
    }
    return sum;
}

} // namespace borg::moea
