#ifndef BORG_MOEA_SOLUTION_HPP
#define BORG_MOEA_SOLUTION_HPP

/// \file solution.hpp
/// Candidate solutions: a decision-variable vector plus (once evaluated) an
/// objective vector, tagged with the search operator that produced it so the
/// archive can credit operators for auto-adaptation.

#include <cstdint>
#include <span>
#include <vector>

#include "problems/problem.hpp"
#include "util/rng.hpp"

namespace borg::moea {

/// Sentinel operator index for solutions not produced by a search operator
/// (random initialization, restart injection).
inline constexpr int kNoOperator = -1;

struct Solution {
    std::vector<double> variables;
    std::vector<double> objectives;
    /// Constraint violation magnitudes (empty for unconstrained problems;
    /// 0 entries mean satisfied).
    std::vector<double> constraints;
    int operator_index = kNoOperator;
    bool evaluated = false;

    Solution() = default;
    explicit Solution(std::vector<double> vars)
        : variables(std::move(vars)) {}

    /// Records the objective values computed by a worker.
    void set_objectives(std::span<const double> values) {
        objectives.assign(values.begin(), values.end());
        evaluated = true;
    }

    /// Sum of constraint violations; 0 means feasible.
    double total_violation() const {
        double total = 0.0;
        for (const double c : constraints)
            if (c > 0.0) total += c;
        return total;
    }

    bool feasible() const { return total_violation() == 0.0; }
};

/// Uniform random solution within the problem's bounds (unevaluated).
Solution random_solution(const problems::Problem& problem, util::Rng& rng);

/// Evaluates \p solution in place using \p problem.
void evaluate(const problems::Problem& problem, Solution& solution);

/// Clamps every variable into the problem's box (operators can overshoot).
void clip_to_bounds(const problems::Problem& problem,
                    std::vector<double>& variables);

} // namespace borg::moea

#endif
