#include "moea/operators.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/matrix.hpp"

namespace borg::moea {

namespace {

/// Centroid of the parent vectors.
std::vector<double> centroid(const ParentView& parents) {
    std::vector<double> g(parents[0].size(), 0.0);
    for (const auto& parent : parents)
        for (std::size_t i = 0; i < g.size(); ++i) g[i] += parent[i];
    const auto inv = 1.0 / static_cast<double>(parents.size());
    for (double& x : g) x *= inv;
    return g;
}

double norm(std::span<const double> v) {
    double sum = 0.0;
    for (const double x : v) sum += x * x;
    return std::sqrt(sum);
}

void require_parents(const ParentView& parents, std::size_t minimum,
                     const char* op) {
    if (parents.size() < minimum)
        throw std::invalid_argument(std::string(op) + ": needs at least " +
                                    std::to_string(minimum) + " parents");
    for (const auto& p : parents)
        if (p.size() != parents[0].size())
            throw std::invalid_argument(std::string(op) +
                                        ": parent arity mismatch");
}

} // namespace

void Variation::clip(std::vector<double>& variables) const {
    for (std::size_t i = 0; i < variables.size(); ++i)
        variables[i] = std::clamp(variables[i], problem_.lower_bound(i),
                                  problem_.upper_bound(i));
}

// --------------------------------------------------------------------- SBX

Sbx::Sbx(const problems::Problem& problem, double distribution_index,
         double swap_probability)
    : Variation(problem),
      distribution_index_(distribution_index),
      swap_probability_(swap_probability) {
    if (distribution_index <= 0.0)
        throw std::invalid_argument("SBX: distribution index <= 0");
}

std::vector<double> Sbx::apply(const ParentView& parents,
                               util::Rng& rng) const {
    require_parents(parents, 2, "SBX");
    const auto& p1 = parents[0];
    const auto& p2 = parents[1];
    std::vector<double> child(p1.begin(), p1.end());

    for (std::size_t i = 0; i < child.size(); ++i) {
        if (!rng.flip(swap_probability_)) continue;
        const double x1 = p1[i];
        const double x2 = p2[i];
        if (std::abs(x1 - x2) < 1e-14) continue;

        // Spread factor beta from the polynomial distribution.
        const double u = rng.uniform();
        double beta;
        if (u < 0.5)
            beta = std::pow(2.0 * u, 1.0 / (distribution_index_ + 1.0));
        else
            beta = std::pow(1.0 / (2.0 * (1.0 - u)),
                            1.0 / (distribution_index_ + 1.0));

        const double c1 = 0.5 * ((1.0 + beta) * x1 + (1.0 - beta) * x2);
        const double c2 = 0.5 * ((1.0 - beta) * x1 + (1.0 + beta) * x2);
        child[i] = rng.flip(0.5) ? c1 : c2;
    }
    clip(child);
    return child;
}

// ---------------------------------------------------------------------- DE

DifferentialEvolution::DifferentialEvolution(const problems::Problem& problem,
                                             double crossover_rate,
                                             double step_size)
    : Variation(problem),
      crossover_rate_(crossover_rate),
      step_size_(step_size) {}

std::vector<double> DifferentialEvolution::apply(const ParentView& parents,
                                                 util::Rng& rng) const {
    require_parents(parents, 4, "DE");
    const auto& base = parents[0];
    const auto& a = parents[1];
    const auto& b = parents[2];
    const auto& c = parents[3];
    std::vector<double> child(base.begin(), base.end());

    // Binomial crossover with a guaranteed index so the child differs from
    // the base parent.
    const std::size_t forced =
        static_cast<std::size_t>(rng.below(child.size()));
    for (std::size_t i = 0; i < child.size(); ++i) {
        if (i == forced || rng.flip(crossover_rate_))
            child[i] = a[i] + step_size_ * (b[i] - c[i]);
    }
    clip(child);
    return child;
}

// --------------------------------------------------------------------- PCX

Pcx::Pcx(const problems::Problem& problem, std::size_t num_parents, double eta,
         double zeta)
    : Variation(problem), num_parents_(num_parents), eta_(eta), zeta_(zeta) {
    if (num_parents < 2) throw std::invalid_argument("PCX: needs >= 2 parents");
}

std::vector<double> Pcx::apply(const ParentView& parents,
                               util::Rng& rng) const {
    require_parents(parents, 2, "PCX");
    const std::size_t n = parents[0].size();
    const std::size_t k = parents.size();

    const std::vector<double> g = centroid(parents);

    // Direction from the centroid to the index parent (parents[0], drawn
    // from the archive by Borg's parent selection).
    std::vector<double> d(n);
    for (std::size_t i = 0; i < n; ++i) d[i] = parents[0][i] - g[i];
    const double d_norm = norm(d);

    if (d_norm < 1e-14) {
        // Index parent coincides with the centroid (e.g. duplicated
        // parents): degenerate case, return the index parent unchanged and
        // let the downstream mutation supply variation.
        return {parents[0].begin(), parents[0].end()};
    }

    // Mean perpendicular distance of the other parents to the line (g, d),
    // and an orthonormal basis of their span orthogonal to d.
    std::vector<std::vector<double>> basis;
    basis.reserve(k);
    {
        std::vector<double> d_unit(d);
        for (double& x : d_unit) x /= d_norm;
        basis.push_back(std::move(d_unit));
    }
    double mean_perp = 0.0;
    std::size_t contributing = 0;
    for (std::size_t p = 1; p < k; ++p) {
        std::vector<double> diff(n);
        for (std::size_t i = 0; i < n; ++i) diff[i] = parents[p][i] - g[i];
        const double len = norm(diff);
        if (len < 1e-14) continue;
        double along = 0.0;
        for (std::size_t i = 0; i < n; ++i) along += diff[i] * basis[0][i];
        const double perp_sq = std::max(0.0, len * len - along * along);
        mean_perp += std::sqrt(perp_sq);
        ++contributing;
        basis.push_back(std::move(diff));
    }
    if (contributing > 0) mean_perp /= static_cast<double>(contributing);

    // Orthonormalize: element 0 is the d direction; the rest span the
    // parent subspace orthogonal to d (zero rows mark dependent parents).
    util::gram_schmidt(basis);

    std::vector<double> child(parents[0].begin(), parents[0].end());
    const double w_zeta = zeta_ * rng.gaussian();
    for (std::size_t i = 0; i < n; ++i) child[i] += w_zeta * d[i];
    for (std::size_t j = 1; j < basis.size(); ++j) {
        if (norm(basis[j]) < 0.5) continue; // dependent parent, zeroed row
        const double w_eta = eta_ * mean_perp * rng.gaussian();
        for (std::size_t i = 0; i < n; ++i) child[i] += w_eta * basis[j][i];
    }
    clip(child);
    return child;
}

// --------------------------------------------------------------------- SPX

Spx::Spx(const problems::Problem& problem, std::size_t num_parents,
         double expansion)
    : Variation(problem), num_parents_(num_parents), expansion_(expansion) {
    if (num_parents < 2) throw std::invalid_argument("SPX: needs >= 2 parents");
    if (expansion <= 0.0) throw std::invalid_argument("SPX: expansion <= 0");
}

std::vector<double> Spx::apply(const ParentView& parents,
                               util::Rng& rng) const {
    require_parents(parents, 2, "SPX");
    const std::size_t n = parents[0].size();
    const std::size_t k = parents.size();
    const std::vector<double> g = centroid(parents);

    // Expanded simplex vertices y_p = g + expansion (x_p - g).
    std::vector<std::vector<double>> y(k, std::vector<double>(n));
    for (std::size_t p = 0; p < k; ++p)
        for (std::size_t i = 0; i < n; ++i)
            y[p][i] = g[i] + expansion_ * (parents[p][i] - g[i]);

    // Tsutsui's recursive uniform sampling over the simplex.
    std::vector<double> c(n, 0.0);
    for (std::size_t p = 1; p < k; ++p) {
        const double r =
            std::pow(rng.uniform(), 1.0 / static_cast<double>(p + 1));
        for (std::size_t i = 0; i < n; ++i)
            c[i] = r * (y[p - 1][i] - y[p][i] + c[i]);
    }
    std::vector<double> child(n);
    for (std::size_t i = 0; i < n; ++i) child[i] = y[k - 1][i] + c[i];
    clip(child);
    return child;
}

// -------------------------------------------------------------------- UNDX

Undx::Undx(const problems::Problem& problem, std::size_t num_parents,
           double zeta, double eta)
    : Variation(problem), num_parents_(num_parents), zeta_(zeta), eta_(eta) {
    if (num_parents < 3) throw std::invalid_argument("UNDX: needs >= 3 parents");
}

std::vector<double> Undx::apply(const ParentView& parents,
                                util::Rng& rng) const {
    require_parents(parents, 3, "UNDX");
    const std::size_t n = parents[0].size();
    const std::size_t k = parents.size();
    const std::size_t m = k - 1; // primary parents; the last is secondary

    // Centroid of the primary parents.
    std::vector<double> g(n, 0.0);
    for (std::size_t p = 0; p < m; ++p)
        for (std::size_t i = 0; i < n; ++i) g[i] += parents[p][i];
    for (double& x : g) x /= static_cast<double>(m);

    // Primary difference vectors and their orthonormalized span.
    std::vector<std::vector<double>> diffs(m, std::vector<double>(n));
    for (std::size_t p = 0; p < m; ++p)
        for (std::size_t i = 0; i < n; ++i)
            diffs[p][i] = parents[p][i] - g[i];
    std::vector<std::vector<double>> basis = diffs;
    util::gram_schmidt(basis);

    std::vector<double> child = g;

    // Primary component: gaussian spread along each difference vector.
    for (std::size_t p = 0; p < m; ++p) {
        const double w = zeta_ * rng.gaussian();
        for (std::size_t i = 0; i < n; ++i) child[i] += w * diffs[p][i];
    }

    // Secondary component: isotropic gaussian in the orthogonal complement
    // of the primary subspace, scaled by the secondary parent's distance.
    std::vector<double> secondary(n);
    for (std::size_t i = 0; i < n; ++i)
        secondary[i] = parents[k - 1][i] - g[i];
    for (const auto& e : basis) {
        if (norm(e) < 0.5) continue;
        double dot = 0.0;
        for (std::size_t i = 0; i < n; ++i) dot += secondary[i] * e[i];
        for (std::size_t i = 0; i < n; ++i) secondary[i] -= dot * e[i];
    }
    const double d_perp = norm(secondary);
    if (d_perp > 1e-14) {
        std::vector<double> z(n);
        for (double& x : z) x = rng.gaussian();
        for (const auto& e : basis) {
            if (norm(e) < 0.5) continue;
            double dot = 0.0;
            for (std::size_t i = 0; i < n; ++i) dot += z[i] * e[i];
            for (std::size_t i = 0; i < n; ++i) z[i] -= dot * e[i];
        }
        const double scale = eta_ * d_perp / std::sqrt(static_cast<double>(m));
        for (std::size_t i = 0; i < n; ++i) child[i] += scale * z[i];
    }
    clip(child);
    return child;
}

// ---------------------------------------------------------------------- UM

UniformMutation::UniformMutation(const problems::Problem& problem,
                                 double probability)
    : Variation(problem),
      probability_(probability > 0.0
                       ? probability
                       : 1.0 / static_cast<double>(problem.num_variables())) {}

std::vector<double> UniformMutation::apply(const ParentView& parents,
                                           util::Rng& rng) const {
    require_parents(parents, 1, "UM");
    std::vector<double> child(parents[0].begin(), parents[0].end());
    for (std::size_t i = 0; i < child.size(); ++i) {
        if (rng.flip(probability_))
            child[i] =
                rng.uniform(problem_.lower_bound(i), problem_.upper_bound(i));
    }
    return child;
}

// ---------------------------------------------------------------------- PM

PolynomialMutation::PolynomialMutation(const problems::Problem& problem,
                                       double distribution_index,
                                       double probability)
    : Variation(problem),
      distribution_index_(distribution_index),
      probability_(probability > 0.0
                       ? probability
                       : 1.0 / static_cast<double>(problem.num_variables())) {
    if (distribution_index <= 0.0)
        throw std::invalid_argument("PM: distribution index <= 0");
}

std::vector<double> PolynomialMutation::apply(const ParentView& parents,
                                              util::Rng& rng) const {
    require_parents(parents, 1, "PM");
    std::vector<double> child(parents[0].begin(), parents[0].end());
    for (std::size_t i = 0; i < child.size(); ++i) {
        if (!rng.flip(probability_)) continue;
        const double lo = problem_.lower_bound(i);
        const double hi = problem_.upper_bound(i);
        const double range = hi - lo;
        if (range <= 0.0) continue;
        const double x = child[i];
        const double d1 = (x - lo) / range;
        const double d2 = (hi - x) / range;
        const double u = rng.uniform();
        const double mut_pow = 1.0 / (distribution_index_ + 1.0);
        double deltaq;
        if (u < 0.5) {
            const double xy = 1.0 - d1;
            const double val = 2.0 * u + (1.0 - 2.0 * u) *
                                             std::pow(xy, distribution_index_ + 1.0);
            deltaq = std::pow(val, mut_pow) - 1.0;
        } else {
            const double xy = 1.0 - d2;
            const double val = 2.0 * (1.0 - u) +
                               2.0 * (u - 0.5) *
                                   std::pow(xy, distribution_index_ + 1.0);
            deltaq = 1.0 - std::pow(val, mut_pow);
        }
        child[i] = x + deltaq * range;
    }
    clip(child);
    return child;
}

// --------------------------------------------------------------- composite

CompositeVariation::CompositeVariation(const problems::Problem& problem,
                                       std::unique_ptr<Variation> first,
                                       std::unique_ptr<Variation> second)
    : Variation(problem), first_(std::move(first)), second_(std::move(second)) {
    if (!first_ || !second_)
        throw std::invalid_argument("composite: null stage");
}

std::string CompositeVariation::name() const {
    return first_->name() + "+" + second_->name();
}

std::vector<double> CompositeVariation::apply(const ParentView& parents,
                                              util::Rng& rng) const {
    const std::vector<double> intermediate = first_->apply(parents, rng);
    const ParentView stage2{std::span<const double>(intermediate)};
    return second_->apply(stage2, rng);
}

// ---------------------------------------------------------------- ensemble

std::vector<std::unique_ptr<Variation>> make_borg_operators(
    const problems::Problem& problem) {
    std::vector<std::unique_ptr<Variation>> ops;
    auto with_pm = [&](std::unique_ptr<Variation> crossover) {
        return std::make_unique<CompositeVariation>(
            problem, std::move(crossover),
            std::make_unique<PolynomialMutation>(problem));
    };
    ops.push_back(with_pm(std::make_unique<Sbx>(problem)));
    ops.push_back(with_pm(std::make_unique<DifferentialEvolution>(problem)));
    ops.push_back(with_pm(std::make_unique<Pcx>(problem)));
    ops.push_back(with_pm(std::make_unique<Spx>(problem)));
    ops.push_back(with_pm(std::make_unique<Undx>(problem)));
    ops.push_back(std::make_unique<UniformMutation>(problem));
    return ops;
}

} // namespace borg::moea
