#include "moea/selection.hpp"

#include <stdexcept>

namespace borg::moea {

ParentView select_parents(std::size_t arity, const EpsilonBoxArchive& archive,
                          const Population& population,
                          std::size_t tournament_size, util::Rng& rng) {
    if (arity == 0) throw std::invalid_argument("select_parents: arity 0");
    if (population.empty())
        throw std::logic_error("select_parents: empty population");

    ParentView parents;
    parents.reserve(arity);

    if (!archive.empty()) {
        const auto idx = static_cast<std::size_t>(rng.below(archive.size()));
        parents.emplace_back(archive[idx].variables);
    } else {
        parents.emplace_back(
            population.tournament_select(tournament_size, rng).variables);
    }
    while (parents.size() < arity)
        parents.emplace_back(
            population.tournament_select(tournament_size, rng).variables);
    return parents;
}

} // namespace borg::moea
