#ifndef BORG_MOEA_BORG_HPP
#define BORG_MOEA_BORG_HPP

/// \file borg.hpp
/// A clean-room C++ implementation of the Borg MOEA (Hadka & Reed 2012),
/// structured for asynchronous master-slave execution.
///
/// The algorithm is exposed as a *master state machine* with two entry
/// points:
///
///   * next_offspring() — produce one (unevaluated) candidate: uniform
///     random during initialization, restart mutants while a restart is
///     refilling the population, otherwise an offspring from the
///     auto-adaptive operator ensemble;
///   * receive(solution) — ingest one evaluated candidate: steady-state
///     population injection, ε-archive update (which credits the producing
///     operator), and stagnation/restart checks.
///
/// The serial algorithm is the trivial loop {generate; evaluate; receive},
/// provided by run_serial(). The asynchronous executor calls
/// next_offspring() whenever a worker becomes free and receive() whenever a
/// result returns — the exact protocol of the paper's MPI implementation.
/// Because both modes share this class, any observed behavioural difference
/// between serial and parallel runs is attributable to evaluation *order*,
/// not to divergent implementations.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "moea/epsilon_archive.hpp"
#include "moea/operator_selector.hpp"
#include "moea/operators.hpp"
#include "moea/population.hpp"
#include "moea/restart.hpp"
#include "problems/problem.hpp"
#include "util/rng.hpp"

namespace borg::moea {

struct BorgParams {
    /// ε-box sizes, one per objective (required, all positive).
    std::vector<double> epsilons;
    std::size_t initial_population_size = 100;
    RestartParams restart;
    double selector_zeta = 1.0;
    std::size_t selector_update_frequency = 100;

    /// Ablation switches (DESIGN.md §7): disable restarts entirely, or
    /// bypass auto-adaptation. With adaptation disabled, operators are
    /// drawn uniformly unless forced_operator selects a single one.
    bool enable_restarts = true;
    bool enable_adaptation = true;
    int forced_operator = -1; ///< index into the ensemble, or -1

    /// Convenience: uniform ε for a problem's objective count.
    static BorgParams for_problem(const problems::Problem& problem,
                                  double epsilon);
};

class BorgMoea {
public:
    /// The problem must outlive the algorithm. Only bounds and dimensions
    /// are read here — evaluation happens outside (worker side).
    BorgMoea(const problems::Problem& problem, BorgParams params,
             std::uint64_t seed);

    BorgMoea(const BorgMoea&) = delete;
    BorgMoea& operator=(const BorgMoea&) = delete;

    /// Produces the next candidate to evaluate.
    Solution next_offspring();

    /// Ingests an evaluated candidate (objectives must be set).
    void receive(Solution solution);

    // --- inspection ---------------------------------------------------
    const ArchiveEngine& archive() const noexcept { return archive_; }
    const Population& population() const noexcept { return population_; }

    std::uint64_t issued() const noexcept { return issued_; }
    std::uint64_t evaluations() const noexcept { return received_; }
    std::uint64_t restarts() const noexcept { return controller_.restarts(); }
    std::size_t pending_restart_mutants() const noexcept {
        return pending_restart_mutants_;
    }

    std::size_t num_operators() const noexcept { return operators_.size(); }
    std::vector<std::string> operator_names() const;
    const std::vector<double>& operator_probabilities() const noexcept {
        return selector_.probabilities();
    }
    /// How many offspring each operator produced so far (lifetime counts).
    const std::vector<std::uint64_t>& operator_usage() const noexcept {
        return operator_usage_;
    }

    const BorgParams& params() const noexcept { return params_; }
    const problems::Problem& problem() const noexcept { return problem_; }

    /// Checkpointing (moea/checkpoint.hpp): serializes the complete
    /// algorithm state — RNG stream, population, archive, adaptive
    /// probabilities, restart counters — so a long run resumes exactly.
    friend void save_checkpoint(const BorgMoea& algorithm, std::ostream& os);
    friend void load_checkpoint(BorgMoea& algorithm, std::istream& is);

private:
    Solution make_restart_mutant();
    std::size_t pick_operator();

    const problems::Problem& problem_;
    BorgParams params_;
    util::Rng rng_;

    std::vector<std::unique_ptr<Variation>> operators_;
    UniformMutation restart_mutation_;
    ArchiveEngine archive_;
    Population population_;
    OperatorSelector selector_;
    RestartController controller_;

    std::uint64_t issued_ = 0;
    std::uint64_t received_ = 0;
    std::size_t pending_restart_mutants_ = 0;
    std::vector<std::uint64_t> operator_usage_;
};

/// Runs the serial Borg MOEA for \p max_evaluations function evaluations.
/// \p on_evaluation, if set, is called after every receive() with the
/// running evaluation count — the hook the trajectory recorder uses.
void run_serial(BorgMoea& algorithm, const problems::Problem& problem,
                std::uint64_t max_evaluations,
                const std::function<void(std::uint64_t)>& on_evaluation = {});

} // namespace borg::moea

#endif
