#include "moea/nsga2.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "moea/dominance.hpp"

namespace borg::moea {

std::vector<std::size_t> nondominated_rank(
    const std::vector<std::vector<double>>& objectives) {
    const std::size_t n = objectives.size();
    std::vector<std::size_t> rank(n, 0);
    std::vector<std::size_t> domination_count(n, 0);
    std::vector<std::vector<std::size_t>> dominated_by(n);

    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            switch (compare_pareto(objectives[i], objectives[j])) {
            case Dominance::kDominates:
                dominated_by[i].push_back(j);
                ++domination_count[j];
                break;
            case Dominance::kDominatedBy:
                dominated_by[j].push_back(i);
                ++domination_count[i];
                break;
            default:
                break;
            }
        }
    }

    std::vector<std::size_t> current;
    for (std::size_t i = 0; i < n; ++i)
        if (domination_count[i] == 0) current.push_back(i);

    std::size_t front = 0;
    while (!current.empty()) {
        std::vector<std::size_t> next;
        for (const std::size_t i : current) {
            rank[i] = front;
            for (const std::size_t j : dominated_by[i])
                if (--domination_count[j] == 0) next.push_back(j);
        }
        current = std::move(next);
        ++front;
    }
    return rank;
}

std::vector<double> crowding_distance(
    const std::vector<std::vector<double>>& objectives) {
    const std::size_t n = objectives.size();
    std::vector<double> distance(n, 0.0);
    if (n <= 2) {
        std::fill(distance.begin(), distance.end(),
                  std::numeric_limits<double>::infinity());
        return distance;
    }
    const std::size_t m = objectives[0].size();
    std::vector<std::size_t> order(n);
    for (std::size_t obj = 0; obj < m; ++obj) {
        for (std::size_t i = 0; i < n; ++i) order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return objectives[a][obj] < objectives[b][obj];
                  });
        const double lo = objectives[order.front()][obj];
        const double hi = objectives[order.back()][obj];
        distance[order.front()] = std::numeric_limits<double>::infinity();
        distance[order.back()] = std::numeric_limits<double>::infinity();
        if (hi - lo < 1e-300) continue;
        for (std::size_t k = 1; k + 1 < n; ++k)
            distance[order[k]] += (objectives[order[k + 1]][obj] -
                                   objectives[order[k - 1]][obj]) /
                                  (hi - lo);
    }
    return distance;
}

Nsga2::Nsga2(const problems::Problem& problem, std::size_t population_size,
             std::uint64_t seed)
    : problem_(problem),
      population_size_(population_size),
      rng_(seed),
      sbx_(problem),
      pm_(problem) {
    if (population_size < 2)
        throw std::invalid_argument("nsga2: population size < 2");
}

const Solution& Nsga2::tournament(const std::vector<Ranked>& ranked) {
    const auto pick = [&]() -> const Ranked& {
        return ranked[static_cast<std::size_t>(rng_.below(ranked.size()))];
    };
    const Ranked& a = pick();
    const Ranked& b = pick();
    if (a.rank != b.rank) return (a.rank < b.rank ? a : b).solution;
    return (a.crowding >= b.crowding ? a : b).solution;
}

std::vector<Solution> Nsga2::next_generation() {
    std::vector<Solution> offspring;
    offspring.reserve(population_size_);
    if (!initialized_) {
        for (std::size_t i = 0; i < population_size_; ++i)
            offspring.push_back(random_solution(problem_, rng_));
        return offspring;
    }
    while (offspring.size() < population_size_) {
        const Solution& p1 = tournament(ranked_);
        const Solution& p2 = tournament(ranked_);
        Solution child;
        const ParentView parents{std::span<const double>(p1.variables),
                                 std::span<const double>(p2.variables)};
        const std::vector<double> crossed = sbx_.apply(parents, rng_);
        child.variables =
            pm_.apply(ParentView{std::span<const double>(crossed)}, rng_);
        offspring.push_back(std::move(child));
    }
    return offspring;
}

void Nsga2::receive_generation(std::vector<Solution> generation) {
    for (const Solution& s : generation)
        if (!s.evaluated)
            throw std::invalid_argument("nsga2: unevaluated generation");
    evaluations_ += generation.size();

    std::vector<Solution> pool = std::move(generation);
    if (initialized_)
        pool.insert(pool.end(), population_.begin(), population_.end());
    environmental_selection(std::move(pool));
    initialized_ = true;
}

void Nsga2::environmental_selection(std::vector<Solution> pool) {
    std::vector<std::vector<double>> objs;
    objs.reserve(pool.size());
    for (const Solution& s : pool) objs.push_back(s.objectives);
    const std::vector<std::size_t> ranks = nondominated_rank(objs);

    // Group indices by front rank.
    std::size_t max_rank = 0;
    for (const std::size_t r : ranks) max_rank = std::max(max_rank, r);
    std::vector<std::vector<std::size_t>> fronts(max_rank + 1);
    for (std::size_t i = 0; i < ranks.size(); ++i)
        fronts[ranks[i]].push_back(i);

    population_.clear();
    ranked_.clear();
    for (std::size_t front = 0;
         front < fronts.size() && population_.size() < population_size_;
         ++front) {
        std::vector<std::vector<double>> front_objs;
        front_objs.reserve(fronts[front].size());
        for (const std::size_t i : fronts[front])
            front_objs.push_back(objs[i]);
        const std::vector<double> crowding = crowding_distance(front_objs);

        std::vector<std::size_t> order(fronts[front].size());
        for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return crowding[a] > crowding[b];
                  });
        for (const std::size_t k : order) {
            if (population_.size() >= population_size_) break;
            const std::size_t i = fronts[front][k];
            population_.push_back(pool[i]);
            ranked_.push_back(Ranked{pool[i], front, crowding[k]});
        }
    }
}

std::vector<std::vector<double>> Nsga2::front() const {
    std::vector<std::vector<double>> out;
    for (const Ranked& r : ranked_)
        if (r.rank == 0) out.push_back(r.solution.objectives);
    return out;
}

void run_serial_generational(
    GenerationalMoea& algorithm, const problems::Problem& problem,
    std::uint64_t max_evaluations,
    const std::function<void(std::uint64_t)>& on_generation) {
    while (algorithm.evaluations() < max_evaluations) {
        std::vector<Solution> generation = algorithm.next_generation();
        for (Solution& s : generation) evaluate(problem, s);
        algorithm.receive_generation(std::move(generation));
        if (on_generation) on_generation(algorithm.evaluations());
    }
}

} // namespace borg::moea
