#include "moea/operator_selector.hpp"

#include <stdexcept>

namespace borg::moea {

OperatorSelector::OperatorSelector(std::size_t num_operators, double zeta,
                                   std::size_t update_frequency)
    : zeta_(zeta),
      update_frequency_(update_frequency),
      probabilities_(num_operators,
                     1.0 / static_cast<double>(num_operators)) {
    if (num_operators == 0)
        throw std::invalid_argument("selector: no operators");
    if (!(zeta > 0.0)) throw std::invalid_argument("selector: zeta <= 0");
    if (update_frequency == 0)
        throw std::invalid_argument("selector: update frequency == 0");
}

void OperatorSelector::restore(std::vector<double> probabilities,
                               std::size_t countdown) {
    if (probabilities.size() != probabilities_.size())
        throw std::invalid_argument("selector restore: size mismatch");
    probabilities_ = std::move(probabilities);
    countdown_ = countdown;
}

void OperatorSelector::refresh(const EpsilonBoxArchive& archive) {
    const auto counts = archive.operator_counts(probabilities_.size());
    double total = 0.0;
    for (const std::size_t c : counts) total += static_cast<double>(c);
    const double denom =
        total + zeta_ * static_cast<double>(probabilities_.size());
    for (std::size_t i = 0; i < probabilities_.size(); ++i)
        probabilities_[i] = (static_cast<double>(counts[i]) + zeta_) / denom;
}

std::size_t OperatorSelector::select(const EpsilonBoxArchive& archive,
                                     util::Rng& rng) {
    if (countdown_ == 0) {
        refresh(archive);
        countdown_ = update_frequency_;
    }
    --countdown_;

    double u = rng.uniform();
    for (std::size_t i = 0; i < probabilities_.size(); ++i) {
        u -= probabilities_[i];
        if (u < 0.0) return i;
    }
    return probabilities_.size() - 1; // numerical tail
}

} // namespace borg::moea
