#ifndef BORG_OBS_METRICS_REGISTRY_HPP
#define BORG_OBS_METRICS_REGISTRY_HPP

/// \file metrics_registry.hpp
/// Named counters, gauges, and histograms for run instrumentation.
///
/// Executors that accept a MetricsRegistry* resolve the instruments they
/// need once per run (references are stable for the registry's lifetime)
/// and update them on the hot path with plain arithmetic — no lookups, no
/// locks. A null registry costs one pointer check at run start.
///
/// Instrument names use dotted paths ("async.queue_wait_seconds"); the
/// metric-to-paper-term mapping is documented in DESIGN.md §8.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace borg::obs {

/// Monotonically increasing integer metric.
class Counter {
public:
    void inc(std::uint64_t delta = 1) noexcept { value_ += delta; }
    std::uint64_t value() const noexcept { return value_; }

private:
    std::uint64_t value_ = 0;
};

/// Last-value metric.
class Gauge {
public:
    void set(double value) noexcept { value_ = value; }
    double value() const noexcept { return value_; }

private:
    double value_ = 0.0;
};

/// Streaming sample statistics (Welford); the summary form the paper's
/// timing tables need (count/mean/stddev/min/max) without storing samples.
class Histogram {
public:
    void observe(double x) noexcept;

    /// Absorbs another histogram's samples (Chan parallel mean/M2 merge).
    /// Lets sweep workers keep thread-local instruments and combine them
    /// afterwards with no ordering effects.
    void merge(const Histogram& other) noexcept;

    std::size_t count() const noexcept { return n_; }
    double mean() const noexcept { return n_ ? mean_ : 0.0; }
    double variance() const noexcept;
    double stddev() const noexcept;
    double min() const noexcept { return min_; }
    double max() const noexcept { return max_; }
    double sum() const noexcept { return mean_ * static_cast<double>(n_); }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Registry of named instruments. Instruments are created on first access
/// and live as long as the registry; returned references remain valid
/// across later insertions (node-based storage).
class MetricsRegistry {
public:
    Counter& counter(const std::string& name) { return counters_[name]; }
    Gauge& gauge(const std::string& name) { return gauges_[name]; }
    Histogram& histogram(const std::string& name) {
        return histograms_[name];
    }

    /// Read-only lookups; nullptr when the instrument was never touched.
    const Counter* find_counter(const std::string& name) const;
    const Gauge* find_gauge(const std::string& name) const;
    const Histogram* find_histogram(const std::string& name) const;

    std::size_t size() const noexcept {
        return counters_.size() + gauges_.size() + histograms_.size();
    }

    /// One JSON object with instruments sorted by name (deterministic).
    void write_json(std::ostream& out) const;

private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace borg::obs

#endif
