#ifndef BORG_OBS_TRACE_CHECK_HPP
#define BORG_OBS_TRACE_CHECK_HPP

/// \file trace_check.hpp
/// Recomputes run aggregates from a raw event trace and cross-validates
/// them against what a run reported.
///
/// This is the heart of the observability invariant: every summary
/// statistic an executor reports (master busy fraction, mean queue wait,
/// contention rate, applied T_F/T_A summaries, elapsed time) must be
/// derivable from the event stream alone. recompute() performs that
/// derivation using the *same* accumulation arithmetic as the executors
/// (streaming Welford means, sequential sums), so a consistent executor
/// matches to the last bit and any accounting drift is a hard failure.
/// cross_validate() compares the recomputed aggregates against a
/// ReportedRun — the executor-agnostic projection of a run result
/// (parallel/trace_check.hpp adapts VirtualRunResult) — and returns one
/// message per discrepancy. The `trace_check` bench driver runs the whole
/// loop end to end over every master policy.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/event_trace.hpp"

namespace borg::obs {

/// Aggregates recomputed from an event stream.
struct TraceAggregates {
    bool saw_run_end = false;
    double elapsed = 0.0;        ///< run_end value
    std::uint64_t target = 0;    ///< run_start count
    std::uint64_t completed = 0; ///< run_end count
    std::uint64_t results = 0;   ///< result events
    std::uint64_t worker_spawns = 0;
    std::uint64_t worker_failures = 0;

    std::uint64_t total_acquires = 0;     ///< acquire_request events
    std::uint64_t contended_acquires = 0; ///< requests with queue depth > 0
    std::uint64_t grants = 0;             ///< acquire_grant events

    double master_busy = 0.0; ///< Σ master_hold values, in event order
    double master_busy_fraction = 0.0; ///< master_busy / elapsed (0 if idle)
    double mean_queue_wait = 0.0; ///< Welford mean over acquire_grant waits

    std::uint64_t tf_count = 0;
    double tf_mean = 0.0;
    std::uint64_t tc_count = 0;
    double tc_mean = 0.0;
    std::uint64_t ta_count = 0;
    double ta_mean = 0.0;

    std::uint64_t final_archive_size = 0; ///< last archive_snapshot count

    double contention_rate() const noexcept {
        return total_acquires > 0
                   ? static_cast<double>(contended_acquires) /
                         static_cast<double>(total_acquires)
                   : 0.0;
    }
};

/// Single forward pass over the events. Works for any executor's trace;
/// kinds an executor never emits simply leave their aggregates at zero.
TraceAggregates recompute(std::span<const Event> events);

inline TraceAggregates recompute(const EventTrace& trace) {
    return recompute(std::span<const Event>(trace.events()));
}

/// What a run claims about itself, in trace-comparable terms.
struct ReportedRun {
    std::uint64_t evaluations = 0;
    std::uint64_t failed_workers = 0;
    bool completed_target = false;
    double elapsed = 0.0;
    double master_busy_fraction = 0.0;
    double mean_queue_wait = 0.0;
    double contention_rate = 0.0;
    /// Whether the run mirrored its T_F/T_A draws into the trace as
    /// sample events. Protocols that do not (the multi-master executor
    /// identifies work through per-island result/hold events instead)
    /// set this false and the sample-summary checks are skipped.
    bool check_samples = true;
    std::uint64_t tf_count = 0;
    double tf_mean = 0.0;
    std::uint64_t ta_count = 0;
    double ta_mean = 0.0;
};

/// Returns one human-readable message per discrepancy between \p reported
/// and the aggregates recomputed from \p trace; empty means consistent.
/// \p tol is the absolute tolerance for floating-point comparisons
/// (counts must match exactly).
std::vector<std::string> cross_validate(const EventTrace& trace,
                                        const ReportedRun& reported,
                                        double tol = 1e-9);

} // namespace borg::obs

#endif
