#include "obs/metrics_registry.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace borg::obs {

void Histogram::observe(double x) noexcept {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        if (x < min_) min_ = x;
        if (x > max_) max_ = x;
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void Histogram::merge(const Histogram& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * nb / (na + nb);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    n_ += other.n_;
}

double Histogram::variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Histogram::stddev() const noexcept { return std::sqrt(variance()); }

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram*
MetricsRegistry::find_histogram(const std::string& name) const {
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::write_json(std::ostream& out) const {
    char buf[256];
    out << "{";
    bool first = true;
    const auto sep = [&] {
        if (!first) out << ",";
        first = false;
    };
    for (const auto& [name, c] : counters_) {
        sep();
        std::snprintf(buf, sizeof(buf), "\"%s\":%llu", name.c_str(),
                      static_cast<unsigned long long>(c.value()));
        out << buf;
    }
    for (const auto& [name, g] : gauges_) {
        sep();
        std::snprintf(buf, sizeof(buf), "\"%s\":%.17g", name.c_str(),
                      g.value());
        out << buf;
    }
    for (const auto& [name, h] : histograms_) {
        sep();
        std::snprintf(buf, sizeof(buf),
                      "\"%s\":{\"count\":%llu,\"mean\":%.17g,"
                      "\"stddev\":%.17g,\"min\":%.17g,\"max\":%.17g}",
                      name.c_str(),
                      static_cast<unsigned long long>(h.count()), h.mean(),
                      h.stddev(), h.min(), h.max());
        out << buf;
    }
    out << "}\n";
}

} // namespace borg::obs
