#include "obs/trace_check.hpp"

#include <cmath>
#include <cstdio>

#include "stats/summary.hpp"

namespace borg::obs {

TraceAggregates recompute(std::span<const Event> events) {
    TraceAggregates agg;
    stats::Accumulator wait, tf, tc, ta;

    for (const Event& e : events) {
        switch (e.kind) {
        case EventKind::run_start:
            agg.target = e.count;
            break;
        case EventKind::worker_spawn:
            ++agg.worker_spawns;
            break;
        case EventKind::worker_failure:
            ++agg.worker_failures;
            break;
        case EventKind::acquire_request:
            ++agg.total_acquires;
            if (e.count > 0) ++agg.contended_acquires;
            break;
        case EventKind::acquire_grant:
            ++agg.grants;
            wait.add(e.value);
            break;
        case EventKind::release:
            break;
        case EventKind::master_hold:
            agg.master_busy += e.value;
            break;
        case EventKind::tf_sample:
            tf.add(e.value);
            break;
        case EventKind::tc_sample:
            tc.add(e.value);
            break;
        case EventKind::ta_sample:
            ta.add(e.value);
            break;
        case EventKind::result:
            ++agg.results;
            break;
        case EventKind::archive_snapshot:
            agg.final_archive_size = e.count;
            break;
        case EventKind::migration:
        case EventKind::generation:
            break;
        // Transport bookkeeping: orthogonal to the scheduling aggregates
        // (the TCP manager reports them via net.* metrics instead).
        case EventKind::net_connect:
        case EventKind::net_disconnect:
        case EventKind::net_reassign:
            break;
        case EventKind::run_end:
            agg.saw_run_end = true;
            agg.elapsed = e.value;
            agg.completed = e.count;
            break;
        }
    }

    agg.mean_queue_wait = wait.mean();
    agg.master_busy_fraction =
        agg.elapsed > 0.0 ? agg.master_busy / agg.elapsed : 0.0;
    agg.tf_count = tf.count();
    agg.tf_mean = tf.mean();
    agg.tc_count = tc.count();
    agg.tc_mean = tc.mean();
    agg.ta_count = ta.count();
    agg.ta_mean = ta.mean();
    return agg;
}

namespace {

void check_close(std::vector<std::string>& issues, const char* what,
                 double reported, double recomputed, double tol) {
    if (std::abs(reported - recomputed) <= tol) return;
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "%s: reported %.17g vs trace %.17g (|diff| %.3g > %.3g)",
                  what, reported, recomputed,
                  std::abs(reported - recomputed), tol);
    issues.emplace_back(buf);
}

void check_count(std::vector<std::string>& issues, const char* what,
                 std::uint64_t reported, std::uint64_t recomputed) {
    if (reported == recomputed) return;
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s: reported %llu vs trace %llu", what,
                  static_cast<unsigned long long>(reported),
                  static_cast<unsigned long long>(recomputed));
    issues.emplace_back(buf);
}

} // namespace

std::vector<std::string> cross_validate(const EventTrace& trace,
                                        const ReportedRun& reported,
                                        double tol) {
    std::vector<std::string> issues;
    const TraceAggregates agg = recompute(trace);

    if (!agg.saw_run_end) {
        issues.emplace_back("trace has no run_end event");
        return issues;
    }

    check_count(issues, "evaluations", reported.evaluations, agg.completed);
    check_count(issues, "failed_workers", reported.failed_workers,
                agg.worker_failures);
    check_close(issues, "elapsed", reported.elapsed, agg.elapsed, tol);
    check_close(issues, "master_busy_fraction",
                reported.master_busy_fraction, agg.master_busy_fraction,
                tol);
    check_close(issues, "mean_queue_wait", reported.mean_queue_wait,
                agg.mean_queue_wait, tol);
    check_close(issues, "contention_rate", reported.contention_rate,
                agg.contention_rate(), tol);
    if (reported.check_samples) {
        check_count(issues, "tf_applied.count", reported.tf_count,
                    agg.tf_count);
        check_close(issues, "tf_applied.mean", reported.tf_mean, agg.tf_mean,
                    tol);
        check_count(issues, "ta_applied.count", reported.ta_count,
                    agg.ta_count);
        check_close(issues, "ta_applied.mean", reported.ta_mean, agg.ta_mean,
                    tol);
    }

    // Internal trace consistency: the completed-target flag must agree
    // with the recomputed counts (>= because the sync executor's final
    // generation is not truncated and may overshoot the budget), and every
    // granted acquisition must have been requested.
    if (reported.completed_target != (agg.completed >= agg.target)) {
        issues.emplace_back(
            "completed_target flag disagrees with trace counts");
    }
    if (agg.grants > agg.total_acquires)
        issues.emplace_back("trace grants exceed acquire requests");

    return issues;
}

} // namespace borg::obs
