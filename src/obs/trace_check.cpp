#include "obs/trace_check.hpp"

#include "stats/summary.hpp"

namespace borg::obs {

TraceAggregates recompute(std::span<const Event> events) {
    TraceAggregates agg;
    stats::Accumulator wait, tf, tc, ta;

    for (const Event& e : events) {
        switch (e.kind) {
        case EventKind::run_start:
            agg.target = e.count;
            break;
        case EventKind::worker_spawn:
            ++agg.worker_spawns;
            break;
        case EventKind::worker_failure:
            ++agg.worker_failures;
            break;
        case EventKind::acquire_request:
            ++agg.total_acquires;
            if (e.count > 0) ++agg.contended_acquires;
            break;
        case EventKind::acquire_grant:
            ++agg.grants;
            wait.add(e.value);
            break;
        case EventKind::release:
            break;
        case EventKind::master_hold:
            agg.master_busy += e.value;
            break;
        case EventKind::tf_sample:
            tf.add(e.value);
            break;
        case EventKind::tc_sample:
            tc.add(e.value);
            break;
        case EventKind::ta_sample:
            ta.add(e.value);
            break;
        case EventKind::result:
            ++agg.results;
            break;
        case EventKind::archive_snapshot:
            agg.final_archive_size = e.count;
            break;
        case EventKind::migration:
        case EventKind::generation:
            break;
        case EventKind::run_end:
            agg.saw_run_end = true;
            agg.elapsed = e.value;
            agg.completed = e.count;
            break;
        }
    }

    agg.mean_queue_wait = wait.mean();
    agg.master_busy_fraction =
        agg.elapsed > 0.0 ? agg.master_busy / agg.elapsed : 0.0;
    agg.tf_count = tf.count();
    agg.tf_mean = tf.mean();
    agg.tc_count = tc.count();
    agg.tc_mean = tc.mean();
    agg.ta_count = ta.count();
    agg.ta_mean = ta.mean();
    return agg;
}

} // namespace borg::obs
