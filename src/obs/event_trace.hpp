#ifndef BORG_OBS_EVENT_TRACE_HPP
#define BORG_OBS_EVENT_TRACE_HPP

/// \file event_trace.hpp
/// Structured run observability: a typed event stream recorded by the DES
/// engine and the master-slave executors.
///
/// The paper's model terms (T_F, T_C, T_A, queue wait, master utilization —
/// Eqs. 1-4) are per-event quantities, but executors historically reported
/// only end-of-run aggregates, which is how fault-path and elapsed-time
/// accounting bugs went unnoticed. A TraceSink attached to a run receives
/// every typed event as it happens; the aggregates can then be *recomputed*
/// from the trace (trace_check.hpp) and cross-validated against what the
/// executor reported, turning the accounting into an enforced invariant.
///
/// Performance contract: emission sites hold a nullable TraceSink pointer
/// and skip all work when no sink is attached (a single branch), so
/// tracing costs nothing unless requested.
///
/// The JSONL export schema is documented in DESIGN.md §8; identical runs
/// (same seed, same config) produce byte-identical exports.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace borg::obs {

/// Event vocabulary. One enumerator per observable occurrence; the payload
/// fields of Event are interpreted per kind (see DESIGN.md §8).
enum class EventKind : std::uint8_t {
    run_start,       ///< value = processors, count = target evaluations
    worker_spawn,    ///< actor = worker index
    worker_failure,  ///< actor = worker index, count = offspring returned
    acquire_request, ///< actor = resource id, count = queue depth (0 = free)
    acquire_grant,   ///< actor = resource id, value = wait, count = 1 if queued
    release,         ///< actor = resource id, count = waiters before handoff
    master_hold,     ///< actor = resource id, value = busy seconds added
    tf_sample,       ///< actor = worker index, value = applied T_F
    tc_sample,       ///< actor = worker index, value = applied T_C
    ta_sample,       ///< actor = worker index, value = applied T_A
    result,          ///< actor = worker index, count = results so far
    archive_snapshot,///< count = archive size after the latest result
    migration,       ///< actor = destination island
    generation,      ///< count = results after this generation (sync)
    run_end,         ///< value = elapsed, count = results ingested
    // Real-transport events (TCP run manager, DESIGN.md §14).
    net_connect,     ///< actor = worker id, value = connect attempts spent
    net_disconnect,  ///< actor = worker id, count = 1 if graceful (Goodbye)
    net_reassign,    ///< actor = departed worker id, value = task seq,
                     ///< count = times the task had been dispatched
};

/// Stable lower-case name used in the JSONL export.
const char* to_string(EventKind kind) noexcept;

/// One trace record. `time` is virtual seconds for the DES executors and
/// seconds since run start for the physical thread executor. `actor` is a
/// worker index, island index, or resource id depending on the kind
/// (-1 when not applicable).
struct Event {
    EventKind kind = EventKind::run_start;
    double time = 0.0;
    std::int64_t actor = -1;
    double value = 0.0;
    std::uint64_t count = 0;
};

bool operator==(const Event& a, const Event& b) noexcept;

/// Destination for trace events. Implementations are invoked synchronously
/// from the emitting run loop; single-threaded unless noted otherwise (the
/// thread executor emits only from the master thread).
class TraceSink {
public:
    virtual ~TraceSink() = default;
    virtual void record(const Event& event) = 0;
};

/// The standard sink: an in-memory event vector with JSONL export.
class EventTrace final : public TraceSink {
public:
    void record(const Event& event) override { events_.push_back(event); }

    const std::vector<Event>& events() const noexcept { return events_; }
    std::size_t size() const noexcept { return events_.size(); }
    bool empty() const noexcept { return events_.empty(); }
    void clear() noexcept { events_.clear(); }

    /// Number of events of one kind (test/analysis convenience).
    std::size_t count(EventKind kind) const noexcept;

    /// One JSON object per line, schema per DESIGN.md §8. Deterministic
    /// formatting: identical event sequences produce identical bytes.
    void write_jsonl(std::ostream& out) const;
    std::string to_jsonl() const;

private:
    std::vector<Event> events_;
};

} // namespace borg::obs

#endif
