#include "obs/event_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace borg::obs {

const char* to_string(EventKind kind) noexcept {
    switch (kind) {
    case EventKind::run_start: return "run_start";
    case EventKind::worker_spawn: return "worker_spawn";
    case EventKind::worker_failure: return "worker_failure";
    case EventKind::acquire_request: return "acquire_request";
    case EventKind::acquire_grant: return "acquire_grant";
    case EventKind::release: return "release";
    case EventKind::master_hold: return "master_hold";
    case EventKind::tf_sample: return "tf_sample";
    case EventKind::tc_sample: return "tc_sample";
    case EventKind::ta_sample: return "ta_sample";
    case EventKind::result: return "result";
    case EventKind::archive_snapshot: return "archive_snapshot";
    case EventKind::migration: return "migration";
    case EventKind::generation: return "generation";
    case EventKind::run_end: return "run_end";
    case EventKind::net_connect: return "net_connect";
    case EventKind::net_disconnect: return "net_disconnect";
    case EventKind::net_reassign: return "net_reassign";
    }
    return "unknown";
}

bool operator==(const Event& a, const Event& b) noexcept {
    return a.kind == b.kind && a.time == b.time && a.actor == b.actor &&
           a.value == b.value && a.count == b.count;
}

std::size_t EventTrace::count(EventKind kind) const noexcept {
    return static_cast<std::size_t>(
        std::count_if(events_.begin(), events_.end(),
                      [kind](const Event& e) { return e.kind == kind; }));
}

void EventTrace::write_jsonl(std::ostream& out) const {
    // %.17g round-trips doubles exactly and is locale-independent here
    // (snprintf with the "C" numeric conventions), so two identical event
    // sequences serialize to identical bytes.
    char line[192];
    for (const Event& e : events_) {
        std::snprintf(line, sizeof(line),
                      "{\"k\":\"%s\",\"t\":%.17g,\"a\":%lld,\"v\":%.17g,"
                      "\"n\":%llu}\n",
                      to_string(e.kind), e.time,
                      static_cast<long long>(e.actor), e.value,
                      static_cast<unsigned long long>(e.count));
        out << line;
    }
}

std::string EventTrace::to_jsonl() const {
    std::ostringstream out;
    write_jsonl(out);
    return out.str();
}

} // namespace borg::obs
