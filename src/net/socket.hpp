#ifndef BORG_NET_SOCKET_HPP
#define BORG_NET_SOCKET_HPP

/// \file socket.hpp
/// Thin RAII wrappers over POSIX TCP sockets for the run manager
/// (DESIGN.md §14): a move-only connected Socket, a listening Listener
/// with ephemeral-port support, and a connect-with-backoff helper for
/// workers racing the master's bind.
///
/// Error philosophy: *peer* failures (reset, EOF, refused) are ordinary
/// run-time events for a run manager — they surface as return values so
/// the poll loop can reassign work; *local* failures (no fds, bad
/// address) throw SocketError. All sends use MSG_NOSIGNAL, so a dead peer
/// can never SIGPIPE the master.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>

namespace borg::net {

class SocketError : public std::runtime_error {
public:
    explicit SocketError(const std::string& what) : std::runtime_error(what) {}
};

/// One byte-stream connection. Move-only; closes on destruction.
class Socket {
public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket();
    Socket(Socket&& other) noexcept;
    Socket& operator=(Socket&& other) noexcept;
    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;

    /// One blocking connect attempt. Returns an invalid socket (not an
    /// exception) when the peer refuses or times out — callers that want
    /// persistence use connect_with_retry.
    static Socket connect_to(const std::string& host, std::uint16_t port);

    bool valid() const noexcept { return fd_ >= 0; }
    int fd() const noexcept { return fd_; }
    void close() noexcept;

    void set_nonblocking(bool on);
    void set_nodelay(bool on);

    /// Blocking send of the whole buffer. False when the peer is gone
    /// (EPIPE/ECONNRESET/...); never raises SIGPIPE.
    bool send_all(std::span<const std::uint8_t> bytes) noexcept;

    struct IoResult {
        std::size_t bytes = 0; ///< transferred now (0: would block)
        bool closed = false;   ///< peer EOF or hard error; stop using fd
    };

    /// Nonblocking-friendly partial send (for outbox draining).
    IoResult send_some(std::span<const std::uint8_t> bytes) noexcept;
    /// Nonblocking-friendly read into \p buffer.
    IoResult recv_some(std::span<std::uint8_t> buffer) noexcept;

private:
    int fd_ = -1;
};

/// A listening TCP socket bound to host:port. Port 0 binds an ephemeral
/// port; port() reports the actual one. accept_ready() never blocks.
class Listener {
public:
    Listener(const std::string& host, std::uint16_t port);
    int fd() const noexcept { return fd_; }
    std::uint16_t port() const noexcept { return port_; }
    void close() noexcept;
    ~Listener();
    Listener(const Listener&) = delete;
    Listener& operator=(const Listener&) = delete;

    /// Accepts one pending connection if any (nonblocking).
    std::optional<Socket> accept_ready();

private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

/// Worker-side connect with exponential backoff (initial_backoff_ms, x2
/// per attempt, capped at 1s) — workers routinely start before the master
/// finishes binding, so the retry loop is load-bearing, not cosmetic.
/// Throws SocketError after \p max_attempts failures. \p attempts_out
/// reports how many attempts were spent (the Hello message carries it so
/// the master can aggregate a net.connect_retries metric).
Socket connect_with_retry(const std::string& host, std::uint16_t port,
                          unsigned max_attempts, unsigned initial_backoff_ms,
                          std::uint32_t* attempts_out = nullptr);

} // namespace borg::net

#endif
