#ifndef BORG_NET_WIRE_HPP
#define BORG_NET_WIRE_HPP

/// \file wire.hpp
/// The framed wire protocol of the TCP run manager (DESIGN.md §14).
///
/// Every message travels as one length-prefixed frame:
///
///     magic   u32   0x42524757 ("BRGW")
///     version u16   kProtocolVersion
///     type    u16   MsgType
///     length  u32   payload bytes that follow (<= kMaxPayload)
///     payload ...   per-type fields, little-endian fixed-width
///
/// All integers are little-endian and assembled byte-by-byte, doubles are
/// bit_cast through u64 — no struct punning, no reinterpret_cast, so the
/// codec is UB-free under any input (the fuzz suite in
/// tests/test_net_protocol.cpp feeds it truncations, corruptions, and
/// random splits). Malformed input produces a typed ProtocolError; a
/// *short* read is not an error — FrameReader simply waits for more bytes.
///
/// The protocol is deliberately tiny: the master retains every dispatched
/// Solution, so a Task only carries decision variables and a Result only
/// carries objectives/constraints plus timing. Everything the archive
/// needs to stay byte-identical (operator tags, variable bits) never
/// leaves the master.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace borg::net {

inline constexpr std::uint32_t kMagic = 0x42524757u; // "BRGW"
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderBytes = 12;
/// Upper bound on a single payload; a length field beyond this is treated
/// as a protocol violation (it would otherwise let one bad peer make the
/// master buffer gigabytes).
inline constexpr std::uint32_t kMaxPayload = 1u << 24;
/// Caps on variable-length fields inside a payload.
inline constexpr std::uint32_t kMaxString = 4096;
inline constexpr std::uint32_t kMaxVector = 1u << 20;

/// What exactly was wrong with the bytes. `truncated` means a complete
/// frame's payload ended before its declared fields did; an incomplete
/// *stream* never errors (FrameReader waits).
enum class WireError : std::uint8_t {
    bad_magic,
    version_skew,
    bad_type,
    oversize,
    truncated,
    trailing_bytes,
    bad_payload,
};

const char* to_string(WireError code) noexcept;

class ProtocolError : public std::runtime_error {
public:
    ProtocolError(WireError code, const std::string& detail);
    WireError code() const noexcept { return code_; }

private:
    WireError code_;
};

enum class MsgType : std::uint16_t {
    hello = 1,     ///< worker -> master: self-description + problem signature
    hello_ack = 2, ///< master -> worker: accept/reject + id + heartbeat cadence
    task = 3,      ///< master -> worker: one evaluation
    result = 4,    ///< worker -> master: objectives/constraints + timing
    heartbeat = 5, ///< worker -> master: liveness
    goodbye = 6,   ///< worker -> master: graceful leave
    shutdown = 7,  ///< master -> worker: run complete, exit
};

// ------------------------------------------------------------- payloads

/// Worker self-description sent once after connect. The master rejects the
/// handshake unless the problem signature (name + dimensions) matches its
/// own, so a mis-launched worker fails loudly instead of corrupting a run.
struct Hello {
    std::uint32_t connect_attempts = 1; ///< retries spent reaching the master
    std::uint64_t pid = 0;
    std::uint32_t num_variables = 0;
    std::uint32_t num_objectives = 0;
    std::uint32_t num_constraints = 0;
    std::string problem;
    std::string worker_name;
};

struct HelloAck {
    bool accepted = false;
    std::uint32_t worker_id = 0;
    std::uint32_t heartbeat_interval_ms = 0;
    std::string reason; ///< empty when accepted
};

struct Task {
    std::uint64_t seq = 0;
    std::vector<double> variables;
};

struct Result {
    std::uint64_t seq = 0;
    std::uint32_t worker_id = 0;
    double eval_seconds = 0.0;
    /// Steady-clock nanoseconds at send time; comparable across processes
    /// on one host (CLOCK_MONOTONIC is system-wide on Linux), used for the
    /// measured T_C. Clamped to 0 when clocks disagree.
    std::uint64_t sent_at_ns = 0;
    std::vector<double> objectives;
    std::vector<double> constraints;
};

struct Heartbeat {
    std::uint32_t worker_id = 0;
    std::uint64_t results_done = 0;
};

struct Goodbye {
    std::uint32_t worker_id = 0;
};

struct Shutdown {};

using Message = std::variant<Hello, HelloAck, Task, Result, Heartbeat,
                             Goodbye, Shutdown>;

MsgType type_of(const Message& message) noexcept;

/// Serializes one message as a complete frame (header + payload).
std::vector<std::uint8_t> encode_frame(const Message& message);

/// Decodes one complete frame (header + payload, exactly). Throws
/// ProtocolError on any malformation, including trailing bytes.
Message decode_frame(std::span<const std::uint8_t> frame);

/// Incremental frame assembly over a byte stream. Feed whatever the socket
/// produced; next() yields complete messages and throws ProtocolError the
/// moment the stream is provably malformed (bad magic/version/type or an
/// oversize length — by then the connection is unrecoverable anyway).
class FrameReader {
public:
    void feed(std::span<const std::uint8_t> bytes);
    std::optional<Message> next();

    /// Bytes buffered but not yet consumed by a complete frame — nonzero
    /// at connection close means the peer died mid-frame.
    std::size_t pending() const noexcept { return buffer_.size() - start_; }

private:
    std::vector<std::uint8_t> buffer_;
    std::size_t start_ = 0; ///< consumed prefix, compacted lazily
};

} // namespace borg::net

#endif
