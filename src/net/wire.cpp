#include "net/wire.hpp"

#include <bit>
#include <cstring>

namespace borg::net {

const char* to_string(WireError code) noexcept {
    switch (code) {
    case WireError::bad_magic: return "bad_magic";
    case WireError::version_skew: return "version_skew";
    case WireError::bad_type: return "bad_type";
    case WireError::oversize: return "oversize";
    case WireError::truncated: return "truncated";
    case WireError::trailing_bytes: return "trailing_bytes";
    case WireError::bad_payload: return "bad_payload";
    }
    return "unknown";
}

ProtocolError::ProtocolError(WireError code, const std::string& detail)
    : std::runtime_error(std::string("net protocol: ") + to_string(code) +
                         (detail.empty() ? "" : ": " + detail)),
      code_(code) {}

namespace {

// ------------------------------------------------------------ primitives

class ByteWriter {
public:
    explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

    void u8(std::uint8_t v) { out_.push_back(v); }
    void u16(std::uint16_t v) {
        out_.push_back(static_cast<std::uint8_t>(v));
        out_.push_back(static_cast<std::uint8_t>(v >> 8));
    }
    void u32(std::uint32_t v) {
        for (int i = 0; i < 4; ++i)
            out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void u64(std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
    void str(const std::string& s) {
        u32(static_cast<std::uint32_t>(s.size()));
        out_.insert(out_.end(), s.begin(), s.end());
    }
    void vec(const std::vector<double>& v) {
        u32(static_cast<std::uint32_t>(v.size()));
        for (const double d : v) f64(d);
    }

private:
    std::vector<std::uint8_t>& out_;
};

class ByteReader {
public:
    explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

    std::uint8_t u8() {
        need(1);
        return bytes_[pos_++];
    }
    std::uint16_t u16() {
        need(2);
        const std::uint16_t v = static_cast<std::uint16_t>(
            bytes_[pos_] | (static_cast<std::uint16_t>(bytes_[pos_ + 1]) << 8));
        pos_ += 2;
        return v;
    }
    std::uint32_t u32() {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
        pos_ += 4;
        return v;
    }
    std::uint64_t u64() {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
        pos_ += 8;
        return v;
    }
    double f64() { return std::bit_cast<double>(u64()); }
    std::string str() {
        const std::uint32_t n = u32();
        if (n > kMaxString)
            throw ProtocolError(WireError::bad_payload, "string too long");
        need(n);
        std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
        pos_ += n;
        return s;
    }
    std::vector<double> vec() {
        const std::uint32_t n = u32();
        if (n > kMaxVector)
            throw ProtocolError(WireError::bad_payload, "vector too long");
        need(static_cast<std::size_t>(n) * 8);
        std::vector<double> v(n);
        for (std::uint32_t i = 0; i < n; ++i) v[i] = f64();
        return v;
    }

    std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

private:
    void need(std::size_t n) const {
        if (bytes_.size() - pos_ < n)
            throw ProtocolError(WireError::truncated,
                                "payload ends before its declared fields");
    }

    std::span<const std::uint8_t> bytes_;
    std::size_t pos_ = 0;
};

// -------------------------------------------------------- per-type codecs

void encode_payload(ByteWriter& w, const Hello& m) {
    w.u32(m.connect_attempts);
    w.u64(m.pid);
    w.u32(m.num_variables);
    w.u32(m.num_objectives);
    w.u32(m.num_constraints);
    w.str(m.problem);
    w.str(m.worker_name);
}
Hello decode_hello(ByteReader& r) {
    Hello m;
    m.connect_attempts = r.u32();
    m.pid = r.u64();
    m.num_variables = r.u32();
    m.num_objectives = r.u32();
    m.num_constraints = r.u32();
    m.problem = r.str();
    m.worker_name = r.str();
    return m;
}

void encode_payload(ByteWriter& w, const HelloAck& m) {
    w.u8(m.accepted ? 1 : 0);
    w.u32(m.worker_id);
    w.u32(m.heartbeat_interval_ms);
    w.str(m.reason);
}
HelloAck decode_hello_ack(ByteReader& r) {
    HelloAck m;
    const std::uint8_t flag = r.u8();
    if (flag > 1)
        throw ProtocolError(WireError::bad_payload, "accepted flag not 0/1");
    m.accepted = flag == 1;
    m.worker_id = r.u32();
    m.heartbeat_interval_ms = r.u32();
    m.reason = r.str();
    return m;
}

void encode_payload(ByteWriter& w, const Task& m) {
    w.u64(m.seq);
    w.vec(m.variables);
}
Task decode_task(ByteReader& r) {
    Task m;
    m.seq = r.u64();
    m.variables = r.vec();
    return m;
}

void encode_payload(ByteWriter& w, const Result& m) {
    w.u64(m.seq);
    w.u32(m.worker_id);
    w.f64(m.eval_seconds);
    w.u64(m.sent_at_ns);
    w.vec(m.objectives);
    w.vec(m.constraints);
}
Result decode_result(ByteReader& r) {
    Result m;
    m.seq = r.u64();
    m.worker_id = r.u32();
    m.eval_seconds = r.f64();
    m.sent_at_ns = r.u64();
    m.objectives = r.vec();
    m.constraints = r.vec();
    return m;
}

void encode_payload(ByteWriter& w, const Heartbeat& m) {
    w.u32(m.worker_id);
    w.u64(m.results_done);
}
Heartbeat decode_heartbeat(ByteReader& r) {
    Heartbeat m;
    m.worker_id = r.u32();
    m.results_done = r.u64();
    return m;
}

void encode_payload(ByteWriter& w, const Goodbye& m) { w.u32(m.worker_id); }
Goodbye decode_goodbye(ByteReader& r) {
    Goodbye m;
    m.worker_id = r.u32();
    return m;
}

void encode_payload(ByteWriter&, const Shutdown&) {}

Message decode_payload(MsgType type, std::span<const std::uint8_t> payload) {
    ByteReader r(payload);
    Message m;
    switch (type) {
    case MsgType::hello: m = decode_hello(r); break;
    case MsgType::hello_ack: m = decode_hello_ack(r); break;
    case MsgType::task: m = decode_task(r); break;
    case MsgType::result: m = decode_result(r); break;
    case MsgType::heartbeat: m = decode_heartbeat(r); break;
    case MsgType::goodbye: m = decode_goodbye(r); break;
    case MsgType::shutdown: m = Shutdown{}; break;
    default:
        throw ProtocolError(WireError::bad_type, "unknown message type");
    }
    if (r.remaining() != 0)
        throw ProtocolError(WireError::trailing_bytes,
                            "payload longer than its fields");
    return m;
}

/// Validated header. Throws on everything except "not enough bytes yet"
/// (the caller checks size >= kHeaderBytes first).
struct Header {
    MsgType type;
    std::uint32_t length;
};

Header decode_header(std::span<const std::uint8_t> bytes) {
    ByteReader r(bytes);
    const std::uint32_t magic = r.u32();
    if (magic != kMagic)
        throw ProtocolError(WireError::bad_magic, "frame magic mismatch");
    const std::uint16_t version = r.u16();
    if (version != kProtocolVersion)
        throw ProtocolError(WireError::version_skew,
                            "peer speaks protocol version " +
                                std::to_string(version) + ", expected " +
                                std::to_string(kProtocolVersion));
    const std::uint16_t raw_type = r.u16();
    if (raw_type < static_cast<std::uint16_t>(MsgType::hello) ||
        raw_type > static_cast<std::uint16_t>(MsgType::shutdown))
        throw ProtocolError(WireError::bad_type,
                            "message type " + std::to_string(raw_type));
    const std::uint32_t length = r.u32();
    if (length > kMaxPayload)
        throw ProtocolError(WireError::oversize,
                            "payload length " + std::to_string(length));
    return {static_cast<MsgType>(raw_type), length};
}

} // namespace

MsgType type_of(const Message& message) noexcept {
    return std::visit(
        [](const auto& m) {
            using T = std::decay_t<decltype(m)>;
            if constexpr (std::is_same_v<T, Hello>) return MsgType::hello;
            else if constexpr (std::is_same_v<T, HelloAck>)
                return MsgType::hello_ack;
            else if constexpr (std::is_same_v<T, Task>) return MsgType::task;
            else if constexpr (std::is_same_v<T, Result>)
                return MsgType::result;
            else if constexpr (std::is_same_v<T, Heartbeat>)
                return MsgType::heartbeat;
            else if constexpr (std::is_same_v<T, Goodbye>)
                return MsgType::goodbye;
            else return MsgType::shutdown;
        },
        message);
}

std::vector<std::uint8_t> encode_frame(const Message& message) {
    std::vector<std::uint8_t> out;
    out.reserve(64);
    ByteWriter w(out);
    w.u32(kMagic);
    w.u16(kProtocolVersion);
    w.u16(static_cast<std::uint16_t>(type_of(message)));
    w.u32(0); // payload length, patched below
    std::visit([&](const auto& m) { encode_payload(w, m); }, message);
    const auto payload = static_cast<std::uint32_t>(out.size() - kHeaderBytes);
    for (int i = 0; i < 4; ++i)
        out[8 + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(payload >> (8 * i));
    return out;
}

Message decode_frame(std::span<const std::uint8_t> frame) {
    if (frame.size() < kHeaderBytes)
        throw ProtocolError(WireError::truncated, "frame shorter than header");
    const Header header = decode_header(frame);
    if (frame.size() - kHeaderBytes < header.length)
        throw ProtocolError(WireError::truncated,
                            "frame shorter than its declared payload");
    if (frame.size() - kHeaderBytes > header.length)
        throw ProtocolError(WireError::trailing_bytes,
                            "bytes after the declared payload");
    return decode_payload(header.type, frame.subspan(kHeaderBytes));
}

void FrameReader::feed(std::span<const std::uint8_t> bytes) {
    // Compact once the consumed prefix dominates, so a long-lived
    // connection doesn't grow its buffer forever.
    if (start_ > 4096 && start_ > buffer_.size() / 2) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<std::ptrdiff_t>(start_));
        start_ = 0;
    }
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<Message> FrameReader::next() {
    const std::size_t available = buffer_.size() - start_;
    if (available < kHeaderBytes) return std::nullopt;
    const std::span<const std::uint8_t> view(buffer_.data() + start_,
                                             available);
    const Header header = decode_header(view); // throws on malformed header
    if (available < kHeaderBytes + header.length) return std::nullopt;
    Message m = decode_payload(
        header.type, view.subspan(kHeaderBytes, header.length));
    start_ += kHeaderBytes + header.length;
    return m;
}

} // namespace borg::net
