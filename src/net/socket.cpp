#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <utility>

namespace borg::net {

namespace {

std::string errno_text(const char* op) {
    return std::string(op) + ": " + std::strerror(errno);
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        throw SocketError("bad IPv4 address: " + host);
    return addr;
}

} // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
}

void Socket::close() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Socket Socket::connect_to(const std::string& host, std::uint16_t port) {
    const sockaddr_in addr = make_addr(host, port);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw SocketError(errno_text("socket"));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return Socket{}; // refused / unreachable: caller decides to retry
    }
    return Socket{fd};
}

void Socket::set_nonblocking(bool on) {
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags < 0) throw SocketError(errno_text("fcntl(F_GETFL)"));
    const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
    if (::fcntl(fd_, F_SETFL, next) < 0)
        throw SocketError(errno_text("fcntl(F_SETFL)"));
}

void Socket::set_nodelay(bool on) {
    const int flag = on ? 1 : 0;
    if (::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &flag, sizeof(flag)) != 0)
        throw SocketError(errno_text("setsockopt(TCP_NODELAY)"));
}

bool Socket::send_all(std::span<const std::uint8_t> bytes) noexcept {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

Socket::IoResult Socket::send_some(std::span<const std::uint8_t> bytes) noexcept {
    for (;;) {
        const ssize_t n =
            ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
        if (n >= 0) return {static_cast<std::size_t>(n), false};
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return {0, false};
        return {0, true};
    }
}

Socket::IoResult Socket::recv_some(std::span<std::uint8_t> buffer) noexcept {
    for (;;) {
        const ssize_t n = ::recv(fd_, buffer.data(), buffer.size(), 0);
        if (n > 0) return {static_cast<std::size_t>(n), false};
        if (n == 0) return {0, true}; // orderly EOF
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return {0, false};
        return {0, true};
    }
}

Listener::Listener(const std::string& host, std::uint16_t port) {
    const sockaddr_in addr = make_addr(host, port);
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw SocketError(errno_text("socket"));
    const int reuse = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
        const std::string what = errno_text("bind");
        ::close(fd_);
        fd_ = -1;
        throw SocketError(what);
    }
    if (::listen(fd_, 64) != 0) {
        const std::string what = errno_text("listen");
        ::close(fd_);
        fd_ = -1;
        throw SocketError(what);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
        const std::string what = errno_text("getsockname");
        ::close(fd_);
        fd_ = -1;
        throw SocketError(what);
    }
    port_ = ntohs(bound.sin_port);
    // Accepts must never block the poll loop.
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
}

void Listener::close() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Listener::~Listener() { close(); }

std::optional<Socket> Listener::accept_ready() {
    if (fd_ < 0) return std::nullopt;
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
            errno == ECONNABORTED)
            return std::nullopt;
        throw SocketError(errno_text("accept"));
    }
    return Socket{fd};
}

Socket connect_with_retry(const std::string& host, std::uint16_t port,
                          unsigned max_attempts, unsigned initial_backoff_ms,
                          std::uint32_t* attempts_out) {
    unsigned backoff_ms = initial_backoff_ms == 0 ? 1 : initial_backoff_ms;
    for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
        Socket s = Socket::connect_to(host, port);
        if (s.valid()) {
            if (attempts_out) *attempts_out = attempt;
            return s;
        }
        if (attempt == max_attempts) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        backoff_ms = backoff_ms >= 500 ? 1000 : backoff_ms * 2;
    }
    throw SocketError("connect to " + host + ":" + std::to_string(port) +
                      " failed after " + std::to_string(max_attempts) +
                      " attempts");
}

} // namespace borg::net
