#ifndef BORG_UTIL_CLI_HPP
#define BORG_UTIL_CLI_HPP

/// \file cli.hpp
/// Minimal command-line flag parsing for the benchmark drivers and examples.
/// Flags take the forms "--name value" or "--name=value"; bare "--name" is a
/// boolean switch. Unknown flags are an error so typos do not silently run
/// the default experiment.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace borg::util {

class CliArgs {
public:
    /// Parses argv. Throws std::invalid_argument on malformed input.
    CliArgs(int argc, const char* const* argv);

    bool has(const std::string& name) const;

    std::string get(const std::string& name, const std::string& fallback) const;

    /// Strict integer: the whole value must parse ("64abc" and "" are
    /// errors, not 64), with std::invalid_argument naming the flag.
    std::int64_t get_int(const std::string& name, std::int64_t fallback) const;

    /// get_int that additionally rejects negative values — the right
    /// accessor for counts such as --jobs, --procs, --replicates.
    std::int64_t get_uint(const std::string& name,
                          std::int64_t fallback) const;

    /// Strict double: the whole value must parse.
    double get_double(const std::string& name, double fallback) const;
    bool get_bool(const std::string& name, bool fallback = false) const;

    /// Comma-separated list of doubles, e.g. "--tf 0.001,0.01,0.1".
    std::vector<double> get_doubles(const std::string& name,
                                    std::vector<double> fallback) const;

    /// Comma-separated list of integers, e.g. "--procs 16,32,64".
    std::vector<std::int64_t> get_ints(const std::string& name,
                                       std::vector<std::int64_t> fallback) const;

    /// Verifies every provided flag is one of \p known; throws otherwise.
    void check_known(const std::vector<std::string>& known) const;

private:
    std::map<std::string, std::string> values_;
};

} // namespace borg::util

#endif
