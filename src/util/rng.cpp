#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numeric>

namespace borg::util {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream_a,
                          std::uint64_t stream_b) noexcept {
    std::uint64_t x = base;
    (void)splitmix64(x);
    x ^= 0xd1b54a32d192ed03ULL * (stream_a + 1);
    (void)splitmix64(x);
    x ^= 0x8cb92ba72f3d8dd7ULL * (stream_b + 1);
    return splitmix64(x);
}

Rng::Rng(std::uint64_t seed) noexcept {
    // SplitMix64 expansion guarantees the xoshiro state is never all-zero.
    for (auto& word : state_) word = splitmix64(seed);
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
    assert(n > 0);
    // Lemire-style rejection bound keeps the result exactly uniform.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
        const std::uint64_t r = (*this)();
        if (r >= threshold) return r % n;
    }
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) noexcept {
    assert(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

double Rng::gaussian() noexcept {
    if (has_spare_) {
        has_spare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    has_spare_ = true;
    return u * factor;
}

double Rng::gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
}

bool Rng::flip(double p) noexcept { return uniform() < p; }

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
    assert(k <= n);
    std::vector<std::size_t> out;
    out.reserve(k);
    if (k == 0) return out;
    if (k * 3 >= n) {
        // Dense case: partial Fisher-Yates over the full index range.
        std::vector<std::size_t> idx(n);
        std::iota(idx.begin(), idx.end(), std::size_t{0});
        for (std::size_t i = 0; i < k; ++i) {
            const std::size_t j = i + below(n - i);
            std::swap(idx[i], idx[j]);
            out.push_back(idx[i]);
        }
        return out;
    }
    // Sparse case: rejection against the already-chosen set (k << n).
    for (std::size_t i = 0; i < k; ++i) {
        for (;;) {
            const std::size_t candidate = below(n);
            bool duplicate = false;
            for (const std::size_t chosen : out) {
                if (chosen == candidate) {
                    duplicate = true;
                    break;
                }
            }
            if (!duplicate) {
                out.push_back(candidate);
                break;
            }
        }
    }
    return out;
}

Rng::State Rng::state() const noexcept {
    State s;
    for (int i = 0; i < 4; ++i) s.words[i] = state_[i];
    s.spare = spare_;
    s.has_spare = has_spare_;
    return s;
}

void Rng::set_state(const State& state) noexcept {
    for (int i = 0; i < 4; ++i) state_[i] = state.words[i];
    spare_ = state.spare;
    has_spare_ = state.has_spare;
}

Rng Rng::split() noexcept {
    std::uint64_t s = (*this)();
    (void)splitmix64(s);
    return Rng{s};
}

} // namespace borg::util
