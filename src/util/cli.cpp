#include "util/cli.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <stdexcept>

namespace borg::util {

namespace {

/// Parses the whole of \p text as an integer. std::stoll's silent
/// truncation ("64abc" -> 64) once let a mistyped --procs run the wrong
/// grid; every malformed value is now an error naming the flag.
std::int64_t parse_full_int(const std::string& flag, const std::string& text) {
    std::int64_t value = 0;
    const char* const first = text.data();
    const char* const last = first + text.size();
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec == std::errc::result_out_of_range)
        throw std::invalid_argument("--" + flag + ": integer out of range: '" +
                                    text + "'");
    if (ec != std::errc() || ptr != last)
        throw std::invalid_argument("--" + flag + ": expected an integer, " +
                                    "got '" + text + "'");
    return value;
}

/// Parses the whole of \p text as a double (strtod + full-consumption
/// check; std::from_chars for doubles is not available everywhere).
double parse_full_double(const std::string& flag, const std::string& text) {
    if (text.empty())
        throw std::invalid_argument("--" + flag + ": expected a number, " +
                                    "got ''");
    const char* const first = text.c_str();
    char* end = nullptr;
    const double value = std::strtod(first, &end);
    if (end != first + text.size())
        throw std::invalid_argument("--" + flag + ": expected a number, " +
                                    "got '" + text + "'");
    return value;
}

std::vector<std::string> split_commas(const std::string& value) {
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= value.size()) {
        const std::size_t comma = value.find(',', start);
        if (comma == std::string::npos) {
            parts.push_back(value.substr(start));
            break;
        }
        parts.push_back(value.substr(start, comma - start));
        start = comma + 1;
    }
    return parts;
}

} // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0 || arg.size() <= 2)
            throw std::invalid_argument("expected --flag, got '" + arg + "'");
        arg.erase(0, 2);
        const std::size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            values_[arg.substr(0, eq)] = arg.substr(eq + 1);
            continue;
        }
        // "--name value" unless the next token is itself a flag (or absent),
        // in which case this is a boolean switch.
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            values_[arg] = argv[++i];
        } else {
            values_[arg] = "true";
        }
    }
}

bool CliArgs::has(const std::string& name) const {
    return values_.count(name) > 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : parse_full_int(name, it->second);
}

std::int64_t CliArgs::get_uint(const std::string& name,
                               std::int64_t fallback) const {
    const std::int64_t value = get_int(name, fallback);
    if (value < 0)
        throw std::invalid_argument("--" + name +
                                    ": must not be negative, got " +
                                    std::to_string(value));
    return value;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback
                               : parse_full_double(name, it->second);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<double> CliArgs::get_doubles(const std::string& name,
                                         std::vector<double> fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    std::vector<double> out;
    for (const auto& part : split_commas(it->second))
        out.push_back(parse_full_double(name, part));
    return out;
}

std::vector<std::int64_t> CliArgs::get_ints(
    const std::string& name, std::vector<std::int64_t> fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    std::vector<std::int64_t> out;
    for (const auto& part : split_commas(it->second))
        out.push_back(parse_full_int(name, part));
    return out;
}

void CliArgs::check_known(const std::vector<std::string>& known) const {
    for (const auto& [name, value] : values_) {
        (void)value;
        if (std::find(known.begin(), known.end(), name) == known.end())
            throw std::invalid_argument("unknown flag --" + name);
    }
}

} // namespace borg::util
