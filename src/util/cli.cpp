#include "util/cli.hpp"

#include <algorithm>
#include <stdexcept>

namespace borg::util {

namespace {

std::vector<std::string> split_commas(const std::string& value) {
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= value.size()) {
        const std::size_t comma = value.find(',', start);
        if (comma == std::string::npos) {
            parts.push_back(value.substr(start));
            break;
        }
        parts.push_back(value.substr(start, comma - start));
        start = comma + 1;
    }
    return parts;
}

} // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0 || arg.size() <= 2)
            throw std::invalid_argument("expected --flag, got '" + arg + "'");
        arg.erase(0, 2);
        const std::size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            values_[arg.substr(0, eq)] = arg.substr(eq + 1);
            continue;
        }
        // "--name value" unless the next token is itself a flag (or absent),
        // in which case this is a boolean switch.
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            values_[arg] = argv[++i];
        } else {
            values_[arg] = "true";
        }
    }
}

bool CliArgs::has(const std::string& name) const {
    return values_.count(name) > 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::stoll(it->second);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::stod(it->second);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<double> CliArgs::get_doubles(const std::string& name,
                                         std::vector<double> fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    std::vector<double> out;
    for (const auto& part : split_commas(it->second))
        if (!part.empty()) out.push_back(std::stod(part));
    return out;
}

std::vector<std::int64_t> CliArgs::get_ints(
    const std::string& name, std::vector<std::int64_t> fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    std::vector<std::int64_t> out;
    for (const auto& part : split_commas(it->second))
        if (!part.empty()) out.push_back(std::stoll(part));
    return out;
}

void CliArgs::check_known(const std::vector<std::string>& known) const {
    for (const auto& [name, value] : values_) {
        (void)value;
        if (std::find(known.begin(), known.end(), name) == known.end())
            throw std::invalid_argument("unknown flag --" + name);
    }
}

} // namespace borg::util
