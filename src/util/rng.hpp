#ifndef BORG_UTIL_RNG_HPP
#define BORG_UTIL_RNG_HPP

/// \file rng.hpp
/// Deterministic, seedable pseudo-random number generation.
///
/// All stochastic components of the library draw from this generator so that
/// any run — serial Borg, virtual-time parallel executor, or discrete-event
/// simulation — is exactly reproducible from a 64-bit seed, independent of
/// platform or standard-library implementation (std::normal_distribution et
/// al. are *not* used anywhere because their output is unspecified).

#include <cstdint>
#include <vector>

namespace borg::util {

/// xoshiro256** by Blackman & Vigna, seeded via SplitMix64.
///
/// Chosen for its 256-bit state (period 2^256 - 1), excellent statistical
/// quality, and trivially portable implementation. Satisfies the
/// std::uniform_random_bit_generator concept so it can also drive standard
/// algorithms such as std::shuffle when exact reproducibility of that step
/// does not matter.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Constructs a generator from a 64-bit seed (expanded with SplitMix64).
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~result_type{0}; }

    /// Next raw 64-bit value. Defined inline: one draw per dispatched
    /// event is the common case in the DES hot loop, and an out-of-line
    /// call costs more than the xoshiro step itself.
    result_type operator()() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1) with 53 bits of precision.
    double uniform() noexcept {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept {
        return lo + (hi - lo) * uniform();
    }

    /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling to
    /// avoid modulo bias.
    std::uint64_t below(std::uint64_t n) noexcept;

    /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
    std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;

    /// Standard normal variate (polar Marsaglia method; caches the spare).
    double gaussian() noexcept;

    /// Normal variate with the given mean and standard deviation.
    double gaussian(double mean, double stddev) noexcept;

    /// Bernoulli trial with success probability p.
    bool flip(double p) noexcept;

    /// k distinct indices drawn uniformly from [0, n) in selection order.
    /// Requires k <= n. O(k) expected time via partial Fisher-Yates on an
    /// index map when k is small relative to n.
    std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

    /// Splits off an independently-seeded child generator. Used to give each
    /// simulated node / replicate its own stream.
    Rng split() noexcept;

    /// Complete generator state, exposed for checkpoint/restore of long
    /// runs. A restored generator continues the exact same stream.
    struct State {
        std::uint64_t words[4] = {0, 0, 0, 0};
        double spare = 0.0;
        bool has_spare = false;
    };
    State state() const noexcept;
    void set_state(const State& state) noexcept;

private:
    static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
    double spare_ = 0.0;
    bool has_spare_ = false;
};

/// SplitMix64 step: advances \p x and returns the next output. Exposed for
/// deterministic seed-derivation schemes (seed = f(base, replicate, node)).
std::uint64_t splitmix64(std::uint64_t& x) noexcept;

/// Derives a well-mixed seed from a base seed and up to two stream indices.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream_a,
                          std::uint64_t stream_b = 0) noexcept;

} // namespace borg::util

#endif
