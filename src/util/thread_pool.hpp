#ifndef BORG_UTIL_THREAD_POOL_HPP
#define BORG_UTIL_THREAD_POOL_HPP

/// \file thread_pool.hpp
/// Work-stealing host-thread pool for embarrassingly parallel sweeps.
///
/// The replicate-parallel sweep engine (bench/sweep_runner) fans fully
/// independent (problem, T_F, P, replicate) cells out across host threads.
/// Each worker owns a deque: the owner pushes and pops at the back (LIFO,
/// cache-friendly for nested submissions) while idle workers steal from the
/// front of a victim's deque (FIFO, oldest-first so large early tasks
/// migrate). The pool makes NO ordering promises — determinism is the
/// caller's job and is achieved by slotting results by index, never by
/// completion order (see DESIGN.md §9).
///
/// Tasks must not call wait_idle() (a worker waiting on its own pool
/// deadlocks); tasks may freely submit() further tasks.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace borg::util {

class ThreadPool {
public:
    /// Spawns \p threads workers; 0 means default_concurrency().
    explicit ThreadPool(std::size_t threads = 0);

    /// Drains every submitted task, then joins the workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t size() const noexcept { return queues_.size(); }

    /// Enqueues \p task. Called from a worker of this pool, the task lands
    /// on that worker's own deque (stealable by the others); called from
    /// outside, deques are fed round-robin.
    void submit(std::function<void()> task);

    /// Blocks until every submitted task (including tasks submitted by
    /// tasks) has finished. If any task threw, rethrows the first captured
    /// exception (the rest of the fleet still ran to completion). Must not
    /// be called from inside a task.
    void wait_idle();

    /// Hardware concurrency, never less than 1.
    static std::size_t default_concurrency() noexcept;

private:
    struct WorkerQueue {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void worker_loop(std::size_t self);
    bool pop_own(std::size_t self, std::function<void()>& task);
    bool steal(std::size_t self, std::function<void()>& task);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> threads_;

    // queued_ counts tasks sitting in some deque; in_flight_ counts tasks
    // submitted but not yet finished (queued + executing). Guarded by
    // sleep_mutex_ so sleeping workers and wait_idle() cannot miss a wake.
    std::mutex sleep_mutex_;
    std::condition_variable wake_cv_; ///< workers sleep here when starved
    std::condition_variable idle_cv_; ///< wait_idle() sleeps here
    std::size_t queued_ = 0;
    std::size_t in_flight_ = 0;
    std::size_t next_queue_ = 0; ///< round-robin cursor for external submits
    bool stop_ = false;

    std::mutex failure_mutex_;
    std::exception_ptr failure_;
};

} // namespace borg::util

#endif
