#include "util/matrix.hpp"

#include <cassert>
#include <cmath>

namespace borg::util {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
}

Matrix Matrix::random_rotation(std::size_t n, Rng& rng) {
    // Fill with i.i.d. normals, then orthonormalize columns via modified
    // Gram-Schmidt (numerically equivalent to thin QR for these sizes).
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.gaussian();

    for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t prev = 0; prev < c; ++prev) {
            double dot = 0.0;
            for (std::size_t r = 0; r < n; ++r) dot += a(r, c) * a(r, prev);
            for (std::size_t r = 0; r < n; ++r) a(r, c) -= dot * a(r, prev);
        }
        double norm = 0.0;
        for (std::size_t r = 0; r < n; ++r) norm += a(r, c) * a(r, c);
        norm = std::sqrt(norm);
        if (norm < 1e-12) {
            // Degenerate column (probability ~0): restart with fresh draws.
            return random_rotation(n, rng);
        }
        // Haar sign convention: make the leading entry's sign deterministic
        // in terms of the draw (R_cc > 0).
        const double sign = a(c, c) < 0.0 ? -1.0 : 1.0;
        for (std::size_t r = 0; r < n; ++r) a(r, c) *= sign / norm;
    }
    return a;
}

void Matrix::multiply(std::span<const double> x, std::span<double> y) const {
    assert(x.size() == cols_ && y.size() >= rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        const double* row = &data_[r * cols_];
        for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
        y[r] = acc;
    }
}

void Matrix::multiply_transpose(std::span<const double> x,
                                std::span<double> y) const {
    assert(x.size() == rows_ && y.size() >= cols_);
    for (std::size_t c = 0; c < cols_; ++c) y[c] = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) {
        const double* row = &data_[r * cols_];
        for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * x[r];
    }
}

Matrix Matrix::multiply(const Matrix& other) const {
    assert(cols_ == other.rows_);
    Matrix out(rows_, other.cols_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = (*this)(r, k);
            if (a == 0.0) continue;
            for (std::size_t c = 0; c < other.cols_; ++c)
                out(r, c) += a * other(k, c);
        }
    return out;
}

Matrix Matrix::transposed() const {
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
    return out;
}

double Matrix::max_abs_diff(const Matrix& other) const {
    assert(rows_ == other.rows_ && cols_ == other.cols_);
    double worst = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i)
        worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
    return worst;
}

std::size_t gram_schmidt(std::vector<std::vector<double>>& vectors,
                         double tolerance) {
    std::size_t independent = 0;
    for (std::size_t i = 0; i < vectors.size(); ++i) {
        auto& v = vectors[i];
        for (std::size_t j = 0; j < i; ++j) {
            const auto& u = vectors[j];
            double dot = 0.0;
            for (std::size_t k = 0; k < v.size(); ++k) dot += v[k] * u[k];
            for (std::size_t k = 0; k < v.size(); ++k) v[k] -= dot * u[k];
        }
        double norm = 0.0;
        for (const double x : v) norm += x * x;
        norm = std::sqrt(norm);
        if (norm <= tolerance) {
            for (double& x : v) x = 0.0;
            continue;
        }
        for (double& x : v) x /= norm;
        ++independent;
    }
    return independent;
}

} // namespace borg::util
