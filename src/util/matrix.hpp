#ifndef BORG_UTIL_MATRIX_HPP
#define BORG_UTIL_MATRIX_HPP

/// \file matrix.hpp
/// Small dense matrix support used by the rotated test problems (UF11 is a
/// rotated, scaled DTLZ2) and the multi-parent recombination operators (PCX,
/// SPX, UNDX work in the subspace spanned by the parents).
///
/// These matrices are tiny (at most #decision-variables squared, i.e. tens by
/// tens), so a straightforward row-major implementation with no blocking is
/// both adequate and the simplest thing that can be verified.

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace borg::util {

/// Row-major dense matrix of doubles.
class Matrix {
public:
    Matrix() = default;

    /// rows x cols matrix, zero-initialized.
    Matrix(std::size_t rows, std::size_t cols);

    /// Identity matrix of order n.
    static Matrix identity(std::size_t n);

    /// Random orthogonal matrix of order n: QR decomposition of a matrix of
    /// i.i.d. standard normals, with the sign convention (R diagonal positive)
    /// that makes the result Haar-distributed. Deterministic given \p rng.
    static Matrix random_rotation(std::size_t n, Rng& rng);

    std::size_t rows() const noexcept { return rows_; }
    std::size_t cols() const noexcept { return cols_; }

    double& operator()(std::size_t r, std::size_t c) noexcept {
        return data_[r * cols_ + c];
    }
    double operator()(std::size_t r, std::size_t c) const noexcept {
        return data_[r * cols_ + c];
    }

    /// y = A x. Requires x.size() == cols(); writes rows() values into y.
    void multiply(std::span<const double> x, std::span<double> y) const;

    /// y = A^T x. Requires x.size() == rows(); writes cols() values into y.
    void multiply_transpose(std::span<const double> x, std::span<double> y) const;

    /// C = A B.
    Matrix multiply(const Matrix& other) const;

    /// A^T.
    Matrix transposed() const;

    /// max_ij |A_ij - B_ij|; used by tests to check orthogonality (A A^T = I).
    double max_abs_diff(const Matrix& other) const;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/// Gram-Schmidt orthonormalization of the rows of \p vectors, in place.
/// Rows that are (numerically) linearly dependent on earlier rows are left
/// as zero vectors and reported via the return value (count of independent
/// rows). Used by UNDX to build an orthonormal basis of the parent subspace.
std::size_t gram_schmidt(std::vector<std::vector<double>>& vectors,
                         double tolerance = 1e-12);

} // namespace borg::util

#endif
