#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace borg::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size())
                os << std::string(widths[c] - cells[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
    auto quote = [](const std::string& cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
        std::string out = "\"";
        for (const char ch : cell) {
            if (ch == '"') out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << quote(cells[c]);
            if (c + 1 < cells.size()) os << ',';
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_) emit(row);
}

std::string format_fixed(double value, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, value);
    return buf;
}

std::string format_percent(double ratio) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f%%", 100.0 * ratio);
    return buf;
}

std::string format_seconds(double seconds) {
    if (!std::isfinite(seconds)) return "inf";
    if (seconds >= 1.0) return format_fixed(seconds, 1);
    if (seconds >= 0.001) return format_fixed(seconds, 4);
    return format_fixed(seconds, 6);
}

} // namespace borg::util
