#ifndef BORG_UTIL_TABLE_HPP
#define BORG_UTIL_TABLE_HPP

/// \file table.hpp
/// Plain-text table and CSV emission for the benchmark harnesses. The
/// reproduction drivers print rows in the same layout as the paper's Table II
/// and figure series, so their output can be eyeballed against the original.

#include <iosfwd>
#include <string>
#include <vector>

namespace borg::util {

/// Accumulates rows of string cells and renders them column-aligned.
class Table {
public:
    /// Creates a table with the given column headers.
    explicit Table(std::vector<std::string> headers);

    /// Appends a row; pads or truncates to the header width.
    void add_row(std::vector<std::string> cells);

    std::size_t row_count() const noexcept { return rows_.size(); }

    /// Renders with space-aligned columns and a separator under the header.
    void print(std::ostream& os) const;

    /// Renders as CSV (RFC-4180 quoting for cells containing commas/quotes).
    void print_csv(std::ostream& os) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with \p precision significant-looking decimal places.
std::string format_fixed(double value, int precision);

/// Formats a ratio as an integer percentage, e.g. 0.23 -> "23%".
std::string format_percent(double ratio);

/// Formats seconds in the paper's Table II style (one decimal for >= 1 s,
/// more precision for sub-second values).
std::string format_seconds(double seconds);

} // namespace borg::util

#endif
