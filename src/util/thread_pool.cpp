#include "util/thread_pool.hpp"

#include <stdexcept>
#include <utility>

namespace borg::util {

namespace {

/// Set while a worker runs its loop so submit() can detect "called from
/// inside the pool" and push to the caller's own deque.
thread_local ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_index = 0;

} // namespace

std::size_t ThreadPool::default_concurrency() noexcept {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<std::size_t>(n);
}

ThreadPool::ThreadPool(std::size_t threads) {
    const std::size_t n = threads == 0 ? default_concurrency() : threads;
    queues_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    threads_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard lock(sleep_mutex_);
        stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
    if (!task) throw std::invalid_argument("thread pool: empty task");
    std::size_t target;
    {
        const std::lock_guard lock(sleep_mutex_);
        target = tl_pool == this ? tl_index : next_queue_++ % queues_.size();
        ++queued_;
        ++in_flight_;
    }
    {
        const std::lock_guard lock(queues_[target]->mutex);
        queues_[target]->tasks.push_back(std::move(task));
    }
    wake_cv_.notify_one();
}

bool ThreadPool::pop_own(std::size_t self, std::function<void()>& task) {
    WorkerQueue& queue = *queues_[self];
    const std::lock_guard lock(queue.mutex);
    if (queue.tasks.empty()) return false;
    task = std::move(queue.tasks.back());
    queue.tasks.pop_back();
    return true;
}

bool ThreadPool::steal(std::size_t self, std::function<void()>& task) {
    for (std::size_t i = 1; i < queues_.size(); ++i) {
        WorkerQueue& victim = *queues_[(self + i) % queues_.size()];
        const std::lock_guard lock(victim.mutex);
        if (victim.tasks.empty()) continue;
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
        return true;
    }
    return false;
}

void ThreadPool::worker_loop(std::size_t self) {
    tl_pool = this;
    tl_index = self;
    for (;;) {
        std::function<void()> task;
        if (pop_own(self, task) || steal(self, task)) {
            {
                const std::lock_guard lock(sleep_mutex_);
                --queued_;
            }
            try {
                task();
            } catch (...) {
                const std::lock_guard lock(failure_mutex_);
                if (!failure_) failure_ = std::current_exception();
            }
            bool idle;
            {
                const std::lock_guard lock(sleep_mutex_);
                idle = --in_flight_ == 0;
            }
            if (idle) idle_cv_.notify_all();
            continue;
        }
        std::unique_lock lock(sleep_mutex_);
        // A task may have landed between the failed scan and taking the
        // lock; rescan instead of sleeping through it.
        if (queued_ > 0) continue;
        if (stop_) return;
        wake_cv_.wait(lock, [&] { return queued_ > 0 || stop_; });
        if (queued_ == 0 && stop_) return;
    }
}

void ThreadPool::wait_idle() {
    if (tl_pool == this)
        throw std::logic_error("thread pool: wait_idle() from inside a task");
    {
        std::unique_lock lock(sleep_mutex_);
        idle_cv_.wait(lock, [&] { return in_flight_ == 0; });
    }
    const std::lock_guard lock(failure_mutex_);
    if (failure_) {
        std::exception_ptr failure = std::exchange(failure_, nullptr);
        std::rethrow_exception(failure);
    }
}

} // namespace borg::util
